// Command flordb is the command-line interface to the FlorDB reproduction.
//
//	flordb run <script.flow> [--arg name=value ...]   record a pipeline script
//	flordb hindsight <script.flow> <new.flow>         propagate + replay new logs
//	flordb dataframe <name> [<name> ...]              pivoted metadata view
//	flordb sql "<query>"                              SQL over the Figure-1 schema
//	flordb sql --format json|csv "<query>"            machine-readable output
//	flordb sql --as-of <epoch> "<query>"              time travel: query a past epoch
//	flordb sql "EXPLAIN <query>"                      show the chosen query plan
//	flordb versions <script.flow>                     committed versions of a file
//	flordb compact                                    fold WAL history into a snapshot
//	flordb build <Makefile> <goal>                    run a pipeline Makefile
//	flordb serve [--addr :8080]                       feedback web UI + SQL-over-HTTP API
//	flordb serve --replicate-from=URL                 serve as a read-only replica
//	flordb promote [--replicate-from=URL]             flip a replica directory writable
//	flordb macrobench <scenario|all>                  mixed-workload macro-benchmark
//	flordb demo                                       end-to-end PDF-parser demo
//
// serve mounts the Figure-6 feedback UI at / and the JSON query API at
// /sql, /explain, /dataframe and /healthz, with bounded request admission
// and graceful shutdown on SIGINT/SIGTERM. A primary additionally ships
// sealed WAL segments to followers from /repl/; with --replicate-from the
// process is instead a follower: it tails the named primary, serves
// read-only queries from its own MVCC snapshots, and answers 503 with
// Retry-After when lagging beyond --max-lag-epochs or --max-stale.
//
// State lives under ./.flor in the working directory (override with --dir).
package main

import (
	"context"
	"encoding/csv"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	flor "flordb"
	"flordb/internal/build"
	"flordb/internal/docsim"
	"flordb/internal/hostlib"
	"flordb/internal/macrobench"
	"flordb/internal/mlsim"
	"flordb/internal/repl"
	"flordb/internal/server"
	"flordb/internal/sqlparse"
	"flordb/internal/storage"
	"flordb/internal/vcs"
	"flordb/internal/webui"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "flordb:", err)
		os.Exit(1)
	}
}

func usage() error {
	return fmt.Errorf("usage: flordb {run|hindsight|dataframe|sql|versions|compact|build|serve|promote|macrobench|demo} ...")
}

func run(args []string) error {
	if len(args) == 0 {
		return usage()
	}
	cmd, rest := args[0], args[1:]

	fs := flag.NewFlagSet(cmd, flag.ContinueOnError)
	dir := fs.String("dir", ".", "project directory (state in <dir>/.flor)")
	proj := fs.String("project", "pdf-parser", "project id")
	addr := fs.String("addr", ":8080", "listen address for serve")
	docs := fs.Int("docs", 8, "synthetic corpus size")
	seed := fs.Int("seed", 1, "corpus seed")
	format := fs.String("format", "table", "sql output format: table|json|csv")
	asOf := fs.Int64("as-of", -1, "sql: run against this historical commit epoch (-1 = latest)")
	maxInFlight := fs.Int("max-inflight", 32, "serve: max concurrently executing API queries")
	maxQueue := fs.Int("max-queue", 64, "serve: max API queries waiting for a slot before 429")
	replicateFrom := fs.String("replicate-from", "", "serve/promote: primary base URL to replicate from (e.g. http://primary:8080)")
	maxLagEpochs := fs.Int64("max-lag-epochs", 64, "replica: refuse reads when lagging more epochs than this (0 = no bound)")
	maxStale := fs.Duration("max-stale", 30*time.Second, "replica: refuse reads after this long without primary contact (0 = no bound)")
	retainSegments := fs.Int("retain-segments", 0, "primary: sealed WAL segments compaction keeps for late-joining replicas")
	duration := fs.Duration("duration", 10*time.Second, "macrobench: measured duration per scenario")
	outPath := fs.String("out", "", "macrobench: write a MACRO snapshot (benchdiff -macro input) to this path")
	var scriptArgs argList
	fs.Var(&scriptArgs, "arg", "script argument name=value (repeatable)")
	if err := fs.Parse(rest); err != nil {
		return err
	}
	pos := fs.Args()

	openSess := func() (*flor.Session, *hostlib.State, error) {
		sess, err := flor.Open(*dir, *proj, flor.Options{Args: scriptArgs.m, Stdout: os.Stdout, RetainSegments: *retainSegments})
		if err != nil {
			return nil, nil, err
		}
		st := hostlib.NewState(docsim.Config{
			NumDocs: *docs, MinPages: 3, MaxPages: 8, OCRFraction: 0.4, Seed: uint64(*seed),
		}, 16)
		hostlib.Register(sess, st)
		hostlib.RegisterFlorQueries(sess, sess)
		return sess, st, nil
	}

	switch cmd {
	case "run":
		if len(pos) != 1 {
			return fmt.Errorf("usage: flordb run <script.flow>")
		}
		src, err := os.ReadFile(pos[0])
		if err != nil {
			return err
		}
		sess, _, err := openSess()
		if err != nil {
			return err
		}
		defer sess.Close()
		name := filepath.Base(pos[0])
		if err := sess.RunScript(name, string(src)); err != nil {
			return err
		}
		if err := sess.Commit("flordb run " + name); err != nil {
			return err
		}
		fmt.Printf("recorded %s as version %d\n", name, sess.Tstamp()-1)
		return nil

	case "hindsight":
		if len(pos) != 2 {
			return fmt.Errorf("usage: flordb hindsight <script.flow> <new-version.flow>")
		}
		newSrc, err := os.ReadFile(pos[1])
		if err != nil {
			return err
		}
		sess, _, err := openSess()
		if err != nil {
			return err
		}
		defer sess.Close()
		name := filepath.Base(pos[0])
		reports, err := sess.Hindsight(name, string(newSrc), nil)
		if err != nil {
			return err
		}
		for _, rep := range reports {
			status := "ok"
			if rep.Err != nil {
				status = rep.Err.Error()
			} else if rep.Skipped {
				status = "skipped (no new statements)"
			}
			fmt.Printf("%s  ts=%d  injected=%d  mode=%-6s  ran=%d skipped=%d restored=%d logs=%d  %s  [%s]\n",
				vcs.Short(rep.VID), rep.Tstamp, rep.Injected, rep.Mode,
				rep.Stats.IterationsRun, rep.Stats.IterationsSkipped,
				rep.Stats.Restores, rep.Stats.LogsEmitted, rep.Duration.Round(1e5), status)
		}
		return nil

	case "dataframe":
		if len(pos) == 0 {
			return fmt.Errorf("usage: flordb dataframe <name> [<name> ...]")
		}
		sess, _, err := openSess()
		if err != nil {
			return err
		}
		defer sess.Close()
		df, err := sess.Dataframe(pos...)
		if err != nil {
			return err
		}
		fmt.Print(df.String())
		return nil

	case "sql":
		if len(pos) != 1 {
			return fmt.Errorf("usage: flordb sql \"SELECT ...\"")
		}
		sess, _, err := openSess()
		if err != nil {
			return err
		}
		defer sess.Close()
		var res *sqlparse.Result
		if *asOf >= 0 {
			view, err := sess.ReaderAt(*asOf)
			if err != nil {
				return err
			}
			defer view.Close()
			res, err = view.SQL(pos[0])
			if err != nil {
				return err
			}
		} else {
			var err error
			res, err = sess.SQL(pos[0])
			if err != nil {
				return err
			}
		}
		return printSQLResult(os.Stdout, res, *format)

	case "versions":
		if len(pos) != 1 {
			return fmt.Errorf("usage: flordb versions <script.flow>")
		}
		sess, _, err := openSess()
		if err != nil {
			return err
		}
		defer sess.Close()
		versions, err := sess.Versions(filepath.Base(pos[0]))
		if err != nil {
			return err
		}
		for _, v := range versions {
			fmt.Printf("%s  ts=%d\n", vcs.Short(v.VID), v.Tstamp)
		}
		return nil

	case "compact":
		sess, _, err := openSess()
		if err != nil {
			return err
		}
		defer sess.Close()
		st, err := sess.Compact()
		if err != nil {
			return err
		}
		if st.SnapshotSeq == 0 {
			fmt.Println("nothing to compact (no sealed WAL segments)")
			return nil
		}
		fmt.Printf("snapshot covers segments 1..%d (%d rows); removed %d segment(s), %d old snapshot(s)\n",
			st.SnapshotSeq, st.Rows, st.SegmentsRemoved, st.SnapshotsRemoved)
		return nil

	case "build":
		if len(pos) != 2 {
			return fmt.Errorf("usage: flordb build <Makefile> <goal>")
		}
		text, err := os.ReadFile(pos[0])
		if err != nil {
			return err
		}
		mf, err := build.Parse(string(text))
		if err != nil {
			return err
		}
		sess, _, err := openSess()
		if err != nil {
			return err
		}
		defer sess.Close()
		runner := build.NewRunner(mf, func(rule build.Rule) error {
			fmt.Printf("[%s] %s\n", rule.Target, strings.Join(rule.Cmds, " && "))
			for _, c := range rule.Cmds {
				c = strings.TrimPrefix(strings.TrimSpace(c), "@")
				if strings.HasPrefix(c, "flow ") {
					scriptPath := strings.TrimSpace(strings.TrimPrefix(c, "flow "))
					src, err := os.ReadFile(filepath.Join(*dir, scriptPath))
					if err != nil {
						return err
					}
					if err := sess.RunScript(filepath.Base(scriptPath), string(src)); err != nil {
						return err
					}
				}
			}
			return nil
		}, 4)
		if err := sess.RegisterBuild(mf, runner); err != nil {
			return err
		}
		if err := runner.Run(pos[1]); err != nil {
			return err
		}
		if err := sess.Commit("flordb build " + pos[1]); err != nil {
			return err
		}
		fmt.Println("dataflow:")
		fmt.Print(build.Dataflow(mf))
		return nil

	case "serve":
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()

		cfg := server.Config{MaxInFlight: *maxInFlight, MaxQueue: *maxQueue}
		var sess *flor.Session
		var st *hostlib.State
		var follower *repl.Follower
		var primary *repl.Primary
		if *replicateFrom != "" {
			// Follower: tail the primary, serve read-only queries from local
			// MVCC snapshots, and gate reads on the staleness bound.
			f, err := repl.StartFollower(ctx, repl.FollowerConfig{
				PrimaryURL:   strings.TrimRight(*replicateFrom, "/"),
				Dir:          *dir,
				ProjID:       *proj,
				MaxLagEpochs: *maxLagEpochs,
				MaxFetchAge:  *maxStale,
				Logf:         func(format string, args ...any) { fmt.Printf(format+"\n", args...) },
				Open:         flor.Options{Stdout: os.Stdout, RetainSegments: *retainSegments},
			})
			if err != nil {
				return err
			}
			follower = f
			sess = f.Session()
			st = hostlib.NewState(docsim.Config{
				NumDocs: *docs, MinPages: 3, MaxPages: 8, OCRFraction: 0.4, Seed: uint64(*seed),
			}, 16)
			cfg.Gate = f.Gate
			cfg.Health = f.Health
			go func() {
				if err := f.Run(ctx); err != nil {
					fmt.Fprintln(os.Stderr, "flordb: replication stopped:", err)
				}
			}()
		} else {
			var err error
			sess, st, err = openSess()
			if err != nil {
				return err
			}
			blobs, err := storage.NewBlobStore(filepath.Join(*dir, ".flor", "objects"))
			if err != nil {
				sess.Close()
				return err
			}
			primary = repl.NewPrimary(sess, blobs)
			cfg.Health = primary.Health
		}
		defer sess.Close()

		model := mlsim.NewMLP(st.Dim, 32, 2, mlsim.NewRNG(7))
		ui := webui.NewServer(sess, st.Corpus, func(doc *docsim.Document) []bool {
			out := make([]bool, len(doc.Pages))
			for i, p := range doc.Pages {
				out[i] = model.Predict(docsim.Vectorize(p, st.Dim)) == 1
			}
			return out
		})
		api := server.New(sess, cfg)
		// One mux: the JSON query API next to the Figure-6 feedback UI,
		// both reading the same session through snapshots.
		mux := http.NewServeMux()
		mux.Handle("/sql", api)
		mux.Handle("/explain", api)
		mux.Handle("/dataframe", api)
		mux.Handle("/healthz", api)
		mux.Handle("/metrics", api)
		mux.Handle("/", ui)
		if primary != nil {
			mux.Handle("/repl/", primary.Routes())
		}

		// Surface the replication gauges in the serve log, mirroring /healthz.
		go func() {
			t := time.NewTicker(30 * time.Second)
			defer t.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-t.C:
					g := make(map[string]any)
					if follower != nil {
						follower.Health(g)
						fmt.Printf("repl: replica_lag_epochs=%v replica_last_fetch_unix=%v repl_segments_shipped=%v\n",
							g["replica_lag_epochs"], g["replica_last_fetch_unix"], g["repl_segments_shipped"])
					} else {
						primary.Health(g)
						fmt.Printf("repl: repl_segments_shipped=%v repl_followers=%v\n",
							g["repl_segments_shipped"], g["repl_followers"])
					}
				}
			}
		}()

		hs := &http.Server{Addr: *addr, Handler: mux}
		errc := make(chan error, 1)
		go func() { errc <- hs.ListenAndServe() }()
		role := "primary"
		if follower != nil {
			role = "read-only replica of " + *replicateFrom
		}
		fmt.Printf("serving the feedback UI and SQL API on %s as %s (SIGINT/SIGTERM to drain and stop)\n", *addr, role)
		select {
		case err := <-errc:
			return err
		case <-ctx.Done():
		}
		// Restore default signal handling first, so a second SIGINT kills a
		// drain stuck behind a slow client instead of being swallowed; the
		// drain itself is bounded for the same reason.
		stop()
		shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := hs.Shutdown(shutCtx); err != nil {
			hs.Close() // drain deadline hit: drop the stragglers
			return err
		}
		<-errc // http.ErrServerClosed
		fmt.Println("drained in-flight requests; bye")
		return nil

	case "promote":
		// Flip a replica directory writable. With --replicate-from and a
		// reachable primary, a final catch-up runs first; without it, local
		// state is promoted as-is — safe because a follower only ever acks
		// segments it has durably installed and applied, so the local
		// directory always covers everything this replica acknowledged.
		opts := flor.Options{Stdout: os.Stdout, RetainSegments: *retainSegments}
		if *replicateFrom != "" {
			ctx := context.Background()
			f, err := repl.StartFollower(ctx, repl.FollowerConfig{
				PrimaryURL: strings.TrimRight(*replicateFrom, "/"),
				Dir:        *dir,
				ProjID:     *proj,
				Logf:       func(format string, args ...any) { fmt.Printf(format+"\n", args...) },
				Open:       opts,
			})
			if err != nil {
				return err
			}
			defer f.Close()
			if err := f.Promote(ctx); err != nil {
				return err
			}
			fmt.Printf("promoted %s: writable at tstamp %d (replayed through segment %d)\n", *dir, f.Session().Tstamp(), f.Applied())
			return nil
		}
		sess, err := flor.OpenReplica(*dir, *proj, opts)
		if err != nil {
			return err
		}
		defer sess.Close()
		if err := sess.Promote(); err != nil {
			return err
		}
		fmt.Printf("promoted %s: writable at tstamp %d\n", *dir, sess.Tstamp())
		return nil

	case "macrobench":
		// Scenarios run in their own scratch directories — the project under
		// --dir is never touched.
		if len(pos) != 1 {
			return fmt.Errorf("usage: flordb macrobench [--duration 10s] [--seed N] [--out MACRO_latest.json] {%s|all}",
				strings.Join(macrobench.Names(), "|"))
		}
		var scens []macrobench.Scenario
		if pos[0] == "all" {
			scens = macrobench.Scenarios()
		} else {
			sc, ok := macrobench.Lookup(pos[0])
			if !ok {
				return fmt.Errorf("unknown scenario %q (have: %s, all)", pos[0], strings.Join(macrobench.Names(), ", "))
			}
			scens = []macrobench.Scenario{sc}
		}
		snap := macrobench.NewSnapshotFile()
		for _, sc := range scens {
			res, err := sc.Run(macrobench.Config{
				Duration: *duration,
				Seed:     int64(*seed),
				Logf:     func(format string, args ...any) { fmt.Fprintf(os.Stderr, format+"\n", args...) },
			})
			if err != nil {
				return fmt.Errorf("macrobench %s: %w", sc.Name, err)
			}
			res.Render(os.Stdout)
			snap.Add(res)
		}
		if *outPath != "" {
			if err := snap.WriteFile(*outPath); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", *outPath)
		}
		return nil

	case "demo":
		return runDemo(*dir, *proj, *docs, uint64(*seed))

	default:
		return usage()
	}
}

// printSQLResult renders a query result for scripting or humans:
//
//	table  tab-separated columns (the default, unchanged)
//	json   {"columns":[...],"rows":[[...],...]} with typed values
//	csv    RFC-4180 CSV with a header row
func printSQLResult(w io.Writer, res *sqlparse.Result, format string) error {
	switch format {
	case "table", "":
		fmt.Fprintln(w, strings.Join(res.Columns, "\t"))
		for _, r := range res.Rows {
			parts := make([]string, len(r))
			for i, v := range r {
				parts[i] = v.String()
			}
			fmt.Fprintln(w, strings.Join(parts, "\t"))
		}
		return nil
	case "json":
		rows := make([][]any, len(res.Rows))
		for i, r := range res.Rows {
			row := make([]any, len(r))
			for j, v := range r {
				row[j] = v.JSON()
			}
			rows[i] = row
		}
		enc := json.NewEncoder(w)
		return enc.Encode(map[string]any{"columns": res.Columns, "rows": rows})
	case "csv":
		cw := csv.NewWriter(w)
		if err := cw.Write(res.Columns); err != nil {
			return err
		}
		fields := make([]string, 0, len(res.Columns))
		for _, r := range res.Rows {
			fields = fields[:0]
			for _, v := range r {
				if v.IsNull() {
					fields = append(fields, "")
				} else {
					fields = append(fields, v.String())
				}
			}
			if err := cw.Write(fields); err != nil {
				return err
			}
		}
		cw.Flush()
		return cw.Error()
	default:
		return fmt.Errorf("unknown --format %q (want table, json, or csv)", format)
	}
}

// argList collects repeated --arg name=value flags.
type argList struct{ m map[string]string }

func (a *argList) String() string { return fmt.Sprintf("%v", a.m) }

func (a *argList) Set(s string) error {
	if a.m == nil {
		a.m = make(map[string]string)
	}
	i := strings.IndexByte(s, '=')
	if i <= 0 {
		return fmt.Errorf("--arg expects name=value, got %q", s)
	}
	a.m[s[:i]] = s[i+1:]
	return nil
}
