package main

import (
	"encoding/json"
	"io"
	"os"
	"strings"
	"testing"

	flor "flordb"
)

// seedProject writes a small committed project under dir.
func seedProject(t *testing.T, dir string) {
	t.Helper()
	sess, err := flor.Open(dir, "pdf-parser", flor.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sess.SetFilename("train.go")
	for it := sess.Loop("epoch", 2); it.Next(); {
		sess.Log("acc", 0.5+0.25*float64(it.Index()))
	}
	if err := sess.Commit("seed"); err != nil {
		t.Fatal(err)
	}
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
}

// captureStdout runs fn with os.Stdout redirected to a pipe and returns what
// it printed.
func captureStdout(t *testing.T, fn func() error) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	defer func() { os.Stdout = old }()
	runErr := fn()
	w.Close()
	out, _ := io.ReadAll(r)
	if runErr != nil {
		t.Fatalf("command failed: %v (output: %s)", runErr, out)
	}
	return string(out)
}

const cliQuery = "SELECT value_name, value FROM logs WHERE value_name = 'acc' ORDER BY value"

func TestCLISQLFormatJSON(t *testing.T) {
	dir := t.TempDir()
	seedProject(t, dir)
	out := captureStdout(t, func() error {
		return run([]string{"sql", "--dir", dir, "--format", "json", cliQuery})
	})
	var resp struct {
		Columns []string `json:"columns"`
		Rows    [][]any  `json:"rows"`
	}
	if err := json.Unmarshal([]byte(out), &resp); err != nil {
		t.Fatalf("not JSON: %v\n%s", err, out)
	}
	if len(resp.Columns) != 2 || len(resp.Rows) != 2 {
		t.Fatalf("shape: %+v", resp)
	}
	if resp.Rows[0][0] != "acc" || resp.Rows[0][1] != "0.5" {
		t.Fatalf("rows: %v", resp.Rows)
	}
}

func TestCLISQLFormatCSV(t *testing.T) {
	dir := t.TempDir()
	seedProject(t, dir)
	out := captureStdout(t, func() error {
		return run([]string{"sql", "--dir", dir, "--format", "csv", cliQuery})
	})
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv lines: %q", out)
	}
	if lines[0] != "value_name,value" || lines[1] != "acc,0.5" {
		t.Fatalf("csv content: %q", out)
	}
}

func TestCLISQLFormatTableDefault(t *testing.T) {
	dir := t.TempDir()
	seedProject(t, dir)
	out := captureStdout(t, func() error {
		return run([]string{"sql", "--dir", dir, cliQuery})
	})
	if !strings.HasPrefix(out, "value_name\tvalue\n") || !strings.Contains(out, "acc\t0.5") {
		t.Fatalf("table output: %q", out)
	}
}

func TestCLISQLFormatUnknown(t *testing.T) {
	dir := t.TempDir()
	seedProject(t, dir)
	err := run([]string{"sql", "--dir", dir, "--format", "yaml", cliQuery})
	if err == nil || !strings.Contains(err.Error(), "unknown --format") {
		t.Fatalf("unknown format error: %v", err)
	}
}
