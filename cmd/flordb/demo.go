package main

import (
	"fmt"

	flor "flordb"
	"flordb/internal/docsim"
	"flordb/internal/hostlib"
	"flordb/internal/replay"
)

// runDemo executes the paper's §4 walkthrough end to end: featurize the
// corpus (Figure 3), train two versions of the classifier (Figure 5),
// select the best checkpoint for inference (§4.2), then perform the §2
// hindsight-logging "magic trick" by backfilling weight_norm into every
// historical version, and finally print the combined dataframes.
func runDemo(dir, proj string, docs int, seed uint64) error {
	sess, err := flor.Open(dir, proj, flor.Options{Policy: replay.EveryN{N: 1}})
	if err != nil {
		return err
	}
	defer sess.Close()
	st := hostlib.NewState(docsim.Config{
		NumDocs: docs, MinPages: 3, MaxPages: 8, OCRFraction: 0.4, Seed: seed,
	}, 16)
	hostlib.Register(sess, st)
	hostlib.RegisterFlorQueries(sess, sess)

	fmt.Println("== Stage 1: featurization (Figure 3) ==")
	if err := sess.RunScript("featurize.flow", hostlib.FeaturizeSrc); err != nil {
		return err
	}
	if err := sess.Commit("featurize"); err != nil {
		return err
	}
	df, err := sess.Dataframe("text_src", "headings", "page_numbers")
	if err != nil {
		return err
	}
	fmt.Printf("feature store: %d page rows\n", df.Len())

	fmt.Println("\n== Stage 2: two training runs (Figure 5) ==")
	for v := 1; v <= 2; v++ {
		if err := sess.RunScript("train.flow", hostlib.TrainSrc); err != nil {
			return err
		}
		if err := sess.Commit(fmt.Sprintf("train run %d", v)); err != nil {
			return err
		}
	}
	mdf, err := sess.Dataframe("acc", "recall")
	if err != nil {
		return err
	}
	fmt.Print(mdf.String())

	fmt.Println("\n== Stage 3: inference with best checkpoint (§4.2) ==")
	if err := sess.RunScript("infer.flow", hostlib.InferSrc); err != nil {
		return err
	}
	if err := sess.Commit("infer"); err != nil {
		return err
	}
	ts, epoch, val, err := hostlib.BestCheckpoint(sess, "recall")
	if err != nil {
		return err
	}
	fmt.Printf("best checkpoint: version ts=%d epoch=%d recall=%.4f\n", ts, epoch, val)

	fmt.Println("\n== Stage 4: multiversion hindsight logging (§2) ==")
	fmt.Println("adding flor.log(\"weight_norm\", ...) to train.flow and backfilling history...")
	reports, err := sess.Hindsight("train.flow", hostlib.TrainSrcWithNorm, nil)
	if err != nil {
		return err
	}
	for _, rep := range reports {
		status := "ok"
		if rep.Err != nil {
			status = rep.Err.Error()
		}
		fmt.Printf("  version ts=%d: injected=%d mode=%s inner-loops-skipped=%d logs=%d (%s) %s\n",
			rep.Tstamp, rep.Injected, rep.Mode, rep.Stats.InnerLoopsSkipped,
			rep.Stats.LogsEmitted, rep.Duration.Round(1e5), status)
	}
	ndf, err := sess.Dataframe("weight_norm", "acc")
	if err != nil {
		return err
	}
	fmt.Println("\nbackfilled dataframe (weight_norm now exists for ALL past versions):")
	fmt.Print(ndf.String())
	return nil
}
