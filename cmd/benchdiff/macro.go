package main

import (
	"fmt"
	"os"
	"sort"

	"flordb/internal/macrobench"
)

// MacroOptions tunes the macro-scenario gate. Each metric has its own
// threshold: tail latency is the noisiest on a shared single-core CI
// container, so its budget is widest; throughput collapses are steadier
// signals; shed rate compares on an absolute scale because baselines are
// often exactly zero.
type MacroOptions struct {
	// P99Regress is the tolerated fractional p99 latency increase per op
	// class; 1.0 means latest p99 may be up to 2x the baseline.
	P99Regress float64
	// TputRegress is the tolerated fractional ops/sec decrease per op
	// class; 0.5 means latest may run at half the baseline throughput.
	TputRegress float64
	// ShedSlack is the absolute shed-rate increase tolerated (sheds over
	// attempts, 0..1); baselines commonly shed 0, so a ratio is useless.
	ShedSlack float64
	// FloorNs skips the p99 comparison when both sides are below it —
	// sub-50µs tails on a busy container are scheduler noise.
	FloorNs float64
	// MinOps skips a class entirely when either side completed fewer ops:
	// a p99 over a handful of samples gates nothing but luck.
	MinOps int64
}

// DefaultMacroOptions matches the `make macro-gate` invocation. The budgets
// are deliberately generous: CI runs every scenario for ~10s on a shared
// single-core container, where a noisy neighbor alone can double a tail.
// The gate exists to catch the step-function regressions a reviewer would
// care about (a lock added to the commit path, a scan that stopped pruning),
// not 20% drifts — those are nightly's longer runs' job.
func DefaultMacroOptions() MacroOptions {
	return MacroOptions{
		P99Regress:  1.0,
		TputRegress: 0.5,
		ShedSlack:   0.10,
		FloorNs:     50_000,
		MinOps:      100,
	}
}

// CompareMacro gates a latest macro snapshot against the committed baseline,
// scenario by scenario and op class by op class. It reuses Report, so the
// rendering and failure contract match the micro-benchmark gate.
func CompareMacro(baseline, latest *macrobench.SnapshotFile, opts MacroOptions) *Report {
	rep := &Report{}
	for _, scen := range sortedKeys(baseline.Scenarios) {
		base := baseline.Scenarios[scen]
		cur, ok := latest.Scenarios[scen]
		if !ok {
			rep.Missing = append(rep.Missing,
				fmt.Sprintf("%s: scenario in baseline but missing from latest snapshot", scen))
			continue
		}
		for _, class := range base.ClassNames() {
			bc := base.Classes[class]
			cc, ok := cur.Classes[class]
			key := scen + "/" + class
			if !ok {
				rep.Missing = append(rep.Missing,
					fmt.Sprintf("%s: op class in baseline but missing from latest snapshot", key))
				continue
			}
			if bc.Ops < opts.MinOps || cc.Ops < opts.MinOps {
				continue // too few samples on either side to gate on
			}
			rep.Compared++
			compareMacroClass(rep, key, bc, cc, opts)
		}
	}
	for _, scen := range sortedKeys(latest.Scenarios) {
		if _, ok := baseline.Scenarios[scen]; !ok {
			rep.Added = append(rep.Added, scen)
		}
	}
	return rep
}

// compareMacroClass applies the three per-metric thresholds to one op class.
func compareMacroClass(rep *Report, key string, base, cur *macrobench.ClassResult, opts MacroOptions) {
	baseP99, curP99 := float64(base.Latency.P99), float64(cur.Latency.P99)
	if baseP99 >= opts.FloorNs || curP99 >= opts.FloorNs {
		limit := 1 + opts.P99Regress
		if curP99 > baseP99*limit {
			rep.Regressions = append(rep.Regressions,
				fmt.Sprintf("%s: p99 %s -> %s (%+.1f%%, limit %+.0f%%)",
					key, fmtNum(baseP99), fmtNum(curP99), pct(baseP99, curP99), opts.P99Regress*100))
		} else if baseP99 > 0 && curP99 < baseP99/limit {
			rep.Improvements = append(rep.Improvements,
				fmt.Sprintf("%s: p99 %s -> %s (%+.1f%%)",
					key, fmtNum(baseP99), fmtNum(curP99), pct(baseP99, curP99)))
		}
	}
	if base.OpsPerSec > 0 {
		floor := base.OpsPerSec * (1 - opts.TputRegress)
		if cur.OpsPerSec < floor {
			rep.Regressions = append(rep.Regressions,
				fmt.Sprintf("%s: throughput %s -> %s ops/sec (%+.1f%%, limit %+.0f%%)",
					key, fmtNum(base.OpsPerSec), fmtNum(cur.OpsPerSec),
					pct(base.OpsPerSec, cur.OpsPerSec), -opts.TputRegress*100))
		} else if cur.OpsPerSec > base.OpsPerSec*(1+opts.TputRegress) {
			rep.Improvements = append(rep.Improvements,
				fmt.Sprintf("%s: throughput %s -> %s ops/sec (%+.1f%%)",
					key, fmtNum(base.OpsPerSec), fmtNum(cur.OpsPerSec), pct(base.OpsPerSec, cur.OpsPerSec)))
		}
	}
	baseShed, curShed := base.ShedRate(), cur.ShedRate()
	if curShed > baseShed+opts.ShedSlack {
		rep.Regressions = append(rep.Regressions,
			fmt.Sprintf("%s: shed rate %.3f -> %.3f (limit +%.2f absolute)",
				key, baseShed, curShed, opts.ShedSlack))
	}
}

// runMacro is the -macro entry point: load, compare, render, gate.
func runMacro(baselinePath, latestPath string, opts MacroOptions, out *os.File) error {
	baseline, err := macrobench.ReadSnapshotFile(baselinePath)
	if err != nil {
		return fmt.Errorf("benchdiff: %w", err)
	}
	latest, err := macrobench.ReadSnapshotFile(latestPath)
	if err != nil {
		return fmt.Errorf("benchdiff: %w", err)
	}
	rep := CompareMacro(baseline, latest, opts)
	rep.Render(out)
	if rep.Failed() {
		return fmt.Errorf("benchdiff: macro gate failed: %d regression(s), %d missing",
			len(rep.Regressions), len(rep.Missing))
	}
	return nil
}

// sortedKeys returns a map's keys sorted, for deterministic report order.
func sortedKeys(m map[string]*macrobench.Result) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
