package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// jsonSnapshot renders bench lines as the go test -json stream `make bench`
// writes, interleaved with the noise lines a real run produces.
func jsonSnapshot(lines ...string) string {
	var sb strings.Builder
	sb.WriteString(`{"Action":"start","Package":"flordb"}` + "\n")
	sb.WriteString(`{"Action":"output","Package":"flordb","Output":"goos: linux\n"}` + "\n")
	for _, l := range lines {
		sb.WriteString(fmt.Sprintf(`{"Action":"output","Package":"flordb","Output":"%s\n"}`, l) + "\n")
	}
	sb.WriteString(`{"Action":"output","Package":"flordb","Output":"PASS\n"}` + "\n")
	sb.WriteString(`{"Action":"pass","Package":"flordb"}` + "\n")
	return sb.String()
}

func bench(name string, ns float64, allocs int) string {
	return fmt.Sprintf("%s-8   \\t     100\\t  %g ns/op\\t  512 B/op\\t  %d allocs/op", name, ns, allocs)
}

func parse(t *testing.T, snapshot string) map[string]BenchResult {
	t.Helper()
	m, err := ParseSnapshot(strings.NewReader(snapshot))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestParseSnapshotJSONAndText(t *testing.T) {
	m := parse(t, jsonSnapshot(
		bench("BenchmarkC14ScanAggregate", 7000000, 761),
		"BenchmarkC13GroupCommit16-8  \\t 1000\\t 256000 ns/op\\t 0.750 fsyncs/commit\\t 100 B/op\\t 9 allocs/op",
	))
	r, ok := m["BenchmarkC14ScanAggregate"]
	if !ok || r.NsPerOp != 7e6 || !r.HasAllocs || r.AllocsPerOp != 761 {
		t.Fatalf("bad parse: %+v (ok=%v)", r, ok)
	}
	// GOMAXPROCS suffix stripped; custom metrics ignored.
	if r, ok := m["BenchmarkC13GroupCommit16"]; !ok || r.NsPerOp != 256000 || r.AllocsPerOp != 9 {
		t.Fatalf("bad parse with custom metric: %+v (ok=%v)", r, ok)
	}
	// Plain text form parses identically.
	m2 := parse(t, "BenchmarkC14ScanAggregate-8 \t 100 \t 7e+06 ns/op \t 512 B/op \t 761 allocs/op\nok flordb 1.2s\n")
	if m2["BenchmarkC14ScanAggregate"].NsPerOp != 7e6 {
		t.Fatalf("text parse: %+v", m2)
	}
}

func TestParseSnapshotKeepsBestOfRepeatedRuns(t *testing.T) {
	m := parse(t, jsonSnapshot(
		bench("BenchmarkX", 120, 10),
		bench("BenchmarkX", 100, 12),
	))
	if r := m["BenchmarkX"]; r.NsPerOp != 100 || r.AllocsPerOp != 10 {
		t.Fatalf("want min envelope 100ns/10allocs, got %+v", r)
	}
}

func benchCPU(name string, cpu int, ns float64, allocs int) string {
	return fmt.Sprintf("%s-%d   \\t     100\\t  %g ns/op\\t  512 B/op\\t  %d allocs/op", name, cpu, ns, allocs)
}

// TestParseSnapshotMixedCPUSuffixes pins the -cpu keying: a benchmark run
// under `-cpu=1,8` keeps per-suffix entries (so a parallel-scaling
// regression at 8 cores can't hide behind a fast single-core number), while
// single-suffix benchmarks in the same snapshot keep the portable stripped
// key — and CPUKeep/CPUStrip force either behavior.
func TestParseSnapshotMixedCPUSuffixes(t *testing.T) {
	snap := jsonSnapshot(
		benchCPU("BenchmarkC17ParallelScan", 1, 8000000, 900),
		benchCPU("BenchmarkC17ParallelScan", 8, 1500000, 1200),
		bench("BenchmarkC8PointQuery", 365000, 1066), // single suffix (-8)
	)
	m := parse(t, snap)
	if r, ok := m["BenchmarkC17ParallelScan-1"]; !ok || r.NsPerOp != 8e6 {
		t.Fatalf("cpu=1 entry not kept separately: %+v (ok=%v) in %v", r, ok, m)
	}
	if r, ok := m["BenchmarkC17ParallelScan-8"]; !ok || r.NsPerOp != 1.5e6 {
		t.Fatalf("cpu=8 entry not kept separately: %+v (ok=%v)", r, ok)
	}
	if _, collapsed := m["BenchmarkC17ParallelScan"]; collapsed {
		t.Fatal("multi-cpu benchmark also collapsed into a stripped key")
	}
	if r, ok := m["BenchmarkC8PointQuery"]; !ok || r.NsPerOp != 365000 {
		t.Fatalf("single-cpu benchmark lost its stripped key: %+v (ok=%v)", r, ok)
	}

	strip, err := ParseSnapshotMode(strings.NewReader(snap), CPUStrip)
	if err != nil {
		t.Fatal(err)
	}
	if r, ok := strip["BenchmarkC17ParallelScan"]; !ok || r.NsPerOp != 1.5e6 || r.AllocsPerOp != 900 {
		t.Fatalf("CPUStrip should min-collapse the suffixes: %+v (ok=%v)", r, ok)
	}
	keep, err := ParseSnapshotMode(strings.NewReader(snap), CPUKeep)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := keep["BenchmarkC8PointQuery-8"]; !ok {
		t.Fatalf("CPUKeep should key the single-cpu benchmark by suffix too: %v", keep)
	}

	// Like-for-like gating: an 8-core regression with an unchanged 1-core
	// number must fail under auto keying (it would vanish under CPUStrip's
	// min-collapse, because the fast 1-core min masks it).
	cur := parse(t, jsonSnapshot(
		benchCPU("BenchmarkC17ParallelScan", 1, 8000000, 900),
		benchCPU("BenchmarkC17ParallelScan", 8, 6000000, 1200), // 4x slower at 8 cores
		bench("BenchmarkC8PointQuery", 365000, 1066),
	))
	rep := Compare(m, cur, DefaultOptions())
	if !rep.Failed() || len(rep.Regressions) != 1 || !strings.Contains(rep.Regressions[0], "BenchmarkC17ParallelScan-8") {
		t.Fatalf("8-core regression not flagged like-for-like: %+v", rep)
	}
}

func TestCompareFlagsRegression(t *testing.T) {
	base := parse(t, jsonSnapshot(bench("BenchmarkHot", 1000000, 100)))
	// 26% slower: beyond the 25% gate.
	cur := parse(t, jsonSnapshot(bench("BenchmarkHot", 1260000, 100)))
	rep := Compare(base, cur, DefaultOptions())
	if !rep.Failed() || len(rep.Regressions) != 1 {
		t.Fatalf("regression not flagged: %+v", rep)
	}
	if !strings.Contains(rep.Regressions[0], "ns/op") {
		t.Fatalf("regression line should name the metric: %q", rep.Regressions[0])
	}
	// 24% slower: within the gate.
	cur = parse(t, jsonSnapshot(bench("BenchmarkHot", 1240000, 100)))
	if rep := Compare(base, cur, DefaultOptions()); rep.Failed() {
		t.Fatalf("within-threshold change failed the gate: %+v", rep)
	}
}

func TestCompareFlagsAllocRegressionIndependently(t *testing.T) {
	base := parse(t, jsonSnapshot(bench("BenchmarkHot", 1000000, 100)))
	cur := parse(t, jsonSnapshot(bench("BenchmarkHot", 1000000, 150)))
	rep := Compare(base, cur, DefaultOptions())
	if !rep.Failed() || !strings.Contains(rep.Regressions[0], "allocs/op") {
		t.Fatalf("alloc regression not flagged: %+v", rep)
	}
	// Allocation-free baseline gaining a couple of allocs stays within the
	// absolute slack instead of tripping an infinite ratio.
	base = parse(t, jsonSnapshot(bench("BenchmarkLean", 1000000, 0)))
	cur = parse(t, jsonSnapshot(bench("BenchmarkLean", 1000000, 2)))
	if rep := Compare(base, cur, DefaultOptions()); rep.Failed() {
		t.Fatalf("slack not applied: %+v", rep)
	}
	cur = parse(t, jsonSnapshot(bench("BenchmarkLean", 1000000, 40)))
	if rep := Compare(base, cur, DefaultOptions()); !rep.Failed() {
		t.Fatalf("0 -> 40 allocs must fail: %+v", rep)
	}
}

func TestCompareReportsImprovementWithoutFailing(t *testing.T) {
	base := parse(t, jsonSnapshot(bench("BenchmarkHot", 26000000, 100850)))
	cur := parse(t, jsonSnapshot(bench("BenchmarkHot", 7000000, 761)))
	rep := Compare(base, cur, DefaultOptions())
	if rep.Failed() {
		t.Fatalf("improvement failed the gate: %+v", rep)
	}
	if len(rep.Improvements) != 2 { // ns/op and allocs/op both improved
		t.Fatalf("improvements not reported: %+v", rep)
	}
}

func TestCompareFlagsMissingAndTolsNewBenchmarks(t *testing.T) {
	base := parse(t, jsonSnapshot(bench("BenchmarkOld", 1000, 1), bench("BenchmarkKept", 1000000, 5)))
	cur := parse(t, jsonSnapshot(bench("BenchmarkKept", 1000000, 5), bench("BenchmarkNew", 500, 0)))
	rep := Compare(base, cur, DefaultOptions())
	if !rep.Failed() || len(rep.Missing) != 1 || !strings.Contains(rep.Missing[0], "BenchmarkOld") {
		t.Fatalf("missing benchmark not flagged: %+v", rep)
	}
	if len(rep.Added) != 1 || rep.Added[0] != "BenchmarkNew" {
		t.Fatalf("new benchmark not reported: %+v", rep)
	}
}

func TestCompareNsFloorSkipsMicrobenchNoise(t *testing.T) {
	base := parse(t, jsonSnapshot(bench("BenchmarkTiny", 200, 3)))
	cur := parse(t, jsonSnapshot(bench("BenchmarkTiny", 700, 3))) // 3.5x but sub-floor
	if rep := Compare(base, cur, DefaultOptions()); rep.Failed() {
		t.Fatalf("sub-floor ns noise failed the gate: %+v", rep)
	}
	// The floor never silences allocs.
	cur = parse(t, jsonSnapshot(bench("BenchmarkTiny", 200, 30)))
	if rep := Compare(base, cur, DefaultOptions()); !rep.Failed() {
		t.Fatalf("alloc regression hidden by ns floor: %+v", rep)
	}
}

// TestGateFailsOnSyntheticallyRegressedSnapshot drives the exact entry
// point the CI step runs (`go run ./cmd/benchdiff` -> run) on a real
// baseline and a synthetically regressed copy, demonstrating the bench-gate
// step fails end to end.
func TestGateFailsOnSyntheticallyRegressedSnapshot(t *testing.T) {
	dir := t.TempDir()
	basePath := filepath.Join(dir, "BENCH_baseline.json")
	latestPath := filepath.Join(dir, "BENCH_latest.json")
	baseline := jsonSnapshot(
		bench("BenchmarkC14ScanAggregate", 7000000, 761),
		bench("BenchmarkC8PointQuery", 365000, 1066),
	)
	regressed := jsonSnapshot(
		bench("BenchmarkC14ScanAggregate", 21000000, 761), // 3x slower
		bench("BenchmarkC8PointQuery", 365000, 1066),
	)
	writeFile(t, basePath, baseline)
	writeFile(t, latestPath, regressed)
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer devnull.Close()
	if err := run(basePath, latestPath, DefaultOptions(), CPUAuto, devnull); err == nil {
		t.Fatal("gate passed a 3x regression")
	}
	// The identical snapshot passes.
	writeFile(t, latestPath, baseline)
	if err := run(basePath, latestPath, DefaultOptions(), CPUAuto, devnull); err != nil {
		t.Fatalf("gate failed identical snapshots: %v", err)
	}
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}
