package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"flordb/internal/macrobench"
	"flordb/internal/metrics"
)

// macroResult builds a one-class scenario result with the given figures.
func macroResult(scenario, class string, ops int64, p99 int64, opsPerSec float64, sheds int64) *macrobench.Result {
	return &macrobench.Result{
		Scenario: scenario,
		Classes: map[string]*macrobench.ClassResult{
			class: {
				Ops:       ops,
				Sheds:     sheds,
				OpsPerSec: opsPerSec,
				Latency:   &metrics.HistSnapshot{Count: ops, P50: p99 / 2, P99: p99, Max: p99},
			},
		},
	}
}

func macroFile(results ...*macrobench.Result) *macrobench.SnapshotFile {
	f := macrobench.NewSnapshotFile()
	for _, r := range results {
		f.Add(r)
	}
	return f
}

func TestMacroPassesOnIdenticalSnapshots(t *testing.T) {
	base := macroFile(macroResult("log-heavy", "log-commit", 5000, 400_000, 500, 0))
	rep := CompareMacro(base, base, DefaultMacroOptions())
	if rep.Failed() {
		t.Fatalf("identical snapshots failed the gate: %+v", rep)
	}
	if rep.Compared != 1 {
		t.Fatalf("compared = %d, want 1", rep.Compared)
	}
}

func TestMacroP99Regression(t *testing.T) {
	base := macroFile(macroResult("log-heavy", "log-commit", 5000, 400_000, 500, 0))
	// 2.5x the baseline p99 — past the 2x budget.
	cur := macroFile(macroResult("log-heavy", "log-commit", 5000, 1_000_000, 500, 0))
	rep := CompareMacro(base, cur, DefaultMacroOptions())
	if !rep.Failed() || len(rep.Regressions) != 1 {
		t.Fatalf("want exactly one regression, got %+v", rep)
	}
	if !strings.Contains(rep.Regressions[0], "p99") {
		t.Fatalf("regression should name p99: %s", rep.Regressions[0])
	}
}

func TestMacroThroughputRegression(t *testing.T) {
	base := macroFile(macroResult("log-heavy", "log-commit", 5000, 400_000, 500, 0))
	cur := macroFile(macroResult("log-heavy", "log-commit", 1000, 400_000, 100, 0))
	rep := CompareMacro(base, cur, DefaultMacroOptions())
	if len(rep.Regressions) != 1 || !strings.Contains(rep.Regressions[0], "throughput") {
		t.Fatalf("want one throughput regression, got %+v", rep.Regressions)
	}
}

func TestMacroShedRateRegression(t *testing.T) {
	base := macroFile(macroResult("dash", "http-read", 5000, 400_000, 500, 0))
	// 1000 sheds over 6000 attempts ≈ 0.167 — past the +0.10 absolute slack.
	cur := macroFile(macroResult("dash", "http-read", 5000, 400_000, 500, 1000))
	rep := CompareMacro(base, cur, DefaultMacroOptions())
	if len(rep.Regressions) != 1 || !strings.Contains(rep.Regressions[0], "shed rate") {
		t.Fatalf("want one shed-rate regression, got %+v", rep.Regressions)
	}
	// Within the slack: no failure.
	ok := macroFile(macroResult("dash", "http-read", 5000, 400_000, 500, 300))
	if rep := CompareMacro(base, ok, DefaultMacroOptions()); rep.Failed() {
		t.Fatalf("shed rate within slack failed: %+v", rep.Regressions)
	}
}

func TestMacroImprovementReported(t *testing.T) {
	base := macroFile(macroResult("log-heavy", "log-commit", 5000, 2_000_000, 100, 0))
	cur := macroFile(macroResult("log-heavy", "log-commit", 5000, 400_000, 500, 0))
	rep := CompareMacro(base, cur, DefaultMacroOptions())
	if rep.Failed() {
		t.Fatalf("improvement failed the gate: %+v", rep.Regressions)
	}
	if len(rep.Improvements) < 2 {
		t.Fatalf("want p99 and throughput improvements, got %+v", rep.Improvements)
	}
}

func TestMacroMissingScenarioAndClass(t *testing.T) {
	base := macroFile(
		macroResult("log-heavy", "log-commit", 5000, 400_000, 500, 0),
		macroResult("dash", "http-read", 5000, 400_000, 500, 0),
	)
	cur := macroFile(macroResult("log-heavy", "point-read", 5000, 400_000, 500, 0))
	rep := CompareMacro(base, cur, DefaultMacroOptions())
	if !rep.Failed() || len(rep.Missing) != 2 {
		t.Fatalf("want missing scenario + missing class, got %+v", rep.Missing)
	}
}

func TestMacroPerMetricThresholds(t *testing.T) {
	base := macroFile(macroResult("s", "c", 5000, 400_000, 500, 0))
	cur := macroFile(macroResult("s", "c", 5000, 700_000, 400, 0)) // +75% p99, -20% tput

	// Default budgets (2x p99, -50% tput) tolerate both.
	if rep := CompareMacro(base, cur, DefaultMacroOptions()); rep.Failed() {
		t.Fatalf("default thresholds failed: %+v", rep.Regressions)
	}
	// Tightening only the p99 budget flips only the p99 check.
	tight := DefaultMacroOptions()
	tight.P99Regress = 0.5
	rep := CompareMacro(base, cur, tight)
	if len(rep.Regressions) != 1 || !strings.Contains(rep.Regressions[0], "p99") {
		t.Fatalf("want one p99 regression under tightened budget, got %+v", rep.Regressions)
	}
	// Tightening only the throughput budget flips only the throughput check.
	tight = DefaultMacroOptions()
	tight.TputRegress = 0.1
	rep = CompareMacro(base, cur, tight)
	if len(rep.Regressions) != 1 || !strings.Contains(rep.Regressions[0], "throughput") {
		t.Fatalf("want one throughput regression under tightened budget, got %+v", rep.Regressions)
	}
}

func TestMacroFloorAndMinOpsSkips(t *testing.T) {
	opts := DefaultMacroOptions()
	// Both p99s under the floor: a 10x tail blowup at 2µs is noise.
	base := macroFile(macroResult("s", "c", 5000, 2_000, 500, 0))
	cur := macroFile(macroResult("s", "c", 5000, 20_000, 500, 0))
	if rep := CompareMacro(base, cur, opts); rep.Failed() {
		t.Fatalf("sub-floor p99 comparison failed the gate: %+v", rep.Regressions)
	}
	// Under MinOps on the latest side: class skipped entirely.
	base = macroFile(macroResult("s", "c", 5000, 400_000, 500, 0))
	cur = macroFile(macroResult("s", "c", 10, 10_000_000, 1, 0))
	rep := CompareMacro(base, cur, opts)
	if rep.Failed() || rep.Compared != 0 {
		t.Fatalf("under-sampled class should be skipped, got %+v", rep)
	}
}

// TestMacroGateFailsOnInjectedP99Regression is the end-to-end acceptance
// check: write a baseline snapshot and a latest snapshot with a synthetic
// p99 regression to disk, run the same code path `make macro-gate` runs, and
// require a nonzero verdict naming the regressed class.
func TestMacroGateFailsOnInjectedP99Regression(t *testing.T) {
	dir := t.TempDir()
	basePath := filepath.Join(dir, "MACRO_baseline.json")
	latestPath := filepath.Join(dir, "MACRO_latest.json")
	if err := macroFile(macroResult("log-heavy", "log-commit", 5000, 400_000, 500, 0)).WriteFile(basePath); err != nil {
		t.Fatal(err)
	}
	if err := macroFile(macroResult("log-heavy", "log-commit", 5000, 5_000_000, 500, 0)).WriteFile(latestPath); err != nil {
		t.Fatal(err)
	}
	out, err := os.Create(filepath.Join(dir, "out.txt"))
	if err != nil {
		t.Fatal(err)
	}
	defer out.Close()
	gateErr := runMacro(basePath, latestPath, DefaultMacroOptions(), out)
	if gateErr == nil {
		t.Fatal("macro gate passed despite an injected p99 regression")
	}
	if !strings.Contains(gateErr.Error(), "macro gate failed") {
		t.Fatalf("unexpected gate error: %v", gateErr)
	}
	rendered, err := os.ReadFile(out.Name())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(rendered), "log-heavy/log-commit") {
		t.Fatalf("report does not name the regressed class:\n%s", rendered)
	}

	// And the inverse: an unchanged latest passes the same path green.
	if err := runMacro(basePath, basePath, DefaultMacroOptions(), out); err != nil {
		t.Fatalf("identical snapshots failed the gate: %v", err)
	}
}
