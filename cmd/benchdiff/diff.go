// Command benchdiff compares two `go test -json` benchmark snapshots (the
// committed BENCH_baseline.json and a freshly measured BENCH_latest.json)
// and exits nonzero when any benchmark regressed beyond the threshold on
// ns/op or allocs/op, or disappeared entirely. CI runs it after `make
// bench` (the `make bench-gate` target), turning the per-PR benchmark
// snapshot from a passive artifact into an admission gate for performance:
// a PR that slows a defended hot path must either fix the regression or
// update the committed baseline in the same PR, making the cost explicit
// and reviewable.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// BenchResult is one benchmark's measured numbers from a snapshot.
type BenchResult struct {
	Name        string // see CPUSuffixMode for how the -N GOMAXPROCS suffix is keyed
	NsPerOp     float64
	AllocsPerOp float64
	HasAllocs   bool
}

// CPUSuffixMode controls how the `-N` GOMAXPROCS suffix on benchmark names
// is folded into snapshot keys.
type CPUSuffixMode int

const (
	// CPUAuto keeps the suffix only for benchmarks that appear under more
	// than one distinct suffix within the same snapshot — i.e. ones run with
	// `-cpu=1,8` to measure parallel scaling. A benchmark measured at a
	// single GOMAXPROCS keeps the historical stripped key, so snapshots
	// taken on hosts with different core counts still compare.
	CPUAuto CPUSuffixMode = iota
	// CPUKeep always keys by the full suffixed name.
	CPUKeep
	// CPUStrip always strips the suffix (pre -cpu behavior): multi-cpu runs
	// of one benchmark collapse into a single min-keeping entry.
	CPUStrip
)

// Options tunes the comparison.
type Options struct {
	// MaxRegress is the tolerated fractional increase before a benchmark
	// fails the gate; 0.25 means latest may be up to 25% worse.
	MaxRegress float64
	// FloorNs skips the ns/op comparison when both sides are below it:
	// single-iteration snapshots make sub-microsecond timings mostly noise.
	// allocs/op is always compared — the allocator doesn't jitter.
	FloorNs float64
	// AllocSlack is the absolute allocs/op increase tolerated in addition
	// to the fractional threshold, so a 0→2 allocation change on a
	// previously allocation-free benchmark doesn't trip an infinite-ratio
	// failure while 100→150 still does.
	AllocSlack float64
}

// DefaultOptions matches the `make bench-gate` invocation.
func DefaultOptions() Options {
	return Options{MaxRegress: 0.25, FloorNs: 1000, AllocSlack: 2}
}

// Report is the outcome of comparing two snapshots.
type Report struct {
	Regressions  []string // failing lines, human-readable
	Missing      []string // benchmarks present in baseline, absent in latest
	Improvements []string // >threshold improvements (baseline refresh hints)
	Added        []string // new benchmarks not yet in the baseline
	Compared     int
}

// Failed reports whether the gate should reject.
func (r *Report) Failed() bool { return len(r.Regressions) > 0 || len(r.Missing) > 0 }

var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

// ParseSnapshot is ParseSnapshotMode with CPUAuto, the mode `make
// bench-gate` runs with.
func ParseSnapshot(r io.Reader) (map[string]BenchResult, error) {
	return ParseSnapshotMode(r, CPUAuto)
}

// ParseSnapshotMode reads a benchmark snapshot in `go test -json` form (a
// stream of JSON events whose Output fields carry fragments of the
// benchmark text — a single result line is usually split across several
// events) or plain `go test -bench` text. Benchmarks measured more than
// once under the same key keep their best (minimum) ns/op and allocs/op —
// the stable lower envelope. mode picks the key for `-cpu` runs.
func ParseSnapshotMode(r io.Reader, mode CPUSuffixMode) (map[string]BenchResult, error) {
	// Reconstruct the textual benchmark output. JSON events concatenate in
	// stream order, so joining their Output fields reproduces the exact
	// text `go test -bench` would have printed.
	var text strings.Builder
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1024*1024), 4*1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(strings.TrimSpace(line), "{") {
			var ev struct {
				Action string `json:"Action"`
				Output string `json:"Output"`
			}
			if err := json.Unmarshal([]byte(line), &ev); err != nil {
				return nil, fmt.Errorf("benchdiff: bad JSON line %q: %w", truncate(line), err)
			}
			if ev.Action == "output" {
				text.WriteString(ev.Output)
			}
			continue
		}
		text.WriteString(line)
		text.WriteByte('\n')
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}

	// First pass keeps full names and tallies the distinct GOMAXPROCS
	// suffixes per stripped name, so CPUAuto can tell a `-cpu=1,8` scaling
	// run (keep the suffix, compare like-for-like) from a plain run (strip
	// it, stay host-portable).
	var results []BenchResult
	suffixes := make(map[string]map[string]bool)
	for _, line := range strings.Split(text.String(), "\n") {
		res, ok := parseBenchLine(line)
		if !ok {
			continue
		}
		results = append(results, res)
		base := gomaxprocsSuffix.ReplaceAllString(res.Name, "")
		if suffixes[base] == nil {
			suffixes[base] = make(map[string]bool)
		}
		suffixes[base][strings.TrimPrefix(res.Name, base)] = true
	}
	out := make(map[string]BenchResult)
	for _, res := range results {
		base := gomaxprocsSuffix.ReplaceAllString(res.Name, "")
		if mode == CPUStrip || (mode == CPUAuto && len(suffixes[base]) < 2) {
			res.Name = base
		}
		if prev, seen := out[res.Name]; seen {
			if prev.NsPerOp < res.NsPerOp {
				res.NsPerOp = prev.NsPerOp
			}
			if prev.HasAllocs && (!res.HasAllocs || prev.AllocsPerOp < res.AllocsPerOp) {
				res.AllocsPerOp, res.HasAllocs = prev.AllocsPerOp, true
			}
		}
		out[res.Name] = res
	}
	return out, nil
}

// parseBenchLine parses one `BenchmarkName-8  100  123 ns/op  4 B/op  2
// allocs/op` line, keeping the full (suffixed) name. Custom metrics (e.g.
// fsyncs/commit) are ignored.
func parseBenchLine(line string) (BenchResult, bool) {
	fields := strings.Fields(strings.TrimSpace(line))
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return BenchResult{}, false
	}
	if _, err := strconv.Atoi(fields[1]); err != nil {
		return BenchResult{}, false // not an iteration count: a status line
	}
	res := BenchResult{Name: fields[0]}
	found := false
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return BenchResult{}, false
		}
		switch fields[i+1] {
		case "ns/op":
			res.NsPerOp = v
			found = true
		case "allocs/op":
			res.AllocsPerOp = v
			res.HasAllocs = true
		}
	}
	return res, found
}

func truncate(s string) string {
	if len(s) > 80 {
		return s[:80] + "..."
	}
	return s
}

// Compare gates latest against baseline.
func Compare(baseline, latest map[string]BenchResult, opts Options) *Report {
	rep := &Report{}
	names := make([]string, 0, len(baseline))
	for n := range baseline {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, name := range names {
		base := baseline[name]
		cur, ok := latest[name]
		if !ok {
			rep.Missing = append(rep.Missing,
				fmt.Sprintf("%s: in baseline but missing from latest snapshot", name))
			continue
		}
		rep.Compared++
		limit := 1 + opts.MaxRegress
		if base.NsPerOp >= opts.FloorNs || cur.NsPerOp >= opts.FloorNs {
			if cur.NsPerOp > base.NsPerOp*limit {
				rep.Regressions = append(rep.Regressions,
					fmt.Sprintf("%s: ns/op %s -> %s (%+.1f%%, limit %+.0f%%)",
						name, fmtNum(base.NsPerOp), fmtNum(cur.NsPerOp),
						pct(base.NsPerOp, cur.NsPerOp), opts.MaxRegress*100))
			} else if base.NsPerOp > 0 && cur.NsPerOp < base.NsPerOp/limit {
				rep.Improvements = append(rep.Improvements,
					fmt.Sprintf("%s: ns/op %s -> %s (%+.1f%%)",
						name, fmtNum(base.NsPerOp), fmtNum(cur.NsPerOp), pct(base.NsPerOp, cur.NsPerOp)))
			}
		}
		if base.HasAllocs && cur.HasAllocs {
			if cur.AllocsPerOp > base.AllocsPerOp*limit && cur.AllocsPerOp > base.AllocsPerOp+opts.AllocSlack {
				rep.Regressions = append(rep.Regressions,
					fmt.Sprintf("%s: allocs/op %s -> %s (%+.1f%%, limit %+.0f%%)",
						name, fmtNum(base.AllocsPerOp), fmtNum(cur.AllocsPerOp),
						pct(base.AllocsPerOp, cur.AllocsPerOp), opts.MaxRegress*100))
			} else if base.AllocsPerOp > 0 && cur.AllocsPerOp < base.AllocsPerOp/limit {
				rep.Improvements = append(rep.Improvements,
					fmt.Sprintf("%s: allocs/op %s -> %s (%+.1f%%)",
						name, fmtNum(base.AllocsPerOp), fmtNum(cur.AllocsPerOp), pct(base.AllocsPerOp, cur.AllocsPerOp)))
			}
		}
	}
	for name := range latest {
		if _, ok := baseline[name]; !ok {
			rep.Added = append(rep.Added, name)
		}
	}
	sort.Strings(rep.Added)
	return rep
}

func pct(base, cur float64) float64 {
	if base == 0 {
		return 0
	}
	return (cur/base - 1) * 100
}

func fmtNum(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'f', 1, 64)
}

// Render writes the report in the order CI logs read best: failures first.
func (r *Report) Render(w io.Writer) {
	for _, line := range r.Regressions {
		fmt.Fprintf(w, "REGRESSION  %s\n", line)
	}
	for _, line := range r.Missing {
		fmt.Fprintf(w, "MISSING     %s\n", line)
	}
	for _, line := range r.Improvements {
		fmt.Fprintf(w, "improvement %s\n", line)
	}
	for _, name := range r.Added {
		fmt.Fprintf(w, "new         %s (not in baseline yet)\n", name)
	}
	fmt.Fprintf(w, "benchdiff: %d compared, %d regressed, %d missing, %d improved, %d new\n",
		r.Compared, len(r.Regressions), len(r.Missing), len(r.Improvements), len(r.Added))
	if len(r.Improvements) > 0 {
		fmt.Fprintln(w, "benchdiff: improvements beyond the threshold — consider refreshing BENCH_baseline.json to lock them in")
	}
}
