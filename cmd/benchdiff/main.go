package main

import (
	"flag"
	"fmt"
	"os"
)

func main() {
	var (
		baselinePath = flag.String("baseline", "BENCH_baseline.json", "committed baseline snapshot (go test -json)")
		latestPath   = flag.String("latest", "BENCH_latest.json", "freshly measured snapshot (go test -json)")
		maxRegress   = flag.Float64("max-regress", 0.25, "tolerated fractional regression on ns/op and allocs/op")
		floorNs      = flag.Float64("floor-ns", 1000, "skip ns/op comparison when both sides are below this (single-iteration noise)")
		allocSlack   = flag.Float64("alloc-slack", 2, "absolute allocs/op increase tolerated on top of the fraction")
		cpuMode      = flag.String("cpu", "auto", "GOMAXPROCS suffix handling: auto (keep only for multi-cpu runs), keep, strip")

		macroMode       = flag.Bool("macro", false, "compare macrobench scenario snapshots instead of go test -json benchmarks")
		macroP99Regress = flag.Float64("macro-p99-regress", DefaultMacroOptions().P99Regress, "tolerated fractional p99 latency increase per op class")
		macroTputRegres = flag.Float64("macro-tput-regress", DefaultMacroOptions().TputRegress, "tolerated fractional throughput decrease per op class")
		macroShedSlack  = flag.Float64("macro-shed-slack", DefaultMacroOptions().ShedSlack, "tolerated absolute shed-rate increase per op class")
		macroFloorNs    = flag.Float64("macro-floor-ns", DefaultMacroOptions().FloorNs, "skip p99 comparison when both sides are below this")
		macroMinOps     = flag.Int64("macro-min-ops", DefaultMacroOptions().MinOps, "skip op classes with fewer completed ops on either side")
	)
	flag.Parse()
	if *macroMode {
		opts := MacroOptions{
			P99Regress:  *macroP99Regress,
			TputRegress: *macroTputRegres,
			ShedSlack:   *macroShedSlack,
			FloorNs:     *macroFloorNs,
			MinOps:      *macroMinOps,
		}
		if err := runMacro(*baselinePath, *latestPath, opts, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	mode, err := parseCPUMode(*cpuMode)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	opts := Options{MaxRegress: *maxRegress, FloorNs: *floorNs, AllocSlack: *allocSlack}
	if err := run(*baselinePath, *latestPath, opts, mode, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func parseCPUMode(s string) (CPUSuffixMode, error) {
	switch s {
	case "auto":
		return CPUAuto, nil
	case "keep":
		return CPUKeep, nil
	case "strip":
		return CPUStrip, nil
	}
	return CPUAuto, fmt.Errorf("benchdiff: -cpu must be auto, keep, or strip (got %q)", s)
}

// run loads both snapshots, compares them, renders the report, and returns
// an error when the gate should fail the build.
func run(baselinePath, latestPath string, opts Options, mode CPUSuffixMode, out *os.File) error {
	baseline, err := loadSnapshot(baselinePath, mode)
	if err != nil {
		return err
	}
	latest, err := loadSnapshot(latestPath, mode)
	if err != nil {
		return err
	}
	rep := Compare(baseline, latest, opts)
	rep.Render(out)
	if rep.Failed() {
		return fmt.Errorf("benchdiff: gate failed: %d regression(s), %d missing benchmark(s)",
			len(rep.Regressions), len(rep.Missing))
	}
	return nil
}

func loadSnapshot(path string, mode CPUSuffixMode) (map[string]BenchResult, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("benchdiff: %w", err)
	}
	defer f.Close()
	snap, err := ParseSnapshotMode(f, mode)
	if err != nil {
		return nil, fmt.Errorf("benchdiff: %s: %w", path, err)
	}
	if len(snap) == 0 {
		return nil, fmt.Errorf("benchdiff: %s contains no benchmark results", path)
	}
	return snap, nil
}
