// Command florvet is FlorDB's custom static-analysis suite packaged as
// a `go vet -vettool` binary. It enforces the engine's MVCC, WAL, and
// snapshot invariants (DESIGN §10) on every package:
//
//	go build -o bin/florvet ./cmd/florvet
//	go vet -vettool=$(pwd)/bin/florvet ./...
//
// or simply `make vet-custom`. Analyzer flags pass through go vet, e.g.
// -lockfsync.exclude=flordb/internal/storage suppresses one analyzer
// for a package subtree; per-site suppression uses //florvet:ignore
// comments (see internal/lint/lintutil).
//
// The binary speaks the unitchecker protocol, so `go vet` invokes it
// once per package with full type information and build caching —
// identical to how the standard vet analyzers run.
package main

import (
	"golang.org/x/tools/go/analysis/unitchecker"

	"flordb/internal/lint"
)

func main() {
	unitchecker.Main(lint.Analyzers()...)
}
