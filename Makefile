# Development targets. `make check` is what CI runs.

.PHONY: check fmt vet build test bench

check: fmt vet build test bench

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	go vet ./...

build:
	go build ./...

test:
	go test -race ./...

bench:
	go test -run '^$$' -bench . -benchtime 1x .
