# Development targets. CI runs these as parallel jobs (see
# .github/workflows/ci.yml): lint (fmt+goimports+vet+florvet+staticcheck+
# govulncheck), test, crash-matrix, repl-matrix,
# race-stress, fuzz, bench followed by bench-gate — the benchmark
# regression gate — and macro followed by macro-gate — the macro-scenario
# tail-latency gate. bench-gate diffs the fresh BENCH_latest.json against the
# committed BENCH_baseline.json with cmd/benchdiff and fails on >25%
# regressions in ns/op or allocs/op; macro-gate diffs MACRO_latest.json
# against MACRO_baseline.json with cmd/benchdiff -macro and fails on p99,
# throughput, or shed-rate regressions past its per-metric thresholds. A PR
# that legitimately regresses (or improves) a defended number updates the
# corresponding committed baseline in the same PR, keeping the cost explicit
# and reviewable. The gates are CI steps, not part of `make check`: absolute
# figures only compare within one hardware class, so local machines run the
# snapshots (bench, macro) but not the diffs (bench-gate, macro-gate).

.PHONY: check fmt vet vet-custom build test race-stress repl-matrix bench bench-full bench-gate macro macro-gate fuzz

check: fmt vet vet-custom build test bench

fmt:
	@out=$$(gofmt -l . | grep -v '^vendor/' || true); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	go vet ./...

# vet-custom runs florvet, the project's own go/analysis suite
# (internal/lint): MVCC snapshot-release discipline, WAL error and
# lock-vs-fsync ordering, epoch publication order, atomic-field
# consistency, and deterministic rendering. DESIGN §10 maps each
# analyzer to the invariant it encodes. Suppressions: per-site
# //florvet:ignore comments, or -<analyzer>.exclude=pkg/prefix flags
# appended to the go vet line.
vet-custom:
	go build -o bin/florvet ./cmd/florvet
	go vet -vettool=$(abspath bin/florvet) ./...

build:
	go build ./...

test:
	go test -race ./...

# race-stress hammers the concurrent serving core (snapshot equivalence,
# SQL+RunScript+Compact stress, close draining, group commit) repeatedly
# with elevated parallelism; CI runs it on each push.
race-stress:
	GOMAXPROCS=8 go test -race -run Concurrent -count=3 -timeout 15m ./...

# repl-matrix runs the replication crash-equivalence suite under -race:
# the follower kill matrix (every byte of every segment fetch + each
# install/replay boundary), the primary compaction kill matrix, the
# gap/CRC refusal tests, and the randomized primary/replica equivalence
# property. See CONTRIBUTING.md; CI runs it as a parallel job.
repl-matrix:
	go test -race -run 'TestFollowerKillMatrix|TestPrimaryKillMatrix|TestFollowerRefuses|TestReplicaEqualsPrimaryProperty' -count=1 -timeout 15m -v ./internal/repl

# bench runs every benchmark once and snapshots the machine-readable output
# to BENCH_latest.json; CI uploads it as an artifact so the perf trajectory
# is tracked per PR. The C17 parallel-scan benchmarks are re-run under
# -cpu=1,2,4,8 so the snapshot carries per-GOMAXPROCS entries — cmd/benchdiff
# keys multi-cpu benchmarks by their -N suffix and gates each like-for-like.
# bench-full measures at default benchtime for local use.
bench:
	go test -run '^$$' -bench . -benchmem -count=1 -benchtime 1x -json . > BENCH_latest.json \
		|| { cat BENCH_latest.json; exit 1; }
	go test -run '^$$' -bench '^BenchmarkC17' -cpu 1,2,4,8 -benchmem -count=1 -benchtime 1x -json . >> BENCH_latest.json \
		|| { cat BENCH_latest.json; exit 1; }
	@echo "wrote BENCH_latest.json ($$(grep -c 'ns/op' BENCH_latest.json) benchmark results)"

bench-full:
	go test -run '^$$' -bench . -benchmem -count=1 .

# bench-gate is the CI benchmark-regression gate: compare the fresh
# snapshot against the committed baseline and fail on >25% regressions.
bench-gate:
	go run ./cmd/benchdiff -baseline BENCH_baseline.json -latest BENCH_latest.json

# macro runs every macro-benchmark scenario (mixed logging/query/replication
# workloads, internal/macrobench) for MACRO_SECS seconds each and snapshots
# per-op-class latency histograms, throughput, shed counts, and resource
# deltas to MACRO_latest.json. CI runs 10s per scenario with a fixed seed;
# nightly runs 60s (see nightly.yml).
MACRO_SECS ?= 10
MACRO_SEED ?= 1
macro:
	go run ./cmd/flordb macrobench --duration $(MACRO_SECS)s --seed $(MACRO_SEED) --out MACRO_latest.json all

# macro-gate is the CI macro-scenario regression gate: compare the fresh
# MACRO_latest.json against the committed MACRO_baseline.json, per scenario
# and op class, with per-metric thresholds (see cmd/benchdiff -macro flags
# and DefaultMacroOptions for the single-core-container rationale).
macro-gate:
	go run ./cmd/benchdiff -macro -baseline MACRO_baseline.json -latest MACRO_latest.json

# fuzz runs a short smoke pass over every native fuzz target (decoder, WAL
# replay, snapshot reader); CI runs it on each push.
fuzz:
	go test -run '^$$' -fuzz '^FuzzRecordDecode$$' -fuzztime 10s ./internal/record
	go test -run '^$$' -fuzz '^FuzzSnapshotRead$$' -fuzztime 10s ./internal/record
	go test -run '^$$' -fuzz '^FuzzColumnarPageRead$$' -fuzztime 10s ./internal/record
	go test -run '^$$' -fuzz '^FuzzWALReplay$$' -fuzztime 10s ./internal/storage
