// Crash-injection and durability tests for the snapshot-accelerated
// recovery path: every byte-truncation point of the WAL, every
// mid-compaction kill point, a randomized snapshot-plus-tail vs full-replay
// equivalence property, and concurrent commits racing a compaction.
package flor_test

import (
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"testing"

	flor "flordb"
	"flordb/internal/relation"
	"flordb/internal/storage"
)

// dumpSession renders every base-table row of a session as strings, for
// multiset comparison across recoveries.
func dumpSession(s *flor.Session) []string {
	t := s.Tables()
	var out []string
	for _, tbl := range []*relation.Table{t.Logs, t.Loops, t.Ts2vid, t.ObjStore, t.Args} {
		tbl.Scan(func(_ relation.RowID, r relation.Row) bool {
			line := tbl.Name()
			for _, v := range r {
				line += "|" + v.String()
			}
			out = append(out, line)
			return true
		})
	}
	sort.Strings(out)
	return out
}

func assertSameRows(t *testing.T, label string, got, want []string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d rows, want %d\ngot:  %v\nwant: %v", label, len(got), len(want), got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: row %d = %q, want %q", label, i, got[i], want[i])
		}
	}
}

// copyTree clones a project directory so each crash point starts from the
// same on-disk state.
func copyTree(t *testing.T, src, dst string) {
	t.Helper()
	err := filepath.Walk(src, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if info.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		in, err := os.Open(path)
		if err != nil {
			return err
		}
		defer in.Close()
		out, err := os.Create(target)
		if err != nil {
			return err
		}
		defer out.Close()
		_, err = io.Copy(out, in)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
}

type commitPoint struct {
	walSize int64    // active WAL size after the commit's flush
	rows    []string // committed table state at that point
}

// TestCrashInjectionTruncationMatrix records a known workload, then for
// every byte-truncation point of the WAL reopens the project and asserts the
// recovered tables equal exactly the longest committed prefix that survived
// — never an error, never a phantom uncommitted row. At a stride it also
// commits new work on top of the truncated log and reopens again, proving a
// later commit cannot resurrect truncated uncommitted records.
func TestCrashInjectionTruncationMatrix(t *testing.T) {
	base := t.TempDir()
	s, err := flor.Open(base, "proj", flor.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s.SetFilename("w.go")
	walFile := filepath.Join(base, ".flor", "flor.wal")
	points := []commitPoint{{walSize: 0, rows: nil}} // state before any commit

	capture := func() {
		st, err := os.Stat(walFile)
		if err != nil {
			t.Fatal(err)
		}
		points = append(points, commitPoint{walSize: st.Size(), rows: dumpSession(s)})
	}

	// Commit 1: plain logs plus a loop.
	s.Log("acc", 0.91)
	s.Log("note", "first")
	for it := s.Loop("epoch", 2); it.Next(); {
		s.Log("loss", 1.0/float64(it.Index()+1))
	}
	if err := s.Commit("c1"); err != nil {
		t.Fatal(err)
	}
	capture()

	// Commit 2: an arg resolution and a staged file (exercises ts2vid).
	s.ArgInt("hidden", 32)
	s.StageFile("w.flow", "x = 1\n")
	s.Log("acc", 0.93)
	if err := s.Commit("c2"); err != nil {
		t.Fatal(err)
	}
	capture()

	// Commit 3: more logs so the final commit has a multi-record body.
	s.Log("acc", 0.95)
	s.Log("recall", 0.88)
	if err := s.Commit("c3"); err != nil {
		t.Fatal(err)
	}
	capture()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	full, err := os.ReadFile(walFile)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(full)) != points[len(points)-1].walSize {
		t.Fatalf("wal size %d != last capture %d", len(full), points[len(points)-1].walSize)
	}

	for cut := 0; cut <= len(full); cut++ {
		want := points[0]
		for _, p := range points {
			if p.walSize <= int64(cut) {
				want = p
			}
		}
		cdir := t.TempDir()
		copyTree(t, base, cdir)
		cwal := filepath.Join(cdir, ".flor", "flor.wal")
		if err := os.WriteFile(cwal, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		s2, err := flor.Open(cdir, "proj", flor.Options{})
		if err != nil {
			t.Fatalf("truncation at byte %d: open failed: %v", cut, err)
		}
		assertSameRows(t, fmt.Sprintf("truncation at byte %d", cut), dumpSession(s2), want.rows)

		// Resurrection check (strided: each reopen-and-commit is 2 more
		// recoveries): new committed work must not revive the truncated
		// uncommitted tail.
		if cut%13 == 0 || cut == len(full) {
			s2.Log("post", int64(cut))
			if err := s2.Commit("post-crash"); err != nil {
				t.Fatal(err)
			}
			if err := s2.Close(); err != nil {
				t.Fatal(err)
			}
			s3, err := flor.Open(cdir, "proj", flor.Options{})
			if err != nil {
				t.Fatalf("reopen after post-crash commit at %d: %v", cut, err)
			}
			got := dumpSession(s3)
			var posts, known int
			for _, row := range got {
				switch {
				case containsField(row, "post"):
					posts++
				default:
					known++
				}
			}
			if posts != 1 || known != len(want.rows) {
				t.Fatalf("truncation at %d: after new commit got %d post rows and %d old rows (want 1, %d): %v",
					cut, posts, known, len(want.rows), got)
			}
			assertSameRows(t, fmt.Sprintf("old rows after new commit at %d", cut), without(got, "post"), want.rows)
			s3.Close()
		} else {
			s2.Close()
		}
	}
}

func containsField(row, field string) bool {
	for _, part := range splitRow(row) {
		if part == field {
			return true
		}
	}
	return false
}

func splitRow(row string) []string {
	var parts []string
	start := 0
	for i := 0; i < len(row); i++ {
		if row[i] == '|' {
			parts = append(parts, row[start:i])
			start = i + 1
		}
	}
	return append(parts, row[start:])
}

func without(rows []string, field string) []string {
	var out []string
	for _, r := range rows {
		if !containsField(r, field) {
			out = append(out, r)
		}
	}
	return out
}

// TestCrashInjectionCompactionKillPoints kills a compaction at each step —
// after the snapshot temp write, before the atomic rename, after the rename,
// and before the covered segments are deleted — then reopens and asserts the
// recovered state is byte-identical to the pre-compaction committed state,
// and that a subsequent compaction completes the interrupted cycle.
func TestCrashInjectionCompactionKillPoints(t *testing.T) {
	base := t.TempDir()
	s, err := flor.Open(base, "proj", flor.Options{SegmentBytes: 200})
	if err != nil {
		t.Fatal(err)
	}
	s.SetFilename("w.go")
	for c := 0; c < 6; c++ {
		s.Log("acc", 0.8+float64(c)/100)
		s.Log("step", int64(c))
		if err := s.Commit(fmt.Sprintf("c%d", c)); err != nil {
			t.Fatal(err)
		}
	}
	want := dumpSession(s)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if segs, _ := storage.ListSegments(filepath.Join(base, ".flor", "flor.wal")); len(segs) < 2 {
		t.Fatalf("workload sealed only %d segments; matrix needs several", len(segs))
	}

	boom := fmt.Errorf("injected crash")
	kills := []struct {
		name string
		arm  func(c *storage.Compactor)
	}{
		{"none", func(c *storage.Compactor) {}},
		// The v3 columnar writer streams one table section at a time, so a
		// crash can leave a syntactically plausible prefix (magic + meta +
		// some complete sections) with no CRC trailer. Kill after the first
		// section and after the last to cover both truncation shapes.
		{"mid snapshot write first table", func(c *storage.Compactor) {
			c.MidSnapshotWrite = func(table string) error { return boom }
		}},
		{"mid snapshot write last table", func(c *storage.Compactor) {
			c.MidSnapshotWrite = func(table string) error {
				if table == "args" {
					return boom
				}
				return nil
			}
		}},
		{"after snapshot write", func(c *storage.Compactor) { c.AfterSnapshotWrite = func() error { return boom } }},
		{"before rename", func(c *storage.Compactor) { c.BeforeRename = func() error { return boom } }},
		{"after rename", func(c *storage.Compactor) { c.AfterRename = func() error { return boom } }},
		{"before segment delete", func(c *storage.Compactor) { c.BeforeSegmentDelete = func() error { return boom } }},
	}
	for _, kill := range kills {
		t.Run(kill.name, func(t *testing.T) {
			cdir := t.TempDir()
			copyTree(t, base, cdir)
			walFile := filepath.Join(cdir, ".flor", "flor.wal")
			w, err := storage.OpenWAL(walFile, storage.Options{})
			if err != nil {
				t.Fatal(err)
			}
			blobs, err := storage.NewBlobStore(filepath.Join(cdir, ".flor", "objects"))
			if err != nil {
				t.Fatal(err)
			}
			c := &storage.Compactor{WAL: w, Blobs: blobs}
			kill.arm(c)
			_, err = c.Compact()
			if kill.name == "none" && err != nil {
				t.Fatal(err)
			}
			if kill.name != "none" && err != boom {
				t.Fatalf("kill point did not fire: %v", err)
			}
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}

			// The "crashed" project must recover to exactly the committed state.
			s2, err := flor.Open(cdir, "proj", flor.Options{})
			if err != nil {
				t.Fatalf("open after crash %q: %v", kill.name, err)
			}
			assertSameRows(t, "after crash "+kill.name, dumpSession(s2), want)

			// And the interrupted compaction completes on retry.
			if _, err := s2.Compact(); err != nil {
				t.Fatalf("compaction retry after %q: %v", kill.name, err)
			}
			if err := s2.Close(); err != nil {
				t.Fatal(err)
			}
			s3, err := flor.Open(cdir, "proj", flor.Options{})
			if err != nil {
				t.Fatal(err)
			}
			assertSameRows(t, "after retried compaction "+kill.name, dumpSession(s3), want)
			snaps, _ := storage.ListSnapshots(filepath.Join(cdir, ".flor", "flor.wal"))
			if len(snaps) == 0 {
				t.Fatal("no snapshot installed after retry")
			}
			s3.Close()
		})
	}
}

// TestSnapshotPlusTailEqualsFullReplayProperty drives two project
// directories through an identical randomized workload — one compacting
// aggressively with tiny segments, one never compacting — and asserts their
// recovered states are row-multiset equal across all tables, for several
// seeds. This is the property that makes compaction a pure optimization.
func TestSnapshotPlusTailEqualsFullReplayProperty(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed * 7919))
			dirA := t.TempDir()
			dirB := t.TempDir()
			a, err := flor.Open(dirA, "prop", flor.Options{SegmentBytes: 256, SnapshotEvery: 3})
			if err != nil {
				t.Fatal(err)
			}
			b, err := flor.Open(dirB, "prop", flor.Options{SegmentBytes: -1})
			if err != nil {
				t.Fatal(err)
			}
			both := []*flor.Session{a, b}
			for _, s := range both {
				s.SetFilename("w.go")
			}
			names := []string{"acc", "loss", "recall", "note"}
			for i := 0; i < 150; i++ {
				switch rng.Intn(10) {
				case 0, 1, 2, 3:
					name := names[rng.Intn(len(names))]
					val := any(rng.Int63n(100))
					switch rng.Intn(4) {
					case 0:
						val = rng.Float64()
					case 1:
						val = fmt.Sprintf("s%d", rng.Intn(5))
					case 2:
						val = rng.Intn(2) == 0
					}
					for _, s := range both {
						s.Log(name, val)
					}
				case 4, 5:
					n := 1 + rng.Intn(3)
					for _, s := range both {
						for it := s.Loop("epoch", n); it.Next(); {
							s.Log("inner", int64(it.Index()))
						}
					}
				case 6:
					def := rng.Int63n(64)
					for _, s := range both {
						s.ArgInt("hidden", def)
					}
				case 7, 8:
					for _, s := range both {
						if err := s.Commit(""); err != nil {
							t.Fatal(err)
						}
					}
				case 9:
					// Extra compactions on A only: the property says they
					// must be invisible.
					if _, err := a.Compact(); err != nil {
						t.Fatal(err)
					}
				}
			}
			// Roughly half the seeds end with an uncommitted tail, which
			// strict recovery must drop identically on both sides.
			if rng.Intn(2) == 0 {
				for _, s := range both {
					if err := s.Commit("final"); err != nil {
						t.Fatal(err)
					}
				}
			}
			if _, err := a.Compact(); err != nil {
				t.Fatal(err)
			}
			a.Close()
			b.Close()

			ra, err := flor.Open(dirA, "prop", flor.Options{})
			if err != nil {
				t.Fatal(err)
			}
			rb, err := flor.Open(dirB, "prop", flor.Options{})
			if err != nil {
				t.Fatal(err)
			}
			assertSameRows(t, "snapshot+tail vs full replay", dumpSession(ra), dumpSession(rb))
			if ra.Tstamp() != rb.Tstamp() {
				t.Fatalf("tstamp diverged: %d vs %d", ra.Tstamp(), rb.Tstamp())
			}
			if segs, _ := storage.ListSegments(filepath.Join(dirB, ".flor", "flor.wal")); len(segs) != 0 {
				t.Fatalf("control session rotated segments: %v", segs)
			}
			ra.Close()
			rb.Close()
		})
	}
}

// TestConcurrentCommitsAndCompaction runs N goroutines logging and
// committing into one session while compactions run, then reopens and
// asserts no committed record was lost. Run under -race in CI.
func TestConcurrentCommitsAndCompaction(t *testing.T) {
	dir := t.TempDir()
	s, err := flor.Open(dir, "race", flor.Options{SegmentBytes: 512, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	s.SetFilename("w.go")
	const writers, perWriter = 4, 25
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			name := fmt.Sprintf("g%d", g)
			for i := 0; i < perWriter; i++ {
				s.Log(name, int64(i))
				if err := s.Commit(""); err != nil {
					t.Errorf("writer %d: %v", g, err)
					return
				}
			}
		}(g)
	}
	compacted := make(chan struct{})
	go func() {
		defer close(compacted)
		for i := 0; i < 8; i++ {
			if _, err := s.Compact(); err != nil {
				t.Errorf("compact: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	<-compacted
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := flor.Open(dir, "race", flor.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	counts := make(map[string]int)
	s2.Tables().Logs.Scan(func(_ relation.RowID, r relation.Row) bool {
		counts[r[4].AsText()]++
		return true
	})
	for g := 0; g < writers; g++ {
		name := fmt.Sprintf("g%d", g)
		if counts[name] != perWriter {
			t.Fatalf("writer %s: recovered %d of %d committed records", name, counts[name], perWriter)
		}
	}
}
