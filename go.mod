module flordb

go 1.24
