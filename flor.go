// Package flor is the public API of FlorDB-in-Go — a reproduction of
// "Flow with FlorDB: Incremental Context Maintenance for the Machine
// Learning Lifecycle" (CIDR 2025).
//
// The API mirrors §2.1 of the paper:
//
//	sess, _ := flor.Open(dir, "my-project")
//	defer sess.Close()
//
//	lr := sess.ArgFloat("lr", 1e-3)
//	ck := sess.Checkpointing(map[string]flor.Snapshotter{"model": net})
//	for it := sess.Loop("epoch", epochs); it.Next(); {
//	    ...
//	    sess.Log("loss", loss)
//	}
//	ck.Close()
//	sess.Log("acc", acc)
//	sess.Commit("trained")
//
//	df, _ := sess.Dataframe("acc", "recall")
//	best, _ := df.ArgMax("recall")
//
// Beyond the native Go API, sessions execute Flow pipeline scripts
// (RunScript) and perform multiversion hindsight logging over them
// (Hindsight): add a flor.log statement to the newest version of a script
// and FlorDB propagates it into all committed versions and replays them
// incrementally from checkpoints.
package flor

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"flordb/internal/build"
	"flordb/internal/pivot"
	"flordb/internal/record"
	"flordb/internal/relation"
	"flordb/internal/replay"
	"flordb/internal/script"
	"flordb/internal/sqlparse"
	"flordb/internal/storage"
	"flordb/internal/vcs"
)

// Snapshotter is re-exported so callers don't import internal packages.
type Snapshotter = script.Snapshotter

// Dataframe is the pivoted metadata view (flor.dataframe in the paper).
type Dataframe = pivot.Dataframe

// Session is one FlorDB project handle. It owns the metadata database, the
// WAL, the checkpoint blob store, and the version-control repository.
// Methods are safe for concurrent use unless noted.
type Session struct {
	ProjID string

	mu        sync.Mutex
	runMu     sync.Mutex // serializes whole RunScript executions
	dir       string     // "" for in-memory sessions
	db        *relation.Database
	tables    *record.Tables
	wal       *storage.WAL
	blobs     *storage.BlobStore
	repo      *vcs.Repo
	tstamp    int64
	recorder  *replay.Recorder
	snapEvery int               // auto-compact every N commits (0 = never)
	sinceSnap int               // commits since the last auto-compaction
	workspace map[string]string // filename -> contents staged for commit
	hosts     map[string]script.HostFunc
	cliArgs   map[string]string
	rootTgt   string
	stdout    io.Writer
}

// Options configures session opening.
type Options struct {
	// Args carries command-line overrides consumed by flor.arg.
	Args map[string]string
	// Policy selects the checkpointing policy (nil = adaptive 5%).
	Policy replay.CheckpointPolicy
	// NoSync disables WAL fsync (benchmarks).
	NoSync bool
	// SegmentBytes rotates flor.wal into sealed, numbered segments once the
	// active file reaches this size at a commit boundary. 0 applies the
	// default (storage.DefaultSegmentBytes); negative disables rotation.
	// Sealed segments are what compaction folds into snapshots and deletes.
	SegmentBytes int64
	// SnapshotEvery compacts automatically every N commits, keeping startup
	// O(live data) without explicit Session.Compact calls. Each compaction
	// cycle costs O(live data + delta) and runs synchronously inside the
	// triggering Commit, so size N to amortize it. 0 disables
	// auto-compaction.
	SnapshotEvery int
	// Stdout receives Flow script print output (nil = discard).
	Stdout io.Writer
}

// Open opens (creating if necessary) the FlorDB project rooted at dir. All
// durable state lives under dir/.flor.
func Open(dir, projid string, opts Options) (*Session, error) {
	florDir := filepath.Join(dir, ".flor")
	if err := os.MkdirAll(florDir, 0o755); err != nil {
		return nil, fmt.Errorf("flor: %w", err)
	}
	segBytes := opts.SegmentBytes
	if segBytes == 0 {
		segBytes = storage.DefaultSegmentBytes
	} else if segBytes < 0 {
		segBytes = 0
	}
	wal, err := storage.OpenWAL(filepath.Join(florDir, "flor.wal"), storage.Options{NoSync: opts.NoSync, SegmentBytes: segBytes})
	if err != nil {
		return nil, err
	}
	blobs, err := storage.NewBlobStore(filepath.Join(florDir, "objects"))
	if err != nil {
		return nil, err
	}
	repo, err := vcs.Load(filepath.Join(florDir, "repo.json"))
	if err != nil {
		return nil, err
	}
	s, err := newSession(projid, dir, wal, blobs, repo, opts)
	if err != nil {
		wal.Close() // releases the project lock
		return nil, err
	}
	return s, nil
}

// OpenMemory creates an ephemeral in-memory session (no WAL, no blob files);
// useful for tests and benchmarks.
func OpenMemory(projid string, opts Options) (*Session, error) {
	return newSession(projid, "", nil, nil, vcs.NewRepo(), opts)
}

func newSession(projid, dir string, wal *storage.WAL, blobs *storage.BlobStore, repo *vcs.Repo, opts Options) (*Session, error) {
	db := relation.NewDatabase()
	tables, err := record.CreateTables(db)
	if err != nil {
		return nil, err
	}
	s := &Session{
		ProjID:    projid,
		dir:       dir,
		db:        db,
		tables:    tables,
		wal:       wal,
		blobs:     blobs,
		repo:      repo,
		tstamp:    1,
		snapEvery: opts.SnapshotEvery,
		workspace: make(map[string]string),
		hosts:     make(map[string]script.HostFunc),
		cliArgs:   opts.Args,
		stdout:    opts.Stdout,
	}
	if s.stdout == nil {
		s.stdout = io.Discard
	}

	// Recover prior state from the WAL.
	if wal != nil {
		maxTs, err := s.recover()
		if err != nil {
			return nil, err
		}
		if maxTs >= s.tstamp {
			s.tstamp = maxTs + 1
		}
	}

	// Register the git virtual table over the repo.
	gitVT := &relation.FuncVirtualTable{
		TableName:   "git",
		TableSchema: record.GitSchema(),
		RowsFn: func() []relation.Row {
			raw, err := s.repo.GitRows()
			if err != nil {
				return nil
			}
			rows := make([]relation.Row, len(raw))
			for i, r := range raw {
				parent := relation.Null()
				if r[2] != "" {
					parent = relation.Text(r[2])
				}
				rows[i] = relation.Row{relation.Text(r[0]), relation.Text(r[1]), parent, relation.Text(r[3])}
			}
			return rows
		},
	}
	if err := db.RegisterVirtual(gitVT); err != nil {
		return nil, err
	}

	ctx := &replay.Context{
		ProjID: projid, Filename: "main", Tstamp: s.tstamp,
		Tables: tables, WAL: wal, Blobs: blobs,
	}
	ckpt := replay.NewCheckpointManager(opts.Policy)
	s.recorder = replay.NewRecorder(ctx, ckpt)
	s.recorder.Args = opts.Args
	s.recorder.SetCtxCounter(replay.MaxCtxID(tables))
	s.recorder.OnCommit = func() error { return s.Commit("") }
	return s, nil
}

// recover rebuilds the tables from the newest valid snapshot plus the WAL
// tail (storage.RecoverTables): ts2vid rows come from commit records,
// obj_store blobs from checkpoint records + blob store. Recovery is strict —
// only records covered by a commit are visible (§2.1) — and the uncommitted
// or torn tail of the active WAL file is truncated so a later commit cannot
// resurrect records that were never durable.
func (s *Session) recover() (int64, error) {
	res, err := storage.RecoverTables(s.wal.Path(), s.tables, s.blobs, s.rootTgt, true)
	if err != nil {
		return 0, err
	}
	if err := s.wal.Truncate(res.ActiveCommittedLen); err != nil {
		return 0, err
	}
	return res.MaxTstamp, nil
}

// Tstamp returns the current logical timestamp (version counter).
func (s *Session) Tstamp() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tstamp
}

// SetFilename sets the filename recorded on subsequent native-API log
// records (the paper profiles the executing file automatically; Go programs
// declare it).
func (s *Session) SetFilename(name string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.recorder.Ctx.Filename = name
}

// ---------- Native Go API (§2.1) ----------

// Log records a named value and returns it (flor.log).
func (s *Session) Log(name string, v any) any {
	out, err := s.recorder.Log(name, toScriptValue(v))
	if err != nil {
		return v
	}
	return out
}

// ArgInt resolves an integer hyperparameter (flor.arg).
func (s *Session) ArgInt(name string, def int64) int64 {
	v, err := s.recorder.Arg(name, def)
	if err != nil {
		return def
	}
	return v.(int64)
}

// ArgFloat resolves a float hyperparameter (flor.arg).
func (s *Session) ArgFloat(name string, def float64) float64 {
	v, err := s.recorder.Arg(name, def)
	if err != nil {
		return def
	}
	return v.(float64)
}

// ArgString resolves a string hyperparameter (flor.arg).
func (s *Session) ArgString(name, def string) string {
	v, err := s.recorder.Arg(name, def)
	if err != nil {
		return def
	}
	return v.(string)
}

// LoopIter drives one flor.loop from native Go code.
type LoopIter struct {
	sess    *replay.Recorder
	session script.LoopSession
	n       int
	i       int
	started bool
	err     error
	vals    []script.Value // non-nil for LoopVals loops
}

// Loop begins a named loop over n iterations (flor.loop). Iterate with
// Next/Index; the loop closes itself when Next returns false.
func (s *Session) Loop(name string, n int) *LoopIter {
	vals := make([]script.Value, n)
	for i := range vals {
		vals[i] = int64(i)
	}
	ls, err := s.recorder.LoopBegin(name, vals)
	return &LoopIter{sess: s.recorder, session: ls, n: n, i: -1, err: err}
}

// LoopVals begins a named loop over explicit values (e.g. document names).
func (s *Session) LoopVals(name string, vals []string) *LoopIter {
	sv := make([]script.Value, len(vals))
	for i, v := range vals {
		sv[i] = v
	}
	ls, err := s.recorder.LoopBegin(name, sv)
	return &LoopIter{sess: s.recorder, session: ls, n: len(vals), i: -1, err: err,
		vals: sv}
}

// Next advances the loop; it returns false at the end (and finalizes the
// loop context).
func (it *LoopIter) Next() bool {
	if it.err != nil {
		return false
	}
	if it.started {
		if err := it.session.PostIter(it.i, it.val()); err != nil {
			it.err = err
			return false
		}
	}
	it.i++
	if it.i >= it.n {
		it.err = it.session.End()
		return false
	}
	run, err := it.session.Decide(it.i, it.val())
	if err != nil {
		it.err = err
		return false
	}
	it.started = true
	_ = run // recording always runs
	return true
}

// vals is non-nil for LoopVals loops.
func (it *LoopIter) val() script.Value {
	if it.vals != nil {
		return it.vals[it.i]
	}
	return int64(it.i)
}

// Index returns the current iteration index.
func (it *LoopIter) Index() int { return it.i }

// Err reports any error the loop hit.
func (it *LoopIter) Err() error { return it.err }

// Checkpointing opens a flor.checkpointing scope over the given objects.
// Close it when the training loop finishes.
type CheckpointScope struct{ rec *replay.Recorder }

// Checkpointing registers objects for adaptive checkpointing.
func (s *Session) Checkpointing(objs map[string]Snapshotter) (*CheckpointScope, error) {
	m := make(map[string]script.Value, len(objs))
	for k, v := range objs {
		m[k] = v
	}
	if err := s.recorder.CheckpointingBegin(m); err != nil {
		return nil, err
	}
	return &CheckpointScope{rec: s.recorder}, nil
}

// Close ends the checkpointing scope.
func (c *CheckpointScope) Close() error { return c.rec.CheckpointingEnd() }

// StageFile registers file contents to be captured by the next Commit —
// FlorDB's automatic version control of executed code.
func (s *Session) StageFile(name, contents string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.workspace[name] = contents
}

// Commit is flor.commit(): it snapshots the staged workspace into the
// version store, writes the ts2vid row, appends a durable commit record,
// and increments the logical timestamp (§2.1).
func (s *Session) Commit(message string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var vid string
	if len(s.workspace) > 0 {
		files := make(map[string]string, len(s.workspace))
		for k, v := range s.workspace {
			files[k] = v
		}
		v, err := s.repo.CommitFiles(files, message, time.Now())
		if err != nil {
			return err
		}
		vid = v
		if _, err := s.tables.Ts2vid.Insert(relation.Row{
			relation.Text(s.ProjID), relation.Int(s.tstamp), relation.Int(s.tstamp),
			relation.Text(vid), relation.Text(s.rootTgt),
		}); err != nil {
			return err
		}
	}
	if s.wal != nil {
		rec := &record.CommitRecord{
			Kind: record.KindCommit, ProjID: s.ProjID, Tstamp: s.tstamp,
			VID: vid, Wall: time.Now().UTC(),
		}
		if err := s.wal.AppendCommit(rec); err != nil {
			return err
		}
	}
	if s.dir != "" {
		if err := s.repo.Save(filepath.Join(s.dir, ".flor", "repo.json")); err != nil {
			return err
		}
	}
	s.tstamp++
	s.recorder.Ctx.SetTstamp(s.tstamp)
	if s.wal != nil && s.snapEvery > 0 {
		s.sinceSnap++
		if s.sinceSnap >= s.snapEvery {
			// Compaction is an optimization, not part of commit durability:
			// the commit record is already fsynced, so a failed compaction
			// must not make a successful Commit report an error (a caller
			// retrying the "failed" transaction would duplicate it). The
			// counter resets only when a snapshot actually covers history —
			// an error, or a no-op because a concurrent append kept the WAL
			// tail unsealable, retries at the next commit; a persistent
			// failure surfaces through explicit Compact calls.
			if st, err := s.compactLocked(); err == nil && st.SnapshotSeq > 0 {
				s.sinceSnap = 0
			}
		}
	}
	return nil
}

// Compact folds the WAL's sealed history into a durable table snapshot and
// deletes the covered segments, making the next Open O(live data) instead of
// O(total history). It is safe to call while other goroutines log and
// commit; only data committed before the call is guaranteed to be covered.
func (s *Session) Compact() (storage.CompactStats, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.compactLocked()
}

func (s *Session) compactLocked() (storage.CompactStats, error) {
	if s.wal == nil {
		return storage.CompactStats{}, fmt.Errorf("flor: in-memory session has no WAL to compact")
	}
	c := &storage.Compactor{WAL: s.wal, Blobs: s.blobs, RootTarget: s.rootTgt}
	return c.Compact()
}

// ---------- Query surface ----------

// Dataframe pivots the named logged values across all versions (§2.1
// flor.dataframe).
func (s *Session) Dataframe(names ...string) (*Dataframe, error) {
	return pivot.Build(s.tables, s.ProjID, names, pivot.Options{})
}

// DataframeAt pivots restricted to one file and/or version.
func (s *Session) DataframeAt(filename string, tstamp int64, names ...string) (*Dataframe, error) {
	return pivot.Build(s.tables, s.ProjID, names, pivot.Options{Filename: filename, Tstamp: tstamp})
}

// SQL runs a SQL query over the Figure-1 schema (logs, loops, ts2vid,
// obj_store, args, git, build_deps when registered). Prefix a query with
// EXPLAIN to get the chosen query plan instead of rows.
func (s *Session) SQL(query string) (*sqlparse.Result, error) {
	return sqlparse.Run(s.db, query)
}

// Explain returns the query plan the planner chose for a SQL query as
// indented text, one operator per line — equivalent to running the query
// with an EXPLAIN prefix.
func (s *Session) Explain(query string) (string, error) {
	stmt, err := sqlparse.Parse(query)
	if err != nil {
		return "", err
	}
	stmt.Explain = true
	res, err := sqlparse.Execute(s.db, stmt)
	if err != nil {
		return "", err
	}
	lines := make([]string, len(res.Rows))
	for i, r := range res.Rows {
		lines[i] = r[0].String()
	}
	return strings.Join(lines, "\n"), nil
}

// Database exposes the catalog (for registering additional virtual tables,
// e.g. build_deps).
func (s *Session) Database() *relation.Database { return s.db }

// Tables exposes the base tables (read-mostly; used by the web UI).
func (s *Session) Tables() *record.Tables { return s.tables }

// Hooks exposes the session's recording hooks for direct use with a Flow
// interpreter (benchmarks isolate hook cost this way; normal callers should
// use RunScript).
func (s *Session) Hooks() script.FlorHooks { return s.recorder }

// Repo exposes the version store.
func (s *Session) Repo() *vcs.Repo { return s.repo }

// RegisterBuild installs a makefile's build_deps virtual table.
func (s *Session) RegisterBuild(mf *build.Makefile, runner *build.Runner) error {
	return s.db.RegisterVirtual(build.DepsVirtualTable(mf, runner, ""))
}

// ---------- Flow scripts ----------

// RegisterHost exposes a Go function to Flow scripts run by this session.
func (s *Session) RegisterHost(name string, fn script.HostFunc) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.hosts[name] = fn
}

// RunScript executes a Flow script under recording: logs, loops, args and
// checkpoints are captured with the script's filename; the source is staged
// so the next Commit versions it. The paper's equivalent is `python
// train.py` under FlorDB instrumentation. Script runs are serialized:
// recording attributes every record to the session's current filename, so
// concurrent callers (parallel build targets, web UI handlers) queue here.
func (s *Session) RunScript(filename, src string) error {
	f, err := script.Parse(filename, src)
	if err != nil {
		return err
	}
	s.runMu.Lock()
	defer s.runMu.Unlock()
	s.mu.Lock()
	prevFile := s.recorder.Ctx.Filename
	s.recorder.Ctx.Filename = filename
	s.workspace[filename] = src
	hosts := make(map[string]script.HostFunc, len(s.hosts))
	for k, v := range s.hosts {
		hosts[k] = v
	}
	stdout := s.stdout
	s.mu.Unlock()

	in := script.NewInterp(s.recorder, stdout)
	for name, fn := range hosts {
		in.RegisterHost(name, fn)
	}
	runErr := in.Run(f)

	s.mu.Lock()
	s.recorder.Ctx.Filename = prevFile
	s.mu.Unlock()
	return runErr
}

// ---------- Multiversion hindsight logging ----------

// HindsightReport summarizes one version's backfill.
type HindsightReport = replay.VersionReport

// Hindsight performs the paper's §2 "magic trick" for a script file: the
// new source's added log statements are propagated into every committed
// version of the file and replayed incrementally (from checkpoints, in
// parallel) to materialize the new metadata retroactively. targets
// optionally restricts which checkpoint-loop iterations are materialized.
// Hindsight should not run concurrently with active recording: backfilled
// records interleave with live ones, and the durability marker appended
// when the WAL tail was clean at the start would also cover records logged
// mid-backfill.
func (s *Session) Hindsight(filename, newSrc string, targets []int) ([]HindsightReport, error) {
	versions, err := replay.HistoricalVersions(s.repo, s.tables, s.ProjID, filename)
	if err != nil {
		return nil, err
	}
	if len(versions) == 0 {
		return nil, fmt.Errorf("flor: no committed versions of %s to backfill", filename)
	}
	s.mu.Lock()
	hosts := make(map[string]script.HostFunc, len(s.hosts))
	for k, v := range s.hosts {
		hosts[k] = v
	}
	s.mu.Unlock()
	d := &replay.Driver{
		Repo: s.repo, Tables: s.tables, WAL: s.wal, Blobs: s.blobs,
		ProjID: s.ProjID,
		Setup: func(in *script.Interp) {
			for name, fn := range hosts {
				in.RegisterHost(name, fn)
			}
		},
	}
	// Backfilled records carry historical tstamps and would otherwise sit in
	// the uncommitted WAL tail, which strict recovery discards. When the
	// tail was committed before the backfill started, only backfill records
	// are in it, so a commit marker makes them durable immediately. When the
	// caller has a transaction in flight, a marker would wrongly commit
	// those records too — so the backfill simply rides along with the
	// caller's next Commit instead.
	tailWasCommitted := s.wal != nil && s.wal.TailCommitted()
	reports, err := d.Hindsight(filename, newSrc, versions, targets)
	if err == nil && s.wal != nil && tailWasCommitted {
		s.mu.Lock()
		// Tstamp s.tstamp-1 keeps the recovered version counter equal to the
		// live one (commit markers do not open a new version).
		mark := &record.CommitRecord{
			Kind: record.KindCommit, ProjID: s.ProjID,
			Tstamp: s.tstamp - 1, Wall: time.Now().UTC(),
		}
		werr := s.wal.AppendCommit(mark)
		s.mu.Unlock()
		if werr != nil {
			return reports, werr
		}
	}
	return reports, err
}

// Versions lists the committed versions of a file, oldest first.
func (s *Session) Versions(filename string) ([]replay.VersionJob, error) {
	return replay.HistoricalVersions(s.repo, s.tables, s.ProjID, filename)
}

// LoggedNamesAcrossVersions returns, per version timestamp, the set of value
// names logged — useful for seeing which versions are missing which metadata.
func (s *Session) LoggedNamesAcrossVersions() map[int64][]string {
	byTs := make(map[int64]map[string]bool)
	s.tables.Logs.Scan(func(_ relation.RowID, r relation.Row) bool {
		if r[0].AsText() != s.ProjID {
			return true
		}
		ts := r[1].AsInt()
		if byTs[ts] == nil {
			byTs[ts] = make(map[string]bool)
		}
		byTs[ts][r[4].AsText()] = true
		return true
	})
	out := make(map[int64][]string, len(byTs))
	for ts, set := range byTs {
		names := make([]string, 0, len(set))
		for n := range set {
			names = append(names, n)
		}
		sort.Strings(names)
		out[ts] = names
	}
	return out
}

// Close flushes and closes the session's durable resources.
func (s *Session) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wal != nil {
		return s.wal.Close()
	}
	return nil
}

func toScriptValue(v any) script.Value {
	switch x := v.(type) {
	case int:
		return int64(x)
	case int32:
		return int64(x)
	case float32:
		return float64(x)
	default:
		return v
	}
}
