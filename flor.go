// Package flor is the public API of FlorDB-in-Go — a reproduction of
// "Flow with FlorDB: Incremental Context Maintenance for the Machine
// Learning Lifecycle" (CIDR 2025).
//
// The API mirrors §2.1 of the paper:
//
//	sess, _ := flor.Open(dir, "my-project")
//	defer sess.Close()
//
//	lr := sess.ArgFloat("lr", 1e-3)
//	ck := sess.Checkpointing(map[string]flor.Snapshotter{"model": net})
//	for it := sess.Loop("epoch", epochs); it.Next(); {
//	    ...
//	    sess.Log("loss", loss)
//	}
//	ck.Close()
//	sess.Log("acc", acc)
//	sess.Commit("trained")
//
//	df, _ := sess.Dataframe("acc", "recall")
//	best, _ := df.ArgMax("recall")
//
// Beyond the native Go API, sessions execute Flow pipeline scripts
// (RunScript) and perform multiversion hindsight logging over them
// (Hindsight): add a flor.log statement to the newest version of a script
// and FlorDB propagates it into all committed versions and replays them
// incrementally from checkpoints.
package flor

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"flordb/internal/build"
	"flordb/internal/pivot"
	"flordb/internal/record"
	"flordb/internal/relation"
	"flordb/internal/replay"
	"flordb/internal/script"
	"flordb/internal/sqlparse"
	"flordb/internal/storage"
	"flordb/internal/vcs"
)

// Snapshotter is re-exported so callers don't import internal packages.
type Snapshotter = script.Snapshotter

// Dataframe is the pivoted metadata view (flor.dataframe in the paper).
type Dataframe = pivot.Dataframe

// ErrClosed is returned by Session methods called after Close.
var ErrClosed = errors.New("flor: session is closed")

// ErrReadOnly is returned by mutating Session methods on a read-only
// replica session (OpenReplica) that has not been promoted.
var ErrReadOnly = errors.New("flor: session is read-only (replica; promote to write)")

// ErrEpochRetired is returned by time-travel reads (ReaderAt, AS OF) that
// target an epoch below the retention floor set by the epoch-retention GC.
// The concrete error is a *relation.EpochRetiredError carrying the floor.
var ErrEpochRetired = relation.ErrEpochRetired

// Session is one FlorDB project handle: a shared engine owning the metadata
// database, the WAL, the checkpoint blob store, and the version-control
// repository. Methods are safe for concurrent use unless noted.
//
// The read and write paths are decoupled: queries (SQL, Explain, Dataframe,
// Reader) run against pinned MVCC snapshots of the relational kernel and
// never block — or are blocked by — concurrent logging; commits group-commit
// in the WAL, so concurrent committers coalesce into a single fsync.
type Session struct {
	ProjID string

	mu        sync.Mutex
	runMu     sync.Mutex // serializes whole RunScript executions
	replMu    sync.Mutex // serializes ApplyReplicatedSegment and Promote
	dir       string     // "" for in-memory sessions
	walPath   string     // active WAL path; set even when wal is nil (replica mode)
	walOpts   storage.Options
	readOnly  atomic.Bool // replica mode: recording and commits fail with ErrReadOnly
	replLock  io.Closer   // project flock held in replica mode (OpenWAL holds it otherwise)
	db        *relation.Database
	tables    *record.Tables
	wal       *storage.WAL
	blobs     *storage.BlobStore
	repo      *vcs.Repo
	tstamp    int64
	recorder  *replay.Recorder
	snapEvery int               // auto-compact every N commits (0 = never)
	sinceSnap int               // commits since the last auto-compaction
	retainSeg int               // sealed segments compaction always keeps (Options.RetainSegments)
	ackFloor  func() int64      // replication retention floor fed to the compactor
	retainEp  int               // epochs GCEpochs keeps below the committed epoch (0 = retain all)
	epAck     func() int64      // lowest follower-applied epoch, fed to GCEpochs by internal/repl
	workspace map[string]string // filename -> contents staged for commit
	hosts     map[string]script.HostFunc
	cliArgs   map[string]string
	rootTgt   string
	stdout    io.Writer
	plans     *sqlparse.PlanCache
	epochs    *storage.EpochIndex // epoch↔commit-timestamp map for AS OF TIMESTAMP
	gcRows    atomic.Int64        // row versions reclaimed by GCEpochs since open
	scanWkrs  int                 // Options.ScanWorkers (0 = GOMAXPROCS)

	// Lifecycle: begin/end bracket every public operation so Close can
	// refuse new work (ErrClosed) and drain what is in flight before
	// releasing the WAL.
	closeMu  sync.Mutex
	closed   bool
	inflight sync.WaitGroup
}

// begin admits one public operation, failing once the session is closed.
func (s *Session) begin() error {
	s.closeMu.Lock()
	defer s.closeMu.Unlock()
	if s.closed {
		return ErrClosed
	}
	s.inflight.Add(1)
	return nil
}

func (s *Session) end() { s.inflight.Done() }

// Options configures session opening.
type Options struct {
	// Args carries command-line overrides consumed by flor.arg.
	Args map[string]string
	// Policy selects the checkpointing policy (nil = adaptive 5%).
	Policy replay.CheckpointPolicy
	// NoSync disables WAL fsync (benchmarks).
	NoSync bool
	// SegmentBytes rotates flor.wal into sealed, numbered segments once the
	// active file reaches this size at a commit boundary. 0 applies the
	// default (storage.DefaultSegmentBytes); negative disables rotation.
	// Sealed segments are what compaction folds into snapshots and deletes.
	SegmentBytes int64
	// SnapshotEvery compacts automatically every N commits, keeping startup
	// O(live data) without explicit Session.Compact calls. Each compaction
	// cycle costs O(live data + delta) and runs synchronously inside the
	// triggering Commit, so size N to amortize it. 0 disables
	// auto-compaction.
	SnapshotEvery int
	// RetainSegments keeps the newest N sealed WAL segments on disk across
	// compactions even once a snapshot covers them, so read replicas that
	// connect late can still catch up over segments instead of forcing a
	// full snapshot re-seed. Replication additionally pins segments that a
	// live follower has not yet acked (Session.SetRetainFloor). 0 retains
	// nothing beyond the ack floor.
	RetainSegments int
	// RetainEpochs bounds time-travel history: Session.GCEpochs retires
	// epochs more than RetainEpochs commits behind the committed epoch
	// (clamped to live snapshot pins and follower acks), reclaiming row
	// versions no retained epoch can see. 0 retains every epoch forever —
	// GCEpochs is then a no-op.
	RetainEpochs int
	// ScanWorkers caps the worker pool SQL execution fans morsel-driven
	// parallel scans out over. 0 uses GOMAXPROCS; 1 forces serial scans.
	// The effective pool is min(GOMAXPROCS, ScanWorkers).
	ScanWorkers int
	// Stdout receives Flow script print output (nil = discard).
	Stdout io.Writer
}

// walOptions resolves Options into the storage options the WAL is (or, for a
// replica, would on promotion be) opened with.
func walOptions(opts Options) storage.Options {
	segBytes := opts.SegmentBytes
	if segBytes == 0 {
		segBytes = storage.DefaultSegmentBytes
	} else if segBytes < 0 {
		segBytes = 0
	}
	return storage.Options{NoSync: opts.NoSync, SegmentBytes: segBytes}
}

// Open opens (creating if necessary) the FlorDB project rooted at dir. All
// durable state lives under dir/.flor.
func Open(dir, projid string, opts Options) (*Session, error) {
	florDir := filepath.Join(dir, ".flor")
	if err := os.MkdirAll(florDir, 0o755); err != nil {
		return nil, fmt.Errorf("flor: %w", err)
	}
	walPath := filepath.Join(florDir, "flor.wal")
	wal, err := storage.OpenWAL(walPath, walOptions(opts))
	if err != nil {
		return nil, err
	}
	blobs, err := storage.NewBlobStore(filepath.Join(florDir, "objects"))
	if err != nil {
		return nil, err
	}
	repo, err := vcs.Load(filepath.Join(florDir, "repo.json"))
	if err != nil {
		return nil, err
	}
	s, err := newSession(projid, dir, wal, walPath, false, blobs, repo, opts)
	if err != nil {
		wal.Close() // releases the project lock
		return nil, err
	}
	return s, nil
}

// OpenReplica opens the project rooted at dir as a read-only replica: state
// is recovered from the local table snapshot plus sealed WAL segments (the
// units replication ships), no active WAL file is created, and every
// mutating method fails with ErrReadOnly. Replication applies shipped
// history with ApplyReplicatedSegment, publishing one MVCC epoch per
// replicated commit so snapshot readers observe whole transactions; Promote
// flips the session writable after a failover.
//
// The project flock is held exactly as a writable session holds it, so one
// process replicates into a directory at a time. A non-empty active WAL
// file is refused: it means the directory belonged to a writable session
// (or a promoted replica), and tailing a different primary over it would
// interleave two histories.
func OpenReplica(dir, projid string, opts Options) (*Session, error) {
	florDir := filepath.Join(dir, ".flor")
	if err := os.MkdirAll(florDir, 0o755); err != nil {
		return nil, fmt.Errorf("flor: %w", err)
	}
	walPath := filepath.Join(florDir, "flor.wal")
	lock, err := storage.LockProject(walPath)
	if err != nil {
		return nil, err
	}
	if st, err := os.Stat(walPath); err == nil && st.Size() > 0 {
		lock.Close()
		return nil, fmt.Errorf("flor: %s has a non-empty active WAL; refusing to open as a replica of another history", walPath)
	}
	blobs, err := storage.NewBlobStore(filepath.Join(florDir, "objects"))
	if err != nil {
		lock.Close()
		return nil, err
	}
	repo, err := vcs.Load(filepath.Join(florDir, "repo.json"))
	if err != nil {
		lock.Close()
		return nil, err
	}
	s, err := newSession(projid, dir, nil, walPath, true, blobs, repo, opts)
	if err != nil {
		lock.Close()
		return nil, err
	}
	s.replLock = lock
	return s, nil
}

// OpenMemory creates an ephemeral in-memory session (no WAL, no blob files);
// useful for tests and benchmarks.
func OpenMemory(projid string, opts Options) (*Session, error) {
	return newSession(projid, "", nil, "", false, nil, vcs.NewRepo(), opts)
}

func newSession(projid, dir string, wal *storage.WAL, walPath string, readOnly bool, blobs *storage.BlobStore, repo *vcs.Repo, opts Options) (*Session, error) {
	db := relation.NewDatabase()
	tables, err := record.CreateTables(db)
	if err != nil {
		return nil, err
	}
	s := &Session{
		ProjID:    projid,
		dir:       dir,
		walPath:   walPath,
		walOpts:   walOptions(opts),
		db:        db,
		tables:    tables,
		wal:       wal,
		blobs:     blobs,
		repo:      repo,
		tstamp:    1,
		snapEvery: opts.SnapshotEvery,
		retainSeg: opts.RetainSegments,
		retainEp:  opts.RetainEpochs,
		workspace: make(map[string]string),
		hosts:     make(map[string]script.HostFunc),
		cliArgs:   opts.Args,
		stdout:    opts.Stdout,
		plans:     sqlparse.NewPlanCache(0),
		epochs:    storage.NewEpochIndex(),
		scanWkrs:  opts.ScanWorkers,
	}
	if s.stdout == nil {
		s.stdout = io.Discard
	}
	s.readOnly.Store(readOnly)

	// Recover prior state from the WAL (or, for a replica, from the local
	// snapshot plus the sealed segments replication has installed so far).
	// Recovery positions the MVCC epoch from the snapshot meta and advances
	// it once per replayed commit record, so the recovered database counts
	// exactly the commit records of its whole history — the same epoch the
	// crashed session (and any replica of it) had.
	if walPath != "" {
		maxTs, err := s.recover()
		if err != nil {
			return nil, err
		}
		if maxTs >= s.tstamp {
			s.tstamp = maxTs + 1
		}
	}

	// Register the git virtual table over the repo.
	gitVT := &relation.FuncVirtualTable{
		TableName:   "git",
		TableSchema: record.GitSchema(),
		RowsFn: func() []relation.Row {
			raw, err := s.repo.GitRows()
			if err != nil {
				return nil
			}
			rows := make([]relation.Row, len(raw))
			for i, r := range raw {
				parent := relation.Null()
				if r[2] != "" {
					parent = relation.Text(r[2])
				}
				rows[i] = relation.Row{relation.Text(r[0]), relation.Text(r[1]), parent, relation.Text(r[3])}
			}
			return rows
		},
	}
	if err := db.RegisterVirtual(gitVT); err != nil {
		return nil, err
	}

	ctx := &replay.Context{
		ProjID: projid, Filename: "main", Tstamp: s.tstamp,
		Tables: tables, WAL: wal, Blobs: blobs,
	}
	ckpt := replay.NewCheckpointManager(opts.Policy)
	s.recorder = replay.NewRecorder(ctx, ckpt)
	s.recorder.Args = opts.Args
	s.recorder.SetCtxCounter(replay.MaxCtxID(tables))
	s.recorder.OnCommit = func() error { return s.Commit("") }
	return s, nil
}

// recover rebuilds the tables from the newest valid snapshot plus the WAL
// tail (storage.RecoverTables): ts2vid rows come from commit records,
// obj_store blobs from checkpoint records + blob store. Recovery is strict —
// only records covered by a commit are visible (§2.1) — and the uncommitted
// or torn tail of the active WAL file is truncated so a later commit cannot
// resurrect records that were never durable.
func (s *Session) recover() (int64, error) {
	hooks := storage.RecoverHooks{
		AfterSnapshot: func(meta record.SnapshotMeta) {
			s.db.SetEpoch(meta.Epoch)
			s.db.SetMinEpoch(meta.MinEpoch)
			s.epochs.Load(meta.Epochs)
		},
		OnCommit: func(rec *record.CommitRecord) {
			s.epochs.Note(s.db.AdvanceEpoch(), rec.Wall)
		},
	}
	res, err := storage.RecoverTables(s.walPath, s.tables, s.blobs, s.rootTgt, true, hooks)
	if err != nil {
		return 0, err
	}
	// A GC run may have raised the retention floor after the newest snapshot
	// was written; the manifest is the durable record of that decision, so
	// the recovered session keeps refusing AS OF below it even though the
	// replayed row versions are back in memory until the next compaction.
	retention, err := storage.ReadRetention(s.walPath)
	if err != nil {
		return 0, err
	}
	s.db.SetMinEpoch(retention.MinEpoch)
	// A replica has no active WAL file to truncate: only sealed segments and
	// snapshots ever reach its directory, and both are commit-aligned.
	if s.wal != nil {
		if err := s.wal.Truncate(res.ActiveCommittedLen); err != nil {
			return 0, err
		}
	}
	return res.MaxTstamp, nil
}

// Tstamp returns the current logical timestamp (version counter).
func (s *Session) Tstamp() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tstamp
}

// SetFilename sets the filename recorded on subsequent native-API log
// records (the paper profiles the executing file automatically; Go programs
// declare it).
func (s *Session) SetFilename(name string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.recorder.Ctx.Filename = name
}

// ---------- Native Go API (§2.1) ----------

// Log records a named value and returns it (flor.log). On a closed or
// read-only session the value passes through unrecorded.
func (s *Session) Log(name string, v any) any {
	if s.begin() != nil {
		return v
	}
	defer s.end()
	if s.readOnly.Load() {
		return v
	}
	out, err := s.recorder.Log(name, toScriptValue(v))
	if err != nil {
		return v
	}
	return out
}

// ArgInt resolves an integer hyperparameter (flor.arg). Read-only sessions
// resolve to the default without recording.
func (s *Session) ArgInt(name string, def int64) int64 {
	if s.readOnly.Load() {
		return def
	}
	v, err := s.recorder.Arg(name, def)
	if err != nil {
		return def
	}
	return v.(int64)
}

// ArgFloat resolves a float hyperparameter (flor.arg).
func (s *Session) ArgFloat(name string, def float64) float64 {
	if s.readOnly.Load() {
		return def
	}
	v, err := s.recorder.Arg(name, def)
	if err != nil {
		return def
	}
	return v.(float64)
}

// ArgString resolves a string hyperparameter (flor.arg).
func (s *Session) ArgString(name, def string) string {
	if s.readOnly.Load() {
		return def
	}
	v, err := s.recorder.Arg(name, def)
	if err != nil {
		return def
	}
	return v.(string)
}

// LoopIter drives one flor.loop from native Go code.
type LoopIter struct {
	sess    *replay.Recorder
	session script.LoopSession
	n       int
	i       int
	started bool
	err     error
	vals    []script.Value // non-nil for LoopVals loops
}

// Loop begins a named loop over n iterations (flor.loop). Iterate with
// Next/Index; the loop closes itself when Next returns false.
func (s *Session) Loop(name string, n int) *LoopIter {
	if err := s.begin(); err != nil {
		return &LoopIter{n: n, i: -1, err: err}
	}
	defer s.end()
	if s.readOnly.Load() {
		return &LoopIter{n: n, i: -1, err: ErrReadOnly}
	}
	vals := make([]script.Value, n)
	for i := range vals {
		vals[i] = int64(i)
	}
	ls, err := s.recorder.LoopBegin(name, vals)
	return &LoopIter{sess: s.recorder, session: ls, n: n, i: -1, err: err}
}

// LoopVals begins a named loop over explicit values (e.g. document names).
func (s *Session) LoopVals(name string, vals []string) *LoopIter {
	if err := s.begin(); err != nil {
		return &LoopIter{n: len(vals), i: -1, err: err}
	}
	defer s.end()
	if s.readOnly.Load() {
		return &LoopIter{n: len(vals), i: -1, err: ErrReadOnly}
	}
	sv := make([]script.Value, len(vals))
	for i, v := range vals {
		sv[i] = v
	}
	ls, err := s.recorder.LoopBegin(name, sv)
	return &LoopIter{sess: s.recorder, session: ls, n: len(vals), i: -1, err: err,
		vals: sv}
}

// Next advances the loop; it returns false at the end (and finalizes the
// loop context).
func (it *LoopIter) Next() bool {
	if it.err != nil {
		return false
	}
	if it.started {
		if err := it.session.PostIter(it.i, it.val()); err != nil {
			it.err = err
			return false
		}
	}
	it.i++
	if it.i >= it.n {
		it.err = it.session.End()
		return false
	}
	run, err := it.session.Decide(it.i, it.val())
	if err != nil {
		it.err = err
		return false
	}
	it.started = true
	_ = run // recording always runs
	return true
}

// vals is non-nil for LoopVals loops.
func (it *LoopIter) val() script.Value {
	if it.vals != nil {
		return it.vals[it.i]
	}
	return int64(it.i)
}

// Index returns the current iteration index.
func (it *LoopIter) Index() int { return it.i }

// Err reports any error the loop hit.
func (it *LoopIter) Err() error { return it.err }

// Checkpointing opens a flor.checkpointing scope over the given objects.
// Close it when the training loop finishes.
type CheckpointScope struct{ rec *replay.Recorder }

// Checkpointing registers objects for adaptive checkpointing.
func (s *Session) Checkpointing(objs map[string]Snapshotter) (*CheckpointScope, error) {
	if err := s.begin(); err != nil {
		return nil, err
	}
	defer s.end()
	if s.readOnly.Load() {
		return nil, ErrReadOnly
	}
	m := make(map[string]script.Value, len(objs))
	for k, v := range objs {
		m[k] = v
	}
	if err := s.recorder.CheckpointingBegin(m); err != nil {
		return nil, err
	}
	return &CheckpointScope{rec: s.recorder}, nil
}

// Close ends the checkpointing scope.
func (c *CheckpointScope) Close() error { return c.rec.CheckpointingEnd() }

// StageFile registers file contents to be captured by the next Commit —
// FlorDB's automatic version control of executed code.
func (s *Session) StageFile(name, contents string) {
	if s.readOnly.Load() {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.workspace[name] = contents
}

// Commit is flor.commit(): it snapshots the staged workspace into the
// version store, writes the ts2vid row, appends a durable commit record,
// increments the logical timestamp, and publishes the epoch so committed
// snapshots see the transaction (§2.1).
//
// The WAL fsync happens outside the session mutex: concurrent committers
// coalesce into one group-commit fsync instead of queueing a disk flush
// each, and loggers on other goroutines are never stalled behind a commit's
// disk wait.
func (s *Session) Commit(message string) error {
	if err := s.begin(); err != nil {
		return err
	}
	defer s.end()
	if s.readOnly.Load() {
		return ErrReadOnly
	}

	s.mu.Lock()
	var vid string
	if len(s.workspace) > 0 {
		files := make(map[string]string, len(s.workspace))
		for k, v := range s.workspace {
			files[k] = v
		}
		v, err := s.repo.CommitFiles(files, message, time.Now())
		if err != nil {
			s.mu.Unlock()
			return err
		}
		vid = v
		if _, err := s.tables.Ts2vid.Insert(relation.Row{
			relation.Text(s.ProjID), relation.Int(s.tstamp), relation.Int(s.tstamp),
			relation.Text(vid), relation.Text(s.rootTgt),
		}); err != nil {
			s.mu.Unlock()
			return err
		}
	}
	var rec *record.CommitRecord
	if s.wal != nil {
		rec = &record.CommitRecord{
			Kind: record.KindCommit, ProjID: s.ProjID, Tstamp: s.tstamp,
			VID: vid, Wall: time.Now().UTC(),
		}
	}
	if s.dir != "" {
		if err := s.repo.Save(filepath.Join(s.dir, ".flor", "repo.json")); err != nil {
			s.mu.Unlock()
			return err
		}
	}
	s.tstamp++
	s.recorder.Ctx.SetTstamp(s.tstamp)
	s.mu.Unlock()

	if rec != nil {
		// Group commit: append under the WAL's short lock, then ride a
		// shared fsync with any other committers in flight.
		if err := s.wal.AppendCommit(rec); err != nil {
			return err
		}
	}
	// Publish the commit boundary: rows logged before this point become
	// visible to committed-epoch snapshots taken from now on. The epoch's
	// commit wall clock feeds AS OF TIMESTAMP resolution; it uses the WAL
	// record's stamp so replay reconstructs the same map.
	wall := time.Now().UTC()
	if rec != nil {
		wall = rec.Wall
	}
	s.epochs.Note(s.db.AdvanceEpoch(), wall)

	if s.wal != nil && s.snapEvery > 0 {
		s.mu.Lock()
		s.sinceSnap++
		if s.sinceSnap >= s.snapEvery {
			// Compaction is an optimization, not part of commit durability:
			// the commit record is already fsynced, so a failed compaction
			// must not make a successful Commit report an error (a caller
			// retrying the "failed" transaction would duplicate it). The
			// counter resets only when a snapshot actually covers history —
			// an error, or a no-op because a concurrent append kept the WAL
			// tail unsealable, retries at the next commit; a persistent
			// failure surfaces through explicit Compact calls.
			if st, err := s.compactLocked(); err == nil && st.SnapshotSeq > 0 {
				s.sinceSnap = 0
			}
		}
		s.mu.Unlock()
	}
	return nil
}

// Compact folds the WAL's sealed history into a durable table snapshot and
// deletes the covered segments, making the next Open O(live data) instead of
// O(total history). It is safe to call while other goroutines log and
// commit; only data committed before the call is guaranteed to be covered.
func (s *Session) Compact() (storage.CompactStats, error) {
	if err := s.begin(); err != nil {
		return storage.CompactStats{}, err
	}
	defer s.end()
	if s.readOnly.Load() {
		return storage.CompactStats{}, ErrReadOnly
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.compactLocked()
}

func (s *Session) compactLocked() (storage.CompactStats, error) {
	if s.wal == nil {
		return storage.CompactStats{}, fmt.Errorf("flor: in-memory session has no WAL to compact")
	}
	c := &storage.Compactor{
		WAL: s.wal, Blobs: s.blobs, RootTarget: s.rootTgt,
		RetainSegments: s.retainSeg, RetainFloor: s.ackFloor,
	}
	return c.Compact()
}

// SetRetainFloor installs the replication retention floor: a function
// returning the lowest sealed-segment sequence a live follower still needs
// (math.MaxInt64 for "no constraint"). Compaction keeps segments at or above
// the floor even once a snapshot covers them, so shipping can never lose a
// race against the compactor. internal/repl's primary installs this from its
// follower ack tracking.
func (s *Session) SetRetainFloor(fn func() int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ackFloor = fn
}

// SetEpochAckFloor installs the replication epoch floor: a function returning
// the lowest committed epoch a live follower has applied (math.MaxInt64 for
// "no constraint"). GCEpochs clamps its retention floor to it, so the primary
// never retires history a replica is still serving time-travel reads from.
// internal/repl's primary installs this from its follower ack tracking.
func (s *Session) SetEpochAckFloor(fn func() int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.epAck = fn
}

// GCStats reports what one epoch-retention GC cycle did.
type GCStats struct {
	// Floor is the retention floor after the cycle: the lowest epoch
	// time-travel reads may still target.
	Floor int64
	// RowsReclaimed counts row versions whose payload was dropped — versions
	// both born and tombstoned below the floor, invisible at every retained
	// epoch.
	RowsReclaimed int
}

// GCEpochs runs one epoch-retention GC cycle. The retention floor is
// committed epoch − Options.RetainEpochs, clamped down to the oldest live
// snapshot pin and the oldest follower-applied epoch (SetEpochAckFloor), and
// never below the previous floor. Row versions tombstoned at or below the
// floor are reclaimed in memory immediately; the floor is persisted in the
// storage retention manifest so the next compaction folds them out of the
// durable snapshot and a restarted session keeps refusing AS OF below it.
// With Options.RetainEpochs zero the call is a no-op.
func (s *Session) GCEpochs() (GCStats, error) {
	if err := s.begin(); err != nil {
		return GCStats{}, err
	}
	defer s.end()
	if s.readOnly.Load() {
		return GCStats{}, ErrReadOnly
	}
	s.mu.Lock()
	retain := s.retainEp
	epAck := s.epAck
	s.mu.Unlock()
	if retain <= 0 {
		return GCStats{Floor: s.db.MinEpoch()}, nil
	}
	floor := s.db.Epoch() - int64(retain)
	if epAck != nil {
		if f := epAck(); f < floor {
			floor = f
		}
	}
	if floor <= 0 {
		return GCStats{Floor: s.db.MinEpoch()}, nil
	}
	reclaimed, applied := s.db.GCBelow(floor)
	s.gcRows.Add(int64(reclaimed))
	s.epochs.TrimBelow(applied)
	if s.walPath != "" {
		if err := storage.WriteRetention(s.walPath, storage.RetentionManifest{MinEpoch: applied}); err != nil {
			return GCStats{Floor: applied, RowsReclaimed: reclaimed}, err
		}
	}
	return GCStats{Floor: applied, RowsReclaimed: reclaimed}, nil
}

// RetentionFloor returns the current epoch retention floor: the lowest epoch
// ReaderAt and AS OF may target. It feeds the /healthz retention_floor_epoch
// gauge and the floor echoed by HTTP 400 responses to retired as_of requests.
func (s *Session) RetentionFloor() int64 { return s.db.MinEpoch() }

// GCRowsReclaimed returns the total row versions reclaimed by GCEpochs since
// the session opened (the /healthz gc_rows_reclaimed gauge).
func (s *Session) GCRowsReclaimed() int64 { return s.gcRows.Load() }

// ---------- Replication ----------

// ReadOnly reports whether the session is an unpromoted replica.
func (s *Session) ReadOnly() bool { return s.readOnly.Load() }

// WALPath returns the session's active WAL path ("" for in-memory sessions).
// Replication uses it to derive segment and snapshot file paths.
func (s *Session) WALPath() string { return s.walPath }

// ApplyReplicatedSegment replays the sealed segment with the given sequence —
// already fetched, CRC-verified, and installed under the session's WAL
// directory by internal/repl — into the replica's tables. One MVCC epoch is
// published per commit record, so concurrent snapshot readers only ever
// observe whole transactions, exactly as they would on the primary. The
// session's logical timestamp advances past the segment's newest commit.
//
// Apply is idempotent-by-construction at the file level: a crash mid-apply
// loses only in-memory state, and the next OpenReplica recovers by replaying
// every installed segment from scratch. Only read-only sessions may apply;
// calls race neither each other nor Promote (both serialize on an internal
// mutex).
func (s *Session) ApplyReplicatedSegment(seq int64) error {
	if err := s.begin(); err != nil {
		return err
	}
	defer s.end()
	s.replMu.Lock()
	defer s.replMu.Unlock()
	if !s.readOnly.Load() {
		return fmt.Errorf("flor: ApplyReplicatedSegment on a writable session (segment %d): replication must stop at promotion", seq)
	}
	var maxTs int64
	path := storage.SegmentPath(s.walPath, seq)
	err := storage.ReplaySealedSegment(path, func(rec any) error {
		ts, err := storage.ApplyRecovered(rec, s.tables, s.blobs, s.rootTgt)
		if err != nil {
			return err
		}
		if ts > maxTs {
			maxTs = ts
		}
		if cr, isCommit := rec.(*record.CommitRecord); isCommit {
			s.epochs.Note(s.db.AdvanceEpoch(), cr.Wall)
		}
		return nil
	})
	if err != nil {
		return err
	}
	s.mu.Lock()
	if maxTs >= s.tstamp {
		s.tstamp = maxTs + 1
		s.recorder.Ctx.SetTstamp(s.tstamp)
	}
	s.mu.Unlock()
	return nil
}

// Promote flips a replica session writable after a failover: it releases the
// replica's hold on the project lock, opens the active WAL exactly as Open
// would (continuing segment numbering past the replicated history), and
// clears the read-only bit. Callers are responsible for the safety check
// that the replica has replayed through the last commit the primary acked —
// internal/repl's follower performs it before calling Promote.
//
// Promoting is idempotent; promoting an in-memory session is an error. On
// failure the session stays a functioning read-only replica (the project
// lock is re-acquired best-effort; losing it to a concurrent process is
// surfaced by that process failing to open the WAL, never by silent
// double-writing — OpenWAL takes the same lock).
func (s *Session) Promote() error {
	if err := s.begin(); err != nil {
		return err
	}
	defer s.end()
	s.replMu.Lock()
	defer s.replMu.Unlock()
	if !s.readOnly.Load() {
		return nil
	}
	if s.walPath == "" {
		return fmt.Errorf("flor: in-memory session cannot be promoted")
	}
	// flock is per file-description: the fresh lock OpenWAL takes would
	// conflict with the replica's own, so release ours first. The window is
	// safe — any process that steals the lock in between makes our OpenWAL
	// fail, and we fall back to read-only.
	if s.replLock != nil {
		if err := s.replLock.Close(); err != nil {
			return fmt.Errorf("flor: promote: release replica lock: %w", err)
		}
		s.replLock = nil
	}
	wal, err := storage.OpenWAL(s.walPath, s.walOpts)
	if err != nil {
		if lock, lerr := storage.LockProject(s.walPath); lerr == nil {
			s.replLock = lock
		}
		return fmt.Errorf("flor: promote: %w", err)
	}
	s.mu.Lock()
	s.wal = wal
	s.recorder.Ctx.WAL = wal
	s.mu.Unlock()
	s.readOnly.Store(false)
	return nil
}

// ---------- Query surface ----------

// SnapshotView is a cheap, immutable reader handle pinned to one epoch of
// the session's database. Pinning copies nothing; any number of views can
// query concurrently with each other and with the writing session, and a
// multi-table join inside one view always observes a single consistent
// state. Views stay readable after the session closes (they reference only
// in-memory state), but new views cannot be created then.
type SnapshotView struct {
	sess *Session
	snap *relation.Snapshot
	view *record.TablesView
}

// Reader pins a read-only view at the current committed epoch: every
// transaction committed before the call is visible, transactions in flight
// are not. This is the handle concurrent serving paths (dashboards, the
// HTTP API, the web UI) should hold per request.
//
// Commit boundaries are session-global, mirroring the WAL's durability
// contract (a commit record covers every record appended before it): a
// Commit publishes all rows logged before it, whichever goroutine logged
// them. Transaction atomicity under Reader therefore holds when write
// transactions are serialized — as RunScript-driven writes are — not when
// independent goroutines interleave Log/Commit sequences on one session.
func (s *Session) Reader() (*SnapshotView, error) {
	return s.makeView((*relation.Database).Snapshot)
}

// LatestReader pins a view at the in-flight write epoch: committed state
// plus the session's own uncommitted rows. It preserves read-your-writes
// for the recording process itself (a training loop inspecting metrics it
// just logged); serving paths should prefer Reader.
func (s *Session) LatestReader() (*SnapshotView, error) {
	return s.makeView((*relation.Database).SnapshotLatest)
}

func (s *Session) makeView(pin func(*relation.Database) *relation.Snapshot) (*SnapshotView, error) {
	if err := s.begin(); err != nil {
		return nil, err
	}
	defer s.end()
	snap := pin(s.db)
	view, err := s.tables.At(snap)
	if err != nil {
		snap.Release()
		return nil, err
	}
	return &SnapshotView{sess: s, snap: snap, view: view}, nil
}

// ReaderAt pins a read-only view at a historical committed epoch — the
// time-travel analog of Reader. Epoch e sees exactly the first e commits of
// the project's history, on the primary, on any replica, and across restarts
// and compactions (epochs count commit records since project birth). Future
// epochs are refused outright; epochs below the retention floor fail with
// ErrEpochRetired, carrying the floor in a *relation.EpochRetiredError.
// Close the view when done: the pin blocks the epoch-retention GC from
// retiring the pinned epoch.
func (s *Session) ReaderAt(epoch int64) (*SnapshotView, error) {
	if err := s.begin(); err != nil {
		return nil, err
	}
	defer s.end()
	snap, err := s.db.SnapshotAt(epoch)
	if err != nil {
		return nil, err
	}
	view, err := s.tables.At(snap)
	if err != nil {
		snap.Release()
		return nil, err
	}
	return &SnapshotView{sess: s, snap: snap, view: view}, nil
}

// Epoch returns the committed epoch the view is pinned at.
func (v *SnapshotView) Epoch() int64 { return v.snap.Epoch() }

// Close releases the view's snapshot pin (it implements io.Closer and
// always returns nil). Closing is idempotent and nil-safe, and the
// view's data stays readable afterwards — the pin only feeds retention
// accounting (the /healthz snapshot_pins gauge, and the epoch-retention
// GC's notion of which epochs are still covered). Every code path that
// pins a view must Close it; the snapshotrelease analyzer enforces this
// at build time.
func (v *SnapshotView) Close() error {
	if v != nil {
		v.snap.Release()
	}
	return nil
}

// SQL runs a SQL query against the pinned state. Repeated query texts hit
// the session's LRU plan cache. An `AS OF <epoch>` clause rebases the query
// at the historical epoch (failing with ErrEpochRetired below the retention
// floor); `AS OF TIMESTAMP '<ts>'` first resolves the timestamp to the
// greatest epoch committed at or before it via the session's persisted
// epoch↔timestamp map.
func (v *SnapshotView) SQL(query string) (*sqlparse.Result, error) {
	stmt, err := v.sess.plans.Parse(query)
	if err != nil {
		return nil, err
	}
	return sqlparse.ExecuteOptions(v.snap, v.resolveAsOf(stmt), v.sess.execOptions())
}

// execOptions resolves the session's execution tuning.
func (s *Session) execOptions() sqlparse.ExecOptions {
	return sqlparse.ExecOptions{ScanWorkers: s.scanWkrs}
}

// ScanWorkers reports the effective parallel-scan worker pool size SQL
// execution may fan out to (the /healthz scan_workers gauge).
func (s *Session) ScanWorkers() int {
	return sqlparse.EffectiveScanWorkers(s.scanWkrs)
}

// resolveAsOf rewrites an AS OF TIMESTAMP statement into epoch form using the
// session's epoch↔timestamp map. Cached statements are immutable, so the
// rewrite is a shallow copy. Timestamps before every retained commit resolve
// to epoch 0 (the empty database) when nothing was retired, and to a retired
// epoch — which the executor then refuses with ErrEpochRetired — when the GC
// has trimmed history from under the timestamp.
func (v *SnapshotView) resolveAsOf(stmt *sqlparse.SelectStmt) *sqlparse.SelectStmt {
	if stmt.AsOf == nil || !stmt.AsOf.ByTime {
		return stmt
	}
	epoch, ok := v.sess.epochs.Resolve(stmt.AsOf.Time)
	if !ok {
		if floor := v.sess.db.MinEpoch(); floor > 0 {
			epoch = floor - 1
		}
	}
	if pinned := v.snap.Epoch(); epoch > pinned {
		// Commits after this view was pinned cannot be visible through it.
		epoch = pinned
	}
	clone := *stmt
	clone.AsOf = &sqlparse.AsOfClause{Epoch: epoch}
	return &clone
}

// Explain returns the plan the planner chooses for the query against the
// pinned state.
func (v *SnapshotView) Explain(query string) (string, error) {
	stmt, err := v.sess.plans.Parse(query)
	if err != nil {
		return "", err
	}
	stmt = v.resolveAsOf(stmt)
	if !stmt.Explain {
		// The cached statement is never mutated: a shallow copy carries the
		// flag.
		clone := *stmt
		clone.Explain = true
		stmt = &clone
	}
	res, err := sqlparse.ExecuteOptions(v.snap, stmt, v.sess.execOptions())
	if err != nil {
		return "", err
	}
	lines := make([]string, len(res.Rows))
	for i, r := range res.Rows {
		lines[i] = r[0].String()
	}
	return strings.Join(lines, "\n"), nil
}

// Dataframe pivots the named logged values across all versions visible in
// the view.
func (v *SnapshotView) Dataframe(names ...string) (*Dataframe, error) {
	return pivot.Build(v.view, v.sess.ProjID, names, pivot.Options{})
}

// DataframeAt pivots restricted to one file and/or version.
func (v *SnapshotView) DataframeAt(filename string, tstamp int64, names ...string) (*Dataframe, error) {
	return pivot.Build(v.view, v.sess.ProjID, names, pivot.Options{Filename: filename, Tstamp: tstamp})
}

// Dataframe pivots the named logged values across all versions (§2.1
// flor.dataframe). It reads through a latest-epoch snapshot: concurrent
// logging cannot disturb the pivot mid-build.
func (s *Session) Dataframe(names ...string) (*Dataframe, error) {
	v, err := s.LatestReader()
	if err != nil {
		return nil, err
	}
	defer v.Close()
	return v.Dataframe(names...)
}

// DataframeAt pivots restricted to one file and/or version.
func (s *Session) DataframeAt(filename string, tstamp int64, names ...string) (*Dataframe, error) {
	v, err := s.LatestReader()
	if err != nil {
		return nil, err
	}
	defer v.Close()
	return v.DataframeAt(filename, tstamp, names...)
}

// SQL runs a SQL query over the Figure-1 schema (logs, loops, ts2vid,
// obj_store, args, git, build_deps when registered). Prefix a query with
// EXPLAIN to get the chosen query plan instead of rows. The query executes
// against a latest-epoch snapshot pinned at call time, so multi-table joins
// are consistent even while other goroutines log; repeated query texts hit
// the LRU plan cache.
func (s *Session) SQL(query string) (*sqlparse.Result, error) {
	v, err := s.LatestReader()
	if err != nil {
		return nil, err
	}
	defer v.Close()
	return v.SQL(query)
}

// Explain returns the query plan the planner chose for a SQL query as
// indented text, one operator per line — equivalent to running the query
// with an EXPLAIN prefix.
func (s *Session) Explain(query string) (string, error) {
	v, err := s.LatestReader()
	if err != nil {
		return "", err
	}
	defer v.Close()
	return v.Explain(query)
}

// Database exposes the catalog (for registering additional virtual tables,
// e.g. build_deps).
func (s *Session) Database() *relation.Database { return s.db }

// Tables exposes the base tables (read-mostly; used by the web UI).
func (s *Session) Tables() *record.Tables { return s.tables }

// WALSyncCount reports how many fsyncs the session's WAL has performed
// (0 for in-memory sessions) — group-commit observability: under N
// concurrent committers it should grow by ~1 per coalesced batch.
func (s *Session) WALSyncCount() int64 {
	if s.wal == nil {
		return 0
	}
	return s.wal.SyncCount()
}

// WALCommitCount reports how many commit records the session's WAL has
// appended since open (0 for in-memory sessions). SyncCount over
// CommitCount is the fsyncs/commit figure surfaced by /metrics and the
// macro-benchmark resource report.
func (s *Session) WALCommitCount() int64 {
	if s.wal == nil {
		return 0
	}
	return s.wal.CommitCount()
}

// PlanCacheStats reports the session plan cache's hits and misses since
// open — the /healthz and /metrics plan_cache_hit_rate gauges divide them.
func (s *Session) PlanCacheStats() (hits, misses uint64) {
	return s.plans.Stats()
}

// Hooks exposes the session's recording hooks for direct use with a Flow
// interpreter (benchmarks isolate hook cost this way; normal callers should
// use RunScript).
func (s *Session) Hooks() script.FlorHooks { return s.recorder }

// Repo exposes the version store.
func (s *Session) Repo() *vcs.Repo { return s.repo }

// RegisterBuild installs a makefile's build_deps virtual table.
func (s *Session) RegisterBuild(mf *build.Makefile, runner *build.Runner) error {
	return s.db.RegisterVirtual(build.DepsVirtualTable(mf, runner, ""))
}

// ---------- Flow scripts ----------

// RegisterHost exposes a Go function to Flow scripts run by this session.
func (s *Session) RegisterHost(name string, fn script.HostFunc) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.hosts[name] = fn
}

// RunScript executes a Flow script under recording: logs, loops, args and
// checkpoints are captured with the script's filename; the source is staged
// so the next Commit versions it. The paper's equivalent is `python
// train.py` under FlorDB instrumentation. Script runs are serialized:
// recording attributes every record to the session's current filename, so
// concurrent callers (parallel build targets, web UI handlers) queue here.
func (s *Session) RunScript(filename, src string) error {
	if err := s.begin(); err != nil {
		return err
	}
	defer s.end()
	if s.readOnly.Load() {
		return ErrReadOnly
	}
	f, err := script.Parse(filename, src)
	if err != nil {
		return err
	}
	s.runMu.Lock()
	defer s.runMu.Unlock()
	s.mu.Lock()
	prevFile := s.recorder.Ctx.Filename
	s.recorder.Ctx.Filename = filename
	s.workspace[filename] = src
	hosts := make(map[string]script.HostFunc, len(s.hosts))
	for k, v := range s.hosts {
		hosts[k] = v
	}
	stdout := s.stdout
	s.mu.Unlock()

	in := script.NewInterp(s.recorder, stdout)
	for name, fn := range hosts {
		in.RegisterHost(name, fn)
	}
	runErr := in.Run(f)

	s.mu.Lock()
	s.recorder.Ctx.Filename = prevFile
	s.mu.Unlock()
	return runErr
}

// ---------- Multiversion hindsight logging ----------

// HindsightReport summarizes one version's backfill.
type HindsightReport = replay.VersionReport

// Hindsight performs the paper's §2 "magic trick" for a script file: the
// new source's added log statements are propagated into every committed
// version of the file and replayed incrementally (from checkpoints, in
// parallel) to materialize the new metadata retroactively. targets
// optionally restricts which checkpoint-loop iterations are materialized.
// Hindsight should not run concurrently with active recording: backfilled
// records interleave with live ones, and the durability marker appended
// when the WAL tail was clean at the start would also cover records logged
// mid-backfill.
func (s *Session) Hindsight(filename, newSrc string, targets []int) ([]HindsightReport, error) {
	if err := s.begin(); err != nil {
		return nil, err
	}
	defer s.end()
	if s.readOnly.Load() {
		return nil, ErrReadOnly
	}
	versions, err := replay.HistoricalVersions(s.repo, s.tables, s.ProjID, filename)
	if err != nil {
		return nil, err
	}
	if len(versions) == 0 {
		return nil, fmt.Errorf("flor: no committed versions of %s to backfill", filename)
	}
	s.mu.Lock()
	hosts := make(map[string]script.HostFunc, len(s.hosts))
	for k, v := range s.hosts {
		hosts[k] = v
	}
	s.mu.Unlock()
	d := &replay.Driver{
		Repo: s.repo, Tables: s.tables, WAL: s.wal, Blobs: s.blobs,
		ProjID: s.ProjID,
		Setup: func(in *script.Interp) {
			for name, fn := range hosts {
				in.RegisterHost(name, fn)
			}
		},
	}
	// Backfilled records carry historical tstamps and would otherwise sit in
	// the uncommitted WAL tail, which strict recovery discards. When the
	// tail was committed before the backfill started, only backfill records
	// are in it, so a commit marker makes them durable immediately. When the
	// caller has a transaction in flight, a marker would wrongly commit
	// those records too — so the backfill simply rides along with the
	// caller's next Commit instead.
	tailWasCommitted := s.wal != nil && s.wal.TailCommitted()
	reports, err := d.Hindsight(filename, newSrc, versions, targets)
	if err == nil && s.wal != nil && tailWasCommitted {
		// Tstamp s.tstamp-1 keeps the recovered version counter equal to the
		// live one (commit markers do not open a new version). s.mu only
		// guards the tstamp read: the fsync inside AppendCommit happens
		// after the unlock, per the group-commit ordering rule (DESIGN §8)
		// that lockfsync enforces.
		s.mu.Lock()
		mark := &record.CommitRecord{
			Kind: record.KindCommit, ProjID: s.ProjID,
			Tstamp: s.tstamp - 1, Wall: time.Now().UTC(),
		}
		s.mu.Unlock()
		if werr := s.wal.AppendCommit(mark); werr != nil {
			return reports, werr
		}
		// The marker is a commit boundary: publish the backfilled rows to
		// committed-epoch snapshot readers as well.
		s.epochs.Note(s.db.AdvanceEpoch(), mark.Wall)
	}
	return reports, err
}

// Versions lists the committed versions of a file, oldest first.
func (s *Session) Versions(filename string) ([]replay.VersionJob, error) {
	return replay.HistoricalVersions(s.repo, s.tables, s.ProjID, filename)
}

// LoggedNamesAcrossVersions returns, per version timestamp, the set of value
// names logged — useful for seeing which versions are missing which metadata.
func (s *Session) LoggedNamesAcrossVersions() map[int64][]string {
	byTs := make(map[int64]map[string]bool)
	s.tables.Logs.Scan(func(_ relation.RowID, r relation.Row) bool {
		if r[0].AsText() != s.ProjID {
			return true
		}
		ts := r[1].AsInt()
		if byTs[ts] == nil {
			byTs[ts] = make(map[string]bool)
		}
		byTs[ts][r[4].AsText()] = true
		return true
	})
	out := make(map[int64][]string, len(byTs))
	for ts, set := range byTs {
		names := make([]string, 0, len(set))
		for n := range set {
			names = append(names, n)
		}
		sort.Strings(names)
		out[ts] = names
	}
	return out
}

// Close marks the session closed, drains in-flight operations (readers,
// queries, commits, script runs), and then flushes and closes the durable
// resources. Once Close begins, new public API calls fail with ErrClosed;
// Close itself is idempotent. SnapshotViews pinned before Close remain
// readable — they reference only immutable in-memory state.
func (s *Session) Close() error {
	s.closeMu.Lock()
	if s.closed {
		s.closeMu.Unlock()
		return nil
	}
	s.closed = true
	s.closeMu.Unlock()
	s.inflight.Wait()
	var err error
	if s.wal != nil {
		err = s.wal.Close()
	}
	if s.replLock != nil {
		if cerr := s.replLock.Close(); err == nil {
			err = cerr
		}
		s.replLock = nil
	}
	return err
}

func toScriptValue(v any) script.Value {
	switch x := v.(type) {
	case int:
		return int64(x)
	case int32:
		return int64(x)
	case float32:
		return float64(x)
	default:
		return v
	}
}
