// Hindsight demonstrates the paper's §2 "magic trick": multiversion
// hindsight logging. Three versions of a training pipeline run and commit;
// only afterwards does the developer realize they want the model's weight
// norm per epoch. Adding the statement to the NEWEST source and calling
// Hindsight propagates it into every historical version (statement-level
// diff alignment) and replays each version incrementally — restoring
// checkpoints instead of re-running the expensive inner training loops.
//
//	go run ./examples/hindsight
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	flor "flordb"
	"flordb/internal/docsim"
	"flordb/internal/hostlib"
	"flordb/internal/replay"
)

func main() {
	dir, err := os.MkdirTemp("", "flor-hindsight")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	sess, err := flor.Open(dir, "pdf-parser", flor.Options{Policy: replay.EveryN{N: 1}})
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Close()

	st := hostlib.NewState(docsim.Config{
		NumDocs: 10, MinPages: 4, MaxPages: 8, OCRFraction: 0.4, Seed: 3,
	}, 16)
	hostlib.Register(sess, st)

	fmt.Println("== Phase 1: record three versions (no weight_norm logging) ==")
	recordStart := time.Now()
	for v := 1; v <= 3; v++ {
		if err := sess.RunScript("train.flow", hostlib.TrainSrc); err != nil {
			log.Fatal(err)
		}
		if err := sess.Commit(fmt.Sprintf("training run %d", v)); err != nil {
			log.Fatal(err)
		}
	}
	recordDur := time.Since(recordStart)
	fmt.Printf("3 versions recorded in %v\n", recordDur.Round(time.Millisecond))

	names := sess.LoggedNamesAcrossVersions()
	fmt.Println("\nlogged names per version BEFORE hindsight:")
	for ts := int64(1); ts <= 3; ts++ {
		fmt.Printf("  ts=%d: %v\n", ts, names[ts])
	}

	fmt.Println("\n== Phase 2: the magic trick — backfill weight_norm into history ==")
	replayStart := time.Now()
	reports, err := sess.Hindsight("train.flow", hostlib.TrainSrcWithNorm, nil)
	if err != nil {
		log.Fatal(err)
	}
	replayDur := time.Since(replayStart)
	for _, rep := range reports {
		if rep.Err != nil {
			log.Fatalf("version ts=%d: %v", rep.Tstamp, rep.Err)
		}
		fmt.Printf("  ts=%d: injected=%d mode=%s epochs-run=%d inner-loops-skipped=%d ckpt-restores=%d new-logs=%d (%v)\n",
			rep.Tstamp, rep.Injected, rep.Mode, rep.Stats.IterationsRun,
			rep.Stats.InnerLoopsSkipped, rep.Stats.Restores,
			rep.Stats.LogsEmitted, rep.Duration.Round(time.Millisecond))
	}
	fmt.Printf("backfill of 3 versions took %v vs %v to record (%.1fx faster than re-running)\n",
		replayDur.Round(time.Millisecond), recordDur.Round(time.Millisecond),
		float64(recordDur)/float64(replayDur))

	fmt.Println("\nlogged names per version AFTER hindsight:")
	names = sess.LoggedNamesAcrossVersions()
	for ts := int64(1); ts <= 3; ts++ {
		fmt.Printf("  ts=%d: %v\n", ts, names[ts])
	}

	df, err := sess.Dataframe("weight_norm", "acc")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nflor.dataframe(\"weight_norm\", \"acc\") — weight_norm exists for ALL past versions:")
	fmt.Print(df.String())
}
