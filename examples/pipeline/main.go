// Pipeline reproduces Figures 2 and 4 of the paper: a multi-stage ML
// pipeline orchestrated by a Makefile (featurize -> train -> infer, plus a
// feedback stage), with FlorDB capturing behavioral context (the dependency
// DAG via build_deps), change context (versions per run) and application
// context (the logs). It closes the loop with the Figure-6 web feedback
// flow: a simulated expert corrects page colors through the same handlers
// the web UI uses, and the next training run consumes them.
//
//	go run ./examples/pipeline
package main

import (
	"fmt"
	"log"
	"os"

	flor "flordb"
	"flordb/internal/build"
	"flordb/internal/docsim"
	"flordb/internal/hostlib"
	"flordb/internal/mlsim"
	"flordb/internal/replay"
	"flordb/internal/webui"
)

// makefile is the paper's Figure-2 pipeline shape with Figure-4 stages.
// label_by_hand is a rule-less source: the expert's labels, dirtied via
// runner.Touch when feedback arrives.
const makefile = `
featurize: corpus featurize.flow
	flow featurize.flow

train: featurize label_by_hand train.flow
	flow train.flow

infer: train infer.flow
	flow infer.flow

run: featurize infer
	serve
`

func main() {
	dir, err := os.MkdirTemp("", "flor-pipeline")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	sess, err := flor.Open(dir, "pdf-parser", flor.Options{Policy: replay.EveryN{N: 1}})
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Close()

	st := hostlib.NewState(docsim.Config{
		NumDocs: 8, MinPages: 3, MaxPages: 6, OCRFraction: 0.4, Seed: 5,
	}, 16)
	hostlib.Register(sess, st)
	hostlib.RegisterFlorQueries(sess, sess)

	scripts := map[string]string{
		"featurize.flow": hostlib.FeaturizeSrc,
		"train.flow":     hostlib.TrainSrc,
		"infer.flow":     hostlib.InferSrc,
	}

	mf, err := build.Parse(makefile)
	if err != nil {
		log.Fatal(err)
	}
	runner := build.NewRunner(mf, func(rule build.Rule) error {
		fmt.Printf("[make] %s\n", rule.Target)
		for _, c := range rule.Cmds {
			if len(c) > 5 && c[:5] == "flow " {
				name := c[5:]
				if err := sess.RunScript(name, scripts[name]); err != nil {
					return err
				}
			}
		}
		return nil
	}, 2)
	if err := sess.RegisterBuild(mf, runner); err != nil {
		log.Fatal(err)
	}

	fmt.Println("== Build 1: full pipeline (Figure 2/4 Makefile) ==")
	fmt.Print(build.Dataflow(mf))
	if err := runner.Run("infer"); err != nil {
		log.Fatal(err)
	}
	if err := sess.Commit("pipeline build 1"); err != nil {
		log.Fatal(err)
	}

	// Behavioral context: the build_deps virtual table.
	res, err := sess.SQL("SELECT target, deps, cached FROM build_deps ORDER BY target")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nbuild_deps virtual table (Figure 1):")
	for _, r := range res.Rows {
		fmt.Printf("  %-10s deps=[%s] cached=%v\n", r[0], r[1], r[2])
	}

	// == Human feedback via the Figure-6 handlers ==
	fmt.Println("\n== Feedback: expert corrects page colors (Figure 6) ==")
	net := mlsim.NewMLP(st.Dim, 32, 2, mlsim.NewRNG(7))
	srv := webui.NewServer(sess, st.Corpus, func(doc *docsim.Document) []bool {
		out := make([]bool, len(doc.Pages))
		for i, p := range doc.Pages {
			out[i] = net.Predict(docsim.Vectorize(p, st.Dim)) == 1
		}
		return out
	})
	doc := st.Corpus.DocNames()[0]
	nPages := len(st.Corpus.Docs[0].Pages)
	colors := make([]int, nPages)
	for i := range colors {
		colors[i] = 0
	}
	if nPages > 2 {
		colors[nPages-1] = 1 // the expert says the last page starts a new doc
	}
	if err := srv.SaveColors(doc, colors); err != nil {
		log.Fatal(err)
	}
	views, err := srv.GetColors(doc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("labels for %s after correction:\n", doc)
	for _, v := range views {
		fmt.Printf("  page %d: color=%d source=%s\n", v.Page, v.Color, v.Source)
	}

	// Provenance: human labels distinguishable from machine output.
	res, err = sess.SQL(`
		SELECT count(*) AS n FROM logs WHERE value_name = 'page_color' AND filename = 'webui.flow'`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nhuman-provided labels recorded with provenance: %v rows from webui.flow\n", res.Rows[0][0])

	// == Incremental rebuild: only the dirty subtree re-runs ==
	fmt.Println("\n== Build 2: hand labels changed; only train+infer re-run ==")
	if err := runner.Touch("label_by_hand"); err != nil {
		log.Fatal(err)
	}
	if err := runner.Run("infer"); err != nil {
		log.Fatal(err)
	}
	if err := sess.Commit("pipeline build 2"); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("re-ran: %v\n", runner.Ran)
	fmt.Printf("cached: %v\n", runner.Cached)

	// Change context: versions across the builds.
	vres, err := sess.SQL("SELECT count(*) AS versions FROM ts2vid")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nchange context: %v committed pipeline versions in ts2vid\n", vres.Rows[0][0])
}
