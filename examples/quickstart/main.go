// Quickstart: the smallest useful FlorDB program — log values inside named
// loops from native Go, commit, and query them back as a pivoted dataframe
// and via SQL. Mirrors §2.1 of the paper.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	flor "flordb"
)

func main() {
	dir, err := os.MkdirTemp("", "flor-quickstart")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	sess, err := flor.Open(dir, "quickstart", flor.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Close()
	sess.SetFilename("main.go")

	// Log metrics inside a named loop: every record carries projid, tstamp,
	// filename and the loop context automatically.
	lr := sess.ArgFloat("lr", 0.01)
	for it := sess.Loop("epoch", 5); it.Next(); {
		epoch := it.Index()
		loss := 1.0 / float64(epoch+1)
		sess.Log("loss", loss)
		sess.Log("acc", 1.0-loss*lr*10)
	}
	if err := sess.Commit("quickstart run"); err != nil {
		log.Fatal(err)
	}

	// Read the logs back as a pivoted dataframe (flor.dataframe).
	df, err := sess.Dataframe("loss", "acc")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("flor.dataframe(\"loss\", \"acc\"):")
	fmt.Print(df.String())

	// Or with SQL over the Figure-1 schema.
	res, err := sess.SQL(`
		SELECT value_name, count(*) AS n, max(cast_float(value)) AS best
		FROM logs GROUP BY value_name ORDER BY value_name`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nSQL over the logs table:")
	for _, r := range res.Rows {
		fmt.Printf("  %-6s n=%v best=%v\n", r[0], r[1], r[2])
	}

	// Pick the best epoch — the model-registry query of §4.2.
	best, err := df.ArgMax("acc")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbest epoch by acc: epoch=%v acc=%v\n",
		best[df.Index("epoch_value")], best[df.Index("acc")])
}
