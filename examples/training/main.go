// Training reproduces Figure 5 of the paper: an MLP trained on the corpus's
// first-page classification task under flor.checkpointing, logging loss per
// step and acc/recall per epoch, with the model registry role of §4.2 —
// query the metric history, pick the best checkpoint, and restore it.
//
//	go run ./examples/training
package main

import (
	"fmt"
	"log"
	"os"

	flor "flordb"
	"flordb/internal/docsim"
	"flordb/internal/hostlib"
	"flordb/internal/mlsim"
	"flordb/internal/replay"
)

func main() {
	dir, err := os.MkdirTemp("", "flor-training")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	sess, err := flor.Open(dir, "pdf-parser", flor.Options{
		Policy: replay.EveryN{N: 1},
		Args:   map[string]string{"epochs": "6"},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Close()

	st := hostlib.NewState(docsim.Config{
		NumDocs: 12, MinPages: 4, MaxPages: 8, OCRFraction: 0.4, Seed: 7,
	}, 16)
	hostlib.Register(sess, st)
	hostlib.RegisterFlorQueries(sess, sess)

	fmt.Println("running train.flow (the paper's Figure 5)...")
	if err := sess.RunScript("train.flow", hostlib.TrainSrc); err != nil {
		log.Fatal(err)
	}
	if err := sess.Commit("training run"); err != nil {
		log.Fatal(err)
	}

	// Metric registry: per-epoch metrics, exactly Figure 5's dataframe.
	df, err := sess.Dataframe("acc", "recall")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nflor.dataframe(\"acc\", \"recall\"):")
	fmt.Print(df.String())

	// Model registry: restore the best checkpoint by recall (§4.2).
	ts, epoch, val, err := hostlib.BestCheckpoint(sess, "recall")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbest checkpoint: version=%d epoch=%d recall=%.4f\n", ts, epoch, val)

	net := mlsim.NewMLP(st.Dim, 32, 2, mlsim.NewRNG(7))
	blob, ok := sess.Tables().GetBlobExact(sess.ProjID, replay.CkptBlobName("epoch", epoch), ts)
	if !ok {
		log.Fatal("checkpoint blob missing")
	}
	if err := replay.RestoreObjects(blob, map[string]any{"model": net}); err != nil {
		log.Fatal(err)
	}
	met := mlsim.Evaluate(net, st.Test)
	fmt.Printf("restored model evaluates to acc=%.4f recall=%.4f (matches registry)\n",
		met.Accuracy, met.MacroRecall)

	// Loss curve at step granularity.
	ldf, err := sess.Dataframe("loss")
	if err != nil {
		log.Fatal(err)
	}
	losses, _ := ldf.Column("loss")
	fmt.Printf("\nlogged %d step losses; first=%.4f last=%.4f\n",
		len(losses), losses[0].AsFloat(), losses[len(losses)-1].AsFloat())
}
