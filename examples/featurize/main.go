// Featurize reproduces Figure 3 of the paper: a Flow pipeline script walks
// a document corpus, logging text sources, page text, headings and page
// numbers per (document, page) loop context. The resulting dataframe is the
// paper's "feature store" takeaway (§4.1).
//
//	go run ./examples/featurize
package main

import (
	"fmt"
	"log"
	"os"

	flor "flordb"
	"flordb/internal/docsim"
	"flordb/internal/hostlib"
)

func main() {
	dir, err := os.MkdirTemp("", "flor-featurize")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	sess, err := flor.Open(dir, "pdf-parser", flor.Options{Stdout: os.Stdout})
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Close()

	st := hostlib.NewState(docsim.Config{
		NumDocs: 4, MinPages: 3, MaxPages: 5, OCRFraction: 0.4, Seed: 42,
	}, 16)
	hostlib.Register(sess, st)

	fmt.Println("running featurize.flow (the paper's Figure 3) over", st.Corpus.NumPages(), "pages...")
	if err := sess.RunScript("featurize.flow", hostlib.FeaturizeSrc); err != nil {
		log.Fatal(err)
	}
	if err := sess.Commit("featurization"); err != nil {
		log.Fatal(err)
	}

	// The Figure-3 dataframe: one row per page with loop dimensions.
	df, err := sess.Dataframe("text_src", "headings", "page_numbers", "first_page")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nflor.dataframe(\"text_src\", \"headings\", \"page_numbers\", \"first_page\"):")
	fmt.Print(df.String())

	// Feature-store query: which pages came from OCR?
	res, err := sess.SQL(`
		SELECT o.iteration_value AS page, count(*) AS n
		FROM logs l JOIN loops o ON l.ctx_id = o.ctx_id
		WHERE l.value_name = 'text_src' AND l.value = 'OCR' AND o.loop_name = 'page'
		GROUP BY o.iteration_value ORDER BY page`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nOCR pages by page index (SQL join logs-loops):")
	for _, r := range res.Rows {
		fmt.Printf("  page %v: %v documents\n", r[0], r[1])
	}
}
