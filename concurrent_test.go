package flor

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// TestConcurrentSnapshotEquivalenceRandomized is the snapshot-equivalence
// property test: readers pin committed-epoch snapshots while a writer logs
// and commits randomized transactions; a snapshot pinned at epoch E must
// return exactly what a serialized reader would have seen at the E-th commit
// boundary — never a partial transaction, never a missing committed one.
//
// The writer's transaction sizes are drawn from a seeded RNG, and the
// expected per-epoch state is precomputed as prefix sums, so every reader
// can check any epoch it happens to pin without coordinating with the
// writer. Run with -race: the readers and the writer share no locks.
func TestConcurrentSnapshotEquivalenceRandomized(t *testing.T) {
	s := memSession(t, Options{})
	s.SetFilename("eq.go")

	const txns = 120
	rng := rand.New(rand.NewSource(42))
	sizes := make([]int, txns)   // pairs logged by transaction k
	cum := make([]int64, txns+1) // cum[k] = pairs committed after k txns
	var sum int64
	for i := range sizes {
		sizes[i] = 1 + rng.Intn(4)
		sum += int64(sizes[i])
		cum[i+1] = sum
	}
	base := s.Database().Epoch()

	var writer sync.WaitGroup
	writer.Add(1)
	go func() {
		defer writer.Done()
		for k := 0; k < txns; k++ {
			for j := 0; j < sizes[k]; j++ {
				s.Log("pair_a", k)
				s.Log("pair_b", k)
			}
			if err := s.Commit(""); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	countQ := func(v *SnapshotView, name string) int64 {
		res, err := v.SQL(fmt.Sprintf("SELECT count(*) AS n FROM logs WHERE value_name = '%s'", name))
		if err != nil {
			t.Error(err)
			return -1
		}
		return res.Rows[0][0].AsInt()
	}

	var readers sync.WaitGroup
	for g := 0; g < 4; g++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for i := 0; i < 300; i++ {
				v, err := s.Reader()
				if err != nil {
					t.Error(err)
					return
				}
				k := v.Epoch() - base
				if k < 0 || k > txns {
					t.Errorf("epoch %d outside [%d, %d]", v.Epoch(), base, base+txns)
					return
				}
				want := cum[k]
				na := countQ(v, "pair_a")
				nb := countQ(v, "pair_b")
				if na != want || nb != want {
					t.Errorf("epoch %d: counts a=%d b=%d, serialized read would see %d", v.Epoch(), na, nb, want)
					return
				}
				// The pivot engine reads the same cut: logs and loops agree
				// inside one view even while the writer appends.
				if _, err := v.Dataframe("pair_a", "pair_b"); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	readers.Wait()
	writer.Wait()

	// Quiescent equivalence: a fresh committed snapshot now agrees with the
	// session's own latest view, query by query.
	v, err := s.Reader()
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []string{
		"SELECT count(*) AS n FROM logs",
		"SELECT value_name, count(*) AS n FROM logs GROUP BY value_name ORDER BY value_name",
		"SELECT count(*) AS n FROM logs l JOIN logs r ON l.tstamp = r.tstamp WHERE l.value_name = 'pair_a' AND r.value_name = 'pair_b'",
	} {
		a, err := v.SQL(q)
		if err != nil {
			t.Fatal(err)
		}
		b, err := s.SQL(q)
		if err != nil {
			t.Fatal(err)
		}
		if len(a.Rows) != len(b.Rows) {
			t.Fatalf("quiescent mismatch for %q: %d vs %d rows", q, len(a.Rows), len(b.Rows))
		}
		for i := range a.Rows {
			for j := range a.Rows[i] {
				if a.Rows[i][j].Key() != b.Rows[i][j].Key() {
					t.Fatalf("quiescent mismatch for %q at row %d col %d", q, i, j)
				}
			}
		}
	}
	if got := cum[txns]; countQ(v, "pair_a") != got {
		t.Fatalf("final count mismatch")
	}
}

// TestConcurrentSQLRunScriptCompactStress drives the whole stack at once on
// a durable session: Flow scripts recording and committing, SQL and
// dataframe readers pinning snapshots, and the compactor folding WAL history
// — all concurrently, under -race, with segment rotation forced small so
// compaction actually has sealed segments to fold.
func TestConcurrentSQLRunScriptCompactStress(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, "stress", Options{SegmentBytes: 2 << 10})
	if err != nil {
		t.Fatal(err)
	}

	const scripts = 12
	src := `
for i in flor.loop("iter", range(4)) {
    flor.log("stress_val", i)
}
`
	done := make(chan struct{})
	var writer sync.WaitGroup
	writer.Add(1)
	go func() {
		defer writer.Done()
		defer close(done)
		for i := 0; i < scripts; i++ {
			if err := s.RunScript(fmt.Sprintf("s%d.flow", i%3), src); err != nil {
				t.Error(err)
				return
			}
			if err := s.Commit("stress"); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	var aux sync.WaitGroup
	// Readers: SQL point queries and dataframes against pinned snapshots.
	for g := 0; g < 3; g++ {
		aux.Add(1)
		go func() {
			defer aux.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				v, err := s.Reader()
				if err != nil {
					t.Error(err)
					return
				}
				if _, err := v.SQL("SELECT count(*) AS n FROM logs WHERE value_name = 'stress_val'"); err != nil {
					t.Error(err)
					return
				}
				if _, err := v.Dataframe("stress_val"); err != nil {
					t.Error(err)
					return
				}
				if _, err := s.SQL("SELECT filename, count(*) AS n FROM logs GROUP BY filename"); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	// Compactor: folds sealed segments while everything else runs.
	aux.Add(1)
	go func() {
		defer aux.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			if _, err := s.Compact(); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	writer.Wait()
	aux.Wait()

	// The session's data survived the stress; a final compact + reopen
	// proves durability was not disturbed.
	if _, err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	res, err := s.SQL("SELECT count(*) AS n FROM logs WHERE value_name = 'stress_val'")
	if err != nil {
		t.Fatal(err)
	}
	want := int64(scripts * 4)
	if got := res.Rows[0][0].AsInt(); got != want {
		t.Fatalf("stress rows = %d, want %d", got, want)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, "stress", Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	res, err = s2.SQL("SELECT count(*) AS n FROM logs WHERE value_name = 'stress_val'")
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rows[0][0].AsInt(); got != want {
		t.Fatalf("recovered stress rows = %d, want %d", got, want)
	}
}

// TestConcurrentCloseDrainsReaders locks in the use-after-Close fix: Close
// refuses new work with ErrClosed and drains in-flight operations instead
// of yanking the WAL out from under them.
func TestConcurrentCloseDrainsReaders(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, "closing", Options{})
	if err != nil {
		t.Fatal(err)
	}
	s.Log("x", 1)
	if err := s.Commit(""); err != nil {
		t.Fatal(err)
	}

	start := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			for i := 0; i < 50; i++ {
				// Every public-API outcome is acceptable exactly once the
				// session is closed: a clean result or ErrClosed — never a
				// panic, never a write into a closed WAL.
				switch g % 4 {
				case 0:
					if _, err := s.SQL("SELECT count(*) AS n FROM logs"); err != nil && !errors.Is(err, ErrClosed) {
						t.Errorf("SQL: %v", err)
						return
					}
				case 1:
					if _, err := s.Reader(); err != nil && !errors.Is(err, ErrClosed) {
						t.Errorf("Reader: %v", err)
						return
					}
				case 2:
					s.Log("y", i) // must pass through silently after close
				case 3:
					if err := s.Commit(""); err != nil && !errors.Is(err, ErrClosed) {
						t.Errorf("Commit: %v", err)
						return
					}
				}
			}
		}(g)
	}
	close(start)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()

	// After close: hard ErrClosed on the query/write surface.
	if _, err := s.SQL("SELECT count(*) AS n FROM logs"); !errors.Is(err, ErrClosed) {
		t.Fatalf("SQL after close: %v", err)
	}
	if _, err := s.Reader(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Reader after close: %v", err)
	}
	if err := s.Commit(""); !errors.Is(err, ErrClosed) {
		t.Fatalf("Commit after close: %v", err)
	}
	if err := s.RunScript("f.flow", "x = 1\n"); !errors.Is(err, ErrClosed) {
		t.Fatalf("RunScript after close: %v", err)
	}
	if _, err := s.Compact(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Compact after close: %v", err)
	}
	if it := s.Loop("epoch", 3); it.Next() || !errors.Is(it.Err(), ErrClosed) {
		t.Fatalf("Loop after close: %v", it.Err())
	}
	if got := s.Log("z", 7); got.(int) != 7 {
		t.Fatalf("Log after close must pass through: %v", got)
	}
	// Close is idempotent.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Views pinned before close stay readable (pure in-memory state).
}

// TestConcurrentReadersScaleDuringWrites is the correctness companion to
// BenchmarkC12ConcurrentReads: snapshot readers observe stable results while
// a writer logs at full speed, and no reader ever errors or blocks on a
// lock held across a disk write.
func TestConcurrentReadersNeverSeeWriterNoise(t *testing.T) {
	s := memSession(t, Options{})
	s.SetFilename("w.go")
	for i := 0; i < 500; i++ {
		s.Log("stable", i)
	}
	if err := s.Commit("seed"); err != nil {
		t.Fatal(err)
	}

	done := make(chan struct{})
	var writer sync.WaitGroup
	writer.Add(1)
	go func() {
		defer writer.Done()
		defer close(done)
		for i := 0; i < 30000; i++ {
			s.Log("noise", i) // never committed
		}
	}()
	var readers sync.WaitGroup
	for g := 0; g < 8; g++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				v, err := s.Reader()
				if err != nil {
					t.Error(err)
					return
				}
				res, err := v.SQL("SELECT count(*) AS n FROM logs WHERE value_name = 'noise'")
				if err != nil {
					t.Error(err)
					return
				}
				// The writer never commits, so committed snapshots must see
				// zero noise rows regardless of how many were published.
				if n := res.Rows[0][0].AsInt(); n != 0 {
					t.Errorf("committed snapshot saw %d uncommitted rows", n)
					return
				}
			}
		}()
	}
	readers.Wait()
	writer.Wait()
}
