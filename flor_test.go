package flor

import (
	"encoding/json"
	"strings"
	"testing"

	"flordb/internal/build"
	"flordb/internal/replay"
	"flordb/internal/script"
)

// counterModel is a trivially checkable Snapshotter.
type counterModel struct {
	N float64 `json:"n"`
}

func (m *counterModel) Snapshot() ([]byte, error) { return json.Marshal(m) }
func (m *counterModel) Restore(b []byte) error    { return json.Unmarshal(b, m) }

func memSession(t *testing.T, opts Options) *Session {
	t.Helper()
	s, err := OpenMemory("test-proj", opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNativeLogAndDataframe(t *testing.T) {
	s := memSession(t, Options{})
	s.SetFilename("train.go")
	for it := s.Loop("epoch", 3); it.Next(); {
		s.Log("acc", 0.8+0.01*float64(it.Index()))
		s.Log("recall", 0.7)
	}
	df, err := s.Dataframe("acc", "recall")
	if err != nil {
		t.Fatal(err)
	}
	if df.Len() != 3 {
		t.Fatalf("rows = %d\n%s", df.Len(), df)
	}
	if df.Index("epoch_value") < 0 {
		t.Fatalf("columns: %v", df.Columns)
	}
	best, err := df.ArgMax("acc")
	if err != nil {
		t.Fatal(err)
	}
	if best[df.Index("epoch_value")].AsText() != "2" {
		t.Fatalf("best epoch: %v", best)
	}
}

func TestNativeArgs(t *testing.T) {
	s := memSession(t, Options{Args: map[string]string{"lr": "0.5", "epochs": "7", "name": "x"}})
	if got := s.ArgFloat("lr", 0.001); got != 0.5 {
		t.Fatalf("lr = %v", got)
	}
	if got := s.ArgInt("epochs", 5); got != 7 {
		t.Fatalf("epochs = %v", got)
	}
	if got := s.ArgString("name", "d"); got != "x" {
		t.Fatalf("name = %v", got)
	}
	if got := s.ArgInt("missing", 9); got != 9 {
		t.Fatalf("default = %v", got)
	}
}

func TestLoopValsRecordsIterationValues(t *testing.T) {
	s := memSession(t, Options{})
	docs := []string{"a.pdf", "b.pdf"}
	for it := s.LoopVals("document", docs); it.Next(); {
		s.Log("doc_seen", docs[it.Index()])
	}
	df, err := s.Dataframe("doc_seen")
	if err != nil {
		t.Fatal(err)
	}
	vals, _ := df.Column("document_value")
	if len(vals) != 2 || vals[0].AsText() != "a.pdf" || vals[1].AsText() != "b.pdf" {
		t.Fatalf("document dims: %v", vals)
	}
}

func TestCommitAdvancesTstampAndVersions(t *testing.T) {
	s := memSession(t, Options{})
	ts0 := s.Tstamp()
	if err := s.RunScript("train.flow", "flor.log(\"x\", 1)\n"); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit("v1"); err != nil {
		t.Fatal(err)
	}
	if s.Tstamp() != ts0+1 {
		t.Fatalf("tstamp: %d -> %d", ts0, s.Tstamp())
	}
	if err := s.RunScript("train.flow", "flor.log(\"x\", 2)\n"); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit("v2"); err != nil {
		t.Fatal(err)
	}
	versions, err := s.Versions("train.flow")
	if err != nil {
		t.Fatal(err)
	}
	if len(versions) != 2 {
		t.Fatalf("versions = %d", len(versions))
	}
	if versions[0].Tstamp != ts0 || versions[1].Tstamp != ts0+1 {
		t.Fatalf("version tstamps: %+v", versions)
	}
	// A commit without execution does NOT create a replayable version.
	s.StageFile("train.flow", "flor.log(\"x\", 3)\n")
	if err := s.Commit("v3-not-run"); err != nil {
		t.Fatal(err)
	}
	versions, _ = s.Versions("train.flow")
	if len(versions) != 2 {
		t.Fatalf("unexecuted commit became a version: %+v", versions)
	}
}

func TestSQLOverFigure1Schema(t *testing.T) {
	s := memSession(t, Options{})
	s.SetFilename("train.go")
	for it := s.Loop("epoch", 2); it.Next(); {
		s.Log("loss", 0.5)
	}
	res, err := s.SQL("SELECT count(*) AS n FROM logs WHERE value_name = 'loss'")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].AsInt() != 2 {
		t.Fatalf("sql: %v", res.Rows)
	}
	res, err = s.SQL("SELECT loop_name, count(*) AS n FROM loops GROUP BY loop_name")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][1].AsInt() != 2 {
		t.Fatalf("loops sql: %v", res.Rows)
	}
}

func TestSQLGitVirtualTable(t *testing.T) {
	s := memSession(t, Options{})
	s.StageFile("a.flow", "x = 1\n")
	s.Commit("c1")
	s.StageFile("a.flow", "x = 2\n")
	s.Commit("c2")
	res, err := s.SQL("SELECT count(*) AS n FROM git WHERE filename = 'a.flow'")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].AsInt() != 2 {
		t.Fatalf("git rows: %v", res.Rows)
	}
	res, err = s.SQL("SELECT count(*) AS n FROM git WHERE parent_vid IS NULL")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].AsInt() != 1 {
		t.Fatalf("root commits: %v", res.Rows)
	}
}

func TestRunScriptRecordsWithFilename(t *testing.T) {
	s := memSession(t, Options{})
	src := `
for d in flor.loop("document", docs()) {
    flor.log("seen", d)
}
`
	s.RegisterHost("docs", func([]script.Value, map[string]script.Value) (script.Value, error) {
		return script.NewList("x.pdf", "y.pdf"), nil
	})
	if err := s.RunScript("featurize.flow", src); err != nil {
		t.Fatal(err)
	}
	res, err := s.SQL("SELECT DISTINCT filename FROM logs")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].AsText() != "featurize.flow" {
		t.Fatalf("filenames: %v", res.Rows)
	}
	// The script source is staged for commit.
	if err := s.Commit("ran featurize"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Versions("featurize.flow"); err != nil {
		t.Fatal(err)
	}
}

func TestRunScriptParseError(t *testing.T) {
	s := memSession(t, Options{})
	if err := s.RunScript("bad.flow", "if {"); err == nil {
		t.Fatal("parse error must surface")
	}
}

const sessTrainSrc = `
epochs = flor.arg("epochs", 3)
net = make_model()
with flor.checkpointing(model=net) {
    for epoch in flor.loop("epoch", range(epochs)) {
        for step in flor.loop("step", range(2)) {
            bump(net)
        }
        flor.log("acc", peek(net))
    }
}
`

const sessTrainSrcWithNorm = `
epochs = flor.arg("epochs", 3)
net = make_model()
with flor.checkpointing(model=net) {
    for epoch in flor.loop("epoch", range(epochs)) {
        for step in flor.loop("step", range(2)) {
            bump(net)
        }
        norm = peek(net) * 10
        flor.log("norm", norm)
        flor.log("acc", peek(net))
    }
}
`

func registerCounterHosts(s *Session) {
	s.RegisterHost("make_model", func([]script.Value, map[string]script.Value) (script.Value, error) {
		return &counterModel{}, nil
	})
	s.RegisterHost("bump", func(args []script.Value, _ map[string]script.Value) (script.Value, error) {
		args[0].(*counterModel).N++
		return nil, nil
	})
	s.RegisterHost("peek", func(args []script.Value, _ map[string]script.Value) (script.Value, error) {
		return args[0].(*counterModel).N, nil
	})
}

func TestEndToEndHindsight(t *testing.T) {
	s := memSession(t, Options{Policy: replay.EveryN{N: 1}})
	registerCounterHosts(s)
	// Run and commit two versions.
	for v := 0; v < 2; v++ {
		if err := s.RunScript("train.flow", sessTrainSrc); err != nil {
			t.Fatal(err)
		}
		if err := s.Commit("run"); err != nil {
			t.Fatal(err)
		}
	}
	// Hindsight: add the norm log.
	reports, err := s.Hindsight("train.flow", sessTrainSrcWithNorm, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 2 {
		t.Fatalf("reports = %d", len(reports))
	}
	for _, rep := range reports {
		if rep.Err != nil {
			t.Fatal(rep.Err)
		}
		if rep.Stats.LogsEmitted != 3 {
			t.Fatalf("logs emitted = %d", rep.Stats.LogsEmitted)
		}
		if rep.Mode != "coarse" {
			t.Fatalf("mode = %s", rep.Mode)
		}
	}
	// The dataframe now has norm for BOTH historical versions.
	df, err := s.Dataframe("acc", "norm")
	if err != nil {
		t.Fatal(err)
	}
	if df.Len() != 6 {
		t.Fatalf("rows = %d\n%s", df.Len(), df)
	}
	ni, ai := df.Index("norm"), df.Index("acc")
	for _, r := range df.Rows {
		if r[ni].IsNull() || r[ai].IsNull() {
			t.Fatalf("norm/acc missing in %v", r)
		}
		if diff := r[ni].AsFloat() - 10*r[ai].AsFloat(); diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("norm != 10*acc: %v", r)
		}
	}
}

func TestHindsightWithoutVersionsFails(t *testing.T) {
	s := memSession(t, Options{})
	if _, err := s.Hindsight("never.flow", "x = 1\n", nil); err == nil {
		t.Fatal("hindsight without versions must fail")
	}
}

func TestLoggedNamesAcrossVersions(t *testing.T) {
	s := memSession(t, Options{})
	s.Log("a", 1)
	s.StageFile("f", "x")
	s.Commit("")
	s.Log("b", 2)
	names := s.LoggedNamesAcrossVersions()
	if len(names) != 2 {
		t.Fatalf("versions: %v", names)
	}
	if names[1][0] != "a" || names[2][0] != "b" {
		t.Fatalf("names: %v", names)
	}
}

func TestCheckpointingNativeAPI(t *testing.T) {
	s := memSession(t, Options{Policy: replay.EveryN{N: 1}})
	m := &counterModel{}
	scope, err := s.Checkpointing(map[string]Snapshotter{"model": m})
	if err != nil {
		t.Fatal(err)
	}
	for it := s.Loop("epoch", 3); it.Next(); {
		m.N++
	}
	if err := scope.Close(); err != nil {
		t.Fatal(err)
	}
	res, err := s.SQL("SELECT count(*) AS n FROM obj_store")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].AsInt() != 3 {
		t.Fatalf("checkpoints: %v", res.Rows)
	}
}

func TestRegisterBuildVirtualTable(t *testing.T) {
	s := memSession(t, Options{})
	mf, err := build.Parse("prep:\n\tcmd\ntrain: prep\n\tcmd\n")
	if err != nil {
		t.Fatal(err)
	}
	runner := build.NewRunner(mf, func(build.Rule) error { return nil }, 1)
	if err := s.RegisterBuild(mf, runner); err != nil {
		t.Fatal(err)
	}
	res, err := s.SQL("SELECT target FROM build_deps WHERE deps LIKE '%prep%'")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].AsText() != "train" {
		t.Fatalf("build_deps: %v", res.Rows)
	}
}

func TestDurableSessionRecovery(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, "proj", Options{Policy: replay.EveryN{N: 1}})
	if err != nil {
		t.Fatal(err)
	}
	registerCounterHosts(s)
	if err := s.RunScript("train.flow", sessTrainSrc); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit("run 1"); err != nil {
		t.Fatal(err)
	}
	tsAfter := s.Tstamp()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: logs, loops, args, checkpoints, versions all recovered.
	s2, err := Open(dir, "proj", Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Tstamp() != tsAfter {
		t.Fatalf("recovered tstamp = %d want %d", s2.Tstamp(), tsAfter)
	}
	df, err := s2.Dataframe("acc")
	if err != nil {
		t.Fatal(err)
	}
	if df.Len() != 3 {
		t.Fatalf("recovered rows = %d", df.Len())
	}
	versions, err := s2.Versions("train.flow")
	if err != nil || len(versions) != 1 {
		t.Fatalf("recovered versions: %v %v", versions, err)
	}
	res, err := s2.SQL("SELECT count(*) AS n FROM obj_store")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].AsInt() != 3 {
		t.Fatalf("recovered checkpoints: %v", res.Rows)
	}
	// Hindsight works across the restart.
	registerCounterHosts(s2)
	reports, err := s2.Hindsight("train.flow", sessTrainSrcWithNorm, nil)
	if err != nil {
		t.Fatal(err)
	}
	if reports[0].Err != nil || reports[0].Stats.LogsEmitted != 3 {
		t.Fatalf("post-recovery hindsight: %+v", reports[0])
	}
}

func TestFlorLogReturnValuePassthrough(t *testing.T) {
	s := memSession(t, Options{})
	if got := s.Log("x", 42); got.(int64) != 42 {
		t.Fatalf("passthrough: %v", got)
	}
	if got := s.Log("y", "text"); got.(string) != "text" {
		t.Fatalf("passthrough: %v", got)
	}
}

func TestDataframeAtFilters(t *testing.T) {
	s := memSession(t, Options{})
	s.SetFilename("a.go")
	s.Log("m", 1)
	s.SetFilename("b.go")
	s.Log("m", 2)
	df, err := s.DataframeAt("a.go", 0, "m")
	if err != nil {
		t.Fatal(err)
	}
	if df.Len() != 1 {
		t.Fatalf("rows = %d", df.Len())
	}
}

func TestSQLRejectsGarbage(t *testing.T) {
	s := memSession(t, Options{})
	if _, err := s.SQL("DELETE FROM logs"); err == nil {
		t.Fatal("non-SELECT must fail")
	}
	if _, err := s.SQL("SELECT * FROM nope"); err == nil {
		t.Fatal("unknown table must fail")
	}
}

func TestLoopEarlyValuesMatchPaperNesting(t *testing.T) {
	// Nested native loops: document > page, mirroring Figure 3.
	s := memSession(t, Options{})
	docs := []string{"d0", "d1"}
	for d := s.LoopVals("document", docs); d.Next(); {
		for p := s.Loop("page", 2); p.Next(); {
			s.Log("page_text", strings.Repeat("x", p.Index()+1))
		}
	}
	df, err := s.Dataframe("page_text")
	if err != nil {
		t.Fatal(err)
	}
	if df.Len() != 4 {
		t.Fatalf("rows = %d\n%s", df.Len(), df)
	}
	if df.Index("document_value") < 0 || df.Index("page_value") < 0 {
		t.Fatalf("columns: %v", df.Columns)
	}
}

func TestExplainShowsIndexBackedPlan(t *testing.T) {
	sess, err := OpenMemory("p", Options{})
	if err != nil {
		t.Fatal(err)
	}
	sess.SetFilename("train.go")
	for it := sess.Loop("epoch", 3); it.Next(); {
		sess.Log("acc", 0.9)
	}

	plan, err := sess.Explain("SELECT value FROM logs WHERE projid = 'p' AND value_name = 'acc'")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "IndexLookup logs via hash(projid, value_name)") {
		t.Fatalf("point query not index-backed:\n%s", plan)
	}

	// The EXPLAIN prefix through the plain SQL surface agrees.
	res, err := sess.SQL("EXPLAIN SELECT value FROM logs WHERE projid = 'p' AND value_name = 'acc'")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Columns) != 1 || res.Columns[0] != "plan" || len(res.Rows) == 0 {
		t.Fatalf("EXPLAIN result shape: cols=%v rows=%d", res.Columns, len(res.Rows))
	}
	joined := ""
	for _, r := range res.Rows {
		joined += r[0].String() + "\n"
	}
	if !strings.Contains(joined, "IndexLookup") {
		t.Fatalf("SQL EXPLAIN missing index lookup:\n%s", joined)
	}

	// And the plan executes to the same rows the naive path would produce.
	rows, err := sess.SQL("SELECT value FROM logs WHERE projid = 'p' AND value_name = 'acc'")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Rows) != 3 {
		t.Fatalf("planned query returned %d rows, want 3", len(rows.Rows))
	}
}
