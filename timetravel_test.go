// End-to-end tests for time-travel AS OF queries and epoch-retention GC:
// epoch semantics across restart, compaction, replication-free GC cycles,
// timestamp resolution, and a randomized prefix-equivalence property.
package flor_test

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"testing"
	"time"

	flor "flordb"
)

// commitStep logs `perCommit` rows stamped with the commit's ordinal and
// commits, so epoch e sees exactly the rows of commits 1..e.
func commitStep(t *testing.T, s *flor.Session, ordinal, perCommit int) {
	t.Helper()
	for j := 0; j < perCommit; j++ {
		s.Log("step", fmt.Sprintf("c%03d-%02d", ordinal, j))
	}
	if err := s.Commit("commit " + strconv.Itoa(ordinal)); err != nil {
		t.Fatal(err)
	}
}

// stepsAsOf reads back the logged step values visible at the given epoch,
// sorted, via a SQL AS OF query on a current reader.
func stepsAsOf(t *testing.T, s *flor.Session, epoch int64) []string {
	t.Helper()
	res, err := s.SQL("SELECT value FROM logs WHERE value_name = 'step' AS OF " + strconv.FormatInt(epoch, 10))
	if err != nil {
		t.Fatalf("AS OF %d: %v", epoch, err)
	}
	out := make([]string, len(res.Rows))
	for i, r := range res.Rows {
		out[i] = r[0].AsText()
	}
	sort.Strings(out)
	return out
}

// expectSteps is the reference answer: the sorted step values of the first
// e commits.
func expectSteps(e, perCommit int) []string {
	var out []string
	for c := 1; c <= e; c++ {
		for j := 0; j < perCommit; j++ {
			out = append(out, fmt.Sprintf("c%03d-%02d", c, j))
		}
	}
	sort.Strings(out)
	return out
}

func assertEpochsVisible(t *testing.T, s *flor.Session, upto, perCommit int) {
	t.Helper()
	floor := s.RetentionFloor()
	for e := int(floor); e <= upto; e++ {
		got := stepsAsOf(t, s, int64(e))
		want := expectSteps(e, perCommit)
		if len(got) != len(want) {
			t.Fatalf("epoch %d: %d rows, want %d", e, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("epoch %d row %d: %q, want %q", e, i, got[i], want[i])
			}
		}
		// ReaderAt agrees with the SQL AS OF path.
		view, err := s.ReaderAt(int64(e))
		if err != nil {
			t.Fatalf("ReaderAt(%d): %v", e, err)
		}
		res, err := view.SQL("SELECT count(*) c FROM logs WHERE value_name = 'step'")
		view.Close()
		if err != nil {
			t.Fatal(err)
		}
		if got := res.Rows[0][0].AsInt(); got != int64(len(want)) {
			t.Fatalf("ReaderAt(%d) count = %d, want %d", e, got, len(want))
		}
	}
}

func TestTimeTravelSurvivesRestartAndCompaction(t *testing.T) {
	dir := t.TempDir()
	s, err := flor.Open(dir, "tt", flor.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s.SetFilename("train.go")
	const commits, perCommit = 6, 3
	for c := 1; c <= commits; c++ {
		commitStep(t, s, c, perCommit)
	}
	if got := s.Database().Epoch(); got != commits {
		t.Fatalf("epoch = %d, want %d", got, commits)
	}
	assertEpochsVisible(t, s, commits, perCommit)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart: WAL replay must recount epochs commit by commit.
	s, err = flor.Open(dir, "tt", flor.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Database().Epoch(); got != commits {
		t.Fatalf("epoch after restart = %d, want %d", got, commits)
	}
	assertEpochsVisible(t, s, commits, perCommit)

	// Compact, add more history, restart again: the snapshot path must
	// preserve per-version epochs and the epoch counter.
	if _, err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	s.SetFilename("train.go")
	commitStep(t, s, commits+1, perCommit)
	assertEpochsVisible(t, s, commits+1, perCommit)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s, err = flor.Open(dir, "tt", flor.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if got := s.Database().Epoch(); got != commits+1 {
		t.Fatalf("epoch after compact+restart = %d, want %d", got, commits+1)
	}
	assertEpochsVisible(t, s, commits+1, perCommit)
}

func TestAsOfTimestampResolvesToEpoch(t *testing.T) {
	s, err := flor.OpenMemory("tt-ts", flor.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.SetFilename("train.go")

	var marks []time.Time // marks[i] = a wall instant after commit i+1
	for c := 1; c <= 3; c++ {
		commitStep(t, s, c, 1)
		time.Sleep(5 * time.Millisecond)
		marks = append(marks, time.Now().UTC())
		time.Sleep(5 * time.Millisecond)
	}

	for i, mark := range marks {
		q := "SELECT count(*) c FROM logs WHERE value_name = 'step' AS OF TIMESTAMP '" +
			mark.Format(time.RFC3339Nano) + "'"
		res, err := s.SQL(q)
		if err != nil {
			t.Fatal(err)
		}
		if got := res.Rows[0][0].AsInt(); got != int64(i+1) {
			t.Fatalf("timestamp after commit %d resolved to %d rows", i+1, got)
		}
	}

	// A timestamp before all commits resolves to the empty epoch 0.
	res, err := s.SQL("SELECT count(*) c FROM logs AS OF TIMESTAMP '2000-01-01'")
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rows[0][0].AsInt(); got != 0 {
		t.Fatalf("ancient timestamp sees %d rows, want 0", got)
	}
}

func TestGCEpochsRetiresHistory(t *testing.T) {
	dir := t.TempDir()
	s, err := flor.Open(dir, "tt-gc", flor.Options{RetainEpochs: 2})
	if err != nil {
		t.Fatal(err)
	}
	s.SetFilename("train.go")
	for c := 1; c <= 5; c++ {
		commitStep(t, s, c, 2)
	}

	// A pin at epoch 1 clamps the floor.
	pinned, err := s.ReaderAt(1)
	if err != nil {
		t.Fatal(err)
	}
	st, err := s.GCEpochs()
	if err != nil {
		t.Fatal(err)
	}
	if st.Floor != 1 {
		t.Fatalf("floor with pin at 1 = %d, want 1", st.Floor)
	}
	pinned.Close()

	// Unclamped: floor = epoch 5 - retain 2 = 3.
	st, err = s.GCEpochs()
	if err != nil {
		t.Fatal(err)
	}
	if st.Floor != 3 {
		t.Fatalf("floor = %d, want 3", st.Floor)
	}
	if s.RetentionFloor() != 3 {
		t.Fatalf("RetentionFloor = %d", s.RetentionFloor())
	}

	// Retired epochs refuse with the typed sentinel, on both read paths.
	if _, err := s.ReaderAt(2); !errors.Is(err, flor.ErrEpochRetired) {
		t.Fatalf("ReaderAt(2) after GC: %v", err)
	}
	if _, err := s.SQL("SELECT * FROM logs AS OF 2"); !errors.Is(err, flor.ErrEpochRetired) {
		t.Fatalf("SQL AS OF 2 after GC: %v", err)
	}
	assertEpochsVisible(t, s, 5, 2)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// The floor is persisted: a restarted session keeps refusing, and a
	// compaction folds the retired versions out of the durable snapshot.
	s, err = flor.Open(dir, "tt-gc", flor.Options{RetainEpochs: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if got := s.RetentionFloor(); got != 3 {
		t.Fatalf("RetentionFloor after restart = %d, want 3", got)
	}
	if _, err := s.ReaderAt(2); !errors.Is(err, flor.ErrEpochRetired) {
		t.Fatalf("ReaderAt(2) after restart: %v", err)
	}
	if _, err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	assertEpochsVisible(t, s, 5, 2)
}

// TestAsOfPrefixEquivalenceRandomized is the randomized property: under a
// random interleaving of commits, compactions, GC cycles, and restarts,
// AS OF e must equal the fully-replayed prefix at e for every retained
// epoch, and every retired epoch must fail with ErrEpochRetired.
func TestAsOfPrefixEquivalenceRandomized(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(seed))
			dir := t.TempDir()
			s, err := flor.Open(dir, "tt-prop", flor.Options{RetainEpochs: 4})
			if err != nil {
				t.Fatal(err)
			}
			s.SetFilename("train.go")
			var perC []int // perC[c-1] = rows logged by commit c
			for step := 0; step < 30; step++ {
				switch r := rng.Intn(10); {
				case r < 6: // commit
					n := 1 + rng.Intn(3)
					perC = append(perC, n)
					commitStep(t, s, len(perC), n)
				case r < 8: // compact
					if _, err := s.Compact(); err != nil {
						t.Fatal(err)
					}
				case r == 8: // GC
					if _, err := s.GCEpochs(); err != nil {
						t.Fatal(err)
					}
				default: // restart
					if err := s.Close(); err != nil {
						t.Fatal(err)
					}
					s, err = flor.Open(dir, "tt-prop", flor.Options{RetainEpochs: 4})
					if err != nil {
						t.Fatal(err)
					}
					s.SetFilename("train.go")
				}

				commits := int64(len(perC))
				if got := s.Database().Epoch(); got != commits {
					t.Fatalf("step %d: epoch %d, want %d commits", step, got, commits)
				}
				floor := s.RetentionFloor()
				for e := int64(0); e <= commits; e++ {
					if e < floor {
						if _, err := s.ReaderAt(e); !errors.Is(err, flor.ErrEpochRetired) {
							t.Fatalf("step %d: retired epoch %d gave %v", step, e, err)
						}
						continue
					}
					got := stepsAsOf(t, s, e)
					// The fully-replayed prefix at e: every row of commits 1..e.
					var want []string
					for c := 1; c <= int(e); c++ {
						for j := 0; j < perC[c-1]; j++ {
							want = append(want, fmt.Sprintf("c%03d-%02d", c, j))
						}
					}
					sort.Strings(want)
					if len(got) != len(want) {
						t.Fatalf("step %d epoch %d: %d rows, want %d", step, e, len(got), len(want))
					}
					for i := range want {
						if got[i] != want[i] {
							t.Fatalf("step %d epoch %d row %d: %q != %q", step, e, i, got[i], want[i])
						}
					}
				}
			}
			s.Close()
		})
	}
}

// TestTimeTravelLargeProjectAcrossCompaction is the scale acceptance: a
// project with 100k logged rows over 10 commits answers correctly at all 10
// historical epochs after `flordb compact`-equivalent compaction.
func TestTimeTravelLargeProjectAcrossCompaction(t *testing.T) {
	if testing.Short() {
		t.Skip("100k-row project; skipped with -short")
	}
	dir := t.TempDir()
	s, err := flor.Open(dir, "tt-big", flor.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s.SetFilename("train.go")
	const commits, perCommit = 10, 10_000
	for c := 1; c <= commits; c++ {
		for j := 0; j < perCommit; j++ {
			s.Log("metric", c*perCommit+j)
		}
		if err := s.Commit("bulk " + strconv.Itoa(c)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s, err = flor.Open(dir, "tt-big", flor.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if got := s.Database().Epoch(); got != commits {
		t.Fatalf("epoch = %d, want %d", got, commits)
	}
	for e := 1; e <= commits; e++ {
		res, err := s.SQL("SELECT count(*) c FROM logs WHERE value_name = 'metric' AS OF " + strconv.Itoa(e))
		if err != nil {
			t.Fatal(err)
		}
		if got := res.Rows[0][0].AsInt(); got != int64(e*perCommit) {
			t.Fatalf("epoch %d: count = %d, want %d", e, got, e*perCommit)
		}
	}
}
