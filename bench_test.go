// Benchmark harness for the FlorDB reproduction. One benchmark per figure
// and per performance claim in DESIGN.md's experiment index (F2-F6, C1-C10)
// plus the ablations of §6. Run:
//
//	go test -bench=. -benchmem
//
// EXPERIMENTS.md records the measured shapes against the paper's claims.
package flor_test

import (
	"context"
	"fmt"
	"net/http/httptest"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	flor "flordb"
	"flordb/internal/build"
	"flordb/internal/docsim"
	"flordb/internal/hostlib"
	"flordb/internal/record"
	"flordb/internal/relation"
	"flordb/internal/repl"
	"flordb/internal/replay"
	"flordb/internal/script"
	"flordb/internal/sqlparse"
	"flordb/internal/storage"
)

// benchState builds a session + host state sized for benching.
func benchState(b *testing.B, policy replay.CheckpointPolicy) (*flor.Session, *hostlib.State) {
	b.Helper()
	sess, err := flor.OpenMemory("bench", flor.Options{Policy: policy})
	if err != nil {
		b.Fatal(err)
	}
	st := hostlib.NewState(docsim.Config{
		NumDocs: 10, MinPages: 4, MaxPages: 8, OCRFraction: 0.4, Seed: 11,
	}, 16)
	hostlib.Register(sess, st)
	hostlib.RegisterFlorQueries(sess, sess)
	return sess, st
}

// ---------------------------------------------------------------------------
// F2 / F4 — Figure 2 & 4: pipeline build + dataframe over the pipeline logs.
// ---------------------------------------------------------------------------

func BenchmarkFig2PipelineDataframe(b *testing.B) {
	sess, _ := benchState(b, replay.EveryN{N: 1})
	mf, err := build.Parse("featurize: src\n\tflow featurize.flow\ntrain: featurize\n\tflow train.flow\ninfer: train\n\tflow infer.flow\n")
	if err != nil {
		b.Fatal(err)
	}
	scripts := map[string]string{
		"featurize.flow": hostlib.FeaturizeSrc,
		"train.flow":     hostlib.TrainSrc,
		"infer.flow":     hostlib.InferSrc,
	}
	runner := build.NewRunner(mf, func(rule build.Rule) error {
		for _, c := range rule.Cmds {
			if len(c) > 5 && c[:5] == "flow " {
				if err := sess.RunScript(c[5:], scripts[c[5:]]); err != nil {
					return err
				}
			}
		}
		return nil
	}, 1)
	if err := runner.Run("infer"); err != nil {
		b.Fatal(err)
	}
	if err := sess.Commit("bench"); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		df, err := sess.Dataframe("acc", "recall")
		if err != nil || df.Len() == 0 {
			b.Fatalf("df: %v %d", err, df.Len())
		}
	}
}

// ---------------------------------------------------------------------------
// F3 — Figure 3: featurization logging throughput (feature-store role).
// ---------------------------------------------------------------------------

func BenchmarkFig3Featurize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		sess, _ := benchState(b, replay.Never{})
		b.StartTimer()
		if err := sess.RunScript("featurize.flow", hostlib.FeaturizeSrc); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// F5 — Figure 5: instrumented training run (recording path end to end).
// ---------------------------------------------------------------------------

func BenchmarkFig5Training(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		sess, _ := benchState(b, replay.EveryN{N: 1})
		b.StartTimer()
		if err := sess.RunScript("train.flow", hostlib.TrainSrc); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// F6 — Figure 6: feedback write path (save_colors) throughput.
// ---------------------------------------------------------------------------

func BenchmarkFig6Feedback(b *testing.B) {
	sess, _ := benchState(b, replay.Never{})
	colorScript := `colors = [0, 0, 1, 1]
with flor.iteration("document", nil, "doc000.pdf") {
    for i in flor.loop("page", range(4)) {
        flor.log("page_color", colors[i])
    }
}
`
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sess.RunScript("webui.flow", colorScript); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// C1 — recording overhead: the same training loop uninstrumented (NopHooks),
// under flor recording, and recording+WAL. Paper claim: low overhead.
// ---------------------------------------------------------------------------

func benchTrainingWith(b *testing.B, mk func() (interpRunner, func())) {
	b.Helper()
	f, err := script.Parse("train.flow", hostlib.TrainSrc)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		in, cleanup := mk()
		b.StartTimer()
		if err := in.Run(f); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		cleanup()
		b.StartTimer()
	}
}

type interpRunner interface{ Run(f *script.File) error }

func benchHostState() *hostlib.State {
	return hostlib.NewState(docsim.Config{
		NumDocs: 10, MinPages: 4, MaxPages: 8, OCRFraction: 0.4, Seed: 11,
	}, 16)
}

func BenchmarkC1RecordOverheadOff(b *testing.B) {
	st := heavyHostState()
	benchTrainingWith(b, func() (interpRunner, func()) {
		in := script.NewInterp(script.NopHooks{}, nil)
		hostlib.Register(in, st)
		return in, func() {}
	})
}

func BenchmarkC1RecordOverheadFlor(b *testing.B) {
	st := heavyHostState()
	benchTrainingWith(b, func() (interpRunner, func()) {
		sess, err := flor.OpenMemory("bench", flor.Options{Policy: replay.EveryN{N: 1}})
		if err != nil {
			b.Fatal(err)
		}
		in := script.NewInterp(sessRecorder(sess), nil)
		hostlib.Register(in, st)
		return in, func() { sess.Close() }
	})
}

func BenchmarkC1RecordOverheadFlorWAL(b *testing.B) {
	st := heavyHostState()
	dir := b.TempDir()
	n := 0
	benchTrainingWith(b, func() (interpRunner, func()) {
		n++
		sess, err := flor.Open(fmt.Sprintf("%s/run%d", dir, n), "bench", flor.Options{Policy: replay.EveryN{N: 1}, NoSync: true})
		if err != nil {
			b.Fatal(err)
		}
		in := script.NewInterp(sessRecorder(sess), nil)
		hostlib.Register(in, st)
		return in, func() { sess.Close() }
	})
}

// sessRecorder exposes the session's recorder for direct interpreter use in
// benchmarks (bypassing RunScript's staging overhead so C1 isolates hook cost).
func sessRecorder(s *flor.Session) script.FlorHooks { return s.Hooks() }

// ---------------------------------------------------------------------------
// C2 — hindsight replay vs full re-execution. The paper's core claim: adding
// a log statement to history costs far less than re-running history.
// ---------------------------------------------------------------------------

// heavyHostState builds a corpus large enough that training work dominates
// bookkeeping — the regime the paper's replay-vs-rerun claim targets.
func heavyHostState() *hostlib.State {
	return hostlib.NewState(docsim.Config{
		NumDocs: 60, MinPages: 5, MaxPages: 10, OCRFraction: 0.4, Seed: 11,
	}, 32)
}

// setupHindsightBench records `versions` training runs on the heavy corpus
// and returns the session (checkpoints every epoch).
func setupHindsightBench(b *testing.B, versions int) (*flor.Session, *hostlib.State) {
	b.Helper()
	sess, err := flor.OpenMemory("bench", flor.Options{Policy: replay.EveryN{N: 1}})
	if err != nil {
		b.Fatal(err)
	}
	st := heavyHostState()
	hostlib.Register(sess, st)
	hostlib.RegisterFlorQueries(sess, sess)
	for v := 0; v < versions; v++ {
		if err := sess.RunScript("train.flow", hostlib.TrainSrc); err != nil {
			b.Fatal(err)
		}
		if err := sess.Commit("run"); err != nil {
			b.Fatal(err)
		}
	}
	return sess, st
}

func BenchmarkC2HindsightReplayCoarse(b *testing.B) {
	sess, _ := setupHindsightBench(b, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		reports, err := sess.Hindsight("train.flow", hostlib.TrainSrcWithNorm, nil)
		if err != nil {
			b.Fatal(err)
		}
		for _, rep := range reports {
			if rep.Err != nil {
				b.Fatal(rep.Err)
			}
		}
	}
}

func BenchmarkC2FullReExecutionBaseline(b *testing.B) {
	// The baseline the paper's replay avoids: re-running every version in
	// full with the new logging statement.
	st := heavyHostState()
	f, err := script.Parse("train.flow", hostlib.TrainSrcWithNorm)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for v := 0; v < 3; v++ {
			in := script.NewInterp(script.NopHooks{}, nil)
			hostlib.Register(in, st)
			if err := in.Run(f); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkC2HindsightTargetedLastEpoch(b *testing.B) {
	sess, _ := setupHindsightBench(b, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sess.Hindsight("train.flow", hostlib.TrainSrcWithNorm, []int{4}); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// C3 — parallel replay speedup across versions.
// ---------------------------------------------------------------------------

func benchParallelReplay(b *testing.B, workers int) {
	sess, _ := setupHindsightBench(b, 6)
	versions, err := sess.Versions("train.flow")
	if err != nil {
		b.Fatal(err)
	}
	st := heavyHostState()
	d := &replay.Driver{
		Repo: sess.Repo(), Tables: sess.Tables(), ProjID: sess.ProjID,
		Workers: workers,
		Setup:   func(in *script.Interp) { hostlib.Register(in, st) },
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		reports, err := d.Hindsight("train.flow", hostlib.TrainSrcWithNorm, versions, nil)
		if err != nil {
			b.Fatal(err)
		}
		for _, rep := range reports {
			if rep.Err != nil {
				b.Fatal(rep.Err)
			}
		}
	}
}

func BenchmarkC3ParallelReplay1Worker(b *testing.B)  { benchParallelReplay(b, 1) }
func BenchmarkC3ParallelReplay2Workers(b *testing.B) { benchParallelReplay(b, 2) }
func BenchmarkC3ParallelReplay4Workers(b *testing.B) { benchParallelReplay(b, 4) }

// ---------------------------------------------------------------------------
// C4 — cross-version statement propagation cost (diff + inject only).
// ---------------------------------------------------------------------------

func BenchmarkC4Propagation(b *testing.B) {
	oldF, err := script.Parse("train.flow", hostlib.TrainSrc)
	if err != nil {
		b.Fatal(err)
	}
	newF, err := script.Parse("train.flow", hostlib.TrainSrcWithNorm)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		merged, res := script.Propagate(oldF, newF)
		if res.Injected != 2 || merged == nil {
			b.Fatalf("injected = %d", res.Injected)
		}
	}
}

// ---------------------------------------------------------------------------
// C5 — dataframe pivot scaling with history size.
// ---------------------------------------------------------------------------

func benchDataframeScale(b *testing.B, runs int) {
	sess, err := flor.OpenMemory("bench", flor.Options{})
	if err != nil {
		b.Fatal(err)
	}
	sess.SetFilename("train.go")
	for r := 0; r < runs; r++ {
		for it := sess.Loop("epoch", 10); it.Next(); {
			sess.Log("acc", 0.5+float64(it.Index())/100)
			sess.Log("recall", 0.4+float64(it.Index())/100)
			sess.Log("loss", 1.0/float64(it.Index()+1))
		}
		if err := sess.Commit(""); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		df, err := sess.Dataframe("acc", "recall")
		if err != nil || df.Len() != runs*10 {
			b.Fatalf("df: %v len=%d", err, df.Len())
		}
	}
}

func BenchmarkC5Dataframe10Runs(b *testing.B)  { benchDataframeScale(b, 10) }
func BenchmarkC5Dataframe50Runs(b *testing.B)  { benchDataframeScale(b, 50) }
func BenchmarkC5Dataframe200Runs(b *testing.B) { benchDataframeScale(b, 200) }

func BenchmarkC5SQLFilterPushdown(b *testing.B) {
	sess, err := flor.OpenMemory("bench", flor.Options{})
	if err != nil {
		b.Fatal(err)
	}
	sess.SetFilename("train.go")
	for r := 0; r < 50; r++ {
		for it := sess.Loop("epoch", 10); it.Next(); {
			sess.Log("acc", 0.9)
		}
		sess.Commit("")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := sess.SQL("SELECT max(cast_float(value)) AS best FROM logs WHERE value_name = 'acc' AND tstamp > 40")
		if err != nil || len(res.Rows) != 1 {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// C6 — flor.commit durability cost (WAL flush + repo snapshot).
// ---------------------------------------------------------------------------

func benchCommit(b *testing.B, batch int, noSync bool) {
	dir := b.TempDir()
	sess, err := flor.Open(dir, "bench", flor.Options{NoSync: noSync})
	if err != nil {
		b.Fatal(err)
	}
	defer sess.Close()
	sess.SetFilename("app.go")
	sess.StageFile("app.flow", "x = 1\n")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < batch; j++ {
			sess.Log("v", j)
		}
		if err := sess.Commit(""); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkC6Commit1Log(b *testing.B)          { benchCommit(b, 1, false) }
func BenchmarkC6Commit100Logs(b *testing.B)       { benchCommit(b, 100, false) }
func BenchmarkC6Commit100LogsNoSync(b *testing.B) { benchCommit(b, 100, true) }

// ---------------------------------------------------------------------------
// C7 — incremental build: full vs cached vs dirty-subtree rebuild.
// ---------------------------------------------------------------------------

const benchMakefile = `
a: src1
	cmd
b: a
	cmd
c: a
	cmd
d: b c src2
	cmd
e: d
	cmd
`

func benchBuild(b *testing.B, dirty string) {
	mf, err := build.Parse(benchMakefile)
	if err != nil {
		b.Fatal(err)
	}
	var work atomic.Int64 // independent targets (b, c) execute concurrently
	runner := build.NewRunner(mf, func(rule build.Rule) error {
		local := int64(0)
		for i := int64(0); i < 10000; i++ {
			local += i
		}
		work.Add(local)
		return nil
	}, 2)
	if err := runner.Run("e"); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if dirty != "" {
			if err := runner.Touch(dirty); err != nil {
				b.Fatal(err)
			}
		}
		if err := runner.Run("e"); err != nil {
			b.Fatal(err)
		}
	}
	_ = work.Load()
}

func BenchmarkC7BuildAllCached(b *testing.B) { benchBuild(b, "") }
func BenchmarkC7BuildDirtyLeaf(b *testing.B) { benchBuild(b, "src2") }
func BenchmarkC7BuildDirtyRoot(b *testing.B) { benchBuild(b, "src1") }

// ---------------------------------------------------------------------------
// C8/C9/C10 — query planner: index-backed access paths and join pushdown vs
// the pre-planner full-scan executor, over a 100k-row logs table (1000
// versions x 100 value names). The *ScanBaseline variants run the identical
// statement through sqlparse.ExecuteScan — the pre-planner behavior — so the
// speedup is measured in-tree; EXPERIMENTS.md records the ratios.
// ---------------------------------------------------------------------------

const (
	benchQueryTstamps = 1000
	benchQueryNames   = 100 // 100k logs rows total
)

// benchQueryDB builds the planner benchmark database: logs with the default
// indexes from record.CreateTables, plus one ts2vid row per version.
func benchQueryDB(b *testing.B) *relation.Database {
	b.Helper()
	db := relation.NewDatabase()
	tables, err := record.CreateTables(db)
	if err != nil {
		b.Fatal(err)
	}
	for ts := 0; ts < benchQueryTstamps; ts++ {
		for n := 0; n < benchQueryNames; n++ {
			_, err := tables.Logs.Insert(relation.Row{
				relation.Text("bench"), relation.Int(int64(ts)), relation.Text("train.flow"),
				relation.Int(int64(ts*benchQueryNames + n)), relation.Text(fmt.Sprintf("name_%d", n)),
				relation.Text("0.5"), relation.Int(2),
			})
			if err != nil {
				b.Fatal(err)
			}
		}
		_, err := tables.Ts2vid.Insert(relation.Row{
			relation.Text("bench"), relation.Int(int64(ts)), relation.Int(int64(ts)),
			relation.Text(fmt.Sprintf("v%d", ts)), relation.Null(),
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	return db
}

func benchQuery(b *testing.B, query string, wantRows int, naive bool) {
	db := benchQueryDB(b)
	stmt, err := sqlparse.Parse(query)
	if err != nil {
		b.Fatal(err)
	}
	exec := sqlparse.Execute
	if naive {
		exec = sqlparse.ExecuteScan
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := exec(db, stmt)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) != wantRows {
			b.Fatalf("rows = %d, want %d", len(res.Rows), wantRows)
		}
	}
}

const (
	benchPointQuery = "SELECT value FROM logs WHERE projid = 'bench' AND value_name = 'name_42'"
	benchRangeQuery = "SELECT value_name, value FROM logs WHERE tstamp BETWEEN 100 AND 110"
	benchJoinQuery  = `SELECT l.value, v.vid FROM logs l JOIN ts2vid v ON l.tstamp = v.ts_start
		WHERE l.projid = 'bench' AND l.value_name = 'name_7' AND v.projid = 'bench'`
)

func BenchmarkC8PointQuery(b *testing.B) {
	benchQuery(b, benchPointQuery, benchQueryTstamps, false)
}

func BenchmarkC8PointQueryScanBaseline(b *testing.B) {
	benchQuery(b, benchPointQuery, benchQueryTstamps, true)
}

func BenchmarkC9RangeQuery(b *testing.B) {
	benchQuery(b, benchRangeQuery, 11*benchQueryNames, false)
}

func BenchmarkC9RangeQueryScanBaseline(b *testing.B) {
	benchQuery(b, benchRangeQuery, 11*benchQueryNames, true)
}

func BenchmarkC10JoinPushdown(b *testing.B) {
	benchQuery(b, benchJoinQuery, benchQueryTstamps, false)
}

func BenchmarkC10JoinPushdownScanBaseline(b *testing.B) {
	benchQuery(b, benchJoinQuery, benchQueryTstamps, true)
}

// ---------------------------------------------------------------------------
// C14 — vectorized batch execution vs the row-at-a-time reference over full
// scans of a 100k-row metrics table (no secondary indexes, so the planner
// takes the batched scan path). The *RowBaseline variants run the identical
// statement through sqlparse.ExecuteScan — the volcano-style row executor —
// so the speedup is measured in-tree. The acceptance bar for the batch
// engine is >=3x on the scan-aggregate shape; cmd/benchdiff gates CI
// against regressing these (and every other) numbers by >25%.
// ---------------------------------------------------------------------------

const (
	c14Tstamps = 1000
	c14Names   = 100 // 100k rows total
)

// benchC14DB builds an unindexed 100k-row metrics table: the workload shape
// of a hindsight aggregation over logged runs, stored with a real FLOAT
// metric column so aggregate arguments are pass-through columns.
func benchC14DB(b *testing.B) *relation.Database {
	b.Helper()
	db := relation.NewDatabase()
	t, err := db.CreateTable("metrics", relation.MustSchema(
		relation.Column{Name: "projid", Type: relation.TText},
		relation.Column{Name: "tstamp", Type: relation.TInt},
		relation.Column{Name: "name", Type: relation.TText},
		relation.Column{Name: "value", Type: relation.TFloat},
	))
	if err != nil {
		b.Fatal(err)
	}
	rows := make([]relation.Row, 0, c14Tstamps*c14Names)
	for ts := 0; ts < c14Tstamps; ts++ {
		for n := 0; n < c14Names; n++ {
			rows = append(rows, relation.Row{
				relation.Text("bench"), relation.Int(int64(ts)),
				relation.Text(fmt.Sprintf("metric_%d", n)),
				relation.Float(float64((ts*c14Names+n)%1000) / 1000),
			})
		}
	}
	if err := t.LoadRows(rows); err != nil {
		b.Fatal(err)
	}
	return db
}

const (
	c14AggQuery    = "SELECT name, count(*) AS n, avg(value) AS mean FROM metrics WHERE projid = 'bench' GROUP BY name"
	c14FilterQuery = "SELECT name, value FROM metrics WHERE value > 0.99"
)

func benchC14(b *testing.B, query string, wantRows int, naive bool) {
	db := benchC14DB(b)
	stmt, err := sqlparse.Parse(query)
	if err != nil {
		b.Fatal(err)
	}
	exec := sqlparse.Execute
	if naive {
		exec = sqlparse.ExecuteScan
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := exec(db, stmt)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) != wantRows {
			b.Fatalf("rows = %d, want %d", len(res.Rows), wantRows)
		}
	}
}

func BenchmarkC14ScanAggregate(b *testing.B) {
	benchC14(b, c14AggQuery, c14Names, false)
}

func BenchmarkC14ScanAggregateRowBaseline(b *testing.B) {
	benchC14(b, c14AggQuery, c14Names, true)
}

func BenchmarkC14FilterProject(b *testing.B) {
	benchC14(b, c14FilterQuery, 900, false)
}

func BenchmarkC14FilterProjectRowBaseline(b *testing.B) {
	benchC14(b, c14FilterQuery, 900, true)
}

// ---------------------------------------------------------------------------
// C17 — morsel-driven parallel scan + zone-map pruning. BenchmarkC17* run
// under `-cpu=1,2,4,8` in `make bench`: sqlparse.Execute sizes its worker
// pool from GOMAXPROCS, so the suffixed entries in the snapshot measure
// parallel scaling like-for-like (cmd/benchdiff keeps the -N suffix when a
// benchmark appears under several). The selective-scan variant reports how
// many zone pages the scan pruned vs decoded; the acceptance bar is
// decoding <20% of pages on the clustered-predicate shape.
// ---------------------------------------------------------------------------

func BenchmarkC17ParallelScanAggregate(b *testing.B) {
	benchC14(b, c14AggQuery, c14Names, false)
}

func BenchmarkC17ParallelFilterProject(b *testing.B) {
	benchC14(b, c14FilterQuery, 900, false)
}

// benchC17ClusteredDB is benchC14DB with a monotonic tstamp, the clustered
// shape zone maps prune best: consecutive pages hold disjoint tstamp ranges.
func benchC17ClusteredDB(b *testing.B) *relation.Database {
	b.Helper()
	db := relation.NewDatabase()
	t, err := db.CreateTable("metrics", relation.MustSchema(
		relation.Column{Name: "projid", Type: relation.TText},
		relation.Column{Name: "tstamp", Type: relation.TInt},
		relation.Column{Name: "name", Type: relation.TText},
		relation.Column{Name: "value", Type: relation.TFloat},
	))
	if err != nil {
		b.Fatal(err)
	}
	rows := make([]relation.Row, 0, c14Tstamps*c14Names)
	for i := 0; i < c14Tstamps*c14Names; i++ {
		rows = append(rows, relation.Row{
			relation.Text("bench"), relation.Int(int64(i)),
			relation.Text(fmt.Sprintf("metric_%d", i%c14Names)),
			relation.Float(float64(i%1000) / 1000),
		})
	}
	if err := t.LoadRows(rows); err != nil {
		b.Fatal(err)
	}
	return db
}

func BenchmarkC17ZoneMapSelectiveScan(b *testing.B) {
	db := benchC17ClusteredDB(b)
	stmt, err := sqlparse.Parse(
		"SELECT tstamp, value FROM metrics WHERE tstamp BETWEEN 90000 AND 90999")
	if err != nil {
		b.Fatal(err)
	}
	p0, d0 := relation.ScanStats()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := sqlparse.Execute(db, stmt)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) != 1000 {
			b.Fatalf("rows = %d, want 1000", len(res.Rows))
		}
	}
	b.StopTimer()
	p1, d1 := relation.ScanStats()
	pruned, decoded := float64(p1-p0), float64(d1-d0)
	if pruned+decoded > 0 {
		b.ReportMetric(decoded/float64(b.N), "pages-decoded/op")
		b.ReportMetric(decoded/(pruned+decoded), "decoded-frac")
	}
}

// ---------------------------------------------------------------------------
// C11 — session startup: cold O(history) WAL replay vs snapshot-accelerated
// recovery (load newest snapshot + replay the WAL tail) over a 100k-record
// history. The paper's checkpoint/replay design applied to metadata state.
// ---------------------------------------------------------------------------

const (
	benchRecoveryCommits = 100
	benchRecoveryLogsPer = 1000 // 100k log records total
)

// setupRecoveryDir records a 100k-record history (100 commits x 1000 logs)
// into a fresh project directory and closes the session.
func setupRecoveryDir(b *testing.B) string {
	b.Helper()
	dir := b.TempDir()
	sess, err := flor.Open(dir, "bench", flor.Options{NoSync: true})
	if err != nil {
		b.Fatal(err)
	}
	sess.SetFilename("train.go")
	for c := 0; c < benchRecoveryCommits; c++ {
		for i := 0; i < benchRecoveryLogsPer; i++ {
			sess.Log(benchRecoveryNames[i%len(benchRecoveryNames)], float64(i))
		}
		if err := sess.Commit(""); err != nil {
			b.Fatal(err)
		}
	}
	if err := sess.Close(); err != nil {
		b.Fatal(err)
	}
	return dir
}

var benchRecoveryNames = func() []string {
	names := make([]string, 50)
	for i := range names {
		names[i] = fmt.Sprintf("metric_%d", i)
	}
	return names
}()

func benchRecoveryOpen(b *testing.B, dir string) {
	// Warm up (page cache, allocator) and collect the setup's garbage so
	// every timed iteration starts from the same heap state — without this,
	// a single-iteration run (make bench) measures the setup's GC debt
	// instead of recovery.
	warm, err := flor.Open(dir, "bench", flor.Options{NoSync: true})
	if err != nil {
		b.Fatal(err)
	}
	if err := warm.Close(); err != nil {
		b.Fatal(err)
	}
	runtime.GC()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sess, err := flor.Open(dir, "bench", flor.Options{NoSync: true})
		if err != nil {
			b.Fatal(err)
		}
		if n := sess.Tables().Logs.Len(); n != benchRecoveryCommits*benchRecoveryLogsPer {
			b.Fatalf("recovered %d log rows", n)
		}
		if err := sess.Close(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkC11RecoveryCold(b *testing.B) {
	dir := setupRecoveryDir(b)
	benchRecoveryOpen(b, dir)
}

func BenchmarkC11RecoverySnapshot(b *testing.B) {
	dir := setupRecoveryDir(b)
	sess, err := flor.Open(dir, "bench", flor.Options{NoSync: true})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := sess.Compact(); err != nil {
		b.Fatal(err)
	}
	if err := sess.Close(); err != nil {
		b.Fatal(err)
	}
	benchRecoveryOpen(b, dir)
}

// ---------------------------------------------------------------------------
// Ablations (§6 of DESIGN.md).
// ---------------------------------------------------------------------------

// Ablation 1: checkpoint policy — recording cost under different policies.
func benchPolicy(b *testing.B, policy func() replay.CheckpointPolicy) {
	st := heavyHostState()
	f, err := script.Parse("train.flow", hostlib.TrainSrc)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		sess, err := flor.OpenMemory("bench", flor.Options{Policy: policy()})
		if err != nil {
			b.Fatal(err)
		}
		in := script.NewInterp(sessRecorder(sess), nil)
		hostlib.Register(in, st)
		b.StartTimer()
		if err := in.Run(f); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationCheckpointNever(b *testing.B) {
	benchPolicy(b, func() replay.CheckpointPolicy { return replay.Never{} })
}

func BenchmarkAblationCheckpointEvery(b *testing.B) {
	benchPolicy(b, func() replay.CheckpointPolicy { return replay.EveryN{N: 1} })
}

func BenchmarkAblationCheckpointAdaptive(b *testing.B) {
	benchPolicy(b, func() replay.CheckpointPolicy { return &replay.Adaptive{Epsilon: 0.05} })
}

// Ablation 2: replay granularity — coarse (checkpoint restore, skip inner
// loop) vs full re-execution of the same single version.
func BenchmarkAblationReplayCoarse(b *testing.B) {
	sess, _ := setupHindsightBench(b, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		reports, err := sess.Hindsight("train.flow", hostlib.TrainSrcWithNorm, nil)
		if err != nil || reports[0].Err != nil {
			b.Fatalf("%v %v", err, reports[0].Err)
		}
		if reports[0].Mode != "coarse" {
			b.Fatalf("mode = %s", reports[0].Mode)
		}
	}
}

func BenchmarkAblationReplayFull(b *testing.B) {
	// Force full mode by logging from inside the inner loop.
	sess, _ := setupHindsightBench(b, 1)
	withStepLog := hostlib.TrainSrc[:len(hostlib.TrainSrc)-1] + `
`
	// Inject a step-level statement variant: log loss ratio inside steps.
	newSrc := `
hidden_size = flor.arg("hidden", 32)
num_epochs = flor.arg("epochs", 5)
batch_size = flor.arg("batch_size", 16)
learning_rate = flor.arg("lr", 0.05)
seed = flor.arg("seed", 7)

net = make_mlp(hidden_size, seed)
optimizer = make_sgd(net, learning_rate, 0.9)

with flor.checkpointing(model=net, optimizer=optimizer) {
    for epoch in flor.loop("epoch", range(num_epochs)) {
        for data in flor.loop("step", batches(batch_size, epoch)) {
            loss = train_step(net, optimizer, data)
            flor.log("loss", loss)
            scaled = loss * 100
            flor.log("loss_scaled", scaled)
        }
        metrics = eval_model(net)
        flor.log("acc", metrics[0])
        flor.log("recall", metrics[1])
    }
}
`
	_ = withStepLog
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		reports, err := sess.Hindsight("train.flow", newSrc, nil)
		if err != nil || reports[0].Err != nil {
			b.Fatalf("%v %+v", err, reports[0])
		}
		if reports[0].Mode != "full" {
			b.Fatalf("mode = %s", reports[0].Mode)
		}
	}
}

// Ablation 4: pivot strategy — hash pivot vs SQL join per column.
func BenchmarkAblationPivotHash(b *testing.B) {
	benchDataframeScale(b, 50)
}

func BenchmarkAblationPivotSQLJoin(b *testing.B) {
	sess, err := flor.OpenMemory("bench", flor.Options{})
	if err != nil {
		b.Fatal(err)
	}
	sess.SetFilename("train.go")
	for r := 0; r < 50; r++ {
		for it := sess.Loop("epoch", 10); it.Next(); {
			sess.Log("acc", 0.9)
			sess.Log("recall", 0.8)
		}
		sess.Commit("")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// The self-join formulation a user would write without the pivot
		// operator: one logs scan per requested column.
		res, err := sess.SQL(`
			SELECT a.tstamp, a.ctx_id, a.value AS acc, r.value AS recall
			FROM logs a JOIN logs r ON a.ctx_id = r.ctx_id AND a.tstamp = r.tstamp
			WHERE a.value_name = 'acc' AND r.value_name = 'recall'`)
		if err != nil || len(res.Rows) != 500 {
			b.Fatalf("%v rows=%d", err, len(res.Rows))
		}
	}
}

// Ablation 5: WAL batching — per-record flush vs group commit.
func BenchmarkAblationWALPerRecordFlush(b *testing.B) {
	w, err := storage.OpenWAL(b.TempDir()+"/w.wal", storage.Options{NoSync: true})
	if err != nil {
		b.Fatal(err)
	}
	defer w.Close()
	rec := logBenchRecord()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := w.Append(rec); err != nil {
			b.Fatal(err)
		}
		if err := w.Flush(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationWALGroupCommit(b *testing.B) {
	w, err := storage.OpenWAL(b.TempDir()+"/w.wal", storage.Options{NoSync: true})
	if err != nil {
		b.Fatal(err)
	}
	defer w.Close()
	rec := logBenchRecord()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := w.Append(rec); err != nil {
			b.Fatal(err)
		}
		if i%100 == 99 {
			if err := w.Flush(); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func logBenchRecord() any {
	return &struct {
		Kind  string `json:"kind"`
		Name  string `json:"value_name"`
		Value string `json:"value"`
	}{Kind: "log", Name: "loss", Value: "0.123"}
}

// ---------------------------------------------------------------------------
// C12 — concurrent SQL read throughput while a writer logs. Readers pin
// committed-epoch snapshots (Session.Reader) and run an index-backed
// aggregate; one background goroutine logs continuously, never committing.
// MVCC makes the read path lock-free, so ns/op should drop near-linearly as
// goroutines are added (aggregate throughput scales) and the writer's
// presence should not stall any reader.
// ---------------------------------------------------------------------------

const c12ReadQuery = "SELECT count(*) AS n, avg(cast_float(value)) AS m FROM logs WHERE projid = 'bench' AND value_name = 'metric_7'"

func setupConcurrentReadSession(b *testing.B) *flor.Session {
	b.Helper()
	sess, err := flor.OpenMemory("bench", flor.Options{})
	if err != nil {
		b.Fatal(err)
	}
	sess.SetFilename("train.go")
	for i := 0; i < 20000; i++ {
		sess.Log(benchRecoveryNames[i%len(benchRecoveryNames)], float64(i))
	}
	if err := sess.Commit("seed"); err != nil {
		b.Fatal(err)
	}
	return sess
}

func benchConcurrentReads(b *testing.B, readers int) {
	sess := setupConcurrentReadSession(b)
	defer sess.Close()

	stop := make(chan struct{})
	var writer sync.WaitGroup
	writer.Add(1)
	go func() {
		defer writer.Done()
		// Paced like a training loop (~200k records/sec ceiling), not an
		// unthrottled spin: the benchmark measures reader scaling under
		// write load, not readers starved of CPU by a busy-loop.
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			sess.Log("noise", i)
			if i%100 == 99 {
				time.Sleep(500 * time.Microsecond)
			}
		}
	}()

	var next atomic.Int64
	var wg sync.WaitGroup
	b.ResetTimer()
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for next.Add(1) <= int64(b.N) {
				v, err := sess.Reader()
				if err != nil {
					b.Error(err)
					return
				}
				res, err := v.SQL(c12ReadQuery)
				if err != nil {
					b.Error(err)
					return
				}
				if res.Rows[0][0].AsInt() != 400 {
					b.Errorf("unexpected count %v", res.Rows[0])
					return
				}
			}
		}()
	}
	wg.Wait()
	b.StopTimer()
	close(stop)
	writer.Wait()
}

func BenchmarkC12ConcurrentReads1(b *testing.B) { benchConcurrentReads(b, 1) }
func BenchmarkC12ConcurrentReads2(b *testing.B) { benchConcurrentReads(b, 2) }
func BenchmarkC12ConcurrentReads4(b *testing.B) { benchConcurrentReads(b, 4) }
func BenchmarkC12ConcurrentReads8(b *testing.B) { benchConcurrentReads(b, 8) }

// ---------------------------------------------------------------------------
// C13 — group-commit throughput: N goroutines committing concurrently to
// one durable session. Commit appends under the WAL's short lock and rides
// a shared fsync, so commits/sec should grow with committers while the
// fsync count stays ~one per batch. The writers=1 case is the serialized
// baseline.
// ---------------------------------------------------------------------------

func benchGroupCommit(b *testing.B, writers int) {
	dir := b.TempDir()
	sess, err := flor.Open(dir, "bench", flor.Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer sess.Close()
	sess.SetFilename("app.go")

	syncs0 := sess.WALSyncCount()
	var next atomic.Int64
	var wg sync.WaitGroup
	b.ResetTimer()
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for next.Add(1) <= int64(b.N) {
				sess.Log("v", g)
				if err := sess.Commit(""); err != nil {
					b.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	b.StopTimer()
	// The group-commit claim, hardware-independent: fsyncs per commit drops
	// below 1 as concurrent committers coalesce onto shared fsyncs.
	b.ReportMetric(float64(sess.WALSyncCount()-syncs0)/float64(b.N), "fsyncs/commit")
}

func BenchmarkC13GroupCommit1(b *testing.B)  { benchGroupCommit(b, 1) }
func BenchmarkC13GroupCommit4(b *testing.B)  { benchGroupCommit(b, 4) }
func BenchmarkC13GroupCommit16(b *testing.B) { benchGroupCommit(b, 16) }

// ---------------------------------------------------------------------------
// C15 — replica catch-up: a cold follower bootstraps over HTTP segment
// shipping and replays 100k records (100 sealed segments) into its own MVCC
// epochs. Measures the full pipeline: manifest, ranged fetch, CRC verify,
// install, replay, epoch publish.
// ---------------------------------------------------------------------------

func BenchmarkC15ReplicaCatchup(b *testing.B) {
	const (
		commits       = 100
		logsPerCommit = 1000
	)
	dir := b.TempDir()
	// SegmentBytes: 1 seals a segment at every commit, so the whole history
	// is shippable and the follower exercises the segment path (not a
	// snapshot install).
	sess, err := flor.Open(dir, "bench", flor.Options{NoSync: true, SegmentBytes: 1})
	if err != nil {
		b.Fatal(err)
	}
	defer sess.Close()
	sess.SetFilename("app.go")
	for c := 0; c < commits; c++ {
		for i := 0; i < logsPerCommit; i++ {
			sess.Log("metric", i)
		}
		if err := sess.Commit(""); err != nil {
			b.Fatal(err)
		}
	}
	blobs, err := storage.NewBlobStore(filepath.Join(dir, ".flor", "objects"))
	if err != nil {
		b.Fatal(err)
	}
	prim := repl.NewPrimary(sess, blobs)
	srv := httptest.NewServer(prim.Routes())
	defer srv.Close()

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		f, err := repl.StartFollower(ctx, repl.FollowerConfig{
			PrimaryURL: srv.URL,
			Dir:        b.TempDir(),
			ProjID:     "bench",
			PollWait:   10 * time.Millisecond,
		})
		if err != nil {
			b.Fatal(err)
		}
		done := make(chan struct{})
		go func() { f.Run(ctx); close(done) }()
		for f.Applied() < commits {
			if err := f.Fault(); err != nil {
				b.Fatal(err)
			}
			time.Sleep(time.Millisecond)
		}
		cancel()
		<-done
		if err := f.Close(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(commits*logsPerCommit), "records/catchup")
}

// ---------------------------------------------------------------------------
// C16 — time travel: an AS OF aggregate pinned at a mid-history epoch versus
// the same query at the latest epoch. The visibility check is a per-version
// epoch comparison, so historical reads should pay a small constant factor,
// not a replay.
// ---------------------------------------------------------------------------

func benchAsOfSession(b *testing.B) *flor.Session {
	b.Helper()
	sess, err := flor.OpenMemory("bench", flor.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { sess.Close() })
	sess.SetFilename("app.go")
	const commits, logsPerCommit = 10, 1000
	for c := 0; c < commits; c++ {
		for i := 0; i < logsPerCommit; i++ {
			sess.Log("metric", c*logsPerCommit+i)
		}
		if err := sess.Commit(""); err != nil {
			b.Fatal(err)
		}
	}
	return sess
}

func benchAsOfQuery(b *testing.B, q string, wantRows int64) {
	sess := benchAsOfSession(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := sess.SQL(q)
		if err != nil {
			b.Fatal(err)
		}
		if got := res.Rows[0][0].AsInt(); got != wantRows {
			b.Fatalf("count = %d, want %d", got, wantRows)
		}
	}
}

func BenchmarkC16AsOfQuery(b *testing.B) {
	benchAsOfQuery(b, "SELECT count(*) AS n FROM logs WHERE value_name = 'metric' AS OF 5", 5000)
}

func BenchmarkC16AsOfQueryLatestBaseline(b *testing.B) {
	benchAsOfQuery(b, "SELECT count(*) AS n FROM logs WHERE value_name = 'metric'", 10000)
}
