package vcs

import (
	"testing"
	"testing/quick"
	"time"
)

func TestEmptyRepo(t *testing.T) {
	r := NewRepo()
	if r.Head() != "" || r.NumCommits() != 0 {
		t.Fatal("empty repo state wrong")
	}
	if _, err := r.GetCommit("nope"); err == nil {
		t.Fatal("missing commit must error")
	}
}

func TestCommitAndRetrieve(t *testing.T) {
	r := NewRepo()
	v1, err := r.CommitFiles(map[string]string{"train.flow": "v1 content", "infer.flow": "infer"}, "first", time.Unix(1, 0))
	if err != nil {
		t.Fatal(err)
	}
	if r.Head() != v1 {
		t.Fatal("HEAD not advanced")
	}
	got, err := r.FileAt(v1, "train.flow")
	if err != nil || got != "v1 content" {
		t.Fatalf("FileAt: %q %v", got, err)
	}
	if _, err := r.FileAt(v1, "missing.flow"); err == nil {
		t.Fatal("missing file must error")
	}
	files, err := r.FilesAt(v1)
	if err != nil || len(files) != 2 {
		t.Fatalf("FilesAt: %v %v", files, err)
	}
}

func TestCommitChainAndLog(t *testing.T) {
	r := NewRepo()
	v1, _ := r.CommitFiles(map[string]string{"a": "1"}, "c1", time.Unix(1, 0))
	v2, _ := r.CommitFiles(map[string]string{"a": "2"}, "c2", time.Unix(2, 0))
	v3, _ := r.CommitFiles(map[string]string{"a": "2", "b": "x"}, "c3", time.Unix(3, 0))
	log, err := r.Log()
	if err != nil {
		t.Fatal(err)
	}
	if len(log) != 3 {
		t.Fatalf("log = %d", len(log))
	}
	if log[0].ID != v1 || log[1].ID != v2 || log[2].ID != v3 {
		t.Fatal("log order wrong")
	}
	if log[1].Parent != v1 || log[2].Parent != v2 {
		t.Fatal("parent links wrong")
	}
	if log[0].Seq != 0 || log[2].Seq != 2 {
		t.Fatal("seq wrong")
	}
}

func TestIdenticalTreesGetDistinctIDs(t *testing.T) {
	r := NewRepo()
	v1, _ := r.CommitFiles(map[string]string{"a": "same"}, "m", time.Unix(1, 0))
	v2, _ := r.CommitFiles(map[string]string{"a": "same"}, "m", time.Unix(1, 0))
	if v1 == v2 {
		t.Fatal("identical trees must still produce distinct version ids")
	}
}

func TestDiffCommits(t *testing.T) {
	r := NewRepo()
	v1, _ := r.CommitFiles(map[string]string{"a": "1", "b": "1", "c": "1"}, "", time.Unix(1, 0))
	v2, _ := r.CommitFiles(map[string]string{"a": "2", "c": "1", "d": "new"}, "", time.Unix(2, 0))
	changes, err := r.DiffCommits(v1, v2)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]ChangeKind{"a": Modified, "b": Removed, "d": Added}
	if len(changes) != len(want) {
		t.Fatalf("changes: %v", changes)
	}
	for _, ch := range changes {
		if want[ch.Filename] != ch.Kind {
			t.Fatalf("change %s: got %v", ch.Filename, ch.Kind)
		}
	}
	// Diff from the empty tree: everything is Added.
	changes, err = r.DiffCommits("", v1)
	if err != nil {
		t.Fatal(err)
	}
	for _, ch := range changes {
		if ch.Kind != Added {
			t.Fatalf("empty-tree diff: %v", ch)
		}
	}
}

func TestVersionsOfSkipsUnchanged(t *testing.T) {
	r := NewRepo()
	v1, _ := r.CommitFiles(map[string]string{"f": "A"}, "", time.Unix(1, 0))
	r.CommitFiles(map[string]string{"f": "A", "g": "x"}, "", time.Unix(2, 0)) // f unchanged
	v3, _ := r.CommitFiles(map[string]string{"f": "B"}, "", time.Unix(3, 0))
	distinct, err := r.VersionsOf("f")
	if err != nil {
		t.Fatal(err)
	}
	if len(distinct) != 2 || distinct[0] != v1 || distinct[1] != v3 {
		t.Fatalf("distinct versions: %v", distinct)
	}
	all, err := r.AllVersionsOf("f")
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 3 {
		t.Fatalf("all versions: %v", all)
	}
}

func TestBlobDeduplication(t *testing.T) {
	r := NewRepo()
	big := make([]byte, 1024)
	for i := range big {
		big[i] = byte(i)
	}
	r.CommitFiles(map[string]string{"f": string(big)}, "", time.Unix(1, 0))
	before := len(r.objects)
	r.CommitFiles(map[string]string{"f": string(big), "g": "tiny"}, "", time.Unix(2, 0))
	after := len(r.objects)
	// Second commit adds only: one new blob (g) + one commit object.
	if after-before != 2 {
		t.Fatalf("expected blob dedup; objects grew by %d", after-before)
	}
}

func TestGitRowsVirtualTableShape(t *testing.T) {
	r := NewRepo()
	v1, _ := r.CommitFiles(map[string]string{"a": "1", "b": "2"}, "", time.Unix(1, 0))
	v2, _ := r.CommitFiles(map[string]string{"a": "1b"}, "", time.Unix(2, 0))
	rows, err := r.GitRows()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("git rows = %d", len(rows))
	}
	// Rows are (vid, filename, parent_vid, contents) ordered by commit, then name.
	if rows[0][0] != v1 || rows[0][1] != "a" || rows[0][2] != "" || rows[0][3] != "1" {
		t.Fatalf("row0: %v", rows[0])
	}
	if rows[2][0] != v2 || rows[2][2] != v1 || rows[2][3] != "1b" {
		t.Fatalf("row2: %v", rows[2])
	}
}

func TestCommitEmptyFilenameRejected(t *testing.T) {
	r := NewRepo()
	if _, err := r.CommitFiles(map[string]string{"": "x"}, "", time.Unix(1, 0)); err == nil {
		t.Fatal("empty filename must be rejected")
	}
}

func TestDescribe(t *testing.T) {
	r := NewRepo()
	vid, _ := r.CommitFiles(map[string]string{"a": "1"}, "message line\nsecond line", time.Unix(1, 0))
	c, _ := r.GetCommit(vid)
	d := Describe(c)
	if len(d) == 0 || d[:8] != vid[:8] {
		t.Fatalf("describe: %s", d)
	}
	for _, ch := range d {
		if ch == '\n' {
			t.Fatal("describe must be one line")
		}
	}
}

func TestContentRoundTripProperty(t *testing.T) {
	// Property: any committed content is retrieved byte-identical.
	r := NewRepo()
	f := func(content string) bool {
		vid, err := r.CommitFiles(map[string]string{"f": content}, "", time.Unix(1, 0))
		if err != nil {
			return false
		}
		got, err := r.FileAt(vid, "f")
		return err == nil && got == content
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestShort(t *testing.T) {
	if Short("abcdefghijk") != "abcdefgh" {
		t.Fatal("short id")
	}
	if Short("ab") != "ab" {
		t.Fatal("short id under 8")
	}
}
