// Package vcs implements the version-control substrate FlorDB's change
// context rests on: a content-addressed object store with blob, tree, and
// commit objects, a linear ref (HEAD), history walking, per-version file
// retrieval, and diffs between versions.
//
// The paper uses git; FlorDB only needs the subset reproduced here —
// commit-on-flor.commit, version enumeration for ts2vid, the `git` virtual
// table (vid, filename, parent_vid, contents), and content diffs that drive
// cross-version log-statement propagation (§2).
package vcs

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Repo is an in-memory content-addressed repository with one branch.
// It is safe for concurrent use.
type Repo struct {
	mu      sync.RWMutex
	objects map[string][]byte // hash -> payload (blobs and encoded commits)
	head    string            // commit id of HEAD, "" when empty
	commits []string          // commit ids in commit order (oldest first)
}

// Commit is the decoded commit object.
type Commit struct {
	ID      string            `json:"-"`
	Parent  string            `json:"parent"`
	Tree    map[string]string `json:"tree"` // filename -> blob hash
	Message string            `json:"message"`
	Wall    time.Time         `json:"wall"`
	Seq     int               `json:"seq"` // position in first-parent history, 0-based
}

// NewRepo creates an empty repository.
func NewRepo() *Repo {
	return &Repo{objects: make(map[string][]byte)}
}

func hashOf(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// putObject stores a payload, returning its content address.
func (r *Repo) putObject(data []byte) string {
	h := hashOf(data)
	if _, ok := r.objects[h]; !ok {
		r.objects[h] = append([]byte(nil), data...)
	}
	return h
}

// CommitFiles snapshots the given workspace (filename -> contents) as a new
// commit on HEAD and returns its version id. An empty message is allowed.
// Committing an identical tree to HEAD still creates a commit (each
// flor.commit produces a distinct version), but blob storage is shared.
func (r *Repo) CommitFiles(files map[string]string, message string, wall time.Time) (string, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	tree := make(map[string]string, len(files))
	for name, contents := range files {
		if name == "" {
			return "", fmt.Errorf("vcs: empty filename")
		}
		tree[name] = r.putObject([]byte(contents))
	}
	c := Commit{Parent: r.head, Tree: tree, Message: message, Wall: wall.UTC(), Seq: len(r.commits)}
	payload, err := json.Marshal(c)
	if err != nil {
		return "", fmt.Errorf("vcs: encode commit: %w", err)
	}
	// Salt the commit hash with its sequence number so identical trees
	// committed twice get distinct ids.
	id := hashOf(append(payload, []byte(fmt.Sprintf("#%d", c.Seq))...))
	r.objects[id] = payload
	r.head = id
	r.commits = append(r.commits, id)
	return id, nil
}

// Head returns the current HEAD commit id, or "" when the repo is empty.
func (r *Repo) Head() string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.head
}

// NumCommits returns the number of commits.
func (r *Repo) NumCommits() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.commits)
}

// GetCommit decodes the commit with the given id.
func (r *Repo) GetCommit(id string) (*Commit, error) {
	r.mu.RLock()
	payload, ok := r.objects[id]
	r.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("vcs: no commit %s", short(id))
	}
	var c Commit
	if err := json.Unmarshal(payload, &c); err != nil {
		return nil, fmt.Errorf("vcs: decode commit %s: %w", short(id), err)
	}
	c.ID = id
	return &c, nil
}

// Log returns the commit history, oldest first.
func (r *Repo) Log() ([]*Commit, error) {
	r.mu.RLock()
	ids := append([]string(nil), r.commits...)
	r.mu.RUnlock()
	out := make([]*Commit, len(ids))
	for i, id := range ids {
		c, err := r.GetCommit(id)
		if err != nil {
			return nil, err
		}
		out[i] = c
	}
	return out, nil
}

// FileAt returns the contents of a file at the given version.
func (r *Repo) FileAt(vid, filename string) (string, error) {
	c, err := r.GetCommit(vid)
	if err != nil {
		return "", err
	}
	blobID, ok := c.Tree[filename]
	if !ok {
		return "", fmt.Errorf("vcs: %s not present in %s", filename, short(vid))
	}
	r.mu.RLock()
	payload, ok := r.objects[blobID]
	r.mu.RUnlock()
	if !ok {
		return "", fmt.Errorf("vcs: dangling blob %s", short(blobID))
	}
	return string(payload), nil
}

// FilesAt returns the full workspace at the given version.
func (r *Repo) FilesAt(vid string) (map[string]string, error) {
	c, err := r.GetCommit(vid)
	if err != nil {
		return nil, err
	}
	out := make(map[string]string, len(c.Tree))
	for name, blobID := range c.Tree {
		r.mu.RLock()
		payload, ok := r.objects[blobID]
		r.mu.RUnlock()
		if !ok {
			return nil, fmt.Errorf("vcs: dangling blob %s for %s", short(blobID), name)
		}
		out[name] = string(payload)
	}
	return out, nil
}

// ChangeKind classifies a file change between two versions.
type ChangeKind int

// Change kinds.
const (
	Added ChangeKind = iota
	Removed
	Modified
)

// String renders the change kind.
func (k ChangeKind) String() string {
	switch k {
	case Added:
		return "added"
	case Removed:
		return "removed"
	case Modified:
		return "modified"
	default:
		return "?"
	}
}

// Change is one file-level difference between two commits.
type Change struct {
	Filename string
	Kind     ChangeKind
}

// DiffCommits lists file-level changes from commit a to commit b, sorted by
// filename. Passing "" for a means "the empty tree".
func (r *Repo) DiffCommits(a, b string) ([]Change, error) {
	var at map[string]string
	if a == "" {
		at = map[string]string{}
	} else {
		ca, err := r.GetCommit(a)
		if err != nil {
			return nil, err
		}
		at = ca.Tree
	}
	cb, err := r.GetCommit(b)
	if err != nil {
		return nil, err
	}
	var out []Change
	for name, hb := range cb.Tree {
		ha, ok := at[name]
		switch {
		case !ok:
			out = append(out, Change{Filename: name, Kind: Added})
		case ha != hb:
			out = append(out, Change{Filename: name, Kind: Modified})
		}
	}
	for name := range at {
		if _, ok := cb.Tree[name]; !ok {
			out = append(out, Change{Filename: name, Kind: Removed})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Filename < out[j].Filename })
	return out, nil
}

// VersionsOf returns the ids of all commits containing the file, oldest
// first, skipping commits where the file's content is identical to the
// previous returned version (i.e. it lists distinct content versions).
func (r *Repo) VersionsOf(filename string) ([]string, error) {
	log, err := r.Log()
	if err != nil {
		return nil, err
	}
	var out []string
	prevBlob := ""
	for _, c := range log {
		blob, ok := c.Tree[filename]
		if !ok {
			continue
		}
		if blob == prevBlob {
			continue
		}
		out = append(out, c.ID)
		prevBlob = blob
	}
	return out, nil
}

// AllVersionsOf returns every commit id containing the file, oldest first,
// including commits where the content did not change.
func (r *Repo) AllVersionsOf(filename string) ([]string, error) {
	log, err := r.Log()
	if err != nil {
		return nil, err
	}
	var out []string
	for _, c := range log {
		if _, ok := c.Tree[filename]; ok {
			out = append(out, c.ID)
		}
	}
	return out, nil
}

func short(id string) string {
	if len(id) > 8 {
		return id[:8]
	}
	return id
}

// Short abbreviates a version id for display.
func Short(id string) string { return short(id) }

// GitRows produces the rows of the virtual `git` table of Figure 1:
// (vid, filename, parent_vid, contents) for every file at every version.
func (r *Repo) GitRows() ([][4]string, error) {
	log, err := r.Log()
	if err != nil {
		return nil, err
	}
	var out [][4]string
	for _, c := range log {
		names := make([]string, 0, len(c.Tree))
		for name := range c.Tree {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			contents, err := r.FileAt(c.ID, name)
			if err != nil {
				return nil, err
			}
			out = append(out, [4]string{c.ID, name, c.Parent, contents})
		}
	}
	return out, nil
}

// Describe renders a one-line summary of a commit for CLI display.
func Describe(c *Commit) string {
	msg := c.Message
	if i := strings.IndexByte(msg, '\n'); i >= 0 {
		msg = msg[:i]
	}
	return fmt.Sprintf("%s  #%d  %s  %s", short(c.ID), c.Seq, c.Wall.Format(time.RFC3339), msg)
}
