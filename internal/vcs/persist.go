package vcs

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// repoState is the on-disk serialization of a repository.
type repoState struct {
	Objects map[string][]byte `json:"objects"`
	Head    string            `json:"head"`
	Commits []string          `json:"commits"`
}

// Save writes the repository to path atomically (write temp + rename).
func (r *Repo) Save(path string) error {
	r.mu.RLock()
	state := repoState{Objects: r.objects, Head: r.head, Commits: r.commits}
	data, err := json.Marshal(state)
	r.mu.RUnlock()
	if err != nil {
		return fmt.Errorf("vcs: save: %w", err)
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("vcs: save: %w", err)
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("vcs: save: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("vcs: save: %w", err)
	}
	return nil
}

// Load reads a repository from path. A missing file yields an empty repo.
func Load(path string) (*Repo, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return NewRepo(), nil
	}
	if err != nil {
		return nil, fmt.Errorf("vcs: load: %w", err)
	}
	var state repoState
	if err := json.Unmarshal(data, &state); err != nil {
		return nil, fmt.Errorf("vcs: load: %w", err)
	}
	r := NewRepo()
	if state.Objects != nil {
		r.objects = state.Objects
	}
	r.head = state.Head
	r.commits = state.Commits
	return r, nil
}
