package mlsim

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"
)

// MLP is a feed-forward classifier: input -> hidden (ReLU) -> output
// (softmax). It implements script.Snapshotter so it can be checkpointed by
// flor.checkpointing.
type MLP struct {
	In, Hidden, Out int
	// W1 [Hidden][In], B1 [Hidden], W2 [Out][Hidden], B2 [Out], flattened
	// row-major.
	W1, B1, W2, B2 []float64
}

// NewMLP initializes a network with He-scaled random weights.
func NewMLP(in, hidden, out int, rng *RNG) *MLP {
	m := &MLP{
		In: in, Hidden: hidden, Out: out,
		W1: make([]float64, hidden*in),
		B1: make([]float64, hidden),
		W2: make([]float64, out*hidden),
		B2: make([]float64, out),
	}
	s1 := math.Sqrt(2.0 / float64(in))
	for i := range m.W1 {
		m.W1[i] = rng.NormFloat64() * s1
	}
	s2 := math.Sqrt(2.0 / float64(hidden))
	for i := range m.W2 {
		m.W2[i] = rng.NormFloat64() * s2
	}
	return m
}

// Forward computes hidden activations and output logits for one input.
// The hidden slice is returned so backprop can reuse it.
func (m *MLP) Forward(x []float64) (hidden, logits []float64) {
	hidden = make([]float64, m.Hidden)
	for h := 0; h < m.Hidden; h++ {
		sum := m.B1[h]
		row := m.W1[h*m.In : (h+1)*m.In]
		for i, xi := range x {
			sum += row[i] * xi
		}
		if sum > 0 {
			hidden[h] = sum
		}
	}
	logits = make([]float64, m.Out)
	for o := 0; o < m.Out; o++ {
		sum := m.B2[o]
		row := m.W2[o*m.Hidden : (o+1)*m.Hidden]
		for h, hv := range hidden {
			sum += row[h] * hv
		}
		logits[o] = sum
	}
	return hidden, logits
}

// Predict returns the argmax class for one input.
func (m *MLP) Predict(x []float64) int {
	_, logits := m.Forward(x)
	return argmax(logits)
}

func argmax(v []float64) int {
	best := 0
	for i := 1; i < len(v); i++ {
		if v[i] > v[best] {
			best = i
		}
	}
	return best
}

// Softmax converts logits into probabilities (numerically stabilized).
func Softmax(logits []float64) []float64 {
	maxv := logits[0]
	for _, v := range logits[1:] {
		if v > maxv {
			maxv = v
		}
	}
	out := make([]float64, len(logits))
	var sum float64
	for i, v := range logits {
		e := math.Exp(v - maxv)
		out[i] = e
		sum += e
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}

// WeightNorm returns the L2 norm of all parameters — a cheap scalar
// fingerprint of model state, handy for hindsight logging demos.
func (m *MLP) WeightNorm() float64 {
	var sum float64
	for _, w := range m.W1 {
		sum += w * w
	}
	for _, w := range m.B1 {
		sum += w * w
	}
	for _, w := range m.W2 {
		sum += w * w
	}
	for _, w := range m.B2 {
		sum += w * w
	}
	return math.Sqrt(sum)
}

// Snapshot implements script.Snapshotter with a compact binary encoding.
func (m *MLP) Snapshot() ([]byte, error) {
	var buf bytes.Buffer
	dims := []int64{int64(m.In), int64(m.Hidden), int64(m.Out)}
	for _, d := range dims {
		if err := binary.Write(&buf, binary.LittleEndian, d); err != nil {
			return nil, err
		}
	}
	for _, arr := range [][]float64{m.W1, m.B1, m.W2, m.B2} {
		if err := binary.Write(&buf, binary.LittleEndian, arr); err != nil {
			return nil, err
		}
	}
	return buf.Bytes(), nil
}

// Restore implements script.Snapshotter.
func (m *MLP) Restore(data []byte) error {
	buf := bytes.NewReader(data)
	var in, hidden, out int64
	for _, p := range []*int64{&in, &hidden, &out} {
		if err := binary.Read(buf, binary.LittleEndian, p); err != nil {
			return fmt.Errorf("mlsim: restore dims: %w", err)
		}
	}
	if int(in) != m.In || int(hidden) != m.Hidden || int(out) != m.Out {
		return fmt.Errorf("mlsim: checkpoint shape (%d,%d,%d) != model shape (%d,%d,%d)",
			in, hidden, out, m.In, m.Hidden, m.Out)
	}
	for _, arr := range [][]float64{m.W1, m.B1, m.W2, m.B2} {
		if err := binary.Read(buf, binary.LittleEndian, arr); err != nil {
			return fmt.Errorf("mlsim: restore weights: %w", err)
		}
	}
	return nil
}

// SGD is a stochastic-gradient-descent optimizer with momentum; it is also a
// Snapshotter (its velocity buffers are training state, exactly like
// PyTorch's optimizer state dict in Figure 5).
type SGD struct {
	LR       float64
	Momentum float64
	vW1, vB1 []float64
	vW2, vB2 []float64
}

// NewSGD builds an optimizer for a model.
func NewSGD(m *MLP, lr, momentum float64) *SGD {
	return &SGD{
		LR: lr, Momentum: momentum,
		vW1: make([]float64, len(m.W1)),
		vB1: make([]float64, len(m.B1)),
		vW2: make([]float64, len(m.W2)),
		vB2: make([]float64, len(m.B2)),
	}
}

// Step performs one minibatch update and returns the mean cross-entropy
// loss over the batch.
func (opt *SGD) Step(m *MLP, xs [][]float64, ys []int) float64 {
	if len(xs) == 0 {
		return 0
	}
	gW1 := make([]float64, len(m.W1))
	gB1 := make([]float64, len(m.B1))
	gW2 := make([]float64, len(m.W2))
	gB2 := make([]float64, len(m.B2))
	var totalLoss float64
	for bi, x := range xs {
		y := ys[bi]
		hidden, logits := m.Forward(x)
		probs := Softmax(logits)
		totalLoss += -math.Log(math.Max(probs[y], 1e-12))
		// dL/dlogit = probs - onehot(y)
		dlogits := make([]float64, m.Out)
		copy(dlogits, probs)
		dlogits[y] -= 1
		// Output layer gradients.
		for o := 0; o < m.Out; o++ {
			gB2[o] += dlogits[o]
			row := gW2[o*m.Hidden : (o+1)*m.Hidden]
			for h, hv := range hidden {
				row[h] += dlogits[o] * hv
			}
		}
		// Hidden layer gradients through ReLU.
		dhidden := make([]float64, m.Hidden)
		for h := 0; h < m.Hidden; h++ {
			if hidden[h] <= 0 {
				continue
			}
			var sum float64
			for o := 0; o < m.Out; o++ {
				sum += dlogits[o] * m.W2[o*m.Hidden+h]
			}
			dhidden[h] = sum
		}
		for h := 0; h < m.Hidden; h++ {
			if dhidden[h] == 0 {
				continue
			}
			gB1[h] += dhidden[h]
			row := gW1[h*m.In : (h+1)*m.In]
			for i, xi := range x {
				row[i] += dhidden[h] * xi
			}
		}
	}
	scale := 1.0 / float64(len(xs))
	opt.apply(m.W1, gW1, opt.vW1, scale)
	opt.apply(m.B1, gB1, opt.vB1, scale)
	opt.apply(m.W2, gW2, opt.vW2, scale)
	opt.apply(m.B2, gB2, opt.vB2, scale)
	return totalLoss * scale
}

func (opt *SGD) apply(w, g, v []float64, scale float64) {
	for i := range w {
		v[i] = opt.Momentum*v[i] - opt.LR*g[i]*scale
		w[i] += v[i]
	}
}

// Snapshot implements script.Snapshotter.
func (opt *SGD) Snapshot() ([]byte, error) {
	var buf bytes.Buffer
	if err := binary.Write(&buf, binary.LittleEndian, opt.LR); err != nil {
		return nil, err
	}
	if err := binary.Write(&buf, binary.LittleEndian, opt.Momentum); err != nil {
		return nil, err
	}
	for _, arr := range [][]float64{opt.vW1, opt.vB1, opt.vW2, opt.vB2} {
		if err := binary.Write(&buf, binary.LittleEndian, int64(len(arr))); err != nil {
			return nil, err
		}
		if err := binary.Write(&buf, binary.LittleEndian, arr); err != nil {
			return nil, err
		}
	}
	return buf.Bytes(), nil
}

// Restore implements script.Snapshotter.
func (opt *SGD) Restore(data []byte) error {
	buf := bytes.NewReader(data)
	if err := binary.Read(buf, binary.LittleEndian, &opt.LR); err != nil {
		return fmt.Errorf("mlsim: restore sgd: %w", err)
	}
	if err := binary.Read(buf, binary.LittleEndian, &opt.Momentum); err != nil {
		return fmt.Errorf("mlsim: restore sgd: %w", err)
	}
	for _, arr := range []*[]float64{&opt.vW1, &opt.vB1, &opt.vW2, &opt.vB2} {
		var n int64
		if err := binary.Read(buf, binary.LittleEndian, &n); err != nil {
			return fmt.Errorf("mlsim: restore sgd: %w", err)
		}
		*arr = make([]float64, n)
		if err := binary.Read(buf, binary.LittleEndian, *arr); err != nil {
			return fmt.Errorf("mlsim: restore sgd: %w", err)
		}
	}
	return nil
}
