// Package mlsim is the machine-learning substrate for the reproduction: a
// pure-Go feed-forward network (dense layers, ReLU, softmax cross-entropy,
// SGD with momentum), deterministic PRNG, train/test metrics (accuracy,
// macro recall), and Snapshotter implementations so models and optimizers
// participate in flor.checkpointing.
//
// The paper trains a PyTorch classifier on images of PDF pages (Figure 5);
// this package preserves the properties that matter for FlorDB — a stateful
// model evolving across epochs, checkpointable and restorable bit-exactly,
// with per-epoch metrics worth logging.
package mlsim

import "math"

// RNG is a deterministic splitmix64 PRNG. Determinism matters twice over:
// replay must reproduce recorded runs, and tests must be stable.
type RNG struct {
	state uint64
}

// NewRNG seeds a generator.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Uint64 returns the next raw value.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// NormFloat64 returns a standard normal value (Marsaglia polar method).
func (r *RNG) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		return u * math.Sqrt(-2*math.Log(s)/s)
	}
}

// Intn returns a uniform value in [0, n).
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("mlsim: Intn on non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}
