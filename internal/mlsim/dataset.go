package mlsim

import "fmt"

// Dataset is a labeled feature matrix.
type Dataset struct {
	X       [][]float64
	Y       []int
	Classes int
}

// Len returns the number of examples.
func (d *Dataset) Len() int { return len(d.X) }

// Split partitions into train/test by fraction with a deterministic shuffle.
func (d *Dataset) Split(testFrac float64, rng *RNG) (train, test *Dataset) {
	perm := rng.Perm(d.Len())
	nTest := int(float64(d.Len()) * testFrac)
	test = &Dataset{Classes: d.Classes}
	train = &Dataset{Classes: d.Classes}
	for i, idx := range perm {
		if i < nTest {
			test.X = append(test.X, d.X[idx])
			test.Y = append(test.Y, d.Y[idx])
		} else {
			train.X = append(train.X, d.X[idx])
			train.Y = append(train.Y, d.Y[idx])
		}
	}
	return train, test
}

// Batches partitions the dataset into minibatches of at most size examples,
// in order (shuffle beforehand if desired).
func (d *Dataset) Batches(size int) []Batch {
	if size < 1 {
		size = 1
	}
	var out []Batch
	for start := 0; start < d.Len(); start += size {
		end := start + size
		if end > d.Len() {
			end = d.Len()
		}
		out = append(out, Batch{X: d.X[start:end], Y: d.Y[start:end]})
	}
	return out
}

// Shuffled returns a deterministically shuffled copy.
func (d *Dataset) Shuffled(rng *RNG) *Dataset {
	perm := rng.Perm(d.Len())
	out := &Dataset{Classes: d.Classes, X: make([][]float64, d.Len()), Y: make([]int, d.Len())}
	for i, idx := range perm {
		out.X[i] = d.X[idx]
		out.Y[i] = d.Y[idx]
	}
	return out
}

// Batch is one minibatch.
type Batch struct {
	X [][]float64
	Y []int
}

// SyntheticBlobs generates a Gaussian-blob classification problem: classes
// centered on distinct prototypes with additive noise — the stand-in for the
// paper's page-image classification task. Lower noise = easier task.
func SyntheticBlobs(n, dim, classes int, noise float64, rng *RNG) *Dataset {
	if classes < 2 || dim < 1 || n < classes {
		panic(fmt.Sprintf("mlsim: bad blob parameters n=%d dim=%d classes=%d", n, dim, classes))
	}
	centers := make([][]float64, classes)
	for c := range centers {
		centers[c] = make([]float64, dim)
		for j := range centers[c] {
			centers[c][j] = rng.NormFloat64() * 2
		}
	}
	d := &Dataset{Classes: classes}
	for i := 0; i < n; i++ {
		c := i % classes
		x := make([]float64, dim)
		for j := range x {
			x[j] = centers[c][j] + rng.NormFloat64()*noise
		}
		d.X = append(d.X, x)
		d.Y = append(d.Y, c)
	}
	return d
}

// Metrics bundles evaluation results.
type Metrics struct {
	Accuracy    float64
	MacroRecall float64
	Confusion   [][]int
}

// Evaluate computes accuracy and macro-averaged recall (the paper logs
// "acc" and "recall" per epoch in Figure 5).
func Evaluate(m *MLP, d *Dataset) Metrics {
	conf := make([][]int, d.Classes)
	for i := range conf {
		conf[i] = make([]int, d.Classes)
	}
	correct := 0
	for i, x := range d.X {
		pred := m.Predict(x)
		conf[d.Y[i]][pred]++
		if pred == d.Y[i] {
			correct++
		}
	}
	var recallSum float64
	counted := 0
	for c := 0; c < d.Classes; c++ {
		var total int
		for _, v := range conf[c] {
			total += v
		}
		if total == 0 {
			continue
		}
		recallSum += float64(conf[c][c]) / float64(total)
		counted++
	}
	metrics := Metrics{Confusion: conf}
	if d.Len() > 0 {
		metrics.Accuracy = float64(correct) / float64(d.Len())
	}
	if counted > 0 {
		metrics.MacroRecall = recallSum / float64(counted)
	}
	return metrics
}
