package mlsim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must give same stream")
		}
	}
	c := NewRNG(43)
	same := true
	a2 := NewRNG(42)
	for i := 0; i < 10; i++ {
		if a2.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds should diverge")
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 1000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestRNGPermIsPermutation(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		p := r.Perm(20)
		seen := make([]bool, 20)
		for _, v := range p {
			if v < 0 || v >= 20 || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := NewRNG(1)
	const n = 20000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.05 {
		t.Fatalf("mean = %v", mean)
	}
	if math.Abs(variance-1) > 0.1 {
		t.Fatalf("variance = %v", variance)
	}
}

func TestSoftmaxProperties(t *testing.T) {
	p := Softmax([]float64{1, 2, 3})
	var sum float64
	for _, v := range p {
		if v <= 0 || v >= 1 {
			t.Fatalf("prob out of range: %v", p)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("probs sum to %v", sum)
	}
	if !(p[2] > p[1] && p[1] > p[0]) {
		t.Fatalf("monotonicity: %v", p)
	}
	// Large logits must not overflow.
	p = Softmax([]float64{1000, 1001})
	if math.IsNaN(p[0]) || math.IsInf(p[1], 0) {
		t.Fatalf("overflow: %v", p)
	}
}

func TestMLPForwardShapes(t *testing.T) {
	m := NewMLP(4, 8, 3, NewRNG(1))
	hidden, logits := m.Forward([]float64{1, 2, 3, 4})
	if len(hidden) != 8 || len(logits) != 3 {
		t.Fatalf("shapes: %d %d", len(hidden), len(logits))
	}
	for _, h := range hidden {
		if h < 0 {
			t.Fatal("ReLU output negative")
		}
	}
}

func TestMLPSnapshotRestoreRoundTrip(t *testing.T) {
	m := NewMLP(4, 8, 3, NewRNG(1))
	x := []float64{0.5, -0.1, 0.3, 0.9}
	_, before := m.Forward(x)
	blob, err := m.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	// Perturb and restore.
	m.W1[0] = 999
	m.B2[1] = -999
	if err := m.Restore(blob); err != nil {
		t.Fatal(err)
	}
	_, after := m.Forward(x)
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("restore not bit-exact: %v vs %v", before, after)
		}
	}
}

func TestMLPRestoreShapeMismatch(t *testing.T) {
	m := NewMLP(4, 8, 3, NewRNG(1))
	blob, _ := m.Snapshot()
	other := NewMLP(4, 16, 3, NewRNG(1))
	if err := other.Restore(blob); err == nil {
		t.Fatal("shape mismatch must error")
	}
	if err := m.Restore([]byte{1, 2}); err == nil {
		t.Fatal("truncated blob must error")
	}
}

func TestSGDSnapshotRestore(t *testing.T) {
	m := NewMLP(4, 8, 3, NewRNG(1))
	opt := NewSGD(m, 0.1, 0.9)
	d := SyntheticBlobs(30, 4, 3, 0.3, NewRNG(2))
	opt.Step(m, d.X[:10], d.Y[:10])
	blob, err := opt.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	v0 := opt.vW1[0]
	opt.vW1[0] = 123
	if err := opt.Restore(blob); err != nil {
		t.Fatal(err)
	}
	if opt.vW1[0] != v0 {
		t.Fatal("velocity not restored")
	}
}

func TestTrainingLearnsBlobs(t *testing.T) {
	rng := NewRNG(7)
	data := SyntheticBlobs(300, 8, 3, 0.4, rng)
	train, test := data.Split(0.3, rng)
	m := NewMLP(8, 16, 3, rng)
	opt := NewSGD(m, 0.05, 0.9)
	before := Evaluate(m, test).Accuracy
	var lastLoss float64
	for epoch := 0; epoch < 8; epoch++ {
		shuffled := train.Shuffled(rng)
		for _, b := range shuffled.Batches(16) {
			lastLoss = opt.Step(m, b.X, b.Y)
		}
	}
	after := Evaluate(m, test)
	if after.Accuracy < 0.9 {
		t.Fatalf("accuracy after training = %v (before %v, loss %v)", after.Accuracy, before, lastLoss)
	}
	if after.MacroRecall < 0.85 {
		t.Fatalf("recall = %v", after.MacroRecall)
	}
}

func TestTrainingDeterministicGivenSeed(t *testing.T) {
	run := func() float64 {
		rng := NewRNG(99)
		data := SyntheticBlobs(200, 6, 2, 0.5, rng)
		train, test := data.Split(0.25, rng)
		m := NewMLP(6, 12, 2, rng)
		opt := NewSGD(m, 0.05, 0.9)
		for epoch := 0; epoch < 4; epoch++ {
			for _, b := range train.Batches(16) {
				opt.Step(m, b.X, b.Y)
			}
		}
		return Evaluate(m, test).Accuracy
	}
	if run() != run() {
		t.Fatal("training must be deterministic for fixed seed")
	}
}

func TestCheckpointResumeEquivalence(t *testing.T) {
	// Core replay premise: training 2 epochs straight == training 1 epoch,
	// checkpointing (model+optimizer), restoring, then 1 more epoch.
	build := func() (*MLP, *SGD, *Dataset) {
		rng := NewRNG(5)
		data := SyntheticBlobs(120, 6, 2, 0.5, rng)
		m := NewMLP(6, 10, 2, rng)
		return m, NewSGD(m, 0.05, 0.9), data
	}
	epoch := func(m *MLP, opt *SGD, d *Dataset) {
		for _, b := range d.Batches(20) {
			opt.Step(m, b.X, b.Y)
		}
	}

	m1, o1, d1 := build()
	epoch(m1, o1, d1)
	epoch(m1, o1, d1)

	m2, o2, d2 := build()
	epoch(m2, o2, d2)
	mBlob, _ := m2.Snapshot()
	oBlob, _ := o2.Snapshot()
	// Wreck state, then restore.
	for i := range m2.W1 {
		m2.W1[i] = 0
	}
	for i := range o2.vW1 {
		o2.vW1[i] = 42
	}
	if err := m2.Restore(mBlob); err != nil {
		t.Fatal(err)
	}
	if err := o2.Restore(oBlob); err != nil {
		t.Fatal(err)
	}
	epoch(m2, o2, d2)

	for i := range m1.W1 {
		if m1.W1[i] != m2.W1[i] {
			t.Fatalf("resume-from-checkpoint diverged at W1[%d]: %v vs %v", i, m1.W1[i], m2.W1[i])
		}
	}
}

func TestDatasetSplitAndBatches(t *testing.T) {
	d := SyntheticBlobs(100, 4, 2, 0.5, NewRNG(3))
	train, test := d.Split(0.2, NewRNG(4))
	if train.Len() != 80 || test.Len() != 20 {
		t.Fatalf("split: %d/%d", train.Len(), test.Len())
	}
	batches := train.Batches(32)
	if len(batches) != 3 {
		t.Fatalf("batches = %d", len(batches))
	}
	if len(batches[2].X) != 16 {
		t.Fatalf("last batch = %d", len(batches[2].X))
	}
	total := 0
	for _, b := range batches {
		total += len(b.X)
	}
	if total != 80 {
		t.Fatalf("batch union = %d", total)
	}
}

func TestEvaluateConfusionMatrix(t *testing.T) {
	d := SyntheticBlobs(60, 4, 3, 0.1, NewRNG(6))
	m := NewMLP(4, 12, 3, NewRNG(7))
	opt := NewSGD(m, 0.1, 0.9)
	for i := 0; i < 20; i++ {
		for _, b := range d.Batches(20) {
			opt.Step(m, b.X, b.Y)
		}
	}
	met := Evaluate(m, d)
	var total int
	for _, row := range met.Confusion {
		for _, v := range row {
			total += v
		}
	}
	if total != d.Len() {
		t.Fatalf("confusion total = %d", total)
	}
	if met.Accuracy < 0.95 {
		t.Fatalf("easy task accuracy = %v", met.Accuracy)
	}
}

func TestWeightNormPositive(t *testing.T) {
	m := NewMLP(4, 8, 3, NewRNG(1))
	if m.WeightNorm() <= 0 {
		t.Fatal("weight norm must be positive")
	}
}

func TestEvaluateEmptyDataset(t *testing.T) {
	m := NewMLP(4, 8, 2, NewRNG(1))
	met := Evaluate(m, &Dataset{Classes: 2})
	if met.Accuracy != 0 || met.MacroRecall != 0 {
		t.Fatalf("empty metrics: %+v", met)
	}
}
