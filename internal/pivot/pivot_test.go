package pivot

import (
	"fmt"
	"strconv"
	"strings"
	"testing"

	"flordb/internal/record"
	"flordb/internal/relation"
)

// fixture builds tables resembling the Figure 3/5 workloads:
//   - featurize.flow logs text_src/page_text per (document, page) at ts=1
//   - train.flow logs acc/recall per epoch at ts=1 and ts=2
func fixture(t *testing.T) *record.Tables {
	t.Helper()
	db := relation.NewDatabase()
	tables, err := record.CreateTables(db)
	if err != nil {
		t.Fatal(err)
	}
	ctx := int64(0)
	loop := func(ts int64, file, name string, iter int64, val string, parent int64) int64 {
		ctx++
		if err := tables.Apply(&record.LoopRecord{
			Kind: record.KindLoop, ProjID: "pdf", Tstamp: ts, Filename: file,
			CtxID: ctx, ParentCtxID: parent, LoopName: name, LoopIter: iter, IterValue: val,
		}); err != nil {
			t.Fatal(err)
		}
		return ctx
	}
	logv := func(ts int64, file string, ctxID int64, name, val string, vt record.ValueType) {
		if err := tables.Apply(&record.LogRecord{
			Kind: record.KindLog, ProjID: "pdf", Tstamp: ts, Filename: file,
			CtxID: ctxID, ValueName: name, Value: val, ValueType: vt,
		}); err != nil {
			t.Fatal(err)
		}
	}

	// Featurization: 2 documents x 2 pages.
	for d := int64(0); d < 2; d++ {
		doc := fmt.Sprintf("doc%d.pdf", d)
		docCtx := loop(1, "featurize.flow", "document", d, doc, 0)
		for p := int64(0); p < 2; p++ {
			pageCtx := loop(1, "featurize.flow", "page", p, strconv.FormatInt(p, 10), docCtx)
			src := "TXT"
			if (d+p)%2 == 1 {
				src = "OCR"
			}
			logv(1, "featurize.flow", pageCtx, "text_src", src, record.VTText)
			logv(1, "featurize.flow", pageCtx, "page_text", fmt.Sprintf("lorem-%s-%d", doc, p), record.VTText)
		}
	}
	// Training: 2 versions x 2 epochs.
	for ts := int64(1); ts <= 2; ts++ {
		for e := int64(0); e < 2; e++ {
			ec := loop(ts, "train.flow", "epoch", e, strconv.FormatInt(e, 10), 0)
			acc := 0.8 + 0.05*float64(e) + 0.02*float64(ts)
			logv(ts, "train.flow", ec, "acc", strconv.FormatFloat(acc, 'g', -1, 64), record.VTFloat)
			logv(ts, "train.flow", ec, "recall", strconv.FormatFloat(acc-0.1, 'g', -1, 64), record.VTFloat)
		}
	}
	return tables
}

func TestPivotFigure3Shape(t *testing.T) {
	tables := fixture(t)
	df, err := Build(tables.View(), "pdf", []string{"text_src", "page_text"}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// 2 docs x 2 pages = 4 rows.
	if df.Len() != 4 {
		t.Fatalf("rows = %d\n%s", df.Len(), df)
	}
	want := []string{"projid", "tstamp", "filename", "document_value", "page_value", "text_src", "page_text"}
	if len(df.Columns) != len(want) {
		t.Fatalf("columns: %v", df.Columns)
	}
	for i, c := range want {
		if df.Columns[i] != c {
			t.Fatalf("column %d = %s want %s", i, df.Columns[i], c)
		}
	}
	// Every row fully populated.
	for _, r := range df.Rows {
		for i, v := range r {
			if v.IsNull() {
				t.Fatalf("NULL at column %s in %v", df.Columns[i], r)
			}
		}
	}
	// Spot-check one cell.
	di, pi, ti := df.Index("document_value"), df.Index("page_value"), df.Index("text_src")
	found := false
	for _, r := range df.Rows {
		if r[di].AsText() == "doc0.pdf" && r[pi].AsText() == "1" {
			found = true
			if r[ti].AsText() != "OCR" {
				t.Fatalf("text_src = %v", r[ti])
			}
		}
	}
	if !found {
		t.Fatal("row (doc0,1) missing")
	}
}

func TestPivotFigure5MetricsAcrossVersions(t *testing.T) {
	tables := fixture(t)
	df, err := Build(tables.View(), "pdf", []string{"acc", "recall"}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// 2 versions x 2 epochs.
	if df.Len() != 4 {
		t.Fatalf("rows = %d\n%s", df.Len(), df)
	}
	ai := df.Index("acc")
	ri := df.Index("recall")
	for _, r := range df.Rows {
		if r[ai].Type() != relation.TFloat || r[ri].Type() != relation.TFloat {
			t.Fatalf("metric types: %v %v", r[ai].Type(), r[ri].Type())
		}
		if diff := r[ai].AsFloat() - r[ri].AsFloat() - 0.1; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("acc-recall mismatch: %v", r)
		}
	}
	// Rows sorted by tstamp ascending.
	ti := df.Index("tstamp")
	for i := 1; i < df.Len(); i++ {
		if df.Rows[i][ti].AsInt() < df.Rows[i-1][ti].AsInt() {
			t.Fatal("rows not sorted by tstamp")
		}
	}
}

func TestPivotMixedLevelsYieldNullDims(t *testing.T) {
	tables := fixture(t)
	// text_src lives at page level; acc at epoch level (different file and
	// dims): requesting both gives a union of dimension columns with NULLs.
	df, err := Build(tables.View(), "pdf", []string{"text_src", "acc"}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if df.Index("document_value") < 0 || df.Index("epoch_value") < 0 {
		t.Fatalf("dims: %v", df.Columns)
	}
	ei := df.Index("epoch_value")
	di := df.Index("document_value")
	for _, r := range df.Rows {
		hasDoc := !r[di].IsNull()
		hasEpoch := !r[ei].IsNull()
		if hasDoc == hasEpoch {
			t.Fatalf("row should have exactly one dimension family: %v", r)
		}
	}
}

func TestPivotFilenameAndTstampFilters(t *testing.T) {
	tables := fixture(t)
	df, err := Build(tables.View(), "pdf", []string{"acc"}, Options{Filename: "train.flow", Tstamp: 2})
	if err != nil {
		t.Fatal(err)
	}
	if df.Len() != 2 {
		t.Fatalf("rows = %d", df.Len())
	}
	ti := df.Index("tstamp")
	for _, r := range df.Rows {
		if r[ti].AsInt() != 2 {
			t.Fatalf("tstamp filter leaked: %v", r)
		}
	}
}

func TestLatest(t *testing.T) {
	tables := fixture(t)
	df, _ := Build(tables.View(), "pdf", []string{"acc"}, Options{})
	latest := df.Latest()
	if latest.Len() != 2 {
		t.Fatalf("latest rows = %d", latest.Len())
	}
	ti := latest.Index("tstamp")
	for _, r := range latest.Rows {
		if r[ti].AsInt() != 2 {
			t.Fatalf("latest kept old row: %v", r)
		}
	}
	empty := (&Dataframe{Columns: []string{"tstamp"}}).Latest()
	if empty.Len() != 0 {
		t.Fatal("latest of empty should be empty")
	}
}

func TestArgMaxSelectsBestCheckpoint(t *testing.T) {
	tables := fixture(t)
	df, _ := Build(tables.View(), "pdf", []string{"acc", "recall"}, Options{})
	best, err := df.ArgMax("acc")
	if err != nil {
		t.Fatal(err)
	}
	// Best acc = 0.8 + 0.05*1 + 0.02*2 = 0.89 at ts=2, epoch=1.
	if best[df.Index("tstamp")].AsInt() != 2 {
		t.Fatalf("best row: %v", best)
	}
	if best[df.Index("epoch_value")].AsText() != "1" {
		t.Fatalf("best epoch: %v", best)
	}
	if _, err := df.ArgMax("nope"); err == nil {
		t.Fatal("unknown column must error")
	}
}

func TestSortByAndColumn(t *testing.T) {
	tables := fixture(t)
	df, _ := Build(tables.View(), "pdf", []string{"acc"}, Options{})
	sorted, err := df.SortBy("acc", true)
	if err != nil {
		t.Fatal(err)
	}
	accs, err := sorted.Column("acc")
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(accs); i++ {
		if accs[i].AsFloat() > accs[i-1].AsFloat() {
			t.Fatal("descending sort violated")
		}
	}
	if _, err := df.SortBy("nope", false); err == nil {
		t.Fatal("unknown sort column must error")
	}
	if _, err := df.Column("nope"); err == nil {
		t.Fatal("unknown column must error")
	}
}

func TestFilter(t *testing.T) {
	tables := fixture(t)
	df, _ := Build(tables.View(), "pdf", []string{"text_src"}, Options{})
	i := df.Index("text_src")
	ocr := df.Filter(func(r relation.Row) bool { return r[i].AsText() == "OCR" })
	if ocr.Len() != 2 {
		t.Fatalf("OCR rows = %d", ocr.Len())
	}
}

func TestToTableAndSQLBridge(t *testing.T) {
	tables := fixture(t)
	df, _ := Build(tables.View(), "pdf", []string{"acc", "recall"}, Options{})
	tbl, err := df.ToTable("metrics")
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Len() != df.Len() {
		t.Fatalf("table rows = %d", tbl.Len())
	}
	s := tbl.Schema()
	if s.Col(s.Index("acc")).Type != relation.TFloat {
		t.Fatalf("acc type: %v", s.Col(s.Index("acc")).Type)
	}
}

func TestRenderString(t *testing.T) {
	tables := fixture(t)
	df, _ := Build(tables.View(), "pdf", []string{"acc"}, Options{})
	out := df.String()
	if !strings.Contains(out, "epoch_value") || !strings.Contains(out, "train.flow") {
		t.Fatalf("render:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2+df.Len() { // header + separator + rows
		t.Fatalf("render lines = %d", len(lines))
	}
}

func TestToCSV(t *testing.T) {
	df := &Dataframe{
		Columns: []string{"a", "b"},
		Rows: []relation.Row{
			{relation.Text(`with,comma`), relation.Null()},
			{relation.Text(`with"quote`), relation.Int(3)},
		},
	}
	csv := df.ToCSV()
	if !strings.Contains(csv, `"with,comma",`) {
		t.Fatalf("csv:\n%s", csv)
	}
	if !strings.Contains(csv, `"with""quote",3`) {
		t.Fatalf("csv:\n%s", csv)
	}
	if !strings.HasPrefix(csv, "a,b\n") {
		t.Fatalf("csv header:\n%s", csv)
	}
}

func TestBuildErrors(t *testing.T) {
	tables := fixture(t)
	if _, err := Build(tables.View(), "pdf", nil, Options{}); err == nil {
		t.Fatal("no names must error")
	}
	if _, err := Build(tables.View(), "pdf", []string{"a", "a"}, Options{}); err == nil {
		t.Fatal("duplicate names must error")
	}
	df, err := Build(tables.View(), "missing-project", []string{"acc"}, Options{})
	if err != nil || df.Len() != 0 {
		t.Fatalf("missing project: %v %d", err, df.Len())
	}
}

// TestPivotIndexFastPathEquivalence locks in the revived index fast-path:
// Build must return identical rows whether or not the logs(projid,
// value_name) hash index exists, and the index must be live out of
// record.CreateTables.
func TestPivotIndexFastPathEquivalence(t *testing.T) {
	indexed := fixture(t)
	if _, ok := indexed.Logs.HashIndexOn("projid", "value_name"); !ok {
		t.Fatal("logs(projid, value_name) hash index is not live after CreateTables")
	}

	// Rebuild the same table contents with no indexes at all, forcing
	// Build's scan fallback.
	bare := &record.Tables{
		Logs:     relation.NewTable("logs", record.LogsSchema()),
		Loops:    relation.NewTable("loops", record.LoopsSchema()),
		Ts2vid:   relation.NewTable("ts2vid", record.Ts2vidSchema()),
		ObjStore: relation.NewTable("obj_store", record.ObjStoreSchema()),
		Args:     relation.NewTable("args", record.ArgsSchema()),
	}
	if _, ok := bare.Logs.HashIndexOn("projid", "value_name"); ok {
		t.Fatal("bare fixture unexpectedly has an index")
	}
	if err := bare.Logs.InsertMany(indexed.Logs.Rows()); err != nil {
		t.Fatal(err)
	}
	if err := bare.Loops.InsertMany(indexed.Loops.Rows()); err != nil {
		t.Fatal(err)
	}

	for _, tc := range []struct {
		names []string
		opts  Options
	}{
		{[]string{"acc", "recall"}, Options{}},
		{[]string{"acc"}, Options{Tstamp: 2}},
		{[]string{"text_src", "page_text"}, Options{Filename: "featurize.flow"}},
		{[]string{"missing"}, Options{}},
	} {
		fast, err := Build(indexed.View(), "pdf", tc.names, tc.opts)
		if err != nil {
			t.Fatal(err)
		}
		slow, err := Build(bare.View(), "pdf", tc.names, tc.opts)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := render(fast), render(slow); got != want {
			t.Fatalf("names %v: indexed and scan pivots differ:\nindexed:\n%s\nscan:\n%s", tc.names, got, want)
		}
	}
}

func render(df *Dataframe) string {
	var sb strings.Builder
	sb.WriteString(strings.Join(df.Columns, ","))
	sb.WriteByte('\n')
	for _, r := range df.Rows {
		for i, v := range r {
			if i > 0 {
				sb.WriteByte(',')
			}
			sb.WriteString(v.String())
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
