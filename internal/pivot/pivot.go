// Package pivot materializes flor.dataframe — the paper's pivoted relational
// view over the logs/loops tables (§2.1, Figures 2, 3 and 5): one column per
// requested value_name, plus the dimension columns projid, tstamp, filename
// and one "<loop>_value" column per enclosing flor.loop level.
//
// Rows are keyed by (tstamp, filename, ctx_id): values logged in the same
// loop iteration land in the same row; values logged at different nesting
// levels produce rows with NULL in the absent dimensions — exactly the
// "pivoted view" shape the paper renders under Figure 3.
package pivot

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"flordb/internal/record"
	"flordb/internal/relation"
)

// Dataframe is the materialized pivot result.
type Dataframe struct {
	Columns []string
	Rows    []relation.Row
}

type loopInfo struct {
	name    string
	iterVal string
	iter    int64
	parent  int64
}

// Options tunes dataframe construction.
type Options struct {
	// Filename restricts the pivot to logs from one file ("" = all files).
	Filename string
	// Tstamp restricts to one version (<=0 = all versions).
	Tstamp int64
}

// Build pivots the requested value names for a project. It reads through a
// TablesView, so the pivot can run against the live tables (latest
// visibility) or a pinned database snapshot — concurrent writers never
// disturb a snapshot-backed build.
func Build(tables *record.TablesView, projid string, names []string, opts Options) (*Dataframe, error) {
	if len(names) == 0 {
		return nil, fmt.Errorf("pivot: no value names requested")
	}
	nameSet := make(map[string]int, len(names))
	for i, n := range names {
		if _, dup := nameSet[n]; dup {
			return nil, fmt.Errorf("pivot: duplicate name %q", n)
		}
		nameSet[n] = i
	}

	// Loop contexts for dimension resolution.
	ctxs := make(map[int64]loopInfo)
	tables.Loops.Scan(func(_ relation.RowID, r relation.Row) bool {
		if r[0].AsText() != projid {
			return true
		}
		ctxs[r[3].AsInt()] = loopInfo{
			name:    r[5].AsText(),
			iter:    r[6].AsInt(),
			iterVal: iterValText(r[7]),
			parent:  r[4].AsInt(),
		}
		return true
	})

	type rowAgg struct {
		tstamp   int64
		filename string
		ctxID    int64
		dims     map[string]string // dim column -> value
		dimOrder []string
		vals     map[string]relation.Value
		seq      int
	}
	aggs := make(map[string]*rowAgg)
	var order []string
	var keyBuf []byte // reused per visit; row keys are (tstamp, filename, ctx_id)
	seq := 0

	useIndex := false
	ix, hasIx := tables.Logs.HashIndexOn("projid", "value_name")
	if hasIx {
		useIndex = true
	}
	visit := func(r relation.Row) {
		tstamp := r[1].AsInt()
		filename := r[2].AsText()
		ctxID := r[3].AsInt()
		vname := r[4].AsText()
		if opts.Filename != "" && filename != opts.Filename {
			return
		}
		if opts.Tstamp > 0 && tstamp != opts.Tstamp {
			return
		}
		keyBuf = strconv.AppendInt(keyBuf[:0], tstamp, 10)
		keyBuf = append(keyBuf, '\x1f')
		keyBuf = append(keyBuf, filename...)
		keyBuf = append(keyBuf, '\x1f')
		keyBuf = strconv.AppendInt(keyBuf, ctxID, 10)
		agg, ok := aggs[string(keyBuf)]
		if !ok {
			key := string(keyBuf)
			agg = &rowAgg{
				tstamp: tstamp, filename: filename, ctxID: ctxID,
				dims: make(map[string]string), vals: make(map[string]relation.Value), seq: seq,
			}
			seq++
			// Resolve the loop path root -> ctx.
			var path []loopInfo
			for id := ctxID; id != 0; {
				info, ok := ctxs[id]
				if !ok {
					break
				}
				path = append(path, info)
				id = info.parent
			}
			for i := len(path) - 1; i >= 0; i-- {
				col := path[i].name + "_value"
				agg.dims[col] = path[i].iterVal
				agg.dimOrder = append(agg.dimOrder, col)
			}
			aggs[key] = agg
			order = append(order, key)
		}
		var valText string
		if r[5].IsNull() {
			agg.vals[vname] = relation.Null()
		} else {
			valText = r[5].AsText()
			agg.vals[vname] = record.ParseValue(valText, record.ValueType(r[6].AsInt()))
		}
	}

	if useIndex {
		for _, n := range names {
			for _, id := range ix.Lookup(relation.Text(projid), relation.Text(n)) {
				if r, live := tables.Logs.Get(id); live {
					visit(r)
				}
			}
		}
	} else {
		tables.Logs.Scan(func(_ relation.RowID, r relation.Row) bool {
			if r[0].AsText() == projid {
				if _, want := nameSet[r[4].AsText()]; want {
					visit(r)
				}
			}
			return true
		})
	}

	// Global dimension column order: first-seen path order across rows.
	var dimCols []string
	seenDim := map[string]bool{}
	for _, key := range order {
		for _, col := range aggs[key].dimOrder {
			if !seenDim[col] {
				seenDim[col] = true
				dimCols = append(dimCols, col)
			}
		}
	}

	columns := append([]string{"projid", "tstamp", "filename"}, dimCols...)
	columns = append(columns, names...)

	rows := make([]relation.Row, 0, len(aggs))
	keys := append([]string(nil), order...)
	sort.SliceStable(keys, func(a, b int) bool {
		ra, rb := aggs[keys[a]], aggs[keys[b]]
		if ra.tstamp != rb.tstamp {
			return ra.tstamp < rb.tstamp
		}
		if ra.filename != rb.filename {
			return ra.filename < rb.filename
		}
		return ra.seq < rb.seq
	})
	for _, key := range keys {
		agg := aggs[key]
		row := make(relation.Row, 0, len(columns))
		row = append(row, relation.Text(projid), relation.Int(agg.tstamp), relation.Text(agg.filename))
		for _, col := range dimCols {
			if v, ok := agg.dims[col]; ok {
				row = append(row, relation.Text(v))
			} else {
				row = append(row, relation.Null())
			}
		}
		for _, n := range names {
			if v, ok := agg.vals[n]; ok {
				row = append(row, v)
			} else {
				row = append(row, relation.Null())
			}
		}
		rows = append(rows, row)
	}
	return &Dataframe{Columns: columns, Rows: rows}, nil
}

func iterValText(v relation.Value) string {
	if v.IsNull() {
		return ""
	}
	return v.AsText()
}

// Index returns the position of a column, or -1.
func (df *Dataframe) Index(col string) int {
	for i, c := range df.Columns {
		if strings.EqualFold(c, col) {
			return i
		}
	}
	return -1
}

// Len returns the number of rows.
func (df *Dataframe) Len() int { return len(df.Rows) }

// Latest returns the subset of rows carrying the maximum tstamp — the
// paper's flor.utils.latest (Figure 6).
func (df *Dataframe) Latest() *Dataframe {
	ti := df.Index("tstamp")
	if ti < 0 || len(df.Rows) == 0 {
		return &Dataframe{Columns: df.Columns}
	}
	var maxTs int64 = -1 << 62
	for _, r := range df.Rows {
		if ts := r[ti].AsInt(); ts > maxTs {
			maxTs = ts
		}
	}
	out := &Dataframe{Columns: df.Columns}
	for _, r := range df.Rows {
		if r[ti].AsInt() == maxTs {
			out.Rows = append(out.Rows, r)
		}
	}
	return out
}

// Filter keeps rows for which pred returns true.
func (df *Dataframe) Filter(pred func(relation.Row) bool) *Dataframe {
	out := &Dataframe{Columns: df.Columns}
	for _, r := range df.Rows {
		if pred(r) {
			out.Rows = append(out.Rows, r)
		}
	}
	return out
}

// SortBy orders rows by a column (ascending or descending). Unknown columns
// are an error.
func (df *Dataframe) SortBy(col string, desc bool) (*Dataframe, error) {
	i := df.Index(col)
	if i < 0 {
		return nil, fmt.Errorf("pivot: no column %q", col)
	}
	out := &Dataframe{Columns: df.Columns, Rows: append([]relation.Row(nil), df.Rows...)}
	sort.SliceStable(out.Rows, func(a, b int) bool {
		c := relation.Compare(out.Rows[a][i], out.Rows[b][i])
		if desc {
			return c > 0
		}
		return c < 0
	})
	return out, nil
}

// ArgMax returns the row with the maximum value in the given column —
// the paper's "select the best-performing model checkpoint" query (§4.2).
func (df *Dataframe) ArgMax(col string) (relation.Row, error) {
	i := df.Index(col)
	if i < 0 {
		return nil, fmt.Errorf("pivot: no column %q", col)
	}
	var best relation.Row
	for _, r := range df.Rows {
		if r[i].IsNull() {
			continue
		}
		if best == nil || relation.Compare(r[i], best[i]) > 0 {
			best = r
		}
	}
	if best == nil {
		return nil, fmt.Errorf("pivot: no non-NULL values in %q", col)
	}
	return best, nil
}

// Column extracts a column as a slice.
func (df *Dataframe) Column(col string) ([]relation.Value, error) {
	i := df.Index(col)
	if i < 0 {
		return nil, fmt.Errorf("pivot: no column %q", col)
	}
	out := make([]relation.Value, len(df.Rows))
	for j, r := range df.Rows {
		out[j] = r[i]
	}
	return out, nil
}

// ToTable materializes the dataframe as a relation table (so SQL can query
// it). Column types are inferred from the first non-NULL value per column.
func (df *Dataframe) ToTable(name string) (*relation.Table, error) {
	cols := make([]relation.Column, len(df.Columns))
	for i, c := range df.Columns {
		typ := relation.TText
		for _, r := range df.Rows {
			if !r[i].IsNull() {
				typ = r[i].Type()
				break
			}
		}
		cols[i] = relation.Column{Name: c, Type: typ}
	}
	schema, err := relation.NewSchema(cols...)
	if err != nil {
		return nil, err
	}
	t := relation.NewTable(name, schema)
	for _, r := range df.Rows {
		coerced := make(relation.Row, len(r))
		for i, v := range r {
			if v.IsNull() {
				coerced[i] = v
				continue
			}
			cv, err := relation.Coerce(v, cols[i].Type)
			if err != nil {
				cv = relation.Text(v.String())
			}
			coerced[i] = cv
		}
		if _, err := t.Insert(coerced); err != nil {
			return nil, err
		}
	}
	return t, nil
}
