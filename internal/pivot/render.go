package pivot

import (
	"fmt"
	"strings"
)

// String renders the dataframe as an aligned ASCII table (the presentation
// at the bottom of the paper's Figure 3).
func (df *Dataframe) String() string {
	widths := make([]int, len(df.Columns))
	for i, c := range df.Columns {
		widths[i] = len(c)
	}
	cells := make([][]string, len(df.Rows))
	for ri, r := range df.Rows {
		cells[ri] = make([]string, len(r))
		for ci, v := range r {
			s := "NULL"
			if !v.IsNull() {
				s = v.String()
			}
			if len(s) > 40 {
				s = s[:37] + "..."
			}
			cells[ri][ci] = s
			if len(s) > widths[ci] {
				widths[ci] = len(s)
			}
		}
	}
	var sb strings.Builder
	for i, c := range df.Columns {
		if i > 0 {
			sb.WriteString("  ")
		}
		fmt.Fprintf(&sb, "%-*s", widths[i], c)
	}
	sb.WriteByte('\n')
	for i := range df.Columns {
		if i > 0 {
			sb.WriteString("  ")
		}
		sb.WriteString(strings.Repeat("-", widths[i]))
	}
	sb.WriteByte('\n')
	for _, row := range cells {
		for i, s := range row {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], s)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// ToCSV renders the dataframe as RFC-4180-ish CSV.
func (df *Dataframe) ToCSV() string {
	var sb strings.Builder
	writeRow := func(fields []string) {
		for i, f := range fields {
			if i > 0 {
				sb.WriteByte(',')
			}
			if strings.ContainsAny(f, ",\"\n") {
				sb.WriteByte('"')
				sb.WriteString(strings.ReplaceAll(f, `"`, `""`))
				sb.WriteByte('"')
			} else {
				sb.WriteString(f)
			}
		}
		sb.WriteByte('\n')
	}
	writeRow(df.Columns)
	for _, r := range df.Rows {
		fields := make([]string, len(r))
		for i, v := range r {
			if v.IsNull() {
				fields[i] = ""
			} else {
				fields[i] = v.String()
			}
		}
		writeRow(fields)
	}
	return sb.String()
}
