package pivot

import (
	"strings"
	"testing"
)

func TestChartRendersSeriesPerVersion(t *testing.T) {
	tables := fixture(t)
	df, err := Build(tables.View(), "pdf", []string{"acc"}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	out, err := df.Chart("acc", "epoch_value", 40, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "acc vs epoch_value") {
		t.Fatalf("title missing:\n%s", out)
	}
	// Two versions → two legend entries with distinct markers.
	if !strings.Contains(out, "* ts=1") || !strings.Contains(out, "o ts=2") {
		t.Fatalf("legend:\n%s", out)
	}
	// Both markers plotted.
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Fatalf("markers missing:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 1+8+1+1 { // title + grid + x-axis + legend
		t.Fatalf("line count %d:\n%s", len(lines), out)
	}
}

func TestChartErrors(t *testing.T) {
	tables := fixture(t)
	df, _ := Build(tables.View(), "pdf", []string{"acc"}, Options{})
	if _, err := df.Chart("nope", "epoch_value", 40, 8); err == nil {
		t.Fatal("unknown metric must error")
	}
	if _, err := df.Chart("acc", "nope", 40, 8); err == nil {
		t.Fatal("unknown dim must error")
	}
	empty := &Dataframe{Columns: []string{"tstamp", "acc", "epoch_value"}}
	if _, err := empty.Chart("acc", "epoch_value", 40, 8); err == nil {
		t.Fatal("empty dataframe must error")
	}
}

func TestChartClampsTinyDimensions(t *testing.T) {
	tables := fixture(t)
	df, _ := Build(tables.View(), "pdf", []string{"acc"}, Options{})
	out, err := df.Chart("acc", "epoch_value", 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) == 0 {
		t.Fatal("empty chart")
	}
}

func TestChartHandlesConstantSeries(t *testing.T) {
	tables := fixture(t)
	// recall - acc is constant offset; chart a constant by picking recall
	// only at one version/epoch set where values repeat is hard; instead
	// chart page_numbers which are all 1.
	df, err := Build(tables.View(), "pdf", []string{"text_src"}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// text_src is non-numeric: all points skipped -> error.
	if _, err := df.Chart("text_src", "page_value", 20, 5); err == nil {
		t.Fatal("non-numeric metric must error")
	}
}
