package pivot

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"flordb/internal/relation"
)

// Chart renders one metric column as an ASCII line chart grouped by version
// (tstamp), with the x-axis taken from a dimension column (e.g.
// "epoch_value"). This is the reproduction of the paper's §4 "Metric
// Registry and Visualization After Execution" — TensorBoard-style plots
// generated from the metadata store, including for metrics that were only
// materialized after the fact by hindsight logging.
func (df *Dataframe) Chart(metric, xDim string, width, height int) (string, error) {
	mi := df.Index(metric)
	if mi < 0 {
		return "", fmt.Errorf("pivot: no column %q", metric)
	}
	xi := df.Index(xDim)
	if xi < 0 {
		return "", fmt.Errorf("pivot: no column %q", xDim)
	}
	ti := df.Index("tstamp")
	if width < 16 {
		width = 16
	}
	if height < 4 {
		height = 4
	}

	type point struct {
		x float64
		y float64
	}
	series := make(map[int64][]point)
	var minY, maxY = math.Inf(1), math.Inf(-1)
	var minX, maxX = math.Inf(1), math.Inf(-1)
	for _, r := range df.Rows {
		if r[mi].IsNull() || r[xi].IsNull() {
			continue
		}
		yv, err := relation.Coerce(r[mi], relation.TFloat)
		if err != nil {
			continue
		}
		xv, err := relation.Coerce(r[xi], relation.TFloat)
		if err != nil {
			continue
		}
		ts := int64(0)
		if ti >= 0 && !r[ti].IsNull() {
			ts = r[ti].AsInt()
		}
		p := point{x: xv.AsFloat(), y: yv.AsFloat()}
		series[ts] = append(series[ts], p)
		minY = math.Min(minY, p.y)
		maxY = math.Max(maxY, p.y)
		minX = math.Min(minX, p.x)
		maxX = math.Max(maxX, p.x)
	}
	if len(series) == 0 {
		return "", fmt.Errorf("pivot: no plottable values in %q", metric)
	}
	if maxY == minY {
		maxY = minY + 1
	}
	if maxX == minX {
		maxX = minX + 1
	}

	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	markers := []byte{'*', 'o', '+', 'x', '#', '@'}
	tss := make([]int64, 0, len(series))
	for ts := range series {
		tss = append(tss, ts)
	}
	sort.Slice(tss, func(i, j int) bool { return tss[i] < tss[j] })
	for si, ts := range tss {
		m := markers[si%len(markers)]
		pts := series[ts]
		sort.Slice(pts, func(i, j int) bool { return pts[i].x < pts[j].x })
		for _, p := range pts {
			col := int((p.x - minX) / (maxX - minX) * float64(width-1))
			row := height - 1 - int((p.y-minY)/(maxY-minY)*float64(height-1))
			grid[row][col] = m
		}
	}

	var sb strings.Builder
	fmt.Fprintf(&sb, "%s vs %s\n", metric, xDim)
	fmt.Fprintf(&sb, "%8.4f ┤%s\n", maxY, string(grid[0]))
	for i := 1; i < height-1; i++ {
		fmt.Fprintf(&sb, "%8s │%s\n", "", string(grid[i]))
	}
	fmt.Fprintf(&sb, "%8.4f ┤%s\n", minY, string(grid[height-1]))
	fmt.Fprintf(&sb, "%8s  %-8.4g%*s\n", "", minX, width-8, fmt.Sprintf("%.4g", maxX))
	legend := make([]string, len(tss))
	for si, ts := range tss {
		legend[si] = fmt.Sprintf("%c ts=%d", markers[si%len(markers)], ts)
	}
	fmt.Fprintf(&sb, "legend: %s\n", strings.Join(legend, "  "))
	return sb.String(), nil
}
