// Package diffkit provides the source-differencing machinery behind FlorDB's
// cross-version log-statement propagation (§2 of the paper, adapted from
// fine-grained source differencing à la GumTree [6]).
//
// It offers a Myers O(ND) edit script over token/line sequences, an
// alignment map between two sequences, and unified-diff rendering for CLI
// display. The statement-level anchoring used to inject flor.log statements
// into historical versions builds on Align (see internal/replay).
package diffkit

import (
	"fmt"
	"strings"
)

// Op is an edit operation kind.
type Op int

// Edit operations.
const (
	OpEqual Op = iota
	OpDelete
	OpInsert
)

// String renders the op.
func (o Op) String() string {
	switch o {
	case OpEqual:
		return "="
	case OpDelete:
		return "-"
	case OpInsert:
		return "+"
	default:
		return "?"
	}
}

// Edit is one element of an edit script. For OpEqual and OpDelete, AIndex is
// the index into the old sequence; for OpEqual and OpInsert, BIndex is the
// index into the new sequence. Unused indexes are -1.
type Edit struct {
	Op     Op
	Text   string
	AIndex int
	BIndex int
}

// Diff computes a minimal edit script transforming a into b using Myers'
// O(ND) greedy algorithm.
func Diff(a, b []string) []Edit {
	n, m := len(a), len(b)
	if n == 0 && m == 0 {
		return nil
	}
	max := n + m
	// v[k+max] = furthest x on diagonal k.
	v := make([]int, 2*max+2)
	var trace [][]int
	var dFound = -1
outer:
	for d := 0; d <= max; d++ {
		vc := make([]int, len(v))
		copy(vc, v)
		trace = append(trace, vc)
		for k := -d; k <= d; k += 2 {
			var x int
			if k == -d || (k != d && v[k-1+max] < v[k+1+max]) {
				x = v[k+1+max] // down: insert from b
			} else {
				x = v[k-1+max] + 1 // right: delete from a
			}
			y := x - k
			for x < n && y < m && a[x] == b[y] {
				x++
				y++
			}
			v[k+max] = x
			if x >= n && y >= m {
				dFound = d
				break outer
			}
		}
	}
	// Backtrack.
	var rev []Edit
	x, y := n, m
	for d := dFound; d > 0; d-- {
		vPrev := trace[d]
		k := x - y
		var prevK int
		if k == -d || (k != d && vPrev[k-1+max] < vPrev[k+1+max]) {
			prevK = k + 1
		} else {
			prevK = k - 1
		}
		prevX := vPrev[prevK+max]
		prevY := prevX - prevK
		for x > prevX && y > prevY {
			x--
			y--
			rev = append(rev, Edit{Op: OpEqual, Text: a[x], AIndex: x, BIndex: y})
		}
		if x == prevX { // came from below: insertion
			y--
			rev = append(rev, Edit{Op: OpInsert, Text: b[y], AIndex: -1, BIndex: y})
		} else { // came from left: deletion
			x--
			rev = append(rev, Edit{Op: OpDelete, Text: a[x], AIndex: x, BIndex: -1})
		}
	}
	for x > 0 && y > 0 {
		x--
		y--
		rev = append(rev, Edit{Op: OpEqual, Text: a[x], AIndex: x, BIndex: y})
	}
	// d == 0 leftovers cannot exist (x==y==0 by construction when d==0).
	out := make([]Edit, len(rev))
	for i := range rev {
		out[i] = rev[len(rev)-1-i]
	}
	return out
}

// Align returns, for each index j in b, the index i in a that the same
// (equal) element occupies, or -1 when b[j] was inserted. This is the
// correspondence map that statement propagation uses to locate anchors.
func Align(a, b []string) []int {
	edits := Diff(a, b)
	out := make([]int, len(b))
	for i := range out {
		out[i] = -1
	}
	for _, e := range edits {
		if e.Op == OpEqual {
			out[e.BIndex] = e.AIndex
		}
	}
	return out
}

// AlignReverse returns, for each index i in a, the corresponding index in b,
// or -1 when a[i] was deleted.
func AlignReverse(a, b []string) []int {
	edits := Diff(a, b)
	out := make([]int, len(a))
	for i := range out {
		out[i] = -1
	}
	for _, e := range edits {
		if e.Op == OpEqual {
			out[e.AIndex] = e.BIndex
		}
	}
	return out
}

// Stats summarizes an edit script.
type Stats struct {
	Equal   int
	Deleted int
	Added   int
}

// Summarize counts operations in an edit script.
func Summarize(edits []Edit) Stats {
	var s Stats
	for _, e := range edits {
		switch e.Op {
		case OpEqual:
			s.Equal++
		case OpDelete:
			s.Deleted++
		case OpInsert:
			s.Added++
		}
	}
	return s
}

// Unified renders an edit script in a compact unified-diff-like format with
// the given number of context lines.
func Unified(edits []Edit, context int) string {
	if len(edits) == 0 {
		return ""
	}
	// Mark which lines to print: all non-equal plus `context` around them.
	keep := make([]bool, len(edits))
	for i, e := range edits {
		if e.Op == OpEqual {
			continue
		}
		lo := i - context
		if lo < 0 {
			lo = 0
		}
		hi := i + context
		if hi >= len(edits) {
			hi = len(edits) - 1
		}
		for j := lo; j <= hi; j++ {
			keep[j] = true
		}
	}
	var sb strings.Builder
	skipping := false
	for i, e := range edits {
		if !keep[i] {
			if !skipping {
				sb.WriteString("...\n")
				skipping = true
			}
			continue
		}
		skipping = false
		switch e.Op {
		case OpEqual:
			fmt.Fprintf(&sb, "  %s\n", e.Text)
		case OpDelete:
			fmt.Fprintf(&sb, "- %s\n", e.Text)
		case OpInsert:
			fmt.Fprintf(&sb, "+ %s\n", e.Text)
		}
	}
	return sb.String()
}

// SplitLines splits text into lines without trailing newlines, suitable for
// Diff. An empty string yields no lines.
func SplitLines(text string) []string {
	if text == "" {
		return nil
	}
	lines := strings.Split(text, "\n")
	if len(lines) > 0 && lines[len(lines)-1] == "" {
		lines = lines[:len(lines)-1]
	}
	return lines
}
