package diffkit

import (
	"strings"
	"testing"
	"testing/quick"
)

// apply replays an edit script to reconstruct b from a.
func apply(a []string, edits []Edit) []string {
	var out []string
	ai := 0
	for _, e := range edits {
		switch e.Op {
		case OpEqual:
			out = append(out, a[ai])
			ai++
		case OpDelete:
			ai++
		case OpInsert:
			out = append(out, e.Text)
		}
	}
	return out
}

func eq(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestDiffIdentical(t *testing.T) {
	a := []string{"x", "y", "z"}
	edits := Diff(a, a)
	s := Summarize(edits)
	if s.Equal != 3 || s.Deleted != 0 || s.Added != 0 {
		t.Fatalf("stats: %+v", s)
	}
}

func TestDiffEmptyCases(t *testing.T) {
	if edits := Diff(nil, nil); len(edits) != 0 {
		t.Fatal("nil/nil should be empty")
	}
	edits := Diff(nil, []string{"a", "b"})
	if s := Summarize(edits); s.Added != 2 || s.Equal != 0 {
		t.Fatalf("insert-all: %+v", s)
	}
	edits = Diff([]string{"a", "b"}, nil)
	if s := Summarize(edits); s.Deleted != 2 || s.Equal != 0 {
		t.Fatalf("delete-all: %+v", s)
	}
}

func TestDiffInsertMiddle(t *testing.T) {
	a := []string{"for epoch", "train step", "log acc"}
	b := []string{"for epoch", "train step", "log loss", "log acc"}
	edits := Diff(a, b)
	s := Summarize(edits)
	if s.Equal != 3 || s.Added != 1 || s.Deleted != 0 {
		t.Fatalf("stats: %+v\n%v", s, edits)
	}
	if !eq(apply(a, edits), b) {
		t.Fatal("apply(edits) != b")
	}
}

func TestDiffReplacement(t *testing.T) {
	a := []string{"alpha", "beta", "gamma"}
	b := []string{"alpha", "BETA", "gamma"}
	edits := Diff(a, b)
	s := Summarize(edits)
	if s.Equal != 2 || s.Added != 1 || s.Deleted != 1 {
		t.Fatalf("stats: %+v", s)
	}
	if !eq(apply(a, edits), b) {
		t.Fatal("reconstruction failed")
	}
}

func TestDiffMinimality(t *testing.T) {
	// Myers yields a minimal script: for these inputs the optimal edit
	// distance is known.
	a := strings.Split("abcabba", "")
	b := strings.Split("cbabac", "")
	edits := Diff(a, b)
	s := Summarize(edits)
	if s.Added+s.Deleted != 5 { // classic Myers paper example, D=5
		t.Fatalf("expected D=5, got %d (%+v)", s.Added+s.Deleted, s)
	}
	if !eq(apply(a, edits), b) {
		t.Fatal("reconstruction failed")
	}
}

func TestDiffReconstructionProperty(t *testing.T) {
	f := func(xa, xb []uint8) bool {
		a := make([]string, len(xa))
		for i, v := range xa {
			a[i] = string(rune('a' + v%4)) // small alphabet → many matches
		}
		b := make([]string, len(xb))
		for i, v := range xb {
			b[i] = string(rune('a' + v%4))
		}
		return eq(apply(a, Diff(a, b)), b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestAlign(t *testing.T) {
	a := []string{"h1", "x", "h2", "y"}
	b := []string{"h1", "h2", "new", "y"}
	m := Align(a, b)
	if m[0] != 0 { // h1
		t.Fatalf("align[0]=%d", m[0])
	}
	if m[1] != 2 { // h2 moved up
		t.Fatalf("align[1]=%d", m[1])
	}
	if m[2] != -1 { // inserted
		t.Fatalf("align[2]=%d", m[2])
	}
	if m[3] != 3 { // y
		t.Fatalf("align[3]=%d", m[3])
	}
}

func TestAlignReverse(t *testing.T) {
	a := []string{"a", "gone", "b"}
	b := []string{"a", "b"}
	m := AlignReverse(a, b)
	if m[0] != 0 || m[1] != -1 || m[2] != 1 {
		t.Fatalf("reverse align: %v", m)
	}
}

func TestAlignConsistencyProperty(t *testing.T) {
	// Property: Align and AlignReverse are mutually consistent bijections on
	// matched elements.
	f := func(xa, xb []uint8) bool {
		a := make([]string, len(xa))
		for i, v := range xa {
			a[i] = string(rune('a' + v%3))
		}
		b := make([]string, len(xb))
		for i, v := range xb {
			b[i] = string(rune('a' + v%3))
		}
		fwd := Align(a, b)
		rev := AlignReverse(a, b)
		for j, i := range fwd {
			if i >= 0 {
				if a[i] != b[j] || rev[i] != j {
					return false
				}
			}
		}
		for i, j := range rev {
			if j >= 0 && fwd[j] != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestUnifiedRendering(t *testing.T) {
	a := []string{"1", "2", "3", "4", "5", "6", "7"}
	b := []string{"1", "2", "3", "4x", "5", "6", "7"}
	out := Unified(Diff(a, b), 1)
	if !strings.Contains(out, "- 4") || !strings.Contains(out, "+ 4x") {
		t.Fatalf("unified:\n%s", out)
	}
	if !strings.Contains(out, "...") {
		t.Fatalf("expected elision marker:\n%s", out)
	}
	if Unified(nil, 1) != "" {
		t.Fatal("empty edits should render empty")
	}
}

func TestSplitLines(t *testing.T) {
	if got := SplitLines(""); len(got) != 0 {
		t.Fatalf("empty: %v", got)
	}
	if got := SplitLines("a\nb\n"); len(got) != 2 || got[1] != "b" {
		t.Fatalf("trailing newline: %v", got)
	}
	if got := SplitLines("a\nb"); len(got) != 2 {
		t.Fatalf("no trailing newline: %v", got)
	}
}
