// Fixture for the snapshotrelease analyzer: every pinned MVCC view
// (Snapshot/SnapshotLatest/Reader/LatestReader whose result has a
// Release or Close method) must be released on every path, unless
// ownership escapes to the caller.
package a

import (
	"errors"
	"strings"
)

type Snapshot struct{}

func (s *Snapshot) Release()  {}
func (s *Snapshot) Rows() int { return 0 }

type DB struct{}

func (d *DB) Snapshot() *Snapshot       { return &Snapshot{} }
func (d *DB) SnapshotLatest() *Snapshot { return &Snapshot{} }

type View struct{ snap *Snapshot }

func (v *View) Close() error              { return nil }
func (v *View) SQL(q string) (int, error) { _ = q; return 0, nil }

type Session struct{ db *DB }

func (s *Session) Reader() (*View, error)              { return &View{}, nil }
func (s *Session) LatestReader() (*View, error)        { return &View{}, nil }
func (s *Session) ReaderAt(epoch int64) (*View, error) { _ = epoch; return &View{}, nil }

func (d *DB) SnapshotAt(epoch int64) (*Snapshot, error) { _ = epoch; return &Snapshot{}, nil }

func neverReleased(db *DB) int {
	snap := db.Snapshot() // want `snapshot pinned by Snapshot is never released`
	return snap.Rows()
}

func dropped(db *DB) {
	db.Snapshot() // want `Snapshot pins a snapshot that is immediately dropped`
}

func blank(db *DB) {
	_ = db.Snapshot() // want `Snapshot pins a snapshot that is assigned to the blank identifier`
}

func leakyBranch(s *Session, c bool) error {
	v, err := s.Reader() // want `snapshot pinned by Reader may not be released on the path`
	if err != nil {
		return err
	}
	if c {
		return errors.New("early") // exits without v.Close()
	}
	return v.Close()
}

// goodDeferred is the request-handler idiom: err-guard return (the view
// is nil there), then defer the Close.
func goodDeferred(s *Session) (int, error) {
	v, err := s.Reader()
	if err != nil {
		return 0, err
	}
	defer v.Close()
	return v.SQL("SELECT 1")
}

func goodExplicit(db *DB) int {
	snap := db.Snapshot()
	n := snap.Rows()
	snap.Release()
	return n
}

// goodBothBranches releases on every path without a defer.
func goodBothBranches(db *DB, c bool) int {
	snap := db.SnapshotLatest()
	if c {
		n := snap.Rows()
		snap.Release()
		return n
	}
	snap.Release()
	return 0
}

// goodReturned transfers ownership to the caller wholesale.
func goodReturned(s *Session) (*View, error) {
	return s.Reader()
}

// goodEscapes returns the bound view: the caller owns the Close.
func goodEscapes(s *Session) (*View, error) {
	v, err := s.Reader()
	if err != nil {
		return nil, err
	}
	return v, nil
}

type holder struct{ v *View }

// goodStored stores the view in a struct; the holder owns the release.
func goodStored(s *Session) (*holder, error) {
	v, err := s.LatestReader()
	if err != nil {
		return nil, err
	}
	return &holder{v: v}, nil
}

// goodPassed hands the view to a callee that takes over.
func goodPassed(s *Session, sink func(*View)) error {
	v, err := s.Reader()
	if err != nil {
		return err
	}
	sink(v)
	return nil
}

// leakyReaderAt: the time-travel pin paths are acquisitions too — a leaked
// historical pin blocks epoch-retention GC at that epoch.
func leakyReaderAt(s *Session) (int, error) {
	v, err := s.ReaderAt(7) // want `snapshot pinned by ReaderAt is never released`
	if err != nil {
		return 0, err
	}
	return v.SQL("SELECT 1")
}

func leakySnapshotAt(db *DB, c bool) int {
	snap, err := db.SnapshotAt(3) // want `snapshot pinned by SnapshotAt may not be released on the path`
	if err != nil {
		return 0
	}
	if c {
		return 1 // exits without snap.Release()
	}
	n := snap.Rows()
	snap.Release()
	return n
}

// goodReaderAt follows the handler idiom with the historical pin.
func goodReaderAt(s *Session) (int, error) {
	v, err := s.ReaderAt(7)
	if err != nil {
		return 0, err
	}
	defer v.Close()
	return v.SQL("SELECT 1")
}

func goodSnapshotAt(db *DB) int {
	snap, err := db.SnapshotAt(3)
	if err != nil {
		return 0
	}
	n := snap.Rows()
	snap.Release()
	return n
}

type Corpus struct{}

// Reader on Corpus returns a *strings.Reader, which has no
// Release/Close method: not a pin, out of scope.
func (c *Corpus) Reader() *strings.Reader { return strings.NewReader("x") }

func goodNotAPin(c *Corpus) int {
	r := c.Reader()
	return r.Len()
}
