// Package snapshotrelease defines an Analyzer that enforces the
// snapshot-pin discipline of DESIGN §8: every pinned MVCC view —
// Database.Snapshot(), Database.SnapshotLatest(), Database.SnapshotAt(),
// Session.Reader(), Session.LatestReader(), Session.ReaderAt() — must be
// released (Release/Close) on every control-flow path, lostcancel-style.
// Pins are cheap but counted: the pin count feeds the /healthz
// snapshot_pins gauge, and epoch-retention GC refuses to reclaim epochs
// that a leaked pin still covers, so a request handler that forgets Close
// turns into an unbounded retention leak under load.
//
// An acquisition is a call to a method named Snapshot, SnapshotLatest,
// SnapshotAt, Reader, ReaderAt, or LatestReader whose first result has a
// Release or Close method — the method-set requirement keeps unrelated
// Reader()/Snapshot() methods (io.Reader factories, model weight
// snapshots) out of scope. The analyzer then requires, for the local
// variable holding the result:
//
//   - a v.Release()/v.Close() call or a `defer v.Close()` on every CFG
//     path from the acquisition to every function exit;
//   - EXCEPT exits taken when the acquisition itself failed: a return
//     inside an if-statement whose condition mentions the err (or ok)
//     variable bound by the same assignment is exempt, since the view
//     is nil there.
//
// Ownership transfer ends the analysis: a view that is returned,
// passed as a call argument, stored in a composite literal, field, or
// captured by a closure escapes, and whoever receives it owns the
// release (the public constructors Session.Reader/LatestReader return
// their view — the caller closes it).
//
// A pin acquired and immediately dropped (`s.Reader()` as a bare
// expression statement, or assigned to _) is always reported.
package snapshotrelease

import (
	"go/ast"
	"go/types"

	"flordb/internal/lint/lintutil"
	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/ctrlflow"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
	"golang.org/x/tools/go/cfg"
)

const doc = "report MVCC snapshot pins (Snapshot/Reader/LatestReader) not released on all paths"

// Analyzer is the snapshotrelease analyzer.
var Analyzer = &analysis.Analyzer{
	Name:     "snapshotrelease",
	Doc:      doc,
	Requires: []*analysis.Analyzer{inspect.Analyzer, ctrlflow.Analyzer},
	Run:      run,
}

func init() { lintutil.AddExcludeFlag(Analyzer) }

// acquireMethods are the pinning entry points, by name. ReaderAt and
// SnapshotAt are the time-travel variants: they pin a historical epoch, and
// a leaked historical pin additionally blocks epoch-retention GC at that
// epoch forever.
var acquireMethods = map[string]bool{
	"Snapshot": true, "SnapshotLatest": true, "Reader": true, "LatestReader": true,
	"ReaderAt": true, "SnapshotAt": true,
}

// releaseMethods are the accepted release calls, by name.
var releaseMethods = []string{"Release", "Close"}

func run(pass *analysis.Pass) (any, error) {
	if lintutil.Excluded(pass) {
		return nil, nil
	}
	rep := lintutil.NewReporter(pass)
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	cfgs := pass.ResultOf[ctrlflow.Analyzer].(*ctrlflow.CFGs)

	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		fn := n.(*ast.FuncDecl)
		if fn.Body == nil {
			return
		}
		checkFunc(pass, rep, fn, cfgs.FuncDecl(fn))
	})
	return nil, nil
}

// acquisition is one pinning call bound to a local variable.
type acquisition struct {
	assign *ast.AssignStmt
	call   *ast.CallExpr
	v      *types.Var // the view variable; nil for dropped results
	errObj types.Object
	method string
}

func checkFunc(pass *analysis.Pass, rep *lintutil.Reporter, fn *ast.FuncDecl, g *cfg.CFG) {
	info := pass.TypesInfo
	var acqs []acquisition
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // separate ownership domain
		}
		switch st := n.(type) {
		case *ast.ExprStmt:
			if call, ok := st.X.(*ast.CallExpr); ok && isAcquire(info, call) {
				rep.Reportf(call.Pos(), "%s pins a snapshot that is immediately dropped; bind it and release it (or do not pin)", lintutil.MethodName(call))
			}
		case *ast.AssignStmt:
			if len(st.Rhs) != 1 {
				return true
			}
			call, ok := st.Rhs[0].(*ast.CallExpr)
			if !ok || !isAcquire(info, call) {
				return true
			}
			a := acquisition{assign: st, call: call, method: lintutil.MethodName(call)}
			if id, ok := st.Lhs[0].(*ast.Ident); ok {
				if id.Name == "_" {
					rep.Reportf(call.Pos(), "%s pins a snapshot that is assigned to the blank identifier; bind it and release it", a.method)
					return true
				}
				a.v = objOf(info, id)
			}
			if len(st.Lhs) > 1 {
				if id, ok := st.Lhs[1].(*ast.Ident); ok && id.Name != "_" {
					a.errObj = objOf(info, id)
				}
			}
			if a.v != nil {
				acqs = append(acqs, a)
			}
		}
		return true
	})
	if len(acqs) == 0 || g == nil {
		return
	}
	for _, a := range acqs {
		checkAcquisition(pass, rep, fn, g, a)
	}
}

// isAcquire reports whether call is a pin: method name in the acquire
// set and a first result owning a Release or Close method.
func isAcquire(info *types.Info, call *ast.CallExpr) bool {
	name := lintutil.MethodName(call)
	if !acquireMethods[name] {
		return false
	}
	sel := call.Fun.(*ast.SelectorExpr)
	if _, isMethod := info.Selections[sel]; !isMethod {
		// Package-level function named Reader etc. — not a pin.
		return false
	}
	tv, ok := info.Types[call]
	if !ok {
		return false
	}
	t := tv.Type
	if tuple, ok := t.(*types.Tuple); ok {
		if tuple.Len() == 0 {
			return false
		}
		t = tuple.At(0).Type()
	}
	return lintutil.HasMethod(t, releaseMethods...) != ""
}

func objOf(info *types.Info, id *ast.Ident) *types.Var {
	if obj, ok := info.Defs[id].(*types.Var); ok {
		return obj
	}
	if obj, ok := info.Uses[id].(*types.Var); ok {
		return obj
	}
	return nil
}

// use classifies one appearance of the view variable.
type use int

const (
	useNeutral use = iota // receiver of a method call, nil comparison, ...
	useRelease            // v.Release() / v.Close()
	useDefer              // defer v.Close()
	useEscape             // returned, passed, stored, captured
)

func checkAcquisition(pass *analysis.Pass, rep *lintutil.Reporter, fn *ast.FuncDecl, g *cfg.CFG, a acquisition) {
	info := pass.TypesInfo
	releases := map[ast.Node]bool{} // the release CallExprs (incl. deferred)
	deferred := false
	escaped := false

	// Classify every use of the variable in the function body, tracking
	// the ancestor stack by hand (ast.Inspect calls f(nil) on exit).
	var stack []ast.Node
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if n == nil {
			if len(stack) > 0 {
				stack = stack[:len(stack)-1]
			}
			return true
		}
		stack = append(stack, n)
		if id, ok := n.(*ast.Ident); ok && objOf(info, id) == a.v && id != a.assign.Lhs[0] {
			switch k, rel := classifyUse(info, stack, id, a.v); k {
			case useRelease:
				releases[rel] = true
			case useDefer:
				deferred = true
			case useEscape:
				escaped = true
			}
		}
		return true
	})

	if escaped {
		return // ownership transferred; receiver releases
	}
	if deferred {
		return // released on every exit by defer
	}
	if len(releases) == 0 {
		rep.Reportf(a.call.Pos(), "snapshot pinned by %s is never released in %s; call Close/Release (or defer it) on every path", a.method, fn.Name.Name)
		return
	}

	// Path-sensitive check: every CFG path from the acquisition to an
	// exit must pass a release, except err-guard exits.
	permitted := permittedReturns(info, fn, a)
	if leaky := findLeak(g, a, releases, permitted); leaky != nil {
		rep.Reportf(a.call.Pos(), "snapshot pinned by %s may not be released on the path reaching line %d; release it on every path or defer the Close", a.method, pass.Fset.Position(leaky.Pos()).Line)
	}
}

// classifyUse decides what one identifier occurrence does with the
// view. The stack runs from fn.Body down to the identifier itself.
func classifyUse(info *types.Info, stack []ast.Node, id *ast.Ident, v *types.Var) (use, ast.Node) {
	// Walk outward: id, then its parent, etc.
	parent := nodeAbove(stack, 1)
	// v.Method(...): id is sel.X.
	if sel, ok := parent.(*ast.SelectorExpr); ok && sel.X == id {
		if call, ok := nodeAbove(stack, 2).(*ast.CallExpr); ok && call.Fun == sel {
			for _, r := range releaseMethods {
				if sel.Sel.Name == r {
					if _, isDefer := nodeAbove(stack, 3).(*ast.DeferStmt); isDefer {
						return useDefer, call
					}
					return useRelease, call
				}
			}
			return useNeutral, nil // other method call on v
		}
		// Field access v.f or method value v.M — conservative escape.
		return useEscape, nil
	}
	switch p := parent.(type) {
	case *ast.CallExpr:
		// v passed as an argument (it cannot be Fun: that is a
		// selector case above, and v itself is not callable here).
		return useEscape, nil
	case *ast.ReturnStmt:
		return useEscape, nil
	case *ast.CompositeLit:
		return useEscape, nil
	case *ast.KeyValueExpr:
		return useEscape, nil
	case *ast.BinaryExpr:
		return useNeutral, nil // v == nil etc.
	case *ast.AssignStmt:
		// Reassigned elsewhere or assigned onward: treat storing v
		// somewhere as escape; writing INTO v's variable is neutral.
		for _, rhs := range p.Rhs {
			if rhs == id {
				return useEscape, nil
			}
		}
		return useNeutral, nil
	case *ast.SendStmt:
		return useEscape, nil
	}
	// Inside a nested FuncLit? Then it is captured.
	for _, n := range stack {
		if _, ok := n.(*ast.FuncLit); ok {
			return useEscape, nil
		}
	}
	return useNeutral, nil
}

func nodeAbove(stack []ast.Node, k int) ast.Node {
	if len(stack) < k+1 {
		return nil
	}
	return stack[len(stack)-1-k]
}

// permittedReturns collects the return statements that sit inside an
// if-statement whose condition mentions the acquisition's err/ok
// variable: on those exits the view is nil and needs no release.
func permittedReturns(info *types.Info, fn *ast.FuncDecl, a acquisition) map[*ast.ReturnStmt]bool {
	out := map[*ast.ReturnStmt]bool{}
	if a.errObj == nil {
		return out
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		ifst, ok := n.(*ast.IfStmt)
		if !ok {
			return true
		}
		mentions := false
		ast.Inspect(ifst.Cond, func(c ast.Node) bool {
			if id, ok := c.(*ast.Ident); ok && info.Uses[id] == a.errObj {
				mentions = true
			}
			return true
		})
		if !mentions {
			return true
		}
		ast.Inspect(ifst.Body, func(b ast.Node) bool {
			if ret, ok := b.(*ast.ReturnStmt); ok {
				out[ret] = true
			}
			return true
		})
		return true
	})
	return out
}

// findLeak walks the CFG from the acquisition; it returns a node
// evidencing an exit reachable without a release (the return
// statement, or the acquisition itself when the exit is implicit), or
// nil when all paths release.
func findLeak(g *cfg.CFG, a acquisition, releases map[ast.Node]bool, permitted map[*ast.ReturnStmt]bool) ast.Node {
	// Locate the block and index holding the acquisition statement.
	startBlock, startIdx := -1, -1
	for i, b := range g.Blocks {
		for j, n := range b.Nodes {
			if n == a.assign {
				startBlock, startIdx = i, j
				break
			}
		}
	}
	if startBlock < 0 {
		return nil // unreachable code or CFG mismatch; do not guess
	}

	containsRelease := func(b *cfg.Block, from int) bool {
		for _, n := range b.Nodes[from:] {
			found := false
			ast.Inspect(n, func(c ast.Node) bool {
				if releases[c] {
					found = true
				}
				return true
			})
			if found {
				return true
			}
		}
		return false
	}

	type state struct{ block, idx int }
	seen := map[state]bool{}
	var stack []state
	push := func(s state) {
		if !seen[s] {
			seen[s] = true
			stack = append(stack, s)
		}
	}
	push(state{startBlock, startIdx + 1})
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		b := g.Blocks[s.block]
		if containsRelease(b, s.idx) {
			continue // this path is closed
		}
		if len(b.Succs) == 0 {
			// Function exit without release.
			if ret := b.Return(); ret != nil && permitted[ret] {
				continue // err-guard exit; view is nil here
			}
			if ret := b.Return(); ret != nil {
				return ret
			}
			return a.call
		}
		for _, succ := range b.Succs {
			push(state{int(succ.Index), 0})
		}
	}
	return nil
}
