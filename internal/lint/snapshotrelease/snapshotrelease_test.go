package snapshotrelease_test

import (
	"testing"

	"flordb/internal/lint/analysistest"
	"flordb/internal/lint/snapshotrelease"
)

func TestSnapshotRelease(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), snapshotrelease.Analyzer, "a")
}
