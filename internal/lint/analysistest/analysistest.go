// Package analysistest runs an analyzer over fixture packages and
// checks its diagnostics against `// want "regexp"` comments, with the
// same testdata layout and expectation syntax as
// golang.org/x/tools/go/analysis/analysistest. That package is not
// part of the x/tools subset the Go toolchain vendors (the only copy
// available offline), so this is a from-scratch reimplementation of
// the contract on top of go/parser + go/types + the source importer:
//
//	testdata/src/<pkg>/*.go   — fixture files, std-library imports only
//	x := f()                  // want `regexp matching the message`
//
// Each want expectation must be matched by exactly one diagnostic on
// its line, every diagnostic must match a want, and the analyzer's
// Requires closure (inspect, ctrlflow, ...) is executed first in
// dependency order, exactly as a real driver would.
//
// Limitations versus upstream: no suggested-fix checking, no
// cross-package facts (the florvet suite uses neither), and fixture
// packages import only the standard library.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strings"
	"testing"

	"golang.org/x/tools/go/analysis"
)

// TestData returns the absolute path of the calling test's testdata
// directory.
func TestData() string {
	_, file, _, ok := runtime.Caller(1)
	if !ok {
		panic("analysistest: cannot locate caller for TestData")
	}
	dir, err := filepath.Abs(filepath.Join(filepath.Dir(file), "testdata"))
	if err != nil {
		panic(err)
	}
	return dir
}

// Run analyzes each fixture package under dir/src and reports
// mismatches between diagnostics and want expectations on t.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	for _, pkg := range pkgs {
		runPkg(t, filepath.Join(dir, "src", pkg), pkg, a)
	}
}

type expectation struct {
	rx      *regexp.Regexp
	file    string
	line    int
	matched bool
}

func runPkg(t *testing.T, pkgDir, pkgPath string, a *analysis.Analyzer) {
	t.Helper()
	fset := token.NewFileSet()
	entries, err := os.ReadDir(pkgDir)
	if err != nil {
		t.Fatalf("%s: %v", pkgPath, err)
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(pkgDir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("%s: %v", pkgPath, err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		t.Fatalf("%s: no fixture files in %s", pkgPath, pkgDir)
	}

	info := &types.Info{
		Types:        make(map[ast.Expr]types.TypeAndValue),
		Defs:         make(map[*ast.Ident]types.Object),
		Uses:         make(map[*ast.Ident]types.Object),
		Implicits:    make(map[ast.Node]types.Object),
		Selections:   make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:       make(map[ast.Node]*types.Scope),
		Instances:    make(map[*ast.Ident]types.Instance),
		FileVersions: make(map[*ast.File]string),
	}
	conf := types.Config{
		Importer: importer.ForCompiler(fset, "source", nil),
		Error:    func(error) {}, // fixtures may hold deliberate oddities; collect what typechecks
	}
	pkg, err := conf.Check(pkgPath, fset, files, info)
	if err != nil {
		t.Fatalf("%s: typecheck: %v", pkgPath, err)
	}

	wants := collectWants(t, fset, files)

	var diags []analysis.Diagnostic
	pass := basePass(fset, files, pkg, info)
	pass.Report = func(d analysis.Diagnostic) { diags = append(diags, d) }
	if _, err := runWithRequires(pass, a); err != nil {
		t.Fatalf("%s: %s: %v", pkgPath, a.Name, err)
	}

	// Match diagnostics against expectations by (file, line).
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		matched := false
		for _, w := range wants {
			if w.matched || w.file != pos.Filename || w.line != pos.Line {
				continue
			}
			if w.rx.MatchString(d.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s:%d: unexpected diagnostic: %s", pos.Filename, pos.Line, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.rx)
		}
	}
}

// wantRE extracts quoted or backquoted expectation patterns after
// "want", e.g. `// want "released" "second"` or // want `regexp`.
var wantRE = regexp.MustCompile("`([^`]*)`|\"((?:[^\"\\\\]|\\\\.)*)\"")

func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				idx := strings.Index(text, "want ")
				if !strings.HasPrefix(text, "//") || idx < 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, m := range wantRE.FindAllStringSubmatch(text[idx+len("want "):], -1) {
					pat := m[1]
					if pat == "" {
						pat = m[2]
					}
					rx, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, pat, err)
					}
					wants = append(wants, &expectation{rx: rx, file: pos.Filename, line: pos.Line})
				}
			}
		}
	}
	sort.SliceStable(wants, func(i, j int) bool {
		if wants[i].file != wants[j].file {
			return wants[i].file < wants[j].file
		}
		return wants[i].line < wants[j].line
	})
	return wants
}

func basePass(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) *analysis.Pass {
	return &analysis.Pass{
		Fset:       fset,
		Files:      files,
		Pkg:        pkg,
		TypesInfo:  info,
		TypesSizes: types.SizesFor("gc", runtime.GOARCH),
		ResultOf:   make(map[*analysis.Analyzer]any),
		ImportObjectFact: func(obj types.Object, fact analysis.Fact) bool {
			return false
		},
		ExportObjectFact:  func(obj types.Object, fact analysis.Fact) {},
		ImportPackageFact: func(pkg *types.Package, fact analysis.Fact) bool { return false },
		ExportPackageFact: func(fact analysis.Fact) {},
		AllObjectFacts:    func() []analysis.ObjectFact { return nil },
		AllPackageFacts:   func() []analysis.PackageFact { return nil },
	}
}

// runWithRequires executes a's Requires closure in dependency order,
// then a itself, sharing one pass skeleton with per-analyzer Report
// and ResultOf wiring.
func runWithRequires(root *analysis.Pass, a *analysis.Analyzer) (any, error) {
	done := make(map[*analysis.Analyzer]bool)
	var exec func(an *analysis.Analyzer) error
	exec = func(an *analysis.Analyzer) error {
		if done[an] {
			return nil
		}
		for _, req := range an.Requires {
			if err := exec(req); err != nil {
				return err
			}
		}
		p := *root
		p.Analyzer = an
		if an != a {
			p.Report = func(analysis.Diagnostic) {} // dependencies stay silent
		}
		res, err := an.Run(&p)
		if err != nil {
			return fmt.Errorf("analyzer %s: %w", an.Name, err)
		}
		root.ResultOf[an] = res
		done[an] = true
		return nil
	}
	if err := exec(a); err != nil {
		return nil, err
	}
	return root.ResultOf[a], nil
}
