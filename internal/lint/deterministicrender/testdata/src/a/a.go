// Fixture for the deterministicrender analyzer: a range over a map
// whose body writes to a textual sink renders in randomized order. The
// clean idiom is collect keys, sort, range the slice.
package a

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

func badFprintf(w io.Writer, m map[string]int) {
	for k, v := range m { // want `map iterated in randomized order feeds rendered output`
		fmt.Fprintf(w, "%s=%d\n", k, v)
	}
}

func badBuilder(m map[string]int) string {
	var b strings.Builder
	for k := range m { // want `map iterated in randomized order feeds rendered output`
		b.WriteString(k)
	}
	return b.String()
}

func badWriteString(w io.Writer, m map[string]bool) {
	for k := range m { // want `map iterated in randomized order feeds rendered output`
		io.WriteString(w, k)
	}
}

func badEncoder(w io.Writer, m map[string]int) {
	enc := json.NewEncoder(w)
	for k, v := range m { // want `map iterated in randomized order feeds rendered output`
		enc.Encode(map[string]int{k: v})
	}
}

// goodSorted is the EXPLAIN renderer idiom: append (not a sink) inside
// the map range, sort, then render from the slice.
func goodSorted(m map[string]int) string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%s=%d\n", k, m[k])
	}
	return b.String()
}

// goodAggregate renders nothing inside the loop; order cannot show.
func goodAggregate(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// goodMarshalWholeMap: encoding/json sorts map keys itself, and the
// range here is over a slice of row IDs, not a map.
func goodMarshalWholeMap(w io.Writer, rows []int, m map[string]int) error {
	for range rows {
		if err := json.NewEncoder(w).Encode(m); err != nil {
			return err
		}
	}
	return nil
}
