package deterministicrender_test

import (
	"testing"

	"flordb/internal/lint/analysistest"
	"flordb/internal/lint/deterministicrender"
)

func TestDeterministicRender(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), deterministicrender.Analyzer, "a")
}
