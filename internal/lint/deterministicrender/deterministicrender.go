// Package deterministicrender defines an Analyzer that keeps rendered
// output — EXPLAIN plan text, web UI pages, CSV/JSON streams — stable
// across runs: a `range` over a map whose body writes directly to a
// textual sink iterates in randomized order, so the same plan or the
// same query result renders differently on every execution. Plan-cache
// keys, EXPLAIN-based tests, and diffable CI artifacts all depend on
// byte-stable rendering.
//
// A diagnostic fires when a range statement iterates a map value and
// its body (excluding nested function literals) calls a textual sink:
//
//   - fmt.Fprint / Fprintf / Fprintln,
//   - io.WriteString,
//   - any method named Write, WriteString, WriteByte, WriteRune
//     (strings.Builder, bytes.Buffer, bufio.Writer, http.ResponseWriter),
//   - any method named Encode (streaming JSON encoders).
//
// The correct idiom — collect keys, sort, range over the sorted slice —
// is untouched: appending to a slice inside the map range is not a
// sink, and the second loop ranges a slice. encoding/json's Marshal of
// a whole map is also fine (it sorts keys itself).
package deterministicrender

import (
	"go/ast"
	"go/types"

	"flordb/internal/lint/lintutil"
	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

const doc = "report range-over-map loops that write directly to rendered output"

// Analyzer is the deterministicrender analyzer.
var Analyzer = &analysis.Analyzer{
	Name:     "deterministicrender",
	Doc:      doc,
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

func init() { lintutil.AddExcludeFlag(Analyzer) }

var sinkMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"Encode": true,
}

var fmtSinks = map[string]bool{
	"Fprint": true, "Fprintf": true, "Fprintln": true,
}

func run(pass *analysis.Pass) (any, error) {
	if lintutil.Excluded(pass) {
		return nil, nil
	}
	rep := lintutil.NewReporter(pass)
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	ins.Preorder([]ast.Node{(*ast.RangeStmt)(nil)}, func(n ast.Node) {
		rng := n.(*ast.RangeStmt)
		tv, ok := pass.TypesInfo.Types[rng.X]
		if !ok {
			return
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return
		}
		if sink := findSink(pass.TypesInfo, rng.Body); sink != nil {
			rep.Reportf(rng.Pos(),
				"map iterated in randomized order feeds rendered output via %s; collect the keys, sort, and range the slice so the output is byte-stable",
				callDesc(sink))
		}
	})
	return nil, nil
}

// findSink returns the first textual-sink call in the loop body, not
// descending into nested function literals or nested range statements
// (a nested range gets its own diagnostic if it offends).
func findSink(info *types.Info, body *ast.BlockStmt) *ast.CallExpr {
	var found *ast.CallExpr
	ast.Inspect(body, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if isSink(info, call) {
			found = call
			return false
		}
		return true
	})
	return found
}

func isSink(info *types.Info, call *ast.CallExpr) bool {
	for name := range fmtSinks {
		if lintutil.IsPkgCall(info, call, "fmt", name) {
			return true
		}
	}
	if lintutil.IsPkgCall(info, call, "io", "WriteString") {
		return true
	}
	name := lintutil.MethodName(call)
	if !sinkMethods[name] {
		return false
	}
	// Methods only: a package-level Write would be a selector too, so
	// require a method receiver (non-package selector base).
	sel := call.Fun.(*ast.SelectorExpr)
	if id, ok := sel.X.(*ast.Ident); ok {
		if _, isPkg := info.Uses[id].(*types.PkgName); isPkg {
			return false
		}
	}
	return true
}

func callDesc(call *ast.CallExpr) string {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		return types.ExprString(sel)
	}
	return "a write"
}
