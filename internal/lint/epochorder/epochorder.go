// Package epochorder defines an Analyzer that enforces the MVCC
// publication order of DESIGN §8: within one function, the epoch
// advance that publishes a commit (AdvanceEpoch) must come strictly
// after the commit's durability point (WAL.AppendCommit). Advancing
// first would let committed-epoch snapshot readers observe rows whose
// commit record is not yet on disk — a crash in the window makes a
// state that was served to clients disappear on recovery.
//
// The rule is intraprocedural and fires only on functions that contain
// BOTH calls: from any AdvanceEpoch call site, no AppendCommit call may
// be reachable in the control-flow graph (same block later, or any
// reachable successor). Functions with only an AdvanceEpoch — recovery
// publishing recovered rows, tests advancing epochs directly — have no
// commit to order against and are not constrained.
package epochorder

import (
	"go/ast"

	"flordb/internal/lint/lintutil"
	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/ctrlflow"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
	"golang.org/x/tools/go/cfg"
)

const doc = "report epoch advances that can precede the commit's WAL fsync in the same function"

// Analyzer is the epochorder analyzer.
var Analyzer = &analysis.Analyzer{
	Name:     "epochorder",
	Doc:      doc,
	Requires: []*analysis.Analyzer{inspect.Analyzer, ctrlflow.Analyzer},
	Run:      run,
}

func init() { lintutil.AddExcludeFlag(Analyzer) }

func run(pass *analysis.Pass) (any, error) {
	if lintutil.Excluded(pass) {
		return nil, nil
	}
	rep := lintutil.NewReporter(pass)
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	cfgs := pass.ResultOf[ctrlflow.Analyzer].(*ctrlflow.CFGs)

	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		fn := n.(*ast.FuncDecl)
		if fn.Body == nil {
			return
		}
		if g := cfgs.FuncDecl(fn); g != nil {
			checkCFG(rep, g)
		}
	})
	return nil, nil
}

func checkCFG(rep *lintutil.Reporter, g *cfg.CFG) {
	// Collect, per block, the ordered positions of the two call kinds.
	type site struct {
		call     *ast.CallExpr
		isCommit bool // AppendCommit vs AdvanceEpoch
	}
	sites := make([][]site, len(g.Blocks))
	var haveAdvance, haveCommit bool
	for i, b := range g.Blocks {
		for _, n := range b.Nodes {
			ast.Inspect(n, func(n ast.Node) bool {
				if _, ok := n.(*ast.FuncLit); ok {
					return false
				}
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				switch lintutil.MethodName(call) {
				case "AdvanceEpoch":
					sites[i] = append(sites[i], site{call: call})
					haveAdvance = true
				case "AppendCommit":
					sites[i] = append(sites[i], site{call: call, isCommit: true})
					haveCommit = true
				}
				return true
			})
		}
	}
	if !haveAdvance || !haveCommit {
		return
	}

	// hasCommit[i]: block i contains an AppendCommit anywhere.
	// commitAhead[i]: an AppendCommit is reachable from the start of
	// block i along FORWARD edges only (succ.Index > block.Index). Loop
	// back edges are deliberately excluded: in `for { AppendCommit;
	// AdvanceEpoch }` the commit reached through the back edge belongs
	// to the NEXT transaction, and ordering across transactions is not
	// constrained — only the advance that publishes THIS commit must
	// follow its fsync.
	hasCommit := make([]bool, len(g.Blocks))
	for i := range g.Blocks {
		for _, s := range sites[i] {
			if s.isCommit {
				hasCommit[i] = true
			}
		}
	}
	commitAhead := make([]bool, len(g.Blocks))
	for i := len(g.Blocks) - 1; i >= 0; i-- {
		for _, succ := range g.Blocks[i].Succs {
			j := int(succ.Index)
			if j > i && (hasCommit[j] || commitAhead[j]) {
				commitAhead[i] = true
			}
		}
	}

	for i, b := range g.Blocks {
		for j, s := range sites[i] {
			if s.isCommit {
				continue
			}
			// A commit later in the same block?
			bad := false
			for _, later := range sites[i][j+1:] {
				if later.isCommit {
					bad = true
				}
			}
			// Or in any forward-reachable block?
			if !bad {
				for _, succ := range b.Succs {
					k := int(succ.Index)
					if k > i && (hasCommit[k] || commitAhead[k]) {
						bad = true
						break
					}
				}
			}
			if bad {
				rep.Reportf(s.call.Pos(),
					"AdvanceEpoch may run before this function's WAL.AppendCommit; readers could observe a commit the disk does not have (DESIGN §8: fsync, then publish)")
			}
		}
	}
}
