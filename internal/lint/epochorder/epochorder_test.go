package epochorder_test

import (
	"testing"

	"flordb/internal/lint/analysistest"
	"flordb/internal/lint/epochorder"
)

func TestEpochOrder(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), epochorder.Analyzer, "a")
}
