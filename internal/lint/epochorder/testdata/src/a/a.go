// Fixture for the epochorder analyzer: within one function, the epoch
// advance that publishes a commit must come after WAL.AppendCommit —
// fsync first, publish second (DESIGN §8).
package a

type DB struct{}

func (d *DB) AdvanceEpoch() int64 { return 0 }

type WAL struct{}

func (w *WAL) AppendCommit(rec any) error { return nil }

type sess struct {
	db  *DB
	wal *WAL
}

// goodCommit is the Session.Commit shape: durability point first, then
// the publish.
func goodCommit(s *sess) error {
	if err := s.wal.AppendCommit(nil); err != nil {
		return err
	}
	s.db.AdvanceEpoch()
	return nil
}

func badStraightLine(s *sess) error {
	s.db.AdvanceEpoch() // want `AdvanceEpoch may run before this function's WAL.AppendCommit`
	return s.wal.AppendCommit(nil)
}

func badBranch(s *sess, c bool) error {
	s.db.AdvanceEpoch() // want `AdvanceEpoch may run before this function's WAL.AppendCommit`
	if c {
		return nil
	}
	return s.wal.AppendCommit(nil)
}

func badPerIteration(s *sess, n int) error {
	for i := 0; i < n; i++ {
		s.db.AdvanceEpoch() // want `AdvanceEpoch may run before this function's WAL.AppendCommit`
		if err := s.wal.AppendCommit(nil); err != nil {
			return err
		}
	}
	return nil
}

// goodLoop commits then advances each iteration. The AppendCommit
// reachable through the loop back edge belongs to the NEXT transaction;
// ordering across transactions is not constrained.
func goodLoop(s *sess, n int) error {
	for i := 0; i < n; i++ {
		if err := s.wal.AppendCommit(nil); err != nil {
			return err
		}
		s.db.AdvanceEpoch()
	}
	return nil
}

// advanceOnly has no commit to order against — recovery publishing
// recovered rows does exactly this — so it is not constrained.
func advanceOnly(d *DB) int64 {
	return d.AdvanceEpoch()
}

// commitOnly is likewise unconstrained.
func commitOnly(w *WAL) error {
	return w.AppendCommit(nil)
}
