// Fixture for the lockfsync analyzer: no durability call (fsync,
// AppendCommit, Seal, os.Rename, syncDir) while a mutex locked in the
// same function may still be held. The clean cases are the
// unlock-before-fsync discipline of Session.Commit (DESIGN §8).
package a

import (
	"os"
	"sync"
)

type WAL struct{}

func (w *WAL) AppendCommit(rec any) error { return nil }

type file struct{}

func (f *file) Sync() error { return nil }

type sess struct {
	mu  sync.Mutex
	rw  sync.RWMutex
	wal *WAL
	f   *file
}

func badInline(s *sess) error {
	s.mu.Lock()
	err := s.wal.AppendCommit(nil) // want `durability call s.wal.AppendCommit while s.mu may still be held`
	s.mu.Unlock()
	return err
}

func badDefer(s *sess) error {
	s.mu.Lock()
	defer s.mu.Unlock() // deferred unlock runs at return: the body holds the lock
	return s.f.Sync()   // want `durability call s.f.Sync while s.mu may still be held`
}

func badRLock(s *sess) error {
	s.rw.RLock()
	defer s.rw.RUnlock()
	return os.Rename("a", "b") // want `durability call os.Rename while s.rw may still be held`
}

func badMayHold(s *sess, c bool) error {
	if c {
		s.mu.Lock()
	}
	err := s.f.Sync() // want `durability call s.f.Sync while s.mu may still be held`
	if c {
		s.mu.Unlock()
	}
	return err
}

// goodCommit is the Session.Commit shape: mutate state under the lock,
// release it, then reach the durability boundary.
func goodCommit(s *sess) error {
	s.mu.Lock()
	staged := 1
	_ = staged
	s.mu.Unlock()
	return s.wal.AppendCommit(nil)
}

func goodBranch(s *sess, c bool) error {
	s.mu.Lock()
	if c {
		s.mu.Unlock()
		return s.f.Sync() // unlocked on this path before the fsync
	}
	s.mu.Unlock()
	return nil
}

// callerLocked: the lock is acquired by the caller; intraprocedural
// analysis does not see it. The *Locked naming convention covers this.
func callerLocked(s *sess) error {
	return s.f.Sync()
}

// closureBody: the nested function literal gets its own CFG; the outer
// lock is not attributed to it, and its fsync is not attributed to the
// outer critical section.
func closureBody(s *sess) func() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return func() error { return s.f.Sync() }
}

// sanctioned holds the lock across the fsync on purpose — the fixture
// analogue of WAL.mu being the flush-serialization point — and says so
// with an ignore directive.
func sanctioned(s *sess) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	//florvet:ignore lockfsync this mutex IS the flush-serialization point
	return s.f.Sync()
}
