package lockfsync_test

import (
	"testing"

	"flordb/internal/lint/analysistest"
	"flordb/internal/lint/lockfsync"
)

func TestLockFsync(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), lockfsync.Analyzer, "a")
}
