// Package lockfsync defines an Analyzer that forbids durability calls —
// fsync, commit append, seal, directory sync, file rename — while a
// mutex locked in the same function may still be held. This is the
// group-commit ordering rule of DESIGN §8: Session.Commit deliberately
// releases s.mu before WAL.AppendCommit so that loggers on other
// goroutines are never stalled behind a disk flush and concurrent
// committers can coalesce into one fsync. Holding an engine mutex
// across an fsync turns a microsecond critical section into a
// millisecond one and serializes the whole serving path on the disk.
//
// The analysis is a forward may-hold dataflow over the function's CFG:
// m.Lock()/m.RLock() adds the mutex (identified by its expression text,
// e.g. "s.mu") to the held set, m.Unlock()/m.RUnlock() removes it, and
// `defer m.Unlock()` removes nothing — the deferred unlock runs at
// return, so the body holds the lock throughout. A durability call is
// reported when any path reaches it with a non-empty held set. Only
// locks acquired in the same function body are tracked; functions that
// are documented to run "locked" (the *Locked suffix idiom) are the
// caller's responsibility at the call site.
//
// The WAL's own append mutex is the documented exception: w.mu IS the
// flush-serialization point of group commit, so internal/storage
// annotates its two intentional hold-across-IO sites with
// //florvet:ignore comments rather than excluding the package.
package lockfsync

import (
	"go/ast"
	"go/types"

	"flordb/internal/lint/lintutil"
	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/ctrlflow"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
	"golang.org/x/tools/go/cfg"
)

const doc = "report fsync/rename/commit durability calls made while a mutex locked in the same function is held"

// Analyzer is the lockfsync analyzer.
var Analyzer = &analysis.Analyzer{
	Name:     "lockfsync",
	Doc:      doc,
	Requires: []*analysis.Analyzer{inspect.Analyzer, ctrlflow.Analyzer},
	Run:      run,
}

func init() { lintutil.AddExcludeFlag(Analyzer) }

func run(pass *analysis.Pass) (any, error) {
	if lintutil.Excluded(pass) {
		return nil, nil
	}
	rep := lintutil.NewReporter(pass)
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	cfgs := pass.ResultOf[ctrlflow.Analyzer].(*ctrlflow.CFGs)

	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil), (*ast.FuncLit)(nil)}, func(n ast.Node) {
		var g *cfg.CFG
		switch fn := n.(type) {
		case *ast.FuncDecl:
			if fn.Body == nil {
				return
			}
			g = cfgs.FuncDecl(fn)
		case *ast.FuncLit:
			g = cfgs.FuncLit(fn)
		}
		if g != nil {
			checkCFG(pass, rep, g)
		}
	})
	return nil, nil
}

// event is one lock-relevant occurrence inside a CFG block, in order.
type event struct {
	call *ast.CallExpr
	// For lock/unlock events, the mutex key ("s.mu"); for durability
	// events, "".
	mutex string
	kind  eventKind
}

type eventKind int

const (
	evLock eventKind = iota
	evUnlock
	evDurability
)

func checkCFG(pass *analysis.Pass, rep *lintutil.Reporter, g *cfg.CFG) {
	// Extract per-block event sequences once.
	events := make([][]event, len(g.Blocks))
	interesting := false
	for i, b := range g.Blocks {
		for _, n := range b.Nodes {
			ast.Inspect(n, func(n ast.Node) bool {
				// Nested function literals get their own CFG; don't
				// attribute their lock traffic to this function.
				if _, ok := n.(*ast.FuncLit); ok {
					return false
				}
				// Deferred calls run at return, not here: a deferred
				// Unlock releases nothing during the body (that is the
				// point of this analyzer), and a deferred durability
				// call is not reached at this program point.
				if _, ok := n.(*ast.DeferStmt); ok {
					return false
				}
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if ev, ok := classify(pass.TypesInfo, call); ok {
					events[i] = append(events[i], ev)
					interesting = true
				}
				return true
			})
		}
	}
	if !interesting {
		return
	}

	// Forward may-hold fixpoint: in[b] = union of out[pred]; a mutex is
	// "may held" at a durability call if any path locks it first.
	in := make([]map[string]bool, len(g.Blocks))
	out := make([]map[string]bool, len(g.Blocks))
	for i := range g.Blocks {
		in[i] = map[string]bool{}
		out[i] = map[string]bool{}
	}
	changed := true
	for changed {
		changed = false
		for i, b := range g.Blocks {
			held := copySet(in[i])
			for _, ev := range events[i] {
				switch ev.kind {
				case evLock:
					held[ev.mutex] = true
				case evUnlock:
					delete(held, ev.mutex)
				}
			}
			if !sameSet(out[i], held) {
				out[i] = held
				changed = true
			}
			for _, s := range b.Succs {
				for m := range held {
					if !in[s.Index][m] {
						in[s.Index][m] = true
						changed = true
					}
				}
			}
		}
	}

	// Report durability calls reached with a non-empty held set.
	for i := range g.Blocks {
		held := copySet(in[i])
		for _, ev := range events[i] {
			switch ev.kind {
			case evLock:
				held[ev.mutex] = true
			case evUnlock:
				delete(held, ev.mutex)
			case evDurability:
				if m := anyKey(held); m != "" {
					rep.Reportf(ev.call.Pos(),
						"durability call %s while %s may still be held; release the lock before the fsync boundary (group-commit ordering, DESIGN §8)",
						callName(ev.call), m)
				}
			}
		}
	}
}

// classify maps a call to a lock, unlock, or durability event.
func classify(info *types.Info, call *ast.CallExpr) (event, bool) {
	if name := durabilityName(info, call); name != "" {
		return event{call: call, kind: evDurability}, true
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return event{}, false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return event{}, false
	}
	key := types.ExprString(sel.X)
	switch fn.Name() {
	case "Lock", "RLock":
		return event{call: call, mutex: key, kind: evLock}, true
	case "Unlock", "RUnlock":
		return event{call: call, mutex: key, kind: evUnlock}, true
	}
	return event{}, false
}

// durabilityName mirrors walerrcheck's durability-call shapes.
func durabilityName(info *types.Info, call *ast.CallExpr) string {
	if lintutil.IsPkgCall(info, call, "os", "Rename") {
		return "os.Rename"
	}
	switch name := lintutil.MethodName(call); name {
	case "Sync":
		return "Sync"
	case "AppendCommit", "Seal":
		return name
	}
	if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "syncDir" {
		return "syncDir"
	}
	return ""
}

func callName(call *ast.CallExpr) string {
	switch f := call.Fun.(type) {
	case *ast.SelectorExpr:
		return types.ExprString(f)
	case *ast.Ident:
		return f.Name
	}
	return "call"
}

func copySet(s map[string]bool) map[string]bool {
	c := make(map[string]bool, len(s))
	for k := range s {
		c[k] = true
	}
	return c
}

func sameSet(a, b map[string]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

func anyKey(s map[string]bool) string {
	best := ""
	for k := range s {
		if best == "" || k < best {
			best = k
		}
	}
	return best
}
