// Package lint is florvet — FlorDB's custom go/analysis suite. Each
// subpackage encodes one hand-maintained engine invariant from DESIGN
// §7–§9 as a static check, so the invariants are enforced at every call
// site on every build instead of only at the sites the race detector
// and crash matrix happen to execute. DESIGN §10 maps each analyzer to
// the invariant it encodes and the dynamic check it complements.
//
// Run the suite with `make vet-custom`, which builds cmd/florvet and
// drives it through `go vet -vettool` over ./....
package lint

import (
	"golang.org/x/tools/go/analysis"

	"flordb/internal/lint/atomicfield"
	"flordb/internal/lint/deterministicrender"
	"flordb/internal/lint/epochorder"
	"flordb/internal/lint/lockfsync"
	"flordb/internal/lint/snapshotrelease"
	"flordb/internal/lint/walerrcheck"
)

// Analyzers returns the full florvet suite, in stable order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		atomicfield.Analyzer,
		deterministicrender.Analyzer,
		epochorder.Analyzer,
		lockfsync.Analyzer,
		snapshotrelease.Analyzer,
		walerrcheck.Analyzer,
	}
}
