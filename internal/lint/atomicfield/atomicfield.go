// Package atomicfield defines an Analyzer that enforces all-or-nothing
// atomicity on struct fields: once any code in a package accesses a
// field through sync/atomic (atomic.LoadInt64(&x.f), atomic.AddInt64,
// ...), every other read or write of that field must also go through
// sync/atomic. A plain load next to atomic stores is exactly the data
// race the PR 3 replay.Context.Tstamp fix closed — the race detector
// only catches it when a test happens to interleave the two, while the
// mixed access pattern is visible statically every time.
//
// Three access shapes are deliberately not flagged:
//
//   - &x.f passed to a sync/atomic function — that IS the atomic access;
//   - composite-literal initialization (Context{Tstamp: ts}) — the
//     struct is unpublished while it is being built;
//   - &x.f taken outside an atomic call — the pointer may feed atomic
//     accesses elsewhere (the Recorder hands &ctxCounter to Replayers
//     that atomic.Add through it); pointer flow is out of scope.
//
// The analysis is package-local: fields atomically accessed only from
// another package are not seen. FlorDB keeps each atomic field and its
// accessors in one package, so this bounds cost without losing sites.
package atomicfield

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"flordb/internal/lint/lintutil"
	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

const doc = "report plain reads/writes of struct fields that are accessed via sync/atomic elsewhere"

// Analyzer is the atomicfield analyzer.
var Analyzer = &analysis.Analyzer{
	Name:     "atomicfield",
	Doc:      doc,
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

func init() { lintutil.AddExcludeFlag(Analyzer) }

func run(pass *analysis.Pass) (any, error) {
	if lintutil.Excluded(pass) {
		return nil, nil
	}
	rep := lintutil.NewReporter(pass)
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	// Pass 1: find fields accessed through sync/atomic. (The &x.f operand
	// of the atomic call itself is invisible to pass 2, which skips every
	// address-taking of the field.)
	atomicFields := make(map[*types.Var]token.Pos) // field -> one atomic site (for the message)
	ins.Preorder([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node) {
		call := n.(*ast.CallExpr)
		if !isAtomicFn(pass.TypesInfo, call) || len(call.Args) == 0 {
			return
		}
		addr, ok := call.Args[0].(*ast.UnaryExpr)
		if !ok || addr.Op != token.AND {
			return
		}
		sel, ok := addr.X.(*ast.SelectorExpr)
		if !ok {
			return
		}
		field := fieldOf(pass.TypesInfo, sel)
		if field == nil {
			return
		}
		if _, seen := atomicFields[field]; !seen {
			atomicFields[field] = call.Pos()
		}
	})
	if len(atomicFields) == 0 {
		return nil, nil
	}

	// Pass 2: every other selection of those fields must not be a plain
	// read or write.
	ins.WithStack([]ast.Node{(*ast.SelectorExpr)(nil)}, func(n ast.Node, push bool, stack []ast.Node) bool {
		if !push {
			return true
		}
		sel := n.(*ast.SelectorExpr)
		field := fieldOf(pass.TypesInfo, sel)
		if field == nil {
			return true
		}
		atomicAt, isAtomic := atomicFields[field]
		if !isAtomic {
			return true
		}
		parent := stack[len(stack)-2]
		// Skip every address-taking: &x.f inside an atomic call is the
		// atomic access itself, and &x.f elsewhere is pointer sharing
		// whose downstream accesses this analyzer cannot track.
		if u, ok := parent.(*ast.UnaryExpr); ok && u.Op == token.AND {
			return true
		}
		kind := "read"
		if isWrite(parent, sel) {
			kind = "write"
		}
		at := pass.Fset.Position(atomicAt)
		rep.Reportf(sel.Pos(), "plain %s of field %s, which is accessed atomically at %s:%d; use sync/atomic consistently",
			kind, field.Name(), shortFile(at.Filename), at.Line)
		return true
	})
	return nil, nil
}

// isAtomicFn reports whether call invokes a pointer-taking sync/atomic
// package function (LoadInt64, StoreInt64, AddInt64, SwapInt64,
// CompareAndSwap*, ...).
func isAtomicFn(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return false
	}
	for _, prefix := range []string{"Load", "Store", "Add", "Swap", "CompareAndSwap", "And", "Or"} {
		if strings.HasPrefix(fn.Name(), prefix) {
			return true
		}
	}
	return false
}

// fieldOf resolves a selector to the struct field it selects, or nil.
func fieldOf(info *types.Info, sel *ast.SelectorExpr) *types.Var {
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	v, _ := s.Obj().(*types.Var)
	return v
}

// isWrite reports whether the selector is the target of an assignment
// or inc/dec statement.
func isWrite(parent ast.Node, sel *ast.SelectorExpr) bool {
	switch p := parent.(type) {
	case *ast.AssignStmt:
		for _, lhs := range p.Lhs {
			if lhs == sel {
				return true
			}
		}
	case *ast.IncDecStmt:
		return p.X == sel
	}
	return false
}

func shortFile(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}
