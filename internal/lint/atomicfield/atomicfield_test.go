package atomicfield_test

import (
	"testing"

	"flordb/internal/lint/analysistest"
	"flordb/internal/lint/atomicfield"
)

func TestAtomicField(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), atomicfield.Analyzer, "a")
}
