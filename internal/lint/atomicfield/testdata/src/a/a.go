// Fixture for the atomicfield analyzer: once a field is accessed via
// sync/atomic anywhere in the package, every plain read/write of it is
// a diagnosed data race. Mirrors the replay.Context.Tstamp shape: the
// accessor pair TstampNow/SetTstamp is the sanctioned idiom.
package a

import "sync/atomic"

// Context mirrors internal/replay.Context.
type Context struct {
	Tstamp int64
	other  int64
}

// TstampNow and SetTstamp are the atomic accessor pair: the &c.Tstamp
// operand of the atomic call is the atomic access itself, never flagged.
func (c *Context) TstampNow() int64   { return atomic.LoadInt64(&c.Tstamp) }
func (c *Context) SetTstamp(ts int64) { atomic.StoreInt64(&c.Tstamp, ts) }
func (c *Context) BumpTstamp() int64  { return atomic.AddInt64(&c.Tstamp, 1) }

func plainRead(c *Context) int64 {
	return c.Tstamp // want `plain read of field Tstamp, which is accessed atomically`
}

func plainWrite(c *Context) {
	c.Tstamp = 9 // want `plain write of field Tstamp, which is accessed atomically`
}

func plainIncrement(c *Context) {
	c.Tstamp++ // want `plain write of field Tstamp, which is accessed atomically`
}

// construct initializes the field in a composite literal: the struct is
// unpublished while being built, so this is not a racy access.
func construct(ts int64) *Context {
	return &Context{Tstamp: ts, other: 0}
}

// share takes the field's address outside an atomic call — the pointer
// may feed atomic accesses elsewhere (the recorder hands &ctxCounter to
// replayers that atomic.Add through it); pointer flow is out of scope.
func share(c *Context) *int64 {
	return &c.Tstamp
}

// otherField is never accessed atomically, so plain access is fine.
func otherField(c *Context) int64 {
	return c.other
}
