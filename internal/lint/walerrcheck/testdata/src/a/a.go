// Fixture for the walerrcheck analyzer: durability-call errors must
// never be discarded. Positive cases carry want comments; the rest are
// the correct idioms the analyzer must stay silent on.
package a

import "os"

// WAL mirrors the shape of internal/storage.WAL: the durability methods
// Append/AppendCommit/Flush/Seal/Truncate are recognized by method name
// on a type named WAL.
type WAL struct{}

func (w *WAL) Append(rec any) error       { return nil }
func (w *WAL) AppendCommit(rec any) error { return nil }
func (w *WAL) Flush() error               { return nil }
func (w *WAL) Seal() (int64, error)       { return 0, nil }
func (w *WAL) Truncate() error            { return nil }

type file struct{}

func (f *file) Sync() error { return nil }

func syncDir(dir string) error { _ = dir; return nil }

func discarded(w *WAL, f *file) {
	w.AppendCommit(nil) // want `error of durability call WAL.AppendCommit is discarded`
	f.Sync()            // want `error of durability call Sync is discarded`
	os.Rename("a", "b") // want `error of durability call os.Rename is discarded`
	syncDir(".")        // want `error of durability call syncDir is discarded`
	_ = w.Flush()       // want `error of durability call WAL.Flush is discarded`
	_, _ = w.Seal()     // want `error of durability call WAL.Seal is discarded`
	defer f.Sync()      // want `error of durability call Sync is discarded`
	go w.Truncate()     // want `error of durability call WAL.Truncate is discarded`
}

func handled(w *WAL, f *file) error {
	if err := w.AppendCommit(nil); err != nil {
		return err
	}
	if err := os.Rename("a", "b"); err != nil {
		return err
	}
	seq, err := w.Seal() // error captured alongside the value
	_ = seq
	if err != nil {
		return err
	}
	return f.Sync() // propagated to the caller
}

// slot captures the error into a deferred-error slot — the pattern of
// internal/sqlparse/eval.go's scratch-row fallback, where the batch
// path registers failures in *evalErr for the row loop to surface.
// Capturing into any non-blank destination counts as handled.
func slot(f *file, evalErr *error) func() {
	return func() {
		if err := f.Sync(); err != nil && *evalErr == nil {
			*evalErr = err
		}
	}
}

// buf has an Append method but is not a WAL, so its error is not a
// durability error and may be ignored (it is nonsense code, but not
// walerrcheck's nonsense).
type buf struct{}

func (b *buf) Append(x any) error { _ = x; return nil }

func notAWAL(b *buf) {
	b.Append(1) // Append on a non-WAL type: not a durability boundary
}
