// Package walerrcheck defines an Analyzer that forbids discarding the
// error of a durability call. The WAL's crash-ordering contract (DESIGN
// §7) only holds if every fsync, rename, truncate, and commit append
// either succeeds or surfaces its failure: a swallowed error turns "the
// commit point is durable" into "the commit point is probably durable",
// which the crash matrix cannot defend against.
//
// Durability calls are identified by shape, not by import path, so the
// analyzer works on any package (and on its own fixtures):
//
//   - os.Rename — the atomic-install step of snapshot tmp+rename and
//     WAL segment sealing;
//   - any method named Sync — (*os.File).Sync and friends;
//   - package-level functions named syncDir — the directory-fsync
//     helper idiom;
//   - methods named Append, AppendCommit, Flush, Seal, or Truncate on a
//     type named WAL.
//
// An error is "discarded" when the call is an expression statement, a
// go/defer statement, or an assignment that sends the error result to
// the blank identifier. Capturing the error into a variable or a
// deferred-error slot (the *error registration pattern used by
// internal/sqlparse's scratch-row fallback) counts as handled — deeper
// "was it checked" flow is staticcheck's job, not this analyzer's.
package walerrcheck

import (
	"go/ast"
	"go/types"

	"flordb/internal/lint/lintutil"
	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

const doc = "report discarded errors from WAL, fsync, and rename durability calls"

// Analyzer is the walerrcheck analyzer.
var Analyzer = &analysis.Analyzer{
	Name:     "walerrcheck",
	Doc:      doc,
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

func init() { lintutil.AddExcludeFlag(Analyzer) }

// walMethods are the durability methods of a type named WAL.
var walMethods = map[string]bool{
	"Append": true, "AppendCommit": true, "Flush": true, "Seal": true, "Truncate": true,
}

func run(pass *analysis.Pass) (any, error) {
	if lintutil.Excluded(pass) {
		return nil, nil
	}
	rep := lintutil.NewReporter(pass)
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	ins.WithStack([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node, push bool, stack []ast.Node) bool {
		if !push {
			return false
		}
		call := n.(*ast.CallExpr)
		what := durabilityCall(pass.TypesInfo, call)
		if what == "" {
			return true
		}
		errIdx, nres := errResult(pass.TypesInfo, call)
		if errIdx < 0 {
			return true
		}
		if parent := enclosing(stack); discards(parent, call, errIdx, nres) {
			rep.Reportf(call.Pos(), "error of durability call %s is discarded; a lost %s failure silently breaks the commit contract", what, what)
		}
		return true
	})
	return nil, nil
}

// durabilityCall classifies call, returning a short human name ("os.Rename",
// "Sync", "WAL.AppendCommit") or "" when the call is not a durability
// boundary.
func durabilityCall(info *types.Info, call *ast.CallExpr) string {
	if lintutil.IsPkgCall(info, call, "os", "Rename") {
		return "os.Rename"
	}
	name := lintutil.MethodName(call)
	switch {
	case name == "Sync":
		return "Sync"
	case walMethods[name] && lintutil.ReceiverTypeName(info, call) == "WAL":
		return "WAL." + name
	}
	if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "syncDir" {
		return "syncDir"
	}
	return ""
}

// errResult returns the index of the last result of type error in the
// call's signature and the total result count, or (-1, 0).
func errResult(info *types.Info, call *ast.CallExpr) (int, int) {
	tv, ok := info.Types[call.Fun]
	if !ok {
		return -1, 0
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return -1, 0
	}
	res := sig.Results()
	for i := res.Len() - 1; i >= 0; i-- {
		if named, ok := res.At(i).Type().(*types.Named); ok && named.Obj().Name() == "error" && named.Obj().Pkg() == nil {
			return i, res.Len()
		}
	}
	return -1, 0
}

// enclosing returns the innermost non-CallExpr ancestor of the call.
func enclosing(stack []ast.Node) ast.Node {
	if len(stack) < 2 {
		return nil
	}
	return stack[len(stack)-2]
}

// discards reports whether the statement containing the call throws the
// error result away.
func discards(parent ast.Node, call *ast.CallExpr, errIdx, nres int) bool {
	switch p := parent.(type) {
	case *ast.ExprStmt:
		return true
	case *ast.GoStmt:
		return p.Call == call
	case *ast.DeferStmt:
		return p.Call == call
	case *ast.AssignStmt:
		// Single call on the RHS: the LHS position of the error result
		// decides. Multi-value contexts other than that are treated as
		// captured.
		if len(p.Rhs) != 1 || p.Rhs[0] != call || errIdx >= len(p.Lhs) {
			return false
		}
		if nres != len(p.Lhs) {
			return false
		}
		id, ok := p.Lhs[errIdx].(*ast.Ident)
		return ok && id.Name == "_"
	}
	return false
}
