package walerrcheck_test

import (
	"testing"

	"flordb/internal/lint/analysistest"
	"flordb/internal/lint/walerrcheck"
)

func TestWalErrCheck(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), walerrcheck.Analyzer, "a")
}
