// Package lintutil holds the shared machinery of the florvet analyzer
// suite: per-package suppression via each analyzer's -exclude flag,
// per-site suppression via //florvet:ignore comments, and the common
// "skip generated and test files" policy.
//
// Every florvet analyzer reports through a Reporter so the three
// suppression layers behave identically across the suite:
//
//  1. -<analyzer>.exclude=path1,path2 (comma-separated package-path
//     prefixes) silences the analyzer for whole packages; the Makefile
//     and CI pass these for documented architectural exceptions.
//  2. A "//florvet:ignore <analyzer> <reason>" comment on the flagged
//     line, or on the line directly above it, silences one diagnostic.
//     The reason is mandatory by convention (reviewed, not enforced).
//  3. Diagnostics inside _test.go files are dropped: the invariants the
//     suite encodes protect production control flow, and test bodies
//     intentionally construct half-states (unreleased snapshots, torn
//     commits) to probe the engine.
package lintutil

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// IgnoreDirective is the comment prefix that suppresses one diagnostic.
const IgnoreDirective = "//florvet:ignore"

// AddExcludeFlag registers the standard -exclude flag on an analyzer.
// Call it from the analyzer's package init.
func AddExcludeFlag(a *analysis.Analyzer) {
	a.Flags.String("exclude", "", "comma-separated package path prefixes to skip")
}

// Excluded reports whether the pass's package matches the analyzer's
// -exclude flag and should be skipped entirely.
func Excluded(pass *analysis.Pass) bool {
	f := pass.Analyzer.Flags.Lookup("exclude")
	if f == nil {
		return false
	}
	for _, prefix := range strings.Split(f.Value.String(), ",") {
		prefix = strings.TrimSpace(prefix)
		if prefix != "" && strings.HasPrefix(pass.Pkg.Path(), prefix) {
			return true
		}
	}
	return false
}

// Reporter filters an analyzer's diagnostics through the suppression
// layers shared by the suite.
type Reporter struct {
	pass *analysis.Pass
	name string
	// ignores maps filename -> set of lines covered by an ignore
	// directive naming this analyzer (the directive's own line and the
	// line below it).
	ignores map[string]map[int]bool
}

// NewReporter scans the pass's files for ignore directives and returns
// a Reporter for the analyzer.
func NewReporter(pass *analysis.Pass) *Reporter {
	r := &Reporter{pass: pass, name: pass.Analyzer.Name, ignores: make(map[string]map[int]bool)}
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, IgnoreDirective)
				if !ok {
					continue
				}
				fields := strings.Fields(rest)
				if len(fields) == 0 || fields[0] != r.name {
					continue
				}
				pos := pass.Fset.Position(c.Pos())
				lines := r.ignores[pos.Filename]
				if lines == nil {
					lines = make(map[int]bool)
					r.ignores[pos.Filename] = lines
				}
				lines[pos.Line] = true
				lines[pos.Line+1] = true
			}
		}
	}
	return r
}

// Reportf emits a diagnostic unless the site is in a test file or
// covered by an ignore directive.
func (r *Reporter) Reportf(pos token.Pos, format string, args ...any) {
	p := r.pass.Fset.Position(pos)
	if strings.HasSuffix(p.Filename, "_test.go") {
		return
	}
	if lines, ok := r.ignores[p.Filename]; ok && lines[p.Line] {
		return
	}
	r.pass.Reportf(pos, format, args...)
}

// MethodName returns the selector name of a method/function call
// expression ("AppendCommit" for w.wal.AppendCommit(rec)), or "" when
// the callee is not a selector.
func MethodName(call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	return sel.Sel.Name
}

// IsPkgCall reports whether call invokes the package-level function
// pkgPath.name (e.g. "os".Rename).
func IsPkgCall(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	return fn.Pkg().Path() == pkgPath && fn.Name() == name
}

// ReceiverTypeName returns the name of the named type (or pointee of a
// pointer to it) that a method call's receiver has, or "".
func ReceiverTypeName(info *types.Info, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	tv, ok := info.Types[sel.X]
	if !ok {
		return ""
	}
	t := tv.Type
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	return named.Obj().Name()
}

// HasMethod reports whether type t (or *t) has a method with one of the
// given names; it returns the first matching name, or "".
func HasMethod(t types.Type, names ...string) string {
	for _, name := range names {
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		obj, _, _ := types.LookupFieldOrMethod(t, true, nil, name)
		if f, ok := obj.(*types.Func); ok && f != nil {
			return name
		}
	}
	return ""
}
