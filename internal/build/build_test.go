package build

import (
	"errors"
	"fmt"
	"reflect"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

// diamond is the C7 benchmark shape: src1 -> a -> {b, c} -> d(+src2) -> e.
const diamond = `
a: src1
	cmd
b: a
	cmd
c: a
	cmd
d: b c src2
	cmd
e: d
	cmd
`

func mustParse(t *testing.T, text string) *Makefile {
	t.Helper()
	mf, err := Parse(text)
	if err != nil {
		t.Fatal(err)
	}
	return mf
}

func TestParseRules(t *testing.T) {
	mf := mustParse(t, "# pipeline\nfeaturize: corpus featurize.flow\n\tflow featurize.flow\n\ntrain: featurize\n\tflow train.flow\n\techo done\n")
	if len(mf.Rules) != 2 {
		t.Fatalf("rules = %d", len(mf.Rules))
	}
	train, ok := mf.Rule("train")
	if !ok || !reflect.DeepEqual(train.Deps, []string{"featurize"}) {
		t.Fatalf("train = %+v", train)
	}
	if !reflect.DeepEqual(train.Cmds, []string{"flow train.flow", "echo done"}) {
		t.Fatalf("cmds = %v", train.Cmds)
	}
	if !reflect.DeepEqual(mf.Sources(), []string{"corpus", "featurize.flow"}) {
		t.Fatalf("sources = %v", mf.Sources())
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, text, want string
	}{
		{"space indent", "a: b\n  cmd\n", "tab"},
		{"space header", "  a: b\n\tcmd\n", "column 1"},
		{"recipe first", "\tcmd\n", "before first target"},
		{"duplicate", "a:\n\tcmd\na:\n\tcmd\n", "duplicate target"},
		{"no colon", "a\n\tcmd\n", "target: deps"},
		{"empty target", ": b\n\tcmd\n", "empty target"},
		{"multi target", "a b: c\n\tcmd\n", "one target"},
		{"double colon", "a:: b\n\tcmd\n", "unexpected ':'"},
		{"colon in deps", "a: b: c\n\tcmd\n", "unexpected ':'"},
		{"self cycle", "a: a\n\tcmd\n", "cycle"},
		{"long cycle", "a: b\n\tcmd\nb: c\n\tcmd\nc: a\n\tcmd\n", "cycle"},
	}
	for _, c := range cases {
		_, err := Parse(c.text)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want substring %q", c.name, err, c.want)
		}
	}
}

func TestCycleErrorNamesThePath(t *testing.T) {
	_, err := Parse("a: b\n\tcmd\nb: a\n\tcmd\n")
	if err == nil || !strings.Contains(err.Error(), "a -> b -> a") {
		t.Fatalf("err = %v", err)
	}
}

func TestParseBlankTabLine(t *testing.T) {
	// A whitespace-only line (even one starting with a tab) is blank, not a
	// recipe — including before the first rule.
	mf := mustParse(t, "\t\na: b\n\tcmd\n   \n")
	if len(mf.Rules) != 1 || len(mf.Rules[0].Cmds) != 1 {
		t.Fatalf("rules = %+v", mf.Rules)
	}
}

func TestRunUnknownGoal(t *testing.T) {
	mf := mustParse(t, diamond)
	r := NewRunner(mf, func(Rule) error { return nil }, 1)
	if err := r.Run("nope"); err == nil || !strings.Contains(err.Error(), "no rule") {
		t.Fatalf("err = %v", err)
	}
	// A rejected goal must not wipe the record of the last successful run.
	if err := r.Run("e"); err != nil {
		t.Fatal(err)
	}
	if err := r.Run("nope"); err == nil {
		t.Fatal("unknown goal accepted")
	}
	if len(r.Ran) != 5 {
		t.Fatalf("Ran wiped by failed Run: %v", r.Ran)
	}
	// A source goal is a no-op and likewise preserves the record.
	if err := r.Run("src1"); err != nil {
		t.Fatal(err)
	}
	if len(r.Ran) != 5 {
		t.Fatalf("Ran wiped by source-goal Run: %v", r.Ran)
	}
}

func TestTouchUnknownName(t *testing.T) {
	mf := mustParse(t, diamond)
	r := NewRunner(mf, func(Rule) error { return nil }, 1)
	if err := r.Touch("ghost"); err == nil || !strings.Contains(err.Error(), "unknown name") {
		t.Fatalf("err = %v", err)
	}
}

func TestSecondRunAllCached(t *testing.T) {
	mf := mustParse(t, diamond)
	r := NewRunner(mf, func(Rule) error { return nil }, 1)
	if err := r.Run("e"); err != nil {
		t.Fatal(err)
	}
	if want := []string{"a", "b", "c", "d", "e"}; !reflect.DeepEqual(r.Ran, want) {
		t.Fatalf("first run Ran = %v, want %v", r.Ran, want)
	}
	if len(r.Cached) != 0 {
		t.Fatalf("first run Cached = %v", r.Cached)
	}
	if err := r.Run("e"); err != nil {
		t.Fatal(err)
	}
	if len(r.Ran) != 0 {
		t.Fatalf("second run Ran = %v, want none", r.Ran)
	}
	if want := []string{"a", "b", "c", "d", "e"}; !reflect.DeepEqual(r.Cached, want) {
		t.Fatalf("second run Cached = %v, want %v", r.Cached, want)
	}
}

func TestDirtyLeafVsDirtyRoot(t *testing.T) {
	mf := mustParse(t, diamond)
	r := NewRunner(mf, func(Rule) error { return nil }, 1)
	if err := r.Run("e"); err != nil {
		t.Fatal(err)
	}

	// src2 feeds only d: exactly the d -> e subtree rebuilds.
	if err := r.Touch("src2"); err != nil {
		t.Fatal(err)
	}
	if err := r.Run("e"); err != nil {
		t.Fatal(err)
	}
	if want := []string{"d", "e"}; !reflect.DeepEqual(r.Ran, want) {
		t.Fatalf("dirty-leaf Ran = %v, want %v", r.Ran, want)
	}
	if want := []string{"a", "b", "c"}; !reflect.DeepEqual(r.Cached, want) {
		t.Fatalf("dirty-leaf Cached = %v, want %v", r.Cached, want)
	}

	// src1 feeds the root: everything rebuilds.
	if err := r.Touch("src1"); err != nil {
		t.Fatal(err)
	}
	if err := r.Run("e"); err != nil {
		t.Fatal(err)
	}
	if want := []string{"a", "b", "c", "d", "e"}; !reflect.DeepEqual(r.Ran, want) {
		t.Fatalf("dirty-root Ran = %v, want %v", r.Ran, want)
	}
	if len(r.Cached) != 0 {
		t.Fatalf("dirty-root Cached = %v", r.Cached)
	}
}

func TestRunPartialGoal(t *testing.T) {
	mf := mustParse(t, diamond)
	r := NewRunner(mf, func(Rule) error { return nil }, 1)
	if err := r.Run("b"); err != nil {
		t.Fatal(err)
	}
	if want := []string{"a", "b"}; !reflect.DeepEqual(r.Ran, want) {
		t.Fatalf("Ran = %v, want %v", r.Ran, want)
	}
	// c, d, e were not needed and stay dirty for the next full build.
	if err := r.Run("e"); err != nil {
		t.Fatal(err)
	}
	sort.Strings(r.Ran)
	if want := []string{"c", "d", "e"}; !reflect.DeepEqual(r.Ran, want) {
		t.Fatalf("Ran = %v, want %v", r.Ran, want)
	}
}

// TestParallelRunsEachTargetOnce drives a wide DAG with 4 workers under the
// race detector: every target must execute exactly once, and a target must
// never start before all of its dependencies finished.
func TestParallelRunsEachTargetOnce(t *testing.T) {
	var b strings.Builder
	b.WriteString("all:")
	for i := 0; i < 16; i++ {
		fmt.Fprintf(&b, " mid%d", i)
	}
	b.WriteString("\n\tcmd\n")
	for i := 0; i < 16; i++ {
		fmt.Fprintf(&b, "mid%d: base\n\tcmd\n", i)
	}
	b.WriteString("base: src\n\tcmd\n")
	mf := mustParse(t, b.String())

	var mu sync.Mutex
	counts := make(map[string]int)
	finished := make(map[string]bool)
	r := NewRunner(mf, nil, 4)
	r.exec = func(rule Rule) error {
		mu.Lock()
		defer mu.Unlock()
		counts[rule.Target]++
		for _, d := range rule.Deps {
			if _, isTarget := mf.Rule(d); isTarget && !finished[d] {
				return fmt.Errorf("%s started before dep %s finished", rule.Target, d)
			}
		}
		finished[rule.Target] = true
		return nil
	}
	if err := r.Run("all"); err != nil {
		t.Fatal(err)
	}
	if len(counts) != 18 {
		t.Fatalf("executed %d targets, want 18", len(counts))
	}
	for tgt, n := range counts {
		if n != 1 {
			t.Fatalf("%s executed %d times", tgt, n)
		}
	}
	if got := len(r.Ran); got != 18 {
		t.Fatalf("Ran = %d entries, want 18", got)
	}
}

// TestTouchDuringExecNotLost: a Touch landing while the target is executing
// means the exec saw stale inputs, so the target must stay dirty and re-run.
func TestTouchDuringExecNotLost(t *testing.T) {
	mf := mustParse(t, "a: src1\n\tcmd\n")
	r := NewRunner(mf, nil, 1)
	touched := false
	r.exec = func(rule Rule) error {
		if !touched {
			touched = true
			return r.Touch("src1") // src1 changes mid-build
		}
		return nil
	}
	if err := r.Run("a"); err != nil {
		t.Fatal(err)
	}
	if r.IsCached("a") {
		t.Fatal("mid-exec Touch was lost: a marked clean")
	}
	if err := r.Run("a"); err != nil {
		t.Fatal(err)
	}
	if want := []string{"a"}; !reflect.DeepEqual(r.Ran, want) {
		t.Fatalf("second run Ran = %v, want %v", r.Ran, want)
	}
	if !r.IsCached("a") {
		t.Fatal("a not clean after rebuild")
	}
}

// TestTouchDuringExecKeepsDependentsDirty: when a Touch lands mid-build, the
// targets that execute afterwards against a still-dirty dependency must not
// be marked clean, or they would be skipped (stale) on the next Run.
func TestTouchDuringExecKeepsDependentsDirty(t *testing.T) {
	mf := mustParse(t, "d: src1\n\tcmd\ne: d\n\tcmd\n")
	r := NewRunner(mf, nil, 1)
	touched := false
	r.exec = func(rule Rule) error {
		if rule.Target == "d" && !touched {
			touched = true
			return r.Touch("src1") // src1 changes while d builds
		}
		return nil
	}
	if err := r.Run("e"); err != nil {
		t.Fatal(err)
	}
	if r.IsCached("d") || r.IsCached("e") {
		t.Fatalf("stale targets marked clean: d cached=%v e cached=%v",
			r.IsCached("d"), r.IsCached("e"))
	}
	if err := r.Run("e"); err != nil {
		t.Fatal(err)
	}
	if want := []string{"d", "e"}; !reflect.DeepEqual(r.Ran, want) {
		t.Fatalf("second run Ran = %v, want %v", r.Ran, want)
	}
	if err := r.Run("e"); err != nil {
		t.Fatal(err)
	}
	if len(r.Ran) != 0 {
		t.Fatalf("third run Ran = %v, want none", r.Ran)
	}
}

func TestExecErrorAbortsAndStaysDirty(t *testing.T) {
	mf := mustParse(t, diamond)
	boom := errors.New("boom")
	var calls atomic.Int32
	r := NewRunner(mf, func(rule Rule) error {
		calls.Add(1)
		if rule.Target == "d" {
			return boom
		}
		return nil
	}, 2)
	err := r.Run("e")
	if !errors.Is(err, boom) || !strings.Contains(err.Error(), "d:") {
		t.Fatalf("err = %v", err)
	}
	if r.IsCached("d") || r.IsCached("e") {
		t.Fatal("failed target or its dependent marked cached")
	}
	// Retry with a fixed exec: only the unbuilt suffix runs.
	r.exec = func(Rule) error { return nil }
	if err := r.Run("e"); err != nil {
		t.Fatal(err)
	}
	if want := []string{"d", "e"}; !reflect.DeepEqual(r.Ran, want) {
		t.Fatalf("retry Ran = %v, want %v", r.Ran, want)
	}
}

func TestDepsVirtualTable(t *testing.T) {
	mf := mustParse(t, diamond)
	r := NewRunner(mf, func(Rule) error { return nil }, 1)
	vt := DepsVirtualTable(mf, r, "")
	if vt.Name() != "build_deps" {
		t.Fatalf("name = %q", vt.Name())
	}
	if got := DepsVirtualTable(mf, r, "ml_").Name(); got != "ml_build_deps" {
		t.Fatalf("prefixed name = %q", got)
	}
	rows := vt.Rows()
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	iTarget := vt.Schema().Index("target")
	iDeps := vt.Schema().Index("deps")
	iCached := vt.Schema().Index("cached")
	byTarget := make(map[string]string)
	for _, row := range rows {
		byTarget[row[iTarget].AsText()] = row[iDeps].AsText()
		if row[iCached].AsBool() {
			t.Fatalf("%s cached before any build", row[iTarget].AsText())
		}
	}
	if byTarget["d"] != "b,c,src2" {
		t.Fatalf("d deps = %q", byTarget["d"])
	}
	if err := r.Run("e"); err != nil {
		t.Fatal(err)
	}
	for _, row := range vt.Rows() {
		if !row[iCached].AsBool() {
			t.Fatalf("%s not cached after full build", row[iTarget].AsText())
		}
	}
}

func TestDataflow(t *testing.T) {
	mf := mustParse(t, diamond)
	out := Dataflow(mf)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("dataflow lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "a") || !strings.Contains(lines[0], "src1") {
		t.Fatalf("first line = %q", lines[0])
	}
	if !strings.Contains(out, "d <- b, c, src2") {
		t.Fatalf("dataflow:\n%s", out)
	}
}
