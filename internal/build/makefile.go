// Package build is FlorDB's incremental build subsystem: a Makefile-subset
// parser plus a parallel, caching runner over the rule DAG. The paper (§2,
// Figures 1–2) models the ML lifecycle as a Makefile-driven pipeline whose
// dependency graph is behavioral context, queryable as the `build_deps`
// virtual table; this package supplies that pipeline engine.
//
// The Makefile subset is rules of the form
//
//	target: dep1 dep2
//		command
//		command
//
// with #-comments and blank lines. Recipe lines must begin with a tab, each
// target may be defined once, and the dependency graph must be acyclic —
// violations are reported with line numbers at Parse time. Names that appear
// only as dependencies (corpus, src1, label_by_hand, …) are sources: inputs
// with no recipe, assumed to exist, dirtied via Runner.Touch.
package build

import (
	"fmt"
	"strings"
)

// Rule is one Makefile rule: a target, its dependencies, and its recipe.
type Rule struct {
	Target string
	Deps   []string
	Cmds   []string
	Line   int // 1-based line of the "target:" header, for error reporting
}

// Makefile is a parsed rule set. Rules keeps file order; lookup is by name.
type Makefile struct {
	Rules   []*Rule
	byName  map[string]*Rule
	sources []string // rule-less dependency names, in first-appearance order
}

// Rule returns the rule defining the named target, if any.
func (mf *Makefile) Rule(name string) (*Rule, bool) {
	r, ok := mf.byName[name]
	return r, ok
}

// Sources returns the rule-less dependency names in first-appearance order.
func (mf *Makefile) Sources() []string {
	return append([]string(nil), mf.sources...)
}

// Known reports whether name is a target or a source of this makefile.
func (mf *Makefile) Known(name string) bool {
	if _, ok := mf.byName[name]; ok {
		return true
	}
	for _, s := range mf.sources {
		if s == name {
			return true
		}
	}
	return false
}

// Parse parses the Makefile subset. It rejects recipes indented with spaces
// instead of a tab, recipes before the first target, duplicate targets,
// malformed rule headers, and dependency cycles, each with the offending
// line number.
func Parse(text string) (*Makefile, error) {
	mf := &Makefile{byName: make(map[string]*Rule)}
	var cur *Rule
	for i, line := range strings.Split(text, "\n") {
		ln := i + 1
		switch {
		case strings.TrimSpace(line) == "":
			// blank (possibly whitespace-only, even tab-led)
		case strings.HasPrefix(line, "\t"):
			if cur == nil {
				return nil, fmt.Errorf("build: line %d: recipe before first target", ln)
			}
			cur.Cmds = append(cur.Cmds, strings.TrimSpace(line))
		case strings.HasPrefix(strings.TrimSpace(line), "#"):
			// comment
		case line[0] == ' ':
			// "  a: b" is a mis-indented header; "  curl http://x" is a
			// recipe missing its tab — diagnose by the first token.
			if fields := strings.Fields(line); len(fields) > 0 && strings.Contains(fields[0], ":") {
				return nil, fmt.Errorf("build: line %d: rule header must start in column 1, not after spaces", ln)
			}
			return nil, fmt.Errorf("build: line %d: recipe must be indented with a tab, not spaces", ln)
		default:
			if idx := strings.Index(line, "#"); idx >= 0 {
				line = line[:idx]
			}
			target, deps, ok := strings.Cut(line, ":")
			if !ok {
				return nil, fmt.Errorf("build: line %d: expected \"target: deps\", got %q", ln, strings.TrimSpace(line))
			}
			if strings.Contains(deps, ":") {
				return nil, fmt.Errorf("build: line %d: unexpected ':' in dependency list %q", ln, strings.TrimSpace(deps))
			}
			target = strings.TrimSpace(target)
			if target == "" {
				return nil, fmt.Errorf("build: line %d: empty target name", ln)
			}
			if len(strings.Fields(target)) != 1 {
				return nil, fmt.Errorf("build: line %d: exactly one target per rule, got %q", ln, target)
			}
			if prev, dup := mf.byName[target]; dup {
				return nil, fmt.Errorf("build: line %d: duplicate target %q (first defined at line %d)", ln, target, prev.Line)
			}
			cur = &Rule{Target: target, Deps: strings.Fields(deps), Line: ln}
			mf.byName[target] = cur
			mf.Rules = append(mf.Rules, cur)
		}
	}
	seen := make(map[string]bool)
	for _, r := range mf.Rules {
		for _, d := range r.Deps {
			if _, isTarget := mf.byName[d]; !isTarget && !seen[d] {
				seen[d] = true
				mf.sources = append(mf.sources, d)
			}
		}
	}
	if cycle := findCycle(mf); cycle != nil {
		return nil, fmt.Errorf("build: line %d: dependency cycle: %s",
			mf.byName[cycle[0]].Line, strings.Join(cycle, " -> "))
	}
	return mf, nil
}

// findCycle runs a colored DFS over the rule graph and returns the first
// cycle found as a path (closed: first == last), or nil.
func findCycle(mf *Makefile) []string {
	const (
		white = 0 // unvisited
		gray  = 1 // on the current DFS path
		black = 2 // done
	)
	color := make(map[string]int, len(mf.Rules))
	var path []string
	var dfs func(name string) []string
	dfs = func(name string) []string {
		r, ok := mf.byName[name]
		if !ok { // source: no outgoing edges
			return nil
		}
		color[name] = gray
		path = append(path, name)
		for _, d := range r.Deps {
			switch color[d] {
			case gray:
				for j, p := range path {
					if p == d {
						return append(append([]string(nil), path[j:]...), d)
					}
				}
			case white:
				if c := dfs(d); c != nil {
					return c
				}
			}
		}
		path = path[:len(path)-1]
		color[name] = black
		return nil
	}
	for _, r := range mf.Rules {
		if color[r.Target] == white {
			if c := dfs(r.Target); c != nil {
				return c
			}
		}
	}
	return nil
}

// topoRules returns the rules reachable from the goals, dependencies before
// dependents. Order is deterministic: a DFS postorder that follows deps in
// declaration order. Rule-less sources are not listed.
func (mf *Makefile) topoRules(goals ...string) []*Rule {
	var order []*Rule
	done := make(map[string]bool)
	var dfs func(name string)
	dfs = func(name string) {
		if done[name] {
			return
		}
		done[name] = true
		r, ok := mf.byName[name]
		if !ok {
			return
		}
		for _, d := range r.Deps {
			dfs(d)
		}
		order = append(order, r)
	}
	for _, g := range goals {
		dfs(g)
	}
	return order
}

// Dataflow renders the makefile's DAG as text, one rule per line in
// dependency order ("target <- dep, dep"), the shape of Figure 2's pipeline
// diagram.
func Dataflow(mf *Makefile) string {
	goals := make([]string, len(mf.Rules))
	for i, r := range mf.Rules {
		goals[i] = r.Target
	}
	order := mf.topoRules(goals...)
	width := 0
	for _, r := range order {
		if len(r.Target) > width {
			width = len(r.Target)
		}
	}
	var b strings.Builder
	for _, r := range order {
		if len(r.Deps) == 0 {
			fmt.Fprintf(&b, "%-*s <- (nothing)\n", width, r.Target)
			continue
		}
		fmt.Fprintf(&b, "%-*s <- %s\n", width, r.Target, strings.Join(r.Deps, ", "))
	}
	return b.String()
}
