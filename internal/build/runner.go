package build

import (
	"fmt"
	"sort"
	"sync"
)

// Runner executes a Makefile's DAG incrementally: a worker pool walks the
// rules in topological order, re-running only dirty targets and skipping
// clean ones. Every target starts dirty (never built); a successful run
// marks it clean, and Touch dirties a node plus its transitive dependents,
// so a clean target always has clean dependencies.
type Runner struct {
	mf      *Makefile
	exec    func(Rule) error
	workers int

	mu         sync.Mutex
	dirty      map[string]bool
	gen        map[string]uint64   // bumped by Touch; guards lost updates
	dependents map[string][]string // dep -> targets whose rules name it

	// Ran and Cached record the last Run's executed and skipped targets,
	// in completion order (topological order when workers == 1). Read them
	// only after Run returns.
	Ran    []string
	Cached []string
}

// NewRunner builds a runner over mf. exec is invoked once per dirty target;
// workers bounds how many exec calls are in flight at once (min 1).
func NewRunner(mf *Makefile, exec func(Rule) error, workers int) *Runner {
	if workers < 1 {
		workers = 1
	}
	r := &Runner{
		mf:         mf,
		exec:       exec,
		workers:    workers,
		dirty:      make(map[string]bool, len(mf.Rules)),
		gen:        make(map[string]uint64, len(mf.Rules)),
		dependents: make(map[string][]string),
	}
	for _, rule := range mf.Rules {
		r.dirty[rule.Target] = true // never built
		for _, d := range rule.Deps {
			r.dependents[d] = append(r.dependents[d], rule.Target)
		}
	}
	return r
}

// Touch marks name dirty — a source changed on disk, or a target must be
// rebuilt — and transitively dirties every target that depends on it, so
// the next Run re-executes exactly the affected subtree.
func (r *Runner) Touch(name string) error {
	if !r.mf.Known(name) {
		return fmt.Errorf("build: touch: unknown name %q", name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	queue := []string{name}
	seen := map[string]bool{name: true}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		if _, isTarget := r.mf.byName[n]; isTarget {
			r.dirty[n] = true
			r.gen[n]++
		}
		for _, d := range r.dependents[n] {
			if !seen[d] {
				seen[d] = true
				queue = append(queue, d)
			}
		}
	}
	return nil
}

// IsCached reports whether the named target is clean (would be skipped).
func (r *Runner) IsCached(name string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, isTarget := r.mf.byName[name]; !isTarget {
		return false
	}
	return !r.dirty[name]
}

// Run brings goal up to date: the rules goal transitively depends on are
// walked dependencies-first by a pool of r.workers workers; dirty targets
// execute, clean ones are skipped. The first exec error aborts the walk
// (in-flight work drains) and the failed target stays dirty. Ran and
// Cached are reset and refilled whenever there are rules to walk; a
// rejected goal or a rule-less source goal leaves the previous record
// intact.
func (r *Runner) Run(goal string) error {
	if !r.mf.Known(goal) {
		return fmt.Errorf("build: no rule to make target %q", goal)
	}
	targets := r.mf.topoRules(goal)
	if len(targets) == 0 { // goal is a source: nothing to build
		return nil
	}
	r.mu.Lock()
	r.Ran, r.Cached = nil, nil
	r.mu.Unlock()

	topoIdx := make(map[string]int, len(targets))
	for i, t := range targets {
		topoIdx[t.Target] = i
	}
	pending := make(map[int]int, len(targets)) // unfinished in-plan deps
	blocks := make(map[int][]int)              // finished target -> unblocked
	var ready []int                            // topo indices, kept sorted
	for i, t := range targets {
		for _, d := range t.Deps {
			if j, inPlan := topoIdx[d]; inPlan {
				pending[i]++
				blocks[j] = append(blocks[j], i)
			}
		}
		if pending[i] == 0 {
			ready = append(ready, i) // ascending i: already sorted
		}
	}

	type result struct {
		idx int
		err error
	}
	results := make(chan result)
	inflight, done := 0, 0
	var firstErr error
	unblock := func(idx int) {
		for _, j := range blocks[idx] {
			pending[j]--
			if pending[j] == 0 {
				k := sort.SearchInts(ready, j)
				ready = append(ready[:k], append([]int{j}, ready[k:]...)...)
			}
		}
	}
	for done < len(targets) {
		for firstErr == nil && inflight < r.workers && len(ready) > 0 {
			idx := ready[0]
			ready = ready[1:]
			rule := targets[idx]
			if r.IsCached(rule.Target) {
				// Cache hit: resolve inline, no worker round trip.
				r.record(&r.Cached, rule.Target)
				done++
				unblock(idx)
				continue
			}
			inflight++
			r.mu.Lock()
			gen := r.gen[rule.Target]
			r.mu.Unlock()
			go func(rule *Rule, idx int, gen uint64) {
				err := r.exec(*rule)
				if err == nil {
					r.markClean(rule.Target, gen)
				}
				results <- result{idx, err}
			}(rule, idx, gen)
		}
		if done == len(targets) {
			break
		}
		if inflight == 0 {
			break // error set, or (impossibly) stalled
		}
		res := <-results
		inflight--
		done++
		if res.err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("build: %s: %w", targets[res.idx].Target, res.err)
			}
			continue
		}
		unblock(res.idx)
	}
	if firstErr != nil {
		return firstErr
	}
	if done < len(targets) {
		return fmt.Errorf("build: stalled after %d of %d targets", done, len(targets))
	}
	return nil
}

// markClean records the target in Ran and clears its dirty bit — unless a
// Touch landed after dispatch (generation mismatch), or a dependency was
// re-dirtied while this target executed: either way the exec saw stale
// inputs and the target must stay dirty for the next Run, preserving the
// invariant that a clean target has only clean dependencies.
func (r *Runner) markClean(name string, gen uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	clean := r.gen[name] == gen
	if clean {
		for _, d := range r.mf.byName[name].Deps {
			if r.dirty[d] {
				clean = false
				break
			}
		}
	}
	if clean {
		r.dirty[name] = false
	}
	r.Ran = append(r.Ran, name)
}

// record appends name to one of the Ran/Cached slices under the lock.
func (r *Runner) record(dst *[]string, name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	*dst = append(*dst, name)
}
