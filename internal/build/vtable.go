package build

import (
	"strings"

	"flordb/internal/record"
	"flordb/internal/relation"
)

// DepsVirtualTable exposes the makefile's DAG as the paper's `build_deps`
// relation (Figure 1): one row per rule with its target, comma-joined deps
// and recipe, and whether the target is currently cached (clean) in runner.
// prefix is prepended to the table name "build_deps", letting multiple
// makefiles register side by side; the vid column is NULL until a build is
// tied to a commit.
func DepsVirtualTable(mf *Makefile, runner *Runner, prefix string) relation.VirtualTable {
	return &relation.FuncVirtualTable{
		TableName:   prefix + "build_deps",
		TableSchema: record.BuildDepsSchema(),
		RowsFn: func() []relation.Row {
			rows := make([]relation.Row, 0, len(mf.Rules))
			for _, rule := range mf.Rules {
				cached := false
				if runner != nil {
					cached = runner.IsCached(rule.Target)
				}
				rows = append(rows, relation.Row{
					relation.Null(),
					relation.Text(rule.Target),
					relation.Text(strings.Join(rule.Deps, ",")),
					relation.Text(strings.Join(rule.Cmds, " && ")),
					relation.Bool(cached),
				})
			}
			return rows
		},
	}
}
