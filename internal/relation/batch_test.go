package relation

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// rowsEqual compares two row slices in order (values rendered with type).
func rowsEqual(t *testing.T, got, want []Row) {
	t.Helper()
	render := func(rows []Row) []string {
		out := make([]string, len(rows))
		for i, r := range rows {
			parts := make([]string, len(r))
			for j, v := range r {
				parts[j] = fmt.Sprintf("%d:%s", v.Type(), v.String())
			}
			out[i] = strings.Join(parts, "|")
		}
		return out
	}
	g, w := render(got), render(want)
	if len(g) != len(w) {
		t.Fatalf("row counts differ: got %d want %d", len(g), len(w))
	}
	for i := range g {
		if g[i] != w[i] {
			t.Fatalf("row %d differs:\ngot  %s\nwant %s", i, g[i], w[i])
		}
	}
}

// randomBatchTable builds a table with NULLs, duplicates, and tombstones
// spread across several epochs — the shapes batch scans must agree with the
// row scan on.
func randomBatchTable(t *testing.T, rng *rand.Rand, rows int) (*Database, *Table) {
	t.Helper()
	db := NewDatabase()
	tbl, err := db.CreateTable("m", MustSchema(
		Column{Name: "k", Type: TText},
		Column{Name: "n", Type: TInt},
		Column{Name: "v", Type: TFloat},
	))
	if err != nil {
		t.Fatal(err)
	}
	var ids []RowID
	for i := 0; i < rows; i++ {
		k := Null()
		if rng.Intn(8) > 0 {
			k = Text(fmt.Sprintf("k%d", rng.Intn(5)))
		}
		v := Null()
		if rng.Intn(8) > 0 {
			v = Float(float64(rng.Intn(100)) / 10)
		}
		id, err := tbl.Insert(Row{k, Int(int64(rng.Intn(50))), v})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
		if rng.Intn(20) == 0 {
			db.AdvanceEpoch()
		}
	}
	for _, id := range ids {
		if rng.Intn(8) == 0 {
			tbl.Delete(id)
		}
	}
	db.AdvanceEpoch()
	return db, tbl
}

func collectBatches(t *testing.T, it BatchIterator) []Row {
	t.Helper()
	return Collect(NewRowsFromBatches(it))
}

func TestBatchScanMatchesRowScan(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for _, n := range []int{0, 1, 7, 100, 3000} {
		db, tbl := randomBatchTable(t, rng, n)
		// Latest visibility, with a batch size that forces partial chunks.
		got := collectBatches(t, NewBatchScan(tbl, nil, 64))
		rowsEqual(t, got, tbl.Rows())
		// Snapshot visibility: pinned views must agree with snapshot Rows.
		snap := db.Snapshot()
		sv, _ := snap.Table("m")
		got = collectBatches(t, NewBatchScan(sv, nil, 64))
		rowsEqual(t, got, sv.Rows())
	}
}

func TestBatchScanMidEpochSnapshotExcludesInFlightRows(t *testing.T) {
	db, _ := randomBatchTable(t, rand.New(rand.NewSource(5)), 200)
	tbl, _ := db.Table("m")
	snap := db.Snapshot()
	sv, _ := snap.Table("m")
	want := sv.Rows()
	// Uncommitted writes after the pin must stay invisible to the pinned
	// batch scan even though they are in the shared row store.
	for i := 0; i < 50; i++ {
		if _, err := tbl.Insert(Row{Text("late"), Int(int64(i)), Float(1)}); err != nil {
			t.Fatal(err)
		}
	}
	rowsEqual(t, collectBatches(t, NewBatchScan(sv, nil, 64)), want)
}

func TestBatchScanColumnPruning(t *testing.T) {
	_, tbl := randomBatchTable(t, rand.New(rand.NewSource(6)), 300)
	sc := NewBatchScan(tbl, []int{0, 2}, 128)
	total := 0
	for {
		b, ok := sc.NextBatch()
		if !ok {
			break
		}
		if b.Cols[1] != nil {
			t.Fatal("pruned column 1 was materialized")
		}
		if len(b.Cols[0]) != b.Size() || len(b.Cols[2]) != b.Size() {
			t.Fatalf("needed columns not fully materialized: %d/%d of %d",
				len(b.Cols[0]), len(b.Cols[2]), b.Size())
		}
		total += b.Len()
	}
	if total != tbl.Len() {
		t.Fatalf("selected %d rows, table has %d live", total, tbl.Len())
	}
}

func TestBatchAdaptersRoundtrip(t *testing.T) {
	_, tbl := randomBatchTable(t, rand.New(rand.NewSource(7)), 500)
	want := tbl.Rows()
	got := Collect(NewRowsFromBatches(NewBatchFromRows(NewSliceScan(tbl.Schema(), want), 33)))
	rowsEqual(t, got, want)
}

func TestBatchFilterMatchesRowFilter(t *testing.T) {
	_, tbl := randomBatchTable(t, rand.New(rand.NewSource(8)), 1000)
	lit := Float(5)
	pred := func(r Row) bool { return !r[2].IsNull() && Compare(r[2], lit) > 0 }
	want := Collect(NewFilter(NewScan(tbl), pred))
	got := collectBatches(t, NewBatchFilter(NewBatchScan(tbl, nil, 100), func(b *Batch) {
		sel := b.Sel[:0]
		for _, i := range b.Sel {
			v := &b.Cols[2][i]
			if !v.IsNull() && ComparePtr(v, &lit) > 0 {
				sel = append(sel, i)
			}
		}
		b.Sel = sel
	}))
	rowsEqual(t, got, want)
}

func batchProjectExprs() []BatchProjExpr {
	return []BatchProjExpr{
		PassThrough("k", TText, 0),
		{Name: "doubled", Type: TFloat, NeedCols: []int{2}, Eval: func(r Row) Value {
			if r[2].IsNull() {
				return Null()
			}
			return Float(r[2].AsFloat() * 2)
		}},
		{Name: "nk", Type: TText, NeedCols: []int{0, 1}, Eval: func(r Row) Value {
			if r[0].IsNull() {
				return Null()
			}
			return Text(fmt.Sprintf("%s#%d", r[0].AsText(), r[1].AsInt()))
		}},
	}
}

func TestBatchProjectMatchesRowProject(t *testing.T) {
	_, tbl := randomBatchTable(t, rand.New(rand.NewSource(9)), 1200)
	exprs := batchProjectExprs()
	rp, err := NewProject(NewScan(tbl), RowProjExprs(exprs))
	if err != nil {
		t.Fatal(err)
	}
	bp, err := NewBatchProject(NewBatchScan(tbl, nil, 77), exprs)
	if err != nil {
		t.Fatal(err)
	}
	rowsEqual(t, collectBatches(t, bp), Collect(rp))
}

func TestBatchGroupMatchesRowGroup(t *testing.T) {
	_, tbl := randomBatchTable(t, rand.New(rand.NewSource(10)), 2000)
	groupBy := []string{"k"}
	aggs := []AggSpec{
		{Kind: AggCountStar, As: "cnt"},
		{Kind: AggCount, Col: "v", As: "cv"},
		{Kind: AggSum, Col: "v", As: "sv"},
		{Kind: AggAvg, Col: "v", As: "av"},
		{Kind: AggMin, Col: "v", As: "mn"},
		{Kind: AggMax, Col: "n", As: "mx"},
	}
	rg, err := NewGroup(NewScan(tbl), groupBy, aggs)
	if err != nil {
		t.Fatal(err)
	}
	bg, err := NewBatchGroup(NewBatchScan(tbl, nil, 128), groupBy, aggs)
	if err != nil {
		t.Fatal(err)
	}
	// Both paths emit groups in first-seen order over the same input order,
	// so the comparison is exact, not just multiset.
	rowsEqual(t, Collect(bg), Collect(rg))
}

func TestBatchGroupGlobalAggregateOverEmptyInput(t *testing.T) {
	db := NewDatabase()
	tbl, err := db.CreateTable("e", MustSchema(Column{Name: "x", Type: TInt}))
	if err != nil {
		t.Fatal(err)
	}
	aggs := []AggSpec{{Kind: AggCountStar, As: "n"}, {Kind: AggSum, Col: "x", As: "s"}}
	rg, _ := NewGroup(NewScan(tbl), nil, aggs)
	want := Collect(rg)
	bg, _ := NewBatchGroup(NewBatchScan(tbl, nil, 0), nil, aggs)
	rowsEqual(t, Collect(bg), want)
	// Adapter-fed empty batch stream behaves the same.
	bg2, err := NewBatchGroup(NewBatchFromRows(NewScan(tbl), 16), nil, aggs)
	if err != nil {
		t.Fatal(err)
	}
	rowsEqual(t, Collect(bg2), want)
}

func TestBatchHashJoinMatchesRowHashJoin(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	db, left := randomBatchTable(t, rng, 800)
	right, err := db.CreateTable("r", MustSchema(
		Column{Name: "n", Type: TInt},
		Column{Name: "tag", Type: TText},
	))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 60; i++ {
		n := Null()
		if rng.Intn(10) > 0 {
			n = Int(int64(rng.Intn(50)))
		}
		if _, err := right.Insert(Row{n, Text(fmt.Sprintf("t%d", i))}); err != nil {
			t.Fatal(err)
		}
	}
	schema, err := Concat(left.Schema(), right.Schema(), "r")
	if err != nil {
		t.Fatal(err)
	}
	for _, buildLeft := range []bool{false, true} {
		rj, err := NewHashJoinBuildSide(NewScan(left), NewScan(right), []string{"n"}, []string{"n"}, "r", buildLeft)
		if err != nil {
			t.Fatal(err)
		}
		want := Collect(rj)
		var bj *BatchHashJoinOp
		if buildLeft {
			// Probe side is the right table.
			bj, err = NewBatchHashJoin(NewBatchScan(right, nil, 97), NewScan(left), []int{0}, []int{1}, schema, true)
		} else {
			bj, err = NewBatchHashJoin(NewBatchScan(left, nil, 97), NewScan(right), []int{1}, []int{0}, schema, false)
		}
		if err != nil {
			t.Fatal(err)
		}
		got := collectBatches(t, bj)
		// The row join streams probe-side order; the batch join does too.
		rowsEqual(t, got, want)
		if len(want) == 0 {
			t.Fatal("join produced no rows; weak test data")
		}
	}
}
