package relation

import "fmt"

// Batch execution. A Batch is a fixed-size, column-oriented chunk of rows
// with a selection vector: operators process whole batches instead of one
// row at a time, which amortizes interface dispatch, eliminates per-row
// output allocation, and lets predicates run as tight loops over column
// slices. MVCC visibility composes for free: a batch scan materializes a
// contiguous chunk of the append-only row store and records only the rows
// visible at the pinned epoch in the selection vector, so every downstream
// operator inherits snapshot semantics by honoring Sel.
//
// Ownership contract: a Batch returned by NextBatch — its column slices and
// its selection vector — is valid only until the next NextBatch call on the
// same iterator. Producers reuse buffers across batches; consumers that
// retain values must copy them (RowsFromBatches does). Consumers may compact
// Sel of a batch they received in place; they must not mutate column values.

// DefaultBatchSize is the number of rows a batch-producing operator packs
// per chunk. 1024 rows keeps a handful of column slices L2-resident while
// amortizing per-batch overhead to noise.
const DefaultBatchSize = 1024

// Batch is one column-oriented chunk of rows.
type Batch struct {
	// Cols holds one value slice per schema column, each of physical length
	// n. A column a batch scan was told to prune is nil; downstream
	// operators never read pruned columns.
	Cols [][]Value
	// Sel is the selection vector: the physical row indices (ascending,
	// each in [0, n)) that are live in this batch. Filters compact it.
	Sel []int

	n      int // physical rows materialized in each non-nil column
	schema *Schema
}

// NewBatch allocates a batch with capacity for size rows of the schema, all
// columns materialized, empty selection. Operators that build batches from
// scratch (adapters, joins) use it and reuse the buffers across calls.
func NewBatch(schema *Schema, size int) *Batch {
	b := &Batch{schema: schema, Cols: make([][]Value, schema.Len())}
	for i := range b.Cols {
		b.Cols[i] = make([]Value, 0, size)
	}
	b.Sel = make([]int, 0, size)
	return b
}

// Schema returns the schema the columns are laid out by.
func (b *Batch) Schema() *Schema { return b.schema }

// Len returns the number of selected (live) rows.
func (b *Batch) Len() int { return len(b.Sel) }

// Size returns the physical row count materialized in each column.
func (b *Batch) Size() int { return b.n }

// reset truncates the batch for refilling.
func (b *Batch) reset() {
	for i := range b.Cols {
		if b.Cols[i] != nil {
			b.Cols[i] = b.Cols[i][:0]
		}
	}
	b.Sel = b.Sel[:0]
	b.n = 0
}

// row copies physical row i into dst (allocated when nil or short).
func (b *Batch) row(i int, dst Row) Row {
	if cap(dst) < len(b.Cols) {
		dst = make(Row, len(b.Cols))
	}
	dst = dst[:len(b.Cols)]
	for j, col := range b.Cols {
		if col == nil {
			dst[j] = Value{}
			continue
		}
		dst[j] = col[i]
	}
	return dst
}

// BatchIterator is the batch-at-a-time operator interface, the vectorized
// sibling of Iterator. NextBatch returns the next non-empty batch or
// (nil, false) at end of stream.
type BatchIterator interface {
	Schema() *Schema
	NextBatch() (*Batch, bool)
}

// ---------- Row <-> batch adapters ----------

// RowsFromBatchesOp adapts a BatchIterator into a row Iterator at a
// pipeline boundary (sort, distinct, limit, final materialization). Each
// emitted row is freshly allocated, since batch buffers are reused.
type RowsFromBatchesOp struct {
	in  BatchIterator
	cur *Batch
	i   int // next position within cur.Sel
}

// NewRowsFromBatches wraps a batch stream as a row stream.
func NewRowsFromBatches(in BatchIterator) *RowsFromBatchesOp {
	return &RowsFromBatchesOp{in: in}
}

// Schema implements Iterator.
func (r *RowsFromBatchesOp) Schema() *Schema { return r.in.Schema() }

// Next implements Iterator.
func (r *RowsFromBatchesOp) Next() (Row, bool) {
	for {
		if r.cur != nil && r.i < len(r.cur.Sel) {
			row := r.cur.row(r.cur.Sel[r.i], nil)
			r.i++
			return row, true
		}
		b, ok := r.in.NextBatch()
		if !ok {
			return nil, false
		}
		r.cur, r.i = b, 0
	}
}

// BatchFromRowsOp adapts a row Iterator into a BatchIterator by packing up
// to size rows per batch with an identity selection vector. It lets batch
// operators run over row-producing sources (index paths, virtual tables)
// and gives equivalence tests a way to feed identical inputs to both paths.
type BatchFromRowsOp struct {
	in    Iterator
	batch *Batch
	size  int
}

// NewBatchFromRows wraps a row stream as a batch stream.
func NewBatchFromRows(in Iterator, size int) *BatchFromRowsOp {
	if size <= 0 {
		size = DefaultBatchSize
	}
	return &BatchFromRowsOp{in: in, batch: NewBatch(in.Schema(), size), size: size}
}

// Schema implements BatchIterator.
func (a *BatchFromRowsOp) Schema() *Schema { return a.in.Schema() }

// NextBatch implements BatchIterator.
func (a *BatchFromRowsOp) NextBatch() (*Batch, bool) {
	b := a.batch
	b.reset()
	for b.n < a.size {
		r, ok := a.in.Next()
		if !ok {
			break
		}
		for j := range b.Cols {
			b.Cols[j] = append(b.Cols[j], r[j])
		}
		b.Sel = append(b.Sel, b.n)
		b.n++
	}
	if b.n == 0 {
		return nil, false
	}
	return b, true
}

// ---------- Batch scan ----------

// batchStater is the internal surface batch scans pin table state through:
// both Table (latest visibility) and TableSnapshot (epoch visibility)
// expose their published state and the epoch to filter it at.
type batchStater interface {
	batchState() (*tableState, int64)
}

// BatchScanOp scans a table's row store in contiguous chunks, transposing
// each chunk into column slices and recording the epoch-visible rows in the
// selection vector. Like ScanOp, state resolves lazily on the first
// NextBatch, so building a plan (EXPLAIN) costs nothing. Column pruning:
// when needed is non-nil, only those columns are materialized.
type BatchScanOp struct {
	src      TableReader
	schema   *Schema
	needed   []int // nil = all columns
	size     int
	batch    *Batch
	cols     []int // resolved column positions to materialize
	identity []int // pristine 0..size-1, copied into Sel (filters compact Sel in place)
	resolved bool

	// Direct row-store walk (Table / TableSnapshot).
	st    *tableState
	epoch int64
	base  int
	hi    int // exclusive scan bound; -1 = whole store (see SetRange)

	// Zone-map pruning (nil = none): zoneFilter decides page skips, zones
	// holds the table's cached page zones, resolved lazily with the state.
	zoneFilter ZoneFilter
	zones      []PageZone

	// Fallback for readers without a published state.
	rows []Row
}

// NewBatchScan returns a batch scan over a table read surface. needed lists
// the schema positions to materialize (nil for all); size <= 0 selects
// DefaultBatchSize.
func NewBatchScan(t TableReader, needed []int, size int) *BatchScanOp {
	if size <= 0 {
		size = DefaultBatchSize
	}
	return &BatchScanOp{src: t, schema: t.Schema(), needed: needed, size: size, hi: -1}
}

// Schema implements BatchIterator.
func (s *BatchScanOp) Schema() *Schema { return s.schema }

// SetZoneFilter arms zone-map pruning: pages whose zones satisfy f are
// skipped without transposing. Must be called before the first NextBatch.
func (s *BatchScanOp) SetZoneFilter(f ZoneFilter) { s.zoneFilter = f }

// SetRange restricts the scan to row-store positions [lo, hi) and rewinds
// the cursor, so one scan operator (and the pipeline compiled on top of it)
// can be re-armed per morsel by a parallel worker. Bounds are clamped to the
// store at read time; page-aligned bounds keep zone pruning exact.
func (s *BatchScanOp) SetRange(lo, hi int) {
	s.base, s.hi = lo, hi
}

// StoreLen resolves the scan's backing state and returns the physical
// row-store length the scan walks — including versions invisible at the
// pinned epoch, unlike TableReader.Len. Parallel executors use it to carve
// the store into page-aligned morsels: the store is append-only, so any
// range valid against one worker's resolved state is valid against all.
func (s *BatchScanOp) StoreLen() int {
	if !s.resolved {
		s.resolve()
	}
	if s.st != nil {
		return len(s.st.rows)
	}
	return len(s.rows)
}

func (s *BatchScanOp) resolve() {
	s.resolved = true
	s.batch = &Batch{schema: s.schema, Cols: make([][]Value, s.schema.Len())}
	s.cols = s.needed
	if s.cols == nil {
		s.cols = make([]int, s.schema.Len())
		for i := range s.cols {
			s.cols[i] = i
		}
	}
	for _, c := range s.cols {
		s.batch.Cols[c] = make([]Value, s.size)
	}
	s.batch.Sel = make([]int, s.size)
	s.identity = make([]int, s.size)
	for i := range s.identity {
		s.identity[i] = i
	}
	if bp, ok := s.src.(batchStater); ok {
		s.st, s.epoch = bp.batchState()
		if s.zoneFilter != nil {
			if zt, ok := s.src.(zoneTabler); ok {
				if t := zt.zoneTable(); t != nil {
					s.zones = t.zonePages(s.st)
				}
			}
		}
		return
	}
	s.rows = s.src.Rows() // already visibility-filtered
}

// NextBatch implements BatchIterator.
func (s *BatchScanOp) NextBatch() (*Batch, bool) {
	if !s.resolved {
		s.resolve()
	}
	var store []Row
	if s.st != nil {
		store = s.st.rows
	} else {
		store = s.rows
	}
	limit := len(store)
	if s.hi >= 0 && s.hi < limit {
		limit = s.hi
	}
	for {
		if s.base >= limit {
			return nil, false
		}
		end := s.base + s.size
		if end > limit {
			end = limit
		}
		n := end - s.base
		// Zone pruning: when the chunk is exactly one complete page, its
		// cached zone can rule the whole page out — born after the pinned
		// epoch, or outside the predicate's value bounds — before a single
		// value is read. Conservative by construction (zonemap.go).
		if s.zones != nil && s.base%ZonePageRows == 0 && n == ZonePageRows {
			if p := s.base / ZonePageRows; p < len(s.zones) {
				z := &s.zones[p]
				if z.MinBorn > s.epoch || (s.zoneFilter != nil && s.zoneFilter(z)) {
					zonePagesPruned.Add(1)
					s.base = end
					continue
				}
			}
		}
		b := s.batch
		// Selection first: row i is selected iff row store entry base+i is
		// visible at the pinned epoch. Computing it before the transpose
		// means a chunk of pure tombstones (or rows born after an AS OF
		// epoch) skips materialization entirely — the dead-epoch analog of
		// zone pruning, sound against concurrent deletes because it reads
		// this scan's own pinned state.
		sel := b.Sel[:s.size][:n]
		if s.st != nil {
			born, dead := s.st.born[s.base:end], s.st.dead[s.base:end]
			k := 0
			for i := 0; i < n; i++ {
				if born[i] <= s.epoch && (dead[i] == 0 || dead[i] > s.epoch) {
					sel[k] = i
					k++
				}
			}
			b.Sel = sel[:k]
		} else {
			copy(sel, s.identity[:n])
			b.Sel = sel
		}
		if len(b.Sel) == 0 {
			s.base = end
			continue
		}
		// Transpose only the selected positions: visible rows are never
		// GC-reclaimed (nil), and downstream operators read selected
		// positions only (the batch ownership contract).
		chunk := store[s.base:end]
		for _, j := range s.cols {
			col := b.Cols[j][:s.size][:n]
			for _, i := range b.Sel {
				col[i] = chunk[i][j]
			}
			b.Cols[j] = col
		}
		b.n = n
		s.base = end
		zonePagesDecoded.Add(1)
		return b, true
	}
}

// ---------- Batch filter ----------

// BatchPredicate evaluates a predicate over a whole batch, compacting the
// selection vector in place to the rows that pass.
type BatchPredicate func(*Batch)

// BatchFilterOp applies a vectorized predicate to each batch, dropping
// batches the predicate empties.
type BatchFilterOp struct {
	in   BatchIterator
	pred BatchPredicate
}

// NewBatchFilter wraps a batch stream with a vectorized predicate.
func NewBatchFilter(in BatchIterator, pred BatchPredicate) *BatchFilterOp {
	return &BatchFilterOp{in: in, pred: pred}
}

// Schema implements BatchIterator.
func (f *BatchFilterOp) Schema() *Schema { return f.in.Schema() }

// NextBatch implements BatchIterator.
func (f *BatchFilterOp) NextBatch() (*Batch, bool) {
	for {
		b, ok := f.in.NextBatch()
		if !ok {
			return nil, false
		}
		f.pred(b)
		if len(b.Sel) > 0 {
			return b, true
		}
	}
}

// ---------- Batch project ----------

// BatchProjExpr computes one output column of a projection. It is the
// shared compiled form for both execution modes: the row-at-a-time path
// converts it with RowProjExprs, the batch path evaluates pass-through
// columns by aliasing the input slice and computed columns row-by-row over
// a scratch row populated with just the columns the expression reads.
type BatchProjExpr struct {
	Name string
	Type Type
	// Input is the input column a pass-through aliases. An expression with
	// nil Eval is a pass-through: the batch path aliases the input slice
	// (zero copy, zero eval).
	Input int
	// NeedCols lists the input columns Eval reads; the batch path copies
	// only these into the scratch row per evaluated row.
	NeedCols []int
	// Eval computes the value from a row of the input schema; nil marks a
	// pass-through of column Input. Evaluation errors are captured out of
	// band (see sqlparse's execCtx), matching ProjExpr.
	Eval func(Row) Value
}

// PassThrough builds a pass-through projection of input column pos.
func PassThrough(name string, typ Type, pos int) BatchProjExpr {
	return BatchProjExpr{Name: name, Type: typ, Input: pos}
}

// RowProjExprs converts compiled projection expressions to the row-at-a-time
// form NewProject consumes.
func RowProjExprs(exprs []BatchProjExpr) []ProjExpr {
	out := make([]ProjExpr, len(exprs))
	for i, e := range exprs {
		pe := ProjExpr{Name: e.Name, Type: e.Type}
		if e.Eval == nil {
			pos := e.Input
			pe.Eval = func(r Row) Value { return r[pos] }
		} else {
			pe.Eval = e.Eval
		}
		out[i] = pe
	}
	return out
}

// BatchProjectOp maps input batches through projection expressions.
// Pass-through columns alias the input column slices and the output shares
// the input's selection vector; computed columns are evaluated only at
// selected positions.
type BatchProjectOp struct {
	in      BatchIterator
	exprs   []BatchProjExpr
	schema  *Schema
	out     Batch
	scratch Row
}

// NewBatchProject builds a vectorized projection operator.
func NewBatchProject(in BatchIterator, exprs []BatchProjExpr) (*BatchProjectOp, error) {
	cols := make([]Column, len(exprs))
	inWidth := in.Schema().Len()
	for i, e := range exprs {
		if e.Eval == nil && (e.Input < 0 || e.Input >= inWidth) {
			return nil, fmt.Errorf("relation: batch project: pass-through column %d out of range", e.Input)
		}
		cols[i] = Column{Name: e.Name, Type: e.Type}
	}
	s, err := NewSchema(cols...)
	if err != nil {
		return nil, err
	}
	return &BatchProjectOp{
		in: in, exprs: exprs, schema: s,
		out:     Batch{schema: s, Cols: make([][]Value, len(exprs))},
		scratch: make(Row, inWidth),
	}, nil
}

// Schema implements BatchIterator.
func (p *BatchProjectOp) Schema() *Schema { return p.schema }

// NextBatch implements BatchIterator.
func (p *BatchProjectOp) NextBatch() (*Batch, bool) {
	b, ok := p.in.NextBatch()
	if !ok {
		return nil, false
	}
	out := &p.out
	out.n = b.n
	out.Sel = b.Sel
	for j, e := range p.exprs {
		if e.Eval == nil {
			out.Cols[j] = b.Cols[e.Input]
			continue
		}
		col := out.Cols[j]
		if cap(col) < b.n {
			col = make([]Value, b.n)
		}
		col = col[:b.n]
		for _, i := range b.Sel {
			for _, c := range e.NeedCols {
				p.scratch[c] = b.Cols[c][i]
			}
			col[i] = e.Eval(p.scratch)
		}
		out.Cols[j] = col
	}
	return out, true
}

// ---------- Batch hash-join probe ----------

// BatchHashJoinOp is the vectorized sibling of HashJoinOp: the build side
// is drained into a hash table on first use (lazily, so EXPLAIN is free)
// and the probe side streams batch-at-a-time, each selected probe row
// emitting its matches into a column-oriented output batch. Output rows are
// always left-columns-then-right regardless of which side builds.
type BatchHashJoinOp struct {
	probe     BatchIterator
	buildSrc  Iterator
	buildRows map[string][]Row
	probeCols []int
	buildCols []int
	schema    *Schema
	// buildIsLeft reports the build side supplies the left half of output
	// rows (the probe stream supplies the right half).
	buildIsLeft bool
	built       bool
	out         Batch
	keyBuf      []byte
}

// NewBatchHashJoin joins a batched probe stream against a materialized
// build stream on probeCols[i] == buildCols[i] (schema positions). When
// buildIsLeft, output rows are build-row ++ probe-row; otherwise
// probe-row ++ build-row. schema must be the concatenated output schema.
func NewBatchHashJoin(probe BatchIterator, build Iterator, probeCols, buildCols []int, schema *Schema, buildIsLeft bool) (*BatchHashJoinOp, error) {
	if len(probeCols) != len(buildCols) || len(probeCols) == 0 {
		return nil, fmt.Errorf("relation: batch join requires equal, non-empty key lists")
	}
	return &BatchHashJoinOp{
		probe: probe, buildSrc: build,
		probeCols: probeCols, buildCols: buildCols,
		schema: schema, buildIsLeft: buildIsLeft,
		out: Batch{schema: schema, Cols: make([][]Value, schema.Len())},
	}, nil
}

// Schema implements BatchIterator.
func (j *BatchHashJoinOp) Schema() *Schema { return j.schema }

func (j *BatchHashJoinOp) build() {
	j.buildRows = make(map[string][]Row)
	for {
		r, ok := j.buildSrc.Next()
		if !ok {
			break
		}
		key, ok := appendJoinKey(j.keyBuf[:0], r, j.buildCols)
		j.keyBuf = key
		if !ok {
			continue
		}
		j.buildRows[string(key)] = append(j.buildRows[string(key)], r)
	}
	j.built = true
}

// appendBatchJoinKey builds the join key for batch row i into dst; ok is
// false when any key column is NULL (NULL keys never match).
func appendBatchJoinKey(dst []byte, b *Batch, i int, pos []int) (_ []byte, ok bool) {
	for _, p := range pos {
		v := &b.Cols[p][i]
		if v.IsNull() {
			return dst, false
		}
		dst = v.appendKey(dst)
		dst = append(dst, '\x1f')
	}
	return dst, true
}

// NextBatch implements BatchIterator.
func (j *BatchHashJoinOp) NextBatch() (*Batch, bool) {
	if !j.built {
		j.build()
	}
	probeWidth := j.probe.Schema().Len()
	buildWidth := j.schema.Len() - probeWidth
	// Output column ranges for the two sides.
	probeBase, buildBase := 0, probeWidth
	if j.buildIsLeft {
		probeBase, buildBase = buildWidth, 0
	}
	for {
		b, ok := j.probe.NextBatch()
		if !ok {
			return nil, false
		}
		out := &j.out
		out.reset()
		for c := range out.Cols {
			if out.Cols[c] == nil {
				out.Cols[c] = make([]Value, 0, DefaultBatchSize)
			}
		}
		n := 0
		for _, i := range b.Sel {
			key, ok := appendBatchJoinKey(j.keyBuf[:0], b, i, j.probeCols)
			j.keyBuf = key
			if !ok {
				continue
			}
			for _, m := range j.buildRows[string(key)] {
				for c := 0; c < probeWidth; c++ {
					out.Cols[probeBase+c] = append(out.Cols[probeBase+c], b.Cols[c][i])
				}
				for c := 0; c < buildWidth; c++ {
					out.Cols[buildBase+c] = append(out.Cols[buildBase+c], m[c])
				}
				out.Sel = append(out.Sel, n)
				n++
			}
		}
		out.n = n
		if n > 0 {
			return out, true
		}
		// No probe row matched in this batch; pull the next one.
	}
}

// ---------- Batch aggregation ----------

// BatchGroupOp is the vectorized sibling of GroupOp: it consumes batches,
// builds group keys and updates aggregate states directly from column
// slices — no per-row projection allocation — and emits the (small) result
// set as a row Iterator, which the post-aggregation pipeline stays on.
type BatchGroupOp struct {
	in       BatchIterator
	groupBy  []string
	aggs     []AggSpec
	schema   *Schema
	groupPos []int
	aggPos   []int
	results  []Row
	done     bool
	i        int
}

// NewBatchGroup builds a vectorized grouping/aggregation operator. With no
// groupBy columns it produces exactly one row (global aggregates).
func NewBatchGroup(in BatchIterator, groupBy []string, aggs []AggSpec) (*BatchGroupOp, error) {
	schema, groupPos, aggPos, err := groupSchema(in.Schema(), groupBy, aggs)
	if err != nil {
		return nil, err
	}
	return &BatchGroupOp{
		in: in, groupBy: groupBy, aggs: aggs,
		schema: schema, groupPos: groupPos, aggPos: aggPos,
	}, nil
}

// Schema implements Iterator.
func (g *BatchGroupOp) Schema() *Schema { return g.schema }

// Next implements Iterator.
func (g *BatchGroupOp) Next() (Row, bool) {
	if !g.done {
		g.run()
		g.done = true
	}
	if g.i >= len(g.results) {
		return nil, false
	}
	r := g.results[g.i]
	g.i++
	return r, true
}

func (g *BatchGroupOp) run() {
	h := newAggHash()
	drainBatches(h, g.in, g.groupPos, g.aggPos, g.aggs)
	g.results = h.finish(len(g.groupPos), g.aggs)
}
