package relation

import (
	"errors"
	"math"
	"testing"
)

// travelDB builds k=1..n committed one row per epoch: after this, epoch e
// sees exactly rows 1..e.
func travelDB(t *testing.T, n int) (*Database, *Table) {
	t.Helper()
	db, tbl := snapDB(t)
	for i := 1; i <= n; i++ {
		if _, err := tbl.Insert(Row{Int(int64(i)), Text("r")}); err != nil {
			t.Fatal(err)
		}
		db.AdvanceEpoch()
	}
	return db, tbl
}

func TestSnapshotAtSeesHistoricalPrefix(t *testing.T) {
	db, _ := travelDB(t, 5)
	for e := int64(0); e <= 5; e++ {
		snap, err := db.SnapshotAt(e)
		if err != nil {
			t.Fatalf("SnapshotAt(%d): %v", e, err)
		}
		r, _ := snap.Reader("t")
		if got := len(r.Rows()); got != int(e) {
			t.Fatalf("epoch %d sees %d rows, want %d", e, got, e)
		}
		if snap.Epoch() != e {
			t.Fatalf("snap.Epoch() = %d, want %d", snap.Epoch(), e)
		}
		snap.Release()
	}
}

func TestSnapshotAtRejectsFutureAndNegative(t *testing.T) {
	db, _ := travelDB(t, 2)
	if _, err := db.SnapshotAt(3); err == nil {
		t.Fatal("future epoch accepted")
	}
	if _, err := db.SnapshotAt(-1); err == nil {
		t.Fatal("negative epoch accepted")
	}
}

func TestGCBelowRetiresEpochsAndReclaimsTombstones(t *testing.T) {
	db, tbl := snapDB(t)
	id, _ := tbl.Insert(Row{Int(1), Text("doomed")})
	db.AdvanceEpoch() // epoch 1
	tbl.Delete(id)
	db.AdvanceEpoch() // epoch 2
	tbl.Insert(Row{Int(2), Text("alive")})
	db.AdvanceEpoch() // epoch 3

	reclaimed, applied := db.GCBelow(3)
	if applied != 3 {
		t.Fatalf("applied floor = %d, want 3", applied)
	}
	if reclaimed != 1 {
		t.Fatalf("reclaimed = %d, want 1 (the born-and-tombstoned version)", reclaimed)
	}
	if db.MinEpoch() != 3 {
		t.Fatalf("MinEpoch = %d, want 3", db.MinEpoch())
	}

	// Retired epochs answer with the typed error carrying the floor.
	_, err := db.SnapshotAt(2)
	if !errors.Is(err, ErrEpochRetired) {
		t.Fatalf("SnapshotAt(2) after GC: %v, want ErrEpochRetired", err)
	}
	var retired *EpochRetiredError
	if !errors.As(err, &retired) || retired.Floor != 3 || retired.Epoch != 2 {
		t.Fatalf("typed error = %+v", retired)
	}

	// The floor epoch itself stays queryable and correct.
	snap, err := db.SnapshotAt(3)
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Release()
	r, _ := snap.Reader("t")
	if got := len(r.Rows()); got != 1 {
		t.Fatalf("floor epoch rows = %d, want 1", got)
	}
}

func TestGCBelowClampsToOldestPin(t *testing.T) {
	db, _ := travelDB(t, 5)
	snap, err := db.SnapshotAt(2)
	if err != nil {
		t.Fatal(err)
	}
	if got := db.OldestPin(); got != 2 {
		t.Fatalf("OldestPin = %d, want 2", got)
	}

	if _, applied := db.GCBelow(4); applied != 2 {
		t.Fatalf("GC with live pin at 2 applied floor %d, want clamp to 2", applied)
	}
	// The pinned epoch must remain readable.
	r, _ := snap.Reader("t")
	if got := len(r.Rows()); got != 2 {
		t.Fatalf("pinned snapshot rows = %d, want 2", got)
	}
	snap.Release()
	if got := db.OldestPin(); got != math.MaxInt64 {
		t.Fatalf("OldestPin after release = %d, want MaxInt64", got)
	}

	// With the pin gone the floor advances; it never moves backwards.
	if _, applied := db.GCBelow(4); applied != 4 {
		t.Fatalf("GC after release applied %d, want 4", applied)
	}
	if _, applied := db.GCBelow(1); applied != 4 {
		t.Fatalf("GC below current floor applied %d, want unchanged 4", applied)
	}
}

func TestGCBelowClampsToCommittedEpoch(t *testing.T) {
	db, _ := travelDB(t, 2)
	if _, applied := db.GCBelow(10); applied != 2 {
		t.Fatalf("GC above committed epoch applied %d, want clamp to 2", applied)
	}
}

func TestSnapshotAsOfRebases(t *testing.T) {
	db, _ := travelDB(t, 4)
	snap, err := db.SnapshotAt(3)
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Release()

	// Same epoch: the snapshot itself, free.
	same, release, err := snap.AsOf(3)
	if err != nil {
		t.Fatal(err)
	}
	if same != Catalog(snap) {
		t.Fatal("AsOf(own epoch) should return the snapshot itself")
	}
	release()

	// Lower epoch: a fresh pin with narrowed visibility.
	past, release, err := snap.AsOf(1)
	if err != nil {
		t.Fatal(err)
	}
	r, _ := past.Reader("t")
	if got := len(r.Rows()); got != 1 {
		t.Fatalf("rebased rows = %d, want 1", got)
	}
	release()

	// Above the pin: refused — a pinned view must not leak later commits.
	if _, _, err := snap.AsOf(4); err == nil {
		t.Fatal("AsOf above the pinned epoch accepted")
	}
}

func TestDatabaseAsOfPinsAndReleases(t *testing.T) {
	db, _ := travelDB(t, 3)
	before := db.Pins()
	cat, release, err := db.AsOf(2)
	if err != nil {
		t.Fatal(err)
	}
	if db.Pins() != before+1 {
		t.Fatalf("Pins = %d, want %d", db.Pins(), before+1)
	}
	r, _ := cat.Reader("t")
	if got := len(r.Rows()); got != 2 {
		t.Fatalf("rows = %d, want 2", got)
	}
	release()
	if db.Pins() != before {
		t.Fatalf("Pins after release = %d, want %d", db.Pins(), before)
	}
}

func TestSetMinEpochNeverLowers(t *testing.T) {
	db, _ := travelDB(t, 3)
	db.SetMinEpoch(2)
	db.SetMinEpoch(1)
	if got := db.MinEpoch(); got != 2 {
		t.Fatalf("MinEpoch = %d, want 2", got)
	}
}

// TestGCKeepsLiveRowsAndIndexes: pruning nils only dead payloads; live rows
// and index lookups stay intact, and RowIDs remain stable.
func TestGCKeepsLiveRowsAndIndexes(t *testing.T) {
	db, tbl := snapDB(t)
	if _, err := tbl.CreateHashIndex("k"); err != nil {
		t.Fatal(err)
	}
	keep, _ := tbl.Insert(Row{Int(1), Text("keep")})
	gone, _ := tbl.Insert(Row{Int(2), Text("gone")})
	db.AdvanceEpoch()
	tbl.Delete(gone)
	db.AdvanceEpoch()

	if reclaimed, _ := db.GCBelow(2); reclaimed != 1 {
		t.Fatalf("reclaimed = %d, want 1", reclaimed)
	}
	got, ok := tbl.Get(keep)
	if !ok || got[1].AsText() != "keep" {
		t.Fatalf("live row damaged: %v %v", got, ok)
	}
	idx, ok := tbl.HashIndexOn("k")
	if !ok {
		t.Fatal("index lost")
	}
	ids := idx.Lookup(Int(1))
	if len(ids) != 1 || ids[0] != keep {
		t.Fatalf("index lookup = %v, want [%d]", ids, keep)
	}
}
