// Package relation implements the relational kernel underlying FlorDB's
// metadata store: a typed value model, heap-resident tables with hash and
// ordered indexes, and volcano-style iterator operators (scan, filter,
// project, join, sort, limit, aggregate).
//
// The kernel is deliberately small but complete enough to host the Figure-1
// schema of the FlorDB paper (logs, loops, ts2vid, obj_store base tables and
// the git / build_deps virtual tables) and to answer every query the paper
// issues against them.
package relation

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"
)

// Type enumerates the column types supported by the kernel. They correspond
// to the types appearing in the paper's Figure-1 data model: text, integer,
// datetime, bool, float (for logged metrics), and blob (obj_store contents).
type Type int

const (
	TNull Type = iota
	TText
	TInt
	TFloat
	TBool
	TTime
	TBlob
)

// String returns the SQL-ish name of the type.
func (t Type) String() string {
	switch t {
	case TNull:
		return "NULL"
	case TText:
		return "TEXT"
	case TInt:
		return "INTEGER"
	case TFloat:
		return "FLOAT"
	case TBool:
		return "BOOL"
	case TTime:
		return "DATETIME"
	case TBlob:
		return "BLOB"
	default:
		return fmt.Sprintf("Type(%d)", int(t))
	}
}

// Value is a dynamically typed relational value. The zero Value is NULL.
// All fixed-width payloads (integer, float bits, bool, UnixNano datetime)
// share one word, keeping the struct at 56 bytes — Values are copied on
// every scan, join, and recovery load, so width is a kernel-wide cost.
type Value struct {
	typ  Type
	num  uint64 // TInt/TBool: int64; TFloat: Float64bits; TTime: UTC UnixNano
	s    string // TText
	blob []byte // TBlob
}

// Null returns the NULL value.
func Null() Value { return Value{} }

// Text builds a TEXT value.
func Text(s string) Value { return Value{typ: TText, s: s} }

// Int builds an INTEGER value.
func Int(i int64) Value { return Value{typ: TInt, num: uint64(i)} }

// Float builds a FLOAT value.
func Float(f float64) Value { return Value{typ: TFloat, num: math.Float64bits(f)} }

// Bool builds a BOOL value.
func Bool(b bool) Value {
	v := Value{typ: TBool}
	if b {
		v.num = 1
	}
	return v
}

// Time builds a DATETIME value. Sub-nanosecond monotonic readings and
// location are dropped: the value is the UTC wall instant (nanosecond
// precision, years 1678–2262 — the range time.Time round-trips through
// UnixNano).
func Time(t time.Time) Value { return Value{typ: TTime, num: uint64(t.UnixNano())} }

// Blob builds a BLOB value. The slice is not copied.
func Blob(b []byte) Value { return Value{typ: TBlob, blob: b} }

// Type reports the value's type tag.
func (v Value) Type() Type { return v.typ }

// IsNull reports whether the value is NULL.
func (v Value) IsNull() bool { return v.typ == TNull }

// AsText returns the TEXT payload; it panics on type mismatch.
func (v Value) AsText() string {
	if v.typ != TText {
		panic(fmt.Sprintf("relation: AsText on %s", v.typ))
	}
	return v.s
}

// AsInt returns the INTEGER payload; it panics on type mismatch.
func (v Value) AsInt() int64 {
	if v.typ != TInt {
		panic(fmt.Sprintf("relation: AsInt on %s", v.typ))
	}
	return int64(v.num)
}

// AsFloat returns the numeric payload widened to float64. Works for TInt and
// TFloat; panics otherwise.
func (v Value) AsFloat() float64 {
	switch v.typ {
	case TFloat:
		return math.Float64frombits(v.num)
	case TInt:
		return float64(int64(v.num))
	default:
		panic(fmt.Sprintf("relation: AsFloat on %s", v.typ))
	}
}

// AsBool returns the BOOL payload; it panics on type mismatch.
func (v Value) AsBool() bool {
	if v.typ != TBool {
		panic(fmt.Sprintf("relation: AsBool on %s", v.typ))
	}
	return v.num != 0
}

// AsTime returns the DATETIME payload; it panics on type mismatch.
func (v Value) AsTime() time.Time {
	if v.typ != TTime {
		panic(fmt.Sprintf("relation: AsTime on %s", v.typ))
	}
	return time.Unix(0, int64(v.num)).UTC()
}

// AsBlob returns the BLOB payload; it panics on type mismatch.
func (v Value) AsBlob() []byte {
	if v.typ != TBlob {
		panic(fmt.Sprintf("relation: AsBlob on %s", v.typ))
	}
	return v.blob
}

// IsNumeric reports whether the value is TInt or TFloat.
func (v Value) IsNumeric() bool { return v.typ == TInt || v.typ == TFloat }

// String renders the value for display (not for round-tripping).
func (v Value) String() string {
	switch v.typ {
	case TNull:
		return "NULL"
	case TText:
		return v.s
	case TInt:
		return strconv.FormatInt(int64(v.num), 10)
	case TFloat:
		return strconv.FormatFloat(math.Float64frombits(v.num), 'g', -1, 64)
	case TBool:
		if v.num != 0 {
			return "true"
		}
		return "false"
	case TTime:
		return v.AsTime().Format(time.RFC3339Nano)
	case TBlob:
		return fmt.Sprintf("x'%x'", v.blob)
	default:
		return "?"
	}
}

// JSON returns the value as a JSON-encodable Go value: nil for NULL, string
// for TEXT, int64 / float64 for numerics, bool for BOOL, RFC3339 text for
// DATETIME, and raw bytes for BLOB (encoding/json base64-encodes them). The
// HTTP API and the CLI's --format json share this mapping.
func (v Value) JSON() any {
	switch v.typ {
	case TNull:
		return nil
	case TText:
		return v.s
	case TInt:
		return int64(v.num)
	case TFloat:
		return math.Float64frombits(v.num)
	case TBool:
		return v.num != 0
	case TTime:
		return v.AsTime().Format(time.RFC3339Nano)
	case TBlob:
		return v.blob
	default:
		return v.String()
	}
}

// Compare orders two values. NULL sorts before everything; numeric types
// compare numerically across TInt/TFloat; otherwise both values must share a
// type. Returns -1, 0, or +1. Cross-type non-numeric comparisons order by
// type tag so that sorting heterogeneous columns is total and deterministic.
func Compare(a, b Value) int { return comparePtr(&a, &b) }

// ComparePtr is Compare on pointer operands, skipping the two 56-byte Value
// copies per call. Vectorized predicate kernels compare a column slice
// element against a literal once per row, so the copies would dominate.
func ComparePtr(a, b *Value) int { return comparePtr(a, b) }

// comparePtr is Compare without copying the 56-byte Value operands — the
// form sort inner loops use, where the copies dominate the comparison.
func comparePtr(a, b *Value) int {
	if a.typ == TNull || b.typ == TNull {
		switch {
		case a.typ == TNull && b.typ == TNull:
			return 0
		case a.typ == TNull:
			return -1
		default:
			return 1
		}
	}
	if a.IsNumeric() && b.IsNumeric() {
		af, bf := a.AsFloat(), b.AsFloat()
		switch {
		case af < bf:
			return -1
		case af > bf:
			return 1
		default:
			return 0
		}
	}
	if a.typ != b.typ {
		if a.typ < b.typ {
			return -1
		}
		return 1
	}
	switch a.typ {
	case TText:
		return strings.Compare(a.s, b.s)
	case TBool:
		switch {
		case a.num < b.num:
			return -1
		case a.num > b.num:
			return 1
		default:
			return 0
		}
	case TTime:
		an, bn := int64(a.num), int64(b.num)
		switch {
		case an < bn:
			return -1
		case an > bn:
			return 1
		default:
			return 0
		}
	case TBlob:
		return strings.Compare(string(a.blob), string(b.blob))
	default:
		return 0
	}
}

// Equal reports whether two values compare equal under Compare, except that
// NULL is never equal to anything including NULL (SQL semantics). Use
// Compare for sorting and Equal for predicate evaluation.
func Equal(a, b Value) bool {
	if a.typ == TNull || b.typ == TNull {
		return false
	}
	return Compare(a, b) == 0
}

// Key returns a string usable as a hash key for grouping/joining. Two values
// with Compare(a,b)==0 share a key. NULLs get a distinct sentinel key so
// GROUP BY can place them in one group (SQL groups NULLs together).
func (v Value) Key() string {
	return string(v.AppendKey(nil))
}

// AppendKey appends the value's hash key (the same bytes Key returns) to dst
// and returns the extended slice. Hot paths — index maintenance, join and
// group-by key building — use it to assemble multi-column keys in a single
// reusable buffer instead of concatenating per-value strings.
func (v Value) AppendKey(dst []byte) []byte { return v.appendKey(dst) }

// appendKey is AppendKey on a pointer receiver, so row-indexed callers
// (ix.appendRowKey over every column of every row) skip the 56-byte copy.
func (v *Value) appendKey(dst []byte) []byte {
	switch v.typ {
	case TNull:
		return append(dst, '\x00', 'N')
	case TText:
		dst = append(dst, '\x01')
		return append(dst, v.s...)
	case TInt:
		// Ints share the numeric key space with floats so that Int(5) and
		// Float(5) group/join together, matching Compare.
		dst = append(dst, '\x02')
		return strconv.AppendFloat(dst, float64(int64(v.num)), 'g', -1, 64)
	case TFloat:
		dst = append(dst, '\x02')
		return strconv.AppendFloat(dst, math.Float64frombits(v.num), 'g', -1, 64)
	case TBool:
		dst = append(dst, '\x03')
		return strconv.AppendInt(dst, int64(v.num), 10)
	case TTime:
		dst = append(dst, '\x04')
		return strconv.AppendInt(dst, int64(v.num), 10)
	case TBlob:
		dst = append(dst, '\x05')
		return append(dst, v.blob...)
	default:
		return append(dst, '\x06')
	}
}

// Coerce attempts to convert v to target type t, returning an error when the
// conversion is lossy or undefined. NULL coerces to NULL of any type.
func Coerce(v Value, t Type) (Value, error) {
	if v.typ == TNull || v.typ == t {
		return v, nil
	}
	switch t {
	case TText:
		return Text(v.String()), nil
	case TInt:
		switch v.typ {
		case TFloat:
			f := math.Float64frombits(v.num)
			if f != math.Trunc(f) {
				return Value{}, fmt.Errorf("relation: cannot coerce %v to INTEGER without loss", f)
			}
			return Int(int64(f)), nil
		case TText:
			i, err := strconv.ParseInt(strings.TrimSpace(v.s), 10, 64)
			if err != nil {
				return Value{}, fmt.Errorf("relation: cannot coerce %q to INTEGER", v.s)
			}
			return Int(i), nil
		case TBool:
			return Int(int64(v.num)), nil
		}
	case TFloat:
		switch v.typ {
		case TInt:
			return Float(float64(int64(v.num))), nil
		case TText:
			f, err := strconv.ParseFloat(strings.TrimSpace(v.s), 64)
			if err != nil {
				return Value{}, fmt.Errorf("relation: cannot coerce %q to FLOAT", v.s)
			}
			return Float(f), nil
		}
	case TBool:
		switch v.typ {
		case TInt:
			return Bool(v.num != 0), nil
		case TText:
			switch strings.ToLower(strings.TrimSpace(v.s)) {
			case "true", "t", "1":
				return Bool(true), nil
			case "false", "f", "0":
				return Bool(false), nil
			}
			return Value{}, fmt.Errorf("relation: cannot coerce %q to BOOL", v.s)
		}
	case TTime:
		if v.typ == TText {
			for _, layout := range []string{time.RFC3339Nano, time.RFC3339, "2006-01-02 15:04:05", "2006-01-02"} {
				if tt, err := time.Parse(layout, strings.TrimSpace(v.s)); err == nil {
					return Time(tt), nil
				}
			}
			return Value{}, fmt.Errorf("relation: cannot coerce %q to DATETIME", v.s)
		}
	case TBlob:
		if v.typ == TText {
			return Blob([]byte(v.s)), nil
		}
	}
	return Value{}, fmt.Errorf("relation: cannot coerce %s to %s", v.typ, t)
}
