package relation

import (
	"fmt"
	"sync"
	"testing"
	"testing/quick"
)

func testSchema(t *testing.T) *Schema {
	t.Helper()
	s, err := NewSchema(
		Column{Name: "id", Type: TInt, NotNull: true},
		Column{Name: "name", Type: TText},
		Column{Name: "score", Type: TFloat},
	)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSchemaDuplicateColumn(t *testing.T) {
	_, err := NewSchema(Column{Name: "a", Type: TInt}, Column{Name: "A", Type: TText})
	if err == nil {
		t.Fatal("case-insensitive duplicate must fail")
	}
}

func TestSchemaIndexCaseInsensitive(t *testing.T) {
	s := testSchema(t)
	if s.Index("NAME") != 1 || s.Index("name") != 1 {
		t.Fatal("case-insensitive lookup failed")
	}
	if s.Index("missing") != -1 {
		t.Fatal("missing column should be -1")
	}
}

func TestSchemaValidateArity(t *testing.T) {
	s := testSchema(t)
	if _, err := s.Validate(Row{Int(1)}); err == nil {
		t.Fatal("short row must fail")
	}
}

func TestSchemaValidateNotNull(t *testing.T) {
	s := testSchema(t)
	if _, err := s.Validate(Row{Null(), Text("x"), Float(1)}); err == nil {
		t.Fatal("NULL in NOT NULL column must fail")
	}
}

func TestSchemaValidateCoercion(t *testing.T) {
	s := testSchema(t)
	r, err := s.Validate(Row{Text("7"), Text("x"), Int(3)})
	if err != nil {
		t.Fatal(err)
	}
	if r[0].AsInt() != 7 || r[2].AsFloat() != 3.0 {
		t.Fatalf("coercion failed: %v", r)
	}
}

func TestTableInsertGetDelete(t *testing.T) {
	tbl := NewTable("t", testSchema(t))
	id, err := tbl.Insert(Row{Int(1), Text("a"), Float(0.5)})
	if err != nil {
		t.Fatal(err)
	}
	r, ok := tbl.Get(id)
	if !ok || r[1].AsText() != "a" {
		t.Fatalf("get: %v %v", r, ok)
	}
	if !tbl.Delete(id) {
		t.Fatal("delete should succeed")
	}
	if tbl.Delete(id) {
		t.Fatal("double delete should fail")
	}
	if _, ok := tbl.Get(id); ok {
		t.Fatal("deleted row still visible")
	}
	if tbl.Len() != 0 {
		t.Fatalf("len = %d", tbl.Len())
	}
}

func TestTableUpdate(t *testing.T) {
	tbl := NewTable("t", testSchema(t))
	id, _ := tbl.Insert(Row{Int(1), Text("a"), Float(0.5)})
	nid, err := tbl.Update(id, Row{Int(1), Text("b"), Float(0.9)})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := tbl.Get(id); ok {
		t.Fatal("old version still visible under old id")
	}
	r, ok := tbl.Get(nid)
	if !ok || r[1].AsText() != "b" {
		t.Fatalf("update not applied: %v %v", r, ok)
	}
	if tbl.Len() != 1 {
		t.Fatalf("len = %d", tbl.Len())
	}
	if _, err := tbl.Update(RowID(999), Row{Int(1), Text("b"), Float(0.9)}); err == nil {
		t.Fatal("update of missing row must fail")
	}
}

func TestTableScanOrder(t *testing.T) {
	tbl := NewTable("t", testSchema(t))
	for i := 0; i < 10; i++ {
		if _, err := tbl.Insert(Row{Int(int64(i)), Text("x"), Float(0)}); err != nil {
			t.Fatal(err)
		}
	}
	var got []int64
	tbl.Scan(func(_ RowID, r Row) bool {
		got = append(got, r[0].AsInt())
		return true
	})
	for i, v := range got {
		if v != int64(i) {
			t.Fatalf("scan order broken at %d: %v", i, got)
		}
	}
}

func TestTableScanEarlyStop(t *testing.T) {
	tbl := NewTable("t", testSchema(t))
	for i := 0; i < 10; i++ {
		tbl.Insert(Row{Int(int64(i)), Text("x"), Float(0)})
	}
	n := 0
	tbl.Scan(func(_ RowID, _ Row) bool {
		n++
		return n < 3
	})
	if n != 3 {
		t.Fatalf("early stop failed, n=%d", n)
	}
}

func TestHashIndexLookupAndMaintenance(t *testing.T) {
	tbl := NewTable("t", testSchema(t))
	ix, err := tbl.CreateHashIndex("name")
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]RowID, 0)
	for i := 0; i < 6; i++ {
		id, _ := tbl.Insert(Row{Int(int64(i)), Text(fmt.Sprintf("n%d", i%2)), Float(0)})
		ids = append(ids, id)
	}
	liveN0 := func() int { return len(tbl.RowsByIDs(ix.Lookup(Text("n0")))) }
	if got := liveN0(); got != 3 {
		t.Fatalf("lookup n0 = %d live rows", got)
	}
	// Tombstoned rows stay indexed but are filtered by row visibility.
	tbl.Delete(ids[0])
	if got := liveN0(); got != 2 {
		t.Fatalf("after delete lookup n0 = %d live rows", got)
	}
	if _, err := tbl.Update(ids[1], Row{Int(1), Text("n0"), Float(0)}); err != nil {
		t.Fatal(err)
	}
	if got := liveN0(); got != 3 {
		t.Fatalf("after update lookup n0 = %d live rows", got)
	}
}

func TestHashIndexBuildOnExistingRows(t *testing.T) {
	tbl := NewTable("t", testSchema(t))
	tbl.Insert(Row{Int(1), Text("a"), Float(0)})
	tbl.Insert(Row{Int(2), Text("a"), Float(0)})
	ix, err := tbl.CreateHashIndex("name")
	if err != nil {
		t.Fatal(err)
	}
	if got := ix.Lookup(Text("a")); len(got) != 2 {
		t.Fatalf("index over existing rows: %v", got)
	}
}

func TestHashIndexComposite(t *testing.T) {
	tbl := NewTable("t", testSchema(t))
	ix, _ := tbl.CreateHashIndex("id", "name")
	tbl.Insert(Row{Int(1), Text("a"), Float(0)})
	tbl.Insert(Row{Int(1), Text("b"), Float(0)})
	if got := ix.Lookup(Int(1), Text("a")); len(got) != 1 {
		t.Fatalf("composite lookup: %v", got)
	}
	if got := ix.Lookup(Int(1)); got != nil {
		t.Fatal("wrong arity lookup must return nil")
	}
}

func TestOrderedIndexRange(t *testing.T) {
	tbl := NewTable("t", testSchema(t))
	ix, err := tbl.CreateOrderedIndex("score")
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range []float64{0.5, 0.1, 0.9, 0.3, 0.7} {
		tbl.Insert(Row{Int(1), Text("x"), Float(f)})
	}
	ids := ix.Range(Float(0.3), Float(0.7))
	if len(ids) != 3 {
		t.Fatalf("range [0.3,0.7] = %d ids", len(ids))
	}
	var prev float64 = -1
	for _, id := range ids {
		r, _ := tbl.Get(id)
		f := r[2].AsFloat()
		if f < prev {
			t.Fatal("range result not ascending")
		}
		prev = f
	}
	if all := ix.Range(Null(), Null()); len(all) != 5 {
		t.Fatalf("unbounded range = %d", len(all))
	}
}

func TestOrderedIndexMinMax(t *testing.T) {
	tbl := NewTable("t", testSchema(t))
	ix, _ := tbl.CreateOrderedIndex("score")
	if _, ok := ix.Min(); ok {
		t.Fatal("empty index has no min")
	}
	tbl.Insert(Row{Int(1), Text("x"), Float(0.7)})
	tbl.Insert(Row{Int(2), Text("y"), Float(0.2)})
	id, ok := ix.Min()
	if !ok {
		t.Fatal("min missing")
	}
	r, _ := tbl.Get(id)
	if r[2].AsFloat() != 0.2 {
		t.Fatalf("min = %v", r)
	}
	id, _ = ix.Max()
	r, _ = tbl.Get(id)
	if r[2].AsFloat() != 0.7 {
		t.Fatalf("max = %v", r)
	}
}

func TestOrderedIndexDeleteMaintenance(t *testing.T) {
	tbl := NewTable("t", testSchema(t))
	ix, _ := tbl.CreateOrderedIndex("score")
	id1, _ := tbl.Insert(Row{Int(1), Text("x"), Float(0.5)})
	tbl.Insert(Row{Int(2), Text("y"), Float(0.5)})
	tbl.Delete(id1)
	rows := tbl.RowsByIDs(ix.Range(Float(0.5), Float(0.5)))
	if len(rows) != 1 || rows[0][0].AsInt() != 2 {
		t.Fatalf("after delete: %v", rows)
	}
}

func TestTableConcurrentInserts(t *testing.T) {
	tbl := NewTable("t", testSchema(t))
	tbl.CreateHashIndex("name")
	var wg sync.WaitGroup
	const workers, per = 8, 100
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if _, err := tbl.Insert(Row{Int(int64(w*per + i)), Text("c"), Float(0)}); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if tbl.Len() != workers*per {
		t.Fatalf("len = %d want %d", tbl.Len(), workers*per)
	}
	ix, _ := tbl.HashIndexOn("name")
	if got := len(ix.Lookup(Text("c"))); got != workers*per {
		t.Fatalf("index count = %d", got)
	}
}

func TestOrderedIndexSortedProperty(t *testing.T) {
	// Property: for any insert sequence, Range(NULL,NULL) is sorted.
	f := func(vals []int16) bool {
		tbl := NewTable("t", MustSchema(Column{Name: "v", Type: TInt}))
		ix, _ := tbl.CreateOrderedIndex("v")
		for _, v := range vals {
			tbl.Insert(Row{Int(int64(v))})
		}
		ids := ix.Range(Null(), Null())
		var prev int64 = -1 << 62
		for _, id := range ids {
			r, _ := tbl.Get(id)
			if r[0].AsInt() < prev {
				return false
			}
			prev = r[0].AsInt()
		}
		return len(ids) == len(vals)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
