package relation

import "sort"

// PartialAgg is the per-worker half of parallel hash aggregation: each scan
// worker drains its morsels into a private PartialAgg (no locks, no sharing),
// then the coordinator merges the partials pairwise and renders the merged
// groups. Consume reuses the exact drain loop of BatchGroupOp, so serial and
// parallel aggregation cannot diverge on per-row semantics; the merge
// contract below is what makes the split algebraically sound (DESIGN §13):
//
//   - count/sum partials add; avg merges as (sum, count) and divides once at
//     render time — never an average of averages;
//   - min/max merge by comparing the partials' extrema under the same total
//     order the serial path uses;
//   - the "saw any input row" flag ORs, so a global aggregate over an empty
//     table still renders exactly one zero/NULL row.
type PartialAgg struct {
	h        *aggHash
	groupPos []int
	aggPos   []int
	aggs     []AggSpec
	schema   *Schema
	nGroup   int
}

// NewPartialAgg builds a partial aggregator over the projected input schema
// (group keys and aggregate arguments), mirroring NewBatchGroup.
func NewPartialAgg(in *Schema, groupBy []string, aggs []AggSpec) (*PartialAgg, error) {
	schema, groupPos, aggPos, err := groupSchema(in, groupBy, aggs)
	if err != nil {
		return nil, err
	}
	return &PartialAgg{
		h: newAggHash(), groupPos: groupPos, aggPos: aggPos,
		aggs: aggs, schema: schema, nGroup: len(groupBy),
	}, nil
}

// Schema returns the aggregated output schema (group keys, then aggregates).
func (p *PartialAgg) Schema() *Schema { return p.schema }

// Consume drains a batch stream into the partial state. It may be called
// repeatedly (once per morsel); states accumulate.
func (p *PartialAgg) Consume(in BatchIterator) {
	drainBatches(p.h, in, p.groupPos, p.aggPos, p.aggs)
}

// Merge folds o's groups into p. o must aggregate the same spec over the
// same schema and must not be used afterwards (its group states are adopted,
// not copied). Groups are visited in o's first-seen slice order, never by
// map iteration, so repeated merges of the same partials are deterministic.
func (p *PartialAgg) Merge(o *PartialAgg) {
	p.h.sawAny = p.h.sawAny || o.h.sawAny
	for idx, grp := range o.h.groups {
		key := []byte(o.h.keys[idx])
		dst := p.h.find(key)
		if dst == nil {
			p.h.insert(key, grp)
			continue
		}
		for k := range p.aggs {
			mergeAggState(&dst.states[k], &grp.states[k], p.aggs[k].Kind)
		}
	}
}

// mergeAggState folds partial state o into dst for one aggregate kind.
func mergeAggState(dst, o *aggState, kind AggKind) {
	switch kind {
	case AggCount, AggCountStar:
		dst.count += o.count
	case AggSum, AggAvg:
		dst.count += o.count
		dst.sum += o.sum
	case AggMin:
		if o.seen && (!dst.seen || comparePtr(&o.min, &dst.min) < 0) {
			dst.min = o.min
			dst.seen = true
		}
	case AggMax:
		if o.seen && (!dst.seen || comparePtr(&o.max, &dst.max) > 0) {
			dst.max = o.max
			dst.seen = true
		}
	}
}

// Rows renders the merged groups, ordered by encoded group key. Worker
// scheduling makes first-seen order nondeterministic across runs, so the
// parallel path canonicalizes on key order instead — a deterministic
// permutation of the serial path's output (row-multiset-equal; queries that
// need a specific order say ORDER BY, which sorts downstream either way).
func (p *PartialAgg) Rows() []Row {
	h := p.h
	idx := make([]int, len(h.groups))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return h.keys[idx[a]] < h.keys[idx[b]] })
	keys := make([]string, len(h.groups))
	groups := make([]*aggGroup, len(h.groups))
	for i, j := range idx {
		keys[i], groups[i] = h.keys[j], h.groups[j]
	}
	h.keys, h.groups = keys, groups
	// finish appends the empty-input global-aggregate row (if needed) and
	// renders in the (now sorted) group order.
	return h.finish(p.nGroup, p.aggs)
}

// drainBatches is the shared batch-aggregation inner loop of BatchGroupOp
// and PartialAgg.Consume.
func drainBatches(h *aggHash, in BatchIterator, groupPos, aggPos []int, aggs []AggSpec) {
	var keyBuf []byte
	// Per-batch column slices, hoisted so the per-row loop does no
	// double-indexed Cols lookups.
	gcols := make([][]Value, len(groupPos))
	acols := make([][]Value, len(aggs))
	for {
		b, ok := in.NextBatch()
		if !ok {
			return
		}
		h.sawAny = h.sawAny || len(b.Sel) > 0
		for k, p := range groupPos {
			gcols[k] = b.Cols[p]
		}
		for k, p := range aggPos {
			if p >= 0 {
				acols[k] = b.Cols[p]
			}
		}
		for _, i := range b.Sel {
			keyBuf = keyBuf[:0]
			for _, col := range gcols {
				keyBuf = col[i].appendKey(keyBuf)
				keyBuf = append(keyBuf, '\x1f')
			}
			grp := h.find(keyBuf)
			if grp == nil {
				keyRow := make(Row, len(gcols))
				for k, col := range gcols {
					keyRow[k] = col[i]
				}
				grp = &aggGroup{key: keyRow, states: make([]aggState, len(aggs))}
				h.insert(keyBuf, grp)
			}
			for k := range aggs {
				if aggs[k].Kind == AggCountStar {
					grp.states[k].count++
					continue
				}
				grp.states[k].observe(aggs[k].Kind, &acols[k][i])
			}
		}
	}
}
