package relation

import (
	"sync"
	"testing"
)

// scoreTable builds a table over testSchema with an ordered index on score.
func scoreTable(t *testing.T, scores []Value) (*Table, *OrderedIndex) {
	t.Helper()
	tab := NewTable("t", testSchema(t))
	ix, err := tab.CreateOrderedIndex("score")
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range scores {
		if _, err := tab.Insert(Row{Int(int64(i)), Text("r"), s}); err != nil {
			t.Fatal(err)
		}
	}
	return tab, ix
}

func TestScanConcurrentWithInserts(t *testing.T) {
	// Scan walks a lock-free published state; concurrent inserts and deletes
	// must neither race (run with -race) nor disturb an in-flight scan. The
	// writer is bounded: readers no longer throttle it, so an unbounded
	// writer would grow the table quadratically under the race detector.
	tab := NewTable("t", testSchema(t))
	if _, err := tab.CreateHashIndex("name"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if _, err := tab.Insert(Row{Int(int64(i)), Text("seed"), Float(1)}); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 100; i < 50000; i++ {
			select {
			case <-stop:
				return
			default:
			}
			id, err := tab.Insert(Row{Int(int64(i)), Text("w"), Float(2)})
			if err != nil {
				t.Error(err)
				return
			}
			if i%3 == 0 {
				tab.Delete(id)
			}
		}
	}()
	for i := 0; i < 50; i++ {
		seen := 0
		tab.Scan(func(_ RowID, r Row) bool {
			seen++
			_ = r[0].AsInt()
			return true
		})
		if seen < 100 {
			t.Fatalf("scan %d saw %d rows, want >= 100", i, seen)
		}
	}
	close(stop)
	wg.Wait()
}

func TestRowsByIDsSkipsDeleted(t *testing.T) {
	tab := NewTable("t", testSchema(t))
	var ids []RowID
	for i := 0; i < 4; i++ {
		id, err := tab.Insert(Row{Int(int64(i)), Text("x"), Float(0)})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	tab.Delete(ids[1])
	rows := tab.RowsByIDs(ids)
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(rows))
	}
	if rows[1][0].AsInt() != 2 {
		t.Fatalf("deleted row not skipped in order: %v", rows[1][0])
	}
}

func TestRangeBoundsExclusive(t *testing.T) {
	_, ix := scoreTable(t, []Value{Float(0.1), Float(0.3), Float(0.5), Float(0.7)})
	if got := len(ix.RangeBounds(Float(0.3), Float(0.7), false, false)); got != 1 {
		t.Fatalf("(0.3, 0.7) exclusive: got %d ids, want 1", got)
	}
	if got := len(ix.RangeBounds(Float(0.3), Float(0.7), true, false)); got != 2 {
		t.Fatalf("[0.3, 0.7): got %d ids, want 2", got)
	}
	if got := len(ix.RangeBounds(Float(0.3), Float(0.7), false, true)); got != 2 {
		t.Fatalf("(0.3, 0.7]: got %d ids, want 2", got)
	}
	if got := len(ix.RangeBounds(Float(0.3), Float(0.7), true, true)); got != 3 {
		t.Fatalf("[0.3, 0.7]: got %d ids, want 3", got)
	}
}

func TestRangeBoundsNullEntriesExcluded(t *testing.T) {
	// SQL range predicates never match NULL, even when a bound is absent.
	tab, ix := scoreTable(t, []Value{Null(), Float(0.2), Null(), Float(0.8)})
	if got := len(ix.RangeBounds(Null(), Null(), true, true)); got != 2 {
		t.Fatalf("unbounded RangeBounds returned %d ids, want 2 (no NULLs)", got)
	}
	if got := len(ix.RangeBounds(Null(), Float(0.5), true, true)); got != 1 {
		t.Fatalf("<= 0.5 returned %d ids, want 1", got)
	}
	if got := len(ix.RangeBounds(Float(0.0), Null(), true, true)); got != 2 {
		t.Fatalf(">= 0.0 returned %d ids, want 2", got)
	}
	// Contrast: the inclusive Range keeps its legacy include-all behavior.
	if got := len(ix.Range(Null(), Null())); got != 4 {
		t.Fatalf("legacy Range(NULL, NULL) returned %d ids, want 4", got)
	}
	_ = tab
}

func TestRangeBoundsDuplicateKeys(t *testing.T) {
	_, ix := scoreTable(t, []Value{Float(0.5), Float(0.5), Float(0.5), Float(0.2)})
	ids := ix.RangeBounds(Float(0.5), Float(0.5), true, true)
	if len(ids) != 3 {
		t.Fatalf("point range over duplicates returned %d ids, want 3", len(ids))
	}
	if got := len(ix.RangeBounds(Float(0.5), Float(0.5), false, true)); got != 0 {
		t.Fatalf("(0.5, 0.5] must be empty, got %d", got)
	}
}

func TestRangeBoundsEmptyAndInverted(t *testing.T) {
	_, ix := scoreTable(t, []Value{Float(0.1), Float(0.9)})
	if got := len(ix.RangeBounds(Float(0.2), Float(0.8), true, true)); got != 0 {
		t.Fatalf("gap range returned %d ids, want 0", got)
	}
	if got := len(ix.RangeBounds(Float(0.9), Float(0.1), true, true)); got != 0 {
		t.Fatalf("inverted range returned %d ids, want 0", got)
	}
	empty := NewTable("e", testSchema(t))
	eix, err := empty.CreateOrderedIndex("score")
	if err != nil {
		t.Fatal(err)
	}
	if got := len(eix.RangeBounds(Null(), Null(), true, true)); got != 0 {
		t.Fatalf("empty index returned %d ids", got)
	}
}

func TestRangeBoundsTombstonedRows(t *testing.T) {
	tab, ix := scoreTable(t, []Value{Float(0.1), Float(0.5), Float(0.9)})
	var victim RowID = -1
	tab.Scan(func(id RowID, r Row) bool {
		if r[2].AsFloat() == 0.5 {
			victim = id
			return false
		}
		return true
	})
	if !tab.Delete(victim) {
		t.Fatal("delete failed")
	}
	// The tombstoned row stays indexed (older snapshots may still see it);
	// visibility filtering happens when ids resolve to rows.
	ids := ix.RangeBounds(Float(0.0), Float(1.0), true, true)
	if len(ids) != 3 {
		t.Fatalf("range over tombstoned table returned %d ids, want 3 candidates", len(ids))
	}
	if rows := tab.RowsByIDs(ids); len(rows) != 2 {
		t.Fatalf("RowsByIDs resolved %d rows, want 2", len(rows))
	}
}

func TestIndexIntrospection(t *testing.T) {
	tab := NewTable("t", testSchema(t))
	if _, err := tab.CreateHashIndex("name"); err != nil {
		t.Fatal(err)
	}
	if _, err := tab.CreateHashIndex("id", "name"); err != nil {
		t.Fatal(err)
	}
	if _, err := tab.CreateOrderedIndex("score"); err != nil {
		t.Fatal(err)
	}
	hcols := tab.HashIndexColumns()
	if len(hcols) != 2 || len(hcols[0]) != 2 {
		t.Fatalf("HashIndexColumns = %v, want widest-first", hcols)
	}
	if ocols := tab.OrderedIndexColumns(); len(ocols) != 1 || ocols[0] != "score" {
		t.Fatalf("OrderedIndexColumns = %v", ocols)
	}
	if _, ok := tab.OrderedIndexOn("score"); !ok {
		t.Fatal("OrderedIndexOn(score) missing")
	}
	if _, ok := tab.OrderedIndexOn("name"); ok {
		t.Fatal("OrderedIndexOn(name) should not exist")
	}
}

func TestIndexLookupOp(t *testing.T) {
	tab := NewTable("t", testSchema(t))
	if _, err := tab.CreateHashIndex("name"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		name := "a"
		if i%2 == 0 {
			name = "b"
		}
		if _, err := tab.Insert(Row{Int(int64(i)), Text(name), Float(0)}); err != nil {
			t.Fatal(err)
		}
	}
	op, err := NewIndexLookup(tab, []string{"name"}, [][]Value{{Text("a")}})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(Collect(op)); got != 3 {
		t.Fatalf("lookup a: %d rows, want 3", got)
	}
	// Multi-tuple (IN) lookup.
	op, err = NewIndexLookup(tab, []string{"name"}, [][]Value{{Text("a")}, {Text("b")}})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(Collect(op)); got != 6 {
		t.Fatalf("lookup a,b: %d rows, want 6", got)
	}
	if _, err := NewIndexLookup(tab, []string{"score"}, [][]Value{{Float(1)}}); err == nil {
		t.Fatal("lookup without index must fail")
	}
}

func TestIndexRangeOp(t *testing.T) {
	tab, _ := scoreTable(t, []Value{Float(0.1), Float(0.4), Float(0.6), Float(0.9)})
	op, err := NewIndexRange(tab, "score", Float(0.2), Float(0.7), true, true)
	if err != nil {
		t.Fatal(err)
	}
	rows := Collect(op)
	if len(rows) != 2 {
		t.Fatalf("range rows = %d, want 2", len(rows))
	}
	// Rows come back in ascending value order.
	if rows[0][2].AsFloat() != 0.4 || rows[1][2].AsFloat() != 0.6 {
		t.Fatalf("range order wrong: %v", rows)
	}
	if _, err := NewIndexRange(tab, "name", Null(), Null(), true, true); err == nil {
		t.Fatal("range without index must fail")
	}
}

// countingIter counts Next calls, for asserting lazy evaluation.
type countingIter struct {
	in Iterator
	n  int
}

func (c *countingIter) Schema() *Schema { return c.in.Schema() }
func (c *countingIter) Next() (Row, bool) {
	c.n++
	return c.in.Next()
}

func TestHashJoinLazyBuild(t *testing.T) {
	tab := NewTable("t", testSchema(t))
	for i := 0; i < 3; i++ {
		if _, err := tab.Insert(Row{Int(int64(i)), Text("x"), Float(0)}); err != nil {
			t.Fatal(err)
		}
	}
	right := &countingIter{in: NewScan(tab)}
	j, err := NewHashJoin(NewScan(tab), right, []string{"id"}, []string{"id"}, "r")
	if err != nil {
		t.Fatal(err)
	}
	if right.n != 0 {
		t.Fatalf("build side drained at construction: %d Next calls", right.n)
	}
	if got := len(Collect(j)); got != 3 {
		t.Fatalf("join rows = %d, want 3", got)
	}
	if right.n == 0 {
		t.Fatal("build side never drained")
	}
}

func TestHashJoinBuildSideEquivalence(t *testing.T) {
	left := NewTable("l", testSchema(t))
	rightT := NewTable("r", testSchema(t))
	for i := 0; i < 5; i++ {
		if _, err := left.Insert(Row{Int(int64(i % 3)), Text("l"), Float(float64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		if _, err := rightT.Insert(Row{Int(int64(i)), Text("r"), Float(float64(i) * 10)}); err != nil {
			t.Fatal(err)
		}
	}
	collect := func(buildLeft bool) []Row {
		j, err := NewHashJoinBuildSide(NewScan(left), NewScan(rightT), []string{"id"}, []string{"id"}, "r", buildLeft)
		if err != nil {
			t.Fatal(err)
		}
		return Collect(j)
	}
	a, b := collect(false), collect(true)
	if len(a) != 5 || len(b) != 5 {
		t.Fatalf("join sizes: buildRight=%d buildLeft=%d, want 5", len(a), len(b))
	}
	// Same output schema and same multiset of rows regardless of build side.
	key := func(r Row) string {
		k := ""
		for _, v := range r {
			k += v.Key() + "|"
		}
		return k
	}
	seen := map[string]int{}
	for _, r := range a {
		seen[key(r)]++
	}
	for _, r := range b {
		seen[key(r)]--
	}
	for k, n := range seen {
		if n != 0 {
			t.Fatalf("row multiset differs between build sides at %q", k)
		}
	}
}

func TestValueAppendKeyMatchesKey(t *testing.T) {
	vals := []Value{
		Null(), Text("abc"), Text(""), Int(42), Int(-7), Float(3.14), Float(42),
		Bool(true), Bool(false), Blob([]byte{1, 2, 3}),
	}
	for _, v := range vals {
		if got := string(v.AppendKey(nil)); got != v.Key() {
			t.Fatalf("AppendKey mismatch for %v: %q != %q", v, got, v.Key())
		}
	}
	// Int/Float key unification (they join and group together).
	if Int(5).Key() != Float(5).Key() {
		t.Fatal("Int(5) and Float(5) must share a key")
	}
}
