package relation

import (
	"testing"
	"testing/quick"
)

func opsTable(t *testing.T) *Table {
	t.Helper()
	tbl := NewTable("runs", MustSchema(
		Column{Name: "run", Type: TInt},
		Column{Name: "metric", Type: TText},
		Column{Name: "value", Type: TFloat},
	))
	rows := []Row{
		{Int(1), Text("acc"), Float(0.80)},
		{Int(1), Text("recall"), Float(0.70)},
		{Int(2), Text("acc"), Float(0.85)},
		{Int(2), Text("recall"), Float(0.75)},
		{Int(3), Text("acc"), Float(0.90)},
		{Int(3), Text("recall"), Float(0.65)},
	}
	if err := tbl.InsertMany(rows); err != nil {
		t.Fatal(err)
	}
	return tbl
}

func TestScanCollect(t *testing.T) {
	tbl := opsTable(t)
	rows := Collect(NewScan(tbl))
	if len(rows) != 6 {
		t.Fatalf("scan = %d rows", len(rows))
	}
}

func TestFilter(t *testing.T) {
	tbl := opsTable(t)
	pos := tbl.Schema().Index("metric")
	it := NewFilter(NewScan(tbl), func(r Row) bool { return Equal(r[pos], Text("acc")) })
	rows := Collect(it)
	if len(rows) != 3 {
		t.Fatalf("filter = %d rows", len(rows))
	}
}

func TestProjectColumns(t *testing.T) {
	tbl := opsTable(t)
	it, err := NewProjectColumns(NewScan(tbl), "value", "run")
	if err != nil {
		t.Fatal(err)
	}
	if it.Schema().Len() != 2 || it.Schema().Col(0).Name != "value" {
		t.Fatalf("schema: %v", it.Schema().Names())
	}
	rows := Collect(it)
	if len(rows) != 6 || rows[0][0].AsFloat() != 0.80 || rows[0][1].AsInt() != 1 {
		t.Fatalf("project rows: %v", rows[0])
	}
}

func TestProjectMissingColumn(t *testing.T) {
	tbl := opsTable(t)
	if _, err := NewProjectColumns(NewScan(tbl), "nope"); err == nil {
		t.Fatal("missing column must error")
	}
}

func TestProjectExpression(t *testing.T) {
	tbl := opsTable(t)
	vpos := tbl.Schema().Index("value")
	it, err := NewProject(NewScan(tbl), []ProjExpr{
		{Name: "pct", Type: TFloat, Eval: func(r Row) Value { return Float(r[vpos].AsFloat() * 100) }},
	})
	if err != nil {
		t.Fatal(err)
	}
	rows := Collect(it)
	if rows[0][0].AsFloat() != 80.0 {
		t.Fatalf("expr: %v", rows[0])
	}
}

func TestHashJoin(t *testing.T) {
	left := NewTable("l", MustSchema(Column{Name: "run", Type: TInt}, Column{Name: "acc", Type: TFloat}))
	left.InsertMany([]Row{{Int(1), Float(0.8)}, {Int(2), Float(0.85)}, {Int(4), Float(0.7)}})
	right := NewTable("r", MustSchema(Column{Name: "run", Type: TInt}, Column{Name: "recall", Type: TFloat}))
	right.InsertMany([]Row{{Int(1), Float(0.7)}, {Int(2), Float(0.75)}, {Int(3), Float(0.6)}})

	j, err := NewHashJoin(NewScan(left), NewScan(right), []string{"run"}, []string{"run"}, "r")
	if err != nil {
		t.Fatal(err)
	}
	rows := Collect(j)
	if len(rows) != 2 {
		t.Fatalf("join = %d rows", len(rows))
	}
	// schema: run, acc, r.run, recall
	if j.Schema().Index("r.run") < 0 {
		t.Fatalf("join schema: %v", j.Schema().Names())
	}
	for _, r := range rows {
		if r[0].AsInt() != r[2].AsInt() {
			t.Fatalf("join key mismatch: %v", r)
		}
	}
}

func TestHashJoinNullKeysNeverMatch(t *testing.T) {
	left := NewTable("l", MustSchema(Column{Name: "k", Type: TInt}))
	left.Insert(Row{Null()})
	right := NewTable("r", MustSchema(Column{Name: "k", Type: TInt}))
	right.Insert(Row{Null()})
	j, err := NewHashJoin(NewScan(left), NewScan(right), []string{"k"}, []string{"k"}, "r")
	if err != nil {
		t.Fatal(err)
	}
	if rows := Collect(j); len(rows) != 0 {
		t.Fatalf("NULL join keys matched: %v", rows)
	}
}

func TestHashJoinDuplicateKeys(t *testing.T) {
	left := NewTable("l", MustSchema(Column{Name: "k", Type: TInt}))
	left.InsertMany([]Row{{Int(1)}, {Int(1)}})
	right := NewTable("r", MustSchema(Column{Name: "k", Type: TInt}))
	right.InsertMany([]Row{{Int(1)}, {Int(1)}, {Int(1)}})
	j, _ := NewHashJoin(NewScan(left), NewScan(right), []string{"k"}, []string{"k"}, "r")
	if rows := Collect(j); len(rows) != 6 {
		t.Fatalf("cartesian within key = %d", len(rows))
	}
}

func TestSortAscDesc(t *testing.T) {
	tbl := opsTable(t)
	s, err := NewSort(NewScan(tbl), []SortKey{{Col: "value", Desc: true}})
	if err != nil {
		t.Fatal(err)
	}
	rows := Collect(s)
	vpos := tbl.Schema().Index("value")
	for i := 1; i < len(rows); i++ {
		if rows[i][vpos].AsFloat() > rows[i-1][vpos].AsFloat() {
			t.Fatal("desc sort violated")
		}
	}
}

func TestSortMultiKeyStable(t *testing.T) {
	tbl := opsTable(t)
	s, _ := NewSort(NewScan(tbl), []SortKey{{Col: "metric"}, {Col: "run", Desc: true}})
	rows := Collect(s)
	// First three are acc with run 3,2,1; then recall with run 3,2,1.
	if rows[0][1].AsText() != "acc" || rows[0][0].AsInt() != 3 {
		t.Fatalf("multikey sort head: %v", rows[0])
	}
	if rows[3][1].AsText() != "recall" || rows[3][0].AsInt() != 3 {
		t.Fatalf("multikey sort mid: %v", rows[3])
	}
}

func TestLimitOffset(t *testing.T) {
	tbl := opsTable(t)
	rows := Collect(NewLimit(NewScan(tbl), 2, 1))
	if len(rows) != 2 {
		t.Fatalf("limit = %d", len(rows))
	}
	if rows[0][1].AsText() != "recall" {
		t.Fatalf("offset skipped wrong row: %v", rows[0])
	}
	if got := Collect(NewLimit(NewScan(tbl), -1, 0)); len(got) != 6 {
		t.Fatal("negative limit should mean unlimited")
	}
	if got := Collect(NewLimit(NewScan(tbl), 100, 10)); len(got) != 0 {
		t.Fatal("offset past end should be empty")
	}
}

func TestGroupByWithAggregates(t *testing.T) {
	tbl := opsTable(t)
	g, err := NewGroup(NewScan(tbl), []string{"metric"}, []AggSpec{
		{Kind: AggCountStar, As: "n"},
		{Kind: AggAvg, Col: "value", As: "avg_v"},
		{Kind: AggMax, Col: "value", As: "max_v"},
		{Kind: AggMin, Col: "value", As: "min_v"},
		{Kind: AggSum, Col: "value", As: "sum_v"},
	})
	if err != nil {
		t.Fatal(err)
	}
	rows := Collect(g)
	if len(rows) != 2 {
		t.Fatalf("groups = %d", len(rows))
	}
	for _, r := range rows {
		switch r[0].AsText() {
		case "acc":
			if r[1].AsInt() != 3 || r[3].AsFloat() != 0.90 || r[4].AsFloat() != 0.80 {
				t.Fatalf("acc group: %v", r)
			}
			if diff := r[2].AsFloat() - 0.85; diff > 1e-9 || diff < -1e-9 {
				t.Fatalf("acc avg: %v", r[2])
			}
		case "recall":
			if r[1].AsInt() != 3 || r[3].AsFloat() != 0.75 || r[4].AsFloat() != 0.65 {
				t.Fatalf("recall group: %v", r)
			}
		default:
			t.Fatalf("unexpected group %v", r[0])
		}
	}
}

func TestGlobalAggregateEmptyInput(t *testing.T) {
	tbl := NewTable("e", MustSchema(Column{Name: "v", Type: TFloat}))
	g, _ := NewGroup(NewScan(tbl), nil, []AggSpec{
		{Kind: AggCountStar, As: "n"},
		{Kind: AggSum, Col: "v", As: "s"},
	})
	rows := Collect(g)
	if len(rows) != 1 {
		t.Fatalf("global agg rows = %d", len(rows))
	}
	if rows[0][0].AsInt() != 0 || !rows[0][1].IsNull() {
		t.Fatalf("empty agg: %v", rows[0])
	}
}

func TestGroupByEmptyInputNoGroups(t *testing.T) {
	tbl := NewTable("e", MustSchema(Column{Name: "k", Type: TText}, Column{Name: "v", Type: TFloat}))
	g, _ := NewGroup(NewScan(tbl), []string{"k"}, []AggSpec{{Kind: AggCountStar, As: "n"}})
	if rows := Collect(g); len(rows) != 0 {
		t.Fatalf("grouped empty input should yield 0 rows, got %d", len(rows))
	}
}

func TestAggregatesIgnoreNulls(t *testing.T) {
	tbl := NewTable("n", MustSchema(Column{Name: "v", Type: TFloat}))
	tbl.InsertMany([]Row{{Float(1)}, {Null()}, {Float(3)}})
	g, _ := NewGroup(NewScan(tbl), nil, []AggSpec{
		{Kind: AggCount, Col: "v", As: "c"},
		{Kind: AggCountStar, As: "cs"},
		{Kind: AggAvg, Col: "v", As: "a"},
	})
	rows := Collect(g)
	if rows[0][0].AsInt() != 2 || rows[0][1].AsInt() != 3 || rows[0][2].AsFloat() != 2.0 {
		t.Fatalf("null handling: %v", rows[0])
	}
}

func TestDistinct(t *testing.T) {
	tbl := NewTable("d", MustSchema(Column{Name: "v", Type: TInt}))
	tbl.InsertMany([]Row{{Int(1)}, {Int(2)}, {Int(1)}, {Int(3)}, {Int(2)}})
	rows := Collect(NewDistinct(NewScan(tbl)))
	if len(rows) != 3 {
		t.Fatalf("distinct = %d", len(rows))
	}
}

func TestSortIsPermutationProperty(t *testing.T) {
	f := func(vals []int8) bool {
		tbl := NewTable("p", MustSchema(Column{Name: "v", Type: TInt}))
		for _, v := range vals {
			tbl.Insert(Row{Int(int64(v))})
		}
		s, _ := NewSort(NewScan(tbl), []SortKey{{Col: "v"}})
		rows := Collect(s)
		if len(rows) != len(vals) {
			return false
		}
		counts := map[int64]int{}
		for _, v := range vals {
			counts[int64(v)]++
		}
		var prev int64 = -1 << 62
		for _, r := range rows {
			v := r[0].AsInt()
			if v < prev {
				return false
			}
			prev = v
			counts[v]--
		}
		for _, c := range counts {
			if c != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDatabaseCatalog(t *testing.T) {
	db := NewDatabase()
	s := MustSchema(Column{Name: "v", Type: TInt})
	if _, err := db.CreateTable("t1", s); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateTable("T1", s); err == nil {
		t.Fatal("case-insensitive duplicate table must fail")
	}
	if _, ok := db.Table("t1"); !ok {
		t.Fatal("table lookup failed")
	}
	vt := &FuncVirtualTable{TableName: "vt", TableSchema: s, RowsFn: func() []Row { return []Row{{Int(42)}} }}
	if err := db.RegisterVirtual(vt); err != nil {
		t.Fatal(err)
	}
	if err := db.RegisterVirtual(vt); err == nil {
		t.Fatal("duplicate virtual must fail")
	}
	it, err := db.Source("vt")
	if err != nil {
		t.Fatal(err)
	}
	rows := Collect(it)
	if len(rows) != 1 || rows[0][0].AsInt() != 42 {
		t.Fatalf("virtual rows: %v", rows)
	}
	if _, err := db.Source("missing"); err == nil {
		t.Fatal("missing table must error")
	}
	names := db.Names()
	if len(names) != 2 || names[0] != "t1" || names[1] != "vt" {
		t.Fatalf("names: %v", names)
	}
	if !db.DropTable("t1") || db.DropTable("t1") {
		t.Fatal("drop semantics wrong")
	}
}

func TestSchemaConcatDisambiguates(t *testing.T) {
	a := MustSchema(Column{Name: "id", Type: TInt}, Column{Name: "x", Type: TText})
	b := MustSchema(Column{Name: "id", Type: TInt}, Column{Name: "y", Type: TText})
	c, err := Concat(a, b, "b")
	if err != nil {
		t.Fatal(err)
	}
	if c.Index("b.id") < 0 || c.Index("y") < 0 {
		t.Fatalf("concat names: %v", c.Names())
	}
}
