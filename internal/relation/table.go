package relation

import (
	"fmt"
	"slices"
	"sort"
	"sync"
)

// RowID identifies a row within a table for the table's lifetime. IDs are
// never reused; deleted rows leave tombstones.
type RowID int64

// Table is a heap-resident relation with optional secondary indexes. Rows
// live in a dense slice indexed by RowID (append-only; a delete leaves a nil
// tombstone), which keeps inserts, point lookups, and bulk snapshot loads
// O(1) with no hashing. All methods are safe for concurrent use.
type Table struct {
	mu      sync.RWMutex
	name    string
	schema  *Schema
	rows    []Row // RowID-indexed; nil = tombstone
	live    int
	deleted int
	indexes map[string]*HashIndex
	ordered map[string]*OrderedIndex
}

// NewTable creates an empty table with the given schema.
func NewTable(name string, schema *Schema) *Table {
	return &Table{
		name:    name,
		schema:  schema,
		indexes: make(map[string]*HashIndex),
		ordered: make(map[string]*OrderedIndex),
	}
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Schema returns the table schema.
func (t *Table) Schema() *Schema { return t.schema }

// Len returns the number of live rows.
func (t *Table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.live
}

// Insert validates and appends a row, maintaining all indexes. It returns
// the new row's RowID.
func (t *Table) Insert(r Row) (RowID, error) {
	valid, err := t.schema.Validate(r)
	if err != nil {
		return 0, fmt.Errorf("table %s: %w", t.name, err)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	id := RowID(len(t.rows))
	t.rows = append(t.rows, valid)
	t.live++
	for _, ix := range t.indexes {
		ix.add(id, valid)
	}
	for _, ix := range t.ordered {
		ix.add(id, valid)
	}
	return id, nil
}

// LoadRows bulk-appends rows that were already validated when first
// inserted — e.g. rows decoded from a checksummed snapshot. It skips per-row
// schema validation (only arity is checked) and builds ordered indexes by
// sorting once instead of insertion-sorting per row, which is what makes
// snapshot recovery O(live data) with a small constant.
func (t *Table) LoadRows(rows []Row) error {
	width := t.schema.Len()
	for i, r := range rows {
		if len(r) != width {
			return fmt.Errorf("table %s: row %d arity %d != schema arity %d", t.name, i, len(r), width)
		}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	start := RowID(len(t.rows))
	t.rows = append(t.rows, rows...)
	t.live += len(rows)
	for _, ix := range t.indexes {
		ix.bulkAdd(start, rows)
	}
	for _, ix := range t.ordered {
		ix.bulkAdd(start, rows)
	}
	return nil
}

// InsertMany inserts a batch of rows, stopping at the first error.
func (t *Table) InsertMany(rows []Row) error {
	for i, r := range rows {
		if _, err := t.Insert(r); err != nil {
			return fmt.Errorf("row %d: %w", i, err)
		}
	}
	return nil
}

// Get returns the row with the given id, or false if it was deleted or never
// existed. The returned row must not be mutated.
func (t *Table) Get(id RowID) (Row, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if id < 0 || int(id) >= len(t.rows) || t.rows[id] == nil {
		return nil, false
	}
	return t.rows[id], true
}

// Delete removes a row by id. It reports whether a live row was removed.
func (t *Table) Delete(id RowID) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if id < 0 || int(id) >= len(t.rows) || t.rows[id] == nil {
		return false
	}
	r := t.rows[id]
	t.rows[id] = nil
	t.live--
	t.deleted++
	for _, ix := range t.indexes {
		ix.remove(id, r)
	}
	for _, ix := range t.ordered {
		ix.remove(id, r)
	}
	return true
}

// Update replaces the row with the given id, revalidating and reindexing.
func (t *Table) Update(id RowID, r Row) error {
	valid, err := t.schema.Validate(r)
	if err != nil {
		return fmt.Errorf("table %s: %w", t.name, err)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if id < 0 || int(id) >= len(t.rows) || t.rows[id] == nil {
		return fmt.Errorf("table %s: update of missing row %d", t.name, id)
	}
	old := t.rows[id]
	for _, ix := range t.indexes {
		ix.remove(id, old)
		ix.add(id, valid)
	}
	for _, ix := range t.ordered {
		ix.remove(id, old)
		ix.add(id, valid)
	}
	t.rows[id] = valid
	return nil
}

// Scan calls fn for each live row in insertion order; returning false stops
// the scan. The row must not be mutated. The scan observes a snapshot taken
// under one RLock; rows inserted or deleted while fn runs are not reflected.
type scanEntry struct {
	id RowID
	r  Row
}

func (t *Table) Scan(fn func(id RowID, r Row) bool) {
	t.mu.RLock()
	snap := make([]scanEntry, 0, t.live)
	for id, r := range t.rows {
		if r != nil {
			snap = append(snap, scanEntry{id: RowID(id), r: r})
		}
	}
	t.mu.RUnlock()
	for _, e := range snap {
		if !fn(e.id, e.r) {
			return
		}
	}
}

// RowsByIDs returns the live rows among ids in the given order, resolving
// every id under a single RLock. Index access paths use it to fetch the rows
// an index lookup produced.
func (t *Table) RowsByIDs(ids []RowID) []Row {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]Row, 0, len(ids))
	for _, id := range ids {
		if id >= 0 && int(id) < len(t.rows) && t.rows[id] != nil {
			out = append(out, t.rows[id])
		}
	}
	return out
}

// Rows returns a snapshot of all live rows in insertion order.
func (t *Table) Rows() []Row {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]Row, 0, t.live)
	for _, r := range t.rows {
		if r != nil {
			out = append(out, r)
		}
	}
	return out
}

// CreateHashIndex builds (or returns the existing) hash index over the named
// columns. The index is maintained by subsequent mutations.
func (t *Table) CreateHashIndex(cols ...string) (*HashIndex, error) {
	positions, err := t.resolve(cols)
	if err != nil {
		return nil, err
	}
	key := indexKey(cols)
	t.mu.Lock()
	defer t.mu.Unlock()
	if ix, ok := t.indexes[key]; ok {
		return ix, nil
	}
	ix := newHashIndex(cols, positions)
	for id, r := range t.rows {
		if r != nil {
			ix.add(RowID(id), r)
		}
	}
	t.indexes[key] = ix
	return ix, nil
}

// CreateOrderedIndex builds (or returns the existing) ordered index over a
// single column, supporting range scans.
func (t *Table) CreateOrderedIndex(col string) (*OrderedIndex, error) {
	positions, err := t.resolve([]string{col})
	if err != nil {
		return nil, err
	}
	key := indexKey([]string{col})
	t.mu.Lock()
	defer t.mu.Unlock()
	if ix, ok := t.ordered[key]; ok {
		return ix, nil
	}
	ix := newOrderedIndex(col, positions[0])
	for id, r := range t.rows {
		if r != nil {
			ix.add(RowID(id), r)
		}
	}
	t.ordered[key] = ix
	return ix, nil
}

// HashIndexOn returns the hash index over the given columns, if present.
func (t *Table) HashIndexOn(cols ...string) (*HashIndex, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	ix, ok := t.indexes[indexKey(cols)]
	return ix, ok
}

// OrderedIndexOn returns the ordered index over the given column, if present.
func (t *Table) OrderedIndexOn(col string) (*OrderedIndex, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	ix, ok := t.ordered[indexKey([]string{col})]
	return ix, ok
}

// HashIndexColumns lists the column sets of the table's hash indexes, sorted
// widest-first so planners can prefer the most selective covering index.
func (t *Table) HashIndexColumns() [][]string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([][]string, 0, len(t.indexes))
	for _, ix := range t.indexes {
		out = append(out, append([]string(nil), ix.cols...))
	}
	sort.Slice(out, func(a, b int) bool {
		if len(out[a]) != len(out[b]) {
			return len(out[a]) > len(out[b])
		}
		return indexKey(out[a]) < indexKey(out[b])
	})
	return out
}

// OrderedIndexColumns lists the columns carrying ordered indexes, sorted.
func (t *Table) OrderedIndexColumns() []string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]string, 0, len(t.ordered))
	for _, ix := range t.ordered {
		out = append(out, ix.col)
	}
	sort.Strings(out)
	return out
}

func (t *Table) resolve(cols []string) ([]int, error) {
	positions := make([]int, len(cols))
	for i, c := range cols {
		p := t.schema.Index(c)
		if p < 0 {
			return nil, fmt.Errorf("table %s: no column %q", t.name, c)
		}
		positions[i] = p
	}
	return positions, nil
}

func indexKey(cols []string) string {
	out := ""
	for i, c := range cols {
		if i > 0 {
			out += ","
		}
		out += c
	}
	return out
}

// HashIndex is an equality index over one or more columns. Buckets hold a
// pointer to their id slice so the hot add path appends through the pointer
// without allocating a string key per insertion.
type HashIndex struct {
	mu        sync.RWMutex
	cols      []string
	positions []int
	buckets   map[string]*[]RowID
	keyBuf    []byte // reused under mu for add/remove key building
}

func newHashIndex(cols []string, positions []int) *HashIndex {
	return &HashIndex{
		cols:      append([]string(nil), cols...),
		positions: positions,
		buckets:   make(map[string]*[]RowID),
	}
}

// Columns returns the indexed column names.
func (ix *HashIndex) Columns() []string { return append([]string(nil), ix.cols...) }

// appendRowKey builds the bucket key for a row into dst. Callers must hold
// ix.mu when dst is ix.keyBuf.
func (ix *HashIndex) appendRowKey(dst []byte, r Row) []byte {
	for _, p := range ix.positions {
		dst = r[p].appendKey(dst)
		dst = append(dst, '\x1f')
	}
	return dst
}

// bulkAdd indexes a contiguous run of rows (ids start, start+1, ...) under
// one lock acquisition, reusing the key buffer across rows.
func (ix *HashIndex) bulkAdd(start RowID, rows []Row) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	for i, r := range rows {
		ix.addLocked(start+RowID(i), r)
	}
}

func (ix *HashIndex) add(id RowID, r Row) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	ix.addLocked(id, r)
}

func (ix *HashIndex) addLocked(id RowID, r Row) {
	ix.keyBuf = ix.appendRowKey(ix.keyBuf[:0], r)
	ids, ok := ix.buckets[string(ix.keyBuf)] // lookup via []byte key does not allocate
	if !ok {
		ids = new([]RowID)
		ix.buckets[string(ix.keyBuf)] = ids
	}
	*ids = append(*ids, id)
}

func (ix *HashIndex) remove(id RowID, r Row) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	ix.keyBuf = ix.appendRowKey(ix.keyBuf[:0], r)
	ids, ok := ix.buckets[string(ix.keyBuf)]
	if !ok {
		return
	}
	for i, candidate := range *ids {
		if candidate == id {
			*ids = append((*ids)[:i], (*ids)[i+1:]...)
			break
		}
	}
	if len(*ids) == 0 {
		delete(ix.buckets, string(ix.keyBuf))
	}
}

// Lookup returns the RowIDs whose indexed columns equal the given values.
func (ix *HashIndex) Lookup(vals ...Value) []RowID {
	if len(vals) != len(ix.positions) {
		return nil
	}
	var arr [64]byte
	k := arr[:0]
	for _, v := range vals {
		k = v.AppendKey(k)
		k = append(k, '\x1f')
	}
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	ids, ok := ix.buckets[string(k)] // string(k) in a map index does not allocate
	if !ok || len(*ids) == 0 {
		return nil
	}
	return append([]RowID(nil), *ids...)
}

// OrderedIndex is a sorted single-column index supporting range scans. It is
// maintained as a sorted slice; inserts use binary search. For the metadata
// workloads FlorDB serves (append-mostly logs), this is simple and fast.
type OrderedIndex struct {
	mu      sync.RWMutex
	col     string
	pos     int
	entries []orderedEntry
}

type orderedEntry struct {
	v  Value
	id RowID
}

func newOrderedIndex(col string, pos int) *OrderedIndex {
	return &OrderedIndex{col: col, pos: pos}
}

// Column returns the indexed column name.
func (ix *OrderedIndex) Column() string { return ix.col }

func (ix *OrderedIndex) add(id RowID, r Row) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	v := r[ix.pos]
	i := sort.Search(len(ix.entries), func(i int) bool {
		c := Compare(ix.entries[i].v, v)
		return c > 0 || (c == 0 && ix.entries[i].id >= id)
	})
	ix.entries = append(ix.entries, orderedEntry{})
	copy(ix.entries[i+1:], ix.entries[i:])
	ix.entries[i] = orderedEntry{v: v, id: id}
}

func (ix *OrderedIndex) remove(id RowID, r Row) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	v := r[ix.pos]
	i := sort.Search(len(ix.entries), func(i int) bool {
		c := Compare(ix.entries[i].v, v)
		return c > 0 || (c == 0 && ix.entries[i].id >= id)
	})
	if i < len(ix.entries) && ix.entries[i].id == id {
		ix.entries = append(ix.entries[:i], ix.entries[i+1:]...)
	}
}

// bulkAdd indexes a contiguous run of rows (ids start, start+1, ...) by
// appending their entries and re-sorting once — O((n+m) log (n+m)) instead
// of n insertion-sorts with O(m) memmoves each. Recovery workloads arrive
// already ordered (tstamps increase commit by commit), so an O(n) sortedness
// check usually skips the sort entirely; the fallback sorts a permutation of
// indexes to keep the comparison loop free of 72-byte entry copies.
func (ix *OrderedIndex) bulkAdd(start RowID, rows []Row) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	ix.entries = slices.Grow(ix.entries, len(rows))
	for i, r := range rows {
		ix.entries = append(ix.entries, orderedEntry{v: r[ix.pos], id: start + RowID(i)})
	}
	less := func(a, b int) bool {
		c := comparePtr(&ix.entries[a].v, &ix.entries[b].v)
		return c < 0 || (c == 0 && ix.entries[a].id < ix.entries[b].id)
	}
	sorted := true
	for i := 1; i < len(ix.entries); i++ {
		if less(i, i-1) {
			sorted = false
			break
		}
	}
	if sorted {
		return
	}
	perm := make([]int, len(ix.entries))
	for i := range perm {
		perm[i] = i
	}
	slices.SortFunc(perm, func(a, b int) int {
		if less(a, b) {
			return -1
		}
		if less(b, a) {
			return 1
		}
		return 0
	})
	out := make([]orderedEntry, len(ix.entries))
	for i, j := range perm {
		out[i] = ix.entries[j]
	}
	ix.entries = out
}

// Range returns RowIDs with lo <= value <= hi in ascending value order.
// A NULL bound means unbounded on that side.
func (ix *OrderedIndex) Range(lo, hi Value) []RowID {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	start := 0
	if !lo.IsNull() {
		start = sort.Search(len(ix.entries), func(i int) bool {
			return Compare(ix.entries[i].v, lo) >= 0
		})
	}
	var out []RowID
	for i := start; i < len(ix.entries); i++ {
		if !hi.IsNull() && Compare(ix.entries[i].v, hi) > 0 {
			break
		}
		out = append(out, ix.entries[i].id)
	}
	return out
}

// RangeBounds returns RowIDs whose value falls within the given bounds in
// ascending value order, with per-bound inclusivity. A NULL bound means
// unbounded on that side. Unlike Range, NULL-valued entries are never
// returned: SQL range predicates (<, <=, >, >=, BETWEEN) do not match NULL.
func (ix *OrderedIndex) RangeBounds(lo, hi Value, loIncl, hiIncl bool) []RowID {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	var start int
	if lo.IsNull() {
		// Unbounded below: skip the NULL run at the front of the entries.
		start = sort.Search(len(ix.entries), func(i int) bool {
			return !ix.entries[i].v.IsNull()
		})
	} else {
		start = sort.Search(len(ix.entries), func(i int) bool {
			c := Compare(ix.entries[i].v, lo)
			if loIncl {
				return c >= 0
			}
			return c > 0
		})
	}
	var out []RowID
	for i := start; i < len(ix.entries); i++ {
		if !hi.IsNull() {
			c := Compare(ix.entries[i].v, hi)
			if c > 0 || (c == 0 && !hiIncl) {
				break
			}
		}
		out = append(out, ix.entries[i].id)
	}
	return out
}

// Min returns the RowID holding the smallest non-NULL value, if any.
func (ix *OrderedIndex) Min() (RowID, bool) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	for _, e := range ix.entries {
		if !e.v.IsNull() {
			return e.id, true
		}
	}
	return 0, false
}

// Max returns the RowID holding the largest value, if any.
func (ix *OrderedIndex) Max() (RowID, bool) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	if len(ix.entries) == 0 {
		return 0, false
	}
	return ix.entries[len(ix.entries)-1].id, true
}
