package relation

import (
	"fmt"
	"sort"
	"sync"
)

// RowID identifies a row within a table for the table's lifetime. IDs are
// never reused; deleted rows leave tombstones.
type RowID int64

// Table is a heap-resident relation with optional secondary indexes.
// All methods are safe for concurrent use.
type Table struct {
	mu      sync.RWMutex
	name    string
	schema  *Schema
	rows    map[RowID]Row
	order   []RowID // insertion order, may contain tombstoned ids
	nextID  RowID
	deleted int
	indexes map[string]*HashIndex
	ordered map[string]*OrderedIndex
}

// NewTable creates an empty table with the given schema.
func NewTable(name string, schema *Schema) *Table {
	return &Table{
		name:    name,
		schema:  schema,
		rows:    make(map[RowID]Row),
		indexes: make(map[string]*HashIndex),
		ordered: make(map[string]*OrderedIndex),
	}
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Schema returns the table schema.
func (t *Table) Schema() *Schema { return t.schema }

// Len returns the number of live rows.
func (t *Table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.rows)
}

// Insert validates and appends a row, maintaining all indexes. It returns
// the new row's RowID.
func (t *Table) Insert(r Row) (RowID, error) {
	valid, err := t.schema.Validate(r)
	if err != nil {
		return 0, fmt.Errorf("table %s: %w", t.name, err)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	id := t.nextID
	t.nextID++
	t.rows[id] = valid
	t.order = append(t.order, id)
	for _, ix := range t.indexes {
		ix.add(id, valid)
	}
	for _, ix := range t.ordered {
		ix.add(id, valid)
	}
	return id, nil
}

// InsertMany inserts a batch of rows, stopping at the first error.
func (t *Table) InsertMany(rows []Row) error {
	for i, r := range rows {
		if _, err := t.Insert(r); err != nil {
			return fmt.Errorf("row %d: %w", i, err)
		}
	}
	return nil
}

// Get returns the row with the given id, or false if it was deleted or never
// existed. The returned row must not be mutated.
func (t *Table) Get(id RowID) (Row, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	r, ok := t.rows[id]
	return r, ok
}

// Delete removes a row by id. It reports whether a live row was removed.
func (t *Table) Delete(id RowID) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	r, ok := t.rows[id]
	if !ok {
		return false
	}
	delete(t.rows, id)
	t.deleted++
	for _, ix := range t.indexes {
		ix.remove(id, r)
	}
	for _, ix := range t.ordered {
		ix.remove(id, r)
	}
	return true
}

// Update replaces the row with the given id, revalidating and reindexing.
func (t *Table) Update(id RowID, r Row) error {
	valid, err := t.schema.Validate(r)
	if err != nil {
		return fmt.Errorf("table %s: %w", t.name, err)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	old, ok := t.rows[id]
	if !ok {
		return fmt.Errorf("table %s: update of missing row %d", t.name, id)
	}
	for _, ix := range t.indexes {
		ix.remove(id, old)
		ix.add(id, valid)
	}
	for _, ix := range t.ordered {
		ix.remove(id, old)
		ix.add(id, valid)
	}
	t.rows[id] = valid
	return nil
}

// Scan calls fn for each live row in insertion order; returning false stops
// the scan. The row must not be mutated.
func (t *Table) Scan(fn func(id RowID, r Row) bool) {
	t.mu.RLock()
	ids := make([]RowID, 0, len(t.rows))
	for _, id := range t.order {
		if _, ok := t.rows[id]; ok {
			ids = append(ids, id)
		}
	}
	t.mu.RUnlock()
	for _, id := range ids {
		t.mu.RLock()
		r, ok := t.rows[id]
		t.mu.RUnlock()
		if !ok {
			continue
		}
		if !fn(id, r) {
			return
		}
	}
}

// Rows returns a snapshot of all live rows in insertion order.
func (t *Table) Rows() []Row {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]Row, 0, len(t.rows))
	for _, id := range t.order {
		if r, ok := t.rows[id]; ok {
			out = append(out, r)
		}
	}
	return out
}

// CreateHashIndex builds (or returns the existing) hash index over the named
// columns. The index is maintained by subsequent mutations.
func (t *Table) CreateHashIndex(cols ...string) (*HashIndex, error) {
	positions, err := t.resolve(cols)
	if err != nil {
		return nil, err
	}
	key := indexKey(cols)
	t.mu.Lock()
	defer t.mu.Unlock()
	if ix, ok := t.indexes[key]; ok {
		return ix, nil
	}
	ix := newHashIndex(positions)
	for _, id := range t.order {
		if r, ok := t.rows[id]; ok {
			ix.add(id, r)
		}
	}
	t.indexes[key] = ix
	return ix, nil
}

// CreateOrderedIndex builds (or returns the existing) ordered index over a
// single column, supporting range scans.
func (t *Table) CreateOrderedIndex(col string) (*OrderedIndex, error) {
	positions, err := t.resolve([]string{col})
	if err != nil {
		return nil, err
	}
	key := indexKey([]string{col})
	t.mu.Lock()
	defer t.mu.Unlock()
	if ix, ok := t.ordered[key]; ok {
		return ix, nil
	}
	ix := newOrderedIndex(positions[0])
	for _, id := range t.order {
		if r, ok := t.rows[id]; ok {
			ix.add(id, r)
		}
	}
	t.ordered[key] = ix
	return ix, nil
}

// HashIndexOn returns the hash index over the given columns, if present.
func (t *Table) HashIndexOn(cols ...string) (*HashIndex, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	ix, ok := t.indexes[indexKey(cols)]
	return ix, ok
}

func (t *Table) resolve(cols []string) ([]int, error) {
	positions := make([]int, len(cols))
	for i, c := range cols {
		p := t.schema.Index(c)
		if p < 0 {
			return nil, fmt.Errorf("table %s: no column %q", t.name, c)
		}
		positions[i] = p
	}
	return positions, nil
}

func indexKey(cols []string) string {
	out := ""
	for i, c := range cols {
		if i > 0 {
			out += ","
		}
		out += c
	}
	return out
}

// HashIndex is an equality index over one or more columns.
type HashIndex struct {
	mu        sync.RWMutex
	positions []int
	buckets   map[string][]RowID
}

func newHashIndex(positions []int) *HashIndex {
	return &HashIndex{positions: positions, buckets: make(map[string][]RowID)}
}

func (ix *HashIndex) keyFor(r Row) string {
	k := ""
	for _, p := range ix.positions {
		k += r[p].Key() + "\x1f"
	}
	return k
}

func (ix *HashIndex) add(id RowID, r Row) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	k := ix.keyFor(r)
	ix.buckets[k] = append(ix.buckets[k], id)
}

func (ix *HashIndex) remove(id RowID, r Row) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	k := ix.keyFor(r)
	ids := ix.buckets[k]
	for i, candidate := range ids {
		if candidate == id {
			ix.buckets[k] = append(ids[:i], ids[i+1:]...)
			break
		}
	}
	if len(ix.buckets[k]) == 0 {
		delete(ix.buckets, k)
	}
}

// Lookup returns the RowIDs whose indexed columns equal the given values.
func (ix *HashIndex) Lookup(vals ...Value) []RowID {
	if len(vals) != len(ix.positions) {
		return nil
	}
	k := ""
	for _, v := range vals {
		k += v.Key() + "\x1f"
	}
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return append([]RowID(nil), ix.buckets[k]...)
}

// OrderedIndex is a sorted single-column index supporting range scans. It is
// maintained as a sorted slice; inserts use binary search. For the metadata
// workloads FlorDB serves (append-mostly logs), this is simple and fast.
type OrderedIndex struct {
	mu      sync.RWMutex
	pos     int
	entries []orderedEntry
}

type orderedEntry struct {
	v  Value
	id RowID
}

func newOrderedIndex(pos int) *OrderedIndex { return &OrderedIndex{pos: pos} }

func (ix *OrderedIndex) add(id RowID, r Row) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	v := r[ix.pos]
	i := sort.Search(len(ix.entries), func(i int) bool {
		c := Compare(ix.entries[i].v, v)
		return c > 0 || (c == 0 && ix.entries[i].id >= id)
	})
	ix.entries = append(ix.entries, orderedEntry{})
	copy(ix.entries[i+1:], ix.entries[i:])
	ix.entries[i] = orderedEntry{v: v, id: id}
}

func (ix *OrderedIndex) remove(id RowID, r Row) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	v := r[ix.pos]
	i := sort.Search(len(ix.entries), func(i int) bool {
		c := Compare(ix.entries[i].v, v)
		return c > 0 || (c == 0 && ix.entries[i].id >= id)
	})
	if i < len(ix.entries) && ix.entries[i].id == id {
		ix.entries = append(ix.entries[:i], ix.entries[i+1:]...)
	}
}

// Range returns RowIDs with lo <= value <= hi in ascending value order.
// A NULL bound means unbounded on that side.
func (ix *OrderedIndex) Range(lo, hi Value) []RowID {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	start := 0
	if !lo.IsNull() {
		start = sort.Search(len(ix.entries), func(i int) bool {
			return Compare(ix.entries[i].v, lo) >= 0
		})
	}
	var out []RowID
	for i := start; i < len(ix.entries); i++ {
		if !hi.IsNull() && Compare(ix.entries[i].v, hi) > 0 {
			break
		}
		out = append(out, ix.entries[i].id)
	}
	return out
}

// Min returns the RowID holding the smallest non-NULL value, if any.
func (ix *OrderedIndex) Min() (RowID, bool) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	for _, e := range ix.entries {
		if !e.v.IsNull() {
			return e.id, true
		}
	}
	return 0, false
}

// Max returns the RowID holding the largest value, if any.
func (ix *OrderedIndex) Max() (RowID, bool) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	if len(ix.entries) == 0 {
		return 0, false
	}
	return ix.entries[len(ix.entries)-1].id, true
}
