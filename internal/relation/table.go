package relation

import (
	"fmt"
	"slices"
	"sort"
	"sync"
	"sync/atomic"
)

// RowID identifies a row within a table for the table's lifetime. IDs are
// never reused; deleted rows leave tombstones.
type RowID int64

// Table is a heap-resident relation with optional secondary indexes, stored
// as an epoch-based multiversion (MVCC) row store:
//
//   - The row slice is append-only. Every row carries the epoch it was born
//     in; a delete does not remove the row but stamps a tombstone epoch.
//   - Writers serialize on an internal mutex and publish each change as a new
//     immutable tableState via an atomic pointer.
//   - Readers load the published state without taking any lock: "latest"
//     reads (the Table methods below) see every published row whose tombstone
//     is unset, while snapshot reads (Database.Snapshot / Table.At) see
//     exactly the rows visible at one pinned epoch — with zero copying.
//
// Epochs advance at commit boundaries (Database.AdvanceEpoch). Rows written
// between commits are stamped with the next epoch, so a committed-epoch
// snapshot never observes a transaction in flight.
type Table struct {
	name   string
	schema *Schema
	epoch  *atomic.Int64 // committed-epoch counter, shared with the owning Database

	mu    sync.Mutex // serializes writers; readers never take it
	state atomic.Pointer[tableState]

	// zones caches per-page zone maps over the append-only prefix of the row
	// store (see zonemap.go). Built lazily by predicate scans, seeded by the
	// snapshot loader; derived purely from immutable data, so it is shared by
	// every state and every pinned snapshot of the table.
	zones atomic.Pointer[zoneCache]
}

// tableState is one published version of a table. All slices are append-only
// between states: a newer state may share backing arrays with an older one,
// but entries below a state's length are never mutated after that state is
// published — Delete and Update copy the tombstone array before stamping
// (copy-on-write), so a pinned state is immutable in the strongest sense
// and readers need no atomics.
type tableState struct {
	// rows is RowID-indexed. Deletes set a tombstone epoch rather than
	// removing the row; the epoch-retention GC (pruneBelow) may nil out the
	// payload of versions tombstoned at or below the retention floor, which
	// are invisible at every queryable epoch, so no reader dereferences them.
	rows []Row
	born []int64 // epoch at which the row became visible
	dead []int64 // 0 = live; otherwise the epoch at which the row was deleted
	live int     // live rows in the latest view (tombstones excluded)

	// Secondary indexes. Index entries are added on insert and retained on
	// delete (older snapshots still need them); readers filter candidate
	// RowIDs through row visibility. The maps are copy-on-write: creating an
	// index publishes a new state with a new map.
	indexes map[string]*HashIndex
	ordered map[string]*OrderedIndex
}

// NewTable creates an empty table with the given schema. The table gets a
// private epoch counter; tables created through Database.CreateTable share
// the database's counter so one snapshot can pin all tables consistently.
func NewTable(name string, schema *Schema) *Table {
	t := &Table{name: name, schema: schema, epoch: new(atomic.Int64)}
	t.state.Store(&tableState{
		indexes: make(map[string]*HashIndex),
		ordered: make(map[string]*OrderedIndex),
	})
	return t
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Schema returns the table schema.
func (t *Table) Schema() *Schema { return t.schema }

// writeEpoch is the epoch stamped on rows born or killed now: the epoch the
// in-flight transaction will publish at its commit boundary.
func (t *Table) writeEpoch() int64 { return t.epoch.Load() + 1 }

// Len returns the number of live rows in the latest view.
func (t *Table) Len() int { return t.state.Load().live }

// Insert validates and appends a row, maintaining all indexes. It returns
// the new row's RowID. The row becomes visible to committed-epoch snapshots
// once the owning database's epoch advances past the current one.
func (t *Table) Insert(r Row) (RowID, error) {
	valid, err := t.schema.Validate(r)
	if err != nil {
		return 0, fmt.Errorf("table %s: %w", t.name, err)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	st := t.state.Load()
	id := RowID(len(st.rows))
	ns := &tableState{
		rows:    append(st.rows, valid),
		born:    append(st.born, t.writeEpoch()),
		dead:    append(st.dead, 0),
		live:    st.live + 1,
		indexes: st.indexes,
		ordered: st.ordered,
	}
	for _, ix := range ns.indexes {
		ix.add(id, valid)
	}
	for _, ix := range ns.ordered {
		ix.add(id, valid)
	}
	t.state.Store(ns)
	return id, nil
}

// LoadRows bulk-appends rows that were already validated when first
// inserted — e.g. rows decoded from a checksummed snapshot. It skips per-row
// schema validation (only arity is checked) and builds ordered indexes by
// sorting once instead of insertion-sorting per row, which is what makes
// snapshot recovery O(live data) with a small constant.
func (t *Table) LoadRows(rows []Row) error {
	width := t.schema.Len()
	for i, r := range rows {
		if len(r) != width {
			return fmt.Errorf("table %s: row %d arity %d != schema arity %d", t.name, i, len(r), width)
		}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	st := t.state.Load()
	start := RowID(len(st.rows))
	e := t.writeEpoch()
	born := slices.Grow(st.born, len(rows))
	dead := slices.Grow(st.dead, len(rows))
	for range rows {
		born = append(born, e)
		dead = append(dead, 0)
	}
	ns := &tableState{
		rows:    append(st.rows, rows...),
		born:    born,
		dead:    dead,
		live:    st.live + len(rows),
		indexes: st.indexes,
		ordered: st.ordered,
	}
	for _, ix := range ns.indexes {
		ix.bulkAdd(start, rows)
	}
	for _, ix := range ns.ordered {
		ix.bulkAdd(start, rows)
	}
	t.state.Store(ns)
	return nil
}

// Versions exposes the published row store verbatim: every version with its
// born/dead epochs, including tombstoned versions older snapshots may still
// need. Versions reclaimed by the retention GC have a nil row. The returned
// slices are the live backing arrays — callers must not mutate them. The
// snapshot writer uses this to persist full MVCC history, not just the
// latest-visible rows.
func (t *Table) Versions() (rows []Row, born, dead []int64) {
	st := t.state.Load()
	return st.rows, st.born, st.dead
}

// LoadVersions bulk-appends rows carrying explicit born/dead epochs — the
// recovery path for version-preserving snapshots. Unlike LoadRows it does not
// stamp the current write epoch: each version keeps the epochs it had when the
// snapshot was written, so time-travel reads after recovery see exactly the
// history that was persisted. Rows must be non-nil (the snapshot writer folds
// reclaimed versions out instead of persisting nils).
func (t *Table) LoadVersions(rows []Row, born, dead []int64) error {
	if len(born) != len(rows) || len(dead) != len(rows) {
		return fmt.Errorf("table %s: version arity mismatch: %d rows, %d born, %d dead",
			t.name, len(rows), len(born), len(dead))
	}
	width := t.schema.Len()
	live := 0
	for i, r := range rows {
		if r == nil {
			return fmt.Errorf("table %s: version %d has nil row", t.name, i)
		}
		if len(r) != width {
			return fmt.Errorf("table %s: row %d arity %d != schema arity %d", t.name, i, len(r), width)
		}
		if dead[i] == 0 {
			live++
		}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	st := t.state.Load()
	start := RowID(len(st.rows))
	ns := &tableState{
		rows:    append(st.rows, rows...),
		born:    append(st.born, born...),
		dead:    append(st.dead, dead...),
		live:    st.live + live,
		indexes: st.indexes,
		ordered: st.ordered,
	}
	for _, ix := range ns.indexes {
		ix.bulkAdd(start, rows)
	}
	for _, ix := range ns.ordered {
		ix.bulkAdd(start, rows)
	}
	t.state.Store(ns)
	return nil
}

// pruneBelow publishes a state whose row payloads are nil'd for versions
// tombstoned at or below the retention floor. Such versions are invisible at
// every epoch >= floor — and the owning database refuses snapshots below the
// floor — so no reader of this or any later state can reach them. Snapshots
// pinned before the prune keep their own (immutable) state and are unaffected.
// Born/dead arrays and RowIDs are preserved so index entries stay valid.
// It returns the number of versions reclaimed by this call.
func (t *Table) pruneBelow(floor int64) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	st := t.state.Load()
	n := 0
	for id := range st.rows {
		if st.rows[id] != nil && st.dead[id] != 0 && st.dead[id] <= floor {
			n++
		}
	}
	if n == 0 {
		return 0
	}
	rows := make([]Row, len(st.rows))
	copy(rows, st.rows)
	for id := range rows {
		if st.dead[id] != 0 && st.dead[id] <= floor {
			rows[id] = nil
		}
	}
	t.state.Store(&tableState{
		rows: rows, born: st.born, dead: st.dead, live: st.live,
		indexes: st.indexes, ordered: st.ordered,
	})
	return n
}

// InsertMany inserts a batch of rows, stopping at the first error.
func (t *Table) InsertMany(rows []Row) error {
	for i, r := range rows {
		if _, err := t.Insert(r); err != nil {
			return fmt.Errorf("row %d: %w", i, err)
		}
	}
	return nil
}

// Get returns the row with the given id, or false if it was deleted or never
// existed. The returned row must not be mutated.
func (t *Table) Get(id RowID) (Row, bool) {
	st := t.state.Load()
	if id < 0 || int(id) >= len(st.rows) || st.dead[id] != 0 {
		return nil, false
	}
	return st.rows[id], true
}

// tombstoned returns a copy of dead with id stamped at epoch e. Tombstones
// copy-on-write instead of mutating in place so every already-published
// state — including latest-epoch views pinned mid-transaction — stays
// exactly as pinned. Deletes are rare in FlorDB's append-mostly workload,
// so the O(rows) copy is a fair trade for lock-free, atomics-free readers.
func (s *tableState) tombstoned(id RowID, e int64) []int64 {
	dead := make([]int64, len(s.dead))
	copy(dead, s.dead)
	dead[id] = e
	return dead
}

// Delete tombstones a row by id at the current write epoch. It reports
// whether a live row was removed. The row stays visible to snapshots pinned
// at earlier epochs (and to any view pinned before the delete); latest
// reads stop seeing it immediately.
func (t *Table) Delete(id RowID) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	st := t.state.Load()
	if id < 0 || int(id) >= len(st.rows) || st.dead[id] != 0 {
		return false
	}
	ns := &tableState{
		rows: st.rows, born: st.born, dead: st.tombstoned(id, t.writeEpoch()),
		live: st.live - 1, indexes: st.indexes, ordered: st.ordered,
	}
	t.state.Store(ns)
	return true
}

// Update replaces the row with the given id by tombstoning it and appending
// the new version, whose RowID is returned. Snapshots pinned before the
// update keep seeing the old version under the old id; the swap publishes
// as one state store, so no reader ever observes the row absent or doubled.
func (t *Table) Update(id RowID, r Row) (RowID, error) {
	valid, err := t.schema.Validate(r)
	if err != nil {
		return 0, fmt.Errorf("table %s: %w", t.name, err)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	st := t.state.Load()
	if id < 0 || int(id) >= len(st.rows) || st.dead[id] != 0 {
		return 0, fmt.Errorf("table %s: update of missing row %d", t.name, id)
	}
	e := t.writeEpoch()
	nid := RowID(len(st.rows))
	ns := &tableState{
		rows:    append(st.rows, valid),
		born:    append(st.born, e),
		dead:    append(st.tombstoned(id, e), 0),
		live:    st.live,
		indexes: st.indexes,
		ordered: st.ordered,
	}
	for _, ix := range ns.indexes {
		ix.add(nid, valid)
	}
	for _, ix := range ns.ordered {
		ix.add(nid, valid)
	}
	t.state.Store(ns)
	return nid, nil
}

// Scan calls fn for each live row in insertion order; returning false stops
// the scan. The row must not be mutated. The scan walks the published state
// directly — no lock is taken and nothing is copied; rows inserted or
// deleted after the state was loaded are not reflected.
func (t *Table) Scan(fn func(id RowID, r Row) bool) {
	t.state.Load().scan(latestEpoch, fn)
}

// latestEpoch makes every published, non-tombstoned row visible.
const latestEpoch = int64(1)<<62 - 1

// scan walks the rows visible at the given epoch.
func (s *tableState) scan(epoch int64, fn func(id RowID, r Row) bool) {
	for id := range s.rows {
		if s.visible(RowID(id), epoch) {
			if !fn(RowID(id), s.rows[id]) {
				return
			}
		}
	}
}

// visible reports whether row id exists at the given epoch: born at or
// before it, not tombstoned at or before it. Published states are immutable
// below their length (tombstones copy-on-write), so plain reads suffice.
func (s *tableState) visible(id RowID, epoch int64) bool {
	if id < 0 || int(id) >= len(s.rows) || s.born[id] > epoch {
		return false
	}
	d := s.dead[id]
	return d == 0 || d > epoch
}

func (s *tableState) rowsAt(epoch int64) []Row {
	out := make([]Row, 0, s.live)
	for id := range s.rows {
		if s.visible(RowID(id), epoch) {
			out = append(out, s.rows[id])
		}
	}
	return out
}

func (s *tableState) rowsByIDsAt(epoch int64, ids []RowID) []Row {
	out := make([]Row, 0, len(ids))
	for _, id := range ids {
		if s.visible(id, epoch) {
			out = append(out, s.rows[id])
		}
	}
	return out
}

// RowsByIDs returns the live rows among ids in the given order. Index access
// paths use it to fetch the rows an index lookup produced.
func (t *Table) RowsByIDs(ids []RowID) []Row {
	return t.state.Load().rowsByIDsAt(latestEpoch, ids)
}

// Rows returns the live rows in insertion order.
func (t *Table) Rows() []Row {
	return t.state.Load().rowsAt(latestEpoch)
}

// batchState exposes the published state and the epoch batch scans filter
// visibility at (see BatchScanOp); latest reads see every non-tombstoned row.
func (t *Table) batchState() (*tableState, int64) { return t.state.Load(), latestEpoch }

// At pins the table's current state at the given epoch, returning a
// consistent immutable view. Most callers want Database.Snapshot, which pins
// every table of a database at one epoch.
func (t *Table) At(epoch int64) *TableSnapshot {
	return &TableSnapshot{name: t.name, schema: t.schema, epoch: epoch, st: t.state.Load(), owner: t}
}

// CreateHashIndex builds (or returns the existing) hash index over the named
// columns. The index is maintained by subsequent mutations.
func (t *Table) CreateHashIndex(cols ...string) (*HashIndex, error) {
	positions, err := t.resolve(cols)
	if err != nil {
		return nil, err
	}
	key := indexKey(cols)
	t.mu.Lock()
	defer t.mu.Unlock()
	st := t.state.Load()
	if ix, ok := st.indexes[key]; ok {
		return ix, nil
	}
	ix := newHashIndex(cols, positions)
	ix.bulkAdd(0, st.rows)
	indexes := make(map[string]*HashIndex, len(st.indexes)+1)
	for k, v := range st.indexes {
		indexes[k] = v
	}
	indexes[key] = ix
	ns := &tableState{
		rows: st.rows, born: st.born, dead: st.dead, live: st.live,
		indexes: indexes, ordered: st.ordered,
	}
	t.state.Store(ns)
	return ix, nil
}

// CreateOrderedIndex builds (or returns the existing) ordered index over a
// single column, supporting range scans.
func (t *Table) CreateOrderedIndex(col string) (*OrderedIndex, error) {
	positions, err := t.resolve([]string{col})
	if err != nil {
		return nil, err
	}
	key := indexKey([]string{col})
	t.mu.Lock()
	defer t.mu.Unlock()
	st := t.state.Load()
	if ix, ok := st.ordered[key]; ok {
		return ix, nil
	}
	ix := newOrderedIndex(col, positions[0])
	ix.bulkAdd(0, st.rows)
	ordered := make(map[string]*OrderedIndex, len(st.ordered)+1)
	for k, v := range st.ordered {
		ordered[k] = v
	}
	ordered[key] = ix
	ns := &tableState{
		rows: st.rows, born: st.born, dead: st.dead, live: st.live,
		indexes: st.indexes, ordered: ordered,
	}
	t.state.Store(ns)
	return ix, nil
}

// HashIndexOn returns the hash index over the given columns, if present.
// Lookups may return tombstoned or not-yet-visible rows; resolve the ids
// through RowsByIDs (or a snapshot) to apply visibility.
func (t *Table) HashIndexOn(cols ...string) (*HashIndex, bool) {
	ix, ok := t.state.Load().indexes[indexKey(cols)]
	return ix, ok
}

// OrderedIndexOn returns the ordered index over the given column, if present.
func (t *Table) OrderedIndexOn(col string) (*OrderedIndex, bool) {
	ix, ok := t.state.Load().ordered[indexKey([]string{col})]
	return ix, ok
}

// HashIndexColumns lists the column sets of the table's hash indexes, sorted
// widest-first so planners can prefer the most selective covering index.
func (t *Table) HashIndexColumns() [][]string {
	return t.state.Load().hashIndexColumns()
}

func (s *tableState) hashIndexColumns() [][]string {
	out := make([][]string, 0, len(s.indexes))
	for _, ix := range s.indexes {
		out = append(out, append([]string(nil), ix.cols...))
	}
	sort.Slice(out, func(a, b int) bool {
		if len(out[a]) != len(out[b]) {
			return len(out[a]) > len(out[b])
		}
		return indexKey(out[a]) < indexKey(out[b])
	})
	return out
}

// OrderedIndexColumns lists the columns carrying ordered indexes, sorted.
func (t *Table) OrderedIndexColumns() []string {
	return t.state.Load().orderedIndexColumns()
}

func (s *tableState) orderedIndexColumns() []string {
	out := make([]string, 0, len(s.ordered))
	for _, ix := range s.ordered {
		out = append(out, ix.col)
	}
	sort.Strings(out)
	return out
}

func (t *Table) resolve(cols []string) ([]int, error) {
	positions := make([]int, len(cols))
	for i, c := range cols {
		p := t.schema.Index(c)
		if p < 0 {
			return nil, fmt.Errorf("table %s: no column %q", t.name, c)
		}
		positions[i] = p
	}
	return positions, nil
}

func indexKey(cols []string) string {
	out := ""
	for i, c := range cols {
		if i > 0 {
			out += ","
		}
		out += c
	}
	return out
}

// TableSnapshot is an immutable view of one table pinned at one epoch. All
// methods are lock-free and safe for concurrent use; none of them copy the
// row store. It implements TableReader.
type TableSnapshot struct {
	name   string
	schema *Schema
	epoch  int64
	st     *tableState
	// owner is the table the snapshot was pinned from; batch scans reach the
	// shared zone-map cache through it (zone maps derive from immutable data,
	// so sharing them across snapshots of any epoch is sound). nil for
	// hand-built snapshots, which then scan without pruning.
	owner *Table
}

// Name returns the table name.
func (v *TableSnapshot) Name() string { return v.name }

// Schema returns the table schema.
func (v *TableSnapshot) Schema() *Schema { return v.schema }

// Epoch returns the epoch the view is pinned at.
func (v *TableSnapshot) Epoch() int64 { return v.epoch }

// Len estimates the number of rows visible in the view. It is exact when no
// writer was mid-transaction at pin time; planners use it only to size hash
// joins and pick build sides, so the estimate is deliberately O(1).
func (v *TableSnapshot) Len() int { return v.st.live }

// Scan calls fn for each visible row in insertion order.
func (v *TableSnapshot) Scan(fn func(id RowID, r Row) bool) { v.st.scan(v.epoch, fn) }

// Get returns the row with the given id if it is visible in the view.
func (v *TableSnapshot) Get(id RowID) (Row, bool) {
	if !v.st.visible(id, v.epoch) {
		return nil, false
	}
	return v.st.rows[id], true
}

// Rows returns the visible rows in insertion order.
func (v *TableSnapshot) Rows() []Row { return v.st.rowsAt(v.epoch) }

// RowsByIDs returns the visible rows among ids in the given order.
func (v *TableSnapshot) RowsByIDs(ids []RowID) []Row { return v.st.rowsByIDsAt(v.epoch, ids) }

// batchState exposes the pinned state and epoch for batch scans.
func (v *TableSnapshot) batchState() (*tableState, int64) { return v.st, v.epoch }

// HashIndexOn returns the hash index over the given columns, if present.
func (v *TableSnapshot) HashIndexOn(cols ...string) (*HashIndex, bool) {
	ix, ok := v.st.indexes[indexKey(cols)]
	return ix, ok
}

// OrderedIndexOn returns the ordered index over the given column, if present.
func (v *TableSnapshot) OrderedIndexOn(col string) (*OrderedIndex, bool) {
	ix, ok := v.st.ordered[indexKey([]string{col})]
	return ix, ok
}

// HashIndexColumns lists the column sets of the table's hash indexes.
func (v *TableSnapshot) HashIndexColumns() [][]string { return v.st.hashIndexColumns() }

// OrderedIndexColumns lists the columns carrying ordered indexes.
func (v *TableSnapshot) OrderedIndexColumns() []string { return v.st.orderedIndexColumns() }

// TableReader is the read surface shared by live tables (latest visibility)
// and pinned TableSnapshots (epoch visibility). The SQL planner, the pivot
// engine, and every other reader operate on it, so the same code path serves
// both a single-user session and concurrent snapshot readers.
type TableReader interface {
	Name() string
	Schema() *Schema
	Len() int
	Scan(fn func(id RowID, r Row) bool)
	Get(id RowID) (Row, bool)
	Rows() []Row
	RowsByIDs(ids []RowID) []Row
	HashIndexOn(cols ...string) (*HashIndex, bool)
	OrderedIndexOn(col string) (*OrderedIndex, bool)
	HashIndexColumns() [][]string
	OrderedIndexColumns() []string
}

var (
	_ TableReader = (*Table)(nil)
	_ TableReader = (*TableSnapshot)(nil)
)

// HashIndex is an equality index over one or more columns. Buckets hold a
// pointer to their id slice so the hot add path appends through the pointer
// without allocating a string key per insertion. Entries are retained when
// rows are tombstoned: MVCC readers filter candidate ids through row
// visibility instead.
type HashIndex struct {
	mu        sync.RWMutex
	cols      []string
	positions []int
	buckets   map[string]*[]RowID
	keyBuf    []byte // reused under mu for add key building
}

func newHashIndex(cols []string, positions []int) *HashIndex {
	return &HashIndex{
		cols:      append([]string(nil), cols...),
		positions: positions,
		buckets:   make(map[string]*[]RowID),
	}
}

// Columns returns the indexed column names.
func (ix *HashIndex) Columns() []string { return append([]string(nil), ix.cols...) }

// appendRowKey builds the bucket key for a row into dst. Callers must hold
// ix.mu when dst is ix.keyBuf.
func (ix *HashIndex) appendRowKey(dst []byte, r Row) []byte {
	for _, p := range ix.positions {
		dst = r[p].appendKey(dst)
		dst = append(dst, '\x1f')
	}
	return dst
}

// bulkAdd indexes a contiguous run of rows (ids start, start+1, ...) under
// one lock acquisition, reusing the key buffer across rows.
func (ix *HashIndex) bulkAdd(start RowID, rows []Row) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	for i, r := range rows {
		ix.addLocked(start+RowID(i), r)
	}
}

func (ix *HashIndex) add(id RowID, r Row) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	ix.addLocked(id, r)
}

func (ix *HashIndex) addLocked(id RowID, r Row) {
	ix.keyBuf = ix.appendRowKey(ix.keyBuf[:0], r)
	ids, ok := ix.buckets[string(ix.keyBuf)] // lookup via []byte key does not allocate
	if !ok {
		ids = new([]RowID)
		ix.buckets[string(ix.keyBuf)] = ids
	}
	*ids = append(*ids, id)
}

// Lookup returns the RowIDs whose indexed columns equal the given values.
// The ids are candidates: callers must resolve them through a visibility
// filter (Table.RowsByIDs or a TableSnapshot) because tombstoned and
// not-yet-visible rows stay indexed.
func (ix *HashIndex) Lookup(vals ...Value) []RowID {
	if len(vals) != len(ix.positions) {
		return nil
	}
	var arr [64]byte
	k := arr[:0]
	for _, v := range vals {
		k = v.AppendKey(k)
		k = append(k, '\x1f')
	}
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	ids, ok := ix.buckets[string(k)] // string(k) in a map index does not allocate
	if !ok || len(*ids) == 0 {
		return nil
	}
	return append([]RowID(nil), *ids...)
}

// OrderedIndex is a sorted single-column index supporting range scans. It is
// maintained as a sorted slice; inserts use binary search. For the metadata
// workloads FlorDB serves (append-mostly logs), this is simple and fast.
// Like HashIndex, entries for tombstoned rows are retained and filtered at
// read time.
type OrderedIndex struct {
	mu      sync.RWMutex
	col     string
	pos     int
	entries []orderedEntry
}

type orderedEntry struct {
	v  Value
	id RowID
}

func newOrderedIndex(col string, pos int) *OrderedIndex {
	return &OrderedIndex{col: col, pos: pos}
}

// Column returns the indexed column name.
func (ix *OrderedIndex) Column() string { return ix.col }

func (ix *OrderedIndex) add(id RowID, r Row) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	v := r[ix.pos]
	i := sort.Search(len(ix.entries), func(i int) bool {
		c := Compare(ix.entries[i].v, v)
		return c > 0 || (c == 0 && ix.entries[i].id >= id)
	})
	ix.entries = append(ix.entries, orderedEntry{})
	copy(ix.entries[i+1:], ix.entries[i:])
	ix.entries[i] = orderedEntry{v: v, id: id}
}

// bulkAdd indexes a contiguous run of rows (ids start, start+1, ...) by
// appending their entries and re-sorting once — O((n+m) log (n+m)) instead
// of n insertion-sorts with O(m) memmoves each. Recovery workloads arrive
// already ordered (tstamps increase commit by commit), so an O(n) sortedness
// check usually skips the sort entirely; the fallback sorts a permutation of
// indexes to keep the comparison loop free of 72-byte entry copies.
func (ix *OrderedIndex) bulkAdd(start RowID, rows []Row) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	ix.entries = slices.Grow(ix.entries, len(rows))
	for i, r := range rows {
		ix.entries = append(ix.entries, orderedEntry{v: r[ix.pos], id: start + RowID(i)})
	}
	less := func(a, b int) bool {
		c := comparePtr(&ix.entries[a].v, &ix.entries[b].v)
		return c < 0 || (c == 0 && ix.entries[a].id < ix.entries[b].id)
	}
	sorted := true
	for i := 1; i < len(ix.entries); i++ {
		if less(i, i-1) {
			sorted = false
			break
		}
	}
	if sorted {
		return
	}
	perm := make([]int, len(ix.entries))
	for i := range perm {
		perm[i] = i
	}
	slices.SortFunc(perm, func(a, b int) int {
		if less(a, b) {
			return -1
		}
		if less(b, a) {
			return 1
		}
		return 0
	})
	out := make([]orderedEntry, len(ix.entries))
	for i, j := range perm {
		out[i] = ix.entries[j]
	}
	ix.entries = out
}

// Range returns RowIDs with lo <= value <= hi in ascending value order.
// A NULL bound means unbounded on that side. Like Lookup, the ids are
// candidates that must pass a visibility filter.
func (ix *OrderedIndex) Range(lo, hi Value) []RowID {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	start := 0
	if !lo.IsNull() {
		start = sort.Search(len(ix.entries), func(i int) bool {
			return Compare(ix.entries[i].v, lo) >= 0
		})
	}
	var out []RowID
	for i := start; i < len(ix.entries); i++ {
		if !hi.IsNull() && Compare(ix.entries[i].v, hi) > 0 {
			break
		}
		out = append(out, ix.entries[i].id)
	}
	return out
}

// RangeBounds returns RowIDs whose value falls within the given bounds in
// ascending value order, with per-bound inclusivity. A NULL bound means
// unbounded on that side. Unlike Range, NULL-valued entries are never
// returned: SQL range predicates (<, <=, >, >=, BETWEEN) do not match NULL.
func (ix *OrderedIndex) RangeBounds(lo, hi Value, loIncl, hiIncl bool) []RowID {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	var start int
	if lo.IsNull() {
		// Unbounded below: skip the NULL run at the front of the entries.
		start = sort.Search(len(ix.entries), func(i int) bool {
			return !ix.entries[i].v.IsNull()
		})
	} else {
		start = sort.Search(len(ix.entries), func(i int) bool {
			c := Compare(ix.entries[i].v, lo)
			if loIncl {
				return c >= 0
			}
			return c > 0
		})
	}
	var out []RowID
	for i := start; i < len(ix.entries); i++ {
		if !hi.IsNull() {
			c := Compare(ix.entries[i].v, hi)
			if c > 0 || (c == 0 && !hiIncl) {
				break
			}
		}
		out = append(out, ix.entries[i].id)
	}
	return out
}

// Min returns the RowID holding the smallest non-NULL value, if any.
func (ix *OrderedIndex) Min() (RowID, bool) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	for _, e := range ix.entries {
		if !e.v.IsNull() {
			return e.id, true
		}
	}
	return 0, false
}

// Max returns the RowID holding the largest value, if any.
func (ix *OrderedIndex) Max() (RowID, bool) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	if len(ix.entries) == 0 {
		return 0, false
	}
	return ix.entries[len(ix.entries)-1].id, true
}
