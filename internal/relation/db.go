package relation

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// VirtualTable produces rows on demand; FlorDB uses virtual tables for the
// `git` and `build_deps` relations of Figure 1, whose contents are derived
// from the version-control store and the build system rather than stored.
type VirtualTable interface {
	Name() string
	Schema() *Schema
	Rows() []Row
}

// Database is a named collection of base and virtual tables. It is the
// catalog against which the SQL layer resolves table names.
type Database struct {
	mu      sync.RWMutex
	tables  map[string]*Table
	virtual map[string]VirtualTable
}

// NewDatabase creates an empty database.
func NewDatabase() *Database {
	return &Database{
		tables:  make(map[string]*Table),
		virtual: make(map[string]VirtualTable),
	}
}

// CreateTable creates a base table; it fails if the name is taken.
func (db *Database) CreateTable(name string, schema *Schema) (*Table, error) {
	key := strings.ToLower(name)
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, ok := db.tables[key]; ok {
		return nil, fmt.Errorf("relation: table %q already exists", name)
	}
	if _, ok := db.virtual[key]; ok {
		return nil, fmt.Errorf("relation: virtual table %q already exists", name)
	}
	t := NewTable(name, schema)
	db.tables[key] = t
	return t, nil
}

// RegisterVirtual installs a virtual table; it fails if the name is taken.
func (db *Database) RegisterVirtual(v VirtualTable) error {
	key := strings.ToLower(v.Name())
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, ok := db.tables[key]; ok {
		return fmt.Errorf("relation: table %q already exists", v.Name())
	}
	if _, ok := db.virtual[key]; ok {
		return fmt.Errorf("relation: virtual table %q already exists", v.Name())
	}
	db.virtual[key] = v
	return nil
}

// Table returns the named base table.
func (db *Database) Table(name string) (*Table, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[strings.ToLower(name)]
	return t, ok
}

// DropTable removes a base table.
func (db *Database) DropTable(name string) bool {
	db.mu.Lock()
	defer db.mu.Unlock()
	key := strings.ToLower(name)
	if _, ok := db.tables[key]; !ok {
		return false
	}
	delete(db.tables, key)
	return true
}

// Source returns an iterator and schema for any table, base or virtual.
func (db *Database) Source(name string) (Iterator, error) {
	key := strings.ToLower(name)
	db.mu.RLock()
	t, isBase := db.tables[key]
	v, isVirtual := db.virtual[key]
	db.mu.RUnlock()
	switch {
	case isBase:
		return NewScan(t), nil
	case isVirtual:
		return NewLazyScan(v.Schema(), v.Rows), nil
	default:
		return nil, fmt.Errorf("relation: no table %q", name)
	}
}

// SchemaOf returns the schema of any table, base or virtual.
func (db *Database) SchemaOf(name string) (*Schema, error) {
	key := strings.ToLower(name)
	db.mu.RLock()
	defer db.mu.RUnlock()
	if t, ok := db.tables[key]; ok {
		return t.Schema(), nil
	}
	if v, ok := db.virtual[key]; ok {
		return v.Schema(), nil
	}
	return nil, fmt.Errorf("relation: no table %q", name)
}

// Names lists all table names (base then virtual), sorted.
func (db *Database) Names() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	var out []string
	for _, t := range db.tables {
		out = append(out, t.Name())
	}
	for _, v := range db.virtual {
		out = append(out, v.Name())
	}
	sort.Strings(out)
	return out
}

// FuncVirtualTable adapts a closure into a VirtualTable.
type FuncVirtualTable struct {
	TableName   string
	TableSchema *Schema
	RowsFn      func() []Row
}

// Name implements VirtualTable.
func (f *FuncVirtualTable) Name() string { return f.TableName }

// Schema implements VirtualTable.
func (f *FuncVirtualTable) Schema() *Schema { return f.TableSchema }

// Rows implements VirtualTable.
func (f *FuncVirtualTable) Rows() []Row { return f.RowsFn() }
