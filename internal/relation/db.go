package relation

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// VirtualTable produces rows on demand; FlorDB uses virtual tables for the
// `git` and `build_deps` relations of Figure 1, whose contents are derived
// from the version-control store and the build system rather than stored.
type VirtualTable interface {
	Name() string
	Schema() *Schema
	Rows() []Row
}

// Catalog is the read surface the SQL layer resolves table names against and
// plans over: either the live Database (latest visibility) or a pinned
// Snapshot (one-epoch visibility).
type Catalog interface {
	// Reader returns the named base table's read surface, if it exists.
	Reader(name string) (TableReader, bool)
	// Source returns an iterator over any table, base or virtual.
	Source(name string) (Iterator, error)
	// SchemaOf returns the schema of any table, base or virtual.
	SchemaOf(name string) (*Schema, error)
}

// Database is a named collection of base and virtual tables and the epoch
// authority for MVCC visibility: all of its tables share one epoch counter,
// which advances at commit boundaries, so Snapshot can pin a consistent view
// of every table at once.
type Database struct {
	mu       sync.RWMutex
	tables   map[string]*Table
	virtual  map[string]VirtualTable
	epoch    atomic.Int64 // committed epoch; rows written now belong to epoch+1
	minEpoch atomic.Int64 // retention floor; epochs below it are retired
	pins     atomic.Int64 // live (unreleased) snapshot pins

	pinMu  sync.Mutex    // guards pinned; acquired after mu when both are held
	pinned map[int64]int // live pin count per epoch, for the GC retention floor
}

// NewDatabase creates an empty database at epoch 0.
func NewDatabase() *Database {
	return &Database{
		tables:  make(map[string]*Table),
		virtual: make(map[string]VirtualTable),
		pinned:  make(map[int64]int),
	}
}

// Epoch returns the current committed epoch.
func (db *Database) Epoch() int64 { return db.epoch.Load() }

// Pins returns the number of live (unreleased) snapshot pins. It feeds the
// /healthz snapshot_pins gauge, and the epoch-retention GC will refuse to
// reclaim epochs a live pin still covers — so a leaked pin is an unbounded
// retention leak, which is why the snapshotrelease analyzer enforces the
// release discipline statically.
func (db *Database) Pins() int64 { return db.pins.Load() }

// AdvanceEpoch publishes the in-flight write epoch: rows written since the
// previous advance become visible to committed-epoch snapshots taken from
// now on. It returns the new committed epoch. Callers invoke it at commit
// boundaries, after the corresponding WAL commit record is durable.
func (db *Database) AdvanceEpoch() int64 { return db.epoch.Add(1) }

// Snapshot pins an immutable, consistent view of all tables at the current
// committed epoch, without copying any data. Readers holding the snapshot
// never block writers and are never blocked by them; rows committed after
// the pin — and rows of transactions in flight at the pin — are invisible.
func (db *Database) Snapshot() *Snapshot { return db.snapshotAt(db.epoch.Load()) }

// SnapshotLatest pins a view at the in-flight write epoch: committed rows
// plus whatever uncommitted rows were published at pin time. A session uses
// it for its own queries so it reads its own writes; concurrent serving
// paths should prefer Snapshot.
func (db *Database) SnapshotLatest() *Snapshot { return db.snapshotAt(db.epoch.Load() + 1) }

// snapshotAt reads the epoch before pinning table states: state publication
// happens before the epoch advance in every writer, so any table state read
// afterwards includes every row committed at or before the pinned epoch
// (later rows are filtered by their born epoch).
func (db *Database) snapshotAt(epoch int64) *Snapshot {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.snapshotLocked(epoch)
}

// snapshotLocked pins under db.mu (read or write side), which excludes GCBelow:
// the pin is registered before GCBelow can recompute the floor, so a snapshot
// returned from here is never pruned underneath its reader.
func (db *Database) snapshotLocked(epoch int64) *Snapshot {
	db.pins.Add(1)
	db.pinMu.Lock()
	db.pinned[epoch]++
	db.pinMu.Unlock()
	s := &Snapshot{
		db:      db,
		epoch:   epoch,
		tables:  make(map[string]*TableSnapshot, len(db.tables)),
		virtual: make(map[string]VirtualTable, len(db.virtual)),
	}
	for key, t := range db.tables {
		s.tables[key] = t.At(epoch)
	}
	for key, v := range db.virtual {
		s.virtual[key] = v
	}
	return s
}

// CreateTable creates a base table; it fails if the name is taken. The table
// shares the database's epoch counter.
func (db *Database) CreateTable(name string, schema *Schema) (*Table, error) {
	key := strings.ToLower(name)
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, ok := db.tables[key]; ok {
		return nil, fmt.Errorf("relation: table %q already exists", name)
	}
	if _, ok := db.virtual[key]; ok {
		return nil, fmt.Errorf("relation: virtual table %q already exists", name)
	}
	t := NewTable(name, schema)
	t.epoch = &db.epoch
	db.tables[key] = t
	return t, nil
}

// RegisterVirtual installs a virtual table; it fails if the name is taken.
func (db *Database) RegisterVirtual(v VirtualTable) error {
	key := strings.ToLower(v.Name())
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, ok := db.tables[key]; ok {
		return fmt.Errorf("relation: table %q already exists", v.Name())
	}
	if _, ok := db.virtual[key]; ok {
		return fmt.Errorf("relation: virtual table %q already exists", v.Name())
	}
	db.virtual[key] = v
	return nil
}

// Table returns the named base table.
func (db *Database) Table(name string) (*Table, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[strings.ToLower(name)]
	return t, ok
}

// Reader implements Catalog with latest visibility.
func (db *Database) Reader(name string) (TableReader, bool) {
	t, ok := db.Table(name)
	if !ok {
		return nil, false
	}
	return t, true
}

// DropTable removes a base table.
func (db *Database) DropTable(name string) bool {
	db.mu.Lock()
	defer db.mu.Unlock()
	key := strings.ToLower(name)
	if _, ok := db.tables[key]; !ok {
		return false
	}
	delete(db.tables, key)
	return true
}

// Source returns an iterator and schema for any table, base or virtual.
func (db *Database) Source(name string) (Iterator, error) {
	key := strings.ToLower(name)
	db.mu.RLock()
	t, isBase := db.tables[key]
	v, isVirtual := db.virtual[key]
	db.mu.RUnlock()
	switch {
	case isBase:
		return NewScan(t), nil
	case isVirtual:
		return NewLazyScan(v.Schema(), v.Rows), nil
	default:
		return nil, fmt.Errorf("relation: no table %q", name)
	}
}

// SchemaOf returns the schema of any table, base or virtual.
func (db *Database) SchemaOf(name string) (*Schema, error) {
	key := strings.ToLower(name)
	db.mu.RLock()
	defer db.mu.RUnlock()
	if t, ok := db.tables[key]; ok {
		return t.Schema(), nil
	}
	if v, ok := db.virtual[key]; ok {
		return v.Schema(), nil
	}
	return nil, fmt.Errorf("relation: no table %q", name)
}

// RowVersions reports the total row versions held across base tables
// (tombstoned versions included) and how many are live in the latest view.
// The gap between the two is MVCC history: what the epoch-retention GC and
// compaction exist to bound. It feeds the /metrics row_versions and
// live_rows gauges and macrobench's resource-delta accounting.
func (db *Database) RowVersions() (total, live int64) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	for _, t := range db.tables {
		st := t.state.Load()
		total += int64(len(st.rows))
		live += int64(st.live)
	}
	return total, live
}

// Names lists all table names (base then virtual), sorted.
func (db *Database) Names() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	var out []string
	for _, t := range db.tables {
		out = append(out, t.Name())
	}
	for _, v := range db.virtual {
		out = append(out, v.Name())
	}
	sort.Strings(out)
	return out
}

// Snapshot is an immutable, consistent view of a database's tables pinned at
// one epoch. It implements Catalog, so the SQL layer runs against it exactly
// as it runs against the live database — every query (including multi-table
// joins) observes one state. Virtual tables are not versioned: their rows
// are derived from external stores (the version-control repo, the build
// system) and materialize at read time.
type Snapshot struct {
	db       *Database
	epoch    int64
	tables   map[string]*TableSnapshot
	virtual  map[string]VirtualTable
	released atomic.Bool
}

// Epoch returns the epoch the snapshot is pinned at.
func (s *Snapshot) Epoch() int64 { return s.epoch }

// Release unpins the snapshot, decrementing the owning database's pin
// count. It is idempotent and nil-safe; the snapshot's data remains
// readable afterwards (release only ends retention accounting, it does
// not invalidate the pinned table states).
func (s *Snapshot) Release() {
	if s == nil || s.db == nil {
		return
	}
	if s.released.CompareAndSwap(false, true) {
		s.db.pins.Add(-1)
		s.db.unpin(s.epoch)
	}
}

// unpin retires one per-epoch pin registration. Dropping a pin can only raise
// the oldest-pin floor, so it needs no coordination with GCBelow beyond pinMu.
func (db *Database) unpin(epoch int64) {
	db.pinMu.Lock()
	defer db.pinMu.Unlock()
	if n := db.pinned[epoch]; n <= 1 {
		delete(db.pinned, epoch)
	} else {
		db.pinned[epoch] = n - 1
	}
}

// Table returns the named table's pinned view.
func (s *Snapshot) Table(name string) (*TableSnapshot, bool) {
	v, ok := s.tables[strings.ToLower(name)]
	return v, ok
}

// Reader implements Catalog with the snapshot's epoch visibility.
func (s *Snapshot) Reader(name string) (TableReader, bool) {
	v, ok := s.tables[strings.ToLower(name)]
	if !ok {
		return nil, false
	}
	return v, true
}

// Source implements Catalog.
func (s *Snapshot) Source(name string) (Iterator, error) {
	key := strings.ToLower(name)
	if t, ok := s.tables[key]; ok {
		return NewScan(t), nil
	}
	if v, ok := s.virtual[key]; ok {
		return NewLazyScan(v.Schema(), v.Rows), nil
	}
	return nil, fmt.Errorf("relation: no table %q", name)
}

// SchemaOf implements Catalog.
func (s *Snapshot) SchemaOf(name string) (*Schema, error) {
	key := strings.ToLower(name)
	if t, ok := s.tables[key]; ok {
		return t.Schema(), nil
	}
	if v, ok := s.virtual[key]; ok {
		return v.Schema(), nil
	}
	return nil, fmt.Errorf("relation: no table %q", name)
}

// Names lists all table names (base then virtual), sorted.
func (s *Snapshot) Names() []string {
	var out []string
	for _, t := range s.tables {
		out = append(out, t.Name())
	}
	for _, v := range s.virtual {
		out = append(out, v.Name())
	}
	sort.Strings(out)
	return out
}

var (
	_ Catalog = (*Database)(nil)
	_ Catalog = (*Snapshot)(nil)
)

// FuncVirtualTable adapts a closure into a VirtualTable.
type FuncVirtualTable struct {
	TableName   string
	TableSchema *Schema
	RowsFn      func() []Row
}

// Name implements VirtualTable.
func (f *FuncVirtualTable) Name() string { return f.TableName }

// Schema implements VirtualTable.
func (f *FuncVirtualTable) Schema() *Schema { return f.TableSchema }

// Rows implements VirtualTable.
func (f *FuncVirtualTable) Rows() []Row { return f.RowsFn() }
