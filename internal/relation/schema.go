package relation

import (
	"fmt"
	"strings"
)

// Column describes one attribute of a relation.
type Column struct {
	Name string
	Type Type
	// NotNull marks columns whose values must be non-NULL on insert.
	NotNull bool
}

// Schema is an ordered list of columns. Column names within a schema are
// unique (case-insensitive).
type Schema struct {
	cols   []Column
	byName map[string]int
}

// NewSchema builds a schema, validating column-name uniqueness.
func NewSchema(cols ...Column) (*Schema, error) {
	s := &Schema{cols: append([]Column(nil), cols...), byName: make(map[string]int, len(cols))}
	for i, c := range cols {
		key := strings.ToLower(c.Name)
		if key == "" {
			return nil, fmt.Errorf("relation: empty column name at position %d", i)
		}
		if _, dup := s.byName[key]; dup {
			return nil, fmt.Errorf("relation: duplicate column %q", c.Name)
		}
		s.byName[key] = i
	}
	return s, nil
}

// MustSchema is NewSchema that panics on error; for static schemas.
func MustSchema(cols ...Column) *Schema {
	s, err := NewSchema(cols...)
	if err != nil {
		panic(err)
	}
	return s
}

// Len returns the number of columns.
func (s *Schema) Len() int { return len(s.cols) }

// Col returns the i-th column.
func (s *Schema) Col(i int) Column { return s.cols[i] }

// Columns returns a copy of the column list.
func (s *Schema) Columns() []Column { return append([]Column(nil), s.cols...) }

// Index returns the position of the named column (case-insensitive) or -1.
func (s *Schema) Index(name string) int {
	if i, ok := s.byName[strings.ToLower(name)]; ok {
		return i
	}
	return -1
}

// Names returns the column names in order.
func (s *Schema) Names() []string {
	out := make([]string, len(s.cols))
	for i, c := range s.cols {
		out[i] = c.Name
	}
	return out
}

// Concat builds a schema that is the concatenation of two schemas, used by
// joins. Name collisions are disambiguated by prefixing the right column
// with the supplied qualifier (e.g. "t2.col").
func Concat(left, right *Schema, rightQualifier string) (*Schema, error) {
	cols := left.Columns()
	for _, c := range right.cols {
		name := c.Name
		if left.Index(name) >= 0 {
			name = rightQualifier + "." + name
		}
		cols = append(cols, Column{Name: name, Type: c.Type, NotNull: false})
	}
	return NewSchema(cols...)
}

// Row is one tuple. Its length must equal the schema length.
type Row []Value

// Clone deep-copies the row (values are immutable, so a shallow copy of the
// slice suffices).
func (r Row) Clone() Row { return append(Row(nil), r...) }

// Validate checks a row against the schema: arity, NOT NULL, and type
// compatibility (values may be NULL or must coerce losslessly to the column
// type). It returns the possibly-coerced row.
func (s *Schema) Validate(r Row) (Row, error) {
	if len(r) != len(s.cols) {
		return nil, fmt.Errorf("relation: row arity %d != schema arity %d", len(r), len(s.cols))
	}
	out := r.Clone()
	for i, c := range s.cols {
		v := out[i]
		if v.IsNull() {
			if c.NotNull {
				return nil, fmt.Errorf("relation: NULL in NOT NULL column %q", c.Name)
			}
			continue
		}
		if v.Type() != c.Type {
			cv, err := Coerce(v, c.Type)
			if err != nil {
				return nil, fmt.Errorf("relation: column %q: %w", c.Name, err)
			}
			out[i] = cv
		}
	}
	return out, nil
}
