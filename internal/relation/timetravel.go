package relation

import (
	"errors"
	"fmt"
	"math"
)

// ErrEpochRetired is the sentinel for time-travel reads below the retention
// floor: the epoch-retention GC has dropped (or may have dropped) row versions
// the query would need, so the read is refused rather than answered wrong.
// Match with errors.Is; the concrete error is an *EpochRetiredError carrying
// the floor so callers can echo it (the HTTP layer returns it in the 400 body).
var ErrEpochRetired = errors.New("relation: epoch retired by retention GC")

// EpochRetiredError reports an AS OF epoch below the retention floor.
type EpochRetiredError struct {
	Epoch int64 // the requested epoch
	Floor int64 // the current retention floor (lowest queryable epoch)
}

func (e *EpochRetiredError) Error() string {
	return fmt.Sprintf("relation: epoch %d retired by retention GC (floor %d)", e.Epoch, e.Floor)
}

// Unwrap makes errors.Is(err, ErrEpochRetired) work.
func (e *EpochRetiredError) Unwrap() error { return ErrEpochRetired }

// TimeTraveler is a catalog that can rebase itself at a historical epoch. Both
// Database and Snapshot implement it, so the SQL executor can honor an
// `AS OF <epoch>` clause against either without knowing which it was given.
type TimeTraveler interface {
	Catalog
	// AsOf returns a catalog view pinned at the given epoch and a release
	// function the caller must invoke when done with it (it may be a no-op).
	AsOf(epoch int64) (Catalog, func(), error)
}

// MinEpoch returns the retention floor: the lowest epoch time-travel reads may
// still target. Epochs below it are retired.
func (db *Database) MinEpoch() int64 { return db.minEpoch.Load() }

// SetEpoch positions the committed-epoch counter during recovery, before the
// database is shared with readers: snapshot-loaded rows carry their historical
// born/dead epochs, and tail replay advances from the snapshot's epoch so the
// recovered database counts exactly the commit records of its whole history.
func (db *Database) SetEpoch(epoch int64) { db.epoch.Store(epoch) }

// SetMinEpoch raises the retention floor without pruning anything — recovery
// uses it to restore a floor persisted by an earlier GC run. It never lowers
// the floor.
func (db *Database) SetMinEpoch(floor int64) {
	for {
		cur := db.minEpoch.Load()
		if floor <= cur || db.minEpoch.CompareAndSwap(cur, floor) {
			return
		}
	}
}

// SnapshotAt pins an immutable, consistent view of all tables at the given
// historical epoch. It refuses epochs above the committed epoch (the future)
// and epochs below the retention floor (retired by GC, typed ErrEpochRetired).
// The caller must Release the snapshot; while pinned, the epoch-retention GC
// will not raise the floor past it.
func (db *Database) SnapshotAt(epoch int64) (*Snapshot, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if cur := db.epoch.Load(); epoch > cur {
		return nil, fmt.Errorf("relation: epoch %d not committed yet (committed epoch is %d)", epoch, cur)
	}
	if epoch < 0 {
		return nil, fmt.Errorf("relation: epoch must be non-negative, got %d", epoch)
	}
	if floor := db.minEpoch.Load(); epoch < floor {
		return nil, &EpochRetiredError{Epoch: epoch, Floor: floor}
	}
	return db.snapshotLocked(epoch), nil
}

// OldestPin returns the lowest epoch with a live pin, or math.MaxInt64 when
// nothing is pinned. The epoch-retention GC clamps its floor to it.
func (db *Database) OldestPin() int64 {
	db.pinMu.Lock()
	defer db.pinMu.Unlock()
	oldest := int64(math.MaxInt64)
	for e := range db.pinned {
		if e < oldest {
			oldest = e
		}
	}
	return oldest
}

// GCBelow retires epochs below the requested floor: it clamps the floor to the
// committed epoch, the oldest live pin, and the current floor (the floor never
// moves backwards), publishes the clamped floor, and rewrites every table's
// row store dropping versions both born and tombstoned below it. It returns
// the number of row versions reclaimed and the floor actually applied.
//
// Holding db.mu for writing excludes concurrent snapshotLocked calls, so no
// reader can pin an epoch below the new floor while the floor is moving.
func (db *Database) GCBelow(floor int64) (reclaimed int, applied int64) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if cur := db.epoch.Load(); floor > cur {
		floor = cur
	}
	db.pinMu.Lock()
	for e := range db.pinned {
		if e < floor {
			floor = e
		}
	}
	db.pinMu.Unlock()
	if m := db.minEpoch.Load(); floor < m {
		floor = m
	}
	db.minEpoch.Store(floor)
	for _, t := range db.tables {
		reclaimed += t.pruneBelow(floor)
	}
	return reclaimed, floor
}

// AsOf implements TimeTraveler for the live database: a real pin at the
// historical epoch, released by the returned function.
func (db *Database) AsOf(epoch int64) (Catalog, func(), error) {
	snap, err := db.SnapshotAt(epoch)
	if err != nil {
		return nil, nil, err
	}
	return snap, snap.Release, nil
}

// AsOf implements TimeTraveler for an already-pinned snapshot. Rebasing to the
// snapshot's own epoch is free; rebasing lower takes a fresh pin from the
// owning database, which is equivalent to narrowing this snapshot's
// visibility: table states only grow, and versions pruned by GC are dead at or
// below the retention floor — invisible at every queryable epoch either way.
// Rebasing above the pinned epoch is refused: a pinned view must not leak
// commits from after its pin.
func (s *Snapshot) AsOf(epoch int64) (Catalog, func(), error) {
	if epoch == s.epoch {
		return s, func() {}, nil
	}
	if epoch > s.epoch {
		return nil, nil, fmt.Errorf("relation: epoch %d is beyond this snapshot (pinned at %d)", epoch, s.epoch)
	}
	if s.db == nil {
		return nil, nil, fmt.Errorf("relation: snapshot is detached, cannot rebase to epoch %d", epoch)
	}
	snap, err := s.db.SnapshotAt(epoch)
	if err != nil {
		return nil, nil, err
	}
	return snap, snap.Release, nil
}

var (
	_ TimeTraveler = (*Database)(nil)
	_ TimeTraveler = (*Snapshot)(nil)
)
