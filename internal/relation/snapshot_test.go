package relation

import (
	"sync"
	"sync/atomic"
	"testing"
)

func snapDB(t *testing.T) (*Database, *Table) {
	t.Helper()
	db := NewDatabase()
	tbl, err := db.CreateTable("t", MustSchema(
		Column{Name: "k", Type: TInt, NotNull: true},
		Column{Name: "name", Type: TText},
	))
	if err != nil {
		t.Fatal(err)
	}
	return db, tbl
}

func TestSnapshotSeesOnlyCommittedRows(t *testing.T) {
	db, tbl := snapDB(t)
	tbl.Insert(Row{Int(1), Text("a")})
	db.AdvanceEpoch()
	tbl.Insert(Row{Int(2), Text("b")}) // in flight, uncommitted

	snap := db.Snapshot()
	r, _ := snap.Reader("t")
	if got := len(r.Rows()); got != 1 {
		t.Fatalf("committed snapshot rows = %d, want 1", got)
	}
	latest := db.SnapshotLatest()
	lr, _ := latest.Reader("t")
	if got := len(lr.Rows()); got != 2 {
		t.Fatalf("latest snapshot rows = %d, want 2", got)
	}
	// Committing makes the row visible to NEW snapshots only.
	db.AdvanceEpoch()
	if got := len(r.Rows()); got != 1 {
		t.Fatalf("pinned snapshot moved: rows = %d", got)
	}
	r2, _ := db.Snapshot().Reader("t")
	if got := len(r2.Rows()); got != 2 {
		t.Fatalf("new snapshot rows = %d, want 2", got)
	}
}

func TestSnapshotIgnoresLaterDeletes(t *testing.T) {
	db, tbl := snapDB(t)
	id, _ := tbl.Insert(Row{Int(1), Text("a")})
	db.AdvanceEpoch()

	snap := db.Snapshot()
	tbl.Delete(id)
	db.AdvanceEpoch()

	r, _ := snap.Reader("t")
	if _, ok := r.Get(id); !ok {
		t.Fatal("row deleted after the pin must stay visible in the snapshot")
	}
	if got := len(r.Rows()); got != 1 {
		t.Fatalf("snapshot rows = %d, want 1", got)
	}
	r2, _ := db.Snapshot().Reader("t")
	if _, ok := r2.Get(id); ok {
		t.Fatal("deleted row visible in a post-delete snapshot")
	}
	if _, ok := tbl.Get(id); ok {
		t.Fatal("deleted row visible in the latest view")
	}
}

func TestPinnedLatestViewImmuneToLaterDeletes(t *testing.T) {
	// Tombstones are copy-on-write: even a latest-epoch view (which sees
	// in-flight rows) must keep seeing a row deleted after the pin — the
	// pinned state is immutable, not merely epoch-filtered.
	db, tbl := snapDB(t)
	id, _ := tbl.Insert(Row{Int(1), Text("a")}) // in flight, uncommitted
	latest := db.SnapshotLatest()
	r, _ := latest.Reader("t")
	if _, ok := r.Get(id); !ok {
		t.Fatal("latest view must see the in-flight row")
	}
	tbl.Delete(id) // same write epoch as the insert
	if _, ok := r.Get(id); !ok {
		t.Fatal("pinned latest view mutated by a later delete")
	}
	if got := len(r.Rows()); got != 1 {
		t.Fatalf("pinned latest view rows = %d, want 1", got)
	}
	// A fresh latest view reflects the delete.
	r2, _ := db.SnapshotLatest().Reader("t")
	if _, ok := r2.Get(id); ok {
		t.Fatal("fresh latest view still sees the deleted row")
	}
	// An Update after pinning is equally invisible to the pinned view and
	// atomic (old id or new id, never neither) in fresh views.
	nid, err := tbl.Insert(Row{Int(2), Text("b")})
	if err != nil {
		t.Fatal(err)
	}
	pinned, _ := db.SnapshotLatest().Reader("t")
	nid2, err := tbl.Update(nid, Row{Int(3), Text("c")})
	if err != nil {
		t.Fatal(err)
	}
	if row, ok := pinned.Get(nid); !ok || row[0].AsInt() != 2 {
		t.Fatalf("pinned view lost the pre-update version: %v %v", row, ok)
	}
	if _, ok := pinned.Get(nid2); ok {
		t.Fatal("pinned view sees the post-update version")
	}
}

func TestSnapshotIndexLookupFiltersVisibility(t *testing.T) {
	db, tbl := snapDB(t)
	if _, err := tbl.CreateHashIndex("name"); err != nil {
		t.Fatal(err)
	}
	id0, _ := tbl.Insert(Row{Int(1), Text("x")})
	db.AdvanceEpoch()
	snap := db.Snapshot()

	tbl.Delete(id0)
	tbl.Insert(Row{Int(2), Text("x")})
	db.AdvanceEpoch()

	r, _ := snap.Reader("t")
	ix, ok := r.HashIndexOn("name")
	if !ok {
		t.Fatal("index missing from snapshot")
	}
	rows := r.RowsByIDs(ix.Lookup(Text("x")))
	if len(rows) != 1 || rows[0][0].AsInt() != 1 {
		t.Fatalf("snapshot lookup = %v, want only the old row", rows)
	}
	lrows := tbl.RowsByIDs(ix.Lookup(Text("x")))
	if len(lrows) != 1 || lrows[0][0].AsInt() != 2 {
		t.Fatalf("latest lookup = %v, want only the new row", lrows)
	}
}

func TestSnapshotMultiTableConsistentCut(t *testing.T) {
	// A writer inserts a matching row into two tables per transaction; a
	// committed-epoch snapshot must never observe the pair torn.
	db := NewDatabase()
	a, _ := db.CreateTable("a", MustSchema(Column{Name: "k", Type: TInt}))
	bt, _ := db.CreateTable("b", MustSchema(Column{Name: "k", Type: TInt}))

	var stop atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := int64(0); i < 20000 && !stop.Load(); i++ {
			a.Insert(Row{Int(i)})
			bt.Insert(Row{Int(i)})
			db.AdvanceEpoch()
		}
	}()
	for i := 0; i < 500; i++ {
		snap := db.Snapshot()
		ra, _ := snap.Reader("a")
		rb, _ := snap.Reader("b")
		na, nb := len(ra.Rows()), len(rb.Rows())
		if na != nb {
			stop.Store(true)
			wg.Wait()
			t.Fatalf("torn snapshot: |a| = %d, |b| = %d at epoch %d", na, nb, snap.Epoch())
		}
	}
	stop.Store(true)
	wg.Wait()
}

func TestSnapshotScanDoesNotBlockWriter(t *testing.T) {
	// Readers iterate pinned states while a writer appends; under -race this
	// proves the lock-free read path is sound.
	db, tbl := snapDB(t)
	for i := 0; i < 100; i++ {
		tbl.Insert(Row{Int(int64(i)), Text("seed")})
	}
	db.AdvanceEpoch()

	var writer, readers sync.WaitGroup
	var stop atomic.Bool
	writer.Add(1)
	go func() {
		defer writer.Done()
		// Bounded: snapshot readers exert no backpressure on the writer.
		for i := 100; i < 50000 && !stop.Load(); i++ {
			tbl.Insert(Row{Int(int64(i)), Text("w")})
			if i%10 == 0 {
				db.AdvanceEpoch()
			}
		}
	}()
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for i := 0; i < 200; i++ {
				snap := db.Snapshot()
				tr, _ := snap.Reader("t")
				n := 0
				tr.Scan(func(_ RowID, row Row) bool {
					_ = row[0].AsInt()
					n++
					return true
				})
				if n < 100 {
					t.Errorf("snapshot lost committed rows: %d < 100", n)
					return
				}
			}
		}()
	}
	readers.Wait()
	stop.Store(true)
	writer.Wait()
}

func TestSnapshotPinAccounting(t *testing.T) {
	db, tbl := snapDB(t)
	tbl.Insert(Row{Int(1), Text("a")})
	db.AdvanceEpoch()

	if got := db.Pins(); got != 0 {
		t.Fatalf("fresh database pins = %d, want 0", got)
	}
	s1 := db.Snapshot()
	s2 := db.SnapshotLatest()
	if got := db.Pins(); got != 2 {
		t.Fatalf("pins after two snapshots = %d, want 2", got)
	}
	s1.Release()
	if got := db.Pins(); got != 1 {
		t.Fatalf("pins after one release = %d, want 1", got)
	}
	// Release is idempotent: a double release must not underflow the gauge.
	s1.Release()
	if got := db.Pins(); got != 1 {
		t.Fatalf("pins after double release = %d, want 1", got)
	}
	// A released snapshot stays readable: release ends retention
	// accounting, it does not invalidate the pinned state.
	if r, ok := s1.Reader("t"); !ok || len(r.Rows()) != 1 {
		t.Fatalf("released snapshot is no longer readable")
	}
	s2.Release()
	if got := db.Pins(); got != 0 {
		t.Fatalf("pins after all releases = %d, want 0", got)
	}
	// Nil snapshots are safe to release (error paths call it blindly).
	var nilSnap *Snapshot
	nilSnap.Release()
}

func TestSnapshotPinAccountingConcurrent(t *testing.T) {
	db, tbl := snapDB(t)
	tbl.Insert(Row{Int(1), Text("a")})
	db.AdvanceEpoch()

	const G = 16
	var wg sync.WaitGroup
	for g := 0; g < G; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				s := db.Snapshot()
				if _, ok := s.Reader("t"); !ok {
					t.Error("snapshot lost table t")
				}
				s.Release()
			}
		}()
	}
	wg.Wait()
	if got := db.Pins(); got != 0 {
		t.Fatalf("pins after balanced concurrent pin/release = %d, want 0", got)
	}
}
