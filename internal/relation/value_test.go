package relation

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestValueConstructorsAndAccessors(t *testing.T) {
	if !Null().IsNull() {
		t.Fatal("Null() not null")
	}
	if got := Text("abc").AsText(); got != "abc" {
		t.Fatalf("AsText = %q", got)
	}
	if got := Int(-7).AsInt(); got != -7 {
		t.Fatalf("AsInt = %d", got)
	}
	if got := Float(2.5).AsFloat(); got != 2.5 {
		t.Fatalf("AsFloat = %v", got)
	}
	if !Bool(true).AsBool() || Bool(false).AsBool() {
		t.Fatal("AsBool wrong")
	}
	ts := time.Date(2025, 1, 19, 10, 0, 0, 0, time.UTC)
	if !Time(ts).AsTime().Equal(ts) {
		t.Fatal("AsTime mismatch")
	}
	if string(Blob([]byte{1, 2}).AsBlob()) != "\x01\x02" {
		t.Fatal("AsBlob mismatch")
	}
}

func TestValueAccessorPanicsOnTypeMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	_ = Int(1).AsText()
}

func TestCompareNumericCrossType(t *testing.T) {
	if Compare(Int(2), Float(2.0)) != 0 {
		t.Fatal("2 != 2.0")
	}
	if Compare(Int(1), Float(1.5)) != -1 {
		t.Fatal("1 < 1.5 failed")
	}
	if Compare(Float(3.5), Int(3)) != 1 {
		t.Fatal("3.5 > 3 failed")
	}
}

func TestCompareNullsFirst(t *testing.T) {
	if Compare(Null(), Int(0)) != -1 {
		t.Fatal("NULL should sort first")
	}
	if Compare(Int(0), Null()) != 1 {
		t.Fatal("NULL should sort first (rhs)")
	}
	if Compare(Null(), Null()) != 0 {
		t.Fatal("NULL vs NULL should be 0 for sorting")
	}
}

func TestEqualNullSemantics(t *testing.T) {
	if Equal(Null(), Null()) {
		t.Fatal("NULL = NULL must be false (SQL)")
	}
	if Equal(Null(), Int(1)) || Equal(Int(1), Null()) {
		t.Fatal("NULL = x must be false")
	}
	if !Equal(Text("a"), Text("a")) {
		t.Fatal("'a' = 'a'")
	}
}

func TestCompareText(t *testing.T) {
	if Compare(Text("apple"), Text("banana")) >= 0 {
		t.Fatal("apple < banana")
	}
	if Compare(Text("b"), Text("b")) != 0 {
		t.Fatal("b == b")
	}
}

func TestCompareTime(t *testing.T) {
	a := Time(time.Unix(100, 0))
	b := Time(time.Unix(200, 0))
	if Compare(a, b) != -1 || Compare(b, a) != 1 || Compare(a, a) != 0 {
		t.Fatal("time ordering wrong")
	}
}

func TestKeyEquivalence(t *testing.T) {
	// Values that compare equal must share a hash key (join correctness).
	if Int(5).Key() != Float(5.0).Key() {
		t.Fatal("5 and 5.0 must share a key")
	}
	if Text("5").Key() == Int(5).Key() {
		t.Fatal("'5' and 5 must not share a key")
	}
}

func TestKeyCompareAgreement(t *testing.T) {
	// Property: Compare(a,b)==0 implies a.Key()==b.Key() for same-type values.
	f := func(a, b int64) bool {
		va, vb := Int(a), Int(b)
		if Compare(va, vb) == 0 {
			return va.Key() == vb.Key()
		}
		return va.Key() != vb.Key()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCompareIsAntisymmetric(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		return Compare(Float(a), Float(b)) == -Compare(Float(b), Float(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCompareStringAntisymmetric(t *testing.T) {
	f := func(a, b string) bool {
		return Compare(Text(a), Text(b)) == -Compare(Text(b), Text(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCoerceIntToFloat(t *testing.T) {
	v, err := Coerce(Int(3), TFloat)
	if err != nil || v.AsFloat() != 3.0 {
		t.Fatalf("coerce: %v %v", v, err)
	}
}

func TestCoerceFloatToIntLossless(t *testing.T) {
	v, err := Coerce(Float(4.0), TInt)
	if err != nil || v.AsInt() != 4 {
		t.Fatalf("coerce: %v %v", v, err)
	}
	if _, err := Coerce(Float(4.5), TInt); err == nil {
		t.Fatal("lossy coercion must fail")
	}
}

func TestCoerceTextParsing(t *testing.T) {
	if v, err := Coerce(Text(" 42 "), TInt); err != nil || v.AsInt() != 42 {
		t.Fatalf("text->int: %v %v", v, err)
	}
	if v, err := Coerce(Text("2.5"), TFloat); err != nil || v.AsFloat() != 2.5 {
		t.Fatalf("text->float: %v %v", v, err)
	}
	if v, err := Coerce(Text("true"), TBool); err != nil || !v.AsBool() {
		t.Fatalf("text->bool: %v %v", v, err)
	}
	if _, err := Coerce(Text("nope"), TInt); err == nil {
		t.Fatal("bad int text must fail")
	}
	if v, err := Coerce(Text("2025-01-19"), TTime); err != nil || v.AsTime().Year() != 2025 {
		t.Fatalf("text->time: %v %v", v, err)
	}
}

func TestCoerceNullPassthrough(t *testing.T) {
	v, err := Coerce(Null(), TInt)
	if err != nil || !v.IsNull() {
		t.Fatalf("NULL must coerce to NULL: %v %v", v, err)
	}
}

func TestCoerceAnythingToText(t *testing.T) {
	for _, v := range []Value{Int(1), Float(1.5), Bool(true), Time(time.Unix(0, 0))} {
		out, err := Coerce(v, TText)
		if err != nil || out.Type() != TText {
			t.Fatalf("coerce %v to text: %v %v", v, out, err)
		}
	}
}

func TestTypeString(t *testing.T) {
	cases := map[Type]string{
		TNull: "NULL", TText: "TEXT", TInt: "INTEGER", TFloat: "FLOAT",
		TBool: "BOOL", TTime: "DATETIME", TBlob: "BLOB",
	}
	for typ, want := range cases {
		if typ.String() != want {
			t.Fatalf("%d.String() = %q want %q", typ, typ.String(), want)
		}
	}
}

func TestValueStringRendering(t *testing.T) {
	if Int(5).String() != "5" {
		t.Fatal("int render")
	}
	if Float(2.5).String() != "2.5" {
		t.Fatal("float render")
	}
	if Bool(true).String() != "true" {
		t.Fatal("bool render")
	}
	if Null().String() != "NULL" {
		t.Fatal("null render")
	}
}
