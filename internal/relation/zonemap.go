package relation

import (
	"fmt"
	"sync/atomic"
)

// Zone maps: per-page column statistics over the append-only row store.
//
// The row store is split into fixed-size pages of ZonePageRows rows. For each
// complete page a PageZone records the born-epoch bounds and, per column, the
// min/max over the non-NULL cells plus the NULL count. A batch scan consults
// the zones through a ZoneFilter compiled from the query predicate and skips
// pages no visible row could possibly pass — before transposing a single
// value.
//
// Soundness (prune-is-conservative, DESIGN §13). Everything a cached zone is
// derived from is immutable once published: born epochs never change and row
// payloads are append-only (the retention GC may nil a payload, but only for
// versions tombstoned at or below the retention floor, which are invisible at
// every epoch any reader can still pin — so excluding them from min/max/null
// statistics never hides a visible row). Tombstone (dead) epochs are
// deliberately NOT part of in-memory pruning: the dead array is copy-on-write
// per delete, so a zone built from a newer state could claim a page all-dead
// while an older pinned state — or a latest-epoch scan racing the delete —
// still sees its rows. Dead-based skipping instead happens inside the scan
// itself, which computes the selection vector from its *own* pinned state
// before deciding whether to decode the page (see BatchScanOp.NextBatch).
const ZonePageRows = DefaultBatchSize

// ColZone is the per-column statistics of one page.
type ColZone struct {
	// Min and Max bound the non-NULL cells of the page under the Compare
	// total order; both are NULL when the page has no non-NULL cell (any
	// comparison predicate can then skip the page outright).
	Min, Max Value
	// NullCount counts NULL cells among the page's non-reclaimed rows. Rows
	// whose payload the retention GC reclaimed are counted in PageZone.Rows
	// but in no column statistic, which only makes pruning more conservative.
	NullCount int
}

// PageZone is the zone map of one complete page of ZonePageRows rows.
type PageZone struct {
	MinBorn, MaxBorn int64 // bounds over the page's (immutable) born epochs
	// MaxDead is persisted-format metadata only: the highest tombstone epoch
	// when every version in the page was dead at snapshot-write time, else 0.
	// In-memory pruning never consults it — see the package comment on why
	// cached tombstone facts are unsound under copy-on-write deletes.
	MaxDead int64
	Rows    int // physical rows in the page (always ZonePageRows in memory)
	Cols    []ColZone
}

// ZoneFilter reports that a page can be skipped: no row inside the zone's
// bounds can satisfy the predicate. It must be conservative — returning
// false is always safe.
type ZoneFilter func(*PageZone) bool

// Scan-instrumentation counters, package-global: /healthz exposes them as
// pages_pruned / pages_decoded gauges so zone-map effectiveness is
// observable in the serving tier.
var (
	zonePagesPruned  atomic.Int64
	zonePagesDecoded atomic.Int64
)

// ScanStats returns the cumulative number of pages skipped via zone maps and
// pages actually transposed by batch scans, process-wide.
func ScanStats() (pruned, decoded int64) {
	return zonePagesPruned.Load(), zonePagesDecoded.Load()
}

// zoneCache is the lazily built, atomically published per-table zone store.
// Pages are append-only: a longer cache is always a strict extension of a
// shorter one, because every statistic derives from immutable data.
type zoneCache struct {
	pages []PageZone
}

// zoneTabler is the internal surface through which a batch scan reaches the
// zone cache of the table backing its read surface.
type zoneTabler interface {
	zoneTable() *Table
}

func (t *Table) zoneTable() *Table         { return t }
func (v *TableSnapshot) zoneTable() *Table { return v.owner }

// zonePages returns zone maps covering every complete page within st's row
// store, building and caching any pages not yet computed. Safe for
// concurrent use: losing a publish race at worst discards work, never
// correctness, since all builders derive identical zones from immutable data.
func (t *Table) zonePages(st *tableState) []PageZone {
	n := len(st.rows) / ZonePageRows
	if n == 0 {
		return nil
	}
	zc := t.zones.Load()
	if zc != nil && len(zc.pages) >= n {
		return zc.pages[:n]
	}
	pages := make([]PageZone, n)
	have := 0
	if zc != nil {
		have = copy(pages, zc.pages)
	}
	for p := have; p < n; p++ {
		pages[p] = buildPageZone(t.schema, st, p)
	}
	t.zones.Store(&zoneCache{pages: pages})
	return pages
}

// buildPageZone computes the zone map of page p from the row store.
func buildPageZone(schema *Schema, st *tableState, p int) PageZone {
	lo, hi := p*ZonePageRows, (p+1)*ZonePageRows
	z := PageZone{Rows: ZonePageRows, Cols: make([]ColZone, schema.Len())}
	z.MinBorn, z.MaxBorn = st.born[lo], st.born[lo]
	for i := lo; i < hi; i++ {
		if b := st.born[i]; b < z.MinBorn {
			z.MinBorn = b
		} else if b > z.MaxBorn {
			z.MaxBorn = b
		}
		r := st.rows[i]
		if r == nil {
			continue // reclaimed by retention GC; invisible everywhere
		}
		for c := range r {
			v := &r[c]
			cz := &z.Cols[c]
			if v.IsNull() {
				cz.NullCount++
				continue
			}
			if cz.Min.IsNull() {
				cz.Min, cz.Max = *v, *v
				continue
			}
			if comparePtr(v, &cz.Min) < 0 {
				cz.Min = *v
			} else if comparePtr(v, &cz.Max) > 0 {
				cz.Max = *v
			}
		}
	}
	return z
}

// InstallZones seeds the zone cache with pages decoded from a persisted
// snapshot, so recovered tables prune without a rebuild pass. pages must
// describe the first len(pages)*ZonePageRows rows of the current row store
// in order — the snapshot loader calls this right after LoadVersions on a
// freshly created table, where the correspondence is exact.
func (t *Table) InstallZones(pages []PageZone) error {
	st := t.state.Load()
	if len(pages)*ZonePageRows > len(st.rows) {
		return fmt.Errorf("table %s: %d zone pages cover %d rows, store has %d",
			t.name, len(pages), len(pages)*ZonePageRows, len(st.rows))
	}
	width := t.schema.Len()
	for i := range pages {
		if len(pages[i].Cols) != width {
			return fmt.Errorf("table %s: zone page %d has %d columns, schema has %d",
				t.name, i, len(pages[i].Cols), width)
		}
		if pages[i].Rows != ZonePageRows {
			return fmt.Errorf("table %s: zone page %d spans %d rows, want %d",
				t.name, i, pages[i].Rows, ZonePageRows)
		}
	}
	t.zones.Store(&zoneCache{pages: pages})
	return nil
}
