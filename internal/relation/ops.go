package relation

import (
	"fmt"
	"sort"
)

// Iterator is the volcano-style operator interface. Next returns the next
// row or (nil, false) at end of stream. Rows returned by Next must not be
// mutated by callers.
type Iterator interface {
	Schema() *Schema
	Next() (Row, bool)
}

// Collect drains an iterator into a slice.
func Collect(it Iterator) []Row {
	var out []Row
	for {
		r, ok := it.Next()
		if !ok {
			return out
		}
		out = append(out, r)
	}
}

// ---------- Scan ----------

// ScanOp iterates a table snapshot in insertion order.
type ScanOp struct {
	schema *Schema
	rows   []Row
	i      int
}

// NewScan snapshots the table and returns a scan operator.
func NewScan(t *Table) *ScanOp {
	return &ScanOp{schema: t.Schema(), rows: t.Rows()}
}

// NewSliceScan wraps pre-materialized rows in an iterator.
func NewSliceScan(schema *Schema, rows []Row) *ScanOp {
	return &ScanOp{schema: schema, rows: rows}
}

// Schema implements Iterator.
func (s *ScanOp) Schema() *Schema { return s.schema }

// Next implements Iterator.
func (s *ScanOp) Next() (Row, bool) {
	if s.i >= len(s.rows) {
		return nil, false
	}
	r := s.rows[s.i]
	s.i++
	return r, true
}

// ---------- Filter ----------

// Predicate decides whether a row passes a filter.
type Predicate func(Row) bool

// FilterOp passes through rows satisfying a predicate.
type FilterOp struct {
	in   Iterator
	pred Predicate
}

// NewFilter wraps an iterator with a predicate.
func NewFilter(in Iterator, pred Predicate) *FilterOp {
	return &FilterOp{in: in, pred: pred}
}

// Schema implements Iterator.
func (f *FilterOp) Schema() *Schema { return f.in.Schema() }

// Next implements Iterator.
func (f *FilterOp) Next() (Row, bool) {
	for {
		r, ok := f.in.Next()
		if !ok {
			return nil, false
		}
		if f.pred(r) {
			return r, true
		}
	}
}

// ---------- Project ----------

// ProjExpr computes one output column from an input row.
type ProjExpr struct {
	Name string
	Type Type
	Eval func(Row) Value
}

// ProjectOp maps input rows through a list of expressions.
type ProjectOp struct {
	in     Iterator
	exprs  []ProjExpr
	schema *Schema
}

// NewProject builds a projection operator.
func NewProject(in Iterator, exprs []ProjExpr) (*ProjectOp, error) {
	cols := make([]Column, len(exprs))
	for i, e := range exprs {
		cols[i] = Column{Name: e.Name, Type: e.Type}
	}
	s, err := NewSchema(cols...)
	if err != nil {
		return nil, err
	}
	return &ProjectOp{in: in, exprs: exprs, schema: s}, nil
}

// NewProjectColumns projects the named columns of the input.
func NewProjectColumns(in Iterator, names ...string) (*ProjectOp, error) {
	exprs := make([]ProjExpr, len(names))
	for i, n := range names {
		pos := in.Schema().Index(n)
		if pos < 0 {
			return nil, fmt.Errorf("relation: project: no column %q", n)
		}
		p := pos
		exprs[i] = ProjExpr{Name: n, Type: in.Schema().Col(pos).Type, Eval: func(r Row) Value { return r[p] }}
	}
	return NewProject(in, exprs)
}

// Schema implements Iterator.
func (p *ProjectOp) Schema() *Schema { return p.schema }

// Next implements Iterator.
func (p *ProjectOp) Next() (Row, bool) {
	r, ok := p.in.Next()
	if !ok {
		return nil, false
	}
	out := make(Row, len(p.exprs))
	for i, e := range p.exprs {
		out[i] = e.Eval(r)
	}
	return out, true
}

// ---------- Hash Join ----------

// HashJoinOp implements an equi-join: build side is fully materialized into
// a hash table keyed on the build columns; probe side streams.
type HashJoinOp struct {
	probe      Iterator
	buildRows  map[string][]Row
	probeCols  []int
	schema     *Schema
	buildWidth int
	pending    []Row
}

// NewHashJoin joins left (probe) to right (build) on leftCols[i] == rightCols[i].
func NewHashJoin(left, right Iterator, leftCols, rightCols []string, rightQualifier string) (*HashJoinOp, error) {
	if len(leftCols) != len(rightCols) || len(leftCols) == 0 {
		return nil, fmt.Errorf("relation: join requires equal, non-empty key lists")
	}
	lpos := make([]int, len(leftCols))
	for i, c := range leftCols {
		p := left.Schema().Index(c)
		if p < 0 {
			return nil, fmt.Errorf("relation: join: left has no column %q", c)
		}
		lpos[i] = p
	}
	rpos := make([]int, len(rightCols))
	for i, c := range rightCols {
		p := right.Schema().Index(c)
		if p < 0 {
			return nil, fmt.Errorf("relation: join: right has no column %q", c)
		}
		rpos[i] = p
	}
	build := make(map[string][]Row)
	for {
		r, ok := right.Next()
		if !ok {
			break
		}
		key, null := joinKey(r, rpos)
		if null {
			continue // NULL keys never match
		}
		build[key] = append(build[key], r)
	}
	schema, err := Concat(left.Schema(), right.Schema(), rightQualifier)
	if err != nil {
		return nil, err
	}
	return &HashJoinOp{
		probe:      left,
		buildRows:  build,
		probeCols:  lpos,
		schema:     schema,
		buildWidth: right.Schema().Len(),
	}, nil
}

func joinKey(r Row, pos []int) (string, bool) {
	k := ""
	for _, p := range pos {
		if r[p].IsNull() {
			return "", true
		}
		k += r[p].Key() + "\x1f"
	}
	return k, false
}

// Schema implements Iterator.
func (j *HashJoinOp) Schema() *Schema { return j.schema }

// Next implements Iterator.
func (j *HashJoinOp) Next() (Row, bool) {
	for {
		if len(j.pending) > 0 {
			r := j.pending[0]
			j.pending = j.pending[1:]
			return r, true
		}
		l, ok := j.probe.Next()
		if !ok {
			return nil, false
		}
		key, null := joinKey(l, j.probeCols)
		if null {
			continue
		}
		for _, b := range j.buildRows[key] {
			out := make(Row, 0, len(l)+len(b))
			out = append(out, l...)
			out = append(out, b...)
			j.pending = append(j.pending, out)
		}
	}
}

// ---------- Sort ----------

// SortKey is one ORDER BY term.
type SortKey struct {
	Col  string
	Desc bool
}

// SortOp fully materializes its input and emits it ordered.
type SortOp struct {
	in     Iterator
	keys   []SortKey
	rows   []Row
	sorted bool
	i      int
}

// NewSort builds a sort operator over the given keys.
func NewSort(in Iterator, keys []SortKey) (*SortOp, error) {
	for _, k := range keys {
		if in.Schema().Index(k.Col) < 0 {
			return nil, fmt.Errorf("relation: sort: no column %q", k.Col)
		}
	}
	return &SortOp{in: in, keys: keys}, nil
}

// Schema implements Iterator.
func (s *SortOp) Schema() *Schema { return s.in.Schema() }

// Next implements Iterator.
func (s *SortOp) Next() (Row, bool) {
	if !s.sorted {
		s.rows = Collect(s.in)
		pos := make([]int, len(s.keys))
		for i, k := range s.keys {
			pos[i] = s.in.Schema().Index(k.Col)
		}
		sort.SliceStable(s.rows, func(a, b int) bool {
			for i, k := range s.keys {
				c := Compare(s.rows[a][pos[i]], s.rows[b][pos[i]])
				if c == 0 {
					continue
				}
				if k.Desc {
					return c > 0
				}
				return c < 0
			}
			return false
		})
		s.sorted = true
	}
	if s.i >= len(s.rows) {
		return nil, false
	}
	r := s.rows[s.i]
	s.i++
	return r, true
}

// ---------- Limit / Offset ----------

// LimitOp emits at most n rows after skipping offset rows. A negative limit
// means unlimited.
type LimitOp struct {
	in      Iterator
	limit   int64
	offset  int64
	emitted int64
	skipped int64
}

// NewLimit builds a limit/offset operator.
func NewLimit(in Iterator, limit, offset int64) *LimitOp {
	return &LimitOp{in: in, limit: limit, offset: offset}
}

// Schema implements Iterator.
func (l *LimitOp) Schema() *Schema { return l.in.Schema() }

// Next implements Iterator.
func (l *LimitOp) Next() (Row, bool) {
	for l.skipped < l.offset {
		if _, ok := l.in.Next(); !ok {
			return nil, false
		}
		l.skipped++
	}
	if l.limit >= 0 && l.emitted >= l.limit {
		return nil, false
	}
	r, ok := l.in.Next()
	if !ok {
		return nil, false
	}
	l.emitted++
	return r, true
}

// ---------- Aggregate ----------

// AggKind enumerates supported aggregate functions.
type AggKind int

// Aggregate kinds.
const (
	AggCount AggKind = iota
	AggCountStar
	AggSum
	AggAvg
	AggMin
	AggMax
)

// AggSpec is one aggregate output.
type AggSpec struct {
	Kind AggKind
	Col  string // ignored for AggCountStar
	As   string
}

type aggState struct {
	count int64
	sum   float64
	min   Value
	max   Value
	seen  bool
}

// GroupOp implements hash aggregation with optional grouping columns.
type GroupOp struct {
	in       Iterator
	groupBy  []string
	aggs     []AggSpec
	schema   *Schema
	results  []Row
	done     bool
	i        int
	groupPos []int
	aggPos   []int
}

// NewGroup builds a grouping/aggregation operator. With no groupBy columns
// it produces exactly one row (global aggregates).
func NewGroup(in Iterator, groupBy []string, aggs []AggSpec) (*GroupOp, error) {
	g := &GroupOp{in: in, groupBy: groupBy, aggs: aggs}
	var cols []Column
	for _, c := range groupBy {
		p := in.Schema().Index(c)
		if p < 0 {
			return nil, fmt.Errorf("relation: group: no column %q", c)
		}
		g.groupPos = append(g.groupPos, p)
		cols = append(cols, in.Schema().Col(p))
	}
	for _, a := range aggs {
		p := -1
		if a.Kind != AggCountStar {
			p = in.Schema().Index(a.Col)
			if p < 0 {
				return nil, fmt.Errorf("relation: aggregate: no column %q", a.Col)
			}
		}
		g.aggPos = append(g.aggPos, p)
		name := a.As
		if name == "" {
			name = aggName(a)
		}
		typ := TFloat
		switch a.Kind {
		case AggCount, AggCountStar:
			typ = TInt
		case AggMin, AggMax:
			if p >= 0 {
				typ = in.Schema().Col(p).Type
			}
		}
		cols = append(cols, Column{Name: name, Type: typ})
	}
	s, err := NewSchema(cols...)
	if err != nil {
		return nil, err
	}
	g.schema = s
	return g, nil
}

func aggName(a AggSpec) string {
	switch a.Kind {
	case AggCountStar:
		return "count(*)"
	case AggCount:
		return "count(" + a.Col + ")"
	case AggSum:
		return "sum(" + a.Col + ")"
	case AggAvg:
		return "avg(" + a.Col + ")"
	case AggMin:
		return "min(" + a.Col + ")"
	case AggMax:
		return "max(" + a.Col + ")"
	}
	return "agg"
}

// Schema implements Iterator.
func (g *GroupOp) Schema() *Schema { return g.schema }

// Next implements Iterator.
func (g *GroupOp) Next() (Row, bool) {
	if !g.done {
		g.run()
		g.done = true
	}
	if g.i >= len(g.results) {
		return nil, false
	}
	r := g.results[g.i]
	g.i++
	return r, true
}

func (g *GroupOp) run() {
	type group struct {
		key    Row
		states []aggState
	}
	groups := make(map[string]*group)
	var order []string
	sawAny := false
	for {
		r, ok := g.in.Next()
		if !ok {
			break
		}
		sawAny = true
		key := ""
		keyRow := make(Row, len(g.groupPos))
		for i, p := range g.groupPos {
			key += r[p].Key() + "\x1f"
			keyRow[i] = r[p]
		}
		grp, ok := groups[key]
		if !ok {
			grp = &group{key: keyRow, states: make([]aggState, len(g.aggs))}
			groups[key] = grp
			order = append(order, key)
		}
		for i, a := range g.aggs {
			st := &grp.states[i]
			if a.Kind == AggCountStar {
				st.count++
				continue
			}
			v := r[g.aggPos[i]]
			if v.IsNull() {
				continue
			}
			st.count++
			if v.IsNumeric() {
				st.sum += v.AsFloat()
			}
			if !st.seen || Compare(v, st.min) < 0 {
				st.min = v
			}
			if !st.seen || Compare(v, st.max) > 0 {
				st.max = v
			}
			st.seen = true
		}
	}
	if len(g.groupPos) == 0 && !sawAny {
		// Global aggregate over empty input yields one row of zero/NULL.
		order = append(order, "")
		groups[""] = &group{key: Row{}, states: make([]aggState, len(g.aggs))}
	}
	for _, k := range order {
		grp := groups[k]
		out := make(Row, 0, len(grp.key)+len(g.aggs))
		out = append(out, grp.key...)
		for i, a := range g.aggs {
			st := grp.states[i]
			switch a.Kind {
			case AggCount, AggCountStar:
				out = append(out, Int(st.count))
			case AggSum:
				if st.count == 0 {
					out = append(out, Null())
				} else {
					out = append(out, Float(st.sum))
				}
			case AggAvg:
				if st.count == 0 {
					out = append(out, Null())
				} else {
					out = append(out, Float(st.sum/float64(st.count)))
				}
			case AggMin:
				if !st.seen {
					out = append(out, Null())
				} else {
					out = append(out, st.min)
				}
			case AggMax:
				if !st.seen {
					out = append(out, Null())
				} else {
					out = append(out, st.max)
				}
			}
		}
		g.results = append(g.results, out)
	}
}

// ---------- Distinct ----------

// DistinctOp removes duplicate rows (by full-row key).
type DistinctOp struct {
	in   Iterator
	seen map[string]struct{}
}

// NewDistinct wraps an iterator with duplicate elimination.
func NewDistinct(in Iterator) *DistinctOp {
	return &DistinctOp{in: in, seen: make(map[string]struct{})}
}

// Schema implements Iterator.
func (d *DistinctOp) Schema() *Schema { return d.in.Schema() }

// Next implements Iterator.
func (d *DistinctOp) Next() (Row, bool) {
	for {
		r, ok := d.in.Next()
		if !ok {
			return nil, false
		}
		k := ""
		for _, v := range r {
			k += v.Key() + "\x1f"
		}
		if _, dup := d.seen[k]; dup {
			continue
		}
		d.seen[k] = struct{}{}
		return r, true
	}
}
