package relation

import (
	"fmt"
	"sort"
)

// Iterator is the volcano-style operator interface. Next returns the next
// row or (nil, false) at end of stream. Rows returned by Next must not be
// mutated by callers.
type Iterator interface {
	Schema() *Schema
	Next() (Row, bool)
}

// Collect drains an iterator into a slice.
func Collect(it Iterator) []Row {
	var out []Row
	for {
		r, ok := it.Next()
		if !ok {
			return out
		}
		out = append(out, r)
	}
}

// ---------- Scan ----------

// ScanOp iterates a table snapshot in insertion order. The snapshot is taken
// lazily on the first Next call, so building an operator tree (e.g. for
// EXPLAIN) costs nothing.
type ScanOp struct {
	schema *Schema
	src    func() []Row // nil once materialized
	rows   []Row
	i      int
}

// NewScan returns a scan operator over a table read surface (a live table or
// a pinned snapshot); rows materialize on first Next.
func NewScan(t TableReader) *ScanOp {
	return &ScanOp{schema: t.Schema(), src: t.Rows}
}

// NewSliceScan wraps pre-materialized rows in an iterator.
func NewSliceScan(schema *Schema, rows []Row) *ScanOp {
	return &ScanOp{schema: schema, rows: rows}
}

// NewLazyScan wraps a row producer that is invoked on first Next; virtual
// tables use it so EXPLAIN does not materialize them.
func NewLazyScan(schema *Schema, src func() []Row) *ScanOp {
	return &ScanOp{schema: schema, src: src}
}

// Schema implements Iterator.
func (s *ScanOp) Schema() *Schema { return s.schema }

// Next implements Iterator.
func (s *ScanOp) Next() (Row, bool) {
	if s.src != nil {
		s.rows = s.src()
		s.src = nil
	}
	if s.i >= len(s.rows) {
		return nil, false
	}
	r := s.rows[s.i]
	s.i++
	return r, true
}

// ---------- Index access paths ----------

// NewIndexLookup builds the equality-index access path over the hash index
// covering cols: each entry of keys is one full key tuple (multiple tuples
// serve IN-list plans). The lookup resolves lazily on first Next, filtering
// candidate ids through the reader's row visibility. It fails if no such
// index exists.
func NewIndexLookup(t TableReader, cols []string, keys [][]Value) (*ScanOp, error) {
	ix, ok := t.HashIndexOn(cols...)
	if !ok {
		return nil, fmt.Errorf("relation: table %s has no hash index on %v", t.Name(), cols)
	}
	for _, k := range keys {
		if len(k) != len(cols) {
			return nil, fmt.Errorf("relation: index lookup key arity %d != %d", len(k), len(cols))
		}
	}
	return NewLazyScan(t.Schema(), func() []Row {
		var ids []RowID
		for _, k := range keys {
			ids = append(ids, ix.Lookup(k...)...)
		}
		return t.RowsByIDs(ids)
	}), nil
}

// NewIndexRange builds the range-index access path over the ordered index on
// col, producing matching rows in ascending value order. NULL bounds mean
// unbounded; NULL-valued rows are never produced. The range resolves lazily
// on first Next, filtering candidate ids through the reader's visibility.
func NewIndexRange(t TableReader, col string, lo, hi Value, loIncl, hiIncl bool) (*ScanOp, error) {
	ix, ok := t.OrderedIndexOn(col)
	if !ok {
		return nil, fmt.Errorf("relation: table %s has no ordered index on %s", t.Name(), col)
	}
	return NewLazyScan(t.Schema(), func() []Row {
		return t.RowsByIDs(ix.RangeBounds(lo, hi, loIncl, hiIncl))
	}), nil
}

// ---------- Filter ----------

// Predicate decides whether a row passes a filter.
type Predicate func(Row) bool

// FilterOp passes through rows satisfying a predicate.
type FilterOp struct {
	in   Iterator
	pred Predicate
}

// NewFilter wraps an iterator with a predicate.
func NewFilter(in Iterator, pred Predicate) *FilterOp {
	return &FilterOp{in: in, pred: pred}
}

// Schema implements Iterator.
func (f *FilterOp) Schema() *Schema { return f.in.Schema() }

// Next implements Iterator.
func (f *FilterOp) Next() (Row, bool) {
	for {
		r, ok := f.in.Next()
		if !ok {
			return nil, false
		}
		if f.pred(r) {
			return r, true
		}
	}
}

// ---------- Project ----------

// ProjExpr computes one output column from an input row.
type ProjExpr struct {
	Name string
	Type Type
	Eval func(Row) Value
}

// ProjectOp maps input rows through a list of expressions.
type ProjectOp struct {
	in     Iterator
	exprs  []ProjExpr
	schema *Schema
}

// NewProject builds a projection operator.
func NewProject(in Iterator, exprs []ProjExpr) (*ProjectOp, error) {
	cols := make([]Column, len(exprs))
	for i, e := range exprs {
		cols[i] = Column{Name: e.Name, Type: e.Type}
	}
	s, err := NewSchema(cols...)
	if err != nil {
		return nil, err
	}
	return &ProjectOp{in: in, exprs: exprs, schema: s}, nil
}

// NewProjectColumns projects the named columns of the input.
func NewProjectColumns(in Iterator, names ...string) (*ProjectOp, error) {
	exprs := make([]ProjExpr, len(names))
	for i, n := range names {
		pos := in.Schema().Index(n)
		if pos < 0 {
			return nil, fmt.Errorf("relation: project: no column %q", n)
		}
		p := pos
		exprs[i] = ProjExpr{Name: n, Type: in.Schema().Col(pos).Type, Eval: func(r Row) Value { return r[p] }}
	}
	return NewProject(in, exprs)
}

// Schema implements Iterator.
func (p *ProjectOp) Schema() *Schema { return p.schema }

// Next implements Iterator.
func (p *ProjectOp) Next() (Row, bool) {
	r, ok := p.in.Next()
	if !ok {
		return nil, false
	}
	out := make(Row, len(p.exprs))
	for i, e := range p.exprs {
		out[i] = e.Eval(r)
	}
	return out, true
}

// ---------- Hash Join ----------

// HashJoinOp implements an equi-join: the build side is materialized into a
// hash table keyed on the build columns; the probe side streams. The build
// happens lazily on the first Next, so constructing the operator (e.g. for
// EXPLAIN, or under a LIMIT that is never reached) costs nothing. Either side
// can be the build side; output rows are always left-columns-then-right.
type HashJoinOp struct {
	probe       Iterator
	buildSrc    Iterator // drained into buildRows on first Next
	buildRows   map[string][]Row
	probeCols   []int
	buildCols   []int
	schema      *Schema
	buildIsLeft bool
	built       bool
	pending     []Row
	keyBuf      []byte
}

// NewHashJoin joins left (probe) to right (build) on leftCols[i] == rightCols[i].
func NewHashJoin(left, right Iterator, leftCols, rightCols []string, rightQualifier string) (*HashJoinOp, error) {
	return NewHashJoinBuildSide(left, right, leftCols, rightCols, rightQualifier, false)
}

// NewHashJoinBuildSide is NewHashJoin with an explicit build side: buildLeft
// selects the left input as the materialized side (planners pick the smaller
// estimated input). The output schema and column order are unaffected.
func NewHashJoinBuildSide(left, right Iterator, leftCols, rightCols []string, rightQualifier string, buildLeft bool) (*HashJoinOp, error) {
	if len(leftCols) != len(rightCols) || len(leftCols) == 0 {
		return nil, fmt.Errorf("relation: join requires equal, non-empty key lists")
	}
	lpos := make([]int, len(leftCols))
	for i, c := range leftCols {
		p := left.Schema().Index(c)
		if p < 0 {
			return nil, fmt.Errorf("relation: join: left has no column %q", c)
		}
		lpos[i] = p
	}
	rpos := make([]int, len(rightCols))
	for i, c := range rightCols {
		p := right.Schema().Index(c)
		if p < 0 {
			return nil, fmt.Errorf("relation: join: right has no column %q", c)
		}
		rpos[i] = p
	}
	schema, err := Concat(left.Schema(), right.Schema(), rightQualifier)
	if err != nil {
		return nil, err
	}
	j := &HashJoinOp{schema: schema, buildIsLeft: buildLeft}
	if buildLeft {
		j.probe, j.probeCols = right, rpos
		j.buildSrc, j.buildCols = left, lpos
	} else {
		j.probe, j.probeCols = left, lpos
		j.buildSrc, j.buildCols = right, rpos
	}
	return j, nil
}

// appendJoinKey builds the join key for a row into dst; ok is false when any
// key column is NULL (NULL keys never match).
func appendJoinKey(dst []byte, r Row, pos []int) (_ []byte, ok bool) {
	for _, p := range pos {
		if r[p].IsNull() {
			return dst, false
		}
		dst = r[p].AppendKey(dst)
		dst = append(dst, '\x1f')
	}
	return dst, true
}

// Schema implements Iterator.
func (j *HashJoinOp) Schema() *Schema { return j.schema }

// Next implements Iterator.
func (j *HashJoinOp) Next() (Row, bool) {
	if !j.built {
		j.buildRows = make(map[string][]Row)
		for {
			r, ok := j.buildSrc.Next()
			if !ok {
				break
			}
			key, ok := appendJoinKey(j.keyBuf[:0], r, j.buildCols)
			j.keyBuf = key
			if !ok {
				continue
			}
			j.buildRows[string(key)] = append(j.buildRows[string(key)], r)
		}
		j.built = true
	}
	for {
		if len(j.pending) > 0 {
			r := j.pending[0]
			j.pending = j.pending[1:]
			return r, true
		}
		p, ok := j.probe.Next()
		if !ok {
			return nil, false
		}
		key, ok := appendJoinKey(j.keyBuf[:0], p, j.probeCols)
		j.keyBuf = key
		if !ok {
			continue
		}
		for _, b := range j.buildRows[string(key)] {
			l, r := p, b
			if j.buildIsLeft {
				l, r = b, p
			}
			out := make(Row, 0, len(l)+len(r))
			out = append(out, l...)
			out = append(out, r...)
			j.pending = append(j.pending, out)
		}
	}
}

// ---------- Sort ----------

// SortKey is one ORDER BY term.
type SortKey struct {
	Col  string
	Desc bool
}

// SortOp fully materializes its input and emits it ordered.
type SortOp struct {
	in     Iterator
	keys   []SortKey
	rows   []Row
	sorted bool
	i      int
}

// NewSort builds a sort operator over the given keys.
func NewSort(in Iterator, keys []SortKey) (*SortOp, error) {
	for _, k := range keys {
		if in.Schema().Index(k.Col) < 0 {
			return nil, fmt.Errorf("relation: sort: no column %q", k.Col)
		}
	}
	return &SortOp{in: in, keys: keys}, nil
}

// Schema implements Iterator.
func (s *SortOp) Schema() *Schema { return s.in.Schema() }

// Next implements Iterator.
func (s *SortOp) Next() (Row, bool) {
	if !s.sorted {
		s.rows = Collect(s.in)
		pos := make([]int, len(s.keys))
		for i, k := range s.keys {
			pos[i] = s.in.Schema().Index(k.Col)
		}
		sort.SliceStable(s.rows, func(a, b int) bool {
			for i, k := range s.keys {
				c := Compare(s.rows[a][pos[i]], s.rows[b][pos[i]])
				if c == 0 {
					continue
				}
				if k.Desc {
					return c > 0
				}
				return c < 0
			}
			return false
		})
		s.sorted = true
	}
	if s.i >= len(s.rows) {
		return nil, false
	}
	r := s.rows[s.i]
	s.i++
	return r, true
}

// ---------- Limit / Offset ----------

// LimitOp emits at most n rows after skipping offset rows. A negative limit
// means unlimited.
type LimitOp struct {
	in      Iterator
	limit   int64
	offset  int64
	emitted int64
	skipped int64
}

// NewLimit builds a limit/offset operator.
func NewLimit(in Iterator, limit, offset int64) *LimitOp {
	return &LimitOp{in: in, limit: limit, offset: offset}
}

// Schema implements Iterator.
func (l *LimitOp) Schema() *Schema { return l.in.Schema() }

// Next implements Iterator.
func (l *LimitOp) Next() (Row, bool) {
	for l.skipped < l.offset {
		if _, ok := l.in.Next(); !ok {
			return nil, false
		}
		l.skipped++
	}
	if l.limit >= 0 && l.emitted >= l.limit {
		return nil, false
	}
	r, ok := l.in.Next()
	if !ok {
		return nil, false
	}
	l.emitted++
	return r, true
}

// ---------- Aggregate ----------

// AggKind enumerates supported aggregate functions.
type AggKind int

// Aggregate kinds.
const (
	AggCount AggKind = iota
	AggCountStar
	AggSum
	AggAvg
	AggMin
	AggMax
)

// AggSpec is one aggregate output.
type AggSpec struct {
	Kind AggKind
	Col  string // ignored for AggCountStar
	As   string
}

type aggState struct {
	count int64
	sum   float64
	min   Value
	max   Value
	seen  bool
}

// observe folds one non-NULL candidate value into the state, doing only the
// work the aggregate kind needs. NULLs are ignored (SQL aggregates skip
// them); AggCountStar never reaches here — callers bump count directly. The
// pointer receiver and operand keep 56-byte Value copies off the hot loop.
func (st *aggState) observe(kind AggKind, v *Value) {
	if v.IsNull() {
		return
	}
	switch kind {
	case AggCount:
		st.count++
	case AggSum, AggAvg:
		st.count++
		if v.IsNumeric() {
			st.sum += v.AsFloat()
		}
	case AggMin:
		if !st.seen || comparePtr(v, &st.min) < 0 {
			st.min = *v
		}
		st.seen = true
	case AggMax:
		if !st.seen || comparePtr(v, &st.max) > 0 {
			st.max = *v
		}
		st.seen = true
	}
}

// aggGroup is one group's key tuple and per-aggregate states.
type aggGroup struct {
	key    Row
	states []aggState
}

// aggHash accumulates groups in first-seen order; GroupOp and BatchGroupOp
// share it so the two execution modes cannot diverge. It is a small
// open-addressing table keyed by the encoded group-key bytes: group-by keys
// are short (a tag byte plus payload per column) and looked up once per
// input row, so an inlined FNV-1a hash plus linear probing beats the
// general-purpose map it replaced by about 2x per row.
type aggHash struct {
	keys   []string    // encoded key per group, aligned with groups
	groups []*aggGroup // first-seen order
	table  []int32     // open addressing; entry = group index + 1, 0 = empty
	mask   uint64
	sawAny bool
}

func newAggHash() *aggHash {
	return &aggHash{table: make([]int32, 64), mask: 63}
}

func hashKeyBytes(b []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return h
}

// find returns the group for the encoded key, or nil when unseen.
func (h *aggHash) find(key []byte) *aggGroup {
	i := hashKeyBytes(key) & h.mask
	for {
		slot := h.table[i]
		if slot == 0 {
			return nil
		}
		if h.keys[slot-1] == string(key) {
			return h.groups[slot-1]
		}
		i = (i + 1) & h.mask
	}
}

// insert adds a group under the encoded key, which must not be present.
func (h *aggHash) insert(key []byte, grp *aggGroup) {
	if len(h.groups)+1 > len(h.table)*3/4 {
		h.grow()
	}
	h.keys = append(h.keys, string(key))
	h.groups = append(h.groups, grp)
	i := hashKeyBytes(key) & h.mask
	for h.table[i] != 0 {
		i = (i + 1) & h.mask
	}
	h.table[i] = int32(len(h.groups))
}

func (h *aggHash) grow() {
	h.table = make([]int32, len(h.table)*2)
	h.mask = uint64(len(h.table) - 1)
	for idx, k := range h.keys {
		i := hashKeyBytes([]byte(k)) & h.mask
		for h.table[i] != 0 {
			i = (i + 1) & h.mask
		}
		h.table[i] = int32(idx + 1)
	}
}

// finish renders the accumulated groups as output rows. A global aggregate
// (no group columns) over empty input yields one row of zero/NULL.
func (h *aggHash) finish(groupCols int, aggs []AggSpec) []Row {
	if groupCols == 0 && !h.sawAny {
		h.groups = append(h.groups, &aggGroup{key: Row{}, states: make([]aggState, len(aggs))})
	}
	out := make([]Row, 0, len(h.groups))
	for _, grp := range h.groups {
		row := make(Row, 0, len(grp.key)+len(aggs))
		row = append(row, grp.key...)
		for i, a := range aggs {
			st := grp.states[i]
			switch a.Kind {
			case AggCount, AggCountStar:
				row = append(row, Int(st.count))
			case AggSum:
				if st.count == 0 {
					row = append(row, Null())
				} else {
					row = append(row, Float(st.sum))
				}
			case AggAvg:
				if st.count == 0 {
					row = append(row, Null())
				} else {
					row = append(row, Float(st.sum/float64(st.count)))
				}
			case AggMin:
				if !st.seen {
					row = append(row, Null())
				} else {
					row = append(row, st.min)
				}
			case AggMax:
				if !st.seen {
					row = append(row, Null())
				} else {
					row = append(row, st.max)
				}
			}
		}
		out = append(out, row)
	}
	return out
}

// GroupOp implements hash aggregation with optional grouping columns.
type GroupOp struct {
	in       Iterator
	groupBy  []string
	aggs     []AggSpec
	schema   *Schema
	results  []Row
	done     bool
	i        int
	groupPos []int
	aggPos   []int
}

// NewGroup builds a grouping/aggregation operator. With no groupBy columns
// it produces exactly one row (global aggregates).
func NewGroup(in Iterator, groupBy []string, aggs []AggSpec) (*GroupOp, error) {
	schema, groupPos, aggPos, err := groupSchema(in.Schema(), groupBy, aggs)
	if err != nil {
		return nil, err
	}
	return &GroupOp{
		in: in, groupBy: groupBy, aggs: aggs,
		schema: schema, groupPos: groupPos, aggPos: aggPos,
	}, nil
}

// groupSchema resolves the grouping columns and aggregate arguments against
// the input schema and builds the output schema (group keys first, then one
// column per aggregate). GroupOp and BatchGroupOp share it.
func groupSchema(in *Schema, groupBy []string, aggs []AggSpec) (*Schema, []int, []int, error) {
	var cols []Column
	var groupPos, aggPos []int
	for _, c := range groupBy {
		p := in.Index(c)
		if p < 0 {
			return nil, nil, nil, fmt.Errorf("relation: group: no column %q", c)
		}
		groupPos = append(groupPos, p)
		cols = append(cols, in.Col(p))
	}
	for _, a := range aggs {
		p := -1
		if a.Kind != AggCountStar {
			p = in.Index(a.Col)
			if p < 0 {
				return nil, nil, nil, fmt.Errorf("relation: aggregate: no column %q", a.Col)
			}
		}
		aggPos = append(aggPos, p)
		name := a.As
		if name == "" {
			name = aggName(a)
		}
		typ := TFloat
		switch a.Kind {
		case AggCount, AggCountStar:
			typ = TInt
		case AggMin, AggMax:
			if p >= 0 {
				typ = in.Col(p).Type
			}
		}
		cols = append(cols, Column{Name: name, Type: typ})
	}
	s, err := NewSchema(cols...)
	if err != nil {
		return nil, nil, nil, err
	}
	return s, groupPos, aggPos, nil
}

func aggName(a AggSpec) string {
	switch a.Kind {
	case AggCountStar:
		return "count(*)"
	case AggCount:
		return "count(" + a.Col + ")"
	case AggSum:
		return "sum(" + a.Col + ")"
	case AggAvg:
		return "avg(" + a.Col + ")"
	case AggMin:
		return "min(" + a.Col + ")"
	case AggMax:
		return "max(" + a.Col + ")"
	}
	return "agg"
}

// Schema implements Iterator.
func (g *GroupOp) Schema() *Schema { return g.schema }

// Next implements Iterator.
func (g *GroupOp) Next() (Row, bool) {
	if !g.done {
		g.run()
		g.done = true
	}
	if g.i >= len(g.results) {
		return nil, false
	}
	r := g.results[g.i]
	g.i++
	return r, true
}

func (g *GroupOp) run() {
	h := newAggHash()
	var keyBuf []byte
	for {
		r, ok := g.in.Next()
		if !ok {
			break
		}
		h.sawAny = true
		keyBuf = keyBuf[:0]
		for _, p := range g.groupPos {
			keyBuf = r[p].AppendKey(keyBuf)
			keyBuf = append(keyBuf, '\x1f')
		}
		grp := h.find(keyBuf)
		if grp == nil {
			keyRow := make(Row, len(g.groupPos))
			for i, p := range g.groupPos {
				keyRow[i] = r[p]
			}
			grp = &aggGroup{key: keyRow, states: make([]aggState, len(g.aggs))}
			h.insert(keyBuf, grp)
		}
		for i, a := range g.aggs {
			if a.Kind == AggCountStar {
				grp.states[i].count++
				continue
			}
			grp.states[i].observe(a.Kind, &r[g.aggPos[i]])
		}
	}
	g.results = h.finish(len(g.groupPos), g.aggs)
}

// ---------- Distinct ----------

// DistinctOp removes duplicate rows (by full-row key).
type DistinctOp struct {
	in     Iterator
	seen   map[string]struct{}
	keyBuf []byte
}

// NewDistinct wraps an iterator with duplicate elimination.
func NewDistinct(in Iterator) *DistinctOp {
	return &DistinctOp{in: in, seen: make(map[string]struct{})}
}

// Schema implements Iterator.
func (d *DistinctOp) Schema() *Schema { return d.in.Schema() }

// Next implements Iterator.
func (d *DistinctOp) Next() (Row, bool) {
	for {
		r, ok := d.in.Next()
		if !ok {
			return nil, false
		}
		d.keyBuf = d.keyBuf[:0]
		for _, v := range r {
			d.keyBuf = v.AppendKey(d.keyBuf)
			d.keyBuf = append(d.keyBuf, '\x1f')
		}
		if _, dup := d.seen[string(d.keyBuf)]; dup {
			continue
		}
		d.seen[string(d.keyBuf)] = struct{}{}
		return r, true
	}
}
