// Package server exposes a FlorDB session over HTTP as a JSON query API —
// the network face of the paper's "shared substrate" role: dashboards,
// feedback UIs, and engineers query the metadata database while training
// runs keep logging into it.
//
// Routes:
//
//	GET/POST /sql        — run a SQL query; results stream as JSON
//	GET/POST /explain    — show the plan the planner chooses
//	GET      /dataframe  — the pivoted flor.dataframe view
//	GET      /healthz    — liveness, epoch, and admission stats
//	GET      /metrics    — latency histograms + engine counters/gauges
//
// /metrics serves the server's metrics.Registry: per-route query latency
// histograms (p50/p95/p99 with full bucket dumps), admission counters, and
// engine gauges (fsyncs/commit, plan-cache hit rate, snapshot pins, zone-map
// page counters, replica lag via the Health hook). The macro-benchmark
// suite (internal/macrobench) records into the same registry type — and,
// when it drives this server, into the same registry instance — so load
// tests and production serving report through one instrumentation layer.
//
// Every query handler pins a committed-epoch snapshot for the request, so
// responses are internally consistent and never block the writer. Admission
// control in the spirit of ACP bounds the work in flight: at most
// MaxInFlight requests execute concurrently, at most MaxQueue more wait;
// beyond that the server sheds load with 429 instead of collapsing.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	flor "flordb"
	"flordb/internal/metrics"
	"flordb/internal/relation"
	"flordb/internal/sqlparse"
)

// Config tunes the API server. Zero values apply the defaults.
type Config struct {
	// MaxInFlight caps concurrently executing queries (default 32).
	MaxInFlight int
	// MaxQueue caps queries waiting for an execution slot; a request
	// arriving with the queue full is rejected with 429 (default 64).
	MaxQueue int
	// QueueWait caps how long a queued request waits for a slot before
	// giving up with 503 (default 5s).
	QueueWait time.Duration
	// FlushEvery is the row interval between streaming flushes (default 256).
	FlushEvery int
	// Gate, when set, is consulted after a query request wins admission and
	// before it executes. A non-nil error rejects the request with 503 and a
	// Retry-After header of GateRetryAfter — replication uses it to refuse
	// reads on a follower lagging beyond its staleness bound, honoring the
	// contract that bounded-staleness reads degrade to "try again" rather
	// than to silently stale answers. /healthz is never gated.
	Gate func() error
	// GateRetryAfter is the Retry-After duration advertised with Gate
	// rejections (default 1s); round up to whole seconds.
	GateRetryAfter time.Duration
	// Health, when set, merges extra gauges into the /healthz payload
	// (replication lag, shipping counters).
	Health func(map[string]any)
	// Logf receives server-side diagnostics that cannot reach the client —
	// notably mid-stream encode failures after the 200 header is out.
	// Defaults to log.Printf.
	Logf func(format string, args ...any)
	// Registry, when set, is the metrics registry the server records route
	// latencies into and serves at /metrics. macrobench passes its own so a
	// scenario's op-class histograms and the server's route histograms land
	// in one live registry. Nil creates a private one.
	Registry *metrics.Registry
}

func (c Config) withDefaults() Config {
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 32
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 64
	}
	if c.QueueWait <= 0 {
		c.QueueWait = 5 * time.Second
	}
	if c.FlushEvery <= 0 {
		c.FlushEvery = 256
	}
	if c.GateRetryAfter <= 0 {
		c.GateRetryAfter = time.Second
	}
	if c.Logf == nil {
		c.Logf = log.Printf
	}
	return c
}

// retryAfterSecs renders GateRetryAfter for the Retry-After header, rounded
// up to whole seconds. Both shedding paths (queue full, staleness gate) use
// it, so operators tune one knob for client backoff.
func (c Config) retryAfterSecs() string {
	return strconv.FormatInt(int64((c.GateRetryAfter+time.Second-1)/time.Second), 10)
}

// Server serves the SQL-over-HTTP API for one session.
type Server struct {
	sess *flor.Session
	cfg  Config
	mux  *http.ServeMux
	reg  *metrics.Registry

	slots chan struct{} // execution slots (MaxInFlight)
	queue chan struct{} // waiting slots (MaxQueue)

	served   atomic.Int64 // queries executed
	rejected atomic.Int64 // 429s + queue timeouts
}

// New builds the API server over a session.
func New(sess *flor.Session, cfg Config) *Server {
	cfg = cfg.withDefaults()
	reg := cfg.Registry
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	s := &Server{
		sess:  sess,
		cfg:   cfg,
		mux:   http.NewServeMux(),
		reg:   reg,
		slots: make(chan struct{}, cfg.MaxInFlight),
		queue: make(chan struct{}, cfg.MaxQueue),
	}
	s.mux.HandleFunc("/sql", s.admitted("sql", s.handleSQL))
	s.mux.HandleFunc("/explain", s.admitted("explain", s.handleExplain))
	s.mux.HandleFunc("/dataframe", s.admitted("dataframe", s.handleDataframe))
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	return s
}

// Registry exposes the server's metrics registry (the /metrics source), so
// callers embedding the server can record alongside it.
func (s *Server) Registry() *metrics.Registry { return s.reg }

// Handle mounts an extra handler on the server's mux — replication mounts
// its /repl/ shipping endpoints here so followers and dashboards share one
// listener.
func (s *Server) Handle(pattern string, h http.Handler) {
	s.mux.Handle(pattern, h)
}

// ServeHTTP implements http.Handler, so the API can be mounted next to other
// handlers (flordb serve mounts it alongside the feedback web UI).
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Serve listens on addr until ctx is canceled, then shuts down gracefully:
// no new connections are accepted and in-flight requests get up to the
// queue-wait deadline to finish.
func (s *Server) Serve(ctx context.Context, addr string) error {
	hs := &http.Server{Addr: addr, Handler: s}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), s.cfg.QueueWait)
	defer cancel()
	if err := hs.Shutdown(shutCtx); err != nil {
		return err
	}
	<-errc // ListenAndServe's http.ErrServerClosed
	return nil
}

// errBusy marks a load-shedding rejection (429).
var errBusy = errors.New("server: queue full")

// admit reserves an execution slot, queueing briefly when all slots are
// busy. It returns errBusy when the queue itself is full — the bounded
// admission contract — or the context/deadline error when the wait expires.
func (s *Server) admit(ctx context.Context) (release func(), err error) {
	free := func() { <-s.slots }
	select {
	case s.slots <- struct{}{}:
		return free, nil
	default:
	}
	select {
	case s.queue <- struct{}{}:
		defer func() { <-s.queue }()
	default:
		return nil, errBusy
	}
	t := time.NewTimer(s.cfg.QueueWait)
	defer t.Stop()
	select {
	case s.slots <- struct{}{}:
		return free, nil
	case <-t.C:
		return nil, context.DeadlineExceeded
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// admitted wraps a handler with admission control and latency recording:
// each executed request's wall time (admission wait excluded — queueing is
// the admission story, execution time is the query's) lands in the route's
// registry histogram, which /metrics serves live.
func (s *Server) admitted(route string, h http.HandlerFunc) http.HandlerFunc {
	hist := s.reg.Histogram(route)
	return func(w http.ResponseWriter, r *http.Request) {
		release, err := s.admit(r.Context())
		if err != nil {
			s.rejected.Add(1)
			if errors.Is(err, errBusy) {
				w.Header().Set("Retry-After", s.cfg.retryAfterSecs())
				writeError(w, http.StatusTooManyRequests, "server at capacity, retry later")
				return
			}
			writeError(w, http.StatusServiceUnavailable, "timed out waiting for an execution slot")
			return
		}
		defer release()
		if s.cfg.Gate != nil {
			if gerr := s.cfg.Gate(); gerr != nil {
				s.rejected.Add(1)
				w.Header().Set("Retry-After", s.cfg.retryAfterSecs())
				writeError(w, http.StatusServiceUnavailable, gerr.Error())
				return
			}
		}
		s.served.Add(1)
		start := time.Now()
		h(w, r)
		hist.Observe(time.Since(start).Nanoseconds())
	}
}

func writeError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": msg})
}

// reader pins the snapshot a query handler runs against: the latest committed
// epoch by default, or the historical epoch named by ?as_of=. Asking for an
// epoch retention GC already reclaimed is a client error, answered with 400
// and the current retention floor so the client can re-aim.
func (s *Server) reader(w http.ResponseWriter, r *http.Request) (*flor.SnapshotView, bool) {
	raw := r.URL.Query().Get("as_of")
	if raw == "" {
		view, err := s.sess.Reader()
		if err != nil {
			writeError(w, http.StatusServiceUnavailable, err.Error())
			return nil, false
		}
		return view, true
	}
	epoch, err := strconv.ParseInt(raw, 10, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad as_of: "+raw+" (want a commit epoch)")
		return nil, false
	}
	view, err := s.sess.ReaderAt(epoch)
	if err != nil {
		var retired *relation.EpochRetiredError
		if errors.As(err, &retired) {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusBadRequest)
			json.NewEncoder(w).Encode(map[string]any{
				"error":                 err.Error(),
				"retention_floor_epoch": retired.Floor,
			})
			return nil, false
		}
		writeError(w, http.StatusBadRequest, err.Error())
		return nil, false
	}
	return view, true
}

// queryParam extracts the SQL text from ?q= or a JSON body {"query": ...}.
func queryParam(r *http.Request) (string, error) {
	if q := r.URL.Query().Get("q"); q != "" {
		return q, nil
	}
	if r.Method == http.MethodPost {
		var body struct {
			Query string `json:"query"`
		}
		if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
			return "", fmt.Errorf("bad JSON body: %w", err)
		}
		if body.Query != "" {
			return body.Query, nil
		}
	}
	return "", errors.New("missing query: pass ?q= or a JSON body with \"query\"")
}

func (s *Server) handleSQL(w http.ResponseWriter, r *http.Request) {
	q, err := queryParam(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	view, ok := s.reader(w, r)
	if !ok {
		return
	}
	defer view.Close()
	res, err := view.SQL(q)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	s.streamResult(w, view.Epoch(), res)
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	q, err := queryParam(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	view, ok := s.reader(w, r)
	if !ok {
		return
	}
	defer view.Close()
	plan, err := view.Explain(q)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{
		"epoch": view.Epoch(),
		"plan":  strings.Split(plan, "\n"),
	})
}

func (s *Server) handleDataframe(w http.ResponseWriter, r *http.Request) {
	names := splitNonEmpty(r.URL.Query().Get("names"))
	if len(names) == 0 {
		writeError(w, http.StatusBadRequest, "missing ?names=a,b,...")
		return
	}
	var tstamp int64
	if raw := r.URL.Query().Get("tstamp"); raw != "" {
		ts, err := strconv.ParseInt(raw, 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad tstamp: "+raw)
			return
		}
		tstamp = ts
	}
	view, ok := s.reader(w, r)
	if !ok {
		return
	}
	defer view.Close()
	df, err := view.DataframeAt(r.URL.Query().Get("filename"), tstamp, names...)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	s.streamResult(w, view.Epoch(), &sqlparse.Result{Columns: df.Columns, Rows: df.Rows})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	payload := map[string]any{
		"ok":            true,
		"project":       s.sess.ProjID,
		"epoch":         s.sess.Database().Epoch(),
		"snapshot_pins": s.sess.Database().Pins(),
		"in_flight":     len(s.slots),
		"queued":        len(s.queue),
		"served":        s.served.Load(),
		"rejected":      s.rejected.Load(),

		"retention_floor_epoch": s.sess.RetentionFloor(),
		"gc_rows_reclaimed":     s.sess.GCRowsReclaimed(),
	}
	// Parallel-scan gauges: pool size, plus process-wide zone-map counters
	// (pages skipped without decoding vs. pages materialized).
	pruned, decoded := relation.ScanStats()
	payload["scan_workers"] = s.sess.ScanWorkers()
	payload["pages_pruned"] = pruned
	payload["pages_decoded"] = decoded
	hits, misses := s.sess.PlanCacheStats()
	payload["plan_cache_hits"] = hits
	payload["plan_cache_misses"] = misses
	payload["plan_cache_hit_rate"] = hitRate(hits, misses)
	if s.cfg.Health != nil {
		s.cfg.Health(payload)
	}
	json.NewEncoder(w).Encode(payload)
}

// hitRate divides hits by total lookups; an untouched cache reports 0.
func hitRate(hits, misses uint64) float64 {
	if hits+misses == 0 {
		return 0
	}
	return float64(hits) / float64(hits+misses)
}

// handleMetrics serves the full observability payload: the registry's
// latency histograms (complete bucket dumps, so offline tools can merge and
// re-derive quantiles), admission counters, and engine gauges. Like
// /healthz it bypasses admission — observability must stay readable
// exactly when the server is shedding.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	snap := s.reg.Snapshot()
	counters := make(map[string]int64, len(snap.Counters)+2)
	for k, v := range snap.Counters {
		counters[k] = v
	}
	counters["queries_served"] = s.served.Load()
	counters["admission_rejections"] = s.rejected.Load()

	gauges := make(map[string]any, len(snap.Gauges)+16)
	for k, v := range snap.Gauges {
		gauges[k] = v
	}
	gauges["epoch"] = s.sess.Database().Epoch()
	gauges["snapshot_pins"] = s.sess.Database().Pins()
	gauges["retention_floor_epoch"] = s.sess.RetentionFloor()
	gauges["gc_rows_reclaimed"] = s.sess.GCRowsReclaimed()
	gauges["in_flight"] = len(s.slots)
	gauges["queued"] = len(s.queue)
	hits, misses := s.sess.PlanCacheStats()
	gauges["plan_cache_hits"] = hits
	gauges["plan_cache_misses"] = misses
	gauges["plan_cache_hit_rate"] = hitRate(hits, misses)
	syncs, commits := s.sess.WALSyncCount(), s.sess.WALCommitCount()
	gauges["wal_syncs"] = syncs
	gauges["wal_commits"] = commits
	if commits > 0 {
		gauges["fsyncs_per_commit"] = float64(syncs) / float64(commits)
	} else {
		gauges["fsyncs_per_commit"] = 0.0
	}
	pruned, decoded := relation.ScanStats()
	gauges["pages_pruned"] = pruned
	gauges["pages_decoded"] = decoded
	gauges["scan_workers"] = s.sess.ScanWorkers()
	total, live := s.sess.Database().RowVersions()
	gauges["row_versions"] = total
	gauges["live_rows"] = live
	// Health merges replication gauges (replica lag, shipping counters) —
	// the same hook /healthz uses, so both endpoints agree.
	if s.cfg.Health != nil {
		s.cfg.Health(gauges)
	}

	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{
		"histograms": snap.Histograms,
		"counters":   counters,
		"gauges":     gauges,
	})
}

// streamResult writes {"epoch":E,"columns":[...],"rows":[[...],...],"row_count":N}
// incrementally: rows are encoded one at a time and the connection is flushed
// every FlushEvery rows, so large results reach slow clients without
// buffering the whole payload server-side.
func (s *Server) streamResult(w http.ResponseWriter, epoch int64, res *sqlparse.Result) {
	w.Header().Set("Content-Type", "application/json")
	flusher, _ := w.(http.Flusher)

	head, _ := json.Marshal(res.Columns)
	fmt.Fprintf(w, `{"epoch":%d,"columns":%s,"rows":[`, epoch, head)
	enc := json.NewEncoder(w)
	row := make([]any, 0, 8)
	for i, r := range res.Rows {
		if i > 0 {
			fmt.Fprint(w, ",")
		}
		row = row[:0]
		for _, v := range r {
			row = append(row, v.JSON())
		}
		// Encoder appends a newline per value; inside the rows array that is
		// harmless whitespace and keeps huge results line-splittable.
		if err := enc.Encode(row); err != nil {
			// The 200 header is already on the wire, so the status code
			// cannot signal failure. Emit a terminal sentinel object into the
			// rows array and leave the JSON unterminated — strict clients
			// fail to parse instead of silently consuming a truncated
			// result — and log server-side (if the client simply went away,
			// the sentinel is lost with the connection; the unterminated
			// framing still marks the payload incomplete).
			msg := fmt.Sprintf("result truncated: %d of %d rows sent: %v", i, len(res.Rows), err)
			s.cfg.Logf("server: %s", msg)
			if sentinel, merr := json.Marshal(map[string]string{"error": msg}); merr == nil {
				fmt.Fprintf(w, ",%s", sentinel)
			}
			if flusher != nil {
				flusher.Flush()
			}
			return
		}
		if flusher != nil && (i+1)%s.cfg.FlushEvery == 0 {
			flusher.Flush()
		}
	}
	fmt.Fprintf(w, `],"row_count":%d}`, len(res.Rows))
	if flusher != nil {
		flusher.Flush()
	}
}

func splitNonEmpty(csv string) []string {
	var out []string
	for _, part := range strings.Split(csv, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}
