package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	flor "flordb"
)

// historySession commits one acc row per epoch, so epoch e holds e rows.
func historySession(t *testing.T, opts flor.Options) *flor.Session {
	t.Helper()
	sess, err := flor.OpenMemory("api-tt", opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sess.Close() })
	sess.SetFilename("train.go")
	for c := 1; c <= 4; c++ {
		sess.Log("acc", 0.1*float64(c))
		if err := sess.Commit(fmt.Sprintf("commit %d", c)); err != nil {
			t.Fatal(err)
		}
	}
	return sess
}

func TestSQLAsOfParam(t *testing.T) {
	srv := New(historySession(t, flor.Options{}), Config{})
	for e := 1; e <= 4; e++ {
		code, resp := getJSON(t, srv,
			fmt.Sprintf("/sql?as_of=%d&q=SELECT+count(*)+AS+n+FROM+logs", e))
		if code != http.StatusOK {
			t.Fatalf("as_of=%d: status %d: %+v", e, code, resp)
		}
		if resp.Epoch != int64(e) {
			t.Fatalf("as_of=%d: response epoch %d", e, resp.Epoch)
		}
		n, _ := resp.Rows[0][0].(float64)
		if int(n) != e {
			t.Fatalf("as_of=%d: count %v, want %d", e, resp.Rows[0][0], e)
		}
	}
}

func TestSQLAsOfRejectsGarbageAndFuture(t *testing.T) {
	srv := New(historySession(t, flor.Options{}), Config{})
	for _, q := range []string{
		"/sql?as_of=banana&q=SELECT+*+FROM+logs",
		"/sql?as_of=99&q=SELECT+*+FROM+logs",
		"/dataframe?as_of=banana&table=logs",
	} {
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, q, nil))
		if rec.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", q, rec.Code)
		}
	}
}

// TestSQLAsOfRetiredEchoesFloor: a request below the retention floor is a
// client error that must carry the floor, so clients can re-aim without a
// second round trip.
func TestSQLAsOfRetiredEchoesFloor(t *testing.T) {
	sess := historySession(t, flor.Options{RetainEpochs: 2})
	st, err := sess.GCEpochs()
	if err != nil {
		t.Fatal(err)
	}
	if st.Floor != 2 {
		t.Fatalf("GC floor = %d, want 2", st.Floor)
	}
	srv := New(sess, Config{})

	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/sql?as_of=1&q=SELECT+*+FROM+logs", nil))
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	var resp struct {
		Error string `json:"error"`
		Floor int64  `json:"retention_floor_epoch"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Floor != 2 || !strings.Contains(resp.Error, "retired") {
		t.Fatalf("resp = %+v", resp)
	}

	// The floor itself remains queryable.
	code, _ := getJSON(t, srv, "/sql?as_of=2&q=SELECT+count(*)+AS+n+FROM+logs")
	if code != http.StatusOK {
		t.Fatalf("floor epoch status = %d", code)
	}
}

func TestHealthzReportsRetentionGauges(t *testing.T) {
	sess := historySession(t, flor.Options{RetainEpochs: 1})
	if _, err := sess.GCEpochs(); err != nil {
		t.Fatal(err)
	}
	srv := New(sess, Config{})
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	var payload map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &payload); err != nil {
		t.Fatal(err)
	}
	if got, _ := payload["retention_floor_epoch"].(float64); int64(got) != 3 {
		t.Fatalf("retention_floor_epoch = %v, want 3", payload["retention_floor_epoch"])
	}
	if got, _ := payload["gc_rows_reclaimed"].(float64); got < 0 {
		t.Fatalf("gc_rows_reclaimed = %v", payload["gc_rows_reclaimed"])
	}
}

// flakyWriter fails the first Write whose payload contains needle, then
// recovers — the shape of a mid-stream socket hiccup after the 200 header.
type flakyWriter struct {
	rec     *httptest.ResponseRecorder
	needle  string
	tripped bool
}

func (f *flakyWriter) Header() http.Header { return f.rec.Header() }
func (f *flakyWriter) WriteHeader(c int)   { f.rec.WriteHeader(c) }
func (f *flakyWriter) Write(p []byte) (int, error) {
	if !f.tripped && bytes.Contains(p, []byte(f.needle)) {
		f.tripped = true
		return 0, errors.New("connection reset by peer")
	}
	return f.rec.Write(p)
}

// TestStreamTruncationSentinel is the silent-truncation regression: when a
// row fails to encode mid-stream, the response must end with an error
// sentinel and unterminated JSON (never a clean-looking prefix), and the
// failure must reach the server log.
func TestStreamTruncationSentinel(t *testing.T) {
	var mu sync.Mutex
	var logged []string
	srv := New(testSession(t), Config{Logf: func(format string, args ...any) {
		mu.Lock()
		logged = append(logged, fmt.Sprintf(format, args...))
		mu.Unlock()
	}})

	w := &flakyWriter{rec: httptest.NewRecorder(), needle: "0.9"}
	srv.ServeHTTP(w, httptest.NewRequest(http.MethodGet,
		"/sql?q=SELECT+value+FROM+logs+WHERE+value_name+=+'acc'+ORDER+BY+value", nil))

	body := w.rec.Body.String()
	if !strings.Contains(body, "result truncated: 2 of 3 rows sent") {
		t.Fatalf("no truncation sentinel in body: %s", body)
	}
	if strings.Contains(body, "row_count") {
		t.Fatalf("truncated stream still terminated cleanly: %s", body)
	}
	var parsed any
	if err := json.Unmarshal([]byte(body), &parsed); err == nil {
		t.Fatal("truncated body parsed as complete JSON; strict clients would miss the loss")
	}
	mu.Lock()
	defer mu.Unlock()
	if len(logged) != 1 || !strings.Contains(logged[0], "result truncated: 2 of 3 rows sent") {
		t.Fatalf("server log = %q", logged)
	}
}

// TestRetryAfterUnified: both shedding paths (queue-full 429 and staleness
// gate 503) advertise the same configured GateRetryAfter, rounded up.
func TestRetryAfterUnified(t *testing.T) {
	if got := (Config{GateRetryAfter: 1500 * time.Millisecond}).retryAfterSecs(); got != "2" {
		t.Fatalf("retryAfterSecs(1.5s) = %q, want rounded-up \"2\"", got)
	}

	cfg := Config{GateRetryAfter: 7 * time.Second, Gate: func() error {
		return errors.New("replica lag beyond staleness bound")
	}}
	srv := New(testSession(t), cfg)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/sql?q=SELECT+1+AS+x", nil))
	if rec.Code != http.StatusServiceUnavailable || rec.Header().Get("Retry-After") != "7" {
		t.Fatalf("gate path: status %d Retry-After %q, want 503 / 7", rec.Code, rec.Header().Get("Retry-After"))
	}

	// Queue-full path: saturate the execution and wait queues directly.
	srv2 := New(testSession(t), Config{MaxInFlight: 1, MaxQueue: 1, GateRetryAfter: 7 * time.Second})
	srv2.slots <- struct{}{}
	srv2.queue <- struct{}{}
	rec = httptest.NewRecorder()
	srv2.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/sql?q=SELECT+1+AS+x", nil))
	if rec.Code != http.StatusTooManyRequests || rec.Header().Get("Retry-After") != "7" {
		t.Fatalf("busy path: status %d Retry-After %q, want 429 / 7", rec.Code, rec.Header().Get("Retry-After"))
	}
}
