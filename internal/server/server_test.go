package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	flor "flordb"
)

func testSession(t *testing.T) *flor.Session {
	t.Helper()
	sess, err := flor.OpenMemory("api", flor.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sess.Close() })
	sess.SetFilename("train.go")
	for it := sess.Loop("epoch", 3); it.Next(); {
		sess.Log("acc", 0.8+0.05*float64(it.Index()))
	}
	if err := sess.Commit("seed"); err != nil {
		t.Fatal(err)
	}
	return sess
}

type sqlResponse struct {
	Epoch    int64    `json:"epoch"`
	Columns  []string `json:"columns"`
	Rows     [][]any  `json:"rows"`
	RowCount int      `json:"row_count"`
	Error    string   `json:"error"`
}

func getJSON(t *testing.T, srv http.Handler, url string) (int, sqlResponse) {
	t.Helper()
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, url, nil))
	var resp sqlResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("bad JSON (%d): %s", rec.Code, rec.Body.String())
	}
	return rec.Code, resp
}

func TestSQLEndpointStreamsRows(t *testing.T) {
	srv := New(testSession(t), Config{})
	code, resp := getJSON(t, srv,
		"/sql?q="+strings.ReplaceAll("SELECT value_name, value FROM logs WHERE value_name = 'acc' ORDER BY value", " ", "+"))
	if code != http.StatusOK {
		t.Fatalf("status = %d: %+v", code, resp)
	}
	if len(resp.Columns) != 2 || resp.RowCount != 3 || len(resp.Rows) != 3 {
		t.Fatalf("shape: %+v", resp)
	}
	if resp.Rows[0][0] != "acc" {
		t.Fatalf("row content: %v", resp.Rows[0])
	}
	if resp.Epoch < 1 {
		t.Fatalf("epoch = %d", resp.Epoch)
	}
}

func TestSQLEndpointPOSTBody(t *testing.T) {
	srv := New(testSession(t), Config{})
	body := strings.NewReader(`{"query": "SELECT count(*) AS n FROM logs"}`)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/sql", body))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	var resp sqlResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.RowCount != 1 || resp.Rows[0][0].(float64) != 3 {
		t.Fatalf("count: %+v", resp)
	}
}

func TestSQLEndpointErrors(t *testing.T) {
	srv := New(testSession(t), Config{})
	code, resp := getJSON(t, srv, "/sql?q=SELEKT+nope")
	if code != http.StatusBadRequest || resp.Error == "" {
		t.Fatalf("garbage query: %d %+v", code, resp)
	}
	code, resp = getJSON(t, srv, "/sql")
	if code != http.StatusBadRequest || resp.Error == "" {
		t.Fatalf("missing query: %d %+v", code, resp)
	}
}

func TestExplainEndpoint(t *testing.T) {
	srv := New(testSession(t), Config{})
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet,
		"/explain?q=SELECT+value+FROM+logs+WHERE+projid+%3D+%27api%27+AND+value_name+%3D+%27acc%27", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	var resp struct {
		Plan []string `json:"plan"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Plan) == 0 || !strings.Contains(strings.Join(resp.Plan, "\n"), "IndexLookup") {
		t.Fatalf("plan: %v", resp.Plan)
	}
}

func TestDataframeEndpoint(t *testing.T) {
	srv := New(testSession(t), Config{})
	code, resp := getJSON(t, srv, "/dataframe?names=acc")
	if code != http.StatusOK {
		t.Fatalf("status = %d: %+v", code, resp)
	}
	if resp.RowCount != 3 {
		t.Fatalf("dataframe rows: %+v", resp)
	}
	code, resp = getJSON(t, srv, "/dataframe")
	if code != http.StatusBadRequest {
		t.Fatalf("missing names: %d", code)
	}
}

func TestHealthz(t *testing.T) {
	srv := New(testSession(t), Config{})
	// Serve a few queries first: each handler pins a snapshot view, and
	// every one of them must be released by the time the response is
	// written — the snapshot_pins gauge below is how a leak would show.
	for i := 0; i < 3; i++ {
		if code, _ := getJSON(t, srv, "/sql?q=SELECT+projid+FROM+logs"); code != http.StatusOK {
			t.Fatalf("warmup query status = %d", code)
		}
	}
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	var resp map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp["ok"] != true || resp["project"] != "api" {
		t.Fatalf("healthz: %v", resp)
	}
	if pins, ok := resp["snapshot_pins"].(float64); !ok || pins != 0 {
		t.Fatalf("snapshot_pins = %v, want 0 (a leaked request view?)", resp["snapshot_pins"])
	}
}

func TestAdmissionShedsLoadWith429(t *testing.T) {
	srv := New(testSession(t), Config{MaxInFlight: 1, MaxQueue: 1, QueueWait: 50 * time.Millisecond})
	// Occupy the only execution slot and the only queue slot.
	srv.slots <- struct{}{}
	srv.queue <- struct{}{}
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/sql?q=SELECT+projid+FROM+logs", nil))
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("queue-full status = %d, want 429", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("429 must carry Retry-After")
	}
	// Drain the queue but keep the slot: the request should queue, time out,
	// and get 503.
	<-srv.queue
	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/sql?q=SELECT+projid+FROM+logs", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("queue-timeout status = %d, want 503", rec.Code)
	}
	// Release the slot: requests flow again.
	<-srv.slots
	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/sql?q=SELECT+projid+FROM+logs", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("post-release status = %d: %s", rec.Code, rec.Body.String())
	}
	// Healthz reflects the shed load.
	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	var resp map[string]any
	json.Unmarshal(rec.Body.Bytes(), &resp)
	if resp["rejected"].(float64) < 2 {
		t.Fatalf("rejected stat: %v", resp)
	}
}

func TestConcurrentQueriesWhileWriterLogs(t *testing.T) {
	sess := testSession(t)
	srv := New(sess, Config{MaxInFlight: 8})
	stop := make(chan struct{})
	var writer sync.WaitGroup
	writer.Add(1)
	go func() {
		defer writer.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			sess.Log("noise", i)
			if i%50 == 0 {
				sess.Commit("")
			}
		}
	}()
	var readers sync.WaitGroup
	for g := 0; g < 4; g++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for i := 0; i < 50; i++ {
				code, resp := getJSON(t, srv,
					"/sql?q=SELECT+count%28%2A%29+AS+n+FROM+logs+WHERE+value_name+%3D+%27acc%27")
				if code != http.StatusOK {
					t.Errorf("status = %d: %+v", code, resp)
					return
				}
				if resp.Rows[0][0].(float64) != 3 {
					t.Errorf("inconsistent snapshot count: %v", resp.Rows[0])
					return
				}
			}
		}()
	}
	readers.Wait()
	close(stop)
	writer.Wait()
}

func TestServeGracefulShutdown(t *testing.T) {
	sess := testSession(t)
	srv := New(sess, Config{QueueWait: time.Second})
	// Find a free port, then serve on it.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ctx, addr) }()

	// Wait for the listener, then verify it answers.
	var resp *http.Response
	for i := 0; i < 100; i++ {
		resp, err = http.Get(fmt.Sprintf("http://%s/healthz", addr))
		if err == nil {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("server never came up: %v", err)
	}
	resp.Body.Close()

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("graceful shutdown returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("shutdown timed out")
	}
}
