package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"flordb/internal/metrics"
)

// metricsPayload mirrors the /metrics JSON shape.
type metricsPayload struct {
	Histograms map[string]*metrics.HistSnapshot `json:"histograms"`
	Counters   map[string]int64                 `json:"counters"`
	Gauges     map[string]any                   `json:"gauges"`
}

func getMetrics(t *testing.T, srv http.Handler) metricsPayload {
	t.Helper()
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics status = %d: %s", rec.Code, rec.Body.String())
	}
	var p metricsPayload
	if err := json.Unmarshal(rec.Body.Bytes(), &p); err != nil {
		t.Fatalf("/metrics bad JSON: %v: %s", err, rec.Body.String())
	}
	return p
}

func TestMetricsEndpointServesRouteHistograms(t *testing.T) {
	srv := New(testSession(t), Config{})
	for i := 0; i < 5; i++ {
		if code, _ := getJSON(t, srv, "/sql?q=SELECT+count(*)+AS+n+FROM+logs"); code != http.StatusOK {
			t.Fatalf("sql status = %d", code)
		}
	}
	p := getMetrics(t, srv)
	h := p.Histograms["sql"]
	if h == nil || h.Count != 5 {
		t.Fatalf("sql histogram = %+v, want count 5", h)
	}
	if h.P50 > h.P99 || h.P99 > h.Max {
		t.Fatalf("quantiles not monotone: %+v", h)
	}
	if p.Counters["queries_served"] != 5 {
		t.Fatalf("queries_served = %d", p.Counters["queries_served"])
	}
	if _, ok := p.Counters["admission_rejections"]; !ok {
		t.Fatal("admission_rejections missing")
	}
	for _, g := range []string{"plan_cache_hit_rate", "fsyncs_per_commit", "snapshot_pins",
		"pages_pruned", "pages_decoded", "epoch", "row_versions", "live_rows"} {
		if _, ok := p.Gauges[g]; !ok {
			t.Fatalf("gauge %q missing from /metrics: %v", g, p.Gauges)
		}
	}
	// 5 identical query texts: 1 miss then 4 hits.
	if rate := p.Gauges["plan_cache_hit_rate"].(float64); rate < 0.5 {
		t.Fatalf("plan_cache_hit_rate = %v, want >= 0.5 after repeated query", rate)
	}
}

func TestHealthzReportsPlanCacheHitRate(t *testing.T) {
	srv := New(testSession(t), Config{})
	for i := 0; i < 4; i++ {
		if code, _ := getJSON(t, srv, "/sql?q=SELECT+count(*)+AS+n+FROM+logs"); code != http.StatusOK {
			t.Fatalf("sql status = %d", code)
		}
	}
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	var payload map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &payload); err != nil {
		t.Fatal(err)
	}
	rate, ok := payload["plan_cache_hit_rate"].(float64)
	if !ok {
		t.Fatalf("plan_cache_hit_rate missing from /healthz: %v", payload)
	}
	if rate <= 0 || rate >= 1 {
		t.Fatalf("plan_cache_hit_rate = %v, want in (0,1) after 4 runs of one text", rate)
	}
	if _, ok := payload["plan_cache_hits"]; !ok {
		t.Fatalf("plan_cache_hits missing from /healthz: %v", payload)
	}
}

// TestConcurrentMetricsScrapeUnderSQLTraffic hammers /metrics while SQL
// traffic runs, asserting every scraped histogram snapshot is internally
// consistent: its count equals the sum of its bucket counts (snapshots copy
// buckets first and derive the count from the copy) and quantiles are
// monotone. Runs under -race in the race-stress CI job.
func TestConcurrentMetricsScrapeUnderSQLTraffic(t *testing.T) {
	sess := testSession(t)
	srv := New(sess, Config{})
	const (
		queryWorkers  = 4
		queriesPerW   = 150
		scrapeWorkers = 2
	)
	var queries, scrapers sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < queryWorkers; w++ {
		queries.Add(1)
		go func() {
			defer queries.Done()
			for i := 0; i < queriesPerW; i++ {
				rec := httptest.NewRecorder()
				srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet,
					"/sql?q=SELECT+count(*)+AS+n+FROM+logs", nil))
				if rec.Code != http.StatusOK {
					t.Errorf("sql status = %d: %s", rec.Code, rec.Body.String())
					return
				}
			}
		}()
	}
	scraped := make([][]*metrics.HistSnapshot, scrapeWorkers)
	for w := 0; w < scrapeWorkers; w++ {
		scrapers.Add(1)
		go func(idx int) {
			defer scrapers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				p := getMetrics(t, srv)
				if h := p.Histograms["sql"]; h != nil {
					scraped[idx] = append(scraped[idx], h)
				}
			}
		}(w)
	}
	queries.Wait()
	close(stop)
	scrapers.Wait()

	total := 0
	for _, snaps := range scraped {
		for _, h := range snaps {
			total++
			var bucketSum int64
			for _, b := range h.Buckets {
				bucketSum += b.Count
			}
			if bucketSum != h.Count {
				t.Fatalf("scrape inconsistent: bucket sum %d != count %d", bucketSum, h.Count)
			}
			if h.P50 > h.P99 {
				t.Fatalf("scrape inconsistent: p50 %d > p99 %d", h.P50, h.P99)
			}
		}
	}
	if total == 0 {
		t.Fatal("no /metrics scrapes completed during traffic")
	}
	// The final quiesced scrape must account for every query exactly.
	final := getMetrics(t, srv)
	if got := final.Histograms["sql"].Count; got != int64(queryWorkers*queriesPerW) {
		t.Fatalf("final sql histogram count = %d, want %d", got, queryWorkers*queriesPerW)
	}
}
