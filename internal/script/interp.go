package script

import (
	"errors"
	"fmt"
	"io"
)

// FlorHooks is the instrumentation interface the interpreter calls at each
// flor.* API point. The recording session and the replay engine provide
// different implementations; NopHooks runs scripts uninstrumented (the
// "logging off" baseline in the paper's overhead comparison).
type FlorHooks interface {
	// Log handles flor.log(name, value); it returns the value (the call is
	// an identity function with a side effect, per §2.1).
	Log(name string, v Value) (Value, error)
	// Arg handles flor.arg(name, default): record the resolved value during
	// recording, return the historical value during replay.
	Arg(name string, def Value) (Value, error)
	// LoopBegin handles entry into `for x in flor.loop(name, vals)`. The
	// returned session controls per-iteration execution (run vs skip).
	LoopBegin(name string, vals []Value) (LoopSession, error)
	// IterationBegin/IterationEnd bracket `with flor.iteration(name, _, value)`,
	// the paper's mechanism for logging into a keyed loop context from web
	// handlers (Figure 6).
	IterationBegin(name string, val Value) error
	IterationEnd() error
	// CheckpointingBegin/End bracket `with flor.checkpointing(k=obj, ...)`.
	CheckpointingBegin(objs map[string]Value) error
	CheckpointingEnd() error
	// Commit handles flor.commit().
	Commit() error
}

// LoopSession controls one flor.loop execution.
type LoopSession interface {
	// Decide is called before each iteration. Returning run=false skips the
	// body (the hook is responsible for restoring checkpointed state so
	// execution can resume after the skipped prefix).
	Decide(i int, v Value) (run bool, err error)
	// PostIter is called after each executed (not skipped) iteration — the
	// adaptive checkpointing boundary.
	PostIter(i int, v Value) error
	// End is called when the loop exits (normally or via break).
	End() error
}

// NopHooks ignores all instrumentation.
type NopHooks struct{}

// Log implements FlorHooks.
func (NopHooks) Log(_ string, v Value) (Value, error) { return v, nil }

// Arg implements FlorHooks.
func (NopHooks) Arg(_ string, def Value) (Value, error) { return def, nil }

// LoopBegin implements FlorHooks.
func (NopHooks) LoopBegin(_ string, _ []Value) (LoopSession, error) { return nopSession{}, nil }

// IterationBegin implements FlorHooks.
func (NopHooks) IterationBegin(string, Value) error { return nil }

// IterationEnd implements FlorHooks.
func (NopHooks) IterationEnd() error { return nil }

// CheckpointingBegin implements FlorHooks.
func (NopHooks) CheckpointingBegin(map[string]Value) error { return nil }

// CheckpointingEnd implements FlorHooks.
func (NopHooks) CheckpointingEnd() error { return nil }

// Commit implements FlorHooks.
func (NopHooks) Commit() error { return nil }

type nopSession struct{}

func (nopSession) Decide(int, Value) (bool, error) { return true, nil }
func (nopSession) PostIter(int, Value) error       { return nil }
func (nopSession) End() error                      { return nil }

// HostFunc is a Go function callable from Flow.
type HostFunc func(args []Value, kwargs map[string]Value) (Value, error)

// Interp executes Flow files.
type Interp struct {
	Globals *Env
	Hooks   FlorHooks
	Stdout  io.Writer
	hosts   map[string]HostFunc
	// MaxSteps bounds statement executions to catch runaway scripts.
	MaxSteps int64
	steps    int64
}

// NewInterp creates an interpreter with the standard builtins installed.
func NewInterp(hooks FlorHooks, stdout io.Writer) *Interp {
	if hooks == nil {
		hooks = NopHooks{}
	}
	if stdout == nil {
		stdout = io.Discard
	}
	in := &Interp{
		Globals:  NewEnv(nil),
		Hooks:    hooks,
		Stdout:   stdout,
		hosts:    make(map[string]HostFunc),
		MaxSteps: 200_000_000,
	}
	registerBuiltins(in)
	return in
}

// RegisterHost exposes a Go function to Flow under the given (possibly
// dotted) name.
func (in *Interp) RegisterHost(name string, fn HostFunc) { in.hosts[name] = fn }

// control-flow signals
type ctrlKind int

const (
	ctrlNone ctrlKind = iota
	ctrlBreak
	ctrlContinue
	ctrlReturn
)

type ctrl struct {
	kind ctrlKind
	val  Value
}

// RuntimeError decorates an error with a source position.
type RuntimeError struct {
	File string
	Line int
	Err  error
}

// Error implements error.
func (e *RuntimeError) Error() string {
	return fmt.Sprintf("flow: %s:%d: %v", e.File, e.Line, e.Err)
}

// Unwrap exposes the cause.
func (e *RuntimeError) Unwrap() error { return e.Err }

func (in *Interp) rerr(file string, n Node, err error) error {
	var re *RuntimeError
	if errors.As(err, &re) {
		return err
	}
	return &RuntimeError{File: file, Line: n.Line(), Err: err}
}

// Run executes a parsed file in the global scope.
func (in *Interp) Run(f *File) error {
	in.steps = 0
	c, err := in.execBlock(f, f.Stmts, in.Globals)
	if err != nil {
		return err
	}
	if c.kind == ctrlReturn {
		return nil // top-level return ends the script
	}
	if c.kind != ctrlNone {
		return fmt.Errorf("flow: %s: break/continue outside loop", f.Name)
	}
	return nil
}

func (in *Interp) execBlock(f *File, stmts []Stmt, env *Env) (ctrl, error) {
	for _, s := range stmts {
		c, err := in.execStmt(f, s, env)
		if err != nil {
			return ctrl{}, err
		}
		if c.kind != ctrlNone {
			return c, nil
		}
	}
	return ctrl{}, nil
}

func (in *Interp) execStmt(f *File, s Stmt, env *Env) (ctrl, error) {
	in.steps++
	if in.steps > in.MaxSteps {
		return ctrl{}, fmt.Errorf("flow: %s: step limit exceeded (%d)", f.Name, in.MaxSteps)
	}
	switch x := s.(type) {
	case *AssignStmt:
		v, err := in.eval(f, x.Value, env)
		if err != nil {
			return ctrl{}, err
		}
		switch tgt := x.Target.(type) {
		case *NameExpr:
			env.Set(tgt.Name, v)
		case *IndexExpr:
			container, err := in.eval(f, tgt.X, env)
			if err != nil {
				return ctrl{}, err
			}
			idx, err := in.eval(f, tgt.Index, env)
			if err != nil {
				return ctrl{}, err
			}
			if err := setIndex(container, idx, v); err != nil {
				return ctrl{}, in.rerr(f.Name, x, err)
			}
		default:
			return ctrl{}, in.rerr(f.Name, x, fmt.Errorf("bad assignment target"))
		}
		return ctrl{}, nil
	case *ExprStmt:
		if _, err := in.eval(f, x.X, env); err != nil {
			return ctrl{}, err
		}
		return ctrl{}, nil
	case *IfStmt:
		cond, err := in.eval(f, x.Cond, env)
		if err != nil {
			return ctrl{}, err
		}
		if Truthy(cond) {
			return in.execBlock(f, x.Then, env)
		}
		return in.execBlock(f, x.Else, env)
	case *WhileStmt:
		for {
			cond, err := in.eval(f, x.Cond, env)
			if err != nil {
				return ctrl{}, err
			}
			if !Truthy(cond) {
				return ctrl{}, nil
			}
			c, err := in.execBlock(f, x.Body, env)
			if err != nil {
				return ctrl{}, err
			}
			switch c.kind {
			case ctrlBreak:
				return ctrl{}, nil
			case ctrlReturn:
				return c, nil
			}
			in.steps++
			if in.steps > in.MaxSteps {
				return ctrl{}, fmt.Errorf("flow: %s: step limit exceeded", f.Name)
			}
		}
	case *ForStmt:
		return in.execFor(f, x, env)
	case *FuncStmt:
		env.Define(x.Name, &FuncValue{Def: x, Env: env})
		return ctrl{}, nil
	case *ReturnStmt:
		var v Value
		if x.X != nil {
			var err error
			v, err = in.eval(f, x.X, env)
			if err != nil {
				return ctrl{}, err
			}
		}
		return ctrl{kind: ctrlReturn, val: v}, nil
	case *BreakStmt:
		return ctrl{kind: ctrlBreak}, nil
	case *ContinueStmt:
		return ctrl{kind: ctrlContinue}, nil
	case *WithStmt:
		return in.execWith(f, x, env)
	default:
		return ctrl{}, in.rerr(f.Name, s, fmt.Errorf("unknown statement %T", s))
	}
}

// execFor handles both plain for-in loops and flor.loop-instrumented loops.
func (in *Interp) execFor(f *File, x *ForStmt, env *Env) (ctrl, error) {
	// flor.loop instrumentation?
	if call, ok := x.Iterable.(*CallExpr); ok && call.Fn == "flor.loop" {
		return in.execFlorLoop(f, x, call, env)
	}
	it, err := in.eval(f, x.Iterable, env)
	if err != nil {
		return ctrl{}, err
	}
	items, err := iterate(it)
	if err != nil {
		return ctrl{}, in.rerr(f.Name, x, err)
	}
	for _, v := range items {
		env.Define(x.Var, v)
		c, err := in.execBlock(f, x.Body, env)
		if err != nil {
			return ctrl{}, err
		}
		switch c.kind {
		case ctrlBreak:
			return ctrl{}, nil
		case ctrlReturn:
			return c, nil
		}
	}
	return ctrl{}, nil
}

func (in *Interp) execFlorLoop(f *File, x *ForStmt, call *CallExpr, env *Env) (ctrl, error) {
	if len(call.Args) != 2 {
		return ctrl{}, in.rerr(f.Name, x, fmt.Errorf("flor.loop(name, iterable) expects 2 arguments"))
	}
	nameV, err := in.eval(f, call.Args[0], env)
	if err != nil {
		return ctrl{}, err
	}
	name, ok := nameV.(string)
	if !ok {
		return ctrl{}, in.rerr(f.Name, x, fmt.Errorf("flor.loop name must be a string"))
	}
	iterV, err := in.eval(f, call.Args[1], env)
	if err != nil {
		return ctrl{}, err
	}
	items, err := iterate(iterV)
	if err != nil {
		return ctrl{}, in.rerr(f.Name, x, err)
	}
	session, err := in.Hooks.LoopBegin(name, items)
	if err != nil {
		return ctrl{}, in.rerr(f.Name, x, err)
	}
	defer session.End()
	for i, v := range items {
		run, err := session.Decide(i, v)
		if err != nil {
			return ctrl{}, in.rerr(f.Name, x, err)
		}
		if !run {
			continue
		}
		env.Define(x.Var, v)
		c, err := in.execBlock(f, x.Body, env)
		if err != nil {
			return ctrl{}, err
		}
		if err := session.PostIter(i, v); err != nil {
			return ctrl{}, in.rerr(f.Name, x, err)
		}
		switch c.kind {
		case ctrlBreak:
			return ctrl{}, nil
		case ctrlReturn:
			return c, nil
		}
	}
	return ctrl{}, nil
}

func (in *Interp) execWith(f *File, x *WithStmt, env *Env) (ctrl, error) {
	switch x.Call.Fn {
	case "flor.checkpointing":
		objs := make(map[string]Value, len(x.Call.KwNames))
		for i, name := range x.Call.KwNames {
			v, err := in.eval(f, x.Call.KwVals[i], env)
			if err != nil {
				return ctrl{}, err
			}
			objs[name] = v
		}
		if err := in.Hooks.CheckpointingBegin(objs); err != nil {
			return ctrl{}, in.rerr(f.Name, x, err)
		}
		c, err := in.execBlock(f, x.Body, env)
		if endErr := in.Hooks.CheckpointingEnd(); endErr != nil && err == nil {
			err = in.rerr(f.Name, x, endErr)
		}
		return c, err
	case "flor.iteration":
		if len(x.Call.Args) != 3 {
			return ctrl{}, in.rerr(f.Name, x, fmt.Errorf("flor.iteration(name, index, value) expects 3 arguments"))
		}
		nameV, err := in.eval(f, x.Call.Args[0], env)
		if err != nil {
			return ctrl{}, err
		}
		name, ok := nameV.(string)
		if !ok {
			return ctrl{}, in.rerr(f.Name, x, fmt.Errorf("flor.iteration name must be a string"))
		}
		val, err := in.eval(f, x.Call.Args[2], env)
		if err != nil {
			return ctrl{}, err
		}
		if err := in.Hooks.IterationBegin(name, val); err != nil {
			return ctrl{}, in.rerr(f.Name, x, err)
		}
		c, err := in.execBlock(f, x.Body, env)
		if endErr := in.Hooks.IterationEnd(); endErr != nil && err == nil {
			err = in.rerr(f.Name, x, endErr)
		}
		return c, err
	default:
		return ctrl{}, in.rerr(f.Name, x, fmt.Errorf("with requires flor.checkpointing or flor.iteration, found %s", x.Call.Fn))
	}
}

func (in *Interp) eval(f *File, e Expr, env *Env) (Value, error) {
	switch x := e.(type) {
	case *NumberLit:
		if x.IsInt {
			return x.I, nil
		}
		return x.F, nil
	case *StringLit:
		return x.S, nil
	case *BoolLit:
		return x.B, nil
	case *NilLit:
		return nil, nil
	case *NameExpr:
		if v, ok := env.Get(x.Name); ok {
			return v, nil
		}
		return nil, in.rerr(f.Name, x, fmt.Errorf("undefined name %q", x.Name))
	case *ListLit:
		items := make([]Value, len(x.Items))
		for i, it := range x.Items {
			v, err := in.eval(f, it, env)
			if err != nil {
				return nil, err
			}
			items[i] = v
		}
		return &List{Items: items}, nil
	case *DictLit:
		d := NewDict()
		for i := range x.Keys {
			k, err := in.eval(f, x.Keys[i], env)
			if err != nil {
				return nil, err
			}
			ks, ok := k.(string)
			if !ok {
				return nil, in.rerr(f.Name, x, fmt.Errorf("dict keys must be strings"))
			}
			v, err := in.eval(f, x.Vals[i], env)
			if err != nil {
				return nil, err
			}
			d.Set(ks, v)
		}
		return d, nil
	case *IndexExpr:
		container, err := in.eval(f, x.X, env)
		if err != nil {
			return nil, err
		}
		idx, err := in.eval(f, x.Index, env)
		if err != nil {
			return nil, err
		}
		v, err := getIndex(container, idx)
		if err != nil {
			return nil, in.rerr(f.Name, x, err)
		}
		return v, nil
	case *UnaryExpr:
		v, err := in.eval(f, x.X, env)
		if err != nil {
			return nil, err
		}
		switch x.Op {
		case "not":
			return !Truthy(v), nil
		case "-":
			switch n := v.(type) {
			case int64:
				return -n, nil
			case float64:
				return -n, nil
			}
			return nil, in.rerr(f.Name, x, fmt.Errorf("unary minus on %s", Repr(v)))
		}
		return nil, in.rerr(f.Name, x, fmt.Errorf("unknown unary op %q", x.Op))
	case *BinaryExpr:
		return in.evalBinary(f, x, env)
	case *CallExpr:
		return in.evalCall(f, x, env)
	default:
		return nil, fmt.Errorf("flow: unknown expression %T", e)
	}
}

func (in *Interp) evalBinary(f *File, x *BinaryExpr, env *Env) (Value, error) {
	// Short-circuit boolean operators.
	if x.Op == "and" || x.Op == "or" {
		l, err := in.eval(f, x.L, env)
		if err != nil {
			return nil, err
		}
		if x.Op == "and" && !Truthy(l) {
			return l, nil
		}
		if x.Op == "or" && Truthy(l) {
			return l, nil
		}
		return in.eval(f, x.R, env)
	}
	l, err := in.eval(f, x.L, env)
	if err != nil {
		return nil, err
	}
	r, err := in.eval(f, x.R, env)
	if err != nil {
		return nil, err
	}
	v, err := applyBinary(x.Op, l, r)
	if err != nil {
		return nil, in.rerr(f.Name, x, err)
	}
	return v, nil
}

func applyBinary(op string, l, r Value) (Value, error) {
	switch op {
	case "==":
		return ValueEqual(l, r), nil
	case "!=":
		return !ValueEqual(l, r), nil
	case "in":
		switch c := r.(type) {
		case *List:
			for _, it := range c.Items {
				if ValueEqual(l, it) {
					return true, nil
				}
			}
			return false, nil
		case *Dict:
			ks, ok := l.(string)
			if !ok {
				return false, nil
			}
			_, found := c.Get(ks)
			return found, nil
		case string:
			ls, ok := l.(string)
			if !ok {
				return nil, fmt.Errorf("'in' on string requires string operand")
			}
			return containsSubstring(c, ls), nil
		}
		return nil, fmt.Errorf("'in' requires list, dict or string")
	}
	// String operations.
	if ls, ok := l.(string); ok {
		if rs, ok := r.(string); ok {
			switch op {
			case "+":
				return ls + rs, nil
			case "<":
				return ls < rs, nil
			case "<=":
				return ls <= rs, nil
			case ">":
				return ls > rs, nil
			case ">=":
				return ls >= rs, nil
			}
			return nil, fmt.Errorf("operator %q not defined on strings", op)
		}
	}
	// List concatenation.
	if ll, ok := l.(*List); ok {
		if rl, ok := r.(*List); ok && op == "+" {
			items := make([]Value, 0, len(ll.Items)+len(rl.Items))
			items = append(items, ll.Items...)
			items = append(items, rl.Items...)
			return &List{Items: items}, nil
		}
	}
	// Numeric.
	li, lIsInt := l.(int64)
	ri, rIsInt := r.(int64)
	if lIsInt && rIsInt && op != "/" {
		switch op {
		case "+":
			return li + ri, nil
		case "-":
			return li - ri, nil
		case "*":
			return li * ri, nil
		case "%":
			if ri == 0 {
				return nil, fmt.Errorf("modulo by zero")
			}
			return li % ri, nil
		case "<":
			return li < ri, nil
		case "<=":
			return li <= ri, nil
		case ">":
			return li > ri, nil
		case ">=":
			return li >= ri, nil
		}
		return nil, fmt.Errorf("unknown operator %q", op)
	}
	lf, lok := toFloat(l)
	rf, rok := toFloat(r)
	if !lok || !rok {
		return nil, fmt.Errorf("operator %q on %s and %s", op, Repr(l), Repr(r))
	}
	switch op {
	case "+":
		return lf + rf, nil
	case "-":
		return lf - rf, nil
	case "*":
		return lf * rf, nil
	case "/":
		if rf == 0 {
			return nil, fmt.Errorf("division by zero")
		}
		return lf / rf, nil
	case "%":
		return nil, fmt.Errorf("modulo requires integers")
	case "<":
		return lf < rf, nil
	case "<=":
		return lf <= rf, nil
	case ">":
		return lf > rf, nil
	case ">=":
		return lf >= rf, nil
	}
	return nil, fmt.Errorf("unknown operator %q", op)
}

func (in *Interp) evalCall(f *File, x *CallExpr, env *Env) (Value, error) {
	// flor.* special forms.
	switch x.Fn {
	case "flor.log":
		if len(x.Args) != 2 {
			return nil, in.rerr(f.Name, x, fmt.Errorf("flor.log(name, value) expects 2 arguments"))
		}
		nameV, err := in.eval(f, x.Args[0], env)
		if err != nil {
			return nil, err
		}
		name, ok := nameV.(string)
		if !ok {
			return nil, in.rerr(f.Name, x, fmt.Errorf("flor.log name must be a string"))
		}
		v, err := in.eval(f, x.Args[1], env)
		if err != nil {
			return nil, err
		}
		out, err := in.Hooks.Log(name, v)
		if err != nil {
			return nil, in.rerr(f.Name, x, err)
		}
		return out, nil
	case "flor.arg":
		var def Value
		if len(x.Args) >= 2 {
			v, err := in.eval(f, x.Args[1], env)
			if err != nil {
				return nil, err
			}
			def = v
		}
		for i, kw := range x.KwNames {
			if kw == "default" {
				v, err := in.eval(f, x.KwVals[i], env)
				if err != nil {
					return nil, err
				}
				def = v
			}
		}
		if len(x.Args) < 1 {
			return nil, in.rerr(f.Name, x, fmt.Errorf("flor.arg(name, default) requires a name"))
		}
		nameV, err := in.eval(f, x.Args[0], env)
		if err != nil {
			return nil, err
		}
		name, ok := nameV.(string)
		if !ok {
			return nil, in.rerr(f.Name, x, fmt.Errorf("flor.arg name must be a string"))
		}
		out, err := in.Hooks.Arg(name, def)
		if err != nil {
			return nil, in.rerr(f.Name, x, err)
		}
		return out, nil
	case "flor.commit":
		if err := in.Hooks.Commit(); err != nil {
			return nil, in.rerr(f.Name, x, err)
		}
		return nil, nil
	case "flor.loop":
		return nil, in.rerr(f.Name, x, fmt.Errorf("flor.loop is only valid as a for-loop iterable"))
	case "flor.checkpointing", "flor.iteration":
		return nil, in.rerr(f.Name, x, fmt.Errorf("%s is only valid in a with statement", x.Fn))
	}

	// Evaluate arguments.
	args := make([]Value, len(x.Args))
	for i, a := range x.Args {
		v, err := in.eval(f, a, env)
		if err != nil {
			return nil, err
		}
		args[i] = v
	}
	var kwargs map[string]Value
	if len(x.KwNames) > 0 {
		kwargs = make(map[string]Value, len(x.KwNames))
		for i, k := range x.KwNames {
			v, err := in.eval(f, x.KwVals[i], env)
			if err != nil {
				return nil, err
			}
			kwargs[k] = v
		}
	}

	// User-defined function?
	if fv, ok := env.Get(x.Fn); ok {
		if fn, ok := fv.(*FuncValue); ok {
			if len(args) != len(fn.Def.Params) {
				return nil, in.rerr(f.Name, x, fmt.Errorf("%s expects %d arguments, got %d", fn.Def.Name, len(fn.Def.Params), len(args)))
			}
			local := NewEnv(fn.Env)
			for i, p := range fn.Def.Params {
				local.Define(p, args[i])
			}
			c, err := in.execBlock(f, fn.Def.Body, local)
			if err != nil {
				return nil, err
			}
			if c.kind == ctrlReturn {
				return c.val, nil
			}
			if c.kind != ctrlNone {
				return nil, in.rerr(f.Name, x, fmt.Errorf("break/continue escaped function %s", fn.Def.Name))
			}
			return nil, nil
		}
	}

	// Host function?
	if hf, ok := in.hosts[x.Fn]; ok {
		v, err := hf(args, kwargs)
		if err != nil {
			return nil, in.rerr(f.Name, x, err)
		}
		return v, nil
	}
	return nil, in.rerr(f.Name, x, fmt.Errorf("undefined function %q", x.Fn))
}

// iterate converts a value into a slice for for-in loops.
func iterate(v Value) ([]Value, error) {
	switch x := v.(type) {
	case *List:
		return append([]Value(nil), x.Items...), nil
	case *Dict:
		keys := x.Keys()
		out := make([]Value, len(keys))
		for i, k := range keys {
			out[i] = k
		}
		return out, nil
	case string:
		out := make([]Value, 0, len(x))
		for _, r := range x {
			out = append(out, string(r))
		}
		return out, nil
	default:
		return nil, fmt.Errorf("cannot iterate over %s", Repr(v))
	}
}

func getIndex(container, idx Value) (Value, error) {
	switch c := container.(type) {
	case *List:
		i, ok := idx.(int64)
		if !ok {
			return nil, fmt.Errorf("list index must be an integer")
		}
		if i < 0 {
			i += int64(len(c.Items))
		}
		if i < 0 || i >= int64(len(c.Items)) {
			return nil, fmt.Errorf("list index %d out of range (len %d)", i, len(c.Items))
		}
		return c.Items[i], nil
	case *Dict:
		k, ok := idx.(string)
		if !ok {
			return nil, fmt.Errorf("dict key must be a string")
		}
		v, found := c.Get(k)
		if !found {
			return nil, fmt.Errorf("missing dict key %q", k)
		}
		return v, nil
	case string:
		i, ok := idx.(int64)
		if !ok {
			return nil, fmt.Errorf("string index must be an integer")
		}
		if i < 0 {
			i += int64(len(c))
		}
		if i < 0 || i >= int64(len(c)) {
			return nil, fmt.Errorf("string index %d out of range", i)
		}
		return string(c[i]), nil
	default:
		return nil, fmt.Errorf("cannot index %s", Repr(container))
	}
}

func setIndex(container, idx, v Value) error {
	switch c := container.(type) {
	case *List:
		i, ok := idx.(int64)
		if !ok {
			return fmt.Errorf("list index must be an integer")
		}
		if i < 0 {
			i += int64(len(c.Items))
		}
		if i < 0 || i >= int64(len(c.Items)) {
			return fmt.Errorf("list index %d out of range (len %d)", i, len(c.Items))
		}
		c.Items[i] = v
		return nil
	case *Dict:
		k, ok := idx.(string)
		if !ok {
			return fmt.Errorf("dict key must be a string")
		}
		c.Set(k, v)
		return nil
	default:
		return fmt.Errorf("cannot index-assign %s", Repr(container))
	}
}

func containsSubstring(haystack, needle string) bool {
	if len(needle) == 0 {
		return true
	}
	for i := 0; i+len(needle) <= len(haystack); i++ {
		if haystack[i:i+len(needle)] == needle {
			return true
		}
	}
	return false
}
