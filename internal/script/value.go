package script

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Value is a Flow runtime value: nil, int64, float64, string, bool, *List,
// *Dict, *FuncValue, or an opaque host object supplied by the embedder.
type Value = any

// List is a mutable sequence.
type List struct {
	Items []Value
}

// NewList builds a list from items.
func NewList(items ...Value) *List { return &List{Items: items} }

// Dict is a string-keyed mutable map preserving insertion order.
type Dict struct {
	keys []string
	m    map[string]Value
}

// NewDict creates an empty dict.
func NewDict() *Dict { return &Dict{m: make(map[string]Value)} }

// Set inserts or updates a key.
func (d *Dict) Set(k string, v Value) {
	if _, ok := d.m[k]; !ok {
		d.keys = append(d.keys, k)
	}
	d.m[k] = v
}

// Get fetches a key.
func (d *Dict) Get(k string) (Value, bool) {
	v, ok := d.m[k]
	return v, ok
}

// Keys returns the keys in insertion order.
func (d *Dict) Keys() []string { return append([]string(nil), d.keys...) }

// Len returns the number of entries.
func (d *Dict) Len() int { return len(d.m) }

// FuncValue is a user-defined Flow function closed over its environment.
type FuncValue struct {
	Def *FuncStmt
	Env *Env
}

// Snapshotter is implemented by host objects that participate in
// flor.checkpointing: Snapshot serializes the object's state and Restore
// rehydrates it. The mlsim model and optimizer implement this.
type Snapshotter interface {
	Snapshot() ([]byte, error)
	Restore(data []byte) error
}

// Env is a lexical scope.
type Env struct {
	vars   map[string]Value
	parent *Env
}

// NewEnv creates a scope with an optional parent.
func NewEnv(parent *Env) *Env {
	return &Env{vars: make(map[string]Value), parent: parent}
}

// Get resolves a name through the scope chain.
func (e *Env) Get(name string) (Value, bool) {
	for s := e; s != nil; s = s.parent {
		if v, ok := s.vars[name]; ok {
			return v, true
		}
	}
	return nil, false
}

// Set assigns a name: if it exists in an enclosing scope the binding there
// is updated (so loop bodies can mutate accumulators); otherwise the name is
// defined in the current scope.
func (e *Env) Set(name string, v Value) {
	for s := e; s != nil; s = s.parent {
		if _, ok := s.vars[name]; ok {
			s.vars[name] = v
			return
		}
	}
	e.vars[name] = v
}

// Define always binds in the current scope (used for parameters and loop
// variables).
func (e *Env) Define(name string, v Value) { e.vars[name] = v }

// Names lists the variables bound in this scope only, sorted.
func (e *Env) Names() []string {
	out := make([]string, 0, len(e.vars))
	for k := range e.vars {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Truthy implements Flow truthiness: nil, false, 0, 0.0, "", empty list and
// empty dict are false; everything else is true.
func Truthy(v Value) bool {
	switch x := v.(type) {
	case nil:
		return false
	case bool:
		return x
	case int64:
		return x != 0
	case float64:
		return x != 0
	case string:
		return x != ""
	case *List:
		return len(x.Items) > 0
	case *Dict:
		return x.Len() > 0
	default:
		return true
	}
}

// ValueEqual implements Flow's == with deep equality on lists and dicts and
// numeric cross-type comparison.
func ValueEqual(a, b Value) bool {
	if af, aok := toFloat(a); aok {
		if bf, bok := toFloat(b); bok {
			return af == bf
		}
		return false
	}
	switch x := a.(type) {
	case nil:
		return b == nil
	case string:
		y, ok := b.(string)
		return ok && x == y
	case bool:
		y, ok := b.(bool)
		return ok && x == y
	case *List:
		y, ok := b.(*List)
		if !ok || len(x.Items) != len(y.Items) {
			return false
		}
		for i := range x.Items {
			if !ValueEqual(x.Items[i], y.Items[i]) {
				return false
			}
		}
		return true
	case *Dict:
		y, ok := b.(*Dict)
		if !ok || x.Len() != y.Len() {
			return false
		}
		for _, k := range x.keys {
			bv, ok := y.Get(k)
			if !ok || !ValueEqual(x.m[k], bv) {
				return false
			}
		}
		return true
	default:
		return a == b
	}
}

func toFloat(v Value) (float64, bool) {
	switch x := v.(type) {
	case int64:
		return float64(x), true
	case float64:
		return x, true
	default:
		return 0, false
	}
}

// Repr renders a value for printing and logging.
func Repr(v Value) string {
	switch x := v.(type) {
	case nil:
		return "nil"
	case bool:
		if x {
			return "true"
		}
		return "false"
	case int64:
		return strconv.FormatInt(x, 10)
	case float64:
		return strconv.FormatFloat(x, 'g', -1, 64)
	case string:
		return x
	case *List:
		parts := make([]string, len(x.Items))
		for i, it := range x.Items {
			parts[i] = reprQuoted(it)
		}
		return "[" + strings.Join(parts, ", ") + "]"
	case *Dict:
		parts := make([]string, 0, x.Len())
		for _, k := range x.keys {
			parts = append(parts, strconv.Quote(k)+": "+reprQuoted(x.m[k]))
		}
		return "{" + strings.Join(parts, ", ") + "}"
	case *FuncValue:
		return "<func " + x.Def.Name + ">"
	case fmt.Stringer:
		return x.String()
	default:
		return fmt.Sprintf("<%T>", v)
	}
}

func reprQuoted(v Value) string {
	if s, ok := v.(string); ok {
		return strconv.Quote(s)
	}
	return Repr(v)
}
