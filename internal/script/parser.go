package script

import (
	"fmt"
	"strconv"
)

// Parse parses Flow source into a File AST.
func Parse(filename, src string) (*File, error) {
	toks, err := LexFlow(src)
	if err != nil {
		return nil, err
	}
	p := &flowParser{toks: toks, filename: filename}
	stmts, err := p.parseBlockUntil(TEOF, "")
	if err != nil {
		return nil, err
	}
	return &File{Name: filename, Stmts: stmts}, nil
}

type flowParser struct {
	toks     []Token
	i        int
	filename string
}

func (p *flowParser) cur() Token  { return p.toks[p.i] }
func (p *flowParser) next() Token { t := p.toks[p.i]; p.i++; return t }

func (p *flowParser) errf(format string, args ...any) error {
	t := p.cur()
	return fmt.Errorf("flow: %s:%d:%d: %s", p.filename, t.Line, t.Col, fmt.Sprintf(format, args...))
}

func (p *flowParser) skipNewlines() {
	for p.cur().Kind == TNewline || (p.cur().Kind == TSymbol && p.cur().Text == ";") {
		p.i++
	}
}

func (p *flowParser) atSymbol(s string) bool {
	return p.cur().Kind == TSymbol && p.cur().Text == s
}

func (p *flowParser) atKeyword(s string) bool {
	return p.cur().Kind == TKeyword && p.cur().Text == s
}

func (p *flowParser) acceptSymbol(s string) bool {
	if p.atSymbol(s) {
		p.i++
		return true
	}
	return false
}

func (p *flowParser) expectSymbol(s string) error {
	if p.acceptSymbol(s) {
		return nil
	}
	return p.errf("expected %q, found %s", s, p.cur())
}

func (p *flowParser) expectKeyword(s string) error {
	if p.atKeyword(s) {
		p.i++
		return nil
	}
	return p.errf("expected %q, found %s", s, p.cur())
}

// parseBlockUntil parses statements until the terminator token. For "}"
// blocks pass (TSymbol, "}"); for top level pass (TEOF, "").
func (p *flowParser) parseBlockUntil(kind TokKind, text string) ([]Stmt, error) {
	stmts := []Stmt{}
	for {
		p.skipNewlines()
		t := p.cur()
		if t.Kind == kind && (text == "" || t.Text == text) {
			return stmts, nil
		}
		if t.Kind == TEOF {
			return nil, p.errf("unexpected end of file (unclosed block?)")
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, s)
	}
}

func (p *flowParser) parseBracedBlock() ([]Stmt, error) {
	if err := p.expectSymbol("{"); err != nil {
		return nil, err
	}
	stmts, err := p.parseBlockUntil(TSymbol, "}")
	if err != nil {
		return nil, err
	}
	if err := p.expectSymbol("}"); err != nil {
		return nil, err
	}
	return stmts, nil
}

func (p *flowParser) endStmt() error {
	t := p.cur()
	if t.Kind == TNewline || (t.Kind == TSymbol && t.Text == ";") {
		p.i++
		return nil
	}
	if t.Kind == TEOF || (t.Kind == TSymbol && t.Text == "}") {
		return nil
	}
	return p.errf("expected end of statement, found %s", t)
}

func (p *flowParser) parseStmt() (Stmt, error) {
	t := p.cur()
	line := t.Line
	if t.Kind == TKeyword {
		switch t.Text {
		case "if":
			return p.parseIf()
		case "for":
			return p.parseFor()
		case "while":
			return p.parseWhile()
		case "func":
			return p.parseFunc()
		case "with":
			return p.parseWith()
		case "return":
			p.next()
			var x Expr
			if p.cur().Kind != TNewline && p.cur().Kind != TEOF && !p.atSymbol("}") && !p.atSymbol(";") {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				x = e
			}
			if err := p.endStmt(); err != nil {
				return nil, err
			}
			return &ReturnStmt{pos: pos{line}, X: x}, nil
		case "break":
			p.next()
			if err := p.endStmt(); err != nil {
				return nil, err
			}
			return &BreakStmt{pos: pos{line}}, nil
		case "continue":
			p.next()
			if err := p.endStmt(); err != nil {
				return nil, err
			}
			return &ContinueStmt{pos: pos{line}}, nil
		}
		return nil, p.errf("unexpected keyword %q", t.Text)
	}

	// Expression or assignment.
	x, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if p.acceptSymbol("=") {
		switch x.(type) {
		case *NameExpr, *IndexExpr:
		default:
			return nil, p.errf("invalid assignment target %s", x.Render())
		}
		v, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.endStmt(); err != nil {
			return nil, err
		}
		return &AssignStmt{pos: pos{line}, Target: x, Value: v}, nil
	}
	if err := p.endStmt(); err != nil {
		return nil, err
	}
	return &ExprStmt{pos: pos{line}, X: x}, nil
}

func (p *flowParser) parseIf() (Stmt, error) {
	line := p.cur().Line
	if err := p.expectKeyword("if"); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	then, err := p.parseBracedBlock()
	if err != nil {
		return nil, err
	}
	stmt := &IfStmt{pos: pos{line}, Cond: cond, Then: then}
	if p.atKeyword("else") {
		p.next()
		if p.atKeyword("if") {
			elseIf, err := p.parseIf()
			if err != nil {
				return nil, err
			}
			stmt.Else = []Stmt{elseIf}
		} else {
			elseBlock, err := p.parseBracedBlock()
			if err != nil {
				return nil, err
			}
			stmt.Else = elseBlock
		}
	}
	return stmt, nil
}

func (p *flowParser) parseFor() (Stmt, error) {
	line := p.cur().Line
	if err := p.expectKeyword("for"); err != nil {
		return nil, err
	}
	if p.cur().Kind != TIdent {
		return nil, p.errf("expected loop variable, found %s", p.cur())
	}
	v := p.next().Text
	if err := p.expectKeyword("in"); err != nil {
		return nil, err
	}
	iter, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	body, err := p.parseBracedBlock()
	if err != nil {
		return nil, err
	}
	return &ForStmt{pos: pos{line}, Var: v, Iterable: iter, Body: body}, nil
}

func (p *flowParser) parseWhile() (Stmt, error) {
	line := p.cur().Line
	if err := p.expectKeyword("while"); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	body, err := p.parseBracedBlock()
	if err != nil {
		return nil, err
	}
	return &WhileStmt{pos: pos{line}, Cond: cond, Body: body}, nil
}

func (p *flowParser) parseFunc() (Stmt, error) {
	line := p.cur().Line
	if err := p.expectKeyword("func"); err != nil {
		return nil, err
	}
	if p.cur().Kind != TIdent {
		return nil, p.errf("expected function name")
	}
	name := p.next().Text
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	var params []string
	for !p.atSymbol(")") {
		if p.cur().Kind != TIdent {
			return nil, p.errf("expected parameter name")
		}
		params = append(params, p.next().Text)
		if !p.acceptSymbol(",") {
			break
		}
	}
	if err := p.expectSymbol(")"); err != nil {
		return nil, err
	}
	body, err := p.parseBracedBlock()
	if err != nil {
		return nil, err
	}
	return &FuncStmt{pos: pos{line}, Name: name, Params: params, Body: body}, nil
}

func (p *flowParser) parseWith() (Stmt, error) {
	line := p.cur().Line
	if err := p.expectKeyword("with"); err != nil {
		return nil, err
	}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	call, ok := e.(*CallExpr)
	if !ok {
		return nil, p.errf("with requires a call expression, found %s", e.Render())
	}
	body, err := p.parseBracedBlock()
	if err != nil {
		return nil, err
	}
	return &WithStmt{pos: pos{line}, Call: call, Body: body}, nil
}

// ---------- Expressions ----------

func (p *flowParser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *flowParser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.atKeyword("or") {
		line := p.next().Line
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{pos: pos{line}, Op: "or", L: l, R: r}
	}
	return l, nil
}

func (p *flowParser) parseAnd() (Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.atKeyword("and") {
		line := p.next().Line
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{pos: pos{line}, Op: "and", L: l, R: r}
	}
	return l, nil
}

func (p *flowParser) parseNot() (Expr, error) {
	if p.atKeyword("not") {
		line := p.next().Line
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{pos: pos{line}, Op: "not", X: x}, nil
	}
	return p.parseComparison()
}

func (p *flowParser) parseComparison() (Expr, error) {
	l, err := p.parseAddSub()
	if err != nil {
		return nil, err
	}
	if p.cur().Kind == TSymbol {
		switch p.cur().Text {
		case "==", "!=", "<", "<=", ">", ">=":
			op := p.next()
			r, err := p.parseAddSub()
			if err != nil {
				return nil, err
			}
			return &BinaryExpr{pos: pos{op.Line}, Op: op.Text, L: l, R: r}, nil
		}
	}
	if p.atKeyword("in") {
		line := p.next().Line
		r, err := p.parseAddSub()
		if err != nil {
			return nil, err
		}
		return &BinaryExpr{pos: pos{line}, Op: "in", L: l, R: r}, nil
	}
	return l, nil
}

func (p *flowParser) parseAddSub() (Expr, error) {
	l, err := p.parseMulDiv()
	if err != nil {
		return nil, err
	}
	for p.atSymbol("+") || p.atSymbol("-") {
		op := p.next()
		r, err := p.parseMulDiv()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{pos: pos{op.Line}, Op: op.Text, L: l, R: r}
	}
	return l, nil
}

func (p *flowParser) parseMulDiv() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.atSymbol("*") || p.atSymbol("/") || p.atSymbol("%") {
		op := p.next()
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{pos: pos{op.Line}, Op: op.Text, L: l, R: r}
	}
	return l, nil
}

func (p *flowParser) parseUnary() (Expr, error) {
	if p.atSymbol("-") {
		line := p.next().Line
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{pos: pos{line}, Op: "-", X: x}, nil
	}
	return p.parsePostfix()
}

func (p *flowParser) parsePostfix() (Expr, error) {
	x, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		if p.atSymbol("[") {
			line := p.next().Line
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectSymbol("]"); err != nil {
				return nil, err
			}
			x = &IndexExpr{pos: pos{line}, X: x, Index: idx}
			continue
		}
		break
	}
	return x, nil
}

func (p *flowParser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch t.Kind {
	case TNumber:
		p.next()
		if !containsAny(t.Text, ".eE") {
			n, err := strconv.ParseInt(t.Text, 10, 64)
			if err != nil {
				return nil, p.errf("bad integer %q", t.Text)
			}
			return &NumberLit{pos: pos{t.Line}, IsInt: true, I: n}, nil
		}
		f, err := strconv.ParseFloat(t.Text, 64)
		if err != nil {
			return nil, p.errf("bad number %q", t.Text)
		}
		return &NumberLit{pos: pos{t.Line}, F: f}, nil
	case TString:
		p.next()
		return &StringLit{pos: pos{t.Line}, S: t.S()}, nil
	case TKeyword:
		switch t.Text {
		case "true":
			p.next()
			return &BoolLit{pos: pos{t.Line}, B: true}, nil
		case "false":
			p.next()
			return &BoolLit{pos: pos{t.Line}, B: false}, nil
		case "nil":
			p.next()
			return &NilLit{pos: pos{t.Line}}, nil
		}
		return nil, p.errf("unexpected keyword %q in expression", t.Text)
	case TIdent:
		p.next()
		name := t.Text
		for p.atSymbol(".") {
			p.next()
			if p.cur().Kind != TIdent {
				return nil, p.errf("expected identifier after '.'")
			}
			name += "." + p.next().Text
		}
		if p.atSymbol("(") {
			return p.parseCall(name, t.Line)
		}
		return &NameExpr{pos: pos{t.Line}, Name: name}, nil
	case TSymbol:
		switch t.Text {
		case "(":
			p.next()
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			return e, nil
		case "[":
			p.next()
			lit := &ListLit{pos: pos{t.Line}}
			p.skipNewlines()
			for !p.atSymbol("]") {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				lit.Items = append(lit.Items, e)
				p.skipNewlines()
				if !p.acceptSymbol(",") {
					break
				}
				p.skipNewlines()
			}
			if err := p.expectSymbol("]"); err != nil {
				return nil, err
			}
			return lit, nil
		case "{":
			p.next()
			lit := &DictLit{pos: pos{t.Line}}
			p.skipNewlines()
			for !p.atSymbol("}") {
				k, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				if err := p.expectSymbol(":"); err != nil {
					return nil, err
				}
				v, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				lit.Keys = append(lit.Keys, k)
				lit.Vals = append(lit.Vals, v)
				p.skipNewlines()
				if !p.acceptSymbol(",") {
					break
				}
				p.skipNewlines()
			}
			if err := p.expectSymbol("}"); err != nil {
				return nil, err
			}
			return lit, nil
		}
	}
	return nil, p.errf("unexpected token %s", t)
}

func (p *flowParser) parseCall(fn string, line int) (Expr, error) {
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	call := &CallExpr{pos: pos{line}, Fn: fn}
	p.skipNewlines()
	for !p.atSymbol(")") {
		// kwarg: IDENT '=' expr (but not '==')
		if p.cur().Kind == TIdent && p.toks[p.i+1].Kind == TSymbol && p.toks[p.i+1].Text == "=" {
			name := p.next().Text
			p.next() // '='
			v, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			call.KwNames = append(call.KwNames, name)
			call.KwVals = append(call.KwVals, v)
		} else {
			if len(call.KwNames) > 0 {
				return nil, p.errf("positional argument after keyword argument")
			}
			a, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			call.Args = append(call.Args, a)
		}
		p.skipNewlines()
		if !p.acceptSymbol(",") {
			break
		}
		p.skipNewlines()
	}
	if err := p.expectSymbol(")"); err != nil {
		return nil, err
	}
	return call, nil
}

// S returns the token text (string literals already decoded by the lexer).
func (t Token) S() string { return t.Text }

func containsAny(s, chars string) bool {
	for _, c := range chars {
		for _, sc := range s {
			if sc == c {
				return true
			}
		}
	}
	return false
}
