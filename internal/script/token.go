// Package script implements Flow, the small imperative pipeline language
// FlorDB-in-Go instruments in place of Python. Flow exists because
// multiversion hindsight logging (§2 of the paper) requires re-executing
// *historical versions of user code with newly injected log statements* —
// which demands an interpreter the system controls.
//
// The language is deliberately small: numbers, strings, booleans, nil,
// lists, dicts, functions; assignment, if/else, for-in, while, with;
// arithmetic, comparison and boolean operators; and the flor.* builtins of
// the paper's API (§2.1): flor.log, flor.arg, flor.loop, flor.checkpointing,
// flor.iteration, flor.commit. Host functions registered by the embedding
// program supply domain behaviour (featurizers, model training steps, ...).
//
// Example (the paper's Figure 5 training loop in Flow):
//
//	hidden = flor.arg("hidden", 500)
//	num_epochs = flor.arg("epochs", 5)
//	with flor.checkpointing(model=net, optimizer=opt) {
//	    for epoch in flor.loop("epoch", range(num_epochs)) {
//	        for data in flor.loop("step", batches) {
//	            loss = train_step(net, opt, data)
//	            flor.log("loss", loss)
//	        }
//	        acc = eval_model(net)
//	        flor.log("acc", acc)
//	    }
//	}
package script

import (
	"fmt"
	"strings"
	"unicode"
)

// TokKind classifies Flow tokens.
type TokKind int

// Token kinds.
const (
	TEOF TokKind = iota
	TNewline
	TIdent
	TKeyword
	TNumber
	TString
	TSymbol
)

// Token is one lexical unit.
type Token struct {
	Kind TokKind
	Text string
	Line int
	Col  int
}

func (t Token) String() string {
	switch t.Kind {
	case TEOF:
		return "EOF"
	case TNewline:
		return "NEWLINE"
	default:
		return fmt.Sprintf("%q", t.Text)
	}
}

var flowKeywords = map[string]bool{
	"if": true, "else": true, "for": true, "in": true, "while": true,
	"func": true, "return": true, "break": true, "continue": true,
	"with": true, "and": true, "or": true, "not": true,
	"true": true, "false": true, "nil": true,
}

// LexFlow tokenizes Flow source. Newlines are significant (statement
// terminators) except inside (), [] or {} used as expression brackets;
// block braces reset depth tracking via the parser's newline skipping.
func LexFlow(src string) ([]Token, error) {
	var toks []Token
	line, col := 1, 1
	i := 0
	n := len(src)
	parenDepth := 0 // (), [] nesting — newlines inside are insignificant

	emit := func(kind TokKind, text string) {
		toks = append(toks, Token{Kind: kind, Text: text, Line: line, Col: col})
	}

	for i < n {
		c := src[i]
		switch {
		case c == '\n':
			if parenDepth == 0 {
				if len(toks) > 0 && toks[len(toks)-1].Kind != TNewline {
					emit(TNewline, "\\n")
				}
			}
			i++
			line++
			col = 1
		case c == ' ' || c == '\t' || c == '\r':
			i++
			col++
		case c == '#':
			for i < n && src[i] != '\n' {
				i++
			}
		case c == '"' || c == '\'':
			quote := c
			startLine, startCol := line, col
			i++
			col++
			var sb strings.Builder
			closed := false
			for i < n {
				if src[i] == '\\' && i+1 < n {
					switch src[i+1] {
					case 'n':
						sb.WriteByte('\n')
					case 't':
						sb.WriteByte('\t')
					case '\\':
						sb.WriteByte('\\')
					case quote:
						sb.WriteByte(quote)
					default:
						sb.WriteByte(src[i+1])
					}
					i += 2
					col += 2
					continue
				}
				if src[i] == quote {
					closed = true
					i++
					col++
					break
				}
				if src[i] == '\n' {
					return nil, fmt.Errorf("flow: %d:%d: newline in string literal", startLine, startCol)
				}
				sb.WriteByte(src[i])
				i++
				col++
			}
			if !closed {
				return nil, fmt.Errorf("flow: %d:%d: unterminated string", startLine, startCol)
			}
			toks = append(toks, Token{Kind: TString, Text: sb.String(), Line: startLine, Col: startCol})
		case c >= '0' && c <= '9':
			start := i
			startCol := col
			seenDot, seenExp := false, false
			for i < n {
				d := src[i]
				if d >= '0' && d <= '9' {
					i++
					col++
					continue
				}
				if d == '.' && !seenDot && !seenExp && i+1 < n && src[i+1] >= '0' && src[i+1] <= '9' {
					seenDot = true
					i++
					col++
					continue
				}
				if (d == 'e' || d == 'E') && !seenExp && i > start {
					if i+1 < n && (src[i+1] == '+' || src[i+1] == '-' || (src[i+1] >= '0' && src[i+1] <= '9')) {
						seenExp = true
						i++
						col++
						if src[i] == '+' || src[i] == '-' {
							i++
							col++
						}
						continue
					}
				}
				break
			}
			toks = append(toks, Token{Kind: TNumber, Text: src[start:i], Line: line, Col: startCol})
		case isFlowIdentStart(rune(c)):
			start := i
			startCol := col
			for i < n && isFlowIdentPart(rune(src[i])) {
				i++
				col++
			}
			word := src[start:i]
			kind := TIdent
			if flowKeywords[word] {
				kind = TKeyword
			}
			toks = append(toks, Token{Kind: kind, Text: word, Line: line, Col: startCol})
		default:
			startCol := col
			two := ""
			if i+1 < n {
				two = src[i : i+2]
			}
			switch two {
			case "==", "!=", "<=", ">=":
				toks = append(toks, Token{Kind: TSymbol, Text: two, Line: line, Col: startCol})
				i += 2
				col += 2
				continue
			}
			switch c {
			case '(', '[':
				parenDepth++
			case ')', ']':
				if parenDepth > 0 {
					parenDepth--
				}
			}
			switch c {
			case '=', '<', '>', '+', '-', '*', '/', '%', '(', ')', '[', ']', '{', '}', ',', '.', ':', ';':
				toks = append(toks, Token{Kind: TSymbol, Text: string(c), Line: line, Col: startCol})
				i++
				col++
			default:
				return nil, fmt.Errorf("flow: %d:%d: unexpected character %q", line, col, c)
			}
		}
	}
	if len(toks) > 0 && toks[len(toks)-1].Kind != TNewline {
		toks = append(toks, Token{Kind: TNewline, Text: "\\n", Line: line, Col: col})
	}
	toks = append(toks, Token{Kind: TEOF, Line: line, Col: col})
	return toks, nil
}

func isFlowIdentStart(r rune) bool { return r == '_' || unicode.IsLetter(r) }
func isFlowIdentPart(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}
