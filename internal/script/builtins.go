package script

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// registerBuiltins installs the Flow standard library into an interpreter.
func registerBuiltins(in *Interp) {
	reg := func(name string, fn HostFunc) { in.RegisterHost(name, fn) }

	reg("range", func(args []Value, _ map[string]Value) (Value, error) {
		var start, stop, step int64 = 0, 0, 1
		switch len(args) {
		case 1:
			s, ok := args[0].(int64)
			if !ok {
				return nil, fmt.Errorf("range: expected integer")
			}
			stop = s
		case 2, 3:
			a, aok := args[0].(int64)
			b, bok := args[1].(int64)
			if !aok || !bok {
				return nil, fmt.Errorf("range: expected integers")
			}
			start, stop = a, b
			if len(args) == 3 {
				c, ok := args[2].(int64)
				if !ok || c == 0 {
					return nil, fmt.Errorf("range: bad step")
				}
				step = c
			}
		default:
			return nil, fmt.Errorf("range expects 1-3 arguments")
		}
		var items []Value
		if step > 0 {
			for i := start; i < stop; i += step {
				items = append(items, i)
			}
		} else {
			for i := start; i > stop; i += step {
				items = append(items, i)
			}
		}
		return &List{Items: items}, nil
	})

	reg("len", func(args []Value, _ map[string]Value) (Value, error) {
		if len(args) != 1 {
			return nil, fmt.Errorf("len expects 1 argument")
		}
		switch x := args[0].(type) {
		case *List:
			return int64(len(x.Items)), nil
		case *Dict:
			return int64(x.Len()), nil
		case string:
			return int64(len(x)), nil
		default:
			return nil, fmt.Errorf("len: unsupported type %s", Repr(args[0]))
		}
	})

	reg("print", func(args []Value, _ map[string]Value) (Value, error) {
		parts := make([]string, len(args))
		for i, a := range args {
			parts[i] = Repr(a)
		}
		fmt.Fprintln(in.Stdout, strings.Join(parts, " "))
		return nil, nil
	})

	reg("append", func(args []Value, _ map[string]Value) (Value, error) {
		if len(args) < 2 {
			return nil, fmt.Errorf("append(list, items...) expects at least 2 arguments")
		}
		l, ok := args[0].(*List)
		if !ok {
			return nil, fmt.Errorf("append: first argument must be a list")
		}
		l.Items = append(l.Items, args[1:]...)
		return l, nil
	})

	reg("str", func(args []Value, _ map[string]Value) (Value, error) {
		if len(args) != 1 {
			return nil, fmt.Errorf("str expects 1 argument")
		}
		return Repr(args[0]), nil
	})

	reg("int", func(args []Value, _ map[string]Value) (Value, error) {
		if len(args) != 1 {
			return nil, fmt.Errorf("int expects 1 argument")
		}
		switch x := args[0].(type) {
		case int64:
			return x, nil
		case float64:
			return int64(x), nil
		case string:
			n, err := strconv.ParseInt(strings.TrimSpace(x), 10, 64)
			if err != nil {
				return nil, fmt.Errorf("int: cannot parse %q", x)
			}
			return n, nil
		case bool:
			if x {
				return int64(1), nil
			}
			return int64(0), nil
		default:
			return nil, fmt.Errorf("int: unsupported type")
		}
	})

	reg("float", func(args []Value, _ map[string]Value) (Value, error) {
		if len(args) != 1 {
			return nil, fmt.Errorf("float expects 1 argument")
		}
		switch x := args[0].(type) {
		case int64:
			return float64(x), nil
		case float64:
			return x, nil
		case string:
			f, err := strconv.ParseFloat(strings.TrimSpace(x), 64)
			if err != nil {
				return nil, fmt.Errorf("float: cannot parse %q", x)
			}
			return f, nil
		default:
			return nil, fmt.Errorf("float: unsupported type")
		}
	})

	reg("abs", func(args []Value, _ map[string]Value) (Value, error) {
		if len(args) != 1 {
			return nil, fmt.Errorf("abs expects 1 argument")
		}
		switch x := args[0].(type) {
		case int64:
			if x < 0 {
				return -x, nil
			}
			return x, nil
		case float64:
			return math.Abs(x), nil
		default:
			return nil, fmt.Errorf("abs: not a number")
		}
	})

	reg("min", numReduce("min", func(a, b float64) float64 { return math.Min(a, b) }))
	reg("max", numReduce("max", func(a, b float64) float64 { return math.Max(a, b) }))

	reg("sum", func(args []Value, _ map[string]Value) (Value, error) {
		if len(args) != 1 {
			return nil, fmt.Errorf("sum expects 1 argument")
		}
		l, ok := args[0].(*List)
		if !ok {
			return nil, fmt.Errorf("sum: expected list")
		}
		var total float64
		allInt := true
		for _, it := range l.Items {
			f, ok := toFloat(it)
			if !ok {
				return nil, fmt.Errorf("sum: non-numeric element %s", Repr(it))
			}
			if _, isInt := it.(int64); !isInt {
				allInt = false
			}
			total += f
		}
		if allInt {
			return int64(total), nil
		}
		return total, nil
	})

	reg("round", func(args []Value, _ map[string]Value) (Value, error) {
		if len(args) < 1 || len(args) > 2 {
			return nil, fmt.Errorf("round expects 1-2 arguments")
		}
		f, ok := toFloat(args[0])
		if !ok {
			return nil, fmt.Errorf("round: not a number")
		}
		digits := int64(0)
		if len(args) == 2 {
			d, ok := args[1].(int64)
			if !ok {
				return nil, fmt.Errorf("round: digits must be an integer")
			}
			digits = d
		}
		scale := math.Pow(10, float64(digits))
		return math.Round(f*scale) / scale, nil
	})

	reg("sorted", func(args []Value, _ map[string]Value) (Value, error) {
		if len(args) != 1 {
			return nil, fmt.Errorf("sorted expects 1 argument")
		}
		l, ok := args[0].(*List)
		if !ok {
			return nil, fmt.Errorf("sorted: expected list")
		}
		items := append([]Value(nil), l.Items...)
		var sortErr error
		sort.SliceStable(items, func(i, j int) bool {
			lt, err := applyBinary("<", items[i], items[j])
			if err != nil {
				sortErr = err
				return false
			}
			b, _ := lt.(bool)
			return b
		})
		if sortErr != nil {
			return nil, fmt.Errorf("sorted: %w", sortErr)
		}
		return &List{Items: items}, nil
	})

	reg("keys", func(args []Value, _ map[string]Value) (Value, error) {
		if len(args) != 1 {
			return nil, fmt.Errorf("keys expects 1 argument")
		}
		d, ok := args[0].(*Dict)
		if !ok {
			return nil, fmt.Errorf("keys: expected dict")
		}
		ks := d.Keys()
		items := make([]Value, len(ks))
		for i, k := range ks {
			items[i] = k
		}
		return &List{Items: items}, nil
	})

	reg("get", func(args []Value, _ map[string]Value) (Value, error) {
		if len(args) != 3 {
			return nil, fmt.Errorf("get(dict, key, default) expects 3 arguments")
		}
		d, ok := args[0].(*Dict)
		if !ok {
			return nil, fmt.Errorf("get: expected dict")
		}
		k, ok := args[1].(string)
		if !ok {
			return nil, fmt.Errorf("get: key must be a string")
		}
		if v, found := d.Get(k); found {
			return v, nil
		}
		return args[2], nil
	})

	reg("split", func(args []Value, _ map[string]Value) (Value, error) {
		if len(args) != 2 {
			return nil, fmt.Errorf("split(s, sep) expects 2 arguments")
		}
		s, sok := args[0].(string)
		sep, pok := args[1].(string)
		if !sok || !pok {
			return nil, fmt.Errorf("split: expected strings")
		}
		parts := strings.Split(s, sep)
		items := make([]Value, len(parts))
		for i, p := range parts {
			items[i] = p
		}
		return &List{Items: items}, nil
	})

	reg("join", func(args []Value, _ map[string]Value) (Value, error) {
		if len(args) != 2 {
			return nil, fmt.Errorf("join(list, sep) expects 2 arguments")
		}
		l, lok := args[0].(*List)
		sep, sok := args[1].(string)
		if !lok || !sok {
			return nil, fmt.Errorf("join: expected (list, string)")
		}
		parts := make([]string, len(l.Items))
		for i, it := range l.Items {
			s, ok := it.(string)
			if !ok {
				return nil, fmt.Errorf("join: non-string element %s", Repr(it))
			}
			parts[i] = s
		}
		return strings.Join(parts, sep), nil
	})

	reg("upper", strFunc("upper", strings.ToUpper))
	reg("lower", strFunc("lower", strings.ToLower))
	reg("trim", strFunc("trim", strings.TrimSpace))

	reg("startswith", func(args []Value, _ map[string]Value) (Value, error) {
		if len(args) != 2 {
			return nil, fmt.Errorf("startswith(s, prefix) expects 2 arguments")
		}
		s, sok := args[0].(string)
		p, pok := args[1].(string)
		if !sok || !pok {
			return nil, fmt.Errorf("startswith: expected strings")
		}
		return strings.HasPrefix(s, p), nil
	})

	reg("slice", func(args []Value, _ map[string]Value) (Value, error) {
		if len(args) != 3 {
			return nil, fmt.Errorf("slice(list, lo, hi) expects 3 arguments")
		}
		l, ok := args[0].(*List)
		if !ok {
			s, sok := args[0].(string)
			if !sok {
				return nil, fmt.Errorf("slice: expected list or string")
			}
			lo, hi, err := sliceBounds(args[1], args[2], int64(len(s)))
			if err != nil {
				return nil, err
			}
			return s[lo:hi], nil
		}
		lo, hi, err := sliceBounds(args[1], args[2], int64(len(l.Items)))
		if err != nil {
			return nil, err
		}
		return &List{Items: append([]Value(nil), l.Items[lo:hi]...)}, nil
	})
}

func sliceBounds(loV, hiV Value, n int64) (int64, int64, error) {
	lo, ok := loV.(int64)
	if !ok {
		return 0, 0, fmt.Errorf("slice: lo must be an integer")
	}
	hi, ok := hiV.(int64)
	if !ok {
		return 0, 0, fmt.Errorf("slice: hi must be an integer")
	}
	if lo < 0 {
		lo += n
	}
	if hi < 0 {
		hi += n
	}
	if lo < 0 {
		lo = 0
	}
	if hi > n {
		hi = n
	}
	if lo > hi {
		lo = hi
	}
	return lo, hi, nil
}

func numReduce(name string, f func(a, b float64) float64) HostFunc {
	return func(args []Value, _ map[string]Value) (Value, error) {
		var vals []Value
		if len(args) == 1 {
			if l, ok := args[0].(*List); ok {
				vals = l.Items
			} else {
				vals = args
			}
		} else {
			vals = args
		}
		if len(vals) == 0 {
			return nil, fmt.Errorf("%s: empty input", name)
		}
		allInt := true
		acc, ok := toFloat(vals[0])
		if !ok {
			return nil, fmt.Errorf("%s: non-numeric element", name)
		}
		if _, isInt := vals[0].(int64); !isInt {
			allInt = false
		}
		for _, v := range vals[1:] {
			fv, ok := toFloat(v)
			if !ok {
				return nil, fmt.Errorf("%s: non-numeric element", name)
			}
			if _, isInt := v.(int64); !isInt {
				allInt = false
			}
			acc = f(acc, fv)
		}
		if allInt {
			return int64(acc), nil
		}
		return acc, nil
	}
}

func strFunc(name string, f func(string) string) HostFunc {
	return func(args []Value, _ map[string]Value) (Value, error) {
		if len(args) != 1 {
			return nil, fmt.Errorf("%s expects 1 argument", name)
		}
		s, ok := args[0].(string)
		if !ok {
			return nil, fmt.Errorf("%s: expected string", name)
		}
		return f(s), nil
	}
}
