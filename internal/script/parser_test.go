package script

import (
	"strings"
	"testing"
)

func mustParse(t *testing.T, src string) *File {
	t.Helper()
	f, err := Parse("test.flow", src)
	if err != nil {
		t.Fatalf("parse: %v\nsource:\n%s", err, src)
	}
	return f
}

func TestLexFlowBasics(t *testing.T) {
	toks, err := LexFlow("x = 1 + 2.5  # comment\ny = \"a\\nb\"\n")
	if err != nil {
		t.Fatal(err)
	}
	var texts []string
	for _, tok := range toks {
		if tok.Kind != TNewline && tok.Kind != TEOF {
			texts = append(texts, tok.Text)
		}
	}
	want := []string{"x", "=", "1", "+", "2.5", "y", "=", "a\nb"}
	if len(texts) != len(want) {
		t.Fatalf("tokens: %v", texts)
	}
	for i := range want {
		if texts[i] != want[i] {
			t.Fatalf("token %d: %q want %q", i, texts[i], want[i])
		}
	}
}

func TestLexFlowNewlineInsideParens(t *testing.T) {
	toks, err := LexFlow("f(1,\n  2)\n")
	if err != nil {
		t.Fatal(err)
	}
	for i, tok := range toks {
		if tok.Kind == TNewline && i < len(toks)-2 {
			t.Fatalf("newline inside parens not suppressed: %v", toks)
		}
	}
}

func TestLexFlowErrors(t *testing.T) {
	if _, err := LexFlow(`x = "unterminated`); err == nil {
		t.Fatal("unterminated string must fail")
	}
	if _, err := LexFlow("x = \"a\nb\""); err == nil {
		t.Fatal("newline in string must fail")
	}
	if _, err := LexFlow("x @ y"); err == nil {
		t.Fatal("bad char must fail")
	}
}

func TestParseAssignAndExpr(t *testing.T) {
	f := mustParse(t, "x = 1 + 2 * 3\ny = (1 + 2) * 3\nprint(x, y)\n")
	if len(f.Stmts) != 3 {
		t.Fatalf("stmts = %d", len(f.Stmts))
	}
	a := f.Stmts[0].(*AssignStmt)
	// Precedence: 1 + (2*3)
	if a.Value.Render() != "(1 + (2 * 3))" {
		t.Fatalf("precedence: %s", a.Value.Render())
	}
	b := f.Stmts[1].(*AssignStmt)
	if b.Value.Render() != "((1 + 2) * 3)" {
		t.Fatalf("parens: %s", b.Value.Render())
	}
}

func TestParseControlFlow(t *testing.T) {
	src := `
if x > 1 {
    y = 1
} else if x > 0 {
    y = 2
} else {
    y = 3
}
for i in range(10) {
    if i == 5 { break }
    continue
}
while x < 10 {
    x = x + 1
}
`
	f := mustParse(t, src)
	if len(f.Stmts) != 3 {
		t.Fatalf("stmts = %d", len(f.Stmts))
	}
	ifs := f.Stmts[0].(*IfStmt)
	if len(ifs.Else) != 1 {
		t.Fatalf("else-if nesting: %v", ifs.Else)
	}
	if _, ok := ifs.Else[0].(*IfStmt); !ok {
		t.Fatal("else-if should nest an IfStmt")
	}
}

func TestParseFuncAndCall(t *testing.T) {
	src := `
func add(a, b) {
    return a + b
}
z = add(1, 2)
`
	f := mustParse(t, src)
	fn := f.Stmts[0].(*FuncStmt)
	if fn.Name != "add" || len(fn.Params) != 2 {
		t.Fatalf("func: %+v", fn)
	}
}

func TestParseDottedCallsAndKwargs(t *testing.T) {
	src := `flor.log("acc", acc)
x = flor.arg("hidden", default=500)
`
	f := mustParse(t, src)
	call := f.Stmts[0].(*ExprStmt).X.(*CallExpr)
	if call.Fn != "flor.log" || len(call.Args) != 2 {
		t.Fatalf("call: %+v", call)
	}
	arg := f.Stmts[1].(*AssignStmt).Value.(*CallExpr)
	if len(arg.KwNames) != 1 || arg.KwNames[0] != "default" {
		t.Fatalf("kwargs: %+v", arg)
	}
}

func TestParseWithStatement(t *testing.T) {
	src := `
with flor.checkpointing(model=net, optimizer=opt) {
    for epoch in flor.loop("epoch", range(3)) {
        flor.log("loss", 0.5)
    }
}
`
	f := mustParse(t, src)
	w := f.Stmts[0].(*WithStmt)
	if w.Call.Fn != "flor.checkpointing" || len(w.Call.KwNames) != 2 {
		t.Fatalf("with: %+v", w.Call)
	}
	loop := w.Body[0].(*ForStmt)
	if call, ok := loop.Iterable.(*CallExpr); !ok || call.Fn != "flor.loop" {
		t.Fatalf("loop iterable: %v", loop.Iterable.Render())
	}
}

func TestParseListsDictsIndexing(t *testing.T) {
	src := `xs = [1, 2, 3]
d = {"a": 1, "b": 2}
v = xs[0] + d["a"]
xs[1] = 9
d["c"] = 3
`
	f := mustParse(t, src)
	if len(f.Stmts) != 5 {
		t.Fatalf("stmts = %d", len(f.Stmts))
	}
	if _, ok := f.Stmts[3].(*AssignStmt).Target.(*IndexExpr); !ok {
		t.Fatal("index assignment target")
	}
}

func TestParseErrorsFlow(t *testing.T) {
	bad := []string{
		"if x {",
		"for in range(3) { }",
		"x = ",
		"func () { }",
		"with x { }",              // with requires a call
		"1 = 2",                   // bad assignment target
		"for x in range(3) }",     // missing {
		"return 1 2",              // trailing junk
		"x = f(a=1, 2)",           // positional after keyword
		"while { }",               // missing condition
		"with flor.commit() else", // junk
	}
	for _, src := range bad {
		if _, err := Parse("bad.flow", src); err == nil {
			t.Fatalf("expected parse error for %q", src)
		}
	}
}

func TestPrintRoundTrip(t *testing.T) {
	src := `
hidden = flor.arg("hidden", 500)
with flor.checkpointing(model=net) {
    for epoch in flor.loop("epoch", range(hidden)) {
        loss = step(net)
        flor.log("loss", loss)
        if loss < 0.1 {
            break
        }
    }
}
func helper(a) {
    return a * 2
}
`
	f := mustParse(t, src)
	printed := Print(f)
	f2, err := Parse("test.flow", printed)
	if err != nil {
		t.Fatalf("reparse of printed output failed: %v\n%s", err, printed)
	}
	printed2 := Print(f2)
	if printed != printed2 {
		t.Fatalf("print not idempotent:\n%s\n---\n%s", printed, printed2)
	}
}

func TestSignatureStability(t *testing.T) {
	// Signatures must be independent of whitespace and comments so that
	// alignment survives reformatting.
	f1 := mustParse(t, "x=1+2\n")
	f2 := mustParse(t, "x  =  1 + 2   # comment\n")
	if f1.Stmts[0].Signature() != f2.Stmts[0].Signature() {
		t.Fatalf("signatures differ: %q vs %q", f1.Stmts[0].Signature(), f2.Stmts[0].Signature())
	}
}

func TestStatementsOnSingleLineWithSemicolons(t *testing.T) {
	f := mustParse(t, "x = 1; y = 2; print(x + y)\n")
	if len(f.Stmts) != 3 {
		t.Fatalf("stmts = %d", len(f.Stmts))
	}
}

func TestNegativeNumbersAndUnary(t *testing.T) {
	f := mustParse(t, "x = -5\ny = -x + 1\nz = not true\n")
	if f.Stmts[0].(*AssignStmt).Value.Render() != "-5" {
		t.Fatalf("neg literal: %s", f.Stmts[0].(*AssignStmt).Value.Render())
	}
	if !strings.Contains(f.Stmts[2].(*AssignStmt).Value.Render(), "not") {
		t.Fatal("not rendering")
	}
}
