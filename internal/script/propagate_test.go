package script

import (
	"strings"
	"testing"
)

func TestPropagateInjectsNewLog(t *testing.T) {
	oldSrc := `
for epoch in flor.loop("epoch", range(3)) {
    loss = step(net)
    acc = eval(net)
    flor.log("acc", acc)
}
`
	newSrc := `
for epoch in flor.loop("epoch", range(3)) {
    loss = step(net)
    flor.log("loss", loss)
    acc = eval(net)
    flor.log("acc", acc)
}
`
	oldF := mustParse(t, oldSrc)
	newF := mustParse(t, newSrc)
	merged, res := Propagate(oldF, newF)
	if res.Injected != 1 {
		t.Fatalf("injected = %d", res.Injected)
	}
	printed := Print(merged)
	// The new log must land right after `loss = step(net)`.
	lossIdx := strings.Index(printed, "loss = step(net)")
	logIdx := strings.Index(printed, `flor.log("loss", loss)`)
	accIdx := strings.Index(printed, "acc = eval(net)")
	if lossIdx < 0 || logIdx < 0 || accIdx < 0 || !(lossIdx < logIdx && logIdx < accIdx) {
		t.Fatalf("placement wrong:\n%s", printed)
	}
	// The merged file must parse and count one more log than the old.
	if CountLogCalls(merged) != CountLogCalls(oldF)+1 {
		t.Fatalf("log count: %d vs %d", CountLogCalls(merged), CountLogCalls(oldF))
	}
}

func TestPropagateCarriesDerivationAssignments(t *testing.T) {
	oldSrc := `
for e in flor.loop("epoch", range(2)) {
    loss = step(net)
}
`
	newSrc := `
for e in flor.loop("epoch", range(2)) {
    loss = step(net)
    ratio = loss * 100
    flor.log("ratio", ratio)
}
`
	merged, res := Propagate(mustParse(t, oldSrc), mustParse(t, newSrc))
	if res.Injected != 2 {
		t.Fatalf("injected = %d (want assignment + log)", res.Injected)
	}
	printed := Print(merged)
	if !strings.Contains(printed, "ratio = (loss * 100)") || !strings.Contains(printed, `flor.log("ratio", ratio)`) {
		t.Fatalf("derivation missing:\n%s", printed)
	}
}

func TestPropagateDoesNotInjectComputation(t *testing.T) {
	oldSrc := "x = 1\n"
	newSrc := "x = 1\nlaunch_missiles()\ny = train(x)\n"
	_, res := Propagate(mustParse(t, oldSrc), mustParse(t, newSrc))
	// launch_missiles() is a non-log expression statement: never injected.
	// y = train(x) is an assignment (pure derivation) so it IS carried.
	merged, _ := Propagate(mustParse(t, oldSrc), mustParse(t, newSrc))
	printed := Print(merged)
	if strings.Contains(printed, "launch_missiles") {
		t.Fatalf("computation injected:\n%s", printed)
	}
	if res.Injected != 1 {
		t.Fatalf("injected = %d", res.Injected)
	}
}

func TestPropagateSurvivesRefactor(t *testing.T) {
	// Old version has different surrounding code; the anchor (the matched
	// statement before the log) still places the statement correctly.
	oldSrc := `
setup()
for e in flor.loop("epoch", range(5)) {
    loss = step(net)
    extra_old_work()
}
teardown()
`
	newSrc := `
prepare_differently()
for e in flor.loop("epoch", range(5)) {
    loss = step(net)
    flor.log("loss", loss)
}
`
	merged, res := Propagate(mustParse(t, oldSrc), mustParse(t, newSrc))
	if res.Injected != 1 {
		t.Fatalf("injected = %d", res.Injected)
	}
	printed := Print(merged)
	lossIdx := strings.Index(printed, "loss = step(net)")
	logIdx := strings.Index(printed, `flor.log("loss", loss)`)
	extraIdx := strings.Index(printed, "extra_old_work()")
	if !(lossIdx < logIdx && logIdx < extraIdx) {
		t.Fatalf("anchored placement wrong:\n%s", printed)
	}
	// Old-only statements survive.
	if !strings.Contains(printed, "setup()") || !strings.Contains(printed, "teardown()") {
		t.Fatalf("old statements lost:\n%s", printed)
	}
}

func TestPropagateIntoNestedLoops(t *testing.T) {
	oldSrc := `
for d in flor.loop("document", docs) {
    for p in flor.loop("page", pages(d)) {
        text = read_page(d, p)
    }
}
`
	newSrc := `
for d in flor.loop("document", docs) {
    for p in flor.loop("page", pages(d)) {
        text = read_page(d, p)
        flor.log("page_text", text)
    }
    flor.log("doc_done", d)
}
`
	merged, res := Propagate(mustParse(t, oldSrc), mustParse(t, newSrc))
	if res.Injected != 2 {
		t.Fatalf("injected = %d", res.Injected)
	}
	printed := Print(merged)
	inner := strings.Index(printed, `flor.log("page_text", text)`)
	outer := strings.Index(printed, `flor.log("doc_done", d)`)
	if inner < 0 || outer < 0 || inner > outer {
		t.Fatalf("nesting wrong:\n%s", printed)
	}
}

func TestPropagateNewLogAtTopOfBlock(t *testing.T) {
	oldSrc := "a = 1\nb = 2\n"
	newSrc := "flor.log(\"start\", 1)\na = 1\nb = 2\n"
	merged, res := Propagate(mustParse(t, oldSrc), mustParse(t, newSrc))
	if res.Injected != 1 {
		t.Fatalf("injected = %d", res.Injected)
	}
	printed := Print(merged)
	if !strings.HasPrefix(printed, `flor.log("start", 1)`) {
		t.Fatalf("front injection:\n%s", printed)
	}
}

func TestPropagateIdempotent(t *testing.T) {
	oldSrc := `
for e in flor.loop("epoch", range(2)) {
    loss = step(net)
    flor.log("loss", loss)
}
`
	f := mustParse(t, oldSrc)
	merged, res := Propagate(f, mustParse(t, oldSrc))
	if res.Injected != 0 {
		t.Fatalf("identical versions must inject nothing, got %d", res.Injected)
	}
	if Print(merged) != Print(f) {
		t.Fatal("idempotent propagation changed the file")
	}
}

func TestPropagateClonesInjectedStatements(t *testing.T) {
	oldSrc1 := "x = step()\n"
	oldSrc2 := "x = step()\nother()\n"
	newSrc := "x = step()\nflor.log(\"x\", x)\n"
	newF := mustParse(t, newSrc)
	m1, _ := Propagate(mustParse(t, oldSrc1), newF)
	m2, _ := Propagate(mustParse(t, oldSrc2), newF)
	// Mutating one injected AST must not affect the other (deep clone).
	inj1 := m1.Stmts[1].(*ExprStmt).X.(*CallExpr)
	inj2 := m2.Stmts[1].(*ExprStmt).X.(*CallExpr)
	if inj1 == inj2 {
		t.Fatal("injected statements alias each other")
	}
	inj1.Args[0].(*StringLit).S = "mutated"
	if inj2.Args[0].(*StringLit).S == "mutated" {
		t.Fatal("clone not deep")
	}
}

func TestCountLogCallsAndLoggedNames(t *testing.T) {
	f := mustParse(t, `
flor.log("a", 1)
for e in flor.loop("epoch", range(2)) {
    flor.log("b", e)
    if e > 0 {
        flor.log("c", e)
    }
}
`)
	if CountLogCalls(f) != 3 {
		t.Fatalf("count = %d", CountLogCalls(f))
	}
	names := LoggedNames(f)
	for _, n := range []string{"a", "b", "c"} {
		if !names[n] {
			t.Fatalf("missing logged name %q", n)
		}
	}
}

func TestPropagatedFileExecutes(t *testing.T) {
	// End-to-end: the merged AST actually runs and emits the new log.
	oldSrc := `
total = 0
for e in flor.loop("epoch", range(3)) {
    total = total + e
}
`
	newSrc := `
total = 0
for e in flor.loop("epoch", range(3)) {
    total = total + e
    flor.log("running_total", total)
}
`
	merged, _ := Propagate(mustParse(t, oldSrc), mustParse(t, newSrc))
	h := &recordingHooks{}
	in := NewInterp(h, nil)
	if err := in.Run(merged); err != nil {
		t.Fatal(err)
	}
	if len(h.logs) != 3 || h.logs[2] != "running_total=3" {
		t.Fatalf("logs: %v", h.logs)
	}
}
