package script

import (
	"strings"

	"flordb/internal/diffkit"
)

// Propagation implements part (a) of the paper's multiversion hindsight
// logging "magic trick" (§2): given the latest version of a script with new
// logging statements, inject those statements into the correct locations of
// a prior version of the script.
//
// The algorithm is a statement-level tree alignment in the spirit of
// fine-grained source differencing [6]:
//
//  1. Align the statement sequences of corresponding blocks using Myers
//     diff over canonical statement signatures (block headers for compound
//     statements; full renderings for simple statements).
//  2. Recurse into the bodies of matched compound statements.
//  3. Any *new* statement that is a flor.log / flor.commit call (or an
//     assignment feeding one) is injected into the old block at the aligned
//     position — anchored after the nearest preceding matched statement.
//
// Statements that are new but not log-bearing are NOT injected: hindsight
// logging adds observation, never computation (the paper's replay extracts
// "arbitrary expression values derivable from [recorded] state"; the
// assignments we carry along are the derivations feeding new logs).

// PropagateResult reports what propagation did.
type PropagateResult struct {
	Injected int // statements inserted into the old version
	Matched  int // statements aligned between the versions
}

// Propagate returns a copy of oldF with the new log-bearing statements of
// newF injected at their aligned positions. Neither input is mutated.
func Propagate(oldF, newF *File) (*File, PropagateResult) {
	res := &PropagateResult{}
	merged := propagateBlock(cloneStmts(oldF.Stmts), newF.Stmts, res)
	return &File{Name: oldF.Name, Stmts: merged}, *res
}

func propagateBlock(oldStmts, newStmts []Stmt, res *PropagateResult) []Stmt {
	oldSigs := make([]string, len(oldStmts))
	for i, s := range oldStmts {
		oldSigs[i] = s.Signature()
	}
	newSigs := make([]string, len(newStmts))
	for i, s := range newStmts {
		newSigs[i] = s.Signature()
	}
	// align[j] = index in old of the statement matching new[j], or -1.
	align := diffkit.Align(oldSigs, newSigs)

	// Start from a copy of the old block; compute, for each old index, the
	// list of new statements to inject immediately after it (or at the
	// front for index -1).
	injections := make(map[int][]Stmt) // old index (insert after) -> stmts
	lastMatchedOld := -1
	for j, s := range newStmts {
		if align[j] >= 0 {
			lastMatchedOld = align[j]
			res.Matched++
			// Recurse into matched compound statements.
			oldStmt := oldStmts[align[j]]
			newBodies := Body(s)
			oldBodies := Body(oldStmt)
			if len(newBodies) == len(oldBodies) && len(newBodies) > 0 {
				for bi := range newBodies {
					mergedBody := propagateBlock(oldBodies[bi], newBodies[bi], res)
					SetBody(oldStmt, bi, mergedBody)
				}
			}
			continue
		}
		// New statement: inject only if log-bearing.
		if isLogBearing(s) {
			injections[lastMatchedOld] = append(injections[lastMatchedOld], markInjected(s))
			res.Injected++
		}
	}

	if len(injections) == 0 {
		return oldStmts
	}
	var out []Stmt
	out = append(out, injections[-1]...)
	for i, s := range oldStmts {
		out = append(out, s)
		out = append(out, injections[i]...)
	}
	return out
}

// isLogBearing reports whether a statement should be carried into history:
// flor.log / flor.commit expression statements, assignments whose value
// feeds a later log (conservatively: any assignment whose right-hand side
// contains no flor call is allowed — it is a pure derivation), and compound
// statements any of whose bodies contain a log-bearing statement.
func isLogBearing(s Stmt) bool {
	switch x := s.(type) {
	case *ExprStmt:
		if call, ok := x.X.(*CallExpr); ok {
			return call.Fn == "flor.log" || call.Fn == "flor.commit"
		}
		return false
	case *AssignStmt:
		// A new assignment is carried along as a derivation for subsequent
		// new logs (e.g. `ratio = loss / acc` followed by
		// `flor.log("ratio", ratio)`).
		return !containsFlorCall(x.Value) || containsOnlyFlorLog(x.Value)
	default:
		for _, body := range Body(s) {
			for _, child := range body {
				if isLogBearing(child) {
					return true
				}
			}
		}
		return false
	}
}

func containsFlorCall(e Expr) bool {
	found := false
	walkExpr(e, func(x Expr) {
		if c, ok := x.(*CallExpr); ok && strings.HasPrefix(c.Fn, "flor.") {
			found = true
		}
	})
	return found
}

func containsOnlyFlorLog(e Expr) bool {
	ok := true
	walkExpr(e, func(x Expr) {
		if c, isCall := x.(*CallExpr); isCall && strings.HasPrefix(c.Fn, "flor.") && c.Fn != "flor.log" {
			ok = false
		}
	})
	return ok
}

func walkExpr(e Expr, fn func(Expr)) {
	if e == nil {
		return
	}
	fn(e)
	switch x := e.(type) {
	case *ListLit:
		for _, it := range x.Items {
			walkExpr(it, fn)
		}
	case *DictLit:
		for i := range x.Keys {
			walkExpr(x.Keys[i], fn)
			walkExpr(x.Vals[i], fn)
		}
	case *IndexExpr:
		walkExpr(x.X, fn)
		walkExpr(x.Index, fn)
	case *CallExpr:
		for _, a := range x.Args {
			walkExpr(a, fn)
		}
		for _, a := range x.KwVals {
			walkExpr(a, fn)
		}
	case *BinaryExpr:
		walkExpr(x.L, fn)
		walkExpr(x.R, fn)
	case *UnaryExpr:
		walkExpr(x.X, fn)
	}
}

// cloneStmt deep-copies a statement so injection into multiple historical
// versions never aliases AST nodes.
func cloneStmt(s Stmt) Stmt {
	switch x := s.(type) {
	case *AssignStmt:
		return &AssignStmt{pos: x.pos, Target: cloneExpr(x.Target), Value: cloneExpr(x.Value)}
	case *ExprStmt:
		return &ExprStmt{pos: x.pos, X: cloneExpr(x.X)}
	case *IfStmt:
		return &IfStmt{pos: x.pos, Cond: cloneExpr(x.Cond), Then: cloneStmts(x.Then), Else: cloneStmts(x.Else)}
	case *ForStmt:
		return &ForStmt{pos: x.pos, Var: x.Var, Iterable: cloneExpr(x.Iterable), Body: cloneStmts(x.Body)}
	case *WhileStmt:
		return &WhileStmt{pos: x.pos, Cond: cloneExpr(x.Cond), Body: cloneStmts(x.Body)}
	case *FuncStmt:
		return &FuncStmt{pos: x.pos, Name: x.Name, Params: append([]string(nil), x.Params...), Body: cloneStmts(x.Body)}
	case *ReturnStmt:
		var e Expr
		if x.X != nil {
			e = cloneExpr(x.X)
		}
		return &ReturnStmt{pos: x.pos, X: e}
	case *BreakStmt:
		return &BreakStmt{pos: x.pos}
	case *ContinueStmt:
		return &ContinueStmt{pos: x.pos}
	case *WithStmt:
		return &WithStmt{pos: x.pos, Call: cloneExpr(x.Call).(*CallExpr), Body: cloneStmts(x.Body)}
	default:
		return s
	}
}

// markInjected zeroes a statement's position (recursively) so downstream
// consumers — replay mode planning, the CLI's diff display — can identify
// statements that were added by propagation rather than written in the
// original version.
func markInjected(s Stmt) Stmt {
	c := cloneStmt(s)
	switch x := c.(type) {
	case *AssignStmt:
		x.pos = pos{0}
	case *ExprStmt:
		x.pos = pos{0}
	case *IfStmt:
		x.pos = pos{0}
	case *ForStmt:
		x.pos = pos{0}
	case *WhileStmt:
		x.pos = pos{0}
	case *FuncStmt:
		x.pos = pos{0}
	case *ReturnStmt:
		x.pos = pos{0}
	case *BreakStmt:
		x.pos = pos{0}
	case *ContinueStmt:
		x.pos = pos{0}
	case *WithStmt:
		x.pos = pos{0}
	}
	for bi, body := range Body(c) {
		marked := make([]Stmt, len(body))
		for i, child := range body {
			marked[i] = markInjected(child)
		}
		SetBody(c, bi, marked)
	}
	return c
}

func cloneStmts(stmts []Stmt) []Stmt {
	out := make([]Stmt, len(stmts))
	for i, s := range stmts {
		out[i] = cloneStmt(s)
	}
	return out
}

func cloneExpr(e Expr) Expr {
	switch x := e.(type) {
	case *NumberLit:
		c := *x
		return &c
	case *StringLit:
		c := *x
		return &c
	case *BoolLit:
		c := *x
		return &c
	case *NilLit:
		c := *x
		return &c
	case *NameExpr:
		c := *x
		return &c
	case *ListLit:
		items := make([]Expr, len(x.Items))
		for i, it := range x.Items {
			items[i] = cloneExpr(it)
		}
		return &ListLit{pos: x.pos, Items: items}
	case *DictLit:
		keys := make([]Expr, len(x.Keys))
		vals := make([]Expr, len(x.Vals))
		for i := range x.Keys {
			keys[i] = cloneExpr(x.Keys[i])
			vals[i] = cloneExpr(x.Vals[i])
		}
		return &DictLit{pos: x.pos, Keys: keys, Vals: vals}
	case *IndexExpr:
		return &IndexExpr{pos: x.pos, X: cloneExpr(x.X), Index: cloneExpr(x.Index)}
	case *CallExpr:
		args := make([]Expr, len(x.Args))
		for i, a := range x.Args {
			args[i] = cloneExpr(a)
		}
		kwVals := make([]Expr, len(x.KwVals))
		for i, a := range x.KwVals {
			kwVals[i] = cloneExpr(a)
		}
		return &CallExpr{pos: x.pos, Fn: x.Fn, Args: args, KwNames: append([]string(nil), x.KwNames...), KwVals: kwVals}
	case *BinaryExpr:
		return &BinaryExpr{pos: x.pos, Op: x.Op, L: cloneExpr(x.L), R: cloneExpr(x.R)}
	case *UnaryExpr:
		return &UnaryExpr{pos: x.pos, Op: x.Op, X: cloneExpr(x.X)}
	default:
		return e
	}
}

// CountLogCalls counts flor.log statements in a file (used in tests and by
// replay planning to decide whether a version needs replay at all).
func CountLogCalls(f *File) int {
	count := 0
	var walk func(stmts []Stmt)
	walk = func(stmts []Stmt) {
		for _, s := range stmts {
			if es, ok := s.(*ExprStmt); ok {
				if call, isCall := es.X.(*CallExpr); isCall && call.Fn == "flor.log" {
					count++
				}
			}
			for _, b := range Body(s) {
				walk(b)
			}
		}
	}
	walk(f.Stmts)
	return count
}

// LoggedNames returns the set of statically-known value names appearing in
// flor.log(name, ...) calls with literal name arguments.
func LoggedNames(f *File) map[string]bool {
	out := make(map[string]bool)
	var walk func(stmts []Stmt)
	walk = func(stmts []Stmt) {
		for _, s := range stmts {
			if es, ok := s.(*ExprStmt); ok {
				if call, isCall := es.X.(*CallExpr); isCall && call.Fn == "flor.log" && len(call.Args) >= 1 {
					if lit, isLit := call.Args[0].(*StringLit); isLit {
						out[lit.S] = true
					}
				}
			}
			for _, b := range Body(s) {
				walk(b)
			}
		}
	}
	walk(f.Stmts)
	return out
}
