package script

import (
	"fmt"
	"strconv"
	"strings"
)

// Node is any AST node.
type Node interface {
	// Line is the 1-based source line the node starts on (0 for injected
	// nodes that have no source position).
	Line() int
}

// Stmt is a statement node.
type Stmt interface {
	Node
	stmtNode()
	// Signature renders a canonical one-line header for the statement,
	// used by cross-version alignment (block bodies excluded).
	Signature() string
}

// Expr is an expression node.
type Expr interface {
	Node
	exprNode()
	// Render prints the expression canonically.
	Render() string
}

type pos struct{ line int }

func (p pos) Line() int { return p.line }

// ---------- Expressions ----------

// NumberLit is an integer or float literal.
type NumberLit struct {
	pos
	IsInt bool
	I     int64
	F     float64
}

func (*NumberLit) exprNode() {}

// Render implements Expr.
func (e *NumberLit) Render() string {
	if e.IsInt {
		return strconv.FormatInt(e.I, 10)
	}
	s := strconv.FormatFloat(e.F, 'g', -1, 64)
	if !strings.ContainsAny(s, ".eE") {
		s += ".0"
	}
	return s
}

// StringLit is a string literal.
type StringLit struct {
	pos
	S string
}

func (*StringLit) exprNode() {}

// Render implements Expr.
func (e *StringLit) Render() string { return strconv.Quote(e.S) }

// BoolLit is true/false.
type BoolLit struct {
	pos
	B bool
}

func (*BoolLit) exprNode() {}

// Render implements Expr.
func (e *BoolLit) Render() string {
	if e.B {
		return "true"
	}
	return "false"
}

// NilLit is nil.
type NilLit struct{ pos }

func (*NilLit) exprNode() {}

// Render implements Expr.
func (e *NilLit) Render() string { return "nil" }

// NameExpr references a (possibly dotted) name such as "x" or "flor.log".
type NameExpr struct {
	pos
	Name string
}

func (*NameExpr) exprNode() {}

// Render implements Expr.
func (e *NameExpr) Render() string { return e.Name }

// ListLit is [a, b, c].
type ListLit struct {
	pos
	Items []Expr
}

func (*ListLit) exprNode() {}

// Render implements Expr.
func (e *ListLit) Render() string {
	parts := make([]string, len(e.Items))
	for i, it := range e.Items {
		parts[i] = it.Render()
	}
	return "[" + strings.Join(parts, ", ") + "]"
}

// DictLit is {k: v, ...}.
type DictLit struct {
	pos
	Keys []Expr
	Vals []Expr
}

func (*DictLit) exprNode() {}

// Render implements Expr.
func (e *DictLit) Render() string {
	parts := make([]string, len(e.Keys))
	for i := range e.Keys {
		parts[i] = e.Keys[i].Render() + ": " + e.Vals[i].Render()
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// IndexExpr is x[i].
type IndexExpr struct {
	pos
	X     Expr
	Index Expr
}

func (*IndexExpr) exprNode() {}

// Render implements Expr.
func (e *IndexExpr) Render() string { return e.X.Render() + "[" + e.Index.Render() + "]" }

// CallExpr calls a dotted name with positional and keyword arguments.
type CallExpr struct {
	pos
	Fn      string
	Args    []Expr
	KwNames []string
	KwVals  []Expr
}

func (*CallExpr) exprNode() {}

// Render implements Expr.
func (e *CallExpr) Render() string {
	var parts []string
	for _, a := range e.Args {
		parts = append(parts, a.Render())
	}
	for i, k := range e.KwNames {
		parts = append(parts, k+"="+e.KwVals[i].Render())
	}
	return e.Fn + "(" + strings.Join(parts, ", ") + ")"
}

// BinaryExpr applies an infix operator.
type BinaryExpr struct {
	pos
	Op   string
	L, R Expr
}

func (*BinaryExpr) exprNode() {}

// Render implements Expr.
func (e *BinaryExpr) Render() string {
	return "(" + e.L.Render() + " " + e.Op + " " + e.R.Render() + ")"
}

// UnaryExpr applies "not" or unary minus.
type UnaryExpr struct {
	pos
	Op string
	X  Expr
}

func (*UnaryExpr) exprNode() {}

// Render implements Expr.
func (e *UnaryExpr) Render() string {
	if e.Op == "not" {
		return "not " + e.X.Render()
	}
	return e.Op + e.X.Render()
}

// ---------- Statements ----------

// AssignStmt is `target = expr` where target is a name or index expression.
type AssignStmt struct {
	pos
	Target Expr // *NameExpr or *IndexExpr
	Value  Expr
}

func (*AssignStmt) stmtNode() {}

// Signature implements Stmt.
func (s *AssignStmt) Signature() string { return s.Target.Render() + " = " + s.Value.Render() }

// ExprStmt evaluates an expression for effect.
type ExprStmt struct {
	pos
	X Expr
}

func (*ExprStmt) stmtNode() {}

// Signature implements Stmt.
func (s *ExprStmt) Signature() string { return s.X.Render() }

// IfStmt is if/else; chained "else if" nests in Else.
type IfStmt struct {
	pos
	Cond Expr
	Then []Stmt
	Else []Stmt
}

func (*IfStmt) stmtNode() {}

// Signature implements Stmt.
func (s *IfStmt) Signature() string { return "if " + s.Cond.Render() }

// ForStmt is `for v in iterable { body }`.
type ForStmt struct {
	pos
	Var      string
	Iterable Expr
	Body     []Stmt
}

func (*ForStmt) stmtNode() {}

// Signature implements Stmt.
func (s *ForStmt) Signature() string { return "for " + s.Var + " in " + s.Iterable.Render() }

// WhileStmt is `while cond { body }`.
type WhileStmt struct {
	pos
	Cond Expr
	Body []Stmt
}

func (*WhileStmt) stmtNode() {}

// Signature implements Stmt.
func (s *WhileStmt) Signature() string { return "while " + s.Cond.Render() }

// FuncStmt defines a function.
type FuncStmt struct {
	pos
	Name   string
	Params []string
	Body   []Stmt
}

func (*FuncStmt) stmtNode() {}

// Signature implements Stmt.
func (s *FuncStmt) Signature() string {
	return "func " + s.Name + "(" + strings.Join(s.Params, ", ") + ")"
}

// ReturnStmt returns from a function.
type ReturnStmt struct {
	pos
	X Expr // may be nil
}

func (*ReturnStmt) stmtNode() {}

// Signature implements Stmt.
func (s *ReturnStmt) Signature() string {
	if s.X == nil {
		return "return"
	}
	return "return " + s.X.Render()
}

// BreakStmt breaks the innermost loop.
type BreakStmt struct{ pos }

func (*BreakStmt) stmtNode() {}

// Signature implements Stmt.
func (s *BreakStmt) Signature() string { return "break" }

// ContinueStmt continues the innermost loop.
type ContinueStmt struct{ pos }

func (*ContinueStmt) stmtNode() {}

// Signature implements Stmt.
func (s *ContinueStmt) Signature() string { return "continue" }

// WithStmt is `with call { body }` — used for flor.checkpointing and
// flor.iteration context managers.
type WithStmt struct {
	pos
	Call *CallExpr
	Body []Stmt
}

func (*WithStmt) stmtNode() {}

// Signature implements Stmt.
func (s *WithStmt) Signature() string { return "with " + s.Call.Render() }

// File is a parsed Flow source file.
type File struct {
	Name  string
	Stmts []Stmt
}

// ---------- Pretty printer ----------

// Print renders a file canonically; parsing the output yields an equivalent
// AST. Used for committing canonical text, computing statement signatures,
// and materializing propagated versions.
func Print(f *File) string {
	var sb strings.Builder
	printStmts(&sb, f.Stmts, 0)
	return sb.String()
}

func printStmts(sb *strings.Builder, stmts []Stmt, depth int) {
	indent := strings.Repeat("    ", depth)
	for _, s := range stmts {
		switch x := s.(type) {
		case *IfStmt:
			fmt.Fprintf(sb, "%s%s {\n", indent, x.Signature())
			printStmts(sb, x.Then, depth+1)
			if len(x.Else) > 0 {
				fmt.Fprintf(sb, "%s} else {\n", indent)
				printStmts(sb, x.Else, depth+1)
			}
			fmt.Fprintf(sb, "%s}\n", indent)
		case *ForStmt:
			fmt.Fprintf(sb, "%s%s {\n", indent, x.Signature())
			printStmts(sb, x.Body, depth+1)
			fmt.Fprintf(sb, "%s}\n", indent)
		case *WhileStmt:
			fmt.Fprintf(sb, "%s%s {\n", indent, x.Signature())
			printStmts(sb, x.Body, depth+1)
			fmt.Fprintf(sb, "%s}\n", indent)
		case *FuncStmt:
			fmt.Fprintf(sb, "%s%s {\n", indent, x.Signature())
			printStmts(sb, x.Body, depth+1)
			fmt.Fprintf(sb, "%s}\n", indent)
		case *WithStmt:
			fmt.Fprintf(sb, "%s%s {\n", indent, x.Signature())
			printStmts(sb, x.Body, depth+1)
			fmt.Fprintf(sb, "%s}\n", indent)
		default:
			fmt.Fprintf(sb, "%s%s\n", indent, s.Signature())
		}
	}
}

// Body returns the child statement blocks of a compound statement, or nil
// for simple statements. IfStmt returns Then and Else.
func Body(s Stmt) [][]Stmt {
	switch x := s.(type) {
	case *IfStmt:
		return [][]Stmt{x.Then, x.Else}
	case *ForStmt:
		return [][]Stmt{x.Body}
	case *WhileStmt:
		return [][]Stmt{x.Body}
	case *FuncStmt:
		return [][]Stmt{x.Body}
	case *WithStmt:
		return [][]Stmt{x.Body}
	default:
		return nil
	}
}

// SetBody replaces the i-th child block of a compound statement.
func SetBody(s Stmt, i int, body []Stmt) {
	switch x := s.(type) {
	case *IfStmt:
		if i == 0 {
			x.Then = body
		} else {
			x.Else = body
		}
	case *ForStmt:
		x.Body = body
	case *WhileStmt:
		x.Body = body
	case *FuncStmt:
		x.Body = body
	case *WithStmt:
		x.Body = body
	}
}
