package script

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

// runSrc executes Flow source with NopHooks and returns stdout.
func runSrc(t *testing.T, src string) string {
	t.Helper()
	var out bytes.Buffer
	in := NewInterp(NopHooks{}, &out)
	f := mustParse(t, src)
	if err := in.Run(f); err != nil {
		t.Fatalf("run: %v", err)
	}
	return out.String()
}

func runErr(t *testing.T, src string) error {
	t.Helper()
	in := NewInterp(NopHooks{}, nil)
	f, err := Parse("test.flow", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return in.Run(f)
}

func TestArithmeticAndPrecedence(t *testing.T) {
	out := runSrc(t, "print(1 + 2 * 3, (1 + 2) * 3, 7 % 3, 10 / 4)\n")
	if out != "7 9 1 2.5\n" {
		t.Fatalf("out = %q", out)
	}
}

func TestStringOps(t *testing.T) {
	out := runSrc(t, `print("a" + "b", "x" < "y", "ab" in "cabd")`+"\n")
	if out != "ab true true\n" {
		t.Fatalf("out = %q", out)
	}
}

func TestComparisonsAndBooleans(t *testing.T) {
	out := runSrc(t, "print(1 < 2 and 2 <= 2, 3 > 4 or not false, 1 == 1.0, 1 != 2)\n")
	if out != "true true true true\n" {
		t.Fatalf("out = %q", out)
	}
}

func TestShortCircuit(t *testing.T) {
	// boom() would error; short circuit must avoid evaluating it.
	src := `
func boom() {
    return 1 / 0
}
x = false and boom()
y = true or boom()
print(x, y)
`
	out := runSrc(t, src)
	if out != "false true\n" {
		t.Fatalf("out = %q", out)
	}
}

func TestIfElseChain(t *testing.T) {
	src := `
x = 7
if x > 10 {
    print("big")
} else if x > 5 {
    print("mid")
} else {
    print("small")
}
`
	if out := runSrc(t, src); out != "mid\n" {
		t.Fatalf("out = %q", out)
	}
}

func TestForLoopBreakContinue(t *testing.T) {
	src := `
total = 0
for i in range(10) {
    if i == 3 { continue }
    if i == 6 { break }
    total = total + i
}
print(total)
`
	if out := runSrc(t, src); out != "12\n" { // 0+1+2+4+5
		t.Fatalf("out = %q", out)
	}
}

func TestWhileLoop(t *testing.T) {
	src := `
n = 1
while n < 100 {
    n = n * 2
}
print(n)
`
	if out := runSrc(t, src); out != "128\n" {
		t.Fatalf("out = %q", out)
	}
}

func TestFunctionsAndRecursion(t *testing.T) {
	src := `
func fib(n) {
    if n < 2 { return n }
    return fib(n - 1) + fib(n - 2)
}
print(fib(10))
`
	if out := runSrc(t, src); out != "55\n" {
		t.Fatalf("out = %q", out)
	}
}

func TestClosuresReadOuter(t *testing.T) {
	src := `
base = 10
func addBase(x) {
    return x + base
}
print(addBase(5))
`
	if out := runSrc(t, src); out != "15\n" {
		t.Fatalf("out = %q", out)
	}
}

func TestListsAndMutation(t *testing.T) {
	src := `
xs = [1, 2, 3]
xs[0] = 99
append(xs, 4)
print(xs, len(xs), xs[-1])
`
	if out := runSrc(t, src); out != "[99, 2, 3, 4] 4 4\n" {
		t.Fatalf("out = %q", out)
	}
}

func TestDicts(t *testing.T) {
	src := `
d = {"a": 1}
d["b"] = 2
print(d["a"] + d["b"], len(d), "a" in d, "z" in d, get(d, "z", 42))
for k in d {
    print(k)
}
`
	out := runSrc(t, src)
	if out != "3 2 true false 42\na\nb\n" {
		t.Fatalf("out = %q", out)
	}
}

func TestBuiltins(t *testing.T) {
	cases := []struct{ src, want string }{
		{`print(str(42), int("7"), float("2.5"), abs(-3))`, "42 7 2.5 3\n"},
		{`print(min(3, 1, 2), max([4, 9, 2]), sum([1, 2, 3]))`, "1 9 6\n"},
		{`print(round(2.567, 2), round(2.4))`, "2.57 2\n"},
		{`print(sorted([3, 1, 2]))`, "[3, 1, 2]\n"}, // placeholder replaced below
		{`print(split("a,b,c", ","), join(["x", "y"], "-"))`, `["a", "b", "c"] x-y` + "\n"},
		{`print(upper("ab"), lower("AB"), trim("  x "))`, "AB ab x\n"},
		{`print(startswith("train.flow", "train"), startswith("x", "y"))`, "true false\n"},
		{`print(slice([1, 2, 3, 4], 1, 3), slice("hello", 0, 2))`, "[2, 3] he\n"},
		{`print(range(2, 8, 3))`, "[2, 5]\n"},
		{`print(len(range(0)))`, "0\n"},
	}
	for _, c := range cases {
		want := c.want
		if strings.Contains(c.src, "sorted") {
			want = "[1, 2, 3]\n"
		}
		if out := runSrc(t, c.src+"\n"); out != want {
			t.Fatalf("%s => %q want %q", c.src, out, want)
		}
	}
}

func TestRuntimeErrors(t *testing.T) {
	cases := []string{
		"x = 1 / 0\n",
		"x = [1][5]\n",
		"x = {\"a\": 1}[\"b\"]\n",
		"x = undefined_name\n",
		"undefined_func()\n",
		"x = 1 + \"s\"\n",
		"x = 5 % 0\n",
		"for x in 42 { }\n",
		"x = -\"s\"\n",
		"x = [1]\nx[\"k\"] = 2\n",
	}
	for _, src := range cases {
		if err := runErr(t, src); err == nil {
			t.Fatalf("expected runtime error for %q", src)
		}
	}
}

func TestRuntimeErrorHasPosition(t *testing.T) {
	err := runErr(t, "x = 1\ny = 1 / 0\n")
	if err == nil || !strings.Contains(err.Error(), "test.flow:2") {
		t.Fatalf("error should carry position: %v", err)
	}
}

func TestStepLimit(t *testing.T) {
	in := NewInterp(NopHooks{}, nil)
	in.MaxSteps = 1000
	f := mustParse(t, "while true { x = 1 }\n")
	if err := in.Run(f); err == nil || !strings.Contains(err.Error(), "step limit") {
		t.Fatalf("expected step limit error, got %v", err)
	}
}

func TestHostFunctions(t *testing.T) {
	in := NewInterp(NopHooks{}, nil)
	var got []Value
	in.RegisterHost("capture", func(args []Value, kwargs map[string]Value) (Value, error) {
		got = append(got, args...)
		if v, ok := kwargs["extra"]; ok {
			got = append(got, v)
		}
		return int64(len(got)), nil
	})
	f := mustParse(t, "n = capture(1, \"two\", extra=3.0)\nprint(n)\n")
	var out bytes.Buffer
	in.Stdout = &out
	if err := in.Run(f); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != int64(1) || got[1] != "two" || got[2] != 3.0 {
		t.Fatalf("host args: %v", got)
	}
	if out.String() != "3\n" {
		t.Fatalf("return: %q", out.String())
	}
}

func TestHostFunctionError(t *testing.T) {
	in := NewInterp(NopHooks{}, nil)
	in.RegisterHost("fail", func([]Value, map[string]Value) (Value, error) {
		return nil, fmt.Errorf("host failure")
	})
	f := mustParse(t, "fail()\n")
	if err := in.Run(f); err == nil || !strings.Contains(err.Error(), "host failure") {
		t.Fatalf("host error: %v", err)
	}
}

// recordingHooks captures flor API calls for assertions.
type recordingHooks struct {
	NopHooks
	logs    []string
	args    []string
	loops   []string
	commits int
	ckpts   []map[string]Value
	iters   []string
}

func (h *recordingHooks) Log(name string, v Value) (Value, error) {
	h.logs = append(h.logs, name+"="+Repr(v))
	return v, nil
}

func (h *recordingHooks) Arg(name string, def Value) (Value, error) {
	h.args = append(h.args, name)
	return def, nil
}

func (h *recordingHooks) LoopBegin(name string, vals []Value) (LoopSession, error) {
	h.loops = append(h.loops, fmt.Sprintf("%s/%d", name, len(vals)))
	return nopSession{}, nil
}

func (h *recordingHooks) Commit() error {
	h.commits++
	return nil
}

func (h *recordingHooks) CheckpointingBegin(objs map[string]Value) error {
	h.ckpts = append(h.ckpts, objs)
	return nil
}

func (h *recordingHooks) IterationBegin(name string, v Value) error {
	h.iters = append(h.iters, name+"="+Repr(v))
	return nil
}

func TestFlorHookDispatch(t *testing.T) {
	src := `
lr = flor.arg("lr", 0.001)
with flor.checkpointing(model=lr) {
    for epoch in flor.loop("epoch", range(2)) {
        flor.log("loss", epoch)
    }
}
with flor.iteration("document", nil, "doc1.pdf") {
    flor.log("page_color", 3)
}
flor.commit()
`
	h := &recordingHooks{}
	in := NewInterp(h, nil)
	f := mustParse(t, src)
	if err := in.Run(f); err != nil {
		t.Fatal(err)
	}
	if len(h.args) != 1 || h.args[0] != "lr" {
		t.Fatalf("args: %v", h.args)
	}
	if len(h.loops) != 1 || h.loops[0] != "epoch/2" {
		t.Fatalf("loops: %v", h.loops)
	}
	if len(h.logs) != 3 || h.logs[0] != "loss=0" || h.logs[2] != "page_color=3" {
		t.Fatalf("logs: %v", h.logs)
	}
	if h.commits != 1 {
		t.Fatalf("commits: %d", h.commits)
	}
	if len(h.ckpts) != 1 {
		t.Fatalf("ckpts: %v", h.ckpts)
	}
	if len(h.iters) != 1 || h.iters[0] != "document=doc1.pdf" {
		t.Fatalf("iters: %v", h.iters)
	}
}

func TestFlorLogPassthrough(t *testing.T) {
	// flor.log returns its value, so it can wrap expressions.
	src := "x = flor.log(\"v\", 5) + 1\nprint(x)\n"
	if out := runSrc(t, src); out != "6\n" {
		t.Fatalf("out = %q", out)
	}
}

// skipSession skips even iterations.
type skipSession struct{ ran []int }

func (s *skipSession) Decide(i int, _ Value) (bool, error) { return i%2 == 1, nil }
func (s *skipSession) PostIter(i int, _ Value) error       { s.ran = append(s.ran, i); return nil }
func (s *skipSession) End() error                          { return nil }

type skipHooks struct {
	NopHooks
	session *skipSession
}

func (h *skipHooks) LoopBegin(string, []Value) (LoopSession, error) { return h.session, nil }

func TestLoopSessionSkipControl(t *testing.T) {
	src := `
seen = []
for i in flor.loop("epoch", range(6)) {
    append(seen, i)
}
print(seen)
`
	h := &skipHooks{session: &skipSession{}}
	var out bytes.Buffer
	in := NewInterp(h, &out)
	f := mustParse(t, src)
	if err := in.Run(f); err != nil {
		t.Fatal(err)
	}
	if out.String() != "[1, 3, 5]\n" {
		t.Fatalf("skip control: %q", out.String())
	}
	if len(h.session.ran) != 3 {
		t.Fatalf("PostIter calls: %v", h.session.ran)
	}
}

func TestFlorMisuseErrors(t *testing.T) {
	cases := []string{
		"x = flor.loop(\"e\", range(2))\n",      // loop outside for
		"with flor.commit() { }\n",              // with on non-context call
		"flor.log(\"only-name\")\n",             // wrong arity
		"x = flor.arg(5, 1)\n",                  // non-string name
		"for x in flor.loop(5, range(2)) { }\n", // non-string loop name
		"with flor.iteration(\"d\", nil) { }\n", // wrong arity
	}
	for _, src := range cases {
		if err := runErr(t, src); err == nil {
			t.Fatalf("expected error for %q", src)
		}
	}
}

func TestValueEqualDeep(t *testing.T) {
	if !ValueEqual(NewList(int64(1), "a"), NewList(int64(1), "a")) {
		t.Fatal("deep list equality")
	}
	if ValueEqual(NewList(int64(1)), NewList(int64(2))) {
		t.Fatal("lists differ")
	}
	d1, d2 := NewDict(), NewDict()
	d1.Set("k", int64(1))
	d2.Set("k", int64(1))
	if !ValueEqual(d1, d2) {
		t.Fatal("deep dict equality")
	}
	if !ValueEqual(int64(2), float64(2)) {
		t.Fatal("numeric cross-type equality")
	}
}

func TestTruthiness(t *testing.T) {
	truthy := []Value{int64(1), 0.5, "x", true, NewList(int64(1))}
	falsy := []Value{nil, int64(0), 0.0, "", false, NewList(), NewDict()}
	for _, v := range truthy {
		if !Truthy(v) {
			t.Fatalf("%v should be truthy", v)
		}
	}
	for _, v := range falsy {
		if Truthy(v) {
			t.Fatalf("%v should be falsy", v)
		}
	}
}

func TestTopLevelReturnEndsScript(t *testing.T) {
	src := "print(\"a\")\nreturn\nprint(\"b\")\n"
	if out := runSrc(t, src); out != "a\n" {
		t.Fatalf("out = %q", out)
	}
}

func TestEnvScoping(t *testing.T) {
	// Function locals must not leak; assignment in loop body updates
	// enclosing binding.
	src := `
x = 0
func bump() {
    y = 99
    return y
}
bump()
for i in range(3) {
    x = x + 1
}
print(x)
`
	if out := runSrc(t, src); out != "3\n" {
		t.Fatalf("out = %q", out)
	}
	if err := runErr(t, "func f() { y = 1 }\nf()\nprint(y)\n"); err == nil {
		t.Fatal("function local should not leak")
	}
}
