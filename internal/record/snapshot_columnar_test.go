package record

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"testing"

	"flordb/internal/relation"
)

// refixSnapshotCRC rewrites the 4-byte CRC-32C trailer to match the (possibly
// tampered) body, so byte-surgery tests and the fuzz target exercise the
// columnar decoder's own guards rather than bouncing off the checksum.
func refixSnapshotCRC(data []byte) []byte {
	if len(data) < len(snapshotMagic)+4 {
		return data
	}
	sum := crc32.Checksum(data[:len(data)-4], castagnoli)
	binary.LittleEndian.PutUint32(data[len(data)-4:], sum)
	return data
}

// columnarTables builds a Tables set whose logs table spans several zone
// pages (two complete plus a partial), with epoch structure and tombstones.
func columnarTables(t *testing.T) (*relation.Database, *Tables) {
	t.Helper()
	db := relation.NewDatabase()
	tables, err := CreateTables(db)
	if err != nil {
		t.Fatal(err)
	}
	var ids []relation.RowID
	total := 2*relation.ZonePageRows + relation.ZonePageRows/2
	for i := 0; i < total; i++ {
		id, err := tables.Logs.Insert(relation.Row{
			relation.Text(fmt.Sprintf("p%d", i%3)), relation.Int(int64(i)),
			relation.Text("train.flow"), relation.Int(int64(i % 7)),
			relation.Text([]string{"acc", "loss"}[i%2]), relation.Text("0.5"),
			relation.Int(int64(VTFloat)),
		})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
		if i%512 == 0 {
			db.AdvanceEpoch()
		}
	}
	for i := 0; i < len(ids); i += 37 {
		tables.Logs.Delete(ids[i])
	}
	db.AdvanceEpoch()
	return db, tables
}

// TestSnapshotV2ReadCompatibility pins the upgrade path: snapshots written in
// the legacy row-oriented v2 layout must keep loading under the v3 reader.
func TestSnapshotV2ReadCompatibility(t *testing.T) {
	src := snapTables(t)
	fillSnapTables(t, src)
	var buf bytes.Buffer
	if err := WriteSnapshotV2(&buf, SnapshotMeta{Seq: 9, MaxTstamp: 9}, src); err != nil {
		t.Fatal(err)
	}
	dst := snapTables(t)
	meta, err := ReadSnapshot(buf.Bytes(), dst)
	if err != nil {
		t.Fatalf("v2 snapshot no longer readable: %v", err)
	}
	if meta.Version != 2 {
		t.Fatalf("meta.Version = %d, want 2", meta.Version)
	}
	srcTbls, dstTbls := src.snapshotTables(), dst.snapshotTables()
	for i := range srcTbls {
		a, b := srcTbls[i].Rows(), dstTbls[i].Rows()
		if len(a) != len(b) {
			t.Fatalf("%s: %d rows != %d", srcTbls[i].Name(), len(b), len(a))
		}
		for j := range a {
			for k := range a[j] {
				if relation.Compare(a[j][k], b[j][k]) != 0 {
					t.Fatalf("%s row %d col %d: %v != %v", srcTbls[i].Name(), j, k, b[j][k], a[j][k])
				}
			}
		}
	}
}

// TestSnapshotV3MultiPageRoundTrip round-trips a multi-page table — complete
// pages, a trailing partial page, tombstones, epoch spread — and proves the
// page directory's zone maps were installed into the reader's zone cache.
func TestSnapshotV3MultiPageRoundTrip(t *testing.T) {
	_, src := columnarTables(t)
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, SnapshotMeta{Version: SnapshotVersion, Seq: 3, MinEpoch: 0}, src); err != nil {
		t.Fatal(err)
	}
	dst := snapTables(t)
	if _, err := ReadSnapshot(buf.Bytes(), dst); err != nil {
		t.Fatal(err)
	}
	srcRows, srcBorn, srcDead := src.Logs.Versions()
	dstRows, dstBorn, dstDead := dst.Logs.Versions()
	if len(srcRows) != len(dstRows) {
		t.Fatalf("version count %d != %d", len(dstRows), len(srcRows))
	}
	for i := range srcRows {
		if srcBorn[i] != dstBorn[i] || srcDead[i] != dstDead[i] {
			t.Fatalf("version %d epochs (%d,%d) != (%d,%d)", i, dstBorn[i], dstDead[i], srcBorn[i], srcDead[i])
		}
		for c := range srcRows[i] {
			if relation.Compare(srcRows[i][c], dstRows[i][c]) != 0 {
				t.Fatalf("version %d col %d: %v != %v", i, c, dstRows[i][c], srcRows[i][c])
			}
		}
	}
	// Zone maps must be live after the load: a skip-everything zone filter
	// prunes exactly the complete pages, leaving only trailing-partial-page
	// rows. If the directory zones were dropped, nothing would be pruned.
	scan := relation.NewBatchScan(dst.Logs, nil, relation.DefaultBatchSize)
	scan.SetZoneFilter(func(*relation.PageZone) bool { return true })
	it := relation.NewRowsFromBatches(scan)
	got := 0
	for {
		if _, ok := it.Next(); !ok {
			break
		}
		got++
	}
	all := dst.Logs.Len()
	complete := len(dstRows) / relation.ZonePageRows * relation.ZonePageRows
	if got >= all || got > all-complete+relation.ZonePageRows {
		t.Fatalf("skip-all zone filter pruned nothing (saw %d of %d rows): directory zones not installed", got, all)
	}
}

// TestSnapshotV3ZoneDirectoryDisagreeRejected flips one byte inside a
// directory zone bound (with the CRC re-fixed, as a buggy writer would
// produce) and requires the reader to reject the snapshot: a zone that lies
// would make query-time pruning unsound.
func TestSnapshotV3ZoneDirectoryDisagreeRejected(t *testing.T) {
	db := relation.NewDatabase()
	tables, err := CreateTables(db)
	if err != nil {
		t.Fatal(err)
	}
	// One full page of a single repeated value_name, so the directory's
	// min == max == needle and the needle's first occurrence in the file is
	// the directory Min (the page blob only holds it as a dictionary entry,
	// after the directory).
	const needle = "zoneneedle"
	for i := 0; i < relation.ZonePageRows; i++ {
		if _, err := tables.Logs.Insert(relation.Row{
			relation.Text("p"), relation.Int(int64(i)), relation.Text("f"),
			relation.Int(1), relation.Text(needle), relation.Text("1"), relation.Int(0),
		}); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, SnapshotMeta{Version: SnapshotVersion, Seq: 1}, tables); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	off := bytes.Index(data, []byte(needle))
	if off < 0 {
		t.Fatal("needle not found in snapshot bytes")
	}
	data[off] ^= 1 // directory Min now names a value the page doesn't hold
	refixSnapshotCRC(data)
	dst := snapTables(t)
	_, err = ReadSnapshot(data, dst)
	if err == nil {
		t.Fatal("disagreeing zone directory accepted")
	}
	for _, tbl := range dst.snapshotTables() {
		if tbl.Len() != 0 {
			t.Fatalf("table %s dirtied by rejected load", tbl.Name())
		}
	}
}

// TestSnapshotV3RejectsHugeRowCount mirrors the v2 guard: a CRC-valid v3
// snapshot claiming 2^61 versions must fail with an error, not overflow an
// allocation.
func TestSnapshotV3RejectsHugeRowCount(t *testing.T) {
	src := snapTables(t)
	data := encodeSnapshot(t, SnapshotMeta{Version: SnapshotVersion}, src)
	// v3 table section: uvarint name length, name, then the version-count
	// uvarint we overwrite (0 → one byte for empty tables).
	rd := data[len(snapshotMagic):]
	metaLen, n := binaryUvarint(rd)
	rd = rd[n+int(metaLen):]
	nameLen, n := binaryUvarint(rd)
	countOff := len(data) - len(rd) + n + int(nameLen)
	mut := append([]byte(nil), data[:countOff]...)
	mut = append(mut, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x20) // uvarint 2^61
	mut = append(mut, data[countOff+1:]...)
	refixSnapshotCRC(mut)
	if _, err := ReadSnapshot(mut, snapTables(t)); err == nil {
		t.Fatal("huge v3 row count accepted")
	}
}

// TestSnapshotV3TruncatedPageRejected drops bytes from the tail of the last
// page blob (CRC re-fixed) and requires a clean error.
func TestSnapshotV3TruncatedPageRejected(t *testing.T) {
	_, src := columnarTables(t)
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, SnapshotMeta{Version: SnapshotVersion, Seq: 1}, src); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	mut := append([]byte(nil), data[:len(data)-9]...) // 5 payload bytes + CRC
	mut = append(mut, data[len(data)-4:]...)
	refixSnapshotCRC(mut)
	dst := snapTables(t)
	if _, err := ReadSnapshot(mut, dst); err == nil {
		t.Fatal("truncated page accepted")
	}
	for _, tbl := range dst.snapshotTables() {
		if tbl.Len() != 0 {
			t.Fatalf("table %s dirtied by rejected load", tbl.Name())
		}
	}
}

// TestColumnarPageDictionaryIndexOutOfRange hand-crafts a raw page whose
// dictionary index points past the dictionary and decodes it directly.
func TestColumnarPageDictionaryIndexOutOfRange(t *testing.T) {
	schema := relation.MustSchema(relation.Column{Name: "s", Type: relation.TText})
	// 1 row: born=1, dead=0, NULL bitmap 0x00, tag 's', dict {"a"}, index 5.
	raw := binary.AppendVarint(nil, 1)
	raw = binary.AppendVarint(raw, 0)
	raw = append(raw, 0x00, 's')
	raw = binary.AppendUvarint(raw, 1)
	raw = binary.AppendUvarint(raw, 1)
	raw = append(raw, 'a')
	raw = binary.AppendUvarint(raw, 5)
	frame := append([]byte{0}, binary.AppendUvarint(nil, uint64(len(raw)))...)
	frame = append(frame, raw...)
	de := &pageDirEntry{rows: 1, blobLen: len(frame)}
	_, _, _, err := decodeColumnarPage(frame, schema, de, "logs", 0, nil, nil, nil)
	if err == nil {
		t.Fatal("out-of-range dictionary index accepted")
	}
}

// TestUnframePageGuards covers the compression-frame validations that keep a
// tiny crafted blob from demanding a huge allocation or slipping trailing
// garbage past the decoder.
func TestUnframePageGuards(t *testing.T) {
	if _, err := unframePage(nil); err == nil {
		t.Fatal("empty blob accepted")
	}
	if _, err := unframePage([]byte{7, 1, 0}); err == nil {
		t.Fatal("unknown compression tag accepted")
	}
	// DEFLATE frame claiming a payload far beyond the max expansion ratio.
	huge := append([]byte{1}, binary.AppendUvarint(nil, 1<<40)...)
	huge = append(huge, 0xDE, 0xAD)
	if _, err := unframePage(huge); err == nil {
		t.Fatal("absurd payload length accepted")
	}
	// Raw frame whose declared length disagrees with the body.
	bad := append([]byte{0}, binary.AppendUvarint(nil, 10)...)
	bad = append(bad, 1, 2, 3)
	if _, err := unframePage(bad); err == nil {
		t.Fatal("raw length mismatch accepted")
	}
}

// FuzzColumnarPageRead drives arbitrary mutations of a valid v3 snapshot
// through the columnar reader with the CRC trailer re-fixed, so the fuzzer
// reaches the page directory, frame, and cell decoders instead of stopping at
// the checksum. The reader must never panic and must leave the destination
// tables untouched whenever it reports an error.
func FuzzColumnarPageRead(f *testing.F) {
	db := relation.NewDatabase()
	tables, err := CreateTables(db)
	if err != nil {
		f.Fatal(err)
	}
	var ids []relation.RowID
	for i := 0; i < relation.ZonePageRows+3; i++ {
		id, err := tables.Logs.Insert(relation.Row{
			relation.Text("p"), relation.Int(int64(i)), relation.Text("f"),
			relation.Int(int64(i)), relation.Text([]string{"acc", "loss"}[i%2]),
			relation.Text("0.5"), relation.Int(int64(VTFloat)),
		})
		if err != nil {
			f.Fatal(err)
		}
		ids = append(ids, id)
		if i%100 == 0 {
			db.AdvanceEpoch()
		}
	}
	tables.Logs.Delete(ids[5])
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, SnapshotMeta{Version: SnapshotVersion, Seq: 1, MaxTstamp: 1}, tables); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(append([]byte(nil), valid...))
	f.Add(append([]byte(nil), valid[:len(valid)/2]...)) // truncated mid-pages
	dirCorrupt := append([]byte(nil), valid...)
	dirCorrupt[len(snapshotMagic)+90] ^= 0xFF // inside the first page directory
	f.Add(dirCorrupt)
	f.Add([]byte(snapshotMagic))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		data = refixSnapshotCRC(append([]byte(nil), data...))
		dst, err := CreateTables(relation.NewDatabase())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ReadSnapshot(data, dst); err != nil {
			for _, tbl := range dst.snapshotTables() {
				if tbl.Len() != 0 {
					t.Fatalf("failed load dirtied table %s", tbl.Name())
				}
			}
		}
	})
}
