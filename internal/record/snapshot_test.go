package record

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"testing"
	"time"

	"flordb/internal/relation"
)

func snapTables(t *testing.T) *Tables {
	t.Helper()
	tables, err := CreateTables(relation.NewDatabase())
	if err != nil {
		t.Fatal(err)
	}
	return tables
}

func fillSnapTables(t *testing.T, tables *Tables) {
	t.Helper()
	for i := 0; i < 10; i++ {
		if err := tables.Apply(&LogRecord{
			Kind: KindLog, ProjID: "p", Tstamp: int64(i), Filename: "f.go",
			CtxID: int64(i), ValueName: "acc", Value: "0.5", ValueType: VTFloat,
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := tables.Apply(&LoopRecord{Kind: KindLoop, ProjID: "p", Tstamp: 1, Filename: "f.go", CtxID: 3, ParentCtxID: 0, LoopName: "epoch", LoopIter: 2, IterValue: "2"}); err != nil {
		t.Fatal(err)
	}
	if err := tables.Apply(&ArgRecord{Kind: KindArg, ProjID: "p", Tstamp: 1, Filename: "f.go", Name: "lr", Value: "0.01"}); err != nil {
		t.Fatal(err)
	}
	if _, err := tables.Ts2vid.Insert(relation.Row{
		relation.Text("p"), relation.Int(2), relation.Int(2), relation.Text("v2"), relation.Null(),
	}); err != nil {
		t.Fatal(err)
	}
	if err := tables.PutBlob("p", 2, "f.go", 3, "ckpt::epoch::2", []byte{0, 1, 2, 0xFF}); err != nil {
		t.Fatal(err)
	}
}

func encodeSnapshot(t *testing.T, meta SnapshotMeta, tables *Tables) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, meta, tables); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestSnapshotRoundTrip(t *testing.T) {
	src := snapTables(t)
	fillSnapTables(t, src)
	meta := SnapshotMeta{Version: SnapshotVersion, Seq: 7, MaxTstamp: 9}
	data := encodeSnapshot(t, meta, src)

	dst := snapTables(t)
	got, err := ReadSnapshot(data, dst)
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != meta.Version || got.Seq != meta.Seq || got.MaxTstamp != meta.MaxTstamp {
		t.Fatalf("meta = %+v, want %+v", got, meta)
	}
	srcTbls, dstTbls := src.snapshotTables(), dst.snapshotTables()
	for i := range srcTbls {
		a, b := srcTbls[i].Rows(), dstTbls[i].Rows()
		if len(a) != len(b) {
			t.Fatalf("%s: %d rows != %d", srcTbls[i].Name(), len(b), len(a))
		}
		for j := range a {
			for k := range a[j] {
				if relation.Compare(a[j][k], b[j][k]) != 0 || a[j][k].Type() != b[j][k].Type() {
					t.Fatalf("%s row %d col %d: %v != %v", srcTbls[i].Name(), j, k, b[j][k], a[j][k])
				}
			}
		}
	}
	// Indexes were rebuilt during the load.
	ix, ok := dst.Logs.HashIndexOn("projid", "value_name")
	if !ok || len(ix.Lookup(relation.Text("p"), relation.Text("acc"))) != 10 {
		t.Fatal("hash index not rebuilt from snapshot")
	}
	oix, ok := dst.Logs.OrderedIndexOn("tstamp")
	if !ok || len(oix.Range(relation.Int(2), relation.Int(4))) != 3 {
		t.Fatal("ordered index not rebuilt from snapshot")
	}
	blob, found := dst.GetBlobExact("p", "ckpt::epoch::2", 2)
	if !found || !bytes.Equal(blob, []byte{0, 1, 2, 0xFF}) {
		t.Fatalf("blob round-trip: %v %v", blob, found)
	}
}

func TestSnapshotAllValueTypes(t *testing.T) {
	// Exercise every codec tag through a table whose schema admits them.
	db := relation.NewDatabase()
	tbl, err := db.CreateTable("logs", relation.MustSchema(
		relation.Column{Name: "projid", Type: relation.TText},
		relation.Column{Name: "tstamp", Type: relation.TInt},
		relation.Column{Name: "filename", Type: relation.TFloat},
		relation.Column{Name: "ctx_id", Type: relation.TBool},
		relation.Column{Name: "value_name", Type: relation.TTime},
		relation.Column{Name: "value", Type: relation.TBlob},
		relation.Column{Name: "value_type", Type: relation.TInt},
	))
	if err != nil {
		t.Fatal(err)
	}
	now := time.Date(2026, 7, 28, 12, 0, 0, 123456789, time.UTC)
	row := relation.Row{
		relation.Text("téxt\x00bytes"), relation.Int(-42), relation.Float(3.5),
		relation.Bool(true), relation.Time(now), relation.Blob([]byte("blob")), relation.Null(),
	}
	if _, err := tbl.Insert(row); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	fake := &Tables{Logs: tbl, Loops: tbl, Ts2vid: tbl, ObjStore: tbl, Args: tbl}
	t.Cleanup(func() {})
	// Serializing the same table five times is fine for codec purposes; the
	// reader side needs distinct empty tables, so decode into clones.
	if err := WriteSnapshot(&buf, SnapshotMeta{Version: SnapshotVersion}, fake); err != nil {
		t.Fatal(err)
	}
	mk := func() *relation.Table {
		tt, err := relation.NewDatabase().CreateTable("logs", tbl.Schema())
		if err != nil {
			t.Fatal(err)
		}
		return tt
	}
	dst := &Tables{Logs: mk(), Loops: mk(), Ts2vid: mk(), ObjStore: mk(), Args: mk()}
	if _, err := ReadSnapshot(buf.Bytes(), dst); err != nil {
		t.Fatal(err)
	}
	got := dst.Logs.Rows()[0]
	for i := range row {
		if got[i].Type() != row[i].Type() {
			t.Fatalf("col %d type %v != %v", i, got[i].Type(), row[i].Type())
		}
		if !row[i].IsNull() && relation.Compare(got[i], row[i]) != 0 {
			t.Fatalf("col %d: %v != %v", i, got[i], row[i])
		}
	}
}

func TestSnapshotCorruptionDetected(t *testing.T) {
	src := snapTables(t)
	fillSnapTables(t, src)
	data := encodeSnapshot(t, SnapshotMeta{Version: SnapshotVersion, Seq: 1}, src)

	for name, mutate := range map[string]func([]byte) []byte{
		"bit flip":       func(d []byte) []byte { d[len(d)/2] ^= 1; return d },
		"truncated":      func(d []byte) []byte { return d[:len(d)-9] },
		"empty":          func(d []byte) []byte { return nil },
		"bad magic":      func(d []byte) []byte { d[0] = 'X'; return d },
		"trailing bytes": func(d []byte) []byte { return append(d, 0) },
	} {
		dst := snapTables(t)
		corrupted := mutate(append([]byte(nil), data...))
		if _, err := ReadSnapshot(corrupted, dst); err == nil {
			t.Fatalf("%s: corruption not detected", name)
		}
		// A rejected snapshot must leave the tables untouched so recovery
		// can fall back cleanly.
		for _, tbl := range dst.snapshotTables() {
			if tbl.Len() != 0 {
				t.Fatalf("%s: table %s dirtied by failed load", name, tbl.Name())
			}
		}
	}
}

func TestSnapshotRejectsFutureVersion(t *testing.T) {
	src := snapTables(t)
	data := encodeSnapshot(t, SnapshotMeta{Version: SnapshotVersion + 1, Seq: 1}, src)
	if _, err := ReadSnapshot(data, snapTables(t)); err == nil {
		t.Fatal("future snapshot version accepted")
	}
}

func TestSnapshotRejectsHugeRowCount(t *testing.T) {
	// A CRC-valid v2 snapshot claiming 2^61 rows must be rejected with an
	// error, not panic in make() via n*width overflow. (The byte surgery
	// below targets the v2 layout; v3's equivalent guards are covered in
	// snapshot_columnar_test.go.)
	src := snapTables(t)
	var buf bytes.Buffer
	if err := WriteSnapshotV2(&buf, SnapshotMeta{}, src); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Locate the logs table section: magic, uvarint metaLen+meta, uvarint
	// dict count (0 for empty tables), uvarint nameLen + "logs", then the
	// row count uvarint we overwrite.
	rd := data[len("FLORSNAP"):]
	metaLen, n := binaryUvarint(rd)
	rd = rd[n+int(metaLen):]
	_, n = binaryUvarint(rd) // dict count
	rd = rd[n:]
	nameLen, n := binaryUvarint(rd)
	countOff := len(data) - len(rd) + n + int(nameLen)
	mut := append([]byte(nil), data[:countOff]...)
	mut = append(mut, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x20) // uvarint 2^61
	mut = append(mut, data[countOff+1:len(data)-4]...)                      // old count was 0 (1 byte)
	sum := crc32.Checksum(mut[:len(mut)], castagnoli)
	var tr [4]byte
	binary.LittleEndian.PutUint32(tr[:], sum)
	mut = append(mut, tr[:]...)
	if _, err := ReadSnapshot(mut, snapTables(t)); err == nil {
		t.Fatal("huge row count accepted")
	}
}

func binaryUvarint(b []byte) (uint64, int) { return binary.Uvarint(b) }

func TestSnapshotRejectsWrongTypedCells(t *testing.T) {
	// A CRC-valid snapshot whose cells don't match the schema (mis-typed
	// writer) must fail recovery cleanly, not panic later at query time.
	db := relation.NewDatabase()
	badLogs, err := db.CreateTable("logs", relation.MustSchema(
		relation.Column{Name: "projid", Type: relation.TText, NotNull: true},
		relation.Column{Name: "tstamp", Type: relation.TText}, // INTEGER in the real schema
		relation.Column{Name: "filename", Type: relation.TText, NotNull: true},
		relation.Column{Name: "ctx_id", Type: relation.TInt, NotNull: true},
		relation.Column{Name: "value_name", Type: relation.TText, NotNull: true},
		relation.Column{Name: "value", Type: relation.TText},
		relation.Column{Name: "value_type", Type: relation.TInt, NotNull: true},
	))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := badLogs.Insert(relation.Row{
		relation.Text("p"), relation.Text("not-a-tstamp"), relation.Text("f"),
		relation.Int(1), relation.Text("acc"), relation.Text("1"), relation.Int(0),
	}); err != nil {
		t.Fatal(err)
	}
	good := snapTables(t)
	src := &Tables{Logs: badLogs, Loops: good.Loops, Ts2vid: good.Ts2vid, ObjStore: good.ObjStore, Args: good.Args}
	data := encodeSnapshot(t, SnapshotMeta{Version: SnapshotVersion, Seq: 1}, src)
	dst := snapTables(t)
	if _, err := ReadSnapshot(data, dst); err == nil {
		t.Fatal("wrong-typed cell accepted")
	}
	for _, tbl := range dst.snapshotTables() {
		if tbl.Len() != 0 {
			t.Fatalf("table %s dirtied by rejected load", tbl.Name())
		}
	}
}
