package record

import (
	"bytes"
	"testing"
	"time"

	"flordb/internal/relation"
)

// FuzzRecordDecode feeds arbitrary bytes through the WAL line decoder:
// Decode must never panic, and any line it accepts must re-encode and decode
// to the same record (the round-trip the WAL depends on).
func FuzzRecordDecode(f *testing.F) {
	seeds := []any{
		&LogRecord{Kind: KindLog, ProjID: "p", Tstamp: 3, Filename: "train.flow", CtxID: 7, ValueName: "acc", Value: "0.93", ValueType: VTFloat, Wall: time.Unix(1700000000, 0).UTC()},
		&LoopRecord{Kind: KindLoop, ProjID: "p", Tstamp: 1, Filename: "train.flow", CtxID: 2, ParentCtxID: 1, LoopName: "epoch", LoopIter: 4, IterValue: "4"},
		&ArgRecord{Kind: KindArg, ProjID: "p", Tstamp: 1, Filename: "train.flow", Name: "lr", Value: "0.01"},
		&CkptRecord{Kind: KindCkpt, ProjID: "p", Tstamp: 2, Filename: "train.flow", CtxID: 9, Name: "ckpt::epoch::4", BlobKey: "deadbeef"},
		&CommitRecord{Kind: KindCommit, ProjID: "p", Tstamp: 5, VID: "v123"},
	}
	for _, rec := range seeds {
		line, err := Encode(rec)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(line)
	}
	f.Add([]byte(`{"kind":"log"`))   // torn
	f.Add([]byte(`{"kind":"nope"}`)) // unknown kind
	f.Add([]byte(`{"kind":"log","tstamp":"NaN"}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		rec, err := Decode(data)
		if err != nil {
			return
		}
		line, err := Encode(rec)
		if err != nil {
			t.Fatalf("decoded record failed to re-encode: %v", err)
		}
		rec2, err := Decode(line)
		if err != nil {
			t.Fatalf("re-encoded record failed to decode: %v", err)
		}
		b1, _ := Encode(rec)
		b2, _ := Encode(rec2)
		if !bytes.Equal(b1, b2) {
			t.Fatalf("round trip diverged:\n%s\n%s", b1, b2)
		}
	})
}

// FuzzSnapshotRead feeds arbitrary bytes through the snapshot reader: it
// must never panic and must leave the destination tables untouched on error.
func FuzzSnapshotRead(f *testing.F) {
	tables, err := CreateTables(relation.NewDatabase())
	if err != nil {
		f.Fatal(err)
	}
	if err := tables.Apply(&LogRecord{Kind: KindLog, ProjID: "p", Tstamp: 1, Filename: "f", ValueName: "acc", Value: "1", ValueType: VTInt}); err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, SnapshotMeta{Version: SnapshotVersion, Seq: 1, MaxTstamp: 1}, tables); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("FLORSNAP"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		dst, err := CreateTables(relation.NewDatabase())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ReadSnapshot(data, dst); err != nil {
			for _, tbl := range dst.snapshotTables() {
				if tbl.Len() != 0 {
					t.Fatalf("failed load dirtied table %s", tbl.Name())
				}
			}
		}
	})
}
