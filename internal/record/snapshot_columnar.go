// Columnar (v3) snapshot codec. The FLORSNAP container — magic, JSON meta,
// CRC-32C trailer — is shared with v2 (snapshot.go); only the table sections
// differ. Each table is split into pages of relation.ZonePageRows versions,
// and a page directory ahead of the page blobs carries per-page zone maps
// (born-epoch bounds, per-column min/max and NULL counts) so the reader can
// seed the in-memory zone cache without a rebuild pass, and so future partial
// readers can seek to individual pages.
//
// v3 layout after the shared magic + meta prefix:
//
//	per base table, in Tables order (logs, loops, ts2vid, obj_store, args):
//	    uvarint name length, name
//	    uvarint persisted version count
//	    uvarint page count (must equal ceil(count / ZonePageRows))
//	    page directory, per page:
//	        uvarint rows in page (ZonePageRows for all but the last)
//	        uvarint page blob length in bytes
//	        zigzag varint min born, max born, max dead (max dead is 0
//	            unless every version in the page is tombstoned)
//	        per schema column: uvarint NULL count, plain-coded min,
//	            plain-coded max (both NULL if the page has no non-NULL cell)
//	    page blobs, concatenated in page order
//	4-byte LE CRC-32C trailer (shared with v2)
//
// Page blob framing: one compression tag (0 = raw, 1 = DEFLATE), uvarint
// decoded payload length, payload bytes. DEFLATE is used only when it
// actually shrinks the page. The decoded payload is:
//
//	born epochs: zigzag varint × rows
//	dead epochs: zigzag varint × rows (0 = live)
//	per schema column:
//	    NULL bitmap, ceil(rows/8) bytes, bit set = NULL
//	    one encoding tag, then the non-NULL cells in row order:
//	    'i' zigzag varint            'f' 8-byte LE float bits
//	    's' page-local dictionary: uvarint entry count, entries as
//	        uvarint len + bytes, then one uvarint index per cell
//	    'B' value bitmap over the non-NULL cells, bit set = true
//	    't' zigzag varint UnixNano   'x' uvarint len + blob bytes
//	    'v' one plain-coded value per cell (mixed-type fallback)
//
// Plain value coding (directory min/max and 'v' cells): one tag byte —
// 'N' NULL, 'i' zigzag varint, 'S' uvarint len + text bytes, 'f' 8-byte LE
// float bits, 'b'/'B' bool, 't' zigzag varint UnixNano, 'x' uvarint len +
// blob bytes. Unlike v2 there is no global string dictionary: strings repeat
// page-locally, and page-local dictionaries keep pages independently
// decodable.
//
// The reader recomputes every page's zone from the decoded cells and rejects
// the snapshot if the directory disagrees — the zone cache feeds query-time
// page pruning, so a zone that lies must never be installed. Corruption is
// already caught by the CRC; this guards against writer bugs and keeps the
// prune-is-conservative proof obligation (DESIGN §13) local to one codec.
package record

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"time"

	"flordb/internal/relation"
)

func writeSnapshotV3(w io.Writer, meta SnapshotMeta, t *Tables, hook func(table string) error) error {
	h := crc32.New(castagnoli)
	mw := io.MultiWriter(w, h)
	if _, err := mw.Write([]byte(snapshotMagic)); err != nil {
		return fmt.Errorf("record: write snapshot: %w", err)
	}
	metaJSON, err := json.Marshal(meta)
	if err != nil {
		return fmt.Errorf("record: snapshot meta: %w", err)
	}
	buf := binary.AppendUvarint(nil, uint64(len(metaJSON)))
	buf = append(buf, metaJSON...)
	if _, err := mw.Write(buf); err != nil {
		return fmt.Errorf("record: write snapshot: %w", err)
	}
	for _, tbl := range t.snapshotTables() {
		sec, err := appendColumnarTable(buf[:0], tbl, meta.MinEpoch)
		if err != nil {
			return err
		}
		if _, err := mw.Write(sec); err != nil {
			return fmt.Errorf("record: write snapshot: %w", err)
		}
		buf = sec // recycle the section buffer across tables
		if hook != nil {
			if err := hook(tbl.Name()); err != nil {
				return err
			}
		}
	}
	var trailer [4]byte
	binary.LittleEndian.PutUint32(trailer[:], h.Sum32())
	if _, err := w.Write(trailer[:]); err != nil {
		return fmt.Errorf("record: write snapshot: %w", err)
	}
	return nil
}

// appendColumnarTable appends one table section (header, page directory,
// page blobs) to dst, persisting the same version set v2 would
// (snapPersists: payload present and visible above the retention floor).
func appendColumnarTable(dst []byte, tbl *relation.Table, minEpoch int64) ([]byte, error) {
	rows, born, dead := tbl.Versions()
	sel := make([]int, 0, len(rows))
	for i := range rows {
		if snapPersists(rows[i], dead[i], minEpoch) {
			sel = append(sel, i)
		}
	}
	name := tbl.Name()
	schema := tbl.Schema()
	nPages := (len(sel) + relation.ZonePageRows - 1) / relation.ZonePageRows
	blobs := make([][]byte, nPages)
	zones := make([]relation.PageZone, nPages)
	var cb bytes.Buffer
	fw, err := flate.NewWriter(&cb, flate.BestSpeed)
	if err != nil {
		return nil, fmt.Errorf("record: snapshot compressor: %w", err)
	}
	for p := range blobs {
		lo := p * relation.ZonePageRows
		hi := min(lo+relation.ZonePageRows, len(sel))
		raw, zone, err := encodeColumnarPage(schema, rows, born, dead, sel[lo:hi])
		if err != nil {
			return nil, fmt.Errorf("record: snapshot %s page %d: %w", name, p, err)
		}
		blobs[p], zones[p] = framePage(raw, fw, &cb), zone
	}
	dst = binary.AppendUvarint(dst, uint64(len(name)))
	dst = append(dst, name...)
	dst = binary.AppendUvarint(dst, uint64(len(sel)))
	dst = binary.AppendUvarint(dst, uint64(nPages))
	for p := range blobs {
		dst = appendPageDir(dst, &zones[p], len(blobs[p]))
	}
	for _, b := range blobs {
		dst = append(dst, b...)
	}
	return dst, nil
}

// encodeColumnarPage encodes the selected versions as one raw (uncompressed)
// page payload and computes its zone map from the same cells in the same
// order the reader will revisit them.
func encodeColumnarPage(schema *relation.Schema, rows []relation.Row, born, dead []int64, sel []int) ([]byte, relation.PageZone, error) {
	width := schema.Len()
	n := len(sel)
	acc := newPageZoneAcc(width)
	raw := make([]byte, 0, n*width*4)
	for _, i := range sel {
		acc.addVersion(born[i], dead[i])
	}
	for _, i := range sel {
		raw = binary.AppendVarint(raw, born[i])
	}
	for _, i := range sel {
		raw = binary.AppendVarint(raw, dead[i])
	}
	bitmap := make([]byte, (n+7)/8)
	vals := make([]*relation.Value, 0, n)
	for c := 0; c < width; c++ {
		for i := range bitmap {
			bitmap[i] = 0
		}
		vals = vals[:0]
		colType := schema.Col(c).Type
		uniform := true
		for j, ri := range sel {
			v := &rows[ri][c]
			acc.addCell(c, v)
			if v.IsNull() {
				bitmap[j>>3] |= 1 << (j & 7)
				continue
			}
			if v.Type() != colType {
				uniform = false
			}
			vals = append(vals, v)
		}
		raw = append(raw, bitmap...)
		// Pick the column encoding from the schema type when every non-NULL
		// cell honors it (always true for SQL-written data); fall back to
		// per-cell plain coding otherwise rather than failing the snapshot.
		tag := byte('v')
		if uniform {
			switch colType {
			case relation.TInt:
				tag = 'i'
			case relation.TText:
				tag = 's'
			case relation.TFloat:
				tag = 'f'
			case relation.TBool:
				tag = 'B'
			case relation.TTime:
				tag = 't'
			case relation.TBlob:
				tag = 'x'
			}
		}
		raw = append(raw, tag)
		switch tag {
		case 'i':
			for _, v := range vals {
				raw = binary.AppendVarint(raw, v.AsInt())
			}
		case 's':
			dict := &snapDict{ids: make(map[string]uint64, 64)}
			idxs := make([]uint64, len(vals))
			for k, v := range vals {
				idxs[k] = dict.id(v.AsText())
			}
			raw = binary.AppendUvarint(raw, uint64(len(dict.entries)))
			for _, e := range dict.entries {
				raw = binary.AppendUvarint(raw, uint64(len(e)))
				raw = append(raw, e...)
			}
			for _, id := range idxs {
				raw = binary.AppendUvarint(raw, id)
			}
		case 'f':
			var b [8]byte
			for _, v := range vals {
				binary.LittleEndian.PutUint64(b[:], math.Float64bits(v.AsFloat()))
				raw = append(raw, b[:]...)
			}
		case 'B':
			vb := make([]byte, (len(vals)+7)/8)
			for k, v := range vals {
				if v.AsBool() {
					vb[k>>3] |= 1 << (k & 7)
				}
			}
			raw = append(raw, vb...)
		case 't':
			for _, v := range vals {
				raw = binary.AppendVarint(raw, v.AsTime().UnixNano())
			}
		case 'x':
			for _, v := range vals {
				b := v.AsBlob()
				raw = binary.AppendUvarint(raw, uint64(len(b)))
				raw = append(raw, b...)
			}
		default:
			for _, v := range vals {
				raw = appendPlainValue(raw, v)
			}
		}
	}
	return raw, acc.zone(), nil
}

// framePage wraps a raw page payload in the compression frame, keeping the
// DEFLATE form only when it is strictly smaller.
func framePage(raw []byte, fw *flate.Writer, cb *bytes.Buffer) []byte {
	cb.Reset()
	fw.Reset(cb)
	fw.Write(raw) //nolint:errcheck // bytes.Buffer writes cannot fail
	fw.Close()    //nolint:errcheck
	frame := make([]byte, 0, len(raw)+binary.MaxVarintLen64+1)
	if cb.Len() < len(raw) {
		frame = append(frame, 1)
		frame = binary.AppendUvarint(frame, uint64(len(raw)))
		return append(frame, cb.Bytes()...)
	}
	frame = append(frame, 0)
	frame = binary.AppendUvarint(frame, uint64(len(raw)))
	return append(frame, raw...)
}

// appendPageDir appends one page's directory entry.
func appendPageDir(dst []byte, z *relation.PageZone, blobLen int) []byte {
	dst = binary.AppendUvarint(dst, uint64(z.Rows))
	dst = binary.AppendUvarint(dst, uint64(blobLen))
	dst = binary.AppendVarint(dst, z.MinBorn)
	dst = binary.AppendVarint(dst, z.MaxBorn)
	dst = binary.AppendVarint(dst, z.MaxDead)
	for c := range z.Cols {
		cz := &z.Cols[c]
		dst = binary.AppendUvarint(dst, uint64(cz.NullCount))
		dst = appendPlainValue(dst, &cz.Min)
		dst = appendPlainValue(dst, &cz.Max)
	}
	return dst
}

// pageZoneAcc accumulates a page's zone map. Writer and reader both run it
// over the page's cells in row order, so the persisted and recomputed zones
// can be compared field-for-field.
type pageZoneAcc struct {
	z       relation.PageZone
	allDead bool
	maxDead int64
}

func newPageZoneAcc(width int) *pageZoneAcc {
	return &pageZoneAcc{
		z:       relation.PageZone{Cols: make([]relation.ColZone, width)},
		allDead: true,
	}
}

func (a *pageZoneAcc) addVersion(born, dead int64) {
	if a.z.Rows == 0 {
		a.z.MinBorn, a.z.MaxBorn = born, born
	} else if born < a.z.MinBorn {
		a.z.MinBorn = born
	} else if born > a.z.MaxBorn {
		a.z.MaxBorn = born
	}
	if dead == 0 {
		a.allDead = false
	} else if dead > a.maxDead {
		a.maxDead = dead
	}
	a.z.Rows++
}

func (a *pageZoneAcc) addCell(c int, v *relation.Value) {
	cz := &a.z.Cols[c]
	if v.IsNull() {
		cz.NullCount++
		return
	}
	if cz.Min.IsNull() {
		cz.Min, cz.Max = *v, *v
		return
	}
	if relation.ComparePtr(v, &cz.Min) < 0 {
		cz.Min = *v
	} else if relation.ComparePtr(v, &cz.Max) > 0 {
		cz.Max = *v
	}
}

func (a *pageZoneAcc) zone() relation.PageZone {
	z := a.z
	if a.allDead && z.Rows > 0 {
		z.MaxDead = a.maxDead
	}
	return z
}

// zoneEqual compares a directory zone against a recomputed one. Min/max
// equality under ComparePtr is enough: pruning only ever uses the total
// order, so two Compare-equal bounds prune identically.
func zoneEqual(a, b *relation.PageZone) bool {
	if a.MinBorn != b.MinBorn || a.MaxBorn != b.MaxBorn || a.MaxDead != b.MaxDead ||
		a.Rows != b.Rows || len(a.Cols) != len(b.Cols) {
		return false
	}
	for c := range a.Cols {
		x, y := &a.Cols[c], &b.Cols[c]
		if x.NullCount != y.NullCount ||
			x.Min.IsNull() != y.Min.IsNull() || x.Max.IsNull() != y.Max.IsNull() {
			return false
		}
		if !x.Min.IsNull() &&
			(relation.ComparePtr(&x.Min, &y.Min) != 0 || relation.ComparePtr(&x.Max, &y.Max) != 0) {
			return false
		}
	}
	return true
}

func appendPlainValue(dst []byte, v *relation.Value) []byte {
	switch v.Type() {
	case relation.TInt:
		dst = append(dst, 'i')
		return binary.AppendVarint(dst, v.AsInt())
	case relation.TText:
		s := v.AsText()
		dst = append(dst, 'S')
		dst = binary.AppendUvarint(dst, uint64(len(s)))
		return append(dst, s...)
	case relation.TFloat:
		dst = append(dst, 'f')
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(v.AsFloat()))
		return append(dst, b[:]...)
	case relation.TBool:
		if v.AsBool() {
			return append(dst, 'B')
		}
		return append(dst, 'b')
	case relation.TTime:
		dst = append(dst, 't')
		return binary.AppendVarint(dst, v.AsTime().UnixNano())
	case relation.TBlob:
		b := v.AsBlob()
		dst = append(dst, 'x')
		dst = binary.AppendUvarint(dst, uint64(len(b)))
		return append(dst, b...)
	default: // TNull
		return append(dst, 'N')
	}
}

// plainValueInto decodes one plain-coded value (no dictionary indirection).
func (rd *snapReader) plainValueInto(dst *relation.Value) {
	if rd.err != nil {
		return
	}
	if len(rd.buf) == 0 {
		rd.fail("snapshot: truncated value")
		return
	}
	tag := rd.buf[0]
	rd.buf = rd.buf[1:]
	switch tag {
	case 'N':
	case 'i':
		*dst = relation.Int(rd.varint())
	case 'S':
		*dst = relation.Text(string(rd.bytes(int(rd.uvarint()))))
	case 'f':
		b := rd.bytes(8)
		if rd.err != nil {
			return
		}
		*dst = relation.Float(math.Float64frombits(binary.LittleEndian.Uint64(b)))
	case 'b':
		*dst = relation.Bool(false)
	case 'B':
		*dst = relation.Bool(true)
	case 't':
		*dst = relation.Time(time.Unix(0, rd.varint()).UTC())
	case 'x':
		b := rd.bytes(int(rd.uvarint()))
		if rd.err != nil {
			return
		}
		*dst = relation.Blob(append([]byte(nil), b...))
	default:
		rd.fail(fmt.Sprintf("snapshot: unknown value tag %q", tag))
	}
}

// pageDirEntry is one decoded page-directory row.
type pageDirEntry struct {
	rows    int
	blobLen int
	zone    relation.PageZone
}

// readSnapshotV3 decodes the columnar table sections, bulk-loads the rows,
// and installs the verified zone maps of all complete pages. Like the v2
// reader it is all-or-nothing: every byte is validated before the first
// LoadVersions, so a corrupt snapshot is safe to fall back from.
func readSnapshotV3(rd *snapReader, t *Tables) error {
	tbls := t.snapshotTables()
	batches := make([][]relation.Row, len(tbls))
	borns := make([][]int64, len(tbls))
	deads := make([][]int64, len(tbls))
	zoneSets := make([][]relation.PageZone, len(tbls))
	for ti, tbl := range tbls {
		name := string(rd.bytes(int(rd.uvarint())))
		if rd.err != nil {
			return rd.err
		}
		if name != tbl.Name() {
			return fmt.Errorf("record: snapshot table %q, want %q", name, tbl.Name())
		}
		schema := tbl.Schema()
		width := schema.Len()
		total := int(rd.uvarint())
		nPages := int(rd.uvarint())
		// Directory entries cost at least one byte each, so nPages is
		// bounded by the remaining input; this also bounds total (and with
		// it every allocation below) by ~ZonePageRows × the input size.
		if rd.err != nil || total < 0 || width <= 0 ||
			nPages != (total+relation.ZonePageRows-1)/relation.ZonePageRows ||
			nPages > len(rd.buf) {
			return errors.New("record: snapshot page count out of range")
		}
		dir := make([]pageDirEntry, nPages)
		for p := range dir {
			pr := int(rd.uvarint())
			bl := int(rd.uvarint())
			if rd.err != nil {
				return rd.err
			}
			want := relation.ZonePageRows
			if p == nPages-1 {
				want = total - p*relation.ZonePageRows
			}
			if pr != want {
				return fmt.Errorf("record: snapshot %s page %d: %d rows, want %d", name, p, pr, want)
			}
			if bl < 0 || bl > len(rd.buf) {
				return errors.New("record: snapshot page length out of range")
			}
			z := relation.PageZone{Rows: pr, Cols: make([]relation.ColZone, width)}
			z.MinBorn = rd.varint()
			z.MaxBorn = rd.varint()
			z.MaxDead = rd.varint()
			for c := 0; c < width; c++ {
				cz := &z.Cols[c]
				nc := int(rd.uvarint())
				if rd.err == nil && (nc < 0 || nc > pr) {
					return fmt.Errorf("record: snapshot %s page %d: NULL count out of range", name, p)
				}
				cz.NullCount = nc
				rd.plainValueInto(&cz.Min)
				rd.plainValueInto(&cz.Max)
			}
			if rd.err != nil {
				return rd.err
			}
			dir[p] = pageDirEntry{rows: pr, blobLen: bl, zone: z}
		}
		rows := make([]relation.Row, 0, min(total, 1<<16))
		born := make([]int64, 0, min(total, 1<<16))
		dead := make([]int64, 0, min(total, 1<<16))
		for p := range dir {
			blob := rd.bytes(dir[p].blobLen)
			if rd.err != nil {
				return rd.err
			}
			var err error
			rows, born, dead, err = decodeColumnarPage(blob, schema, &dir[p], name, p, rows, born, dead)
			if err != nil {
				return err
			}
		}
		batches[ti], borns[ti], deads[ti] = rows, born, dead
		// Only complete pages seed the zone cache: the in-memory cache is
		// defined over exact ZonePageRows-aligned pages, and a trailing
		// partial page would misalign everything appended after recovery.
		complete := total / relation.ZonePageRows
		zones := make([]relation.PageZone, complete)
		for p := 0; p < complete; p++ {
			zones[p] = dir[p].zone
		}
		zoneSets[ti] = zones
	}
	if len(rd.buf) != 0 {
		return errors.New("record: trailing bytes after snapshot tables")
	}
	for i, tbl := range tbls {
		if err := tbl.LoadVersions(batches[i], borns[i], deads[i]); err != nil {
			return err
		}
		if err := tbl.InstallZones(zoneSets[i]); err != nil {
			return err
		}
	}
	return nil
}

// decodeColumnarPage decodes one page blob, validates every cell against the
// schema, verifies the directory zone against a recomputed one, and appends
// the page's versions to the accumulator slices.
func decodeColumnarPage(stored []byte, schema *relation.Schema, de *pageDirEntry, table string, page int, rows []relation.Row, born, dead []int64) ([]relation.Row, []int64, []int64, error) {
	fail := func(err error) ([]relation.Row, []int64, []int64, error) {
		return rows, born, dead, fmt.Errorf("record: snapshot %s page %d: %w", table, page, err)
	}
	payload, err := unframePage(stored)
	if err != nil {
		return fail(err)
	}
	n := de.rows // validated against the table header by the caller
	width := schema.Len()
	rd := &snapReader{buf: payload}
	pb := make([]int64, n)
	pd := make([]int64, n)
	for j := range pb {
		pb[j] = rd.varint()
	}
	for j := range pd {
		pd[j] = rd.varint()
	}
	if rd.err != nil {
		return fail(rd.err)
	}
	acc := newPageZoneAcc(width)
	for j := range pb {
		if pb[j] < 0 || pd[j] < 0 || (pd[j] != 0 && pd[j] < pb[j]) {
			return fail(fmt.Errorf("row %d: bad epochs born=%d dead=%d", j, pb[j], pd[j]))
		}
		acc.addVersion(pb[j], pd[j])
	}
	cells := make([]relation.Value, n*width)
	bitmapLen := (n + 7) / 8
	for c := 0; c < width; c++ {
		bm := rd.bytes(bitmapLen)
		tagb := rd.bytes(1)
		if rd.err != nil {
			return fail(rd.err)
		}
		isNull := func(j int) bool { return bm[j>>3]&(1<<(j&7)) != 0 }
		switch tagb[0] {
		case 'i':
			for j := 0; j < n; j++ {
				if !isNull(j) {
					cells[j*width+c] = relation.Int(rd.varint())
				}
			}
		case 's':
			nd := int(rd.uvarint())
			if rd.err != nil || nd < 0 || nd > len(rd.buf) {
				return fail(errors.New("page dictionary out of range"))
			}
			pdict := make([]string, nd)
			for k := range pdict {
				pdict[k] = string(rd.bytes(int(rd.uvarint())))
			}
			for j := 0; j < n && rd.err == nil; j++ {
				if isNull(j) {
					continue
				}
				idx := rd.uvarint()
				if rd.err != nil {
					break
				}
				if idx >= uint64(nd) {
					return fail(errors.New("page dictionary index out of range"))
				}
				cells[j*width+c] = relation.Text(pdict[idx])
			}
		case 'f':
			for j := 0; j < n; j++ {
				if isNull(j) {
					continue
				}
				b := rd.bytes(8)
				if rd.err != nil {
					break
				}
				cells[j*width+c] = relation.Float(math.Float64frombits(binary.LittleEndian.Uint64(b)))
			}
		case 'B':
			nonNull := 0
			for j := 0; j < n; j++ {
				if !isNull(j) {
					nonNull++
				}
			}
			vb := rd.bytes((nonNull + 7) / 8)
			if rd.err != nil {
				return fail(rd.err)
			}
			k := 0
			for j := 0; j < n; j++ {
				if isNull(j) {
					continue
				}
				cells[j*width+c] = relation.Bool(vb[k>>3]&(1<<(k&7)) != 0)
				k++
			}
		case 't':
			for j := 0; j < n; j++ {
				if !isNull(j) {
					cells[j*width+c] = relation.Time(time.Unix(0, rd.varint()).UTC())
				}
			}
		case 'x':
			for j := 0; j < n && rd.err == nil; j++ {
				if isNull(j) {
					continue
				}
				b := rd.bytes(int(rd.uvarint()))
				if rd.err != nil {
					break
				}
				cells[j*width+c] = relation.Blob(append([]byte(nil), b...))
			}
		case 'v':
			for j := 0; j < n; j++ {
				if !isNull(j) {
					rd.plainValueInto(&cells[j*width+c])
				}
			}
		default:
			return fail(fmt.Errorf("unknown column encoding %q", tagb[0]))
		}
		if rd.err != nil {
			return fail(rd.err)
		}
		for j := 0; j < n; j++ {
			v := &cells[j*width+c]
			// A NULL-bitmap bit leaves the cell zero (NULL), so NOT NULL
			// violations and mis-typed cells both funnel through here.
			if err := checkSnapCell(schema, c, v, rd, table, j); err != nil {
				return fail(err)
			}
			acc.addCell(c, v)
		}
	}
	if len(rd.buf) != 0 {
		return fail(errors.New("trailing bytes in page"))
	}
	recomputed := acc.zone()
	if !zoneEqual(&de.zone, &recomputed) {
		return fail(errors.New("zone map disagrees with page contents"))
	}
	for j := 0; j < n; j++ {
		rows = append(rows, relation.Row(cells[j*width:(j+1)*width:(j+1)*width]))
		born = append(born, pb[j])
		dead = append(dead, pd[j])
	}
	return rows, born, dead, nil
}

// unframePage strips the compression frame off a stored page blob.
func unframePage(stored []byte) ([]byte, error) {
	if len(stored) == 0 {
		return nil, errors.New("empty page blob")
	}
	comp := stored[0]
	rawLen, nn := binary.Uvarint(stored[1:])
	if nn <= 0 {
		return nil, errors.New("bad page payload length")
	}
	body := stored[1+nn:]
	switch comp {
	case 0:
		if rawLen != uint64(len(body)) {
			return nil, errors.New("page payload length mismatch")
		}
		return body, nil
	case 1:
		// DEFLATE expands at most ~1032:1, so a claimed payload length far
		// beyond that bound is corrupt; rejecting it here keeps a tiny
		// crafted blob from demanding an enormous allocation.
		if rawLen > uint64(len(body))*1040+4096 {
			return nil, errors.New("page payload length out of range")
		}
		fr := flate.NewReader(bytes.NewReader(body))
		payload := make([]byte, int(rawLen))
		if _, err := io.ReadFull(fr, payload); err != nil {
			return nil, fmt.Errorf("page inflate: %w", err)
		}
		var one [1]byte
		if k, _ := fr.Read(one[:]); k != 0 {
			return nil, errors.New("page inflate: trailing data")
		}
		return payload, nil
	default:
		return nil, fmt.Errorf("unknown page compression %d", comp)
	}
}
