package record

import (
	"fmt"

	"flordb/internal/relation"
)

// The base-table schemas of Figure 1. Virtual tables (git, build_deps) are
// registered by their owning subsystems (vcs, build).

// LogsSchema is the schema of the `logs` table.
func LogsSchema() *relation.Schema {
	return relation.MustSchema(
		relation.Column{Name: "projid", Type: relation.TText, NotNull: true},
		relation.Column{Name: "tstamp", Type: relation.TInt, NotNull: true},
		relation.Column{Name: "filename", Type: relation.TText, NotNull: true},
		relation.Column{Name: "ctx_id", Type: relation.TInt, NotNull: true},
		relation.Column{Name: "value_name", Type: relation.TText, NotNull: true},
		relation.Column{Name: "value", Type: relation.TText},
		relation.Column{Name: "value_type", Type: relation.TInt, NotNull: true},
	)
}

// LoopsSchema is the schema of the `loops` table.
func LoopsSchema() *relation.Schema {
	return relation.MustSchema(
		relation.Column{Name: "projid", Type: relation.TText, NotNull: true},
		relation.Column{Name: "tstamp", Type: relation.TInt, NotNull: true},
		relation.Column{Name: "filename", Type: relation.TText, NotNull: true},
		relation.Column{Name: "ctx_id", Type: relation.TInt, NotNull: true},
		relation.Column{Name: "parent_ctx_id", Type: relation.TInt, NotNull: true},
		relation.Column{Name: "loop_name", Type: relation.TText, NotNull: true},
		relation.Column{Name: "loop_iteration", Type: relation.TInt, NotNull: true},
		relation.Column{Name: "iteration_value", Type: relation.TText},
	)
}

// Ts2vidSchema is the schema of the `ts2vid` table mapping logical timestamp
// ranges to version ids.
func Ts2vidSchema() *relation.Schema {
	return relation.MustSchema(
		relation.Column{Name: "projid", Type: relation.TText, NotNull: true},
		relation.Column{Name: "ts_start", Type: relation.TInt, NotNull: true},
		relation.Column{Name: "ts_end", Type: relation.TInt, NotNull: true},
		relation.Column{Name: "vid", Type: relation.TText, NotNull: true},
		relation.Column{Name: "root_target", Type: relation.TText},
	)
}

// ObjStoreSchema is the schema of the `obj_store` table holding checkpoint
// and large-value blobs.
func ObjStoreSchema() *relation.Schema {
	return relation.MustSchema(
		relation.Column{Name: "projid", Type: relation.TText, NotNull: true},
		relation.Column{Name: "tstamp", Type: relation.TInt, NotNull: true},
		relation.Column{Name: "filename", Type: relation.TText, NotNull: true},
		relation.Column{Name: "ctx_id", Type: relation.TInt, NotNull: true},
		relation.Column{Name: "value_name", Type: relation.TText, NotNull: true},
		relation.Column{Name: "contents", Type: relation.TBlob},
	)
}

// ArgsSchema is the schema of the `args` table recording flor.arg
// resolutions. The paper folds args into the log stream; we give them their
// own table so replay can query them directly.
func ArgsSchema() *relation.Schema {
	return relation.MustSchema(
		relation.Column{Name: "projid", Type: relation.TText, NotNull: true},
		relation.Column{Name: "tstamp", Type: relation.TInt, NotNull: true},
		relation.Column{Name: "filename", Type: relation.TText, NotNull: true},
		relation.Column{Name: "name", Type: relation.TText, NotNull: true},
		relation.Column{Name: "value", Type: relation.TText},
	)
}

// GitSchema is the schema of the virtual `git` table (one row per file per
// version).
func GitSchema() *relation.Schema {
	return relation.MustSchema(
		relation.Column{Name: "vid", Type: relation.TText, NotNull: true},
		relation.Column{Name: "filename", Type: relation.TText, NotNull: true},
		relation.Column{Name: "parent_vid", Type: relation.TText},
		relation.Column{Name: "contents", Type: relation.TText},
	)
}

// BuildDepsSchema is the schema of the virtual `build_deps` table.
func BuildDepsSchema() *relation.Schema {
	return relation.MustSchema(
		relation.Column{Name: "vid", Type: relation.TText},
		relation.Column{Name: "target", Type: relation.TText, NotNull: true},
		relation.Column{Name: "deps", Type: relation.TText},
		relation.Column{Name: "cmds", Type: relation.TText},
		relation.Column{Name: "cached", Type: relation.TBool},
	)
}

// Tables bundles the base tables of a FlorDB database instance — the write
// surface. Read paths that must not observe concurrent writers use a
// TablesView pinned to a database snapshot instead (Tables.At).
type Tables struct {
	Logs     *relation.Table
	Loops    *relation.Table
	Ts2vid   *relation.Table
	ObjStore *relation.Table
	Args     *relation.Table
}

// TablesView is the read surface over the Figure-1 base tables: either the
// live tables (latest visibility) or their pinned snapshots (one-epoch
// visibility). The pivot engine and blob accessors operate on it, so the
// same code serves the recording session and concurrent snapshot readers.
type TablesView struct {
	Logs     relation.TableReader
	Loops    relation.TableReader
	Ts2vid   relation.TableReader
	ObjStore relation.TableReader
	Args     relation.TableReader
}

// View returns the latest-visibility read surface over the live tables.
func (t *Tables) View() *TablesView {
	return &TablesView{
		Logs: t.Logs, Loops: t.Loops, Ts2vid: t.Ts2vid,
		ObjStore: t.ObjStore, Args: t.Args,
	}
}

// At returns the read surface pinned to a database snapshot. It fails if the
// snapshot does not carry the Figure-1 base tables.
func (t *Tables) At(snap *relation.Snapshot) (*TablesView, error) {
	v := &TablesView{}
	for _, bind := range []struct {
		name string
		dst  *relation.TableReader
	}{
		{"logs", &v.Logs}, {"loops", &v.Loops}, {"ts2vid", &v.Ts2vid},
		{"obj_store", &v.ObjStore}, {"args", &v.Args},
	} {
		r, ok := snap.Reader(bind.name)
		if !ok {
			return nil, fmt.Errorf("record: snapshot is missing base table %q", bind.name)
		}
		*bind.dst = r
	}
	return v, nil
}

// CreateTables creates all base tables in the database and installs the
// secondary indexes the access paths in the paper need: logs by
// (projid, value_name) for dataframe pivots, logs/loops by tstamp for
// version slicing, loops/ts2vid/args by project for the per-project hot
// queries the SQL planner turns into index lookups.
func CreateTables(db *relation.Database) (*Tables, error) {
	logs, err := db.CreateTable("logs", LogsSchema())
	if err != nil {
		return nil, err
	}
	loops, err := db.CreateTable("loops", LoopsSchema())
	if err != nil {
		return nil, err
	}
	ts2vid, err := db.CreateTable("ts2vid", Ts2vidSchema())
	if err != nil {
		return nil, err
	}
	objStore, err := db.CreateTable("obj_store", ObjStoreSchema())
	if err != nil {
		return nil, err
	}
	args, err := db.CreateTable("args", ArgsSchema())
	if err != nil {
		return nil, err
	}
	if _, err := logs.CreateHashIndex("projid", "value_name"); err != nil {
		return nil, err
	}
	if _, err := logs.CreateOrderedIndex("tstamp"); err != nil {
		return nil, err
	}
	if _, err := loops.CreateOrderedIndex("tstamp"); err != nil {
		return nil, err
	}
	if _, err := objStore.CreateHashIndex("projid", "value_name"); err != nil {
		return nil, err
	}
	if _, err := loops.CreateHashIndex("projid"); err != nil {
		return nil, err
	}
	if _, err := ts2vid.CreateHashIndex("projid"); err != nil {
		return nil, err
	}
	if _, err := ts2vid.CreateOrderedIndex("ts_start"); err != nil {
		return nil, err
	}
	if _, err := args.CreateHashIndex("projid", "name"); err != nil {
		return nil, err
	}
	return &Tables{Logs: logs, Loops: loops, Ts2vid: ts2vid, ObjStore: objStore, Args: args}, nil
}

// Apply shreds a decoded record into the base tables. Commit records carry
// no table row of their own (ts2vid rows are written by the session, which
// knows the version id span); they are accepted and ignored here so a WAL
// replay can stream every record through one code path.
func (t *Tables) Apply(rec any) error {
	switch r := rec.(type) {
	case *LogRecord:
		_, err := t.Logs.Insert(relation.Row{
			relation.Text(r.ProjID), relation.Int(r.Tstamp), relation.Text(r.Filename),
			relation.Int(r.CtxID), relation.Text(r.ValueName), relation.Text(r.Value),
			relation.Int(int64(r.ValueType)),
		})
		return err
	case *LoopRecord:
		_, err := t.Loops.Insert(relation.Row{
			relation.Text(r.ProjID), relation.Int(r.Tstamp), relation.Text(r.Filename),
			relation.Int(r.CtxID), relation.Int(r.ParentCtxID), relation.Text(r.LoopName),
			relation.Int(r.LoopIter), relation.Text(r.IterValue),
		})
		return err
	case *ArgRecord:
		_, err := t.Args.Insert(relation.Row{
			relation.Text(r.ProjID), relation.Int(r.Tstamp), relation.Text(r.Filename),
			relation.Text(r.Name), relation.Text(r.Value),
		})
		return err
	case *CkptRecord:
		// Checkpoint blobs are written to obj_store directly by the
		// checkpoint manager; the WAL record is provenance only.
		return nil
	case *CommitRecord:
		return nil
	default:
		return fmt.Errorf("record: cannot apply %T", rec)
	}
}

// PutBlob stores a blob in obj_store.
func (t *Tables) PutBlob(projid string, tstamp int64, filename string, ctxID int64, name string, contents []byte) error {
	_, err := t.ObjStore.Insert(relation.Row{
		relation.Text(projid), relation.Int(tstamp), relation.Text(filename),
		relation.Int(ctxID), relation.Text(name), relation.Blob(contents),
	})
	return err
}

// GetBlobExact retrieves the obj_store blob for (projid, name) written at
// exactly the given tstamp, used by replay to load a specific version's
// checkpoints.
func (t *Tables) GetBlobExact(projid, name string, tstamp int64) ([]byte, bool) {
	return t.View().GetBlobExact(projid, name, tstamp)
}

// GetBlob retrieves the most recent obj_store blob for (projid, name) with
// tstamp <= atOrBefore (or any tstamp when atOrBefore < 0).
func (t *Tables) GetBlob(projid, name string, atOrBefore int64) ([]byte, bool) {
	return t.View().GetBlob(projid, name, atOrBefore)
}

// GetBlobExact retrieves the obj_store blob for (projid, name) written at
// exactly the given tstamp, honoring the view's visibility.
func (v *TablesView) GetBlobExact(projid, name string, tstamp int64) ([]byte, bool) {
	var out []byte
	found := false
	v.eachBlobRow(projid, name, func(r relation.Row) {
		if r[1].AsInt() == tstamp {
			out = r[5].AsBlob()
			found = true
		}
	})
	return out, found
}

// GetBlob retrieves the most recent obj_store blob for (projid, name) with
// tstamp <= atOrBefore (or any tstamp when atOrBefore < 0), honoring the
// view's visibility.
func (v *TablesView) GetBlob(projid, name string, atOrBefore int64) ([]byte, bool) {
	var best []byte
	var bestTs int64 = -1
	v.eachBlobRow(projid, name, func(r relation.Row) {
		ts := r[1].AsInt()
		if atOrBefore >= 0 && ts > atOrBefore {
			return
		}
		if ts > bestTs {
			bestTs = ts
			best = r[5].AsBlob()
		}
	})
	return best, bestTs >= 0
}

// eachBlobRow visits the visible obj_store rows for (projid, name), through
// the hash index when present.
func (v *TablesView) eachBlobRow(projid, name string, fn func(relation.Row)) {
	if ix, ok := v.ObjStore.HashIndexOn("projid", "value_name"); ok {
		for _, id := range ix.Lookup(relation.Text(projid), relation.Text(name)) {
			if r, live := v.ObjStore.Get(id); live {
				fn(r)
			}
		}
		return
	}
	v.ObjStore.Scan(func(_ relation.RowID, r relation.Row) bool {
		if r[0].AsText() == projid && r[4].AsText() == name {
			fn(r)
		}
		return true
	})
}
