package record

import (
	"bytes"
	"fmt"
	"testing"

	"flordb/internal/relation"
)

// TestSnapshotPreservesVersionEpochs: the v2 snapshot format carries per-
// version born/dead epochs, so a database loaded from a snapshot answers
// AS OF queries identically to the one that wrote it.
func TestSnapshotPreservesVersionEpochs(t *testing.T) {
	db := relation.NewDatabase()
	src, err := CreateTables(db)
	if err != nil {
		t.Fatal(err)
	}
	var ids []relation.RowID
	for i := 0; i < 6; i++ {
		id, err := src.Logs.Insert(relation.Row{
			relation.Text("p"), relation.Int(int64(i)), relation.Text("f.go"),
			relation.Int(int64(i)), relation.Text("acc"), relation.Text("0.5"), relation.Int(2),
		})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
		db.AdvanceEpoch()
	}
	// Epoch 7 deletes the first two rows.
	src.Logs.Delete(ids[0])
	src.Logs.Delete(ids[1])
	db.AdvanceEpoch()

	meta := SnapshotMeta{Version: SnapshotVersion, Seq: 1, Epoch: db.Epoch()}
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, meta, src); err != nil {
		t.Fatal(err)
	}

	db2 := relation.NewDatabase()
	dst, err := CreateTables(db2)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshot(buf.Bytes(), dst)
	if err != nil {
		t.Fatal(err)
	}
	db2.SetEpoch(got.Epoch)

	counts := func(db *relation.Database, epoch int64) int {
		snap, err := db.SnapshotAt(epoch)
		if err != nil {
			t.Fatalf("SnapshotAt(%d): %v", epoch, err)
		}
		defer snap.Release()
		r, _ := snap.Reader("logs")
		return len(r.Rows())
	}
	for e := int64(0); e <= 7; e++ {
		if a, b := counts(db, e), counts(db2, e); a != b {
			t.Fatalf("epoch %d: source sees %d rows, snapshot-loaded sees %d", e, a, b)
		}
	}
	if got := counts(db2, 7); got != 4 {
		t.Fatalf("post-delete epoch sees %d rows, want 4", got)
	}
	if got := counts(db2, 6); got != 6 {
		t.Fatalf("pre-delete epoch sees %d rows, want 6", got)
	}
}

// TestSnapshotMinEpochFoldsRetiredVersions: versions tombstoned at or below
// meta.MinEpoch are dropped from the written snapshot entirely — the on-disk
// reclamation half of epoch-retention GC.
func TestSnapshotMinEpochFoldsRetiredVersions(t *testing.T) {
	mk := func(minEpoch int64) int {
		db := relation.NewDatabase()
		tables, err := CreateTables(db)
		if err != nil {
			t.Fatal(err)
		}
		// Churn: 200 rows, half deleted at epoch 2.
		var doomed []relation.RowID
		for i := 0; i < 200; i++ {
			id, err := tables.Logs.Insert(relation.Row{
				relation.Text("p"), relation.Int(int64(i)), relation.Text("f.go"),
				relation.Int(int64(i)), relation.Text("metric"),
				relation.Text(fmt.Sprintf("payload-%04d-padding-padding-padding", i)), relation.Int(2),
			})
			if err != nil {
				t.Fatal(err)
			}
			if i%2 == 0 {
				doomed = append(doomed, id)
			}
		}
		db.AdvanceEpoch()
		for _, id := range doomed {
			tables.Logs.Delete(id)
		}
		db.AdvanceEpoch()
		db.AdvanceEpoch()

		var buf bytes.Buffer
		meta := SnapshotMeta{Version: SnapshotVersion, Seq: 1, Epoch: db.Epoch(), MinEpoch: minEpoch}
		if err := WriteSnapshot(&buf, meta, tables); err != nil {
			t.Fatal(err)
		}

		// The folded snapshot must still load and answer queries at retained
		// epochs correctly.
		db2 := relation.NewDatabase()
		dst, err := CreateTables(db2)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ReadSnapshot(buf.Bytes(), dst); err != nil {
			t.Fatal(err)
		}
		db2.SetEpoch(db.Epoch())
		snap, err := db2.SnapshotAt(3)
		if err != nil {
			t.Fatal(err)
		}
		defer snap.Release()
		r, _ := snap.Reader("logs")
		if got := len(r.Rows()); got != 100 {
			t.Fatalf("minEpoch %d: latest epoch sees %d rows, want 100", minEpoch, got)
		}
		return buf.Len()
	}

	full := mk(0)   // retains the tombstoned versions for time travel
	folded := mk(2) // floor 2: versions dead at or below 2 are gone
	if folded >= full {
		t.Fatalf("folded snapshot (%d bytes) not smaller than full history (%d bytes)", folded, full)
	}
	// 100 of 300 versions dropped; expect a substantial shrink, not noise.
	if folded > full*3/4 {
		t.Fatalf("folded snapshot %d bytes vs %d — expected >25%% reclamation", folded, full)
	}
}
