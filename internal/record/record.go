// Package record defines FlorDB's log and loop records — the rows of the
// Figure-1 data model — together with their JSONL wire encoding and the
// shredding of records into the relational store.
//
// Every record carries the structured provenance the paper requires:
// projid, tstamp, filename, and ctx_id (the loop context the record belongs
// to, with parent links expressing nesting).
package record

import (
	"encoding/json"
	"fmt"
	"strconv"
	"time"

	"flordb/internal/relation"
)

// ValueType tags the dynamic type of a logged value, stored in the logs
// table's value_type column so that values can be rehydrated when a
// dataframe is built.
type ValueType int

// Value types stored in logs.value_type.
const (
	VTText ValueType = iota
	VTInt
	VTFloat
	VTBool
	VTBlobRef // value column holds a key into obj_store
)

// Kind discriminates record variants in the WAL stream.
type Kind string

// Record kinds.
const (
	KindLog    Kind = "log"
	KindLoop   Kind = "loop"
	KindCommit Kind = "commit"
	KindArg    Kind = "arg"
	KindCkpt   Kind = "ckpt"
)

// LogRecord is one flor.log(name, value) emission — a row of `logs`.
type LogRecord struct {
	Kind      Kind      `json:"kind"`
	ProjID    string    `json:"projid"`
	Tstamp    int64     `json:"tstamp"` // logical commit timestamp (version counter)
	Filename  string    `json:"filename"`
	CtxID     int64     `json:"ctx_id"`
	ValueName string    `json:"value_name"`
	Value     string    `json:"value"`
	ValueType ValueType `json:"value_type"`
	Wall      time.Time `json:"wall"` // wall-clock time of emission
}

// LoopRecord is one flor.loop iteration entry — a row of `loops`.
type LoopRecord struct {
	Kind        Kind      `json:"kind"`
	ProjID      string    `json:"projid"`
	Tstamp      int64     `json:"tstamp"`
	Filename    string    `json:"filename"`
	CtxID       int64     `json:"ctx_id"`
	ParentCtxID int64     `json:"parent_ctx_id"`
	LoopName    string    `json:"loop_name"`
	LoopIter    int64     `json:"loop_iteration"`
	IterValue   string    `json:"iteration_value"`
	Wall        time.Time `json:"wall"`
}

// ArgRecord captures a flor.arg resolution so replay can reuse historical
// hyperparameters without re-reading the command line.
type ArgRecord struct {
	Kind     Kind   `json:"kind"`
	ProjID   string `json:"projid"`
	Tstamp   int64  `json:"tstamp"`
	Filename string `json:"filename"`
	Name     string `json:"name"`
	Value    string `json:"value"`
}

// CkptRecord registers a checkpoint blob taken at a loop iteration boundary.
type CkptRecord struct {
	Kind     Kind   `json:"kind"`
	ProjID   string `json:"projid"`
	Tstamp   int64  `json:"tstamp"`
	Filename string `json:"filename"`
	CtxID    int64  `json:"ctx_id"`
	Name     string `json:"name"`     // checkpointed object name (e.g. "model")
	BlobKey  string `json:"blob_key"` // key into obj_store
}

// CommitRecord marks a flor.commit() — the end of a visible transaction.
type CommitRecord struct {
	Kind   Kind      `json:"kind"`
	ProjID string    `json:"projid"`
	Tstamp int64     `json:"tstamp"`
	VID    string    `json:"vid"` // version id produced by the vcs commit
	Wall   time.Time `json:"wall"`
}

// Envelope wraps any record for decoding: peek at Kind, then decode fully.
type Envelope struct {
	Kind Kind `json:"kind"`
}

// Encode marshals a record to one JSONL line (no trailing newline).
func Encode(rec any) ([]byte, error) {
	b, err := json.Marshal(rec)
	if err != nil {
		return nil, fmt.Errorf("record: encode: %w", err)
	}
	return b, nil
}

// Decode parses one JSONL line into the concrete record type.
func Decode(line []byte) (any, error) {
	var env Envelope
	if err := json.Unmarshal(line, &env); err != nil {
		return nil, fmt.Errorf("record: bad envelope: %w", err)
	}
	switch env.Kind {
	case KindLog:
		var r LogRecord
		if err := json.Unmarshal(line, &r); err != nil {
			return nil, err
		}
		return &r, nil
	case KindLoop:
		var r LoopRecord
		if err := json.Unmarshal(line, &r); err != nil {
			return nil, err
		}
		return &r, nil
	case KindArg:
		var r ArgRecord
		if err := json.Unmarshal(line, &r); err != nil {
			return nil, err
		}
		return &r, nil
	case KindCkpt:
		var r CkptRecord
		if err := json.Unmarshal(line, &r); err != nil {
			return nil, err
		}
		return &r, nil
	case KindCommit:
		var r CommitRecord
		if err := json.Unmarshal(line, &r); err != nil {
			return nil, err
		}
		return &r, nil
	default:
		return nil, fmt.Errorf("record: unknown kind %q", env.Kind)
	}
}

// FormatValue renders a Go value into the logs.value text column plus its
// type tag, mirroring how the Python system stringifies logged expressions.
func FormatValue(v any) (string, ValueType) {
	switch x := v.(type) {
	case nil:
		return "", VTText
	case string:
		return x, VTText
	case bool:
		if x {
			return "true", VTBool
		}
		return "false", VTBool
	case int:
		return strconv.FormatInt(int64(x), 10), VTInt
	case int32:
		return strconv.FormatInt(int64(x), 10), VTInt
	case int64:
		return strconv.FormatInt(x, 10), VTInt
	case float32:
		return strconv.FormatFloat(float64(x), 'g', -1, 64), VTFloat
	case float64:
		return strconv.FormatFloat(x, 'g', -1, 64), VTFloat
	case fmt.Stringer:
		return x.String(), VTText
	default:
		b, err := json.Marshal(v)
		if err != nil {
			return fmt.Sprintf("%v", v), VTText
		}
		return string(b), VTText
	}
}

// ParseValue rehydrates a logs.value text payload into a relation.Value
// using its type tag.
func ParseValue(s string, vt ValueType) relation.Value {
	switch vt {
	case VTInt:
		if i, err := strconv.ParseInt(s, 10, 64); err == nil {
			return relation.Int(i)
		}
	case VTFloat:
		if f, err := strconv.ParseFloat(s, 64); err == nil {
			return relation.Float(f)
		}
	case VTBool:
		if s == "true" {
			return relation.Bool(true)
		}
		if s == "false" {
			return relation.Bool(false)
		}
	}
	return relation.Text(s)
}
