package record

import (
	"testing"
	"time"

	"flordb/internal/relation"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	recs := []any{
		&LogRecord{Kind: KindLog, ProjID: "p", Tstamp: 3, Filename: "train.flow", CtxID: 7, ValueName: "acc", Value: "0.9", ValueType: VTFloat, Wall: time.Unix(100, 0).UTC()},
		&LoopRecord{Kind: KindLoop, ProjID: "p", Tstamp: 3, Filename: "train.flow", CtxID: 8, ParentCtxID: 7, LoopName: "epoch", LoopIter: 2, IterValue: "2", Wall: time.Unix(101, 0).UTC()},
		&ArgRecord{Kind: KindArg, ProjID: "p", Tstamp: 3, Filename: "train.flow", Name: "lr", Value: "0.001"},
		&CkptRecord{Kind: KindCkpt, ProjID: "p", Tstamp: 3, Filename: "train.flow", CtxID: 8, Name: "model", BlobKey: "k1"},
		&CommitRecord{Kind: KindCommit, ProjID: "p", Tstamp: 4, VID: "v4", Wall: time.Unix(102, 0).UTC()},
	}
	for _, rec := range recs {
		line, err := Encode(rec)
		if err != nil {
			t.Fatal(err)
		}
		back, err := Decode(line)
		if err != nil {
			t.Fatalf("decode %s: %v", line, err)
		}
		l2, err := Encode(back)
		if err != nil {
			t.Fatal(err)
		}
		if string(line) != string(l2) {
			t.Fatalf("round trip mismatch:\n%s\n%s", line, l2)
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode([]byte("not json")); err == nil {
		t.Fatal("garbage must fail")
	}
	if _, err := Decode([]byte(`{"kind":"mystery"}`)); err == nil {
		t.Fatal("unknown kind must fail")
	}
}

func TestFormatValueTypes(t *testing.T) {
	cases := []struct {
		in   any
		want string
		vt   ValueType
	}{
		{"hello", "hello", VTText},
		{42, "42", VTInt},
		{int64(42), "42", VTInt},
		{int32(7), "7", VTInt},
		{3.5, "3.5", VTFloat},
		{float32(2), "2", VTFloat},
		{true, "true", VTBool},
		{false, "false", VTBool},
		{nil, "", VTText},
	}
	for _, c := range cases {
		got, vt := FormatValue(c.in)
		if got != c.want || vt != c.vt {
			t.Fatalf("FormatValue(%v) = %q,%d want %q,%d", c.in, got, vt, c.want, c.vt)
		}
	}
}

func TestFormatValueJSONFallback(t *testing.T) {
	got, vt := FormatValue(map[string]int{"a": 1})
	if got != `{"a":1}` || vt != VTText {
		t.Fatalf("json fallback: %q %d", got, vt)
	}
	got, _ = FormatValue([]string{"x", "y"})
	if got != `["x","y"]` {
		t.Fatalf("slice fallback: %q", got)
	}
}

func TestParseValueRehydration(t *testing.T) {
	if v := ParseValue("42", VTInt); v.Type() != relation.TInt || v.AsInt() != 42 {
		t.Fatalf("int: %v", v)
	}
	if v := ParseValue("2.5", VTFloat); v.Type() != relation.TFloat || v.AsFloat() != 2.5 {
		t.Fatalf("float: %v", v)
	}
	if v := ParseValue("true", VTBool); v.Type() != relation.TBool || !v.AsBool() {
		t.Fatalf("bool: %v", v)
	}
	if v := ParseValue("plain", VTText); v.Type() != relation.TText {
		t.Fatalf("text: %v", v)
	}
	// Corrupt payloads degrade to text rather than erroring.
	if v := ParseValue("xx", VTInt); v.Type() != relation.TText {
		t.Fatalf("corrupt int: %v", v)
	}
}

func TestFormatParseRoundTrip(t *testing.T) {
	for _, in := range []any{"s", 7, 2.25, true} {
		s, vt := FormatValue(in)
		v := ParseValue(s, vt)
		switch x := in.(type) {
		case string:
			if v.AsText() != x {
				t.Fatalf("string round trip: %v", v)
			}
		case int:
			if v.AsInt() != int64(x) {
				t.Fatalf("int round trip: %v", v)
			}
		case float64:
			if v.AsFloat() != x {
				t.Fatalf("float round trip: %v", v)
			}
		case bool:
			if v.AsBool() != x {
				t.Fatalf("bool round trip: %v", v)
			}
		}
	}
}

func TestSchemaFigure1(t *testing.T) {
	// The schemas must carry exactly the columns of the paper's Figure 1.
	logs := LogsSchema()
	for _, col := range []string{"projid", "tstamp", "filename", "ctx_id", "value_name", "value", "value_type"} {
		if logs.Index(col) < 0 {
			t.Fatalf("logs missing %q", col)
		}
	}
	loops := LoopsSchema()
	for _, col := range []string{"projid", "tstamp", "filename", "ctx_id", "parent_ctx_id", "loop_name", "loop_iteration", "iteration_value"} {
		if loops.Index(col) < 0 {
			t.Fatalf("loops missing %q", col)
		}
	}
	ts2vid := Ts2vidSchema()
	for _, col := range []string{"projid", "ts_start", "ts_end", "vid", "root_target"} {
		if ts2vid.Index(col) < 0 {
			t.Fatalf("ts2vid missing %q", col)
		}
	}
	objs := ObjStoreSchema()
	for _, col := range []string{"projid", "tstamp", "filename", "ctx_id", "value_name", "contents"} {
		if objs.Index(col) < 0 {
			t.Fatalf("obj_store missing %q", col)
		}
	}
	git := GitSchema()
	for _, col := range []string{"vid", "filename", "parent_vid", "contents"} {
		if git.Index(col) < 0 {
			t.Fatalf("git missing %q", col)
		}
	}
	bd := BuildDepsSchema()
	for _, col := range []string{"vid", "target", "deps", "cmds", "cached"} {
		if bd.Index(col) < 0 {
			t.Fatalf("build_deps missing %q", col)
		}
	}
}

func TestCreateTablesAndApply(t *testing.T) {
	db := relation.NewDatabase()
	tables, err := CreateTables(db)
	if err != nil {
		t.Fatal(err)
	}
	recs := []any{
		&LogRecord{Kind: KindLog, ProjID: "p", Tstamp: 1, Filename: "f", CtxID: 0, ValueName: "acc", Value: "0.9", ValueType: VTFloat},
		&LoopRecord{Kind: KindLoop, ProjID: "p", Tstamp: 1, Filename: "f", CtxID: 1, ParentCtxID: 0, LoopName: "epoch", LoopIter: 0, IterValue: "0"},
		&ArgRecord{Kind: KindArg, ProjID: "p", Tstamp: 1, Filename: "f", Name: "lr", Value: "0.01"},
		&CkptRecord{Kind: KindCkpt, ProjID: "p", Tstamp: 1, Filename: "f", CtxID: 1, Name: "model", BlobKey: "b"},
		&CommitRecord{Kind: KindCommit, ProjID: "p", Tstamp: 2, VID: "v"},
	}
	for _, rec := range recs {
		if err := tables.Apply(rec); err != nil {
			t.Fatalf("apply %T: %v", rec, err)
		}
	}
	if tables.Logs.Len() != 1 || tables.Loops.Len() != 1 || tables.Args.Len() != 1 {
		t.Fatalf("table counts: logs=%d loops=%d args=%d", tables.Logs.Len(), tables.Loops.Len(), tables.Args.Len())
	}
	if err := tables.Apply("not a record"); err == nil {
		t.Fatal("bad record type must fail")
	}
}

func TestBlobStoreLatestWins(t *testing.T) {
	db := relation.NewDatabase()
	tables, err := CreateTables(db)
	if err != nil {
		t.Fatal(err)
	}
	if err := tables.PutBlob("p", 1, "f", 0, "model", []byte("old")); err != nil {
		t.Fatal(err)
	}
	if err := tables.PutBlob("p", 3, "f", 0, "model", []byte("new")); err != nil {
		t.Fatal(err)
	}
	b, ok := tables.GetBlob("p", "model", -1)
	if !ok || string(b) != "new" {
		t.Fatalf("latest blob: %q %v", b, ok)
	}
	b, ok = tables.GetBlob("p", "model", 2)
	if !ok || string(b) != "old" {
		t.Fatalf("as-of blob: %q %v", b, ok)
	}
	if _, ok := tables.GetBlob("p", "missing", -1); ok {
		t.Fatal("missing blob must not be found")
	}
	if _, ok := tables.GetBlob("p", "model", 0); ok {
		t.Fatal("blob before first tstamp must not be found")
	}
}

func TestCreateTablesInstallsDefaultIndexes(t *testing.T) {
	// Regression: the pivot fast-path (pivot.go's HashIndexOn check) and the
	// SQL planner's access paths depend on these indexes being live from
	// table creation, not on callers remembering to build them.
	db := relation.NewDatabase()
	tables, err := CreateTables(db)
	if err != nil {
		t.Fatal(err)
	}
	hashIndexes := []struct {
		table *relation.Table
		cols  []string
	}{
		{tables.Logs, []string{"projid", "value_name"}},
		{tables.ObjStore, []string{"projid", "value_name"}},
		{tables.Loops, []string{"projid"}},
		{tables.Ts2vid, []string{"projid"}},
		{tables.Args, []string{"projid", "name"}},
	}
	for _, h := range hashIndexes {
		if _, ok := h.table.HashIndexOn(h.cols...); !ok {
			t.Errorf("table %s: hash index on %v missing", h.table.Name(), h.cols)
		}
	}
	orderedIndexes := []struct {
		table *relation.Table
		col   string
	}{
		{tables.Logs, "tstamp"},
		{tables.Loops, "tstamp"},
		{tables.Ts2vid, "ts_start"},
	}
	for _, o := range orderedIndexes {
		if _, ok := o.table.OrderedIndexOn(o.col); !ok {
			t.Errorf("table %s: ordered index on %s missing", o.table.Name(), o.col)
		}
	}

	// The indexes are maintained, not just created: inserted rows must be
	// visible through them.
	if err := tables.Apply(&LogRecord{
		Kind: KindLog, ProjID: "p", Tstamp: 1, Filename: "f", CtxID: 0,
		ValueName: "acc", Value: "0.9", ValueType: VTFloat,
	}); err != nil {
		t.Fatal(err)
	}
	ix, _ := tables.Logs.HashIndexOn("projid", "value_name")
	if got := len(ix.Lookup(relation.Text("p"), relation.Text("acc"))); got != 1 {
		t.Fatalf("index lookup after Apply: %d ids, want 1", got)
	}
}
