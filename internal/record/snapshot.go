// Snapshot codec: a versioned, checksummed binary serialization of the base
// tables, stamped with the WAL segment sequence it covers. Recovery loads
// the newest valid snapshot and replays only the WAL tail, making startup
// O(live data) instead of O(total history) — the metadata-side analog of the
// paper's checkpoint/replay design for training state (§2).
//
// Two formats share the FLORSNAP container (magic, JSON meta, CRC-32C
// trailer) and are dispatched on the meta version field:
//
//   - v3 (current, columnar): per-column pages with zone maps in a page
//     directory; see snapshot_columnar.go for the layout.
//   - v2 (legacy, row-oriented): still read for compatibility with
//     pre-columnar snapshots, and writable via WriteSnapshotV2 for tests.
//
// v2 layout (all integers varint-encoded unless noted):
//
//	magic "FLORSNAP"
//	uvarint meta length, meta JSON {"version","seq","max_tstamp",
//	    "epoch","min_epoch","epochs"}
//	string dictionary: uvarint count, then per entry uvarint len + bytes
//	per base table, in Tables order (logs, loops, ts2vid, obj_store, args):
//	    uvarint name length, name
//	    uvarint version count
//	    versions: zigzag varint born epoch, zigzag varint dead epoch
//	        (0 = live), then per column one tag byte + payload
//	        'N' NULL    'i' zigzag varint    'f' 8-byte LE float bits
//	        's' uvarint dictionary index     'b'/'B' bool false/true
//	        't' varint UnixNano              'x' uvarint len + blob bytes
//	4-byte LE CRC-32C (Castagnoli, hardware-accelerated) of everything above
//
// Format v2 persists full MVCC history: every row version carries its
// born/dead epochs, so a recovered database answers `AS OF <epoch>` queries
// exactly as the one that wrote the snapshot did. Versions tombstoned at or
// below the retention floor (meta min_epoch) are folded out at write time —
// this is how the epoch-retention GC's reclamation becomes durable.
//
// The codec is deliberately not JSONL: decoding a snapshot row costs a type
// switch and a varint, not two reflective json.Unmarshal calls. Text cells
// are dictionary-encoded — metadata columns (projid, filename, value names,
// stringified values) repeat heavily, so each distinct string is stored,
// allocated, and hashed exactly once; a cell decode is a slice index. This
// is where the ≥10× recovery speedup over full WAL replay comes from (C11).
package record

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"time"

	"flordb/internal/relation"
)

// SnapshotVersion is the current snapshot format version. Readers accept the
// current version and v2 (recovery falls back to an older snapshot or a full
// replay on anything else). Version 2 added per-version born/dead epochs and
// the epoch/min_epoch/epochs meta fields for time travel; version 3 moved the
// table sections to columnar pages with zone maps (snapshot_columnar.go).
const SnapshotVersion = 3

const snapshotMagic = "FLORSNAP"

// EpochStamp maps one committed epoch to the wall-clock time of the commit
// that published it. The ordered list of stamps is the persisted
// epoch↔timestamp map that `AS OF TIMESTAMP` resolution binary-searches.
type EpochStamp struct {
	Epoch int64 `json:"e"`
	Wall  int64 `json:"w"` // commit wall clock, Unix nanoseconds UTC
}

// SnapshotMeta stamps a snapshot with what it covers.
type SnapshotMeta struct {
	Version   int   `json:"version"`
	Seq       int64 `json:"seq"`        // highest sealed WAL segment folded in
	MaxTstamp int64 `json:"max_tstamp"` // highest logical timestamp covered
	Epoch     int64 `json:"epoch"`      // committed epoch folded in (commit records since birth)
	MinEpoch  int64 `json:"min_epoch,omitempty"`
	// Epochs is the epoch↔commit-wall-clock map for epochs in
	// [MinEpoch, Epoch], ascending. Tail replay extends it.
	Epochs []EpochStamp `json:"epochs,omitempty"`
}

// snapshotTables returns the base tables in their fixed serialization order.
func (t *Tables) snapshotTables() []*relation.Table {
	return []*relation.Table{t.Logs, t.Loops, t.Ts2vid, t.ObjStore, t.Args}
}

// castagnoli is the CRC-32C table; Castagnoli is hardware-accelerated on
// amd64/arm64, which matters when checksumming a multi-MB snapshot on the
// recovery hot path.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// snapDict assigns dense ids to distinct strings in first-use order.
type snapDict struct {
	ids     map[string]uint64
	entries []string
}

func (d *snapDict) id(s string) uint64 {
	if id, ok := d.ids[s]; ok {
		return id
	}
	id := uint64(len(d.entries))
	d.ids[s] = id
	d.entries = append(d.entries, s)
	return id
}

// WriteSnapshot serializes the tables to w in the format named by
// meta.Version (2 writes the legacy row-oriented layout; anything else writes
// the current columnar layout). The caller owns durability (buffering, fsync,
// atomic rename).
func WriteSnapshot(w io.Writer, meta SnapshotMeta, t *Tables) error {
	return WriteSnapshotHook(w, meta, t, nil)
}

// WriteSnapshotHook is WriteSnapshot with a test hook fired after each table
// section reaches w — the crash-injection matrix uses it to kill the process
// mid-file and prove recovery falls back cleanly. The hook is only fired on
// the v3 path (v2 buffers all sections and writes them in one burst).
func WriteSnapshotHook(w io.Writer, meta SnapshotMeta, t *Tables, hook func(table string) error) error {
	if meta.Version == 2 {
		return writeSnapshotV2(w, meta, t)
	}
	return writeSnapshotV3(w, meta, t, hook)
}

// WriteSnapshotV2 writes the legacy row-oriented format regardless of
// meta.Version, for read-compatibility tests against the v3 reader.
func WriteSnapshotV2(w io.Writer, meta SnapshotMeta, t *Tables) error {
	meta.Version = 2
	return writeSnapshotV2(w, meta, t)
}

func writeSnapshotV2(w io.Writer, meta SnapshotMeta, t *Tables) error {
	// Encode the row sections into a buffer first, building the string
	// dictionary as cells are visited; the file stores the dictionary ahead
	// of the rows so the reader can resolve indexes in one pass.
	dict := &snapDict{ids: make(map[string]uint64, 1024)}
	var rowsBuf bytes.Buffer
	buf := make([]byte, 0, 1<<10)
	for _, tbl := range t.snapshotTables() {
		name := tbl.Name()
		rows, born, dead := tbl.Versions()
		// Fold out versions the retention GC already reclaimed in memory
		// (nil payload) or that fall at or below the persisted floor: both
		// are invisible at every epoch a reader of this snapshot may target.
		persist := 0
		for id := range rows {
			if snapPersists(rows[id], dead[id], meta.MinEpoch) {
				persist++
			}
		}
		buf = binary.AppendUvarint(buf[:0], uint64(len(name)))
		buf = append(buf, name...)
		buf = binary.AppendUvarint(buf, uint64(persist))
		rowsBuf.Write(buf)
		for id, r := range rows {
			if !snapPersists(r, dead[id], meta.MinEpoch) {
				continue
			}
			buf = binary.AppendVarint(buf[:0], born[id])
			buf = binary.AppendVarint(buf, dead[id])
			for i := range r {
				buf = appendSnapValue(buf, &r[i], dict)
			}
			rowsBuf.Write(buf)
		}
	}

	h := crc32.New(castagnoli)
	mw := io.MultiWriter(w, h)
	if _, err := mw.Write([]byte(snapshotMagic)); err != nil {
		return fmt.Errorf("record: write snapshot: %w", err)
	}
	metaJSON, err := json.Marshal(meta)
	if err != nil {
		return fmt.Errorf("record: snapshot meta: %w", err)
	}
	buf = binary.AppendUvarint(buf[:0], uint64(len(metaJSON)))
	buf = append(buf, metaJSON...)
	buf = binary.AppendUvarint(buf, uint64(len(dict.entries)))
	if _, err := mw.Write(buf); err != nil {
		return fmt.Errorf("record: write snapshot: %w", err)
	}
	for _, e := range dict.entries {
		buf = binary.AppendUvarint(buf[:0], uint64(len(e)))
		buf = append(buf, e...)
		if _, err := mw.Write(buf); err != nil {
			return fmt.Errorf("record: write snapshot: %w", err)
		}
	}
	if _, err := mw.Write(rowsBuf.Bytes()); err != nil {
		return fmt.Errorf("record: write snapshot: %w", err)
	}
	var trailer [4]byte
	binary.LittleEndian.PutUint32(trailer[:], h.Sum32())
	if _, err := w.Write(trailer[:]); err != nil {
		return fmt.Errorf("record: write snapshot: %w", err)
	}
	return nil
}

// snapPersists reports whether a row version belongs in a snapshot with the
// given retention floor: it must have a payload (not reclaimed in memory) and
// must still be visible at some epoch >= floor.
func snapPersists(r relation.Row, dead, minEpoch int64) bool {
	return r != nil && (dead == 0 || dead > minEpoch)
}

func appendSnapValue(dst []byte, v *relation.Value, dict *snapDict) []byte {
	switch v.Type() {
	case relation.TInt:
		dst = append(dst, 'i')
		return binary.AppendVarint(dst, v.AsInt())
	case relation.TText:
		dst = append(dst, 's')
		return binary.AppendUvarint(dst, dict.id(v.AsText()))
	case relation.TFloat:
		dst = append(dst, 'f')
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(v.AsFloat()))
		return append(dst, b[:]...)
	case relation.TBool:
		if v.AsBool() {
			return append(dst, 'B')
		}
		return append(dst, 'b')
	case relation.TTime:
		dst = append(dst, 't')
		return binary.AppendVarint(dst, v.AsTime().UnixNano())
	case relation.TBlob:
		b := v.AsBlob()
		dst = append(dst, 'x')
		dst = binary.AppendUvarint(dst, uint64(len(b)))
		return append(dst, b...)
	default: // TNull
		return append(dst, 'N')
	}
}

// ReadSnapshot verifies and decodes a snapshot, then bulk-loads the rows
// into t (which must hold empty tables, as fresh from CreateTables; indexes
// are rebuilt during the load). On any error the tables are left untouched:
// the checksum and the full decode happen before the first insert, so a
// corrupt snapshot is safe to fall back from.
func ReadSnapshot(data []byte, t *Tables) (SnapshotMeta, error) {
	var meta SnapshotMeta
	if len(data) < len(snapshotMagic)+4 {
		return meta, errors.New("record: snapshot truncated")
	}
	if string(data[:len(snapshotMagic)]) != snapshotMagic {
		return meta, errors.New("record: bad snapshot magic")
	}
	body, trailer := data[:len(data)-4], data[len(data)-4:]
	if crc32.Checksum(body, castagnoli) != binary.LittleEndian.Uint32(trailer) {
		return meta, errors.New("record: snapshot checksum mismatch")
	}
	rd := &snapReader{buf: body[len(snapshotMagic):]}
	metaJSON := rd.bytes(int(rd.uvarint()))
	if rd.err != nil {
		return meta, rd.err
	}
	if err := json.Unmarshal(metaJSON, &meta); err != nil {
		return meta, fmt.Errorf("record: snapshot meta: %w", err)
	}
	switch meta.Version {
	case 2:
		return meta, readSnapshotV2(rd, t)
	case SnapshotVersion:
		return meta, readSnapshotV3(rd, t)
	default:
		return meta, fmt.Errorf("record: unsupported snapshot version %d", meta.Version)
	}
}

// readSnapshotV2 decodes the legacy row-oriented table sections.
func readSnapshotV2(rd *snapReader, t *Tables) error {
	// Resolve the string dictionary: each distinct string is allocated once
	// here; a text cell decode below is a bounds-checked slice index.
	nDict := int(rd.uvarint())
	if rd.err != nil || nDict < 0 || nDict > len(rd.buf) {
		return errors.New("record: snapshot dictionary out of range")
	}
	dict := make([]string, nDict)
	for i := range dict {
		dict[i] = string(rd.bytes(int(rd.uvarint())))
	}
	if rd.err != nil {
		return rd.err
	}

	tbls := t.snapshotTables()
	batches := make([][]relation.Row, len(tbls))
	borns := make([][]int64, len(tbls))
	deads := make([][]int64, len(tbls))
	for i, tbl := range tbls {
		name := string(rd.bytes(int(rd.uvarint())))
		if rd.err != nil {
			return rd.err
		}
		if name != tbl.Name() {
			return fmt.Errorf("record: snapshot table %q, want %q", name, tbl.Name())
		}
		n := int(rd.uvarint())
		width := tbl.Schema().Len()
		// Every cell costs at least one byte, so n cannot exceed
		// len(buf)/width in a valid snapshot (divide — the product n*width
		// could overflow int on a crafted count and panic make below; the
		// born/dead prefixes only make each version cost more).
		if rd.err != nil || n < 0 || width <= 0 || n > len(rd.buf)/width {
			return errors.New("record: snapshot row count out of range")
		}
		rows := make([]relation.Row, n)
		born := make([]int64, n)
		dead := make([]int64, n)
		cells := make([]relation.Value, n*width)
		schema := tbl.Schema()
		for j := range rows {
			born[j] = rd.varint()
			dead[j] = rd.varint()
			if rd.err == nil && (born[j] < 0 || dead[j] < 0 || (dead[j] != 0 && dead[j] < born[j])) {
				return fmt.Errorf("record: snapshot %s row %d: bad epochs born=%d dead=%d", name, j, born[j], dead[j])
			}
			row := cells[j*width : (j+1)*width : (j+1)*width]
			for k := range row {
				rd.valueInto(&row[k], dict)
				// The CRC protects against corruption, not against a
				// mis-typed writer: reject wrong-typed cells here so a bad
				// snapshot fails recovery cleanly (and falls back) instead
				// of panicking later at query time.
				if err := checkSnapCell(schema, k, &row[k], rd, name, j); err != nil {
					return err
				}
			}
			rows[j] = relation.Row(row)
		}
		if rd.err != nil {
			return rd.err
		}
		batches[i], borns[i], deads[i] = rows, born, dead
	}
	if len(rd.buf) != 0 {
		return errors.New("record: trailing bytes after snapshot tables")
	}
	for i, tbl := range tbls {
		if err := tbl.LoadVersions(batches[i], borns[i], deads[i]); err != nil {
			return err
		}
	}
	return nil
}

// checkSnapCell validates a decoded cell against the schema column: type must
// match and NOT NULL must hold. Decode errors already latched in rd win.
func checkSnapCell(schema *relation.Schema, k int, v *relation.Value, rd *snapReader, table string, row int) error {
	if rd.err != nil {
		return nil // the latched decode error is reported by the caller
	}
	col := schema.Col(k)
	if v.IsNull() {
		if col.NotNull {
			return fmt.Errorf("record: snapshot %s row %d: NULL in NOT NULL column %q", table, row, col.Name)
		}
		return nil
	}
	if v.Type() != col.Type {
		return fmt.Errorf("record: snapshot %s row %d: column %q holds %v, want %v", table, row, col.Name, v.Type(), col.Type)
	}
	return nil
}

// snapReader is an error-latching cursor over the snapshot body.
type snapReader struct {
	buf []byte
	err error
}

func (rd *snapReader) fail(msg string) {
	if rd.err == nil {
		rd.err = errors.New("record: " + msg)
	}
}

func (rd *snapReader) uvarint() uint64 {
	if rd.err != nil {
		return 0
	}
	v, n := binary.Uvarint(rd.buf)
	if n <= 0 {
		rd.fail("snapshot: bad uvarint")
		return 0
	}
	rd.buf = rd.buf[n:]
	return v
}

func (rd *snapReader) varint() int64 {
	if rd.err != nil {
		return 0
	}
	v, n := binary.Varint(rd.buf)
	if n <= 0 {
		rd.fail("snapshot: bad varint")
		return 0
	}
	rd.buf = rd.buf[n:]
	return v
}

func (rd *snapReader) bytes(n int) []byte {
	if rd.err != nil {
		return nil
	}
	if n < 0 || n > len(rd.buf) {
		rd.fail("snapshot: length out of range")
		return nil
	}
	b := rd.buf[:n]
	rd.buf = rd.buf[n:]
	return b
}

// valueInto decodes one cell directly into dst (which is zero, i.e. NULL),
// avoiding a 56-byte Value copy per cell on the recovery hot path.
func (rd *snapReader) valueInto(dst *relation.Value, dict []string) {
	if rd.err != nil {
		return
	}
	if len(rd.buf) == 0 {
		rd.fail("snapshot: truncated value")
		return
	}
	tag := rd.buf[0]
	rd.buf = rd.buf[1:]
	switch tag {
	case 'N':
	case 'i':
		*dst = relation.Int(rd.varint())
	case 's':
		idx := rd.uvarint()
		if rd.err != nil {
			return
		}
		if idx >= uint64(len(dict)) {
			rd.fail("snapshot: string index out of range")
			return
		}
		*dst = relation.Text(dict[idx])
	case 'f':
		b := rd.bytes(8)
		if rd.err != nil {
			return
		}
		*dst = relation.Float(math.Float64frombits(binary.LittleEndian.Uint64(b)))
	case 'b':
		*dst = relation.Bool(false)
	case 'B':
		*dst = relation.Bool(true)
	case 't':
		*dst = relation.Time(time.Unix(0, rd.varint()).UTC())
	case 'x':
		b := rd.bytes(int(rd.uvarint()))
		if rd.err != nil {
			return
		}
		*dst = relation.Blob(append([]byte(nil), b...))
	default:
		rd.fail(fmt.Sprintf("snapshot: unknown value tag %q", tag))
	}
}
