// Package repl implements FlorDB's replication: a primary ships sealed,
// commit-aligned WAL segments (and the snapshot that seeds a cold follower)
// over HTTP, and a follower installs them into an identical on-disk layout
// and replays them into its own MVCC epochs.
//
// The design leans entirely on invariants the storage layer already
// guarantees (DESIGN.md §11):
//
//   - Sealed segments and snapshots are immutable and commit-aligned, so a
//     (size, CRC-32C) pair fully identifies a file and a shipped segment can
//     be applied atomically — one published epoch per commit record.
//   - The follower's directory mirrors the primary's byte-for-byte (same
//     file names), so bootstrap and crash recovery are the ordinary
//     storage.RecoverTables path: a follower killed at any point between
//     fetch and apply restarts into a consistent state for free.
//   - Segment numbering is dense. A follower that needs segment N and is
//     offered N+1 has hit compacted-away history; it faults loudly and
//     refuses to serve rather than replaying around the gap.
//
// Catch-up traffic is pull-based and admission-friendly: the follower asks
// for one file at a time and backs off exponentially (with jitter) on any
// failure, so replication load on the primary is bounded and bursty retry
// storms cannot form.
package repl

import (
	"fmt"
	"math/rand"
	"time"
)

// Wire paths mounted on the primary's HTTP mux.
const (
	PathManifest = "/repl/manifest"
	PathSegment  = "/repl/segment"
	PathSnapshot = "/repl/snapshot"
	PathBlob     = "/repl/blob"
)

// headerCRC carries a file's full CRC-32C so a follower can verify a fetch
// (including one resumed across prior partial fetches) end to end.
const headerCRC = "X-Flor-Crc32c"

// headerSize carries the full file size, letting a resuming follower detect
// a truncated-on-primary file before wasting a fetch.
const headerSize = "X-Flor-Size"

// FileEntry describes one immutable file (sealed segment or snapshot) in a
// manifest. Size and CRC are stable for the file's lifetime.
type FileEntry struct {
	Seq    int64  `json:"seq"`
	Size   int64  `json:"size"`
	CRC32C uint32 `json:"crc32c"`
}

// Manifest is the primary's shipping catalog: which sealed segments exist,
// the newest snapshot (if any), and where the primary's logical clock is.
// GET /repl/manifest returns it; ?have=N long-polls until a segment with
// Seq > N is sealed or the wait expires.
type Manifest struct {
	Project string `json:"project"`
	// Tstamp is the primary's logical timestamp at manifest-build time;
	// followers subtract their own to compute replica_lag_epochs.
	Tstamp   int64       `json:"tstamp"`
	Segments []FileEntry `json:"segments"`
	// Snapshot is the newest table snapshot, or nil when none exists. Its
	// Seq is the highest segment it covers.
	Snapshot *FileEntry `json:"snapshot,omitempty"`
}

// MaxSeq returns the highest sealed-segment sequence in the manifest, or 0.
func (m *Manifest) MaxSeq() int64 {
	if len(m.Segments) == 0 {
		return 0
	}
	return m.Segments[len(m.Segments)-1].Seq
}

// MinSeq returns the lowest sealed-segment sequence still listed, or 0.
func (m *Manifest) MinSeq() int64 {
	if len(m.Segments) == 0 {
		return 0
	}
	return m.Segments[0].Seq
}

// Backoff is jittered exponential retry pacing for the follower's tail loop.
type Backoff struct {
	Min    time.Duration // first delay (default 100ms)
	Max    time.Duration // delay ceiling (default 15s)
	Factor float64       // growth per consecutive failure (default 2)
	Jitter float64       // uniform jitter fraction, 0..1 (default 0.5)

	fails int
	rng   *rand.Rand
}

func (b *Backoff) withDefaults() {
	if b.Min <= 0 {
		b.Min = 100 * time.Millisecond
	}
	if b.Max <= 0 {
		b.Max = 15 * time.Second
	}
	if b.Factor < 1 {
		b.Factor = 2
	}
	if b.Jitter < 0 || b.Jitter > 1 {
		b.Jitter = 0.5
	}
}

// Reset clears the failure streak after a success.
func (b *Backoff) Reset() { b.fails = 0 }

// Next returns the delay before the next retry and records one failure.
// The delay grows Factor× per consecutive failure, capped at Max, with a
// uniform ±Jitter/2 fraction of itself added so a fleet of followers that
// all lost the primary at once do not reconnect in lockstep.
func (b *Backoff) Next() time.Duration {
	b.withDefaults()
	d := float64(b.Min)
	for i := 0; i < b.fails; i++ {
		d *= b.Factor
		if d >= float64(b.Max) {
			d = float64(b.Max)
			break
		}
	}
	b.fails++
	if b.Jitter > 0 {
		if b.rng == nil {
			b.rng = rand.New(rand.NewSource(time.Now().UnixNano()))
		}
		d += d * b.Jitter * (b.rng.Float64() - 0.5)
	}
	if d < float64(b.Min) {
		d = float64(b.Min)
	}
	return time.Duration(d)
}

// FaultError is a permanent replication fault: the follower's view of
// history can no longer be reconciled with the primary's (segment gap, CRC
// mismatch that a refetch did not cure, project mismatch, primary with less
// history). A faulted follower refuses to serve — wrong answers are worse
// than no answers — and requires an operator re-seed.
type FaultError struct {
	Reason string
}

func (e *FaultError) Error() string {
	return fmt.Sprintf("repl: permanent fault, refusing to serve: %s", e.Reason)
}

// faultf builds a FaultError.
func faultf(format string, args ...any) *FaultError {
	return &FaultError{Reason: fmt.Sprintf(format, args...)}
}
