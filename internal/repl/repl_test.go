// Replication tests: end-to-end tailing, snapshot bootstrap, checkpoint
// blob shipping, the follower/primary crash matrices, loud refusal on
// fabricated gaps and CRC mismatches, staleness gating, promotion, the
// compaction retention floor, and the randomized primary/replica
// equivalence property.
package repl

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"sync/atomic"
	"testing"
	"time"

	flor "flordb"
	"flordb/internal/relation"
	"flordb/internal/replay"
	"flordb/internal/server"
	"flordb/internal/storage"
)

// dump renders every base-table row of a session as strings for multiset
// comparison between primary and replica.
func dump(s *flor.Session) []string {
	t := s.Tables()
	var out []string
	for _, tbl := range []*relation.Table{t.Logs, t.Loops, t.Ts2vid, t.ObjStore, t.Args} {
		tbl.Scan(func(_ relation.RowID, r relation.Row) bool {
			line := tbl.Name()
			for _, v := range r {
				line += "|" + v.String()
			}
			out = append(out, line)
			return true
		})
	}
	sort.Strings(out)
	return out
}

func assertSame(t *testing.T, label string, got, want []string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: row count %d, want %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: row %d differs:\n got  %s\n want %s", label, i, got[i], want[i])
		}
	}
}

// primaryEnv is a writable session served over HTTP, with a swappable
// handler so tests can restart the primary without changing its URL.
type primaryEnv struct {
	t       *testing.T
	dir     string
	opts    flor.Options
	sess    *flor.Session
	prim    *Primary
	srv     *httptest.Server
	handler atomic.Value // http.Handler
}

func newPrimaryEnv(t *testing.T, opts flor.Options) *primaryEnv {
	t.Helper()
	if opts.SegmentBytes == 0 {
		opts.SegmentBytes = 1 // seal a segment at every commit
	}
	e := &primaryEnv{t: t, dir: t.TempDir(), opts: opts}
	e.open()
	e.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		e.handler.Load().(http.Handler).ServeHTTP(w, r)
	}))
	t.Cleanup(func() {
		e.srv.Close()
		e.sess.Close()
	})
	return e
}

func (e *primaryEnv) open() {
	e.t.Helper()
	sess, err := flor.Open(e.dir, "proj", e.opts)
	if err != nil {
		e.t.Fatal(err)
	}
	blobs, err := storage.NewBlobStore(filepath.Join(e.dir, ".flor", "objects"))
	if err != nil {
		e.t.Fatal(err)
	}
	e.sess = sess
	prim := NewPrimary(sess, blobs)
	prim.LongPollInterval = 5 * time.Millisecond
	e.prim = prim
	e.handler.Store(prim.Routes())
}

// restart closes and reopens the primary session (recovery path), swapping
// the served handler in place so followers keep the same URL.
func (e *primaryEnv) restart() {
	e.t.Helper()
	if err := e.sess.Close(); err != nil {
		e.t.Fatal(err)
	}
	e.open()
}

func (e *primaryEnv) walPath() string {
	return filepath.Join(e.dir, ".flor", "flor.wal")
}

func (e *primaryEnv) commitN(n int) {
	e.t.Helper()
	for i := 0; i < n; i++ {
		e.sess.Log("metric", fmt.Sprintf("v%d-%d", e.sess.Tstamp(), i))
		if err := e.sess.Commit("c"); err != nil {
			e.t.Fatal(err)
		}
	}
}

func (e *primaryEnv) cfg(dir string) FollowerConfig {
	return FollowerConfig{
		PrimaryURL: e.srv.URL,
		Dir:        dir,
		ProjID:     "proj",
		PollWait:   200 * time.Millisecond,
		Backoff:    Backoff{Min: 2 * time.Millisecond, Max: 20 * time.Millisecond},
	}
}

// stepUntil drives the follower synchronously until its applied high-water
// mark reaches want (or the deadline passes).
func stepUntil(t *testing.T, f *Follower, want int64) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	for f.Applied() < want {
		if err := f.step(ctx); err != nil {
			t.Fatalf("follower step (applied %d, want %d): %v", f.Applied(), want, err)
		}
		if ctx.Err() != nil {
			t.Fatalf("timed out at applied %d, want %d", f.Applied(), want)
		}
	}
}

func primarySegments(t *testing.T, e *primaryEnv) []storage.Segment {
	t.Helper()
	segs, err := storage.ListSegments(e.walPath())
	if err != nil {
		t.Fatal(err)
	}
	return segs
}

func TestFollowerTailsPrimary(t *testing.T) {
	e := newPrimaryEnv(t, flor.Options{})
	e.commitN(5)
	want := dump(e.sess)

	f, err := StartFollower(context.Background(), e.cfg(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	stepUntil(t, f, 5)
	assertSame(t, "tail", dump(f.Session()), want)

	if !f.Session().ReadOnly() {
		t.Fatal("replica session should be read-only")
	}
	if err := f.Session().Commit("nope"); err != flor.ErrReadOnly {
		t.Fatalf("Commit on replica = %v, want ErrReadOnly", err)
	}
	if got := f.Session().Log("x", "y"); got != "y" {
		t.Fatalf("Log on replica should pass value through, got %v", got)
	}

	// New commits ship incrementally.
	e.commitN(3)
	stepUntil(t, f, 8)
	assertSame(t, "incremental", dump(f.Session()), dump(e.sess))

	if f.SegmentsFetched() != 8 {
		t.Fatalf("fetched %d segments, want 8", f.SegmentsFetched())
	}
	if e.prim.SegmentsShipped() < 8 {
		t.Fatalf("primary shipped %d segments, want >= 8", e.prim.SegmentsShipped())
	}
	// Acks ride on manifest polls; one more poll reports applied=8 and
	// moves the retention floor.
	if _, err := f.fetchManifest(context.Background(), 0, 0); err != nil {
		t.Fatal(err)
	}
	if floor := e.prim.RetainFloor(); floor != 9 {
		t.Fatalf("retention floor = %d, want 9 (acked 8)", floor)
	}

	g := make(map[string]any)
	f.Health(g)
	for _, k := range []string{"replica_lag_epochs", "replica_last_fetch_unix", "repl_segments_shipped"} {
		if _, ok := g[k]; !ok {
			t.Fatalf("follower health missing %q", k)
		}
	}
	if g["replica_lag_epochs"].(int64) != 0 {
		t.Fatalf("caught-up replica reports lag %v", g["replica_lag_epochs"])
	}
}

func TestFollowerBootstrapsFromSnapshot(t *testing.T) {
	e := newPrimaryEnv(t, flor.Options{})
	e.commitN(4)
	if _, err := e.sess.Compact(); err != nil {
		t.Fatal(err)
	}
	e.commitN(3) // history now = snapshot(1..4) + segments 5..7
	want := dump(e.sess)

	f, err := StartFollower(context.Background(), e.cfg(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if hw := f.localHighWater(); hw < 4 {
		t.Fatalf("bootstrap installed no snapshot: high water %d", hw)
	}
	stepUntil(t, f, 7)
	assertSame(t, "snapshot bootstrap", dump(f.Session()), want)
}

// fakeSnap is a checkpointable object, so the workload emits CkptRecords
// whose blobs must travel beside the WAL segments.
type fakeSnap struct{ state []byte }

func (s *fakeSnap) Snapshot() ([]byte, error) { return append([]byte(nil), s.state...), nil }
func (s *fakeSnap) Restore(b []byte) error    { s.state = append([]byte(nil), b...); return nil }

func TestFollowerShipsCheckpointBlobs(t *testing.T) {
	e := newPrimaryEnv(t, flor.Options{Policy: replay.EveryN{N: 1}})
	obj := &fakeSnap{state: []byte("weights-0")}
	ck, err := e.sess.Checkpointing(map[string]flor.Snapshotter{"model": obj})
	if err != nil {
		t.Fatal(err)
	}
	for it := e.sess.Loop("epoch", 3); it.Next(); {
		obj.state = []byte(fmt.Sprintf("weights-%d", it.Index()))
		e.sess.Log("loss", it.Index())
	}
	if err := ck.Close(); err != nil {
		t.Fatal(err)
	}
	if err := e.sess.Commit("trained"); err != nil {
		t.Fatal(err)
	}
	want := dump(e.sess)
	if n := e.sess.Tables().ObjStore.Len(); n == 0 {
		t.Fatal("workload produced no checkpoint rows; test is vacuous")
	}

	f, err := StartFollower(context.Background(), e.cfg(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	stepUntil(t, f, primarySegments(t, e)[len(primarySegments(t, e))-1].Seq)
	assertSame(t, "checkpoint blobs", dump(f.Session()), want)
}

// TestFollowerKillMatrix kills the follower at every byte of every segment
// fetch and at each install/apply boundary, then restarts it and asserts
// the recovered replica equals the primary — the replica half of the PR 3
// crash matrix.
func TestFollowerKillMatrix(t *testing.T) {
	e := newPrimaryEnv(t, flor.Options{})
	e.commitN(3)
	want := dump(e.sess)
	segs := primarySegments(t, e)
	top := segs[len(segs)-1].Seq

	type killPoint struct {
		name string
		arm  func(h *Hooks, boom error)
	}
	var points []killPoint
	for _, sg := range segs {
		st, err := os.Stat(sg.Path)
		if err != nil {
			t.Fatal(err)
		}
		seq := sg.Seq
		for b := int64(1); b <= st.Size(); b++ {
			b := b
			points = append(points, killPoint{
				name: fmt.Sprintf("fetch seg%d byte%d", seq, b),
				arm: func(h *Hooks, boom error) {
					h.FetchChunk = func(kind string, s, n int64) error {
						if kind == "segment" && s == seq && n >= b {
							return boom
						}
						return nil
					}
				},
			})
		}
		points = append(points,
			killPoint{fmt.Sprintf("before install seg%d", seq), func(h *Hooks, boom error) {
				h.BeforeInstall = func(kind string, s int64) error {
					if kind == "segment" && s == seq {
						return boom
					}
					return nil
				}
			}},
			killPoint{fmt.Sprintf("after install seg%d", seq), func(h *Hooks, boom error) {
				h.AfterInstall = func(kind string, s int64) error {
					if kind == "segment" && s == seq {
						return boom
					}
					return nil
				}
			}},
			killPoint{fmt.Sprintf("after apply seg%d", seq), func(h *Hooks, boom error) {
				h.AfterApply = func(s int64) error {
					if s == seq {
						return boom
					}
					return nil
				}
			}},
		)
	}
	t.Logf("replica kill matrix: %d kill points", len(points))

	ctx := context.Background()
	boom := fmt.Errorf("injected follower kill")
	for _, kp := range points {
		fdir := t.TempDir()
		cfg := e.cfg(fdir)
		cfg.ChunkBytes = 1
		kp.arm(&cfg.Hooks, boom)
		f, err := StartFollower(ctx, cfg)
		if err != nil {
			t.Fatalf("%s: start: %v", kp.name, err)
		}
		killed := false
		for f.Applied() < top {
			if err := f.step(ctx); err != nil {
				killed = true
				break
			}
		}
		if !killed {
			t.Fatalf("%s: kill point never fired", kp.name)
		}
		if err := f.Close(); err != nil {
			t.Fatalf("%s: close: %v", kp.name, err)
		}

		// "Restart" the follower process: recovery + resumed catch-up.
		f2, err := StartFollower(ctx, e.cfg(fdir))
		if err != nil {
			t.Fatalf("%s: restart: %v", kp.name, err)
		}
		stepUntil(t, f2, top)
		assertSame(t, kp.name, dump(f2.Session()), want)
		f2.Close()
	}
}

// TestPrimaryKillMatrixAtSealBoundaries aborts primary-side compaction at
// each durable step (the seal/snapshot/delete boundaries), restarts the
// primary through recovery, and asserts a tailing follower stays equivalent
// throughout — including across the segment deletions a completed
// compaction performs.
func TestPrimaryKillMatrixAtSealBoundaries(t *testing.T) {
	boom := fmt.Errorf("injected primary kill")
	kills := []struct {
		name string
		arm  func(c *storage.Compactor)
	}{
		{"after snapshot write", func(c *storage.Compactor) { c.AfterSnapshotWrite = func() error { return boom } }},
		{"before rename", func(c *storage.Compactor) { c.BeforeRename = func() error { return boom } }},
		{"after rename", func(c *storage.Compactor) { c.AfterRename = func() error { return boom } }},
		{"before segment delete", func(c *storage.Compactor) { c.BeforeSegmentDelete = func() error { return boom } }},
	}
	for _, kill := range kills {
		t.Run(kill.name, func(t *testing.T) {
			e := newPrimaryEnv(t, flor.Options{})
			e.commitN(3)
			f, err := StartFollower(context.Background(), e.cfg(t.TempDir()))
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			stepUntil(t, f, 3)

			// Crash the primary mid-compaction at this boundary. The aborted
			// Compactor ran against the primary's real directory, so the
			// on-disk state is exactly what a kill there leaves behind.
			if err := e.sess.Close(); err != nil {
				t.Fatal(err)
			}
			w, err := storage.OpenWAL(e.walPath(), storage.Options{})
			if err != nil {
				t.Fatal(err)
			}
			blobs, err := storage.NewBlobStore(filepath.Join(e.dir, ".flor", "objects"))
			if err != nil {
				t.Fatal(err)
			}
			c := &storage.Compactor{WAL: w, Blobs: blobs}
			kill.arm(c)
			if _, err := c.Compact(); err != boom {
				t.Fatalf("kill point did not fire: %v", err)
			}
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}

			// Primary recovers and keeps committing; the follower must stay
			// equivalent across the crash and the retried compaction. A
			// restarted primary has lost its in-memory acks, so the follower
			// re-acks on its next poll before compaction reclaims segments
			// (RetainSegments covers followers that poll less often).
			e.open()
			e.commitN(2)
			stepUntil(t, f, 5)
			if _, err := f.fetchManifest(context.Background(), 0, 0); err != nil {
				t.Fatal(err)
			}
			if _, err := e.sess.Compact(); err != nil {
				t.Fatal(err)
			}
			e.commitN(1)
			top := primarySegments(t, e)[len(primarySegments(t, e))-1].Seq
			stepUntil(t, f, top)
			assertSame(t, kill.name, dump(f.Session()), dump(e.sess))
		})
	}
}

// TestFollowerRefusesSegmentGap fabricates a shrunken history — a sealed
// segment deleted out from under a follower that still needs it — and
// asserts the follower faults and refuses to serve instead of replaying
// around the hole.
func TestFollowerRefusesSegmentGap(t *testing.T) {
	e := newPrimaryEnv(t, flor.Options{})
	e.commitN(1)
	f, err := StartFollower(context.Background(), e.cfg(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	stepUntil(t, f, 1)

	e.commitN(2) // seals segments 2 and 3
	if err := os.Remove(storage.SegmentPath(e.walPath(), 2)); err != nil {
		t.Fatal(err)
	}

	err = f.step(context.Background())
	if err == nil {
		t.Fatal("follower accepted a history with a fabricated gap")
	}
	var fe *FaultError
	if !asFault(err, &fe) {
		t.Fatalf("gap produced %v, want a permanent FaultError", err)
	}
	if f.Gate() == nil {
		t.Fatal("faulted follower still admits reads")
	}
	assertServerRefuses(t, f)
}

// TestFollowerRefusesCRCMismatch corrupts a sealed segment in place (same
// size, different bytes) after its CRC entered the manifest, and asserts the
// follower's clean-fetch verification faults rather than applying it.
func TestFollowerRefusesCRCMismatch(t *testing.T) {
	e := newPrimaryEnv(t, flor.Options{})
	e.commitN(1)
	f, err := StartFollower(context.Background(), e.cfg(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	stepUntil(t, f, 1) // primes the primary's CRC cache for segment 1

	e.commitN(1)
	segPath := storage.SegmentPath(e.walPath(), 2)
	if _, err := f.fetchManifest(context.Background(), 0, 0); err != nil {
		t.Fatal(err) // primes the CRC cache for segment 2
	}
	data, err := os.ReadFile(segPath)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(segPath, data, 0o644); err != nil {
		t.Fatal(err)
	}

	err = f.step(context.Background())
	var fe *FaultError
	if err == nil || !asFault(err, &fe) {
		t.Fatalf("CRC mismatch produced %v, want a permanent FaultError", err)
	}
	if f.Gate() == nil {
		t.Fatal("faulted follower still admits reads")
	}
	assertServerRefuses(t, f)
}

func asFault(err error, fe **FaultError) bool {
	for err != nil {
		if f, ok := err.(*FaultError); ok {
			*fe = f
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

// assertServerRefuses mounts the replica behind the API server with the
// follower's gate and checks queries shed with 503 + Retry-After.
func assertServerRefuses(t *testing.T, f *Follower) {
	t.Helper()
	api := apiServer(t, f)
	resp, err := http.Get(api.URL + "/sql?q=SELECT+name+FROM+logs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("gated replica answered %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
}

func TestStalenessGateAndHealthz(t *testing.T) {
	e := newPrimaryEnv(t, flor.Options{})
	e.commitN(2)
	cfg := e.cfg(t.TempDir())
	cfg.MaxLagEpochs = 3
	cfg.MaxFetchAge = time.Hour
	f, err := StartFollower(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	stepUntil(t, f, 2)
	if err := f.Gate(); err != nil {
		t.Fatalf("caught-up replica gated: %v", err)
	}

	// Push the primary far ahead without letting the follower step; one
	// manifest observation updates the lag gauge past the bound.
	e.commitN(6)
	m, err := f.fetchManifest(context.Background(), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.primaryTs.Store(m.Tstamp)
	if err := f.Gate(); err == nil {
		t.Fatal("lagging replica not gated")
	}
	api := apiServer(t, f)
	resp, err := http.Get(api.URL + "/sql?q=SELECT+name+FROM+logs")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("lagging replica answered %d (Retry-After %q), want 503 with Retry-After", resp.StatusCode, resp.Header.Get("Retry-After"))
	}

	// /healthz is never gated and carries the replica gauges.
	hresp, err := http.Get(api.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	var h map[string]any
	if err := jsonDecode(hresp, &h); err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"replica_lag_epochs", "replica_last_fetch_unix", "repl_segments_shipped", "snapshot_pins"} {
		if _, ok := h[k]; !ok {
			t.Fatalf("/healthz missing %q: %v", k, h)
		}
	}

	// Catching up clears the gate.
	stepUntil(t, f, 8)
	if err := f.Gate(); err != nil {
		t.Fatalf("caught-up replica still gated: %v", err)
	}
}

func TestPromoteFlipsReplicaWritable(t *testing.T) {
	e := newPrimaryEnv(t, flor.Options{})
	e.commitN(3)
	fdir := t.TempDir()
	f, err := StartFollower(context.Background(), e.cfg(fdir))
	if err != nil {
		t.Fatal(err)
	}
	stepUntil(t, f, 3)
	wantTs := e.sess.Tstamp()

	if err := f.Promote(context.Background()); err != nil {
		t.Fatal(err)
	}
	sess := f.Session()
	if sess.ReadOnly() {
		t.Fatal("promoted session still read-only")
	}
	if sess.Tstamp() != wantTs {
		t.Fatalf("promoted at tstamp %d, want %d", sess.Tstamp(), wantTs)
	}
	sess.Log("post-promote", "yes")
	if err := sess.Commit("first write after failover"); err != nil {
		t.Fatalf("commit on promoted session: %v", err)
	}
	want := dump(sess)
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	// The promoted directory reopens as an ordinary writable project with
	// all replicated + new history, and refuses to re-open as a replica of
	// some other primary while it has an active tail.
	s2, err := flor.Open(fdir, "proj", flor.Options{})
	if err != nil {
		t.Fatal(err)
	}
	assertSame(t, "promoted history", dump(s2), want)
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := flor.OpenReplica(fdir, "proj", flor.Options{}); err == nil {
		t.Fatal("OpenReplica accepted a directory with a non-empty active WAL")
	}
}

func TestPromoteRefusesKnownUnappliedHistory(t *testing.T) {
	e := newPrimaryEnv(t, flor.Options{})
	e.commitN(2)
	f, err := StartFollower(context.Background(), e.cfg(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	stepUntil(t, f, 2)

	// The follower observes seal 3 but dies before fetching it; then the
	// primary becomes unreachable. Promotion must refuse: flipping now
	// would silently lose a commit the primary acked.
	e.commitN(1)
	m, err := f.fetchManifest(context.Background(), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.lastSeenMax.Store(m.MaxSeq())
	e.srv.Close() // primary gone
	if err := f.Promote(context.Background()); err == nil {
		t.Fatal("promote discarded observed-but-unapplied history")
	}
	if f.Session().ReadOnly() == false {
		t.Fatal("failed promote left the session writable")
	}
}

// TestRetentionFloorProtectsSlowFollower: with a live follower acked only
// through segment 1, primary compaction must retain segments 2.. even
// though the new snapshot covers them, and the follower must then catch up
// with no gap fault.
func TestRetentionFloorProtectsSlowFollower(t *testing.T) {
	e := newPrimaryEnv(t, flor.Options{})
	e.commitN(1)
	f, err := StartFollower(context.Background(), e.cfg(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	stepUntil(t, f, 1) // follower acks 1 and stalls

	e.commitN(3) // segments 2..4
	if _, err := e.sess.Compact(); err != nil {
		t.Fatal(err)
	}
	segs := primarySegments(t, e)
	if len(segs) == 0 || segs[0].Seq > 2 {
		t.Fatalf("compaction dropped segments a live follower needs: remaining %v", segs)
	}

	stepUntil(t, f, 4)
	assertSame(t, "slow follower catch-up", dump(f.Session()), dump(e.sess))

	// Once acks advance, the floor moves and compaction may reclaim.
	if _, err := f.fetchManifest(context.Background(), 0, 0); err != nil {
		t.Fatal(err)
	}
	if floor := e.prim.RetainFloor(); floor != 5 {
		t.Fatalf("retention floor = %d, want 5", floor)
	}
}

// TestRetainSegmentsKeepsCatchUpWindow: Options.RetainSegments keeps the
// newest N covered segments for followers that have not connected yet.
func TestRetainSegmentsKeepsCatchUpWindow(t *testing.T) {
	e := newPrimaryEnv(t, flor.Options{RetainSegments: 2})
	e.commitN(4)
	if _, err := e.sess.Compact(); err != nil {
		t.Fatal(err)
	}
	segs := primarySegments(t, e)
	var got []int64
	for _, sg := range segs {
		got = append(got, sg.Seq)
	}
	if len(got) != 2 || got[0] != 3 || got[1] != 4 {
		t.Fatalf("retained segments %v, want [3 4]", got)
	}
}

func TestManifestLongPollWakesOnSeal(t *testing.T) {
	e := newPrimaryEnv(t, flor.Options{})
	e.commitN(1)
	f, err := StartFollower(context.Background(), e.cfg(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	stepUntil(t, f, 1)

	done := make(chan *Manifest, 1)
	go func() {
		m, err := f.fetchManifest(context.Background(), 1, 5*time.Second)
		if err != nil {
			done <- nil
			return
		}
		done <- m
	}()
	time.Sleep(50 * time.Millisecond)
	e.commitN(1)
	select {
	case m := <-done:
		if m == nil || m.MaxSeq() < 2 {
			t.Fatalf("long poll returned %+v, want a manifest with segment 2", m)
		}
	case <-time.After(4 * time.Second):
		t.Fatal("long poll did not wake on the new seal")
	}
}

func TestBackoff(t *testing.T) {
	b := Backoff{Min: 100 * time.Millisecond, Max: time.Second, Factor: 2, Jitter: 0}
	var got []time.Duration
	for i := 0; i < 6; i++ {
		got = append(got, b.Next())
	}
	want := []time.Duration{100, 200, 400, 800, 1000, 1000}
	for i := range want {
		if got[i] != want[i]*time.Millisecond {
			t.Fatalf("delay %d = %v, want %v", i, got[i], want[i]*time.Millisecond)
		}
	}
	b.Reset()
	if d := b.Next(); d != 100*time.Millisecond {
		t.Fatalf("after reset: %v, want 100ms", d)
	}

	j := Backoff{Min: 100 * time.Millisecond, Max: time.Second, Jitter: 0.5}
	for i := 0; i < 50; i++ {
		d := j.Next()
		if d < 100*time.Millisecond || d > 1500*time.Millisecond {
			t.Fatalf("jittered delay %v outside [Min, Max*1.25]", d)
		}
	}
}

// TestReplicaEqualsPrimaryProperty is the randomized equivalence property:
// random commit/compact/kill interleavings on the primary while a follower
// tails throughout (dying and restarting at random), ending in full-table
// multiset equality. Run under -race.
func TestReplicaEqualsPrimaryProperty(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			// RetainSegments keeps the catch-up window open across the
			// stretches where the restarting follower is not acking.
			e := newPrimaryEnv(t, flor.Options{RetainSegments: 256})

			fdir := t.TempDir()
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			// kill joins the Run goroutine before Close: a canceled-but-live
			// follower can still install a fetched segment into fdir, and a
			// successor starting concurrently would count that segment as
			// applied (localHighWater) without its recovery having replayed
			// it — one follower per directory at a time, like the flock
			// discipline guarantees across processes.
			start := func() (*Follower, context.CancelFunc, chan struct{}) {
				fctx, fcancel := context.WithCancel(ctx)
				f, err := StartFollower(fctx, e.cfg(fdir))
				if err != nil {
					t.Fatal(err)
				}
				done := make(chan struct{})
				go func() { defer close(done); f.Run(fctx) }()
				return f, fcancel, done
			}
			f, fcancel, fdone := start()

			for op := 0; op < 40; op++ {
				switch r := rng.Intn(10); {
				case r < 6: // commit a burst
					e.commitN(1 + rng.Intn(3))
				case r < 8: // compact (seals + snapshots + prunes)
					if _, err := e.sess.Compact(); err != nil {
						t.Fatal(err)
					}
				case r < 9: // kill + restart the follower
					fcancel()
					<-fdone
					if err := f.Close(); err != nil {
						t.Fatal(err)
					}
					f, fcancel, fdone = start()
				default: // kill + recover the primary
					e.restart()
				}
			}
			// Seal the tail so every commit is shippable, then wait for the
			// follower to drain the history.
			if _, err := e.sess.Compact(); err != nil {
				t.Fatal(err)
			}
			want := dump(e.sess)
			top := int64(0)
			if segs := primarySegments(t, e); len(segs) > 0 {
				top = segs[len(segs)-1].Seq
			}
			if snaps, err := storage.ListSnapshots(e.walPath()); err == nil && len(snaps) > 0 {
				if s := snaps[len(snaps)-1].Seq; s > top {
					top = s
				}
			}
			deadline := time.Now().Add(30 * time.Second)
			for f.Applied() < top {
				if err := f.Fault(); err != nil {
					t.Fatalf("follower faulted: %v", err)
				}
				if time.Now().After(deadline) {
					t.Fatalf("follower stuck at %d, want %d", f.Applied(), top)
				}
				time.Sleep(10 * time.Millisecond)
			}
			fcancel()
			<-fdone
			got := dump(f.Session())
			assertSame(t, fmt.Sprintf("seed %d", seed), got, want)
			if err := f.Close(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// apiServer mounts the replica session behind the HTTP API with the
// follower's gate and health hooks, as `flordb serve --replicate-from` does.
func apiServer(t *testing.T, f *Follower) *httptest.Server {
	t.Helper()
	api := server.New(f.Session(), server.Config{
		Gate:   f.Gate,
		Health: f.Health,
	})
	srv := httptest.NewServer(api)
	t.Cleanup(srv.Close)
	return srv
}

func jsonDecode(resp *http.Response, v any) error {
	return json.NewDecoder(resp.Body).Decode(v)
}
