package repl

import (
	"encoding/json"
	"math"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	flor "flordb"
	"flordb/internal/storage"
)

// Primary serves a session's sealed WAL segments, snapshots, and checkpoint
// blobs to followers, and tracks follower acks so compaction never deletes
// a segment a live follower still needs.
//
// All served files are immutable: the active WAL file is never shipped, so
// the primary needs no coordination with committers beyond reading the
// directory listing. CRCs are computed once per (seq, size) and cached.
type Primary struct {
	sess *flor.Session
	// FollowerTTL bounds how long a silent follower pins segments via the
	// retention floor (default 30s). A follower that has not polled within
	// the TTL is presumed dead; RetainSegments still gives late joiners a
	// catch-up window.
	FollowerTTL time.Duration
	// LongPollInterval is how often a long-polling manifest request rechecks
	// the directory for new seals (default 200ms).
	LongPollInterval time.Duration

	blobs *storage.BlobStore

	mu        sync.Mutex
	followers map[string]followerAck
	crcs      map[int64]crcEntry  // sealed-segment CRC cache
	snapCRCs  map[string]crcEntry // snapshot CRC cache, keyed by path

	shipped atomic.Int64 // segments fully streamed to a follower
}

type followerAck struct {
	acked int64 // highest segment seq the follower has applied
	epoch int64 // highest commit epoch the follower has applied
	seen  time.Time
}

type crcEntry struct {
	size int64
	crc  uint32
}

// NewPrimary builds the shipping service for a writable session and installs
// its retention floor on the session's compactor, so `SetRetainFloor` keeps
// unshipped segments alive.
func NewPrimary(sess *flor.Session, blobs *storage.BlobStore) *Primary {
	p := &Primary{
		sess:      sess,
		blobs:     blobs,
		followers: make(map[string]followerAck),
		crcs:      make(map[int64]crcEntry),
		snapCRCs:  make(map[string]crcEntry),
	}
	sess.SetRetainFloor(p.RetainFloor)
	sess.SetEpochAckFloor(p.EpochFloor)
	return p
}

// SegmentsShipped reports how many segment downloads completed.
func (p *Primary) SegmentsShipped() int64 { return p.shipped.Load() }

// Health merges the primary's replication gauges into a /healthz payload.
func (p *Primary) Health(h map[string]any) {
	p.mu.Lock()
	live := 0
	ttl := p.followerTTL()
	for _, f := range p.followers {
		if time.Since(f.seen) <= ttl {
			live++
		}
	}
	p.mu.Unlock()
	h["repl_segments_shipped"] = p.shipped.Load()
	h["repl_followers"] = live
}

func (p *Primary) followerTTL() time.Duration {
	if p.FollowerTTL > 0 {
		return p.FollowerTTL
	}
	return 30 * time.Second
}

func (p *Primary) pollInterval() time.Duration {
	if p.LongPollInterval > 0 {
		return p.LongPollInterval
	}
	return 200 * time.Millisecond
}

// RetainFloor returns the lowest sealed-segment sequence a fresh follower
// has not yet acked (acked+1), or MaxInt64 when no fresh follower exists —
// the contract Session.SetRetainFloor expects.
func (p *Primary) RetainFloor() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	floor := int64(math.MaxInt64)
	ttl := p.followerTTL()
	for id, f := range p.followers {
		if time.Since(f.seen) > ttl {
			delete(p.followers, id)
			continue
		}
		if f.acked+1 < floor {
			floor = f.acked + 1
		}
	}
	return floor
}

// EpochFloor returns the lowest commit epoch a fresh follower has applied,
// or MaxInt64 when no fresh follower exists — the contract
// Session.SetEpochAckFloor expects. Epoch-retention GC clamps to it so
// history a lagging replica still needs for AS OF answers is not reclaimed
// out from under it.
func (p *Primary) EpochFloor() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	floor := int64(math.MaxInt64)
	ttl := p.followerTTL()
	for id, f := range p.followers {
		if time.Since(f.seen) > ttl {
			delete(p.followers, id)
			continue
		}
		if f.epoch < floor {
			floor = f.epoch
		}
	}
	return floor
}

// recordAck notes a follower poll: its identity, its applied-through
// sequence and epoch, and freshness for the retention floors.
func (p *Primary) recordAck(id string, acked, epoch int64) {
	if id == "" {
		return
	}
	p.mu.Lock()
	p.followers[id] = followerAck{acked: acked, epoch: epoch, seen: time.Now()}
	p.mu.Unlock()
}

// Routes returns the handler serving the /repl/ endpoints; mount it on the
// API server with Server.Handle("/repl/", p.Routes()).
func (p *Primary) Routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc(PathManifest, p.handleManifest)
	mux.HandleFunc(PathSegment, p.handleSegment)
	mux.HandleFunc(PathSnapshot, p.handleSnapshot)
	mux.HandleFunc(PathBlob, p.handleBlob)
	return mux
}

// buildManifest lists the sealed segments and newest snapshot with cached
// CRCs. Listing and stamping race benignly with sealing and compaction: a
// file deleted between list and stat is simply dropped from the manifest,
// and a follower always re-validates against a fresh manifest on retry.
func (p *Primary) buildManifest() (*Manifest, error) {
	walPath := p.sess.WALPath()
	segs, err := storage.ListSegments(walPath)
	if err != nil {
		return nil, err
	}
	m := &Manifest{Project: p.sess.ProjID, Tstamp: p.sess.Tstamp()}
	for _, sg := range segs {
		e, err := p.stampSegment(sg)
		if err != nil {
			continue // deleted mid-listing; the next poll re-lists
		}
		m.Segments = append(m.Segments, e)
	}
	snaps, err := storage.ListSnapshots(walPath)
	if err != nil {
		return nil, err
	}
	if len(snaps) > 0 {
		newest := snaps[len(snaps)-1]
		if e, err := p.stampSnapshot(newest); err == nil {
			m.Snapshot = &e
		}
	}
	return m, nil
}

func (p *Primary) stampSegment(sg storage.Segment) (FileEntry, error) {
	p.mu.Lock()
	if c, ok := p.crcs[sg.Seq]; ok {
		p.mu.Unlock()
		return FileEntry{Seq: sg.Seq, Size: c.size, CRC32C: c.crc}, nil
	}
	p.mu.Unlock()
	crc, size, err := storage.FileCRC32C(sg.Path)
	if err != nil {
		return FileEntry{}, err
	}
	p.mu.Lock()
	p.crcs[sg.Seq] = crcEntry{size: size, crc: crc}
	p.mu.Unlock()
	return FileEntry{Seq: sg.Seq, Size: size, CRC32C: crc}, nil
}

func (p *Primary) stampSnapshot(sf storage.SnapshotFile) (FileEntry, error) {
	p.mu.Lock()
	if c, ok := p.snapCRCs[sf.Path]; ok {
		p.mu.Unlock()
		return FileEntry{Seq: sf.Seq, Size: c.size, CRC32C: c.crc}, nil
	}
	p.mu.Unlock()
	crc, size, err := storage.FileCRC32C(sf.Path)
	if err != nil {
		return FileEntry{}, err
	}
	p.mu.Lock()
	p.snapCRCs[sf.Path] = crcEntry{size: size, crc: crc}
	p.mu.Unlock()
	return FileEntry{Seq: sf.Seq, Size: size, CRC32C: crc}, nil
}

// handleManifest serves GET /repl/manifest. Query parameters:
//
//	follower=id  — follower identity for ack tracking
//	acked=N      — highest segment the follower has applied (retention floor)
//	epoch=E      — highest commit epoch the follower has applied (GC floor)
//	have=N       — long-poll: block until a segment with Seq > N is sealed
//	wait_ms=M    — long-poll budget (capped at 30s; 0 = answer immediately)
func (p *Primary) handleManifest(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	if acked, err := strconv.ParseInt(q.Get("acked"), 10, 64); err == nil {
		epoch, eerr := strconv.ParseInt(q.Get("epoch"), 10, 64)
		if eerr != nil {
			// Pre-epoch follower: report MaxInt64 so it never drags the GC
			// floor (segment retention still protects its catch-up).
			epoch = math.MaxInt64
		}
		p.recordAck(q.Get("follower"), acked, epoch)
	}
	have, _ := strconv.ParseInt(q.Get("have"), 10, 64)
	waitMs, _ := strconv.ParseInt(q.Get("wait_ms"), 10, 64)
	if waitMs > 30_000 {
		waitMs = 30_000
	}
	deadline := time.Now().Add(time.Duration(waitMs) * time.Millisecond)
	for {
		m, err := p.buildManifest()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		if m.MaxSeq() > have || waitMs <= 0 || !time.Now().Before(deadline) {
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(m)
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-time.After(p.pollInterval()):
		}
	}
}

// handleSegment streams one sealed segment. http.ServeFile supplies Range
// support (resumable fetches); the full-file CRC and size ride in headers so
// the follower can verify the assembled file whatever ranges built it.
func (p *Primary) handleSegment(w http.ResponseWriter, r *http.Request) {
	seq, err := strconv.ParseInt(r.URL.Query().Get("seq"), 10, 64)
	if err != nil || seq <= 0 {
		http.Error(w, "bad or missing ?seq", http.StatusBadRequest)
		return
	}
	sg := storage.Segment{Seq: seq, Path: storage.SegmentPath(p.sess.WALPath(), seq)}
	e, err := p.stampSegment(sg)
	if err != nil {
		http.Error(w, "no such segment", http.StatusNotFound)
		return
	}
	p.serveFile(w, r, sg.Path, e)
	p.shipped.Add(1)
}

// handleSnapshot streams one table snapshot by coverage sequence.
func (p *Primary) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	seq, err := strconv.ParseInt(r.URL.Query().Get("seq"), 10, 64)
	if err != nil || seq <= 0 {
		http.Error(w, "bad or missing ?seq", http.StatusBadRequest)
		return
	}
	path := storage.SnapshotPath(p.sess.WALPath(), seq)
	e, err := p.stampSnapshot(storage.SnapshotFile{Seq: seq, Path: path})
	if err != nil {
		http.Error(w, "no such snapshot", http.StatusNotFound)
		return
	}
	p.serveFile(w, r, path, e)
}

func (p *Primary) serveFile(w http.ResponseWriter, r *http.Request, path string, e FileEntry) {
	w.Header().Set(headerCRC, strconv.FormatUint(uint64(e.CRC32C), 10))
	w.Header().Set(headerSize, strconv.FormatInt(e.Size, 10))
	w.Header().Set("Content-Type", "application/octet-stream")
	http.ServeFile(w, r, path)
}

// handleBlob streams one checkpoint blob by its content hash. The key is
// the sha256 of the content, so the follower re-derives it on Put and gets
// integrity verification for free — no extra CRC needed.
func (p *Primary) handleBlob(w http.ResponseWriter, r *http.Request) {
	key := r.URL.Query().Get("key")
	if key == "" {
		http.Error(w, "missing ?key", http.StatusBadRequest)
		return
	}
	if p.blobs == nil {
		http.Error(w, "no blob store", http.StatusNotFound)
		return
	}
	data, err := p.blobs.Get(key)
	if err != nil {
		http.Error(w, "no such blob", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(data)
}
