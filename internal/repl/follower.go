package repl

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	flor "flordb"
	"flordb/internal/record"
	"flordb/internal/storage"
)

// Hooks are crash-injection points for the replica kill matrix: each hook
// may return an error to abort at exactly that step, simulating a follower
// killed mid-fetch, mid-install, or mid-apply. All nil in production.
type Hooks struct {
	// FetchChunk fires after each chunk of a fetched file hits the temp
	// file; bytesSoFar counts from the start of the file, including any
	// resumed prefix.
	FetchChunk func(kind string, seq int64, bytesSoFar int64) error
	// BeforeInstall fires once the temp file is complete and fsynced, before
	// the rename into place.
	BeforeInstall func(kind string, seq int64) error
	// AfterInstall fires after the rename + directory sync, before the
	// segment is replayed into the replica's tables.
	AfterInstall func(kind string, seq int64) error
	// AfterApply fires after a segment's epochs are published.
	AfterApply func(seq int64) error
}

// FollowerConfig configures a tailing replica.
type FollowerConfig struct {
	PrimaryURL string // base URL of the primary's API server
	Dir        string // local project directory (mirrors the primary's layout)
	ProjID     string
	FollowerID string // identity reported for ack tracking (default: host:dir derived)

	// MaxLagEpochs bounds staleness by logical distance: when the primary's
	// tstamp leads the replica's by more than this, Gate refuses reads with
	// 503 until catch-up. 0 = no bound.
	MaxLagEpochs int64
	// MaxFetchAge bounds staleness by time since the last successful primary
	// contact. 0 = no bound.
	MaxFetchAge time.Duration
	// PollWait is the long-poll budget per manifest request (default 10s).
	PollWait time.Duration
	// ChunkBytes sizes fetch copy chunks (default 256KiB; tests use 1 to
	// exercise per-byte kill points).
	ChunkBytes int
	Backoff    Backoff
	Client     *http.Client
	Logf       func(format string, args ...any) // replication progress log (nil = silent)
	Open       flor.Options                     // options for the replica session
	Hooks      Hooks
}

// Follower tails a primary: it bootstraps from the primary's newest snapshot
// when the local directory is empty, then fetches, verifies, installs, and
// applies each newly sealed segment, publishing MVCC epochs as it goes. All
// durable state lands in the same file layout the primary uses, so crash
// recovery is the ordinary session-open path.
type Follower struct {
	cfg     FollowerConfig
	sess    *flor.Session
	blobs   *storage.BlobStore
	walPath string

	applied     atomic.Int64 // highest segment replayed into tables
	lastSeenMax atomic.Int64 // highest seal ever observed in a manifest
	primaryTs   atomic.Int64 // primary's tstamp at the last manifest
	lastFetch   atomic.Int64 // unix seconds of the last successful primary contact
	fetched     atomic.Int64 // segments fetched + applied by this process

	mu    sync.Mutex
	fault error // permanent fault; serving is refused once set
}

// StartFollower bootstraps (seeding from the primary's snapshot when the
// local directory holds no history yet) and opens the replica session. The
// returned Follower is not yet tailing — call Run.
func StartFollower(ctx context.Context, cfg FollowerConfig) (*Follower, error) {
	if cfg.PrimaryURL == "" {
		return nil, errors.New("repl: follower needs a primary URL")
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{}
	}
	if cfg.PollWait <= 0 {
		cfg.PollWait = 10 * time.Second
	}
	if cfg.ChunkBytes <= 0 {
		cfg.ChunkBytes = 256 << 10
	}
	if cfg.FollowerID == "" {
		host, _ := os.Hostname()
		cfg.FollowerID = host + ":" + cfg.Dir
	}
	florDir := filepath.Join(cfg.Dir, ".flor")
	if err := os.MkdirAll(florDir, 0o755); err != nil {
		return nil, fmt.Errorf("repl: %w", err)
	}
	f := &Follower{cfg: cfg, walPath: filepath.Join(florDir, "flor.wal")}

	blobs, err := storage.NewBlobStore(filepath.Join(florDir, "objects"))
	if err != nil {
		return nil, err
	}
	f.blobs = blobs

	if err := f.bootstrap(ctx); err != nil {
		return nil, err
	}
	sess, err := flor.OpenReplica(cfg.Dir, cfg.ProjID, cfg.Open)
	if err != nil {
		return nil, err
	}
	f.sess = sess
	f.applied.Store(f.localHighWater())
	return f, nil
}

// Session exposes the replica session for serving reads (and for Promote).
func (f *Follower) Session() *flor.Session { return f.sess }

// Applied returns the highest segment sequence replayed into the replica.
func (f *Follower) Applied() int64 { return f.applied.Load() }

// SegmentsFetched returns how many segments this process fetched and applied.
func (f *Follower) SegmentsFetched() int64 { return f.fetched.Load() }

// Close closes the replica session.
func (f *Follower) Close() error { return f.sess.Close() }

// Fault returns the permanent replication fault, if any.
func (f *Follower) Fault() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.fault
}

func (f *Follower) setFault(err error) {
	f.mu.Lock()
	if f.fault == nil {
		f.fault = err
	}
	f.mu.Unlock()
}

func (f *Follower) logf(format string, args ...any) {
	if f.cfg.Logf != nil {
		f.cfg.Logf(format, args...)
	}
}

// Lag returns the replica's logical distance behind the primary as of the
// last manifest (0 before first contact, never negative).
func (f *Follower) Lag() int64 {
	lag := f.primaryTs.Load() - f.sess.Tstamp()
	if lag < 0 {
		lag = 0
	}
	return lag
}

// Gate is the staleness bound for the serving path: it refuses reads (the
// server turns the error into 503 + Retry-After) when the replica is
// permanently faulted, lagging beyond MaxLagEpochs, or out of contact
// longer than MaxFetchAge.
func (f *Follower) Gate() error {
	if err := f.Fault(); err != nil {
		return err
	}
	if f.cfg.MaxLagEpochs > 0 {
		if lag := f.Lag(); lag > f.cfg.MaxLagEpochs {
			return fmt.Errorf("replica lagging %d epochs behind primary (max %d)", lag, f.cfg.MaxLagEpochs)
		}
	}
	if f.cfg.MaxFetchAge > 0 {
		last := f.lastFetch.Load()
		if last == 0 {
			return errors.New("replica has not contacted the primary yet")
		}
		if age := time.Since(time.Unix(last, 0)); age > f.cfg.MaxFetchAge {
			return fmt.Errorf("replica out of contact with primary for %v (max %v)", age.Round(time.Second), f.cfg.MaxFetchAge)
		}
	}
	return nil
}

// Health merges the replica gauges into a /healthz payload.
func (f *Follower) Health(h map[string]any) {
	h["replica"] = true
	h["replica_lag_epochs"] = f.Lag()
	h["replica_last_fetch_unix"] = f.lastFetch.Load()
	h["repl_segments_shipped"] = f.fetched.Load()
	h["repl_applied_seq"] = f.applied.Load()
}

// localHighWater returns the highest history sequence already installed
// locally: the newest snapshot's coverage or the newest sealed segment,
// whichever is higher. OpenReplica has already verified contiguity.
func (f *Follower) localHighWater() int64 {
	var hw int64
	if segs, err := storage.ListSegments(f.walPath); err == nil && len(segs) > 0 {
		hw = segs[len(segs)-1].Seq
	}
	if snaps, err := storage.ListSnapshots(f.walPath); err == nil && len(snaps) > 0 {
		if s := snaps[len(snaps)-1].Seq; s > hw {
			hw = s
		}
	}
	return hw
}

// bootstrap seeds an empty local directory from the primary's newest
// snapshot, so a cold follower starts O(live data) behind instead of
// replaying total history. A directory that already holds history skips
// straight to tailing. Retries with backoff until the primary answers or
// ctx expires.
func (f *Follower) bootstrap(ctx context.Context) error {
	if f.localHighWater() > 0 {
		return nil
	}
	bo := f.cfg.Backoff
	for {
		m, err := f.fetchManifest(ctx, 0, 0)
		if err == nil {
			if m.Snapshot == nil {
				return nil // young primary: full history fits in segments
			}
			return f.fetchAndInstall(ctx, "snapshot", m.Snapshot.Seq,
				storage.SnapshotPath(f.walPath, m.Snapshot.Seq), *m.Snapshot, PathSnapshot)
		}
		var fe *FaultError
		if errors.As(err, &fe) {
			return err
		}
		d := bo.Next()
		f.logf("repl: bootstrap: %v (retrying in %v)", err, d.Round(time.Millisecond))
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(d):
		}
	}
}

// Run tails the primary until ctx is canceled or a permanent fault is hit.
// Transient errors (network, primary restarting) retry with jittered
// exponential backoff; any successful step resets the streak.
func (f *Follower) Run(ctx context.Context) error {
	bo := f.cfg.Backoff
	// The first poll returns immediately instead of long-polling, so a
	// freshly started replica establishes contact (and its lag gauge, which
	// gates reads) without waiting out a full PollWait.
	wait := time.Duration(0)
	for {
		if ctx.Err() != nil {
			return nil
		}
		if err := f.Fault(); err != nil {
			return err
		}
		err := f.stepWait(ctx, wait)
		wait = f.cfg.PollWait
		if err == nil {
			bo.Reset()
			continue
		}
		var fe *FaultError
		if errors.As(err, &fe) {
			f.logf("repl: %v", err)
			return err
		}
		if ctx.Err() != nil {
			return nil
		}
		d := bo.Next()
		f.logf("repl: follower: %v (retrying in %v)", err, d.Round(time.Millisecond))
		select {
		case <-ctx.Done():
			return nil
		case <-time.After(d):
		}
	}
}

// step performs one long-poll + catch-up cycle. A permanent fault is
// recorded here (not in Run) so the replica starts refusing reads no matter
// what drives the loop.
func (f *Follower) step(ctx context.Context) error {
	return f.stepWait(ctx, f.cfg.PollWait)
}

func (f *Follower) stepWait(ctx context.Context, wait time.Duration) error {
	m, err := f.fetchManifest(ctx, f.applied.Load(), wait)
	if err != nil {
		return err
	}
	err = f.catchUp(ctx, m)
	var fe *FaultError
	if errors.As(err, &fe) {
		f.setFault(err)
	}
	return err
}

// catchUp fetches and applies every sealed segment the manifest lists past
// the replica's applied high-water mark, verifying contiguity: needing
// segment N and being offered only newer ones means the primary compacted
// away history this replica never saw, and serving from the resulting state
// would silently drop committed transactions — a permanent fault instead.
func (f *Follower) catchUp(ctx context.Context, m *Manifest) error {
	if m.Project != f.cfg.ProjID {
		return faultf("primary serves project %q, follower replicates %q", m.Project, f.cfg.ProjID)
	}
	if ts := f.sess.Tstamp(); m.Tstamp < ts {
		return faultf("primary at tstamp %d has less history than this replica at %d; refusing to follow a shrunken history", m.Tstamp, ts)
	}
	if mx := m.MaxSeq(); mx > f.lastSeenMax.Load() {
		f.lastSeenMax.Store(mx)
	}
	f.primaryTs.Store(m.Tstamp)
	f.lastFetch.Store(time.Now().Unix())

	for next := f.applied.Load() + 1; next <= m.MaxSeq(); next++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		entry, ok := findSeq(m.Segments, next)
		if !ok {
			return faultf("segment gap: replica needs segment %d but the primary now starts at %d — history was compacted past this replica", next, m.MinSeq())
		}
		if err := f.replicateSegment(ctx, entry); err != nil {
			return err
		}
		f.applied.Store(next)
		f.fetched.Add(1)
		f.lastFetch.Store(time.Now().Unix())
		f.logf("repl: applied segment %d (tstamp %d)", next, f.sess.Tstamp())
	}
	return nil
}

func findSeq(entries []FileEntry, seq int64) (FileEntry, bool) {
	for _, e := range entries {
		if e.Seq == seq {
			return e, true
		}
	}
	return FileEntry{}, false
}

// replicateSegment runs the fetch → verify → install → prefetch-blobs →
// apply pipeline for one sealed segment.
func (f *Follower) replicateSegment(ctx context.Context, e FileEntry) error {
	dst := storage.SegmentPath(f.walPath, e.Seq)
	if err := f.fetchAndInstall(ctx, "segment", e.Seq, dst, e, PathSegment); err != nil {
		return err
	}
	// Checkpoint records reference blobs by content hash; the blob bytes
	// travel outside the WAL. Fetch what the segment needs before applying,
	// or the replica's obj_store would silently miss rows the primary has.
	if err := f.prefetchBlobs(ctx, dst); err != nil {
		return err
	}
	if err := f.sess.ApplyReplicatedSegment(e.Seq); err != nil {
		// The installed file passed CRC but does not replay cleanly (torn
		// or tampered content that happens to checksum): never serveable.
		return faultf("segment %d installed but failed to apply: %v", e.Seq, err)
	}
	if f.cfg.Hooks.AfterApply != nil {
		if err := f.cfg.Hooks.AfterApply(e.Seq); err != nil {
			return err
		}
	}
	return nil
}

// fetchAndInstall downloads one immutable file into place with the same
// durability discipline the primary's own writers use: temp file, fsync,
// rename, directory fsync. Partial temp files resume with a Range request;
// the assembled file must match the manifest's size and CRC-32C. A mismatch
// after a resumed fetch gets one clean full refetch (the local partial may
// have been torn by a crash); a mismatch on a clean fetch — or twice — is a
// permanent fault.
func (f *Follower) fetchAndInstall(ctx context.Context, kind string, seq int64, dst string, want FileEntry, wirePath string) error {
	if st, err := os.Stat(dst); err == nil {
		// Already installed (crash between install and apply, or a re-run).
		// Immutability means it must match the manifest exactly.
		crc, _, cerr := storage.FileCRC32C(dst)
		if cerr == nil && st.Size() == want.Size && crc == want.CRC32C {
			return nil
		}
		return faultf("%s %d already exists locally but does not match the primary (size %d vs %d): immutable history diverged", kind, seq, st.Size(), want.Size)
	}
	tmp := dst + ".repltmp"
	resumed, err := f.fetchToTemp(ctx, kind, seq, tmp, want, wirePath, true)
	if err != nil {
		return err
	}
	ok, err := verifyFile(tmp, want)
	if err != nil {
		return err
	}
	if !ok && resumed {
		// The resumed-over partial may be torn; one full refetch heals it.
		if err := os.Remove(tmp); err != nil {
			return fmt.Errorf("repl: drop torn temp: %w", err)
		}
		if _, err := f.fetchToTemp(ctx, kind, seq, tmp, want, wirePath, false); err != nil {
			return err
		}
		if ok, err = verifyFile(tmp, want); err != nil {
			return err
		}
	}
	if !ok {
		os.Remove(tmp)
		return faultf("%s %d: CRC mismatch against the primary's manifest after a clean fetch — corrupt transfer or tampered history", kind, seq)
	}
	if err := fsyncFile(tmp); err != nil {
		return err
	}
	if f.cfg.Hooks.BeforeInstall != nil {
		if err := f.cfg.Hooks.BeforeInstall(kind, seq); err != nil {
			return err
		}
	}
	if err := os.Rename(tmp, dst); err != nil {
		return fmt.Errorf("repl: install %s %d: %w", kind, seq, err)
	}
	if err := storage.SyncDir(filepath.Dir(dst)); err != nil {
		return err
	}
	if f.cfg.Hooks.AfterInstall != nil {
		if err := f.cfg.Hooks.AfterInstall(kind, seq); err != nil {
			return err
		}
	}
	return nil
}

// fetchToTemp streams one file into tmp, resuming from an existing partial
// when allowResume is set. It reports whether the fetch resumed.
func (f *Follower) fetchToTemp(ctx context.Context, kind string, seq int64, tmp string, want FileEntry, wirePath string, allowResume bool) (resumed bool, err error) {
	var start int64
	if allowResume {
		if st, serr := os.Stat(tmp); serr == nil {
			if st.Size() == want.Size {
				// A crash after the last byte left a complete temp file;
				// asking for bytes=size- would only earn a 416. Skip the
				// fetch — verification decides whether it's usable.
				return true, nil
			}
			if st.Size() > 0 && st.Size() < want.Size {
				start = st.Size()
			} else if rerr := os.Remove(tmp); rerr != nil {
				return false, fmt.Errorf("repl: drop oversized temp: %w", rerr)
			}
		}
	}
	u := f.cfg.PrimaryURL + wirePath + "?seq=" + strconv.FormatInt(seq, 10)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return false, err
	}
	if start > 0 {
		req.Header.Set("Range", "bytes="+strconv.FormatInt(start, 10)+"-")
	}
	resp, err := f.cfg.Client.Do(req)
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		start = 0 // server ignored the range; restart the file
	case http.StatusPartialContent:
	case http.StatusNotFound:
		return false, fmt.Errorf("repl: primary no longer has %s %d", kind, seq)
	default:
		return false, fmt.Errorf("repl: fetch %s %d: %s", kind, seq, resp.Status)
	}
	flags := os.O_CREATE | os.O_WRONLY
	if start > 0 {
		flags |= os.O_APPEND
	} else {
		flags |= os.O_TRUNC
	}
	out, err := os.OpenFile(tmp, flags, 0o644)
	if err != nil {
		return false, err
	}
	written := start
	buf := make([]byte, f.cfg.ChunkBytes)
	for {
		n, rerr := resp.Body.Read(buf)
		if n > 0 {
			if _, werr := out.Write(buf[:n]); werr != nil {
				out.Close()
				return start > 0, werr
			}
			written += int64(n)
			if f.cfg.Hooks.FetchChunk != nil {
				if herr := f.cfg.Hooks.FetchChunk(kind, seq, written); herr != nil {
					out.Close()
					return start > 0, herr
				}
			}
		}
		if rerr == io.EOF {
			break
		}
		if rerr != nil {
			out.Close()
			return start > 0, rerr
		}
	}
	if err := out.Close(); err != nil {
		return start > 0, err
	}
	return start > 0, nil
}

func verifyFile(path string, want FileEntry) (bool, error) {
	crc, size, err := storage.FileCRC32C(path)
	if err != nil {
		return false, err
	}
	return size == want.Size && crc == want.CRC32C, nil
}

func fsyncFile(path string) error {
	fd, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return err
	}
	if err := fd.Sync(); err != nil {
		fd.Close()
		return fmt.Errorf("repl: fsync %s: %w", path, err)
	}
	return fd.Close()
}

// prefetchBlobs scans an installed (not yet applied) segment for checkpoint
// records whose blob the local store lacks and fetches them. The blob key is
// the content's sha256, so Put re-deriving a different key than requested
// means the primary served corrupt bytes — a fault, since applying without
// the blob would silently drop checkpoint state.
func (f *Follower) prefetchBlobs(ctx context.Context, segPath string) error {
	var keys []string
	err := storage.Replay(segPath, false, func(rec any) error {
		if ck, ok := rec.(*record.CkptRecord); ok && ck.BlobKey != "" && !f.blobs.Has(ck.BlobKey) {
			keys = append(keys, ck.BlobKey)
		}
		return nil
	})
	if err != nil {
		return err
	}
	for _, key := range keys {
		if err := ctx.Err(); err != nil {
			return err
		}
		data, err := f.fetchBlob(ctx, key)
		if err != nil {
			return err
		}
		got, err := f.blobs.Put(data)
		if err != nil {
			return err
		}
		if got != key {
			return faultf("blob %s: primary served content hashing to %s — corrupt transfer or tampered checkpoint", key, got)
		}
	}
	return nil
}

func (f *Follower) fetchBlob(ctx context.Context, key string) ([]byte, error) {
	u := f.cfg.PrimaryURL + PathBlob + "?key=" + url.QueryEscape(key)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, err
	}
	resp, err := f.cfg.Client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("repl: fetch blob %s: %s", key, resp.Status)
	}
	return io.ReadAll(resp.Body)
}

// fetchManifest GETs /repl/manifest, acking the replica's applied
// high-water mark. have > 0 with a wait long-polls for a newer seal.
func (f *Follower) fetchManifest(ctx context.Context, have int64, wait time.Duration) (*Manifest, error) {
	q := url.Values{}
	q.Set("follower", f.cfg.FollowerID)
	q.Set("acked", strconv.FormatInt(f.applied.Load(), 10))
	if f.sess != nil { // nil while bootstrapping, before the replica session opens
		q.Set("epoch", strconv.FormatInt(f.sess.Database().Epoch(), 10))
	}
	if wait > 0 {
		q.Set("have", strconv.FormatInt(have, 10))
		q.Set("wait_ms", strconv.FormatInt(int64(wait/time.Millisecond), 10))
	}
	reqCtx, cancel := context.WithTimeout(ctx, wait+15*time.Second)
	defer cancel()
	u := f.cfg.PrimaryURL + PathManifest + "?" + q.Encode()
	req, err := http.NewRequestWithContext(reqCtx, http.MethodGet, u, nil)
	if err != nil {
		return nil, err
	}
	resp, err := f.cfg.Client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("repl: manifest: %s", resp.Status)
	}
	var m Manifest
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		return nil, fmt.Errorf("repl: manifest decode: %w", err)
	}
	return &m, nil
}

// Promote turns the replica writable for failover. It first attempts a
// final catch-up against the primary; when the primary is unreachable (the
// usual failover trigger), it verifies the replica has applied every seal
// it ever observed — promoting with known-unapplied history would silently
// lose commits the primary acked, so that is refused. The flip itself
// (releasing the replica lock, opening an active WAL continuing the
// replicated numbering) is Session.Promote.
func (f *Follower) Promote(ctx context.Context) error {
	if err := f.Fault(); err != nil {
		return err
	}
	m, err := f.fetchManifest(ctx, 0, 0)
	if err == nil {
		if cerr := f.catchUp(ctx, m); cerr != nil {
			return fmt.Errorf("repl: promote: final catch-up: %w", cerr)
		}
	} else if seen, applied := f.lastSeenMax.Load(), f.applied.Load(); seen > applied {
		return fmt.Errorf("repl: promote: primary unreachable and replica applied only segment %d of the %d it observed; refusing to lose acked history (%v)", applied, seen, err)
	}
	return f.sess.Promote()
}
