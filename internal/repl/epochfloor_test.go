package repl

import (
	"context"
	"errors"
	"math"
	"testing"

	flor "flordb"
)

// TestEpochFloorTracksFollowerAcks: followers report their applied commit
// epoch on every manifest poll, and the primary's EpochFloor is the minimum
// over fresh followers — MaxInt64 (unconstrained) when none exist.
func TestEpochFloorTracksFollowerAcks(t *testing.T) {
	e := newPrimaryEnv(t, flor.Options{})
	e.commitN(4)

	if got := e.prim.EpochFloor(); got != math.MaxInt64 {
		t.Fatalf("EpochFloor with no followers = %d, want MaxInt64", got)
	}

	f, err := StartFollower(context.Background(), e.cfg(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	stepUntil(t, f, 4)
	// Epoch acks ride on manifest polls; issue one after catch-up.
	if _, err := f.fetchManifest(context.Background(), 0, 0); err != nil {
		t.Fatal(err)
	}
	if got := e.prim.EpochFloor(); got != 4 {
		t.Fatalf("EpochFloor after catch-up = %d, want 4", got)
	}

	// A pre-epoch follower that omits epoch= is recorded as unconstrained:
	// it must not drag the floor to zero and freeze GC forever.
	e.prim.recordAck("legacy-follower", 4, math.MaxInt64)
	if got := e.prim.EpochFloor(); got != 4 {
		t.Fatalf("EpochFloor with legacy follower = %d, want 4", got)
	}
}

// TestGCEpochsClampsToFollowerEpoch: epoch-retention GC on the primary may
// not reclaim history a lagging follower still needs for AS OF answers.
func TestGCEpochsClampsToFollowerEpoch(t *testing.T) {
	e := newPrimaryEnv(t, flor.Options{RetainEpochs: 1})
	e.commitN(4)

	f, err := StartFollower(context.Background(), e.cfg(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	stepUntil(t, f, 4)
	if _, err := f.fetchManifest(context.Background(), 0, 0); err != nil {
		t.Fatal(err)
	}

	// The primary races ahead; the follower stays parked at epoch 4.
	e.commitN(4)
	st, err := e.sess.GCEpochs()
	if err != nil {
		t.Fatal(err)
	}
	// Unclamped the floor would be 8-1=7; the follower ack holds it at 4.
	if st.Floor != 4 {
		t.Fatalf("GC floor = %d, want clamp to follower epoch 4", st.Floor)
	}
	if _, err := e.sess.ReaderAt(3); !errors.Is(err, flor.ErrEpochRetired) {
		t.Fatalf("ReaderAt(3) = %v, want ErrEpochRetired", err)
	}
	v, err := e.sess.ReaderAt(4)
	if err != nil {
		t.Fatalf("follower-needed epoch 4 reclaimed: %v", err)
	}
	v.Close()
}
