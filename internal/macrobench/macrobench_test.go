package macrobench

import (
	"path/filepath"
	"strings"
	"testing"
	"time"

	"flordb/internal/metrics"
)

// runShort runs a scenario with a tiny measured window — enough for every
// worker class to complete ops on one core without making `go test` slow.
func runShort(t *testing.T, name string, d time.Duration) *Result {
	t.Helper()
	sc, ok := Lookup(name)
	if !ok {
		t.Fatalf("unknown scenario %q", name)
	}
	res, err := sc.Run(Config{Duration: d, Seed: 7, Dir: t.TempDir(), Logf: t.Logf})
	if err != nil {
		t.Fatalf("run %s: %v", name, err)
	}
	return res
}

// checkClass asserts an op class completed work and reports a consistent
// histogram.
func checkClass(t *testing.T, res *Result, class string) {
	t.Helper()
	c := res.Classes[class]
	if c == nil {
		t.Fatalf("%s: class %q missing: have %v", res.Scenario, class, res.ClassNames())
	}
	if c.Ops == 0 {
		t.Fatalf("%s/%s: zero ops (errors=%d sheds=%d)", res.Scenario, class, c.Errors, c.Sheds)
	}
	if c.Errors > 0 {
		t.Fatalf("%s/%s: %d errors", res.Scenario, class, c.Errors)
	}
	if c.Latency.Count != c.Ops {
		t.Fatalf("%s/%s: latency count %d != ops %d", res.Scenario, class, c.Latency.Count, c.Ops)
	}
	var sum int64
	for _, b := range c.Latency.Buckets {
		sum += b.Count
	}
	if sum != c.Latency.Count {
		t.Fatalf("%s/%s: bucket sum %d != count %d", res.Scenario, class, sum, c.Latency.Count)
	}
	if c.Latency.P50 > c.Latency.P99 {
		t.Fatalf("%s/%s: p50 %d > p99 %d", res.Scenario, class, c.Latency.P50, c.Latency.P99)
	}
	if c.OpsPerSec <= 0 {
		t.Fatalf("%s/%s: ops_per_sec = %v", res.Scenario, class, c.OpsPerSec)
	}
}

func TestLogHeavyScenario(t *testing.T) {
	res := runShort(t, "log-heavy", 300*time.Millisecond)
	checkClass(t, res, ClassLogCommit)
	checkClass(t, res, ClassPointRead)
	if res.Resources.WALCommits == 0 {
		t.Fatal("no WAL commits recorded")
	}
	if res.Resources.FsyncsPerCommit <= 0 {
		t.Fatalf("fsyncs_per_commit = %v", res.Resources.FsyncsPerCommit)
	}
	if res.Resources.SnapshotPins != 0 {
		t.Fatalf("leaked %d snapshot pins", res.Resources.SnapshotPins)
	}
}

func TestHindsightDashboardScenarioLiveRegistry(t *testing.T) {
	sc, ok := Lookup("hindsight-dashboard")
	if !ok {
		t.Fatal("scenario missing")
	}
	reg := metrics.NewRegistry()
	res, err := sc.Run(Config{Duration: 300 * time.Millisecond, Seed: 7, Dir: t.TempDir(), Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	for _, class := range []string{ClassLogCommit, ClassPointRead, ClassScanAgg, ClassHTTPRead} {
		checkClass(t, res, class)
	}
	// The shared registry mirrors the class histograms live (what /metrics
	// serves mid-run) and carries the API server's own route histogram.
	snap := reg.Snapshot()
	h := snap.Histograms["macro:"+ClassHTTPRead]
	if h == nil || h.Count != res.Classes[ClassHTTPRead].Ops {
		t.Fatalf("registry mirror = %+v, want count %d", h, res.Classes[ClassHTTPRead].Ops)
	}
	if sql := snap.Histograms["sql"]; sql == nil || sql.Count == 0 {
		t.Fatalf("server route histogram missing from shared registry: %v", snap.Histograms["sql"])
	}
}

func TestAsOfTimetravelScenario(t *testing.T) {
	res := runShort(t, "asof-timetravel", 300*time.Millisecond)
	checkClass(t, res, ClassAsOfRead)
	checkClass(t, res, ClassLogCommit)
}

func TestCompactionChurnScenario(t *testing.T) {
	res := runShort(t, "compaction-churn", 500*time.Millisecond)
	checkClass(t, res, ClassLogCommit)
	checkClass(t, res, ClassScanAgg)
	if res.Resources.CompactRuns == 0 {
		t.Fatal("background compactor never ran")
	}
	if res.Resources.GCRuns == 0 {
		t.Fatal("background epoch GC never ran")
	}
}

func TestReplicatedReadsScenario(t *testing.T) {
	res := runShort(t, "replicated-reads", 500*time.Millisecond)
	checkClass(t, res, ClassLogCommit)
	c := res.Classes[ClassReplicaRead]
	if c == nil {
		t.Fatalf("replica-read class missing: %v", res.ClassNames())
	}
	// A briefly-stale follower sheds instead of erroring; require progress
	// in some form plus zero hard errors.
	if c.Ops+c.Sheds == 0 {
		t.Fatal("replica readers made no attempts")
	}
	if c.Errors > 0 {
		t.Fatalf("replica reads errored %d times", c.Errors)
	}
	if res.Resources.ReplicaApplied == 0 {
		t.Fatal("follower applied no segments")
	}
}

func TestSnapshotFileRoundTrip(t *testing.T) {
	res := runShort(t, "log-heavy", 200*time.Millisecond)
	f := NewSnapshotFile()
	f.Add(res)
	path := filepath.Join(t.TempDir(), "MACRO.json")
	if err := f.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshotFile(path)
	if err != nil {
		t.Fatal(err)
	}
	r := got.Scenarios["log-heavy"]
	if r == nil {
		t.Fatalf("scenario missing after round trip: %+v", got)
	}
	if r.TotalOps != res.TotalOps {
		t.Fatalf("total ops %d != %d", r.TotalOps, res.TotalOps)
	}
	lat := r.Classes[ClassLogCommit].Latency
	if lat.P99 != res.Classes[ClassLogCommit].Latency.P99 {
		t.Fatal("p99 changed across serialization")
	}
	if len(lat.Buckets) == 0 {
		t.Fatal("buckets dropped in serialization")
	}
}

func TestRenderIsDeterministicAndComplete(t *testing.T) {
	res := runShort(t, "log-heavy", 200*time.Millisecond)
	out := res.RenderString()
	if out != res.RenderString() {
		t.Fatal("render not deterministic")
	}
	for _, want := range []string{"scenario log-heavy", ClassLogCommit, ClassPointRead, "p50", "p99", "fsyncs/commit"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestLookupAndNames(t *testing.T) {
	names := Names()
	if len(names) != 5 {
		t.Fatalf("want 5 built-in scenarios, got %v", names)
	}
	for _, n := range names {
		sc, ok := Lookup(n)
		if !ok || sc.Name != n {
			t.Fatalf("lookup %q failed", n)
		}
	}
	if _, ok := Lookup("nope"); ok {
		t.Fatal("lookup of unknown scenario succeeded")
	}
}
