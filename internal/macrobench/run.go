package macrobench

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	flor "flordb"
	"flordb/internal/metrics"
	"flordb/internal/relation"
	"flordb/internal/repl"
	"flordb/internal/server"
	"flordb/internal/storage"
)

// Config tunes one scenario run.
type Config struct {
	// Duration bounds the measured window (default 10s). The seed phase and
	// replica catch-up run before the clock starts.
	Duration time.Duration
	// Seed makes worker op sequences reproducible: worker i of a run uses
	// rand.NewSource(Seed + i). Zero means seed 1, so the default is
	// deterministic, not time-derived.
	Seed int64
	// Dir hosts the scenario's scratch project directory; "" uses the OS
	// temp dir. The directory created inside is removed when Run returns.
	Dir string
	// Registry, when set, receives live mirrors of the per-class latency
	// histograms and shed/error counters, and is handed to the API server
	// HTTP readers drive — so GET /metrics during a run serves the same
	// instruments the final report is built from. Nil uses a private one.
	Registry *metrics.Registry
	// Logf receives progress lines (nil = silent).
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.Duration <= 0 {
		c.Duration = 10 * time.Second
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Registry == nil {
		c.Registry = metrics.NewRegistry()
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// Op class names. Scenario reports and benchdiff key on these.
const (
	ClassLogCommit   = "log-commit"
	ClassPointRead   = "point-read"
	ClassScanAgg     = "scan-agg"
	ClassAsOfRead    = "asof-read"
	ClassHTTPRead    = "http-read"
	ClassReplicaRead = "replica-read"
)

// valueNames is the logged-name fan-out: writers and the seed phase cycle
// value names m0..m7, and point readers pick among the same set, so the
// projid+value_name index and the plan cache both see a small hot key set.
const valueNames = 8

func valueName(k int) string { return fmt.Sprintf("m%d", k%valueNames) }

const projID = "macro"

// errShed classifies an intentional rejection (admission, staleness gate,
// retired epoch) — counted separately from errors and excluded from latency.
var errShed = errors.New("macrobench: shed")

// worker is one load-generating goroutine: an op class, a private seeded
// RNG, a private latency histogram (merged per class after the run — the
// measured loop shares no histogram atomics with other workers), and a live
// mirror histogram in the run's registry for /metrics observers.
type worker struct {
	class string
	rng   *rand.Rand
	hist  *metrics.Histogram
	live  *metrics.Histogram
	sheds *metrics.Counter
	fails *metrics.Counter

	ops, shedCount, errCount int64
	lastErr                  error

	op func(w *worker) error
}

// run loops the worker's op until the deadline.
func (w *worker) run(deadline time.Time) {
	for time.Now().Before(deadline) {
		start := time.Now()
		err := w.op(w)
		switch {
		case err == nil:
			ns := time.Since(start).Nanoseconds()
			w.hist.Observe(ns)
			w.live.Observe(ns)
			w.ops++
		case errors.Is(err, errShed):
			w.shedCount++
			w.sheds.Inc()
			// Back off briefly instead of busy-spinning on an overloaded
			// admission gate or a lagging follower: a real client retries
			// after a 429, and an unthrottled retry loop would burn CPU
			// the measured classes need.
			time.Sleep(200 * time.Microsecond)
		default:
			w.errCount++
			w.fails.Inc()
			w.lastErr = err
		}
	}
}

// Run executes the scenario for cfg.Duration and reports per-class latency,
// throughput, shed/error counts, and engine resource deltas.
func (sc Scenario) Run(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	dir, err := os.MkdirTemp(cfg.Dir, "macro-"+sc.Name+"-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	sess, err := flor.Open(dir, projID, flor.Options{
		NoSync:        sc.NoSync,
		SegmentBytes:  sc.SegmentBytes,
		SnapshotEvery: sc.SnapshotEvery,
		RetainEpochs:  sc.RetainEpochs,
	})
	if err != nil {
		return nil, err
	}
	defer sess.Close()
	sess.SetFilename("macro.go")

	cfg.Logf("macrobench %s: seeding %d commits x %d logs", sc.Name, sc.SeedCommits, sc.SeedLogsPerCommit)
	seedRng := rand.New(rand.NewSource(cfg.Seed))
	for c := 0; c < sc.SeedCommits; c++ {
		logBatch(sess, seedRng, sc.SeedLogsPerCommit)
		if err := sess.Commit(""); err != nil {
			return nil, fmt.Errorf("macrobench: seed commit: %w", err)
		}
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// HTTP readers drive the real API server in-process (no sockets: the
	// measured latency is the server's, not the loopback's), recording into
	// the run registry so /metrics route histograms and macro class
	// histograms live side by side.
	var api *server.Server
	if sc.HTTPReaders > 0 {
		api = server.New(sess, server.Config{
			Registry:    cfg.Registry,
			MaxInFlight: sc.MaxInFlight,
			MaxQueue:    sc.MaxQueue,
		})
	}

	// Replica readers query a real follower tailing the primary over HTTP.
	var follower *repl.Follower
	if sc.ReplicaReaders > 0 {
		blobs, err := storage.NewBlobStore(dir + "/.flor/objects")
		if err != nil {
			return nil, err
		}
		prim := repl.NewPrimary(sess, blobs)
		primSrv := httptest.NewServer(prim.Routes())
		defer primSrv.Close()
		folDir, err := os.MkdirTemp(cfg.Dir, "macro-follower-*")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(folDir)
		follower, err = repl.StartFollower(ctx, repl.FollowerConfig{
			PrimaryURL:   primSrv.URL,
			Dir:          folDir,
			ProjID:       projID,
			PollWait:     5 * time.Millisecond,
			MaxLagEpochs: 64,
			Open:         flor.Options{NoSync: true},
		})
		if err != nil {
			return nil, fmt.Errorf("macrobench: start follower: %w", err)
		}
		defer follower.Close()
		followerDone := make(chan struct{})
		go func() { follower.Run(ctx); close(followerDone) }()
		defer func() { cancel(); <-followerDone }()
		// Catch up over the seeded history before the clock starts, so
		// replica reads measure steady-state tailing, not bootstrap.
		catchup := time.Now().Add(30 * time.Second)
		for follower.Applied() < int64(sc.SeedCommits) {
			if err := follower.Fault(); err != nil {
				return nil, fmt.Errorf("macrobench: follower fault during catch-up: %w", err)
			}
			if time.Now().After(catchup) {
				return nil, fmt.Errorf("macrobench: follower stuck at segment %d during catch-up", follower.Applied())
			}
			time.Sleep(time.Millisecond)
		}
	}

	// Background maintenance: compaction and epoch GC on their own tickers,
	// like an operator cron would run them.
	var compactRuns, gcRuns atomic.Int64
	var maint sync.WaitGroup
	startTicker := func(every time.Duration, tick func()) {
		if every <= 0 {
			return
		}
		maint.Add(1)
		go func() {
			defer maint.Done()
			t := time.NewTicker(every)
			defer t.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-t.C:
					tick()
				}
			}
		}()
	}
	startTicker(sc.CompactEvery, func() {
		if _, err := sess.Compact(); err == nil {
			compactRuns.Add(1)
		}
	})
	startTicker(sc.GCEvery, func() {
		if _, err := sess.GCEpochs(); err == nil {
			gcRuns.Add(1)
		}
	})

	workers := sc.buildWorkers(cfg, sess, api, follower)

	// Resource baseline, then the measured window.
	var m0 runtime.MemStats
	runtime.ReadMemStats(&m0)
	syncs0, commits0 := sess.WALSyncCount(), sess.WALCommitCount()
	pruned0, decoded0 := relation.ScanStats()
	gcRows0 := sess.GCRowsReclaimed()

	cfg.Logf("macrobench %s: running %d workers for %s", sc.Name, len(workers), cfg.Duration)
	started := time.Now()
	deadline := started.Add(cfg.Duration)
	var wg sync.WaitGroup
	for _, w := range workers {
		wg.Add(1)
		go func(w *worker) {
			defer wg.Done()
			w.run(deadline)
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(started)
	cancel()
	maint.Wait()

	var m1 runtime.MemStats
	runtime.ReadMemStats(&m1)
	pruned1, decoded1 := relation.ScanStats()
	totalRows, liveRows := sess.Database().RowVersions()

	res := &Result{
		Scenario:   sc.Name,
		Seed:       cfg.Seed,
		DurationNs: elapsed.Nanoseconds(),
		Classes:    make(map[string]*ClassResult),
	}
	for _, w := range workers {
		c := res.Classes[w.class]
		if c == nil {
			c = &ClassResult{Latency: &metrics.HistSnapshot{}}
			res.Classes[w.class] = c
		}
		c.Ops += w.ops
		c.Sheds += w.shedCount
		c.Errors += w.errCount
		c.Latency.Merge(w.hist.Snapshot())
		res.TotalOps += w.ops
		if w.lastErr != nil {
			cfg.Logf("macrobench %s: %s worker saw %d errors, last: %v", sc.Name, w.class, w.errCount, w.lastErr)
		}
	}
	secs := elapsed.Seconds()
	for _, c := range res.Classes {
		c.OpsPerSec = float64(c.Ops) / secs
	}

	r := &res.Resources
	if res.TotalOps > 0 {
		r.AllocsPerOp = float64(m1.Mallocs-m0.Mallocs) / float64(res.TotalOps)
	}
	r.WALSyncs = sess.WALSyncCount() - syncs0
	r.WALCommits = sess.WALCommitCount() - commits0
	if r.WALCommits > 0 {
		r.FsyncsPerCommit = float64(r.WALSyncs) / float64(r.WALCommits)
	}
	r.PagesPruned = pruned1 - pruned0
	r.PagesDecoded = decoded1 - decoded0
	r.SnapshotPins = sess.Database().Pins()
	r.RowVersions = totalRows
	r.LiveRows = liveRows
	r.GCRowsReclaimed = sess.GCRowsReclaimed() - gcRows0
	r.CompactRuns = compactRuns.Load()
	r.GCRuns = gcRuns.Load()
	if follower != nil {
		r.ReplicaApplied = follower.Applied()
		r.ReplicaLag = follower.Lag()
	}
	return res, nil
}

// buildWorkers assembles the scenario's worker mix. Worker i (across all
// classes, in declaration order) seeds its RNG with cfg.Seed+i, so a given
// (scenario, seed) pair replays the same op sequences.
func (sc Scenario) buildWorkers(cfg Config, sess *flor.Session, api *server.Server, follower *repl.Follower) []*worker {
	var workers []*worker
	idx := int64(0)
	add := func(class string, n int, op func(w *worker) error) {
		for i := 0; i < n; i++ {
			workers = append(workers, &worker{
				class: class,
				rng:   rand.New(rand.NewSource(cfg.Seed + idx)),
				hist:  metrics.NewHistogram(),
				live:  cfg.Registry.Histogram("macro:" + class),
				sheds: cfg.Registry.Counter("macro:" + class + ":sheds"),
				fails: cfg.Registry.Counter("macro:" + class + ":errors"),
				op:    op,
			})
			idx++
		}
	}
	add(ClassLogCommit, sc.Writers, func(w *worker) error {
		logBatch(sess, w.rng, sc.LogsPerCommit)
		return sess.Commit("")
	})
	add(ClassPointRead, sc.PointReaders, func(w *worker) error {
		return readOp(sess, pointQuery(w.rng))
	})
	add(ClassScanAgg, sc.ScanReaders, func(w *worker) error {
		return readOp(sess, scanAggQuery)
	})
	add(ClassAsOfRead, sc.AsOfReaders, func(w *worker) error {
		return asOfOp(sess, w.rng)
	})
	add(ClassHTTPRead, sc.HTTPReaders, func(w *worker) error {
		return httpOp(api, w.rng)
	})
	add(ClassReplicaRead, sc.ReplicaReaders, func(w *worker) error {
		return replicaOp(follower, w.rng)
	})
	return workers
}

// logBatch records n values under cycling names, mimicking a training-step
// flush: mostly floats, with an int counter mixed in.
func logBatch(sess *flor.Session, rng *rand.Rand, n int) {
	for i := 0; i < n; i++ {
		if i%valueNames == valueNames-1 {
			sess.Log(valueName(i), rng.Int63n(1000))
		} else {
			sess.Log(valueName(i), rng.Float64())
		}
	}
}

const scanAggQuery = "SELECT value_name, count(*) AS n FROM logs WHERE projid = '" + projID + "' GROUP BY value_name"

// pointQuery aggregates one hot value_name through the projid+value_name
// index; the small name set keeps the plan cache hot.
func pointQuery(rng *rand.Rand) string {
	return "SELECT count(*) AS n, avg(cast_float(value)) AS m FROM logs WHERE projid = '" +
		projID + "' AND value_name = '" + valueName(rng.Intn(valueNames)) + "'"
}

// readOp runs one query against a committed-epoch snapshot.
func readOp(sess *flor.Session, query string) error {
	view, err := sess.Reader()
	if err != nil {
		return err
	}
	defer view.Close()
	_, err = view.SQL(query)
	return err
}

// asOfOp reads at a uniformly random retained epoch. Losing the race with a
// concurrent GC cycle (the epoch retires between choosing and executing) is
// a shed, not an error — exactly the client-visible contract.
func asOfOp(sess *flor.Session, rng *rand.Rand) error {
	floor, cur := sess.RetentionFloor(), sess.Database().Epoch()
	if cur <= floor {
		return errShed
	}
	epoch := floor + 1 + rng.Int63n(cur-floor)
	view, err := sess.Reader()
	if err != nil {
		return err
	}
	defer view.Close()
	_, err = view.SQL(fmt.Sprintf("SELECT count(*) AS n FROM logs AS OF %d", epoch))
	if errors.Is(err, relation.ErrEpochRetired) {
		return errShed
	}
	return err
}

// httpOp drives the API server in-process: mostly /sql point reads, with
// /dataframe pivots mixed in. Admission rejections (429, 503) are sheds.
func httpOp(api *server.Server, rng *rand.Rand) error {
	var target string
	if rng.Intn(4) == 0 {
		target = "/dataframe?names=" + valueName(rng.Intn(valueNames))
	} else {
		target = "/sql?q=" + url.QueryEscape(pointQuery(rng))
	}
	rec := httptest.NewRecorder()
	api.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, target, nil))
	switch rec.Code {
	case http.StatusOK:
		return nil
	case http.StatusTooManyRequests, http.StatusServiceUnavailable:
		return errShed
	default:
		return fmt.Errorf("macrobench: http %d: %s", rec.Code, rec.Body.String())
	}
}

// replicaOp reads on the follower behind its staleness gate — a gate
// refusal (the follower lagging past its bound) is a shed, matching the 503
// the HTTP surface would return.
func replicaOp(follower *repl.Follower, rng *rand.Rand) error {
	if err := follower.Gate(); err != nil {
		return errShed
	}
	return readOp(follower.Session(), pointQuery(rng))
}
