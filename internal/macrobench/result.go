package macrobench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"flordb/internal/metrics"
)

// SnapshotFormat versions the macro snapshot file layout; benchdiff refuses
// files from a different format rather than mis-comparing.
const SnapshotFormat = 1

// ClassResult is one op class's outcome in one scenario run.
type ClassResult struct {
	// Ops counts successful operations; latency quantiles cover exactly
	// these (sheds fail fast and would pollute the distribution).
	Ops    int64 `json:"ops"`
	Errors int64 `json:"errors"`
	// Sheds counts intentional rejections: admission 429/503, staleness
	// gate refusals, and AS OF reads that lost a race with epoch GC.
	Sheds     int64                 `json:"sheds"`
	OpsPerSec float64               `json:"ops_per_sec"`
	Latency   *metrics.HistSnapshot `json:"latency"`
}

// ShedRate is sheds over attempts (successes + sheds); errors are excluded —
// they gate separately by count.
func (c *ClassResult) ShedRate() float64 {
	attempts := c.Ops + c.Sheds
	if attempts == 0 {
		return 0
	}
	return float64(c.Sheds) / float64(attempts)
}

// Resources are engine-level deltas over the measured window (not per-class:
// the classes interfere by design, which is the point of a macro-benchmark).
type Resources struct {
	AllocsPerOp     float64 `json:"allocs_per_op"`
	WALSyncs        int64   `json:"wal_syncs"`
	WALCommits      int64   `json:"wal_commits"`
	FsyncsPerCommit float64 `json:"fsyncs_per_commit"`
	PagesPruned     int64   `json:"pages_pruned"`
	PagesDecoded    int64   `json:"pages_decoded"`
	SnapshotPins    int64   `json:"snapshot_pins"` // at run end; nonzero means a leak
	RowVersions     int64   `json:"row_versions"`
	LiveRows        int64   `json:"live_rows"`
	GCRowsReclaimed int64   `json:"gc_rows_reclaimed"`
	CompactRuns     int64   `json:"compact_runs"`
	GCRuns          int64   `json:"gc_runs"`
	ReplicaApplied  int64   `json:"replica_applied,omitempty"`
	ReplicaLag      int64   `json:"replica_lag,omitempty"`
}

// Result is one scenario run's full report.
type Result struct {
	Scenario   string                  `json:"scenario"`
	Seed       int64                   `json:"seed"`
	DurationNs int64                   `json:"duration_ns"`
	TotalOps   int64                   `json:"total_ops"`
	Classes    map[string]*ClassResult `json:"classes"`
	Resources  Resources               `json:"resources"`
}

// SnapshotFile is the on-disk macro snapshot: one Result per scenario.
// MACRO_baseline.json (committed) and MACRO_latest.json (produced by `make
// macro`) both use it; cmd/benchdiff -macro diffs the two.
type SnapshotFile struct {
	Format    int                `json:"format"`
	Scenarios map[string]*Result `json:"scenarios"`
}

// NewSnapshotFile returns an empty snapshot at the current format.
func NewSnapshotFile() *SnapshotFile {
	return &SnapshotFile{Format: SnapshotFormat, Scenarios: make(map[string]*Result)}
}

// Add records a scenario result (replacing any prior run of the same name).
func (f *SnapshotFile) Add(r *Result) {
	if f.Scenarios == nil {
		f.Scenarios = make(map[string]*Result)
	}
	f.Scenarios[r.Scenario] = r
}

// Encode serializes the snapshot with sorted keys (json.Marshal sorts map
// keys, so snapshots diff cleanly under version control).
func (f *SnapshotFile) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(f)
}

// WriteFile writes the snapshot to path atomically enough for CI use.
func (f *SnapshotFile) WriteFile(path string) error {
	out, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := f.Encode(out); err != nil {
		out.Close()
		return err
	}
	return out.Close()
}

// ReadSnapshotFile loads a macro snapshot, refusing unknown formats.
func ReadSnapshotFile(path string) (*SnapshotFile, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f SnapshotFile
	if err := json.Unmarshal(raw, &f); err != nil {
		return nil, fmt.Errorf("macrobench: parse %s: %w", path, err)
	}
	if f.Format != SnapshotFormat {
		return nil, fmt.Errorf("macrobench: %s has snapshot format %d, this build reads %d", path, f.Format, SnapshotFormat)
	}
	return &f, nil
}

// ClassNames returns the result's op classes, sorted — every renderer
// iterates through this so output order is deterministic (the
// deterministicrender analyzer forbids ranging a map straight into output).
func (r *Result) ClassNames() []string {
	names := make([]string, 0, len(r.Classes))
	for name := range r.Classes {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Render writes the human-readable scenario report the CLI prints.
func (r *Result) Render(w io.Writer) {
	fmt.Fprintf(w, "scenario %s  (seed %d, %s)\n", r.Scenario, r.Seed,
		metrics.FormatNs(r.DurationNs))
	fmt.Fprintf(w, "  %-14s %10s %12s %10s %10s %10s %8s %8s\n",
		"class", "ops", "ops/sec", "p50", "p95", "p99", "sheds", "errors")
	for _, name := range r.ClassNames() {
		c := r.Classes[name]
		fmt.Fprintf(w, "  %-14s %10d %12.1f %10s %10s %10s %8d %8d\n",
			name, c.Ops, c.OpsPerSec,
			metrics.FormatNs(c.Latency.P50), metrics.FormatNs(c.Latency.P95),
			metrics.FormatNs(c.Latency.P99), c.Sheds, c.Errors)
	}
	res := r.Resources
	fmt.Fprintf(w, "  resources: %.1f allocs/op, %.2f fsyncs/commit (%d syncs / %d commits)\n",
		res.AllocsPerOp, res.FsyncsPerCommit, res.WALSyncs, res.WALCommits)
	fmt.Fprintf(w, "             %d pages pruned / %d decoded, %d row versions (%d live), %d rows GC'd\n",
		res.PagesPruned, res.PagesDecoded, res.RowVersions, res.LiveRows, res.GCRowsReclaimed)
	if res.CompactRuns > 0 || res.GCRuns > 0 {
		fmt.Fprintf(w, "             %d compactions, %d GC cycles\n", res.CompactRuns, res.GCRuns)
	}
	if res.ReplicaApplied > 0 || res.ReplicaLag > 0 {
		fmt.Fprintf(w, "             replica: %d segments applied, lag %d\n",
			res.ReplicaApplied, res.ReplicaLag)
	}
	if res.SnapshotPins > 0 {
		fmt.Fprintf(w, "             WARNING: %d snapshot pins still live at run end\n", res.SnapshotPins)
	}
}

// RenderString renders the report into a string.
func (r *Result) RenderString() string {
	var sb strings.Builder
	r.Render(&sb)
	return sb.String()
}
