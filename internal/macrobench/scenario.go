// Package macrobench is FlorDB's macro-benchmark suite: named mixed-workload
// scenarios that drive a live engine the way the paper's lifecycle does —
// training loops logging and committing while dashboards, hindsight queries,
// time-travel reads, and replicas pull on the same database — and measure
// what the micro-benchmarks cannot: tail latency under interference,
// shedding behavior at admission limits, and the resource story (fsyncs per
// commit, zone-map pruning, MVCC history growth) of the whole system running
// at once.
//
// A scenario declares a worker mix (logging writers, point readers,
// scan-aggregate readers, AS OF readers, HTTP readers through the API
// server, replica readers through a real follower) plus background
// maintenance (compaction, epoch-retention GC). Run seeds the database,
// starts every worker with its own seeded RNG and its own latency histogram
// (internal/metrics; merged per op class at the end, so the measured run
// shares no histogram atomics across workers), runs for a fixed duration,
// and reports per-class p50/p95/p99, throughput, error/shed counts, and
// resource deltas. Results serialize into snapshot files that cmd/benchdiff
// -macro compares with per-metric thresholds — the CI macro-gate.
package macrobench

import "time"

// Scenario is one named workload mix. The zero value is not runnable; use
// the built-in scenarios (Scenarios, Lookup) or fill every field a worker
// class needs.
type Scenario struct {
	Name        string
	Description string

	// Engine options for the scenario's session.
	NoSync        bool
	SegmentBytes  int64 // 0 = storage default; 1 seals a segment every commit
	SnapshotEvery int   // auto-compact every N commits (0 = never)
	RetainEpochs  int   // epoch-retention GC budget (0 = retain all history)

	// Seed phase: history present before the measured run starts, so
	// readers never race an empty database.
	SeedCommits       int
	SeedLogsPerCommit int

	// Worker mix. Each worker runs one op class in a loop until the
	// scenario deadline.
	Writers        int // log LogsPerCommit values then commit ("log-commit")
	LogsPerCommit  int
	PointReaders   int // indexed count/avg over one value_name ("point-read")
	ScanReaders    int // full-scan GROUP BY aggregate ("scan-agg")
	AsOfReaders    int // AS OF <random retained epoch> reads ("asof-read")
	HTTPReaders    int // /sql and /dataframe through the API server ("http-read")
	ReplicaReaders int // reads on a live follower, behind its Gate ("replica-read")

	// Background maintenance, each on its own goroutine.
	CompactEvery time.Duration // interval between Session.Compact calls (0 = never)
	GCEvery      time.Duration // interval between Session.GCEpochs calls (0 = never)

	// Admission limits for the API server HTTPReaders drive (zero values
	// apply the server defaults).
	MaxInFlight int
	MaxQueue    int
}

// builtins defines the named scenarios, in gate order. Worker counts are
// sized for a single-core CI container: every scenario stays meaningful —
// each op class completes hundreds of ops in a 10-second run — without
// overcommitting the machine so far that tail latencies measure only
// scheduler queueing.
var builtins = []Scenario{
	{
		// The one durable (fsyncing) scenario: group commit is its point,
		// so fsyncs/commit must be real — under 4 concurrent committers it
		// should sit well below 1 per commit.
		Name:        "log-heavy",
		Description: "training-loop ingest: concurrent writers group-committing durably, one dashboard reader",
		SeedCommits: 4, SeedLogsPerCommit: 64,
		Writers: 4, LogsPerCommit: 64,
		PointReaders: 1,
	},
	{
		Name:        "hindsight-dashboard",
		Description: "read-mostly dashboard over a deep history, HTTP readers through the API server",
		NoSync:      true,
		SeedCommits: 32, SeedLogsPerCommit: 128,
		Writers: 2, LogsPerCommit: 16,
		PointReaders: 2, ScanReaders: 1, HTTPReaders: 2,
	},
	{
		Name:        "asof-timetravel",
		Description: "time-travel readers pinning random historical epochs while writers extend history",
		NoSync:      true,
		SeedCommits: 64, SeedLogsPerCommit: 32,
		Writers: 1, LogsPerCommit: 16,
		PointReaders: 1, AsOfReaders: 3,
	},
	{
		Name:         "compaction-churn",
		Description:  "writers against per-commit segment sealing with background compaction and epoch GC",
		NoSync:       true,
		SegmentBytes: 1,
		RetainEpochs: 16,
		SeedCommits:  16, SeedLogsPerCommit: 64,
		Writers: 2, LogsPerCommit: 32,
		PointReaders: 1, ScanReaders: 1, AsOfReaders: 1,
		CompactEvery: 50 * time.Millisecond,
		GCEvery:      100 * time.Millisecond,
	},
	{
		Name:         "replicated-reads",
		Description:  "a real follower tails the primary over HTTP while replica readers query behind its staleness gate",
		NoSync:       true,
		SegmentBytes: 1,
		SeedCommits:  8, SeedLogsPerCommit: 32,
		Writers: 1, LogsPerCommit: 16,
		PointReaders: 1, ReplicaReaders: 2,
	},
}

// Scenarios returns the built-in scenarios in gate order.
func Scenarios() []Scenario {
	out := make([]Scenario, len(builtins))
	copy(out, builtins)
	return out
}

// Lookup resolves a built-in scenario by name.
func Lookup(name string) (Scenario, bool) {
	for _, sc := range builtins {
		if sc.Name == name {
			return sc, true
		}
	}
	return Scenario{}, false
}

// Names returns the built-in scenario names in gate order.
func Names() []string {
	out := make([]string, len(builtins))
	for i, sc := range builtins {
		out[i] = sc.Name
	}
	return out
}
