package sqlparse

import (
	"fmt"
	"regexp"
	"strings"
	"sync"

	"flordb/internal/relation"
)

// binder resolves column references against a schema. Qualified references
// ("t.col") try the qualified name first, then the bare name (the relation
// kernel disambiguates join collisions by prefixing with the qualifier).
type binder struct {
	schema *relation.Schema
}

func (b binder) resolve(c *ColumnRef) (int, error) {
	if c.Table != "" {
		if i := b.schema.Index(c.Table + "." + c.Name); i >= 0 {
			return i, nil
		}
	}
	if i := b.schema.Index(c.Name); i >= 0 {
		return i, nil
	}
	return -1, fmt.Errorf("sql: unknown column %q (have %v)", c.SQL(), b.schema.Names())
}

// compile turns an expression into an evaluator closure over rows of the
// bound schema. Aggregate calls are rejected here; the planner rewrites them
// before compilation.
func (b binder) compile(e Expr) (func(relation.Row) (relation.Value, error), error) {
	switch x := e.(type) {
	case *Literal:
		v := x.Value
		return func(relation.Row) (relation.Value, error) { return v, nil }, nil
	case *ColumnRef:
		i, err := b.resolve(x)
		if err != nil {
			return nil, err
		}
		return func(r relation.Row) (relation.Value, error) { return r[i], nil }, nil
	case *UnaryExpr:
		inner, err := b.compile(x.Expr)
		if err != nil {
			return nil, err
		}
		switch x.Op {
		case "NOT":
			return func(r relation.Row) (relation.Value, error) {
				v, err := inner(r)
				if err != nil {
					return relation.Null(), err
				}
				if v.IsNull() {
					return relation.Null(), nil
				}
				bv, err := truthy(v)
				if err != nil {
					return relation.Null(), err
				}
				return relation.Bool(!bv), nil
			}, nil
		case "-":
			return func(r relation.Row) (relation.Value, error) {
				v, err := inner(r)
				if err != nil || v.IsNull() {
					return relation.Null(), err
				}
				switch v.Type() {
				case relation.TInt:
					return relation.Int(-v.AsInt()), nil
				case relation.TFloat:
					return relation.Float(-v.AsFloat()), nil
				}
				return relation.Null(), fmt.Errorf("sql: unary minus on %s", v.Type())
			}, nil
		}
		return nil, fmt.Errorf("sql: unknown unary operator %q", x.Op)
	case *IsNullExpr:
		inner, err := b.compile(x.Expr)
		if err != nil {
			return nil, err
		}
		negate := x.Negate
		return func(r relation.Row) (relation.Value, error) {
			v, err := inner(r)
			if err != nil {
				return relation.Null(), err
			}
			return relation.Bool(v.IsNull() != negate), nil
		}, nil
	case *InExpr:
		inner, err := b.compile(x.Expr)
		if err != nil {
			return nil, err
		}
		items := make([]func(relation.Row) (relation.Value, error), len(x.List))
		for i, le := range x.List {
			f, err := b.compile(le)
			if err != nil {
				return nil, err
			}
			items[i] = f
		}
		negate := x.Negate
		return func(r relation.Row) (relation.Value, error) {
			v, err := inner(r)
			if err != nil {
				return relation.Null(), err
			}
			if v.IsNull() {
				return relation.Null(), nil
			}
			for _, f := range items {
				iv, err := f(r)
				if err != nil {
					return relation.Null(), err
				}
				if relation.Equal(v, iv) {
					return relation.Bool(!negate), nil
				}
			}
			return relation.Bool(negate), nil
		}, nil
	case *BetweenExpr:
		inner, err := b.compile(x.Expr)
		if err != nil {
			return nil, err
		}
		lo, err := b.compile(x.Lo)
		if err != nil {
			return nil, err
		}
		hi, err := b.compile(x.Hi)
		if err != nil {
			return nil, err
		}
		negate := x.Negate
		return func(r relation.Row) (relation.Value, error) {
			v, err := inner(r)
			if err != nil || v.IsNull() {
				return relation.Null(), err
			}
			lv, err := lo(r)
			if err != nil || lv.IsNull() {
				return relation.Null(), err
			}
			hv, err := hi(r)
			if err != nil || hv.IsNull() {
				return relation.Null(), err
			}
			in := relation.Compare(v, lv) >= 0 && relation.Compare(v, hv) <= 0
			return relation.Bool(in != negate), nil
		}, nil
	case *BinaryExpr:
		return b.compileBinary(x)
	case *FuncCall:
		if x.IsAggregate() {
			return nil, fmt.Errorf("sql: aggregate %s not allowed here", x.Name)
		}
		return b.compileScalarFunc(x)
	case *Star:
		return nil, fmt.Errorf("sql: '*' not allowed in this position")
	default:
		return nil, fmt.Errorf("sql: unsupported expression %T", e)
	}
}

func (b binder) compileBinary(x *BinaryExpr) (func(relation.Row) (relation.Value, error), error) {
	left, err := b.compile(x.Left)
	if err != nil {
		return nil, err
	}
	right, err := b.compile(x.Right)
	if err != nil {
		return nil, err
	}
	op := x.Op
	switch op {
	case "AND", "OR":
		return func(r relation.Row) (relation.Value, error) {
			lv, err := left(r)
			if err != nil {
				return relation.Null(), err
			}
			// Three-valued logic with short circuit.
			var lb, lNull bool
			if lv.IsNull() {
				lNull = true
			} else if lb, err = truthy(lv); err != nil {
				return relation.Null(), err
			}
			if !lNull {
				if op == "AND" && !lb {
					return relation.Bool(false), nil
				}
				if op == "OR" && lb {
					return relation.Bool(true), nil
				}
			}
			rv, err := right(r)
			if err != nil {
				return relation.Null(), err
			}
			if rv.IsNull() {
				return relation.Null(), nil
			}
			rb, err := truthy(rv)
			if err != nil {
				return relation.Null(), err
			}
			if lNull {
				if op == "AND" && !rb {
					return relation.Bool(false), nil
				}
				if op == "OR" && rb {
					return relation.Bool(true), nil
				}
				return relation.Null(), nil
			}
			if op == "AND" {
				return relation.Bool(lb && rb), nil
			}
			return relation.Bool(lb || rb), nil
		}, nil
	case "=", "!=", "<", "<=", ">", ">=":
		return func(r relation.Row) (relation.Value, error) {
			lv, err := left(r)
			if err != nil {
				return relation.Null(), err
			}
			rv, err := right(r)
			if err != nil {
				return relation.Null(), err
			}
			if lv.IsNull() || rv.IsNull() {
				return relation.Null(), nil
			}
			c := relation.Compare(lv, rv)
			var out bool
			switch op {
			case "=":
				out = c == 0
			case "!=":
				out = c != 0
			case "<":
				out = c < 0
			case "<=":
				out = c <= 0
			case ">":
				out = c > 0
			case ">=":
				out = c >= 0
			}
			return relation.Bool(out), nil
		}, nil
	case "LIKE":
		return func(r relation.Row) (relation.Value, error) {
			lv, err := left(r)
			if err != nil {
				return relation.Null(), err
			}
			rv, err := right(r)
			if err != nil {
				return relation.Null(), err
			}
			if lv.IsNull() || rv.IsNull() {
				return relation.Null(), nil
			}
			if lv.Type() != relation.TText || rv.Type() != relation.TText {
				return relation.Null(), fmt.Errorf("sql: LIKE requires text operands")
			}
			re, err := likeRegexp(rv.AsText())
			if err != nil {
				return relation.Null(), err
			}
			return relation.Bool(re.MatchString(lv.AsText())), nil
		}, nil
	case "+", "-", "*", "/", "%":
		return func(r relation.Row) (relation.Value, error) {
			lv, err := left(r)
			if err != nil {
				return relation.Null(), err
			}
			rv, err := right(r)
			if err != nil {
				return relation.Null(), err
			}
			if lv.IsNull() || rv.IsNull() {
				return relation.Null(), nil
			}
			if op == "+" && lv.Type() == relation.TText && rv.Type() == relation.TText {
				return relation.Text(lv.AsText() + rv.AsText()), nil
			}
			if !lv.IsNumeric() || !rv.IsNumeric() {
				return relation.Null(), fmt.Errorf("sql: %s on non-numeric operands %s, %s", op, lv.Type(), rv.Type())
			}
			if lv.Type() == relation.TInt && rv.Type() == relation.TInt && op != "/" {
				a, bb := lv.AsInt(), rv.AsInt()
				switch op {
				case "+":
					return relation.Int(a + bb), nil
				case "-":
					return relation.Int(a - bb), nil
				case "*":
					return relation.Int(a * bb), nil
				case "%":
					if bb == 0 {
						return relation.Null(), fmt.Errorf("sql: modulo by zero")
					}
					return relation.Int(a % bb), nil
				}
			}
			a, bb := lv.AsFloat(), rv.AsFloat()
			switch op {
			case "+":
				return relation.Float(a + bb), nil
			case "-":
				return relation.Float(a - bb), nil
			case "*":
				return relation.Float(a * bb), nil
			case "/":
				if bb == 0 {
					return relation.Null(), fmt.Errorf("sql: division by zero")
				}
				return relation.Float(a / bb), nil
			case "%":
				return relation.Null(), fmt.Errorf("sql: modulo requires integers")
			}
			return relation.Null(), nil
		}, nil
	}
	return nil, fmt.Errorf("sql: unknown operator %q", op)
}

func (b binder) compileScalarFunc(x *FuncCall) (func(relation.Row) (relation.Value, error), error) {
	args := make([]func(relation.Row) (relation.Value, error), len(x.Args))
	for i, a := range x.Args {
		f, err := b.compile(a)
		if err != nil {
			return nil, err
		}
		args[i] = f
	}
	need := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("sql: %s expects %d argument(s), got %d", x.Name, n, len(args))
		}
		return nil
	}
	switch x.Name {
	case "lower", "upper", "length", "trim":
		if err := need(1); err != nil {
			return nil, err
		}
		name := x.Name
		return func(r relation.Row) (relation.Value, error) {
			v, err := args[0](r)
			if err != nil || v.IsNull() {
				return relation.Null(), err
			}
			s, err := relation.Coerce(v, relation.TText)
			if err != nil {
				return relation.Null(), err
			}
			switch name {
			case "lower":
				return relation.Text(strings.ToLower(s.AsText())), nil
			case "upper":
				return relation.Text(strings.ToUpper(s.AsText())), nil
			case "length":
				return relation.Int(int64(len(s.AsText()))), nil
			default:
				return relation.Text(strings.TrimSpace(s.AsText())), nil
			}
		}, nil
	case "coalesce":
		if len(args) == 0 {
			return nil, fmt.Errorf("sql: coalesce needs at least one argument")
		}
		return func(r relation.Row) (relation.Value, error) {
			for _, f := range args {
				v, err := f(r)
				if err != nil {
					return relation.Null(), err
				}
				if !v.IsNull() {
					return v, nil
				}
			}
			return relation.Null(), nil
		}, nil
	case "abs":
		if err := need(1); err != nil {
			return nil, err
		}
		return func(r relation.Row) (relation.Value, error) {
			v, err := args[0](r)
			if err != nil || v.IsNull() {
				return relation.Null(), err
			}
			switch v.Type() {
			case relation.TInt:
				if v.AsInt() < 0 {
					return relation.Int(-v.AsInt()), nil
				}
				return v, nil
			case relation.TFloat:
				if v.AsFloat() < 0 {
					return relation.Float(-v.AsFloat()), nil
				}
				return v, nil
			}
			return relation.Null(), fmt.Errorf("sql: abs on %s", v.Type())
		}, nil
	case "cast_int":
		if err := need(1); err != nil {
			return nil, err
		}
		return func(r relation.Row) (relation.Value, error) {
			v, err := args[0](r)
			if err != nil || v.IsNull() {
				return relation.Null(), err
			}
			return relation.Coerce(v, relation.TInt)
		}, nil
	case "cast_float":
		if err := need(1); err != nil {
			return nil, err
		}
		return func(r relation.Row) (relation.Value, error) {
			v, err := args[0](r)
			if err != nil || v.IsNull() {
				return relation.Null(), err
			}
			return relation.Coerce(v, relation.TFloat)
		}, nil
	case "cast_text":
		if err := need(1); err != nil {
			return nil, err
		}
		return func(r relation.Row) (relation.Value, error) {
			v, err := args[0](r)
			if err != nil || v.IsNull() {
				return relation.Null(), err
			}
			return relation.Coerce(v, relation.TText)
		}, nil
	}
	return nil, fmt.Errorf("sql: unknown function %q", x.Name)
}

// ---------- Vectorized predicate evaluation ----------

// compileBatchPredicate is the vectorized entry point for filter
// evaluation: it compiles a predicate into a kernel that evaluates the
// expression over a whole batch and compacts the selection vector to the
// passing rows. Comparisons between a column and a literal (either operand
// order) or between two columns, IS [NOT] NULL on a column, [NOT] IN over a
// literal list, [NOT] BETWEEN literal bounds, and AND/OR combinations of
// those run as tight loops over column slices without closure dispatch.
// Everything else falls back to the compiled row evaluator applied to a
// scratch row populated with only the referenced columns. Row-at-a-time
// semantics are preserved exactly: a NULL predicate result filters the row,
// and evaluation errors park in evalErr and suppress all subsequent rows
// (matching applyFilter).
func (b binder) compileBatchPredicate(e Expr, evalErr *error) (relation.BatchPredicate, error) {
	if k := b.kernelize(e); k != nil {
		return k, nil
	}
	return b.batchFallback(e, evalErr)
}

// kernelize returns a closure-free vectorized kernel for the supported
// predicate shapes, or nil when e needs the generic fallback. Kernels never
// produce evaluation errors, which is what makes decomposing AND/OR safe:
// with errors impossible, "filtered because false" and "filtered because
// NULL" compose identically to the row evaluator's three-valued logic.
func (b binder) kernelize(e Expr) relation.BatchPredicate {
	switch x := e.(type) {
	case *BinaryExpr:
		switch x.Op {
		case "AND":
			l, r := b.kernelize(x.Left), b.kernelize(x.Right)
			if l == nil || r == nil {
				return nil
			}
			return func(bt *relation.Batch) {
				l(bt)
				if len(bt.Sel) > 0 {
					r(bt)
				}
			}
		case "OR":
			l, r := b.kernelize(x.Left), b.kernelize(x.Right)
			if l == nil || r == nil {
				return nil
			}
			return orKernel(l, r)
		case "=", "!=", "<", "<=", ">", ">=":
			if lref, ok := x.Left.(*ColumnRef); ok {
				if rref, ok := x.Right.(*ColumnRef); ok {
					lp, lerr := b.resolve(lref)
					rp, rerr := b.resolve(rref)
					if lerr != nil || rerr != nil {
						return nil
					}
					return colColKernel(lp, rp, x.Op)
				}
				if lit, ok := literalOf(x.Right); ok {
					p, err := b.resolve(lref)
					if err != nil {
						return nil
					}
					return colLitKernel(p, lit, x.Op)
				}
			}
			if rref, ok := x.Right.(*ColumnRef); ok {
				if lit, ok := literalOf(x.Left); ok {
					p, err := b.resolve(rref)
					if err != nil {
						return nil
					}
					var flip = map[string]string{"=": "=", "!=": "!=", "<": ">", "<=": ">=", ">": "<", ">=": "<="}
					return colLitKernel(p, lit, flip[x.Op])
				}
			}
		}
	case *IsNullExpr:
		ref, ok := x.Expr.(*ColumnRef)
		if !ok {
			return nil
		}
		p, err := b.resolve(ref)
		if err != nil {
			return nil
		}
		negate := x.Negate
		return func(bt *relation.Batch) {
			col := bt.Cols[p]
			sel := bt.Sel[:0]
			for _, i := range bt.Sel {
				if col[i].IsNull() != negate {
					sel = append(sel, i)
				}
			}
			bt.Sel = sel
		}
	case *InExpr:
		ref, ok := x.Expr.(*ColumnRef)
		if !ok {
			return nil
		}
		p, err := b.resolve(ref)
		if err != nil {
			return nil
		}
		lits := make([]relation.Value, 0, len(x.List))
		for _, le := range x.List {
			lit, ok := literalOf(le)
			if !ok {
				return nil
			}
			lits = append(lits, lit)
		}
		negate := x.Negate
		return func(bt *relation.Batch) {
			col := bt.Cols[p]
			sel := bt.Sel[:0]
			for _, i := range bt.Sel {
				v := &col[i]
				if v.IsNull() {
					continue
				}
				match := false
				for k := range lits {
					// relation.Equal semantics: NULL list items never match.
					if !lits[k].IsNull() && relation.ComparePtr(v, &lits[k]) == 0 {
						match = true
						break
					}
				}
				if match != negate {
					sel = append(sel, i)
				}
			}
			bt.Sel = sel
		}
	case *BetweenExpr:
		ref, ok := x.Expr.(*ColumnRef)
		if !ok {
			return nil
		}
		p, err := b.resolve(ref)
		if err != nil {
			return nil
		}
		lo, lok := literalOf(x.Lo)
		hi, hok := literalOf(x.Hi)
		if !lok || !hok {
			return nil
		}
		if lo.IsNull() || hi.IsNull() {
			// A NULL bound makes the predicate NULL for every row.
			return func(bt *relation.Batch) { bt.Sel = bt.Sel[:0] }
		}
		negate := x.Negate
		return func(bt *relation.Batch) {
			col := bt.Cols[p]
			sel := bt.Sel[:0]
			for _, i := range bt.Sel {
				v := &col[i]
				if v.IsNull() {
					continue
				}
				in := relation.ComparePtr(v, &lo) >= 0 && relation.ComparePtr(v, &hi) <= 0
				if in != negate {
					sel = append(sel, i)
				}
			}
			bt.Sel = sel
		}
	}
	return nil
}

// cmpWant maps a comparison operator to which Compare outcomes (-1, 0, +1,
// indexed as 0, 1, 2) satisfy it, so kernels branch on a table instead of
// re-switching on the operator string per row.
func cmpWant(op string) [3]bool {
	switch op {
	case "=":
		return [3]bool{false, true, false}
	case "!=":
		return [3]bool{true, false, true}
	case "<":
		return [3]bool{true, false, false}
	case "<=":
		return [3]bool{true, true, false}
	case ">":
		return [3]bool{false, false, true}
	case ">=":
		return [3]bool{false, true, true}
	}
	return [3]bool{}
}

// colLitKernel compares one column against a literal. NULL column values
// never pass (SQL comparison with NULL is NULL); a NULL literal passes
// nothing at all.
func colLitKernel(pos int, lit relation.Value, op string) relation.BatchPredicate {
	if lit.IsNull() {
		return func(bt *relation.Batch) { bt.Sel = bt.Sel[:0] }
	}
	want := cmpWant(op)
	return func(bt *relation.Batch) {
		col := bt.Cols[pos]
		sel := bt.Sel[:0]
		for _, i := range bt.Sel {
			v := &col[i]
			if v.IsNull() {
				continue
			}
			if want[relation.ComparePtr(v, &lit)+1] {
				sel = append(sel, i)
			}
		}
		bt.Sel = sel
	}
}

// colColKernel compares two columns of the batch.
func colColKernel(lpos, rpos int, op string) relation.BatchPredicate {
	want := cmpWant(op)
	return func(bt *relation.Batch) {
		lcol, rcol := bt.Cols[lpos], bt.Cols[rpos]
		sel := bt.Sel[:0]
		for _, i := range bt.Sel {
			lv, rv := &lcol[i], &rcol[i]
			if lv.IsNull() || rv.IsNull() {
				continue
			}
			if want[relation.ComparePtr(lv, rv)+1] {
				sel = append(sel, i)
			}
		}
		bt.Sel = sel
	}
}

// orKernel runs both sides over copies of the selection vector and merges
// the survivors. Because kernels are error-free, "row passes l OR r" is
// exactly "l keeps it or r keeps it" under three-valued logic: NULL and
// false both mean "not kept".
func orKernel(l, r relation.BatchPredicate) relation.BatchPredicate {
	var lbuf, rbuf []int
	return func(bt *relation.Batch) {
		lbuf = append(lbuf[:0], bt.Sel...)
		rbuf = append(rbuf[:0], bt.Sel...)
		out := bt.Sel[:0]
		bt.Sel = lbuf
		l(bt)
		lres := bt.Sel
		bt.Sel = rbuf
		r(bt)
		rres := bt.Sel
		// Merge-union two ascending index lists back into the original
		// buffer (the union is a subset of the original selection, so it
		// fits; lres/rres live in separate buffers, so no aliasing).
		i, j := 0, 0
		for i < len(lres) && j < len(rres) {
			switch {
			case lres[i] < rres[j]:
				out = append(out, lres[i])
				i++
			case lres[i] > rres[j]:
				out = append(out, rres[j])
				j++
			default:
				out = append(out, lres[i])
				i++
				j++
			}
		}
		out = append(out, lres[i:]...)
		out = append(out, rres[j:]...)
		bt.Sel = out
	}
}

// referencedCols lists the schema positions of every column reference in e,
// deduplicated. The batch fallback populates only these in its scratch row.
func (b binder) referencedCols(e Expr) []int {
	seen := make(map[int]bool)
	var out []int
	walkColumnRefs(e, func(ref *ColumnRef) {
		if i, err := b.resolve(ref); err == nil && !seen[i] {
			seen[i] = true
			out = append(out, i)
		}
	})
	return out
}

// batchFallback evaluates an arbitrary predicate row-by-row over the batch
// through the compiled row evaluator, copying only the referenced columns
// into a reused scratch row. Still no per-row allocation — just no
// column-at-a-time loop.
func (b binder) batchFallback(e Expr, evalErr *error) (relation.BatchPredicate, error) {
	f, err := b.compile(e)
	if err != nil {
		return nil, err
	}
	need := b.referencedCols(e)
	scratch := make(relation.Row, b.schema.Len())
	return func(bt *relation.Batch) {
		if *evalErr != nil {
			bt.Sel = bt.Sel[:0]
			return
		}
		sel := bt.Sel[:0]
		for _, i := range bt.Sel {
			for _, c := range need {
				scratch[c] = bt.Cols[c][i]
			}
			v, err := f(scratch)
			if err != nil {
				*evalErr = err
				break
			}
			if v.IsNull() {
				continue
			}
			tb, err := truthy(v)
			if err != nil {
				*evalErr = err
				break
			}
			if tb {
				sel = append(sel, i)
			}
		}
		bt.Sel = sel
	}, nil
}

func truthy(v relation.Value) (bool, error) {
	switch v.Type() {
	case relation.TBool:
		return v.AsBool(), nil
	case relation.TInt:
		return v.AsInt() != 0, nil
	case relation.TFloat:
		return v.AsFloat() != 0, nil
	default:
		return false, fmt.Errorf("sql: %s is not a boolean", v.Type())
	}
}

var likeCache sync.Map // pattern -> *regexp.Regexp

// likeRegexp compiles a SQL LIKE pattern (% and _) into a cached regexp.
func likeRegexp(pattern string) (*regexp.Regexp, error) {
	if re, ok := likeCache.Load(pattern); ok {
		return re.(*regexp.Regexp), nil
	}
	var sb strings.Builder
	sb.WriteString("(?s)^")
	for _, r := range pattern {
		switch r {
		case '%':
			sb.WriteString(".*")
		case '_':
			sb.WriteString(".")
		default:
			sb.WriteString(regexp.QuoteMeta(string(r)))
		}
	}
	sb.WriteString("$")
	re, err := regexp.Compile(sb.String())
	if err != nil {
		return nil, fmt.Errorf("sql: bad LIKE pattern %q: %w", pattern, err)
	}
	likeCache.Store(pattern, re)
	return re, nil
}
