package sqlparse

import (
	"fmt"
	"regexp"
	"strings"
	"sync"

	"flordb/internal/relation"
)

// binder resolves column references against a schema. Qualified references
// ("t.col") try the qualified name first, then the bare name (the relation
// kernel disambiguates join collisions by prefixing with the qualifier).
type binder struct {
	schema *relation.Schema
}

func (b binder) resolve(c *ColumnRef) (int, error) {
	if c.Table != "" {
		if i := b.schema.Index(c.Table + "." + c.Name); i >= 0 {
			return i, nil
		}
	}
	if i := b.schema.Index(c.Name); i >= 0 {
		return i, nil
	}
	return -1, fmt.Errorf("sql: unknown column %q (have %v)", c.SQL(), b.schema.Names())
}

// compile turns an expression into an evaluator closure over rows of the
// bound schema. Aggregate calls are rejected here; the planner rewrites them
// before compilation.
func (b binder) compile(e Expr) (func(relation.Row) (relation.Value, error), error) {
	switch x := e.(type) {
	case *Literal:
		v := x.Value
		return func(relation.Row) (relation.Value, error) { return v, nil }, nil
	case *ColumnRef:
		i, err := b.resolve(x)
		if err != nil {
			return nil, err
		}
		return func(r relation.Row) (relation.Value, error) { return r[i], nil }, nil
	case *UnaryExpr:
		inner, err := b.compile(x.Expr)
		if err != nil {
			return nil, err
		}
		switch x.Op {
		case "NOT":
			return func(r relation.Row) (relation.Value, error) {
				v, err := inner(r)
				if err != nil {
					return relation.Null(), err
				}
				if v.IsNull() {
					return relation.Null(), nil
				}
				bv, err := truthy(v)
				if err != nil {
					return relation.Null(), err
				}
				return relation.Bool(!bv), nil
			}, nil
		case "-":
			return func(r relation.Row) (relation.Value, error) {
				v, err := inner(r)
				if err != nil || v.IsNull() {
					return relation.Null(), err
				}
				switch v.Type() {
				case relation.TInt:
					return relation.Int(-v.AsInt()), nil
				case relation.TFloat:
					return relation.Float(-v.AsFloat()), nil
				}
				return relation.Null(), fmt.Errorf("sql: unary minus on %s", v.Type())
			}, nil
		}
		return nil, fmt.Errorf("sql: unknown unary operator %q", x.Op)
	case *IsNullExpr:
		inner, err := b.compile(x.Expr)
		if err != nil {
			return nil, err
		}
		negate := x.Negate
		return func(r relation.Row) (relation.Value, error) {
			v, err := inner(r)
			if err != nil {
				return relation.Null(), err
			}
			return relation.Bool(v.IsNull() != negate), nil
		}, nil
	case *InExpr:
		inner, err := b.compile(x.Expr)
		if err != nil {
			return nil, err
		}
		items := make([]func(relation.Row) (relation.Value, error), len(x.List))
		for i, le := range x.List {
			f, err := b.compile(le)
			if err != nil {
				return nil, err
			}
			items[i] = f
		}
		negate := x.Negate
		return func(r relation.Row) (relation.Value, error) {
			v, err := inner(r)
			if err != nil {
				return relation.Null(), err
			}
			if v.IsNull() {
				return relation.Null(), nil
			}
			for _, f := range items {
				iv, err := f(r)
				if err != nil {
					return relation.Null(), err
				}
				if relation.Equal(v, iv) {
					return relation.Bool(!negate), nil
				}
			}
			return relation.Bool(negate), nil
		}, nil
	case *BetweenExpr:
		inner, err := b.compile(x.Expr)
		if err != nil {
			return nil, err
		}
		lo, err := b.compile(x.Lo)
		if err != nil {
			return nil, err
		}
		hi, err := b.compile(x.Hi)
		if err != nil {
			return nil, err
		}
		negate := x.Negate
		return func(r relation.Row) (relation.Value, error) {
			v, err := inner(r)
			if err != nil || v.IsNull() {
				return relation.Null(), err
			}
			lv, err := lo(r)
			if err != nil || lv.IsNull() {
				return relation.Null(), err
			}
			hv, err := hi(r)
			if err != nil || hv.IsNull() {
				return relation.Null(), err
			}
			in := relation.Compare(v, lv) >= 0 && relation.Compare(v, hv) <= 0
			return relation.Bool(in != negate), nil
		}, nil
	case *BinaryExpr:
		return b.compileBinary(x)
	case *FuncCall:
		if x.IsAggregate() {
			return nil, fmt.Errorf("sql: aggregate %s not allowed here", x.Name)
		}
		return b.compileScalarFunc(x)
	case *Star:
		return nil, fmt.Errorf("sql: '*' not allowed in this position")
	default:
		return nil, fmt.Errorf("sql: unsupported expression %T", e)
	}
}

func (b binder) compileBinary(x *BinaryExpr) (func(relation.Row) (relation.Value, error), error) {
	left, err := b.compile(x.Left)
	if err != nil {
		return nil, err
	}
	right, err := b.compile(x.Right)
	if err != nil {
		return nil, err
	}
	op := x.Op
	switch op {
	case "AND", "OR":
		return func(r relation.Row) (relation.Value, error) {
			lv, err := left(r)
			if err != nil {
				return relation.Null(), err
			}
			// Three-valued logic with short circuit.
			var lb, lNull bool
			if lv.IsNull() {
				lNull = true
			} else if lb, err = truthy(lv); err != nil {
				return relation.Null(), err
			}
			if !lNull {
				if op == "AND" && !lb {
					return relation.Bool(false), nil
				}
				if op == "OR" && lb {
					return relation.Bool(true), nil
				}
			}
			rv, err := right(r)
			if err != nil {
				return relation.Null(), err
			}
			if rv.IsNull() {
				return relation.Null(), nil
			}
			rb, err := truthy(rv)
			if err != nil {
				return relation.Null(), err
			}
			if lNull {
				if op == "AND" && !rb {
					return relation.Bool(false), nil
				}
				if op == "OR" && rb {
					return relation.Bool(true), nil
				}
				return relation.Null(), nil
			}
			if op == "AND" {
				return relation.Bool(lb && rb), nil
			}
			return relation.Bool(lb || rb), nil
		}, nil
	case "=", "!=", "<", "<=", ">", ">=":
		return func(r relation.Row) (relation.Value, error) {
			lv, err := left(r)
			if err != nil {
				return relation.Null(), err
			}
			rv, err := right(r)
			if err != nil {
				return relation.Null(), err
			}
			if lv.IsNull() || rv.IsNull() {
				return relation.Null(), nil
			}
			c := relation.Compare(lv, rv)
			var out bool
			switch op {
			case "=":
				out = c == 0
			case "!=":
				out = c != 0
			case "<":
				out = c < 0
			case "<=":
				out = c <= 0
			case ">":
				out = c > 0
			case ">=":
				out = c >= 0
			}
			return relation.Bool(out), nil
		}, nil
	case "LIKE":
		return func(r relation.Row) (relation.Value, error) {
			lv, err := left(r)
			if err != nil {
				return relation.Null(), err
			}
			rv, err := right(r)
			if err != nil {
				return relation.Null(), err
			}
			if lv.IsNull() || rv.IsNull() {
				return relation.Null(), nil
			}
			if lv.Type() != relation.TText || rv.Type() != relation.TText {
				return relation.Null(), fmt.Errorf("sql: LIKE requires text operands")
			}
			re, err := likeRegexp(rv.AsText())
			if err != nil {
				return relation.Null(), err
			}
			return relation.Bool(re.MatchString(lv.AsText())), nil
		}, nil
	case "+", "-", "*", "/", "%":
		return func(r relation.Row) (relation.Value, error) {
			lv, err := left(r)
			if err != nil {
				return relation.Null(), err
			}
			rv, err := right(r)
			if err != nil {
				return relation.Null(), err
			}
			if lv.IsNull() || rv.IsNull() {
				return relation.Null(), nil
			}
			if op == "+" && lv.Type() == relation.TText && rv.Type() == relation.TText {
				return relation.Text(lv.AsText() + rv.AsText()), nil
			}
			if !lv.IsNumeric() || !rv.IsNumeric() {
				return relation.Null(), fmt.Errorf("sql: %s on non-numeric operands %s, %s", op, lv.Type(), rv.Type())
			}
			if lv.Type() == relation.TInt && rv.Type() == relation.TInt && op != "/" {
				a, bb := lv.AsInt(), rv.AsInt()
				switch op {
				case "+":
					return relation.Int(a + bb), nil
				case "-":
					return relation.Int(a - bb), nil
				case "*":
					return relation.Int(a * bb), nil
				case "%":
					if bb == 0 {
						return relation.Null(), fmt.Errorf("sql: modulo by zero")
					}
					return relation.Int(a % bb), nil
				}
			}
			a, bb := lv.AsFloat(), rv.AsFloat()
			switch op {
			case "+":
				return relation.Float(a + bb), nil
			case "-":
				return relation.Float(a - bb), nil
			case "*":
				return relation.Float(a * bb), nil
			case "/":
				if bb == 0 {
					return relation.Null(), fmt.Errorf("sql: division by zero")
				}
				return relation.Float(a / bb), nil
			case "%":
				return relation.Null(), fmt.Errorf("sql: modulo requires integers")
			}
			return relation.Null(), nil
		}, nil
	}
	return nil, fmt.Errorf("sql: unknown operator %q", op)
}

func (b binder) compileScalarFunc(x *FuncCall) (func(relation.Row) (relation.Value, error), error) {
	args := make([]func(relation.Row) (relation.Value, error), len(x.Args))
	for i, a := range x.Args {
		f, err := b.compile(a)
		if err != nil {
			return nil, err
		}
		args[i] = f
	}
	need := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("sql: %s expects %d argument(s), got %d", x.Name, n, len(args))
		}
		return nil
	}
	switch x.Name {
	case "lower", "upper", "length", "trim":
		if err := need(1); err != nil {
			return nil, err
		}
		name := x.Name
		return func(r relation.Row) (relation.Value, error) {
			v, err := args[0](r)
			if err != nil || v.IsNull() {
				return relation.Null(), err
			}
			s, err := relation.Coerce(v, relation.TText)
			if err != nil {
				return relation.Null(), err
			}
			switch name {
			case "lower":
				return relation.Text(strings.ToLower(s.AsText())), nil
			case "upper":
				return relation.Text(strings.ToUpper(s.AsText())), nil
			case "length":
				return relation.Int(int64(len(s.AsText()))), nil
			default:
				return relation.Text(strings.TrimSpace(s.AsText())), nil
			}
		}, nil
	case "coalesce":
		if len(args) == 0 {
			return nil, fmt.Errorf("sql: coalesce needs at least one argument")
		}
		return func(r relation.Row) (relation.Value, error) {
			for _, f := range args {
				v, err := f(r)
				if err != nil {
					return relation.Null(), err
				}
				if !v.IsNull() {
					return v, nil
				}
			}
			return relation.Null(), nil
		}, nil
	case "abs":
		if err := need(1); err != nil {
			return nil, err
		}
		return func(r relation.Row) (relation.Value, error) {
			v, err := args[0](r)
			if err != nil || v.IsNull() {
				return relation.Null(), err
			}
			switch v.Type() {
			case relation.TInt:
				if v.AsInt() < 0 {
					return relation.Int(-v.AsInt()), nil
				}
				return v, nil
			case relation.TFloat:
				if v.AsFloat() < 0 {
					return relation.Float(-v.AsFloat()), nil
				}
				return v, nil
			}
			return relation.Null(), fmt.Errorf("sql: abs on %s", v.Type())
		}, nil
	case "cast_int":
		if err := need(1); err != nil {
			return nil, err
		}
		return func(r relation.Row) (relation.Value, error) {
			v, err := args[0](r)
			if err != nil || v.IsNull() {
				return relation.Null(), err
			}
			return relation.Coerce(v, relation.TInt)
		}, nil
	case "cast_float":
		if err := need(1); err != nil {
			return nil, err
		}
		return func(r relation.Row) (relation.Value, error) {
			v, err := args[0](r)
			if err != nil || v.IsNull() {
				return relation.Null(), err
			}
			return relation.Coerce(v, relation.TFloat)
		}, nil
	case "cast_text":
		if err := need(1); err != nil {
			return nil, err
		}
		return func(r relation.Row) (relation.Value, error) {
			v, err := args[0](r)
			if err != nil || v.IsNull() {
				return relation.Null(), err
			}
			return relation.Coerce(v, relation.TText)
		}, nil
	}
	return nil, fmt.Errorf("sql: unknown function %q", x.Name)
}

func truthy(v relation.Value) (bool, error) {
	switch v.Type() {
	case relation.TBool:
		return v.AsBool(), nil
	case relation.TInt:
		return v.AsInt() != 0, nil
	case relation.TFloat:
		return v.AsFloat() != 0, nil
	default:
		return false, fmt.Errorf("sql: %s is not a boolean", v.Type())
	}
}

var likeCache sync.Map // pattern -> *regexp.Regexp

// likeRegexp compiles a SQL LIKE pattern (% and _) into a cached regexp.
func likeRegexp(pattern string) (*regexp.Regexp, error) {
	if re, ok := likeCache.Load(pattern); ok {
		return re.(*regexp.Regexp), nil
	}
	var sb strings.Builder
	sb.WriteString("(?s)^")
	for _, r := range pattern {
		switch r {
		case '%':
			sb.WriteString(".*")
		case '_':
			sb.WriteString(".")
		default:
			sb.WriteString(regexp.QuoteMeta(string(r)))
		}
	}
	sb.WriteString("$")
	re, err := regexp.Compile(sb.String())
	if err != nil {
		return nil, fmt.Errorf("sql: bad LIKE pattern %q: %w", pattern, err)
	}
	likeCache.Store(pattern, re)
	return re, nil
}
