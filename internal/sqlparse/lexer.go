// Package sqlparse implements the SQL subset FlorDB exposes over its
// metadata database: single-table and equi-join SELECT queries with WHERE,
// GROUP BY, ORDER BY, LIMIT/OFFSET, aggregate functions, and the scalar
// expression language needed by the paper's queries (comparisons, boolean
// connectives, arithmetic, LIKE, IS NULL).
//
// The paper positions FlorDB's logs as "queried via Pandas or SQL" (§1.2);
// this package is the SQL half of that claim.
package sqlparse

import (
	"fmt"
	"strings"
	"unicode"
)

// TokenKind classifies lexer output.
type TokenKind int

// Token kinds.
const (
	TokEOF TokenKind = iota
	TokIdent
	TokKeyword
	TokString
	TokNumber
	TokSymbol // punctuation and operators
)

// Token is one lexical unit with its source position (byte offset).
type Token struct {
	Kind TokenKind
	Text string // keywords are upper-cased; identifiers keep original case
	Pos  int
}

var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "BY": true,
	"ORDER": true, "LIMIT": true, "OFFSET": true, "AS": true, "AND": true,
	"OR": true, "NOT": true, "NULL": true, "TRUE": true, "FALSE": true,
	"JOIN": true, "ON": true, "INNER": true, "LIKE": true, "IS": true,
	"ASC": true, "DESC": true, "DISTINCT": true, "HAVING": true,
	"IN": true, "BETWEEN": true, "EXPLAIN": true,
	"OF": true, "TIMESTAMP": true,
}

// Lex tokenizes a SQL string. It returns an error with byte position for
// unterminated strings or unexpected characters.
func Lex(input string) ([]Token, error) {
	var toks []Token
	i := 0
	n := len(input)
	for i < n {
		c := input[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '-' && i+1 < n && input[i+1] == '-': // line comment
			for i < n && input[i] != '\n' {
				i++
			}
		case c == '\'':
			start := i
			i++
			var sb strings.Builder
			closed := false
			for i < n {
				if input[i] == '\'' {
					if i+1 < n && input[i+1] == '\'' { // escaped quote
						sb.WriteByte('\'')
						i += 2
						continue
					}
					closed = true
					i++
					break
				}
				sb.WriteByte(input[i])
				i++
			}
			if !closed {
				return nil, fmt.Errorf("sql: unterminated string at byte %d", start)
			}
			toks = append(toks, Token{Kind: TokString, Text: sb.String(), Pos: start})
		case c >= '0' && c <= '9' || (c == '.' && i+1 < n && input[i+1] >= '0' && input[i+1] <= '9'):
			start := i
			seenDot := false
			seenExp := false
			for i < n {
				d := input[i]
				if d >= '0' && d <= '9' {
					i++
					continue
				}
				if d == '.' && !seenDot && !seenExp {
					seenDot = true
					i++
					continue
				}
				if (d == 'e' || d == 'E') && !seenExp && i > start {
					seenExp = true
					i++
					if i < n && (input[i] == '+' || input[i] == '-') {
						i++
					}
					continue
				}
				break
			}
			toks = append(toks, Token{Kind: TokNumber, Text: input[start:i], Pos: start})
		case isIdentStart(rune(c)):
			start := i
			for i < n && isIdentPart(rune(input[i])) {
				i++
			}
			word := input[start:i]
			upper := strings.ToUpper(word)
			if keywords[upper] {
				toks = append(toks, Token{Kind: TokKeyword, Text: upper, Pos: start})
			} else {
				toks = append(toks, Token{Kind: TokIdent, Text: word, Pos: start})
			}
		case c == '"': // quoted identifier
			start := i
			i++
			var sb strings.Builder
			closed := false
			for i < n {
				if input[i] == '"' {
					closed = true
					i++
					break
				}
				sb.WriteByte(input[i])
				i++
			}
			if !closed {
				return nil, fmt.Errorf("sql: unterminated quoted identifier at byte %d", start)
			}
			toks = append(toks, Token{Kind: TokIdent, Text: sb.String(), Pos: start})
		default:
			start := i
			two := ""
			if i+1 < n {
				two = input[i : i+2]
			}
			switch two {
			case "<=", ">=", "<>", "!=":
				toks = append(toks, Token{Kind: TokSymbol, Text: two, Pos: start})
				i += 2
				continue
			}
			switch c {
			case '=', '<', '>', '(', ')', ',', '*', '+', '-', '/', '.', '%':
				toks = append(toks, Token{Kind: TokSymbol, Text: string(c), Pos: start})
				i++
			default:
				return nil, fmt.Errorf("sql: unexpected character %q at byte %d", c, start)
			}
		}
	}
	toks = append(toks, Token{Kind: TokEOF, Pos: n})
	return toks, nil
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}
